(* Tokenization for the URSA retrieval pipeline: lowercase alphanumeric
   terms, minus a small stopword list. *)

let stopwords =
  [ "a"; "an"; "and"; "are"; "as"; "at"; "be"; "by"; "for"; "from"; "has"; "in"; "is"; "it";
    "its"; "of"; "on"; "or"; "that"; "the"; "to"; "was"; "were"; "will"; "with" ]

let is_stopword w = List.mem w stopwords

let tokens text =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      let w = String.lowercase_ascii (Buffer.contents buf) in
      Buffer.clear buf;
      if not (is_stopword w) then out := w :: !out
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | _ -> flush ())
    text;
  flush ();
  List.rev !out

(* Term frequencies of a document. *)
let term_counts text =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun w ->
      match Hashtbl.find_opt tbl w with
      | Some r -> incr r
      | None -> Hashtbl.replace tbl w (ref 1))
    (tokens text);
  (* sorted_bindings on string keys already yields word order. *)
  List.map (fun (w, r) -> (w, !r)) (Ntcs_util.sorted_bindings tbl)
