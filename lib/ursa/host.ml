(* The host-processor / user-workstation side of URSA: a thin client that
   locates the search coordinator and doc stores through the naming service
   and issues queries and fetches. *)

open Ntcs
open Ntcs_wire

type t = {
  commod : Commod.t;
  mutable search : Addr.t option;
}

let create commod = { commod; search = None }

let locate_search t =
  match t.search with
  | Some a -> Ok a
  | None -> (
    match Ali_layer.locate_attrs t.commod [ ("service", Servers.search_service) ] with
    | Ok (a :: _) ->
      t.search <- Some a;
      Ok a
    | Ok [] -> Error Errors.Unknown_name
    | Error _ as e -> e)

let search ?(k = 10) ?timeout_us t query =
  match locate_search t with
  | Error _ as e -> e
  | Ok addr -> (
    let req =
      Packed.run_pack Ursa_msg.search_request_codec { Ursa_msg.sq_query = query; sq_k = k }
    in
    match
      Ali_layer.send_sync t.commod ~dst:addr ~app_tag:Ursa_msg.search_tag ?timeout_us
        (Convert.payload_raw req)
    with
    | Error _ as e -> e
    | Ok env -> (
      match Packed.run_unpack_result Ursa_msg.search_reply_codec env.Ali_layer.data with
      | Ok r -> Ok r
      | Error m -> Error (Errors.Bad_message m)))

(* Fetch a document body from whichever doc store holds it (round-robin
   partitioning means doc i lives in partition i mod k; we just ask all). *)
let fetch ?timeout_us t ~doc =
  match Ali_layer.locate_attrs t.commod [ ("service", Servers.doc_service) ] with
  | Error _ as e -> e
  | Ok [] -> Error Errors.Unknown_name
  | Ok stores ->
    let req = Packed.run_pack Ursa_msg.doc_request_codec { Ursa_msg.dr_doc = doc } in
    let rec try_stores = function
      | [] -> Error Errors.Unknown_name
      | store :: rest -> (
        match
          Ali_layer.send_sync t.commod ~dst:store ~app_tag:Ursa_msg.doc_tag ?timeout_us
            (Convert.payload_raw req)
        with
        | Error _ -> try_stores rest
        | Ok env -> (
          match Packed.run_unpack_result Ursa_msg.doc_reply_codec env.Ali_layer.data with
          | Ok (Ursa_msg.Doc_found { df_title; df_body }) -> Ok (df_title, df_body)
          | Ok Ursa_msg.Doc_missing -> try_stores rest
          | Error m -> Error (Errors.Bad_message m)))
    in
    try_stores stores

(* Convenience: deploy a full URSA installation on a cluster — [partitions]
   index servers and doc stores spread round-robin over [machines], plus one
   search coordinator. Returns after spawning; settle the cluster to boot. *)
let deploy cluster ~machines ~partitions ~corpus ~search_machine =
  let parts = Corpus.partition partitions corpus in
  List.iteri
    (fun i docs ->
      let machine = List.nth machines (i mod List.length machines) in
      ignore
        (Cluster.spawn cluster ~machine ~name:(Servers.index_server_name i) (fun node ->
             match
               Commod.bind node ~name:(Servers.index_server_name i)
                 ~attrs:(Servers.index_server_attrs ~partition:i)
             with
             | Ok commod -> Servers.index_server_body docs commod
             | Error e -> failwith (Errors.to_string e)));
      ignore
        (Cluster.spawn cluster ~machine ~name:(Servers.doc_server_name i) (fun node ->
             match
               Commod.bind node ~name:(Servers.doc_server_name i)
                 ~attrs:(Servers.doc_server_attrs ~partition:i)
             with
             | Ok commod -> Servers.doc_server_body docs commod
             | Error e -> failwith (Errors.to_string e))))
    parts;
  ignore
    (Cluster.spawn cluster ~machine:search_machine ~name:"ursa-search" (fun node ->
         match Commod.bind node ~name:"ursa-search" ~attrs:Servers.search_server_attrs with
         | Ok commod -> Servers.search_server_body commod
         | Error e -> failwith (Errors.to_string e)))
