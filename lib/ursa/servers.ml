(* The URSA backend servers (§1.2): "a number of backend servers (e.g., for
   index lookup, searching, or retrieval of documents), handling requests
   from host processors or user workstations", glued together exclusively
   through the NTCS.

   Index servers hold one corpus partition each and answer term lookups;
   doc-store servers answer document fetches; the search server coordinates:
   it locates every index partition through attribute-based naming, fans the
   query out, merges tf-idf scores and returns the top-k. *)

open Ntcs
open Ntcs_wire

let index_service = "ursa-index"
let doc_service = "ursa-docs"
let search_service = "ursa-search"

(* --- index server --- *)

let index_server_name partition = Printf.sprintf "ursa-index/%d" partition

(* Body for an index server owning [docs]. Designed to run under
   [Process_ctl]-style management: receives its ComMod already bound. *)
let index_server_body docs commod =
  let index = Index.of_docs docs in
  let lcm = Commod.lcm commod in
  let rec loop () =
    (match Lcm_layer.recv lcm with
     | Error _ -> ()
     | Ok env ->
       if env.Lcm_layer.app_tag = Ursa_msg.index_tag && env.Lcm_layer.conv <> 0
       then begin
         match
           Packed.run_unpack_result Ursa_msg.term_query_codec env.Lcm_layer.data
         with
         | Error _ -> ()
         | Ok q ->
           let results =
             List.map
               (fun term ->
                 let postings = Index.postings index term in
                 {
                   Ursa_msg.tp_term = term;
                   tp_df = List.length postings;
                   tp_postings =
                     List.map (fun p -> (p.Index.p_doc, p.Index.p_tf)) postings;
                 })
               q.Ursa_msg.tq_terms
           in
           let reply =
             Packed.run_pack Ursa_msg.index_reply_codec
               { Ursa_msg.ir_doc_count = Index.doc_count index; ir_results = results }
           in
           ignore
             (Lcm_layer.reply lcm env ~app_tag:Ursa_msg.index_tag (Convert.payload_raw reply))
       end);
    loop ()
  in
  loop ()

let index_server_attrs ~partition =
  [ ("service", index_service); ("partition", string_of_int partition) ]

(* --- doc store server --- *)

let doc_server_name partition = Printf.sprintf "ursa-docs/%d" partition

let doc_server_body docs commod =
  let store = Hashtbl.create 64 in
  List.iter (fun (d : Corpus.doc) -> Hashtbl.replace store d.Corpus.d_id d) docs;
  let lcm = Commod.lcm commod in
  let rec loop () =
    (match Lcm_layer.recv lcm with
     | Error _ -> ()
     | Ok env ->
       if env.Lcm_layer.app_tag = Ursa_msg.doc_tag && env.Lcm_layer.conv <> 0
       then begin
         match Packed.run_unpack_result Ursa_msg.doc_request_codec env.Lcm_layer.data with
         | Error _ -> ()
         | Ok q ->
           let reply =
             match Hashtbl.find_opt store q.Ursa_msg.dr_doc with
             | Some d ->
               Ursa_msg.Doc_found { df_title = d.Corpus.d_title; df_body = d.Corpus.d_body }
             | None -> Ursa_msg.Doc_missing
           in
           ignore
             (Lcm_layer.reply lcm env ~app_tag:Ursa_msg.doc_tag
                (Convert.payload_raw (Packed.run_pack Ursa_msg.doc_reply_codec reply)))
       end);
    loop ()
  in
  loop ()

let doc_server_attrs ~partition =
  [ ("service", doc_service); ("partition", string_of_int partition) ]

(* --- search coordinator --- *)

let merge_scores replies =
  let n_docs =
    List.fold_left (fun acc r -> acc + r.Ursa_msg.ir_doc_count) 0 replies
  in
  let df_by_term = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun tp ->
          let cur =
            match Hashtbl.find_opt df_by_term tp.Ursa_msg.tp_term with
            | Some c -> c
            | None -> 0
          in
          Hashtbl.replace df_by_term tp.Ursa_msg.tp_term (cur + tp.Ursa_msg.tp_df))
        r.Ursa_msg.ir_results)
    replies;
  let scores = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun tp ->
          let df =
            match Hashtbl.find_opt df_by_term tp.Ursa_msg.tp_term with
            | Some c -> c
            | None -> 0
          in
          List.iter
            (fun (doc, tf) ->
              let contribution = Index.tf_idf ~tf ~df ~n_docs in
              let cur = match Hashtbl.find_opt scores doc with Some s -> s | None -> 0. in
              Hashtbl.replace scores doc (cur +. contribution))
            tp.Ursa_msg.tp_postings)
        r.Ursa_msg.ir_results)
    replies;
  Ntcs_util.sorted_bindings scores
  |> List.sort (fun (d1, s1) (d2, s2) ->
         match compare s2 s1 with 0 -> compare d1 d2 | c -> c)

let search_server_body commod =
  let lcm = Commod.lcm commod in
  (* Locate every index partition through attribute-based naming; re-query
     the naming service if the set went stale (a partition relocated). *)
  let partitions = ref [] in
  let refresh_partitions () =
    match Ali_layer.locate_attrs commod [ ("service", index_service) ] with
    | Ok addrs when addrs <> [] ->
      partitions := addrs;
      Ok addrs
    | Ok _ -> Error Errors.Unknown_name
    | Error _ as e -> e
  in
  let query_partition addr terms =
    let req =
      Packed.run_pack Ursa_msg.term_query_codec { Ursa_msg.tq_terms = terms }
    in
    match
      Ali_layer.send_sync commod ~dst:addr ~app_tag:Ursa_msg.index_tag
        (Convert.payload_raw req)
    with
    | Error _ as e -> e
    | Ok env -> (
      match Packed.run_unpack_result Ursa_msg.index_reply_codec env.Ali_layer.data with
      | Ok r -> Ok r
      | Error m -> Error (Errors.Bad_message m))
  in
  let rec loop () =
    (match Lcm_layer.recv lcm with
     | Error _ -> ()
     | Ok env ->
       if env.Lcm_layer.app_tag = Ursa_msg.search_tag && env.Lcm_layer.conv <> 0
       then begin
         match
           Packed.run_unpack_result Ursa_msg.search_request_codec env.Lcm_layer.data
         with
         | Error _ -> ()
         | Ok q ->
           let terms = Tokenizer.tokens q.Ursa_msg.sq_query in
           let addrs =
             match !partitions with
             | [] -> ( match refresh_partitions () with Ok a -> a | Error _ -> [])
             | a -> a
           in
           let replies =
             List.filter_map
               (fun addr ->
                 match query_partition addr terms with
                 | Ok r -> Some r
                 | Error _ -> (
                   (* Partition may have relocated: refresh once and retry. *)
                   match refresh_partitions () with
                   | Ok _ -> (
                     match query_partition addr terms with Ok r -> Some r | Error _ -> None)
                   | Error _ -> None))
               addrs
           in
           let ranked = merge_scores replies in
           let hits =
             ranked
             |> List.filteri (fun i _ -> i < q.Ursa_msg.sq_k)
             |> List.map (fun (doc, score) ->
                    {
                      Ursa_msg.h_doc = doc;
                      h_score_milli = int_of_float (score *. 1000.);
                      h_title = "";
                    })
           in
           let reply =
             Packed.run_pack Ursa_msg.search_reply_codec
               { Ursa_msg.sr_hits = hits; sr_partitions = List.length replies }
           in
           ignore
             (Lcm_layer.reply lcm env ~app_tag:Ursa_msg.search_tag
                (Convert.payload_raw reply))
       end);
    loop ()
  in
  loop ()

let search_server_attrs = [ ("service", search_service) ]
