(* Inverted index with tf postings — the data structure behind the URSA
   index backend servers. *)

type posting = { p_doc : int; p_tf : int }

type t = {
  postings : (string, posting list ref) Hashtbl.t;
  mutable doc_count : int;
  mutable doc_lengths : (int * int) list; (* doc id, token count *)
}

let create () = { postings = Hashtbl.create 256; doc_count = 0; doc_lengths = [] }

let add_document t ~doc_id ~text =
  let counts = Tokenizer.term_counts text in
  let length = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  t.doc_count <- t.doc_count + 1;
  t.doc_lengths <- (doc_id, length) :: t.doc_lengths;
  List.iter
    (fun (term, tf) ->
      let posting = { p_doc = doc_id; p_tf = tf } in
      match Hashtbl.find_opt t.postings term with
      | Some l -> l := posting :: !l
      | None -> Hashtbl.replace t.postings term (ref [ posting ]))
    counts

let of_docs docs =
  let t = create () in
  List.iter (fun (d : Corpus.doc) -> add_document t ~doc_id:d.Corpus.d_id ~text:d.Corpus.d_body)
    docs;
  t

let postings t term =
  match Hashtbl.find_opt t.postings term with
  | Some l -> List.rev !l
  | None -> []

let document_frequency t term = List.length (postings t term)

let doc_count t = t.doc_count

let term_count t = Hashtbl.length t.postings

(* tf-idf contribution of one posting given corpus-wide statistics. *)
let tf_idf ~tf ~df ~n_docs =
  if df = 0 || n_docs = 0 then 0.
  else begin
    let tf_part = 1. +. log (float_of_int tf) in
    let idf = log (float_of_int n_docs /. float_of_int df) in
    tf_part *. (1. +. idf)
  end
