(** The host-processor / user-workstation side of URSA: a thin client that
    locates the search coordinator and doc stores through the naming service
    and issues queries and fetches. *)

open Ntcs

type t

val create : Commod.t -> t

val search : ?k:int -> ?timeout_us:int -> t -> string -> (Ursa_msg.search_reply, Errors.t) result

val fetch : ?timeout_us:int -> t -> doc:int -> (string * string, Errors.t) result
(** [(title, body)] from whichever doc store holds the document. *)

val deploy :
  Cluster.t ->
  machines:string list ->
  partitions:int ->
  corpus:Corpus.doc list ->
  search_machine:string ->
  unit
(** Spawn a full installation: [partitions] index servers and doc stores
    round-robin over [machines], plus one search coordinator. Settle the
    cluster afterwards to boot. *)
