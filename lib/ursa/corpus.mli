(** Synthetic document corpus for the URSA testbed: topic vocabularies plus
    a deterministic generator, so experiments scale corpus size while
    staying exactly reproducible. *)

type doc = { d_id : int; d_title : string; d_body : string }

val topics : (string * string array) array

val generate : ?seed:int -> int -> doc list
(** [generate n] — each document leans on a primary topic with spillover
    from a secondary one, giving rankings realistic structure. *)

val partition : int -> doc list -> doc list list
(** Round-robin split across [k] index/doc-server partitions. *)
