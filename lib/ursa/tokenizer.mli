(** Tokenization for the URSA retrieval pipeline: lowercase alphanumeric
    terms, minus a small stopword list. *)

val stopwords : string list
val is_stopword : string -> bool

val tokens : string -> string list
(** In document order, stopwords removed. *)

val term_counts : string -> (string * int) list
(** Term frequencies, sorted by term. *)
