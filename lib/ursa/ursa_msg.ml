(* Wire protocol of the URSA backends, packed-mode codecs throughout. *)

open Ntcs_wire

let index_tag = 7001 (* term lookup on an index server *)
let doc_tag = 7002 (* document fetch from a doc-store server *)
let search_tag = 7003 (* ranked query to the search coordinator *)

(* --- index server --- *)

type term_query = { tq_terms : string list }

let term_query_codec =
  Packed.iso
    ~fwd:(fun l -> { tq_terms = l })
    ~bwd:(fun q -> q.tq_terms)
    (Packed.list Packed.string)

type term_postings = {
  tp_term : string;
  tp_df : int; (* document frequency within this partition *)
  tp_postings : (int * int) list; (* doc id, tf *)
}

let term_postings_codec =
  Packed.iso
    ~fwd:(fun ((t, df), ps) -> { tp_term = t; tp_df = df; tp_postings = ps })
    ~bwd:(fun r -> ((r.tp_term, r.tp_df), r.tp_postings))
    (Packed.pair (Packed.pair Packed.string Packed.int)
       (Packed.list (Packed.pair Packed.int Packed.int)))

type index_reply = { ir_doc_count : int; ir_results : term_postings list }

let index_reply_codec =
  Packed.iso
    ~fwd:(fun (n, rs) -> { ir_doc_count = n; ir_results = rs })
    ~bwd:(fun r -> (r.ir_doc_count, r.ir_results))
    (Packed.pair Packed.int (Packed.list term_postings_codec))

(* --- doc store --- *)

type doc_request = { dr_doc : int }

let doc_request_codec =
  Packed.iso ~fwd:(fun d -> { dr_doc = d }) ~bwd:(fun r -> r.dr_doc) Packed.int

type doc_reply =
  | Doc_found of { df_title : string; df_body : string }
  | Doc_missing

let doc_reply_codec =
  Packed.tagged
    [
      ( "doc",
        (function
          | Doc_found { df_title; df_body } ->
            Some
              (fun buf ->
                (Packed.pair Packed.string Packed.string).Packed.pack buf (df_title, df_body))
          | Doc_missing -> None),
        fun cur ->
          let t, b = (Packed.pair Packed.string Packed.string).Packed.unpack cur in
          Doc_found { df_title = t; df_body = b } );
      ( "mis",
        (function Doc_missing -> Some (fun _ -> ()) | Doc_found _ -> None),
        fun _ -> Doc_missing );
    ]

(* --- search coordinator --- *)

type search_request = { sq_query : string; sq_k : int }

let search_request_codec =
  Packed.iso
    ~fwd:(fun (q, k) -> { sq_query = q; sq_k = k })
    ~bwd:(fun r -> (r.sq_query, r.sq_k))
    (Packed.pair Packed.string Packed.int)

type hit = { h_doc : int; h_score_milli : int; h_title : string }

let hit_codec =
  Packed.iso
    ~fwd:(fun ((d, s), t) -> { h_doc = d; h_score_milli = s; h_title = t })
    ~bwd:(fun h -> ((h.h_doc, h.h_score_milli), h.h_title))
    (Packed.pair (Packed.pair Packed.int Packed.int) Packed.string)

type search_reply = { sr_hits : hit list; sr_partitions : int }

let search_reply_codec =
  Packed.iso
    ~fwd:(fun (hs, p) -> { sr_hits = hs; sr_partitions = p })
    ~bwd:(fun r -> (r.sr_hits, r.sr_partitions))
    (Packed.pair (Packed.list hit_codec) Packed.int)
