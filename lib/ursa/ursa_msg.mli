(** Wire protocol of the URSA backends (packed-mode codecs throughout). *)

open Ntcs_wire

val index_tag : int
val doc_tag : int
val search_tag : int

type term_query = { tq_terms : string list }

val term_query_codec : term_query Packed.t

type term_postings = {
  tp_term : string;
  tp_df : int;  (** document frequency within this partition *)
  tp_postings : (int * int) list;  (** (doc id, tf) *)
}

val term_postings_codec : term_postings Packed.t

type index_reply = { ir_doc_count : int; ir_results : term_postings list }

val index_reply_codec : index_reply Packed.t

type doc_request = { dr_doc : int }

val doc_request_codec : doc_request Packed.t

type doc_reply =
  | Doc_found of { df_title : string; df_body : string }
  | Doc_missing

val doc_reply_codec : doc_reply Packed.t

type search_request = { sq_query : string; sq_k : int }

val search_request_codec : search_request Packed.t

type hit = { h_doc : int; h_score_milli : int; h_title : string }

val hit_codec : hit Packed.t

type search_reply = { sr_hits : hit list; sr_partitions : int }

val search_reply_codec : search_reply Packed.t
