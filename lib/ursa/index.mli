(** Inverted index with term-frequency postings — the data structure behind
    the URSA index backend servers. *)

type posting = { p_doc : int; p_tf : int }

type t

val create : unit -> t
val add_document : t -> doc_id:int -> text:string -> unit
val of_docs : Corpus.doc list -> t

val postings : t -> string -> posting list
(** In insertion order; empty for unknown terms. *)

val document_frequency : t -> string -> int
val doc_count : t -> int
val term_count : t -> int

val tf_idf : tf:int -> df:int -> n_docs:int -> float
(** Score contribution of one posting given corpus-wide statistics
    ((1+log tf)·(1+log(N/df)); 0 when df or N is 0). *)
