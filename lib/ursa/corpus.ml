(* Synthetic document corpus for the URSA testbed. A fixed set of topic
   vocabularies (what the backend servers would have indexed: systems
   literature) plus a deterministic generator that composes documents from
   them, so experiments can scale corpus size while remaining exactly
   reproducible. *)

type doc = { d_id : int; d_title : string; d_body : string }

let topics =
  [|
    ( "networking",
      [| "network"; "transparent"; "message"; "circuit"; "gateway"; "internet"; "routing";
         "packet"; "latency"; "protocol"; "virtual"; "channel"; "socket"; "stream" |] );
    ( "naming",
      [| "name"; "server"; "address"; "resolution"; "binding"; "lookup"; "registry";
         "directory"; "attribute"; "unique"; "identifier"; "cache" |] );
    ( "retrieval",
      [| "index"; "search"; "document"; "query"; "ranking"; "relevance"; "term"; "inverted";
         "posting"; "corpus"; "retrieval"; "score" |] );
    ( "systems",
      [| "process"; "kernel"; "scheduler"; "portable"; "layer"; "module"; "recursion";
         "exception"; "debug"; "monitor"; "clock"; "distributed" |] );
    ( "hardware",
      [| "vax"; "sun"; "apollo"; "workstation"; "backend"; "processor"; "memory"; "byte";
         "ordering"; "machine"; "ring"; "ethernet" |] );
  |]

let sentence rng (vocab : string array) =
  let n = 5 + Ntcs_util.Rng.int rng 8 in
  let words = List.init n (fun _ -> Ntcs_util.Rng.pick rng vocab) in
  String.concat " " words ^ "."

(* Deterministically generate [n] documents. Each document leans on one
   primary topic with spillover from one secondary topic, which gives the
   rankings realistic structure (multi-term queries prefer on-topic docs). *)
let generate ?(seed = 1986) n =
  let rng = Ntcs_util.Rng.create seed in
  List.init n (fun i ->
      let primary_idx = Ntcs_util.Rng.int rng (Array.length topics) in
      let secondary_idx = Ntcs_util.Rng.int rng (Array.length topics) in
      let pname, pvocab = topics.(primary_idx) in
      let _, svocab = topics.(secondary_idx) in
      let sentences =
        List.init
          (4 + Ntcs_util.Rng.int rng 6)
          (fun _ ->
            if Ntcs_util.Rng.int rng 4 = 0 then sentence rng svocab else sentence rng pvocab)
      in
      {
        d_id = i;
        d_title = Printf.sprintf "%s-report-%d" pname i;
        d_body = String.concat " " sentences;
      })

(* Split a corpus round-robin across [k] index/doc server partitions. *)
let partition k docs =
  let parts = Array.make k [] in
  List.iteri (fun i d -> parts.(i mod k) <- d :: parts.(i mod k)) docs;
  Array.to_list (Array.map List.rev parts)
