(** The URSA backend servers (§1.2): "a number of backend servers (e.g., for
    index lookup, searching, or retrieval of documents), handling requests
    from host processors or user workstations" — glued together exclusively
    through the NTCS.

    Bodies receive an already-bound ComMod, so they compose with
    [Process_ctl] specifications (relocatable backends). *)

open Ntcs

val index_service : string
val doc_service : string
val search_service : string

val index_server_name : int -> string
val index_server_body : Corpus.doc list -> Commod.t -> unit
val index_server_attrs : partition:int -> (string * string) list

val doc_server_name : int -> string
val doc_server_body : Corpus.doc list -> Commod.t -> unit
val doc_server_attrs : partition:int -> (string * string) list

val merge_scores : Ursa_msg.index_reply list -> (int * float) list
(** Global tf-idf from per-partition postings (df summed across
    partitions), sorted best first, ties by doc id. *)

val search_server_body : Commod.t -> unit
(** The coordinator: locates every index partition through attribute-based
    naming, fans out, merges, answers top-k; refreshes the partition set
    when one relocates. *)

val search_server_attrs : (string * string) list
