(* Sample accumulator used by the experiment harness to summarize latency
   series: count, mean, stddev, min/max and percentiles. *)

type t = { mutable samples : float list; mutable n : int }

let create () = { samples = []; n = 0 }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1

let count t = t.n

let sorted t = List.sort compare t.samples

let mean t =
  if t.n = 0 then 0.
  else List.fold_left ( +. ) 0. t.samples /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else begin
    let m = mean t in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. t.samples in
    sqrt (ss /. float_of_int (t.n - 1))
  end

let min_ t =
  if t.n = 0 then 0.
  else List.fold_left (fun acc x -> if x < acc then x else acc) infinity t.samples

let max_ t =
  if t.n = 0 then 0.
  else List.fold_left (fun acc x -> if x > acc then x else acc) neg_infinity t.samples

let percentile t p =
  match sorted t with
  | [] -> 0.
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end

let median t = percentile t 50.

let summary t =
  Printf.sprintf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
    t.n (mean t) (stddev t) (min_ t) (median t) (percentile t 95.) (max_ t)
