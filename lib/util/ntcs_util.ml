(* Library root: re-export every util module and lift the [Tbl] helpers to
   the top level — protocol code calls [Ntcs_util.sorted_bindings] directly
   when it needs a deterministic walk over a hash table. *)

module Bqueue = Bqueue
module Heap = Heap
module Lru = Lru
module Metrics = Metrics
module Pool = Pool
module Rng = Rng
module Stats = Stats
module Tbl = Tbl

let sorted_bindings = Tbl.sorted_bindings
let sorted_keys = Tbl.sorted_keys
