(** Named counters and gauges, one registry per simulated world.

    A thin shim over {!Ntcs_obs.Registry} — the type equality is public so
    code holding a [Metrics.t] can also record histograms and spans against
    the same per-world registry. *)

type t = Ntcs_obs.Registry.t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump counter [name], creating it at zero on first use. *)

val get : t -> string -> int
(** Current counter value; 0 when it was never bumped. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float

val reset : t -> unit

val to_alist : t -> (string * Ntcs_obs.Registry.stat) list
(** Counters and gauges merged, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Counters then gauges, sorted by name. *)
