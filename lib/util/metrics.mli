(** Named counters and gauges, one registry per simulated world. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump counter [name], creating it at zero on first use. *)

val get : t -> string -> int
(** Current counter value; 0 when it was never bumped. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float

val reset : t -> unit

val to_alist : t -> (string * int) list
(** Counters sorted by name. *)

val pp : Format.formatter -> t -> unit
