(** Library root: re-exports every util module and lifts the [Tbl]
    helpers to the top level — protocol code calls
    [Ntcs_util.sorted_bindings] directly when it needs a deterministic
    walk over a hash table.

    Nothing here is module-level mutable state: every container is
    created by a caller and owned by whoever holds it (R8 [domsafe]
    keeps it that way). *)

module Bqueue = Bqueue
module Heap = Heap
module Lru = Lru
module Metrics = Metrics
module Pool = Pool
module Rng = Rng
module Stats = Stats
module Tbl = Tbl

val sorted_bindings :
  ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** Bindings sorted by key ({!Tbl.sorted_bindings}): deterministic
    iteration order regardless of hash-table internals. *)

val sorted_keys : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
