(** Deterministic views of hash tables.

    Protocol code must never let [Hashtbl]'s internal iteration order become
    observable (message order, teardown order, trace order): it is stable
    only by accident. These helpers materialise the bindings as a list
    sorted by key, giving a canonical order. The repo linter (rule R2)
    forbids raw [Hashtbl.iter]/[Hashtbl.fold] in protocol paths. *)

val sorted_bindings : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key ([compare] defaults to the polymorphic
    compare). Safe to mutate the table while consuming the result: the list
    is a snapshot. Assumes replace-style tables (one binding per key). *)

val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** [sorted_keys t] = [List.map fst (sorted_bindings t)]. *)
