(* Deterministic splitmix64 generator. Every stochastic component of the
   simulator draws from one of these, seeded explicitly, so that whole
   experiment runs are reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit int. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_int t mod bound

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. u /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Range [lo, hi) *)
let between t lo hi =
  if hi <= lo then lo else lo + int t (hi - lo)

let split t = create (Int64.to_int (next_int64 t))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
