(* Bounded FIFO queue. Models the finite buffering of mailboxes and gateway
   queues: once full, pushes are refused and the caller decides whether that
   means back-pressure or a dropped message. *)

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutable dropped : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Bqueue.create: capacity must be positive";
  { capacity; items = Queue.create (); dropped = 0 }

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
let is_full t = Queue.length t.items >= t.capacity
let capacity t = t.capacity

let push t x =
  if is_full t then begin
    t.dropped <- t.dropped + 1;
    false
  end else begin
    Queue.push x t.items;
    true
  end

let pop t = Queue.take_opt t.items
let peek t = Queue.peek_opt t.items
let dropped t = t.dropped
let clear t = Queue.clear t.items

let iter t f = Queue.iter f t.items
