(** Bounded FIFO queue with drop accounting. *)

type 'a t

val create : int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x] and returns [true]; returns [false] (and counts a
    drop) when the queue is full. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val dropped : 'a t -> int
(** Number of refused pushes since creation. *)

val clear : 'a t -> unit
val iter : 'a t -> ('a -> unit) -> unit
