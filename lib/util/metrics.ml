(* Named counter/gauge registry — now a thin shim over the observability
   plane's [Ntcs_obs.Registry]. The type equality is deliberate and public:
   the registry a world carries *is* its metrics, so every existing counter
   call site keeps working while spans and histograms accumulate in the same
   state. A registry is explicit — one per simulated world — so parallel
   experiments never share counters. *)

type t = Ntcs_obs.Registry.t

let create () = Ntcs_obs.Registry.create ()
let incr ?by t name = Ntcs_obs.Registry.incr ?by t name
let get = Ntcs_obs.Registry.get
let set_gauge = Ntcs_obs.Registry.set_gauge
let gauge = Ntcs_obs.Registry.gauge
let reset = Ntcs_obs.Registry.reset

let to_alist = Ntcs_obs.Registry.stats_alist
let pp = Ntcs_obs.Registry.pp_stats
