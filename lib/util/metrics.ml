(* Named counter registry. The NTCS layers bump counters (conversions
   performed/avoided, NSP round trips, faults, recursive entries, ...) and the
   experiment harness reads them out. A registry is explicit state — one per
   simulated world — so parallel experiments never share counters. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; gauges = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = match Hashtbl.find_opt t.gauges name with
  | Some r -> !r
  | None -> 0.

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges

let to_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-40s %d@." k v) (to_alist t)
