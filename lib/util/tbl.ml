(* Deterministic views of hash tables. [Hashtbl]'s own iteration order is a
   function of hashing internals and insertion history; protocol code must
   never let that order reach the wire, a trace, or a peer (DESIGN §6 — the
   whole simulation is replayable only if every observable order is). These
   helpers materialise sorted association lists instead. The repo linter
   (lib/lint, rule R2) forbids raw [Hashtbl.iter]/[Hashtbl.fold] in protocol
   paths and points offenders here. *)

(* Assumes replace-style tables (at most one binding per key), which is how
   every table in this repo is used; shadowed [add] bindings would all
   surface. *)
let sorted_bindings ?(compare = Stdlib.compare) tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_keys ?compare tbl = List.map fst (sorted_bindings ?compare tbl)
