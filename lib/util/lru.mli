(** Fixed-capacity LRU cache with hit/miss accounting. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity] — raises [Invalid_argument] if [capacity <= 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; refreshes recency and updates hit/miss counters. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without touching recency or counters. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update, evicting the least-recently-used entry when full. *)

val remove : ('k, 'v) t -> 'k -> unit

val invalidate_if : ('k, 'v) t -> ('k -> 'v -> bool) -> int
(** Evict every entry the predicate selects and return how many were
    dropped. Survivors keep their relative recency order; hit/miss
    counters are untouched. The predicate is consulted in recency order
    (most recently used first) and must not mutate the cache. *)

val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] since creation. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Visits entries in recency order, most recently used first — a
    guaranteed, deterministic order (never the backing table's). [f] must
    not mutate the cache during iteration. *)
