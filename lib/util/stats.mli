(** Sample accumulator: mean, stddev, min/max, percentiles. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float

val min_ : t -> float
val max_ : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation. *)

val median : t -> float

val summary : t -> string
(** One-line human-readable digest. *)
