(* Size-classed buffer pool for the frame hot path.

   The pipeline's steady state allocates one buffer per send (header blit +
   payload blit) and frees it as soon as the transport has taken its copy —
   an allocation profile a freelist amortises perfectly. Buffers come in
   power-of-two size classes; a request is served from the smallest class
   that fits (callers carry an explicit length, so an oversized buffer is
   harmless). Requests beyond the largest class are plain allocations —
   caching jumbo buffers would just pin memory.

   Ownership discipline: [alloc] transfers the buffer to the caller;
   [release] returns it and the caller must not touch it afterwards. A
   buffer that escapes (never released) is a leak the high-water gauge will
   show, not a correctness problem — the pool never hands out a buffer it
   has not been given back.

   The release side is guarded even with the sanitizer off: a buffer that
   is already on its freelist, has a size no [alloc] ever produced, or
   arrives while nothing is outstanding is rejected and counted as
   [pool.bad_release] instead of being spliced into the freelist — a
   double-release that *is* accepted aliases two future hand-outs onto one
   buffer and corrupts frames while every test stays green.

   Sanitizer mode ([set_sanitize]) adds the checks that need per-buffer
   state: every hand-out is generation-tagged and tracked by physical
   identity, releases of untracked buffers are reported as foreign,
   released pooled buffers are filled with a poison canary that is verified
   on the next hand-out (a stale view writing through a released buffer
   trips it), and [leak_check] reports everything still outstanding at
   world teardown. Each violation increments a [pool.sanitizer.*] counter
   and, when an emitter is installed ([set_emit], wired to the world's
   trace), records one deterministic trace event. The mode is off by
   default and costs nothing when off — the hot path is unchanged.

   Statistics land in the world's registry so they export with everything
   else: pool.hits / pool.misses / pool.unpooled / pool.bad_release
   counters, pool.in_use and pool.high_water gauges. *)

type t = {
  classes : Bytes.t list ref array; (* freelist per size class *)
  registry : Ntcs_obs.Registry.t option;
  mutable in_use : int; (* buffers handed out and not yet released *)
  mutable high_water : int;
  (* --- sanitizer state (inert unless [sanitize]) --- *)
  mutable sanitize : bool;
  mutable emit : (cat:string -> detail:string -> unit) option;
  mutable next_gen : int; (* generation tag of the next hand-out *)
  mutable outstanding : (Bytes.t * int) list; (* identity-keyed, newest first *)
  mutable violations : int;
}

(* Classes: 64 B .. 64 KiB in powers of two — 11 freelists. *)
let min_shift = 6
let max_shift = 16
let num_classes = max_shift - min_shift + 1
let max_pooled = 1 lsl max_shift

(* Smallest class index whose size covers [n]. *)
let class_of n =
  let rec go shift = if 1 lsl shift >= n then shift - min_shift else go (shift + 1) in
  if n <= 1 lsl min_shift then 0 else go (min_shift + 1)

let create ?registry () =
  {
    classes = Array.init num_classes (fun _ -> ref []);
    registry;
    in_use = 0;
    high_water = 0;
    sanitize = false;
    emit = None;
    next_gen = 1;
    outstanding = [];
    violations = 0;
  }

let count t name = match t.registry with None -> () | Some r -> Ntcs_obs.Registry.incr r name

let note_out t =
  t.in_use <- t.in_use + 1;
  if t.in_use > t.high_water then t.high_water <- t.in_use;
  match t.registry with
  | None -> ()
  | Some r ->
    Ntcs_obs.Registry.set_gauge r "pool.in_use" (float_of_int t.in_use);
    Ntcs_obs.Registry.set_gauge r "pool.high_water" (float_of_int t.high_water)

let note_in t =
  t.in_use <- t.in_use - 1;
  match t.registry with
  | None -> ()
  | Some r -> Ntcs_obs.Registry.set_gauge r "pool.in_use" (float_of_int t.in_use)

(* --- sanitizer plumbing --- *)

(* The canary: a released pooled buffer is filled with it, and the fill is
   verified when the buffer is handed out again. Any caller who kept a view
   and wrote through it after [release] leaves a non-canary byte behind. *)
let poison = '\xDB'

let violation t ~cat detail =
  t.violations <- t.violations + 1;
  count t cat;
  match t.emit with None -> () | Some emit -> emit ~cat ~detail

let is_outstanding t b = List.exists (fun (b', _) -> b' == b) t.outstanding
let untrack t b = t.outstanding <- List.filter (fun (b', _) -> not (b' == b)) t.outstanding

let track t b =
  let g = t.next_gen in
  t.next_gen <- g + 1;
  t.outstanding <- (b, g) :: t.outstanding

let verify_poison t b =
  let n = Bytes.length b in
  let rec first_bad i = if i >= n then -1 else if Bytes.get b i <> poison then i else first_bad (i + 1) in
  let bad = first_bad 0 in
  if bad >= 0 then
    violation t ~cat:"pool.sanitizer.poison"
      (Printf.sprintf "size=%d first_stale_byte=%d" n bad)

let set_sanitize t on =
  t.sanitize <- on;
  if on then
    (* Buffers already resting on a freelist predate the canary discipline;
       poison them now so their next hand-out verifies cleanly. Arm before
       traffic: hand-outs alive at this moment are unknown to the tracker
       and their releases would read as foreign. *)
    Array.iter (fun cls -> List.iter (fun b -> Bytes.fill b 0 (Bytes.length b) poison) !cls) t.classes
  else t.outstanding <- []

let sanitizing t = t.sanitize
let set_emit t f = t.emit <- Some f
let violations t = t.violations

let leak_check t =
  (* Teardown report, in hand-out order. A leak is loss, not corruption —
     the pool never re-issues a buffer it was not given back — so callers
     treat this as a report (crashed machines legitimately strand their
     in-flight buffers), unlike the aliasing violations above. *)
  let leaked = List.rev t.outstanding in
  List.iter
    (fun (b, gen) ->
      violation t ~cat:"pool.sanitizer.leak"
        (Printf.sprintf "gen=%d size=%d" gen (Bytes.length b)))
    leaked;
  t.outstanding <- [];
  List.length leaked

(* --- alloc / release --- *)

let alloc t n =
  if n > max_pooled then begin
    count t "pool.unpooled";
    (* Unpooled hand-outs are owed back like any other: count them out so
       the in_use/high_water gauges agree with the release side. *)
    note_out t;
    let b = Bytes.create n in
    if t.sanitize then track t b;
    b
  end
  else begin
    let cls = t.classes.(class_of n) in
    note_out t;
    match !cls with
    | b :: rest ->
      cls := rest;
      count t "pool.hits";
      if t.sanitize then begin
        verify_poison t b;
        track t b
      end;
      b
    | [] ->
      count t "pool.misses";
      let b = Bytes.create (1 lsl (class_of n + min_shift)) in
      if t.sanitize then track t b;
      b
  end

let bad_release t ~cat detail =
  count t "pool.bad_release";
  if t.sanitize then violation t ~cat detail

let release t b =
  let n = Bytes.length b in
  if n > max_pooled then begin
    (* Unpooled: nothing to recycle, but the gauge must come back down.
       Only the sanitizer can prove provenance for these. *)
    if t.sanitize && not (is_outstanding t b) then
      bad_release t ~cat:"pool.sanitizer.foreign_release" (Printf.sprintf "size=%d" n)
    else if t.in_use <= 0 then
      bad_release t ~cat:"pool.sanitizer.foreign_release" (Printf.sprintf "size=%d" n)
    else begin
      if t.sanitize then untrack t b;
      note_in t
    end
  end
  else if n < 1 lsl min_shift || n land (n - 1) <> 0 then
    (* No [alloc] ever produced this size: never-pooled foreign bytes. *)
    bad_release t ~cat:"pool.sanitizer.foreign_release" (Printf.sprintf "size=%d" n)
  else begin
    let cls = t.classes.(class_of n) in
    if List.memq b !cls then
      (* Already resting on its freelist: accepting it again would hand the
         same buffer to two future allocs. *)
      bad_release t ~cat:"pool.sanitizer.double_release"
        (Printf.sprintf "size=%d class=%d" n (1 lsl (class_of n + min_shift)))
    else if t.sanitize && not (is_outstanding t b) then
      bad_release t ~cat:"pool.sanitizer.foreign_release" (Printf.sprintf "size=%d" n)
    else if t.in_use <= 0 then
      bad_release t ~cat:"pool.sanitizer.foreign_release" (Printf.sprintf "size=%d" n)
    else begin
      if t.sanitize then begin
        untrack t b;
        Bytes.fill b 0 n poison
      end;
      cls := b :: !cls;
      note_in t
    end
  end

let in_use t = t.in_use
let high_water t = t.high_water
