(* Size-classed buffer pool for the frame hot path.

   The pipeline's steady state allocates one buffer per send (header blit +
   payload blit) and frees it as soon as the transport has taken its copy —
   an allocation profile a freelist amortises perfectly. Buffers come in
   power-of-two size classes; a request is served from the smallest class
   that fits (callers carry an explicit length, so an oversized buffer is
   harmless). Requests beyond the largest class are plain allocations —
   caching jumbo buffers would just pin memory.

   Ownership discipline: [alloc] transfers the buffer to the caller;
   [release] returns it and the caller must not touch it afterwards. A
   buffer that escapes (never released) is a leak the high-water gauge will
   show, not a correctness problem — the pool never hands out a buffer it
   has not been given back.

   Statistics land in the world's registry so they export with everything
   else: pool.hits / pool.misses / pool.unpooled counters, pool.in_use and
   pool.high_water gauges. *)

type t = {
  classes : Bytes.t list ref array; (* freelist per size class *)
  registry : Ntcs_obs.Registry.t option;
  mutable in_use : int; (* buffers handed out and not yet released *)
  mutable high_water : int;
}

(* Classes: 64 B .. 64 KiB in powers of two — 11 freelists. *)
let min_shift = 6
let max_shift = 16
let num_classes = max_shift - min_shift + 1
let max_pooled = 1 lsl max_shift

(* Smallest class index whose size covers [n]. *)
let class_of n =
  let rec go shift = if 1 lsl shift >= n then shift - min_shift else go (shift + 1) in
  if n <= 1 lsl min_shift then 0 else go (min_shift + 1)

let create ?registry () =
  { classes = Array.init num_classes (fun _ -> ref []); registry; in_use = 0; high_water = 0 }

let count t name = match t.registry with None -> () | Some r -> Ntcs_obs.Registry.incr r name

let note_out t =
  t.in_use <- t.in_use + 1;
  if t.in_use > t.high_water then t.high_water <- t.in_use;
  match t.registry with
  | None -> ()
  | Some r ->
    Ntcs_obs.Registry.set_gauge r "pool.in_use" (float_of_int t.in_use);
    Ntcs_obs.Registry.set_gauge r "pool.high_water" (float_of_int t.high_water)

let note_in t =
  t.in_use <- t.in_use - 1;
  match t.registry with
  | None -> ()
  | Some r -> Ntcs_obs.Registry.set_gauge r "pool.in_use" (float_of_int t.in_use)

let alloc t n =
  if n > max_pooled then begin
    count t "pool.unpooled";
    Bytes.create n
  end
  else begin
    let cls = t.classes.(class_of n) in
    note_out t;
    match !cls with
    | b :: rest ->
      cls := rest;
      count t "pool.hits";
      b
    | [] ->
      count t "pool.misses";
      Bytes.create (1 lsl (class_of n + min_shift))
  end

let release t b =
  let n = Bytes.length b in
  (* Only exact class sizes come back; anything else was never pooled. *)
  if n <= max_pooled && n land (n - 1) = 0 && n >= 1 lsl min_shift then begin
    let cls = t.classes.(class_of n) in
    cls := b :: !cls;
    note_in t
  end

let in_use t = t.in_use
let high_water t = t.high_water
