(** Array-backed binary min-heap. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (total preorder:
    [leq a b] means [a] sorts before or equal to [b]). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Drain the heap into a sorted list (destructive). *)
