(* Small LRU cache over a Hashtbl plus a doubly-linked recency list.
   Used for the ND-layer's UAdd -> physical-address cache and the IP-layer's
   route cache. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create 16; head = None; tail = None; hits = 0; misses = 0 }

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let set t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key

(* Predicate eviction: drop every entry [pred] selects, preserving the
   recency order of the survivors (nodes are unlinked in place; the list
   spine of the keepers is untouched). Walks the recency list so the
   decision order is deterministic (MRU first), like [iter]. *)
let invalidate_if t pred =
  let dropped = ref 0 in
  let rec go = function
    | None -> ()
    | Some node ->
      let next = node.next in
      if pred node.key node.value then begin
        unlink t node;
        Hashtbl.remove t.table node.key;
        incr dropped
      end;
      go next
  in
  go t.head;
  !dropped

let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats t = (t.hits, t.misses)

(* Walk the recency list, not the backing table: callers observe a
   deterministic, meaningful order (most recently used first) instead of
   whatever the Hashtbl happens to produce. *)
let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
      let next = node.next in
      f node.key node.value;
      go next
  in
  go t.head
