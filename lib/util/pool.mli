(** Size-classed buffer pool (freelist) for the frame hot path.

    Buffers come in power-of-two classes from 64 B to 64 KiB; a request is
    served from the smallest class that fits, so callers must carry an
    explicit length — the buffer may be bigger than asked for. Larger
    requests fall through to plain allocation.

    Ownership: {!alloc} transfers the buffer to the caller; {!release}
    returns it, after which the caller must not touch it. A never-released
    buffer is a leak (visible in the high-water gauge and in the
    sanitizer's {!leak_check} report), not a correctness problem.

    The static side of the same discipline is machine-checked by lint
    rules R6/R7 ([ownership]/[escape]); this module's sanitizer mode is
    the dynamic side, catching whatever escapes the lexical analysis.

    When created with a registry, the pool keeps [pool.hits] /
    [pool.misses] / [pool.unpooled] / [pool.bad_release] counters and
    [pool.in_use] / [pool.high_water] gauges up to date there. *)

type t

val create : ?registry:Ntcs_obs.Registry.t -> unit -> t

val max_pooled : int
(** Largest request served from a freelist (64 KiB); anything bigger is a
    plain allocation counted as [pool.unpooled]. *)

val alloc : t -> int -> Bytes.t
(** A buffer of at least the requested size (exactly the class size).
    Contents are unspecified — reused buffers keep stale bytes. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to its class. Bogus releases — a buffer already on its
    freelist (double release), a size no {!alloc} ever produced, or a
    release while nothing is outstanding — are rejected and counted as
    [pool.bad_release] rather than corrupting the freelist. With the
    sanitizer armed they additionally raise a specific
    [pool.sanitizer.double_release] / [pool.sanitizer.foreign_release]
    violation. *)

val in_use : t -> int
val high_water : t -> int

(** {1 Sanitizer}

    Armed via {!set_sanitize}, the pool tracks every hand-out by physical
    identity with a generation tag, fills released pooled buffers with a
    poison canary that is verified on the next hand-out (a write through a
    stale view trips [pool.sanitizer.poison]), classifies bogus releases
    as double or foreign, and reports buffers still outstanding at
    teardown via {!leak_check}. Each violation increments the matching
    [pool.sanitizer.*] registry counter and, if an emitter is installed,
    produces one deterministic trace event. Arm the sanitizer before
    traffic: buffers already outstanding at arming time are unknown to the
    tracker and their releases would read as foreign. Off by default;
    costs nothing when off. *)

val set_sanitize : t -> bool -> unit
(** Arm or disarm the sanitizer. Arming poisons buffers already resting on
    freelists so their next hand-out verifies cleanly; disarming drops the
    outstanding-buffer tracking. *)

val sanitizing : t -> bool

val set_emit : t -> (cat:string -> detail:string -> unit) -> unit
(** Install the violation emitter — typically the world's trace, so each
    violation becomes a deterministic [pool.sanitizer.*] trace event. *)

val leak_check : t -> int
(** Report every buffer still outstanding (one [pool.sanitizer.leak]
    violation each, in hand-out order) and return how many there were.
    Intended at world teardown. A leak is loss, not corruption — crashed
    machines legitimately strand their in-flight buffers — so callers
    usually report it rather than fail on it. *)

val violations : t -> int
(** Total sanitizer violations recorded on this pool, leaks included. *)
