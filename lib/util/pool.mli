(** Size-classed buffer pool (freelist) for the frame hot path.

    Buffers come in power-of-two classes from 64 B to 64 KiB; a request is
    served from the smallest class that fits, so callers must carry an
    explicit length — the buffer may be bigger than asked for. Larger
    requests fall through to plain allocation.

    Ownership: {!alloc} transfers the buffer to the caller; {!release}
    returns it, after which the caller must not touch it. A never-released
    buffer is a leak (visible in the high-water gauge), not a correctness
    problem.

    When created with a registry, the pool keeps [pool.hits] /
    [pool.misses] / [pool.unpooled] counters and [pool.in_use] /
    [pool.high_water] gauges up to date there. *)

type t

val create : ?registry:Ntcs_obs.Registry.t -> unit -> t

val alloc : t -> int -> Bytes.t
(** A buffer of at least the requested size (exactly the class size).
    Contents are unspecified — reused buffers keep stale bytes. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to its class. Buffers that did not come from {!alloc}
    (wrong size) are ignored. Releasing the same buffer twice is a caller
    bug the pool cannot detect — don't. *)

val in_use : t -> int
val high_water : t -> int
