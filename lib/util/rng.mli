(** Deterministic splitmix64 pseudo-random generator.

    All randomness in the simulator flows through explicitly-seeded values of
    {!t}, keeping every experiment reproducible. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int
(** Next non-negative int (62 bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val between : t -> int -> int -> int
(** [between t lo hi] is uniform in [\[lo, hi)]; returns [lo] if [hi <= lo]. *)

val split : t -> t
(** Derive an independent generator (for giving subsystems their own stream). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. Raises [Invalid_argument] on an empty array. *)
