(* Causal identity for a message crossing the stack. A [ctx] names one
   logical send: the circuit it travels on (world-unique, allocated at the
   ALI boundary the first time a destination is spoken to) and the sequence
   number of this message within that circuit. The ctx rides inside the
   protocol header, so it survives gateway splices and fault-plane retries
   unchanged — every frame on every intermediate net carries the identity of
   the application send that caused it. *)

type ctx = { sp_circuit : int; sp_seq : int }

let none = { sp_circuit = 0; sp_seq = 0 }
let is_none c = c.sp_circuit = 0
let make ~circuit ~seq = { sp_circuit = circuit; sp_seq = seq }
let to_string c = Printf.sprintf "c%d#%d" c.sp_circuit c.sp_seq

let of_string s =
  match String.index_opt s '#' with
  | Some i when String.length s > 1 && s.[0] = 'c' -> (
    match
      ( int_of_string_opt (String.sub s 1 (i - 1)),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some circuit, Some seq when circuit >= 0 && seq >= 0 -> Some (make ~circuit ~seq)
    | _ -> None)
  | _ -> None

(* Phases mirror the Chrome trace-event vocabulary: a [B]egin/[E]nd pair
   brackets a duration (a circuit's life, a synchronous call), an [I]nstant
   marks a point a frame passed through (ND tx/rx, a gateway forward). *)
type phase = B | E | I

let phase_to_string = function B -> "B" | E -> "E" | I -> "I"

type event = {
  ev_at_us : int;  (** sim time, never wall time *)
  ev_ctx : ctx;
  ev_phase : phase;
  ev_name : string;  (** what happened, drawn from the category manifest *)
  ev_actor : string;  (** "machine/process" doing it *)
  ev_detail : string;
}

let event ~at_us ~ctx ~phase ~name ~actor detail =
  { ev_at_us = at_us; ev_ctx = ctx; ev_phase = phase; ev_name = name; ev_actor = actor;
    ev_detail = detail }

let pp_event ppf e =
  Fmt.pf ppf "[%8dus] %s %-4s %-16s %-22s %s" e.ev_at_us (phase_to_string e.ev_phase)
    (to_string e.ev_ctx) e.ev_name e.ev_actor e.ev_detail
