(** Per-world observability registry: counters, gauges, histograms, the
    causal span log, and the deterministic circuit-id allocator. Subsumes
    [Ntcs_util.Metrics], which is a thin shim over this module. *)

type stat = [ `Counter of int | `Gauge of float ]

type t

val create : unit -> t
val reset : t -> unit

(** {1 Counters and gauges} *)

val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float

val counters_alist : t -> (string * int) list
val gauges_alist : t -> (string * float) list

val stats_alist : t -> (string * stat) list
(** Counters and gauges merged, sorted by name. *)

(** {1 Histograms} *)

val observe : t -> string -> int -> unit
(** Record a sample in histogram [name], creating it on first use. *)

val histo : t -> string -> Histo.t
(** The histogram named [name], created empty on first use. *)

val find_histo : t -> string -> Histo.t option
val histos_alist : t -> (string * Histo.t) list

(** {1 Circuit ids and spans} *)

val fresh_circuit : t -> int
(** Next world-unique circuit id (base + 1, base + 2, ...). Allocation
    order is fixed by the deterministic scheduler, so equal seeds allocate
    identical ids. *)

val set_circuit_base : t -> int -> unit
(** Shard namespace offset for parallel worlds (shard [i] gets
    [i * 1_000_000]) so circuit ids stay unique in merged span logs.
    Raises [Invalid_argument] once any circuit has been allocated. *)

val circuit_base : t -> int

val circuits_allocated : t -> int
(** Count of circuits allocated (excludes the base). *)

val span : t -> Span.event -> unit
val spans : t -> Span.event list
(** Oldest first. *)

val span_count : t -> int

(** {1 Printing} *)

val pp_stats : Format.formatter -> t -> unit
(** Counters then gauges, sorted — the [Metrics.pp] surface. *)

val pp : Format.formatter -> t -> unit
(** [pp_stats] plus histogram summaries and the span-log size. *)
