(* Per-world observability registry: the named counters and gauges that
   [Ntcs_util.Metrics] has always exposed, plus histograms and the causal
   span log, plus the seeded-deterministic circuit-id allocator. One
   registry per simulated world, so parallel experiments never share state
   and equal seeds replay identical allocations. *)

type stat = [ `Counter of int | `Gauge of float ]

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histos : (string, Histo.t) Hashtbl.t;
  mutable spans : Span.event list;  (** newest first *)
  mutable span_count : int;
  mutable next_circuit : int;  (** count allocated, not the last id *)
  mutable circuit_base : int;  (** shard namespace offset (parallel worlds) *)
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 8; histos = Hashtbl.create 16;
    spans = []; span_count = 0; next_circuit = 0; circuit_base = 0 }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histos;
  t.spans <- [];
  t.span_count <- 0;
  t.next_circuit <- 0;
  t.circuit_base <- 0

(* Cannot use Ntcs_util.sorted_bindings here — ntcs_util sits above us — so
   the registry carries its own deterministic iteration helper. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Counters and gauges *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.

let counters_alist t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)
let gauges_alist t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.gauges)

let stats_alist t : (string * stat) list =
  List.map (fun (k, v) -> (k, `Counter v)) (counters_alist t)
  @ List.map (fun (k, v) -> (k, `Gauge v)) (gauges_alist t)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Histograms *)

let histo t name =
  match Hashtbl.find_opt t.histos name with
  | Some h -> h
  | None ->
    let h = Histo.create () in
    Hashtbl.replace t.histos name h;
    h

let observe t name v = Histo.add (histo t name) v
let find_histo t name = Hashtbl.find_opt t.histos name
let histos_alist t = sorted_bindings t.histos

(* Circuit ids and the span log *)

let fresh_circuit t =
  t.next_circuit <- t.next_circuit + 1;
  t.circuit_base + t.next_circuit

(* Shard namespacing: a parallel world gives shard i the base i * 10^6 so
   circuit ids stay world-unique in merged span logs. Must be set before
   the first allocation — renumbering live circuits would orphan their
   spans. *)
let set_circuit_base t base =
  if t.next_circuit > 0 then
    invalid_arg "Registry.set_circuit_base: circuits already allocated";
  t.circuit_base <- base

let circuit_base t = t.circuit_base
let circuits_allocated t = t.next_circuit

let span t ev =
  t.spans <- ev :: t.spans;
  t.span_count <- t.span_count + 1

let spans t = List.rev t.spans
let span_count t = t.span_count

(* Printing. [pp_stats] is the historical Metrics.pp surface (now with
   gauges, per the long-standing bug); [pp] adds histogram summaries and the
   span-log size for a full snapshot. Both orderings are sorted, so two
   same-seed runs print byte-identical text. *)

let pp_gauge_value ppf v = Fmt.pf ppf "%.3f" v

let pp_stats ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-40s %d@." k v) (counters_alist t);
  List.iter (fun (k, v) -> Fmt.pf ppf "%-40s %a@." k pp_gauge_value v) (gauges_alist t)

let pp ppf t =
  pp_stats ppf t;
  List.iter
    (fun (k, h) -> Fmt.pf ppf "%-40s %a@." k Histo.pp h)
    (histos_alist t);
  if t.span_count > 0 then Fmt.pf ppf "%-40s %d@." "spans.events" t.span_count
