(** Mergeable log-bucketed histograms for non-negative integer samples
    (sim-time microseconds, frame bytes, retry counts, queue depths).

    Fixed 256-bucket layout: exact buckets for 0..3, then 4 linear
    sub-buckets per power-of-two octave, bounding quantile error to one
    sub-bucket width (25% relative) while count/sum/min/max stay exact. *)

type t

val create : unit -> t
val is_empty : t -> bool

val add : t -> int -> unit
(** Record one sample; negative samples are clamped to 0. *)

val merge : t -> t -> t
(** Bucket-wise sum; associative and commutative, inputs untouched. *)

val bucket_of : int -> int
(** Index of the bucket a value lands in — exposed for the boundary tests. *)

val lower_bound : int -> int
(** Smallest value landing in bucket [idx]. *)

val upper_bound : int -> int
(** Largest value landing in bucket [idx] ([max_int] for the last bucket). *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [0 < p <= 100]: upper bound of the bucket holding
    the rank-[ceil (p/100 * count)] sample, clamped to the observed max.
    0 when empty. *)

val p50 : t -> int
val p95 : t -> int
val p99 : t -> int

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
}

val summary : t -> summary
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
