(** Causal span contexts: circuit id + per-message sequence id, carried in
    the protocol header so every frame is attributable to one logical send. *)

type ctx = { sp_circuit : int; sp_seq : int }

val none : ctx
(** The null context ([sp_circuit = 0]): control traffic that predates
    circuit establishment (handshakes, opens) carries this. *)

val is_none : ctx -> bool
val make : circuit:int -> seq:int -> ctx

val to_string : ctx -> string
(** ["c<circuit>#<seq>"], the form embedded in trace details. *)

val of_string : string -> ctx option
(** Inverse of {!to_string}; [None] on malformed input. *)

type phase = B | E | I

val phase_to_string : phase -> string

type event = {
  ev_at_us : int;
  ev_ctx : ctx;
  ev_phase : phase;
  ev_name : string;
  ev_actor : string;
  ev_detail : string;
}

val event :
  at_us:int -> ctx:ctx -> phase:phase -> name:string -> actor:string -> string -> event

val pp_event : Format.formatter -> event -> unit
