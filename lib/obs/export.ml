(* Snapshot exporters. All three formats are rendered through a single
   Buffer with fully sorted iteration and fixed number formatting, so two
   registries built by equal-seed runs serialize to byte-identical strings —
   the acceptance bar for BENCH_obs.json and the golden Chrome trace. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ json_escape s ^ "\""

(* %g keeps gauges compact; its exponent form ("1e+06") is valid JSON. *)
let flt v = Printf.sprintf "%g" v

let obj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"

let histo_json h =
  let s = Histo.summary h in
  obj
    [
      ("count", string_of_int s.Histo.s_count);
      ("sum", string_of_int s.Histo.s_sum);
      ("min", string_of_int s.Histo.s_min);
      ("max", string_of_int s.Histo.s_max);
      ("p50", string_of_int s.Histo.s_p50);
      ("p95", string_of_int s.Histo.s_p95);
      ("p99", string_of_int s.Histo.s_p99);
      ("mean", flt (Histo.mean h));
    ]

(* Flat stats: every counter, gauge and histogram summary in one object. *)
let stats_json r =
  obj
    [
      ( "counters",
        obj (List.map (fun (k, v) -> (k, string_of_int v)) (Registry.counters_alist r)) );
      ("gauges", obj (List.map (fun (k, v) -> (k, flt v)) (Registry.gauges_alist r)));
      ("histograms", obj (List.map (fun (k, h) -> (k, histo_json h)) (Registry.histos_alist r)));
      ("circuits", string_of_int (Registry.circuits_allocated r));
      ("span_events", string_of_int (Registry.span_count r));
    ]

let span_json (e : Span.event) =
  obj
    [
      ("ts", string_of_int e.Span.ev_at_us);
      ("ph", str (Span.phase_to_string e.Span.ev_phase));
      ("circuit", string_of_int e.Span.ev_ctx.Span.sp_circuit);
      ("seq", string_of_int e.Span.ev_ctx.Span.sp_seq);
      ("name", str e.Span.ev_name);
      ("actor", str e.Span.ev_actor);
      ("detail", str e.Span.ev_detail);
    ]

(* One JSON object per line, oldest event first. *)
let spans_jsonl r =
  String.concat "" (List.map (fun e -> span_json e ^ "\n") (Registry.spans r))

(* Chrome trace-event format (about:tracing / Perfetto). Circuits map to
   Chrome "threads" so each circuit renders as its own timeline row; B/E
   pairs become duration slices, I events instant marks. *)
let chrome_event (e : Span.event) =
  let ph = match e.Span.ev_phase with Span.B -> "B" | Span.E -> "E" | Span.I -> "i" in
  let base =
    [
      ("name", str e.Span.ev_name);
      ("cat", str (Manifest.track_of e.Span.ev_name));
      ("ph", str ph);
      ("ts", string_of_int e.Span.ev_at_us);
      ("pid", "1");
      ("tid", string_of_int e.Span.ev_ctx.Span.sp_circuit);
    ]
  in
  let scope = match e.Span.ev_phase with Span.I -> [ ("s", str "t") ] | _ -> [] in
  let args =
    [
      ( "args",
        obj
          [
            ("span", str (Span.to_string e.Span.ev_ctx));
            ("actor", str e.Span.ev_actor);
            ("detail", str e.Span.ev_detail);
          ] );
    ]
  in
  obj (base @ scope @ args)

let chrome_trace r =
  let thread_names =
    (* Metadata events naming each circuit row, emitted once per circuit in
       id order so the export stays byte-stable. *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (e : Span.event) ->
        let c = e.Span.ev_ctx.Span.sp_circuit in
        if not (Hashtbl.mem seen c) then Hashtbl.replace seen c ())
      (Registry.spans r);
    let ids = Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare in
    List.map
      (fun c ->
        obj
          [
            ("name", str "thread_name");
            ("ph", str "M");
            ("pid", "1");
            ("tid", string_of_int c);
            ( "args",
              obj [ ("name", str (if c = 0 then "control" else Printf.sprintf "circuit %d" c)) ]
            );
          ])
      ids
  in
  obj
    [
      ( "traceEvents",
        arr (thread_names @ List.map chrome_event (Registry.spans r)) );
      ("displayTimeUnit", str "ms");
    ]
