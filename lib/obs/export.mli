(** Deterministic snapshot exporters: equal-seed runs serialize registries
    to byte-identical strings. *)

val json_escape : string -> string

val stats_json : Registry.t -> string
(** Flat JSON object: counters, gauges, histogram summaries, circuit and
    span-event totals. *)

val span_json : Span.event -> string
(** One span event as a JSON object (no trailing newline). *)

val spans_jsonl : Registry.t -> string
(** One JSON object per line per span event, oldest first. *)

val chrome_trace : Registry.t -> string
(** Chrome trace-event JSON for about:tracing / Perfetto: one timeline row
    per circuit, B/E duration slices, instant marks for hops. *)
