(* Log-bucketed histogram in the HdrHistogram family, sized for sim-time
   microseconds and byte counts. Values 0..3 get exact buckets; every
   power-of-two octave above that is split into 4 linear sub-buckets, so the
   relative quantile error is bounded by 25% while the whole structure is a
   fixed 256-slot int array. Merging is bucket-wise addition, which is
   associative and commutative — the property tests lean on that. *)

let sub_bits = 2 (* 4 sub-buckets per octave *)
let sub_count = 1 lsl sub_bits
let bucket_count = 256

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;  (** meaningful only when [count > 0] *)
  mutable max : int;
}

let create () =
  { buckets = Array.make bucket_count 0; count = 0; sum = 0; min = 0; max = 0 }

let is_empty t = t.count = 0

(* Index of the highest set bit of [v > 0]. *)
let msb v =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 v

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else begin
    let k = msb v in
    let sub = (v lsr (k - sub_bits)) land (sub_count - 1) in
    let idx = sub_count + (((k - sub_bits) * sub_count) + sub) in
    if idx >= bucket_count then bucket_count - 1 else idx
  end

let lower_bound idx =
  if idx < sub_count then idx
  else begin
    let k = sub_bits + ((idx - sub_count) / sub_count) in
    let sub = (idx - sub_count) mod sub_count in
    (1 lsl k) + (sub * (1 lsl (k - sub_bits)))
  end

(* Largest value that still lands in bucket [idx] (inclusive). *)
let upper_bound idx =
  if idx >= bucket_count - 1 then max_int else lower_bound (idx + 1) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  let idx = bucket_of v in
  t.buckets.(idx) <- t.buckets.(idx) + 1;
  t.sum <- t.sum + v;
  if t.count = 0 then begin
    t.min <- v;
    t.max <- v
  end
  else begin
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v
  end;
  t.count <- t.count + 1

let merge a b =
  let r = create () in
  Array.blit a.buckets 0 r.buckets 0 bucket_count;
  Array.iteri (fun i n -> r.buckets.(i) <- r.buckets.(i) + n) b.buckets;
  r.count <- a.count + b.count;
  r.sum <- a.sum + b.sum;
  (if a.count = 0 then begin
     r.min <- b.min;
     r.max <- b.max
   end
   else if b.count = 0 then begin
     r.min <- a.min;
     r.max <- a.max
   end
   else begin
     r.min <- min a.min b.min;
     r.max <- max a.max b.max
   end);
  r

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min
let max_value t = if t.count = 0 then 0 else t.max
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

(* Value at percentile [p] (0 < p <= 100): walk to the bucket holding the
   rank-th recorded value and report its upper bound, clamped to the exact
   observed maximum so p100 is precise. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec walk idx cum =
      if idx >= bucket_count then t.max
      else begin
        let cum = cum + t.buckets.(idx) in
        if cum >= rank then min (upper_bound idx) t.max else walk (idx + 1) cum
      end
    in
    walk 0 0
  end

let p50 t = percentile t 50.
let p95 t = percentile t 95.
let p99 t = percentile t 99.

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
}

let summary t =
  { s_count = t.count; s_sum = t.sum; s_min = min_value t; s_max = max_value t;
    s_p50 = p50 t; s_p95 = p95 t; s_p99 = p99 t }

let equal a b =
  a.count = b.count && a.sum = b.sum && a.min = b.min && a.max = b.max
  && a.buckets = b.buckets

let pp ppf t =
  if t.count = 0 then Fmt.pf ppf "empty"
  else
    Fmt.pf ppf "n=%d sum=%d min=%d p50=%d p95=%d p99=%d max=%d" t.count t.sum
      (min_value t) (p50 t) (p95 t) (p99 t) (max_value t)
