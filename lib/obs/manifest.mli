(** The registered trace/span category manifest. Lint rule R4 enforces that
    every [Trace.record ~cat] literal in the library tree appears here, so
    exporters never meet an unknown category. *)

val all : (string * string) list
(** Every registered category with a one-line description. *)

val categories : string list
(** Just the names, in manifest order. *)

val known : string -> bool

val track_of : string -> string
(** Layer prefix of a category (["lcm.retry"] → ["lcm"]), used to group
    Chrome-trace tracks. *)
