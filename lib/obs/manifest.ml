(* The registered category manifest: every category a [Trace.record] call or
   a span event may carry, with one line of documentation each. Exporters
   and the ntcs_stat timeline reader key off these names, so lint rule R4
   fails the build when a source file invents a category that is not listed
   here — add the category (and its meaning) to this table first. *)

let all =
  [
    (* ND layer: physical circuits over an IPCS backend. *)
    ("nd.open", "ND circuit opened to a peer");
    ("nd.accept", "ND acceptor completed a handshake");
    ("nd.send_fail", "ND frame transmission failed");
    ("nd.circuit_down", "ND circuit torn down");
    ("nd.bad_frame", "undecodable frame dropped by ND");
    ("nd.handshake_fail", "ND open/accept handshake failed");
    ("nd.listen_fail", "ND could not listen on a net");
    ("nd.tadd_purge", "ND purged a stale transport address");
    ("nd.tx", "frame left this machine (span instant)");
    ("nd.rx", "frame arrived at this machine (span instant)");
    (* IP layer: intermachine virtual circuits and conversion policy. *)
    ("ip.convert", "conversion mode chosen for an IVC");
    ("ip.ivc_open", "IVC open accepted by the remote IP layer");
    ("ip.ivc_open_sent", "IVC open request sent");
    ("ip.ivc_accept", "IVC open accepted locally");
    ("ip.ivc_close", "IVC closed");
    ("ip.ivc_reject", "IVC open rejected");
    ("ip.dup_open", "duplicate IVC open suppressed");
    ("ip.bad_open", "malformed IVC open dropped");
    ("ip.tadd_purge", "IP layer purged a stale transport address");
    (* LCM layer: logical circuits, retries, spans are born here. *)
    ("lcm.fault", "address fault: destination unknown/moved");
    ("lcm.relocate", "logical circuit re-pointed after relocation");
    ("lcm.retry", "LCM retry policy re-attempted a send");
    ("lcm.depth", "recursive-entry depth mark");
    ("lcm.circuit", "logical circuit span opened/closed");
    ("lcm.send", "asynchronous send span");
    ("lcm.send_dgram", "datagram send span");
    ("lcm.send_sync", "synchronous call span");
    ("lcm.reply", "reply send span");
    ("lcm.ping", "ping probe span");
    ("lcm.deliver", "frame delivered to the application inbox (span instant)");
    (* Gateway / router. *)
    ("gw.forward", "gateway forwarded a frame between nets");
    ("gw.splice", "gateway spliced two IVC legs");
    ("gw.close", "gateway tore down a splice");
    ("gw.addr", "gateway resolved a cross-net address");
    ("gw.up", "gateway serving a net");
    ("gw.dup_open", "gateway suppressed a duplicate open");
    ("gw.hop_overflow", "gateway dropped a frame whose hop count filled the 8-bit field (E7)");
    ("gw.register_fail", "gateway failed to register with the NS");
    (* Name server. *)
    ("ns.register", "name server registered a binding");
    ("ns.forward", "name server forwarded a request");
    ("ns.bad_request", "name server rejected a malformed request");
    (* Sharded naming plane (DESIGN.md §15). *)
    ("ns.shard.forward", "shard router forwarded a request to the owning shard");
    ("ns.shard.fallback", "shard owner unreachable: replica answered from its backup copy");
    ("ns.shard.gen", "shard owner bumped its invalidation generation");
    (* NSP-side lookup caches (versioned; only traced under a sharded plane). *)
    ("ns.cache.hit", "NSP lookup cache answered fresh");
    ("ns.cache.stale", "NSP lookup cache entry below its shard's generation floor (resolved as a miss)");
    ("ns.cache.store", "NSP lookup cache stored an authoritative answer");
    ("ns.cache.invalidate", "NSP lookup cache retired entries (generation floor raise or splice)");
    (* DRTS process control. *)
    ("pctl.bind_fail", "managed process failed to bind");
    ("pctl.kill", "managed process killed");
    ("pctl.relocate", "managed process relocated");
    (* IPCS backends. *)
    ("mbx.create", "mailbox backend created an endpoint");
    ("mbx.open", "mailbox backend opened an endpoint");
    ("tcp.connect", "TCP backend connected");
    ("tcp.listen", "TCP backend listening");
    (* Fault plane injections. *)
    ("fault.drop", "fault plane dropped a frame");
    ("fault.dup", "fault plane duplicated a frame");
    ("fault.reorder", "fault plane reordered a frame");
    ("fault.delay", "fault plane delayed a frame");
    ("fault.crash", "fault plane crashed a machine");
    ("fault.restart", "fault plane restarted a machine");
    ("fault.partition", "fault plane partitioned the world");
    ("fault.heal", "fault plane healed all partitions");
    ("fault.net_down", "fault plane took a net down");
    ("fault.net_up", "fault plane brought a net up");
    ("fault.error", "fault plane schedule referenced an unknown target");
    (* Pool sanitizer: buffer-lifetime violations on the zero-copy path. *)
    ("pool.sanitizer.poison", "sanitizer: a released buffer was written through a stale view");
    ("pool.sanitizer.double_release", "sanitizer: a buffer was released twice");
    ("pool.sanitizer.foreign_release", "sanitizer: a released buffer was never handed out");
    ("pool.sanitizer.leak", "sanitizer: a buffer was still outstanding at world teardown");
    (* Race checker: happens-before conflicts on registered shared cells. *)
    ("race.conflict", "race checker: conflicting accesses to a shared cell unordered by happens-before");
    (* Parallel worlds: cross-shard barrier-channel traffic. *)
    ("par.send", "cross-shard token posted to a barrier channel");
    ("par.recv", "cross-shard token delivered on the destination shard");
    ("par.token", "cross-shard coupling token (bench workloads)");
    ("par.tick", "parallel-harness local progress mark");
    (* Simulator. *)
    ("sim.crash", "machine crashed");
    ("sim.proc_crash", "process died with an exception");
    (* ComMod assembly. *)
    ("commod.registered", "ComMod registered with the name server");
  ]

let known =
  let tbl = lazy (List.map fst all) in
  fun cat -> List.mem cat (Lazy.force tbl)

let categories = List.map fst all

(* Chrome-trace track for a category: the prefix up to the first '.', which
   groups events by layer in the viewer. *)
let track_of cat =
  match String.index_opt cat '.' with Some i -> String.sub cat 0 i | None -> cat
