(* Deterministic, seeded fault plane.

   A [t] is a declarative description of how the world should misbehave —
   per-link frame fault rules (drop / duplicate / reorder / delay) and a
   timed schedule of machine crashes, restarts, partitions and heals — plus
   the seeded runtime state that makes every injection reproducible: the
   same spec and seed always yield the same fault schedule, byte for byte.

   The plane itself is passive. [World.install_faults] arms it: the world
   registers the schedule's timed events on the scheduler, points [emit] at
   its trace (every injected fault becomes a [fault.*] trace event, so the
   lifecycle automaton and the R3 invariant checkers keep working on faulty
   runs), and consults [frame_action]/[blocked] from inside
   [World.transmit].

   Frame faults apply only to transmissions the IPCS backends mark
   droppable — whole, self-contained ND frames. Control segments (SYN, FIN,
   channel-open) and partial segments of a larger frame are never dropped,
   duplicated or reordered: losing half a framed message would desynchronise
   the receiver's framing, which no real network failure produces (TCP
   retransmits; the ring delivers whole messages or nothing). Dropping a
   *whole* frame is exactly what a broken circuit looks like from above,
   which is the failure the NTCS recovery machinery claims to handle. *)

type rule = {
  r_net : Net.id option; (* None: applies on every network *)
  r_from : int; (* active window in virtual µs: [r_from, r_until) *)
  r_until : int;
  r_drop : float; (* per-frame probabilities, each in [0,1] *)
  r_dup : float;
  r_reorder : float;
  r_delay : float;
  r_delay_us : int; (* extra latency drawn uniformly from [1, r_delay_us] *)
}

let rule ?net ?(from_us = 0) ?(until_us = max_int) ?(drop = 0.) ?(dup = 0.) ?(reorder = 0.)
    ?(delay = 0.) ?(delay_us = 0) () =
  {
    r_net = net;
    r_from = from_us;
    r_until = until_us;
    r_drop = drop;
    r_dup = dup;
    r_reorder = reorder;
    r_delay = delay;
    r_delay_us = delay_us;
  }

(* Scheduled whole-world events. Machines and nets are named by their
   human-readable names, so a schedule can be written before the world is
   built; [World.install_faults] resolves them at arm time. *)
type event =
  | Crash of string (* machine: mark down, kill its processes *)
  | Restart of string
  | Partition of string list list
      (* isolate the machine groups from each other: frames between two
         different groups are refused at the wire, frames within a group
         (and to/from unlisted machines) pass. Replaces any earlier
         partition. *)
  | Heal (* forget the partition *)
  | Net_down of string (* whole-network outage, by net name *)
  | Net_up of string

type spec = {
  seed : int;
  rules : rule list;
  schedule : (int * event) list; (* (virtual µs, event), sorted at create *)
}

type action = Deliver | Drop | Duplicate | Delay of int | Reorder of int

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable blocked : int; (* frames refused by a partition *)
}

type t = {
  spec : spec;
  rng : Ntcs_util.Rng.t;
  blocked_pairs : (int * int, unit) Hashtbl.t; (* unordered machine-id pairs *)
  counters : counters;
  mutable emit : (cat:string -> detail:string -> unit) option;
}

let create ?(rules = []) ?(schedule = []) ~seed () =
  {
    spec =
      {
        seed;
        rules;
        (* Stable order: ties fire in list order, independent of how the
           caller happened to write the schedule. *)
        schedule = List.stable_sort (fun (a, _) (b, _) -> compare a b) schedule;
      };
    rng = Ntcs_util.Rng.create seed;
    blocked_pairs = Hashtbl.create 8;
    counters = { dropped = 0; duplicated = 0; reordered = 0; delayed = 0; blocked = 0 };
    emit = None;
  }

let seed t = t.spec.seed
let schedule t = t.spec.schedule
let counters t = t.counters

let set_emit t f = t.emit <- Some f

let trace t ~cat detail =
  match t.emit with None -> () | Some f -> f ~cat ~detail

(* --- partitions --- *)

let pair_key a b = if a <= b then (a, b) else (b, a)

let clear_partition t = Hashtbl.reset t.blocked_pairs

(* Block every pair of machine ids drawn from two different groups. *)
let block_groups t (groups : int list list) =
  clear_partition t;
  let rec outer = function
    | [] -> ()
    | g :: rest ->
      List.iter
        (fun other -> List.iter (fun a -> List.iter (fun b ->
             Hashtbl.replace t.blocked_pairs (pair_key a b) ()) other) g)
        rest;
      outer rest
  in
  outer groups

let blocked t a b = Hashtbl.mem t.blocked_pairs (pair_key a b)

let note_blocked t = t.counters.blocked <- t.counters.blocked + 1

(* --- frame faults --- *)

let rule_active r ~now ~net =
  now >= r.r_from && now < r.r_until
  && (match r.r_net with None -> true | Some id -> id = net)

let draw t p = p > 0. && Ntcs_util.Rng.float t.rng 1.0 < p

(* Decide the fate of one droppable frame. At most one fault per frame; the
   first matching rule wins and within it drop > dup > reorder > delay, so a
   spec reads top to bottom. Every decision draws from the plane's own
   seeded stream — the fault schedule is a pure function of (spec, consult
   order), and the consult order is the deterministic transmission order. *)
let frame_action t ~now ~net ~src ~dst =
  let rec go = function
    | [] -> Deliver
    | r :: rest ->
      if not (rule_active r ~now ~net) then go rest
      else if draw t r.r_drop then begin
        t.counters.dropped <- t.counters.dropped + 1;
        trace t ~cat:"fault.drop" (Printf.sprintf "%s -> %s net%d" src dst net);
        Drop
      end
      else if draw t r.r_dup then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        trace t ~cat:"fault.dup" (Printf.sprintf "%s -> %s net%d" src dst net);
        Duplicate
      end
      else if draw t r.r_reorder then begin
        let extra = 1 + Ntcs_util.Rng.int t.rng (max 1 r.r_delay_us) in
        t.counters.reordered <- t.counters.reordered + 1;
        trace t ~cat:"fault.reorder"
          (Printf.sprintf "%s -> %s net%d held %dus" src dst net extra);
        Reorder extra
      end
      else if draw t r.r_delay then begin
        let extra = 1 + Ntcs_util.Rng.int t.rng (max 1 r.r_delay_us) in
        t.counters.delayed <- t.counters.delayed + 1;
        trace t ~cat:"fault.delay"
          (Printf.sprintf "%s -> %s net%d +%dus" src dst net extra);
        Delay extra
      end
      else go rest
  in
  go t.spec.rules

let pp_event ppf = function
  | Crash m -> Fmt.pf ppf "crash %s" m
  | Restart m -> Fmt.pf ppf "restart %s" m
  | Partition groups ->
    Fmt.pf ppf "partition %s"
      (String.concat " | " (List.map (String.concat ",") groups))
  | Heal -> Fmt.string ppf "heal"
  | Net_down n -> Fmt.pf ppf "net-down %s" n
  | Net_up n -> Fmt.pf ppf "net-up %s" n
