(** Simulated machines: the VAX / Sun-3 / Apollo hosts of the paper.

    What matters to the NTCS is that machine types disagree about native
    data representation (byte order), giving the conversion machinery real
    work, and that each machine runs its own drifting clock, giving the
    DRTS time corrector real error to correct. *)

type mtype =
  | Vax  (** little-endian, Unix TCP *)
  | Sun3  (** big-endian, Unix TCP *)
  | Apollo  (** big-endian, Aegis MBX *)

type byte_order = Little_endian | Big_endian

val byte_order : mtype -> byte_order
val mtype_to_string : mtype -> string
val mtype_of_string : string -> mtype option

val repr_compatible : mtype -> mtype -> bool
(** Identical native data representation: image-mode byte copies are safe
    exactly between such machines. *)

type id = int

type t = {
  id : id;
  name : string;
  mtype : mtype;
  mutable up : bool;
  drift_ppm : float;  (** clock rate error, parts per million *)
  offset_us : int;  (** initial clock offset *)
}

val make :
  id:id -> name:string -> mtype:mtype -> ?drift_ppm:float -> ?offset_us:int -> unit -> t

val local_time : t -> now_us:int -> int
(** The machine's own wall clock as a function of global virtual time. *)

val pp : Format.formatter -> t -> unit
