(* A simulated world: scheduler + machines + networks + bookkeeping.
   This is the hypothetical multi-machine configuration the paper's figures
   sketch; experiments build one, spawn NTCS modules on its machines and run
   virtual time forward. *)

type t = {
  sched : Sched.t;
  metrics : Ntcs_util.Metrics.t;
  trace : Trace.t;
  rng : Ntcs_util.Rng.t;
  machines : (Machine.id, Machine.t) Hashtbl.t;
  nets : (Net.id, Net.t) Hashtbl.t;
  attachments : (Machine.id * Net.id, unit) Hashtbl.t;
  proc_machine : (Sched.pid, Machine.id) Hashtbl.t;
  mutable next_machine_id : int;
  mutable next_net_id : int;
  mutable seed : int;
}

let create ?(seed = 42) () =
  {
    sched = Sched.create ();
    metrics = Ntcs_util.Metrics.create ();
    trace = Trace.create ();
    rng = Ntcs_util.Rng.create seed;
    machines = Hashtbl.create 16;
    nets = Hashtbl.create 8;
    attachments = Hashtbl.create 32;
    proc_machine = Hashtbl.create 64;
    next_machine_id = 1;
    next_net_id = 1;
    seed;
  }

let sched t = t.sched
let metrics t = t.metrics
let trace t = t.trace
let rng t = t.rng
let now t = Sched.now t.sched

let record t ~cat ~actor detail = Trace.record t.trace ~at_us:(now t) ~cat ~actor detail

let add_machine t ~name mtype ?(drift_ppm = 0.) ?(offset_us = 0) () =
  let id = t.next_machine_id in
  t.next_machine_id <- id + 1;
  let m = Machine.make ~id ~name ~mtype ~drift_ppm ~offset_us () in
  Hashtbl.replace t.machines id m;
  m

let add_net t ~name kind ?latency () =
  let id = t.next_net_id in
  t.next_net_id <- id + 1;
  let n = Net.make ~id ~name ~kind ?latency ~seed:(t.seed * 31) () in
  Hashtbl.replace t.nets id n;
  n

let machine t id = Hashtbl.find t.machines id
let machine_opt t id = Hashtbl.find_opt t.machines id
let net t id = Hashtbl.find t.nets id
let net_opt t id = Hashtbl.find_opt t.nets id

let attach t (m : Machine.t) (n : Net.t) = Hashtbl.replace t.attachments (m.id, n.id) ()

let attached t mid nid = Hashtbl.mem t.attachments (mid, nid)

let nets_of_machine t mid =
  Ntcs_util.sorted_bindings t.attachments
  |> List.filter_map (fun ((m, n), ()) -> if m = mid then Some n else None)
  |> List.sort_uniq compare

let machines_on t nid =
  Ntcs_util.sorted_bindings t.attachments
  |> List.filter_map (fun ((m, n), ()) -> if n = nid then Some m else None)
  |> List.sort_uniq compare

let common_nets t m1 m2 =
  List.filter (fun n -> attached t m2 n) (nets_of_machine t m1)

let all_machines t =
  List.map snd (Ntcs_util.sorted_bindings t.machines)
  |> List.sort (fun (a : Machine.t) b -> compare a.id b.id)

let all_nets t =
  List.map snd (Ntcs_util.sorted_bindings t.nets)
  |> List.sort (fun (a : Net.t) b -> compare a.id b.id)

let spawn t ~machine:(m : Machine.t) ~name f =
  let pid = Sched.spawn ~name t.sched f in
  Hashtbl.replace t.proc_machine pid m.id;
  (* A crashing process would otherwise die silently; make it visible in the
     trace so experiments can assert the absence of crashes. *)
  Sched.on_exit t.sched pid (fun status ->
      match status with
      | Sched.Crashed e ->
        Trace.record t.trace ~at_us:(Sched.now t.sched) ~cat:"sim.proc_crash" ~actor:name
          (Printexc.to_string e)
      | Sched.Exited | Sched.Was_killed -> ());
  pid

let machine_of_proc t pid = Hashtbl.find_opt t.proc_machine pid

let procs_on_machine t mid =
  Ntcs_util.sorted_bindings t.proc_machine
  |> List.filter_map (fun (pid, m) -> if m = mid then Some pid else None)

let crash_machine t (m : Machine.t) =
  m.up <- false;
  record t ~cat:"sim.crash" ~actor:m.name "machine crashed";
  List.iter (fun pid -> Sched.kill t.sched pid) (procs_on_machine t m.id)

let restart_machine _t (m : Machine.t) = m.up <- true

(* Schedule delivery of [size] bytes from [src] to [dst] over [net]; returns
   false when the attempt cannot even leave (partition, crash, detachment).
   The callback re-checks destination liveness at delivery time so a machine
   crashing mid-flight swallows the bytes, like a real wire.

   [fifo], when given, is a per-flow high-water mark: arrival times are
   forced monotone so a flow (e.g. one direction of a TCP connection) never
   reorders even though each transmission draws independent jitter. *)
let transmit ?fifo t ~net:(n : Net.t) ~src:(src : Machine.t) ~dst:(dst : Machine.t) ~size
    deliver =
  if
    (not src.up) || (not dst.up) || (not n.up)
    || (not (attached t src.id n.id))
    || not (attached t dst.id n.id)
  then false
  else begin
    match Net.latency n ~size with
    | None -> false
    | Some lat ->
      Ntcs_util.Metrics.incr t.metrics "net.bytes" ~by:size;
      Ntcs_util.Metrics.incr t.metrics "net.frames";
      let arrival = Sched.now t.sched + lat in
      let arrival =
        match fifo with
        | Some r ->
          let a = max arrival !r in
          r := a;
          a
        | None -> arrival
      in
      Sched.at t.sched arrival (fun () -> if dst.up && n.up then deliver ());
      true
  end

let run ?until t = Sched.run ?until t.sched
