(* A simulated world: scheduler + machines + networks + bookkeeping.
   This is the hypothetical multi-machine configuration the paper's figures
   sketch; experiments build one, spawn NTCS modules on its machines and run
   virtual time forward. *)

(* The one world-construction surface. Until PR 8 every instrumentation
   feature grew its own toggle (World.install_faults, arm_pool_sanitizer,
   the {m_sanitize; m_races} record threaded through the check harness,
   chooser/monitor setters, Sched.set_event_limit): seven entry points a
   caller had to sequence correctly by hand. A Config is declarative data
   — in particular it can be stamped out per shard (Config.shard) so the
   parallel world gives every domain an identical-but-decorrelated copy. *)
module Config = struct
  type chooser =
    | Default  (* deterministic (time, seq) order *)
    | Choose of (time:int -> owners:int array -> int)
        (* exploration hook, same contract as Sched.set_chooser; every
           consulted choice is recorded in the world's choice log *)
    | Replay of int list
        (* replay a recorded choice log; exhausted or out-of-range entries
           fall back to owner 0 (the deterministic default) *)

  (* Naming-plane arm (DESIGN.md §15): how many shard name servers the
     deployment builder should stand up, and how large the NSP-side lookup
     caches are. Plain data here — the sim sits below lib/naming and
     lib/core; Cluster.build reads it and does the wiring. *)
  type naming = {
    shards : int; (* 1 = the classic single/replicated name server *)
    cache_capacity : int; (* per-ComMod NSP lookup-cache entries *)
  }

  let default_naming = { shards = 1; cache_capacity = 512 }

  type t = {
    seed : int;
    domains : int; (* shard count for Par worlds; 1 = plain sequential *)
    faults : Faults.spec option; (* declarative plane, armed at creation *)
    sanitize : bool; (* arm the pool sanitizer (PR 6) *)
    races : bool; (* request the race checker; armed by Ntcs_check *)
    chooser : chooser;
    event_limit : int; (* 0 = unlimited *)
    naming : naming; (* naming-plane shape, consumed by Cluster.build *)
  }

  let default =
    {
      seed = 42;
      domains = 1;
      faults = None;
      sanitize = false;
      races = false;
      chooser = Default;
      event_limit = 0;
      naming = default_naming;
    }

  let mode c = { Sched.Mode.sanitize = c.sanitize; races = c.races }

  (* Per-shard copy: decorrelated seed (prime stride), sequential inside
     the shard. Shard 0 keeps the base seed so a 1-domain Par world is
     the sequential world. *)
  let shard c ~shard = { c with seed = c.seed + (shard * 7919); domains = 1 }
end

type t = {
  sched : Sched.t;
  metrics : Ntcs_util.Metrics.t;
  trace : Trace.t;
  rng : Ntcs_util.Rng.t;
  pool : Ntcs_util.Pool.t; (* frame-buffer freelist shared by the world's stacks *)
  machines : (Machine.id, Machine.t) Hashtbl.t;
  nets : (Net.id, Net.t) Hashtbl.t;
  attachments : (Machine.id * Net.id, unit) Hashtbl.t;
  proc_machine : (Sched.pid, Machine.id) Hashtbl.t;
  mutable next_machine_id : int;
  mutable next_net_id : int;
  mutable seed : int;
  config : Config.t;
  mutable choices : (int * int) list; (* (choice, arity), newest first *)
  mutable faults : Faults.t option;
  (* Declared shared cells (domain-safety): the world-level mutable state
     every machine's stack can reach. The race checker (Check_race) arms a
     monitor on the scheduler; until then each access note is one option
     match. *)
  c_topology : Sched.cell; (* machines/nets/attachments + up flags *)
  c_procs : Sched.cell; (* pid -> machine table *)
  c_faults : Sched.cell; (* fault-plane partition set + seeded draw state *)
}

(* Record construction only; [create] (below the fault plane, which it
   arms) applies the config. *)
let make (config : Config.t) =
  let seed = config.Config.seed in
  let metrics = Ntcs_util.Metrics.create () in
  let sched = Sched.create () in
  {
    sched;
    metrics;
    trace = Trace.create ();
    rng = Ntcs_util.Rng.create seed;
    pool = Ntcs_util.Pool.create ~registry:metrics ();
    machines = Hashtbl.create 16;
    nets = Hashtbl.create 8;
    attachments = Hashtbl.create 32;
    proc_machine = Hashtbl.create 64;
    next_machine_id = 1;
    next_net_id = 1;
    seed;
    config;
    choices = [];
    faults = None;
    (* Topology is written only by the coordinator (setup, fault schedule,
       test driver), so conflicting accesses must be barrier-ordered. The
       proc table and the fault plane's seeded draw state are sanctioned
       shared state with an explicit migration story (ROADMAP 2). *)
    c_topology = Sched.register_cell sched ~name:"world.topology" ~policy:Sched.Exclusive;
    c_procs =
      Sched.register_cell sched ~name:"world.procs"
        ~policy:
          (Sched.Waived
             "pid-keyed inserts are disjoint; parallel worlds shard the table per \
              domain and merge at virtual-time barriers");
    c_faults =
      Sched.register_cell sched ~name:"world.faults"
        ~policy:
          (Sched.Waived
             "seeded per-frame fault draws serialize on the coordinator until \
              per-link rng streams land (ROADMAP 2)");
  }

let sched t = t.sched
let config t = t.config
let mode t = Config.mode t.config
let choice_log t = List.rev t.choices
let set_label t l = Sched.set_label t.sched l
let label t = Sched.label t.sched
let metrics t = t.metrics
let cell_topology t = t.c_topology
let cell_procs t = t.c_procs
let cell_faults t = t.c_faults
let trace t = t.trace
let rng t = t.rng
let pool t = t.pool
let now t = Sched.now t.sched

(* The metrics registry *is* the observability registry (the Metrics type
   equality is public); [obs] just names the wider surface. *)
let obs t = t.metrics

let record t ~cat ~actor detail = Trace.record t.trace ~at_us:(now t) ~cat ~actor detail

let observe t name v = Ntcs_obs.Registry.observe t.metrics name v

let span t ~ctx ~phase ~name ~actor detail =
  Ntcs_obs.Registry.span t.metrics
    (Ntcs_obs.Span.event ~at_us:(now t) ~ctx ~phase ~name ~actor detail)

let add_machine t ~name mtype ?(drift_ppm = 0.) ?(offset_us = 0) () =
  Sched.access t.sched t.c_topology ~write:true;
  let id = t.next_machine_id in
  t.next_machine_id <- id + 1;
  let m = Machine.make ~id ~name ~mtype ~drift_ppm ~offset_us () in
  Hashtbl.replace t.machines id m;
  m

let add_net t ~name kind ?latency () =
  Sched.access t.sched t.c_topology ~write:true;
  let id = t.next_net_id in
  t.next_net_id <- id + 1;
  let n = Net.make ~id ~name ~kind ?latency ~seed:(t.seed * 31) () in
  Hashtbl.replace t.nets id n;
  n

let machine t id =
  Sched.access t.sched t.c_topology ~write:false;
  Hashtbl.find t.machines id

let machine_opt t id =
  Sched.access t.sched t.c_topology ~write:false;
  Hashtbl.find_opt t.machines id

let net t id =
  Sched.access t.sched t.c_topology ~write:false;
  Hashtbl.find t.nets id

let net_opt t id =
  Sched.access t.sched t.c_topology ~write:false;
  Hashtbl.find_opt t.nets id

let attach t (m : Machine.t) (n : Net.t) =
  Sched.access t.sched t.c_topology ~write:true;
  Hashtbl.replace t.attachments (m.id, n.id) ()

let attached t mid nid =
  Sched.access t.sched t.c_topology ~write:false;
  Hashtbl.mem t.attachments (mid, nid)

let nets_of_machine t mid =
  Sched.access t.sched t.c_topology ~write:false;
  Ntcs_util.sorted_bindings t.attachments
  |> List.filter_map (fun ((m, n), ()) -> if m = mid then Some n else None)
  |> List.sort_uniq compare

let machines_on t nid =
  Sched.access t.sched t.c_topology ~write:false;
  Ntcs_util.sorted_bindings t.attachments
  |> List.filter_map (fun ((m, n), ()) -> if n = nid then Some m else None)
  |> List.sort_uniq compare

let common_nets t m1 m2 =
  List.filter (fun n -> attached t m2 n) (nets_of_machine t m1)

let all_machines t =
  List.map snd (Ntcs_util.sorted_bindings t.machines)
  |> List.sort (fun (a : Machine.t) b -> compare a.id b.id)

let all_nets t =
  List.map snd (Ntcs_util.sorted_bindings t.nets)
  |> List.sort (fun (a : Net.t) b -> compare a.id b.id)

let spawn t ~machine:(m : Machine.t) ~name f =
  Sched.access t.sched t.c_procs ~write:true;
  let pid = Sched.spawn ~name t.sched f in
  Hashtbl.replace t.proc_machine pid m.id;
  (* A crashing process would otherwise die silently; make it visible in the
     trace so experiments can assert the absence of crashes. *)
  Sched.on_exit t.sched pid (fun status ->
      match status with
      | Sched.Crashed e ->
        Trace.record t.trace ~at_us:(Sched.now t.sched) ~cat:"sim.proc_crash" ~actor:name
          (Printexc.to_string e)
      | Sched.Exited | Sched.Was_killed -> ());
  pid

let machine_of_proc t pid =
  Sched.access t.sched t.c_procs ~write:false;
  Hashtbl.find_opt t.proc_machine pid

let procs_on_machine t mid =
  Sched.access t.sched t.c_procs ~write:false;
  Ntcs_util.sorted_bindings t.proc_machine
  |> List.filter_map (fun (pid, m) -> if m = mid then Some pid else None)

let crash_machine t (m : Machine.t) =
  Sched.access t.sched t.c_topology ~write:true;
  m.up <- false;
  record t ~cat:"sim.crash" ~actor:m.name "machine crashed";
  List.iter (fun pid -> Sched.kill t.sched pid) (procs_on_machine t m.id)

let restart_machine t (m : Machine.t) =
  Sched.access t.sched t.c_topology ~write:true;
  m.up <- true

(* --- the fault plane --- *)

let faults t = t.faults

let machine_by_name t name =
  List.find_opt (fun (m : Machine.t) -> m.name = name) (all_machines t)

let net_by_name t name = List.find_opt (fun (n : Net.t) -> n.name = name) (all_nets t)

(* One scheduled fault event fires: resolve the names against this world and
   apply it. Unknown names are traced rather than raised — a schedule is
   data, and exploration reruns must not die on a typo. *)
let apply_fault_event t (f : Faults.t) (ev : Faults.event) =
  (* Labelled [~cat] so every category literal sits at a `~cat:"..."` site
     the R4 manifest lint can see. *)
  let fault_trace ~cat detail = record t ~cat ~actor:"faults" detail in
  match ev with
  | Faults.Crash name -> (
    match machine_by_name t name with
    | Some m ->
      fault_trace ~cat:"fault.crash" name;
      crash_machine t m
    | None -> fault_trace ~cat:"fault.error" ("no such machine: " ^ name))
  | Faults.Restart name -> (
    match machine_by_name t name with
    | Some m ->
      fault_trace ~cat:"fault.restart" name;
      restart_machine t m
    | None -> fault_trace ~cat:"fault.error" ("no such machine: " ^ name))
  | Faults.Partition groups ->
    let ids =
      List.map (List.filter_map (fun name ->
          match machine_by_name t name with
          | Some m -> Some m.Machine.id
          | None ->
            fault_trace ~cat:"fault.error" ("no such machine: " ^ name);
            None))
        groups
    in
    fault_trace ~cat:"fault.partition"
      (String.concat " | " (List.map (String.concat ",") groups));
    Sched.access t.sched t.c_faults ~write:true;
    Faults.block_groups f ids
  | Faults.Heal ->
    fault_trace ~cat:"fault.heal" "";
    Sched.access t.sched t.c_faults ~write:true;
    Faults.clear_partition f
  | Faults.Net_down name -> (
    match net_by_name t name with
    | Some n ->
      fault_trace ~cat:"fault.net_down" name;
      Sched.access t.sched t.c_topology ~write:true;
      n.Net.up <- false
    | None -> fault_trace ~cat:"fault.error" ("no such net: " ^ name))
  | Faults.Net_up name -> (
    match net_by_name t name with
    | Some n ->
      fault_trace ~cat:"fault.net_up" name;
      Sched.access t.sched t.c_topology ~write:true;
      n.Net.up <- true
    | None -> fault_trace ~cat:"fault.error" ("no such net: " ^ name))

(* Arm a fault plane on this world: point its trace emitter at ours and
   register every scheduled event on the scheduler. *)
let install_faults t (f : Faults.t) =
  t.faults <- Some f;
  Faults.set_emit f (fun ~cat ~detail -> record t ~cat ~actor:"faults" detail);
  List.iter
    (fun (at_us, ev) -> Sched.at t.sched at_us (fun () -> apply_fault_event t f ev))
    (Faults.schedule f)

(* Arm the buffer-pool sanitizer on this world: violations become
   deterministic trace events stamped with virtual time, alongside the
   [pool.sanitizer.*] registry counters the pool keeps on its own. Arm
   before traffic runs — hand-outs alive at arming time would read as
   foreign on release. *)
let arm_pool_sanitizer t =
  Ntcs_util.Pool.set_emit t.pool (fun ~cat ~detail -> record t ~cat ~actor:"pool" detail);
  Ntcs_util.Pool.set_sanitize t.pool true

(* Teardown leak report: one [pool.sanitizer.leak] event per buffer still
   outstanding; returns the count. A report, not a failure — crashed
   machines legitimately strand their in-flight buffers. *)
let pool_leak_check t = Ntcs_util.Pool.leak_check t.pool

(* Wire the configured chooser into the scheduler, recording every
   consulted choice as (index, arity) in the world's choice log. Replay
   consumes a previously recorded log (choice indices only); exhausted or
   out-of-range entries fall back to 0, the deterministic default, so a
   log recorded on one schedule prefix replays safely on any world. *)
let apply_chooser t =
  match t.config.Config.chooser with
  | Config.Default -> ()
  | Config.Choose f ->
    Sched.set_chooser t.sched
      (Some
         (fun ~time ~owners ->
           let n = Array.length owners in
           let i = f ~time ~owners in
           let i = if i < 0 || i >= n then 0 else i in
           t.choices <- (i, n) :: t.choices;
           i))
  | Config.Replay log ->
    let rem = ref log in
    Sched.set_chooser t.sched
      (Some
         (fun ~time:_ ~owners ->
           let n = Array.length owners in
           let c =
             match !rem with
             | [] -> 0
             | c :: rest ->
               rem := rest;
               c
           in
           let i = if c < 0 || c >= n then 0 else c in
           t.choices <- (i, n) :: t.choices;
           i))

(* The single construction entrypoint: build the record, then apply every
   configured feature in one fixed order (limit, chooser, sanitizer,
   faults) so callers can no longer sequence the old per-feature arms
   wrongly. [races] is carried, not armed, here — the race checker lives
   in Ntcs_check (above this library); it arms itself on any world whose
   [mode] asks for it. *)
let create ?(config = Config.default) () =
  let t = make config in
  if config.Config.event_limit > 0 then
    Sched.set_event_limit t.sched config.Config.event_limit;
  apply_chooser t;
  if config.Config.sanitize then arm_pool_sanitizer t;
  (match config.Config.faults with
   | Some (spec : Faults.spec) ->
     install_faults t
       (Faults.create ~rules:spec.Faults.rules ~schedule:spec.Faults.schedule
          ~seed:spec.Faults.seed ())
   | None -> ());
  t

(* Schedule delivery of [size] bytes from [src] to [dst] over [net]; returns
   false when the attempt cannot even leave (partition, crash, detachment).
   The callback re-checks destination liveness at delivery time so a machine
   crashing mid-flight swallows the bytes, like a real wire.

   [fifo], when given, is a per-flow high-water mark: arrival times are
   forced monotone so a flow (e.g. one direction of a TCP connection) never
   reorders even though each transmission draws independent jitter.

   [droppable] marks a transmission carrying one whole, self-contained ND
   frame: only those may be dropped, duplicated or reordered by an installed
   fault plane (losing part of a frame would desynchronise framing, which no
   real network failure produces). A reordered frame is delivered late
   {e without} advancing the flow's high-water mark, so later frames
   overtake it; a delayed frame advances the mark and stalls the flow. *)
let transmit ?fifo ?(droppable = false) t ~net:(n : Net.t) ~src:(src : Machine.t)
    ~dst:(dst : Machine.t) ~size deliver =
  let partitioned =
    Sched.access t.sched t.c_faults ~write:false;
    match t.faults with
    | Some f when Faults.blocked f src.id dst.id ->
      Faults.note_blocked f;
      Ntcs_util.Metrics.incr t.metrics "fault.blocked_frames";
      true
    | Some _ | None -> false
  in
  Sched.access t.sched t.c_topology ~write:false;
  if
    partitioned || (not src.up) || (not dst.up) || (not n.up)
    || (not (attached t src.id n.id))
    || not (attached t dst.id n.id)
  then false
  else begin
    match Net.latency n ~size with
    | None -> false
    | Some lat ->
      let action =
        match t.faults with
        | Some f when droppable ->
          (* A per-frame rule draw advances the fault plane's rng: a write. *)
          Sched.access t.sched t.c_faults ~write:true;
          Faults.frame_action f ~now:(Sched.now t.sched) ~net:n.id ~src:src.name
            ~dst:dst.name
        | Some _ | None -> Faults.Deliver
      in
      match action with
      | Faults.Drop ->
        (* The bytes left the source and died on the wire: the sender sees
           success, the receiver sees nothing — exactly a lost frame. *)
        Ntcs_util.Metrics.incr t.metrics "fault.dropped_frames";
        true
      | Faults.Deliver | Faults.Duplicate | Faults.Delay _ | Faults.Reorder _ ->
        Ntcs_util.Metrics.incr t.metrics "net.bytes" ~by:size;
        Ntcs_util.Metrics.incr t.metrics "net.frames";
        Ntcs_obs.Registry.observe t.metrics "net.frame_bytes" size;
        let natural = Sched.now t.sched + lat in
        let schedule_at arrival =
          Sched.at t.sched arrival (fun () -> if dst.up && n.up then deliver ())
        in
        let fifo_arrival arrival =
          match fifo with
          | Some r ->
            let a = max arrival !r in
            r := a;
            a
          | None -> arrival
        in
        (match action with
         | Faults.Drop -> assert false
         | Faults.Deliver -> schedule_at (fifo_arrival natural)
         | Faults.Duplicate ->
           (* Two copies, in flow order: the duplicate trails the original. *)
           let first = fifo_arrival natural in
           schedule_at first;
           schedule_at (fifo_arrival (first + 1));
           Ntcs_util.Metrics.incr t.metrics "fault.duplicated_frames"
         | Faults.Delay extra ->
           schedule_at (fifo_arrival (natural + extra));
           Ntcs_util.Metrics.incr t.metrics "fault.delayed_frames"
         | Faults.Reorder extra ->
           (* Late delivery that does not advance the high-water mark: this
              frame still arrives after everything already sent on the flow,
              but later frames overtake it. *)
           let base = match fifo with Some r -> max natural !r | None -> natural in
           schedule_at (base + extra);
           Ntcs_util.Metrics.incr t.metrics "fault.reordered_frames");
        true
  end

let run ?until t = Sched.run ?until t.sched

(* --- domain-parallel worlds ----------------------------------------- *)

(* A parallel world is N completely isolated sequential worlds (one per
   shard, each its own scheduler/trace/registry/rng/pool — the R8
   ownership map proves lib/ has no ambient shared state) coupled only
   through the Barrier coordinator's typed channels. Everything
   deterministic about one world stays deterministic here: the barrier's
   flush order is a pure function of virtual time and program order, so a
   run is bit-identical for any worker count (see barrier.ml). *)
module Par = struct
  type world = t

  type t = {
    p_config : Config.t;
    p_shards : world array;
    p_barrier : Barrier.t;
  }

  (* Shard i's circuit ids live in [i*stride + 1, ...): merged span logs
     stay world-unique without coordination. 10^6 circuits per shard
     outruns any current workload by ~3 orders of magnitude. *)
  let circuit_stride = 1_000_000

  let create ?(quantum = 1_000) ?(namespace_circuits = true) ?shard_config
      (config : Config.t) =
    let n = max 1 config.Config.domains in
    (* [shard_config] overrides the derived per-shard config — the replay
       path needs it to feed shard i its own recorded choice log — but a
       shard world is always sequential, whatever the override says. *)
    let config_of i =
      match shard_config with
      | Some f -> { (f i) with Config.domains = 1 }
      | None -> Config.shard config ~shard:i
    in
    let shards =
      Array.init n (fun i ->
          let w = create ~config:(config_of i) () in
          Sched.set_label w.sched (Printf.sprintf "s%d" i);
          if namespace_circuits && n > 1 then
            Ntcs_obs.Registry.set_circuit_base w.metrics (i * circuit_stride);
          w)
    in
    let barrier = Barrier.create ~quantum (Array.map (fun w -> w.sched) shards) in
    { p_config = config; p_shards = shards; p_barrier = barrier }

  let config p = p.p_config
  let shards p = p.p_shards
  let shard p i = p.p_shards.(i)
  let shard_count p = Array.length p.p_shards
  let barrier p = p.p_barrier
  let quantum p = Barrier.quantum p.p_barrier

  let chan p ~src ~dst ~latency = Barrier.Chan.create p.p_barrier ~src ~dst ~latency

  let run ?until ?workers p = Barrier.run ?until ?workers p.p_barrier
  let epochs p = Barrier.epochs p.p_barrier
  let messages_exchanged p = Barrier.messages_exchanged p.p_barrier
  let events_per_shard p = Array.map (fun w -> Sched.events_executed w.sched) p.p_shards

  (* Merged logs. A stable sort on virtual time alone keeps, within one
     instant, shard order and then each shard's own program order — the
     same total order the barrier uses, so merged logs are as
     deterministic as the run itself. *)
  let merged_trace p =
    Array.to_list p.p_shards
    |> List.mapi (fun i w -> List.map (fun e -> (i, e)) (Trace.entries w.trace))
    |> List.concat
    |> List.stable_sort (fun (_, a) (_, b) -> compare a.Trace.at_us b.Trace.at_us)

  let merged_trace_lines p =
    merged_trace p |> List.map (fun (i, e) -> Format.asprintf "s%d %a" i Trace.pp_entry e)

  let merged_spans p =
    Array.to_list p.p_shards
    |> List.concat_map (fun w -> Ntcs_obs.Registry.spans w.metrics)
    |> List.stable_sort (fun (a : Ntcs_obs.Span.event) b ->
           compare a.Ntcs_obs.Span.ev_at_us b.Ntcs_obs.Span.ev_at_us)

  let blocked_processes p =
    Array.to_list p.p_shards
    |> List.concat_map (fun w -> Sched.blocked_processes w.sched)
    |> List.sort String.compare

  let choice_logs p = Array.map choice_log p.p_shards

  let leak_check p = Array.fold_left (fun acc w -> acc + pool_leak_check w) 0 p.p_shards
end
