(* Simulated machines. The three machine types mirror the hosts the paper
   ran on; what matters for the NTCS is that they disagree about native data
   representation (byte order), so the conversion-mode machinery has real
   work to do, and that each runs its own drifting clock, so the DRTS time
   corrector has real error to correct. *)

type mtype =
  | Vax (* little-endian, Unix TCP *)
  | Sun3 (* big-endian, Unix TCP *)
  | Apollo (* big-endian, Aegis MBX *)

type byte_order = Little_endian | Big_endian

let byte_order = function
  | Vax -> Little_endian
  | Sun3 | Apollo -> Big_endian

let mtype_to_string = function
  | Vax -> "vax"
  | Sun3 -> "sun3"
  | Apollo -> "apollo"

let mtype_of_string = function
  | "vax" -> Some Vax
  | "sun3" -> Some Sun3
  | "apollo" -> Some Apollo
  | _ -> None

(* Identical native data representation: image-mode (byte-copy) messages are
   safe exactly between such machines. Byte order is the representative
   difference we model; the paper also had structure-padding differences. *)
let repr_compatible a b = byte_order a = byte_order b

type id = int

type t = {
  id : id;
  name : string;
  mtype : mtype;
  mutable up : bool;
  drift_ppm : float; (* clock rate error, parts per million *)
  offset_us : int; (* initial clock offset *)
}

let make ~id ~name ~mtype ?(drift_ppm = 0.) ?(offset_us = 0) () =
  { id; name; mtype; up = true; drift_ppm; offset_us }

(* The machine's own wall clock as a function of global virtual time. *)
let local_time m ~now_us =
  now_us + m.offset_us + int_of_float (float_of_int now_us *. m.drift_ppm /. 1_000_000.)

let pp ppf m =
  Fmt.pf ppf "%s#%d(%s%s)" m.name m.id (mtype_to_string m.mtype) (if m.up then "" else ",down")
