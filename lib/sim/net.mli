(** Simulated networks.

    Each network has a kind (constraining which native IPCS can run over
    it), a latency model, and an up/down flag for partition experiments.
    Networks are deliberately disjoint: crossing them requires an NTCS
    gateway, as in the paper. *)

type kind =
  | Tcp_lan  (** Ethernet-style LAN carrying Unix TCP *)
  | Mbx_ring  (** Apollo ring carrying MBX *)
  | Tcp_longhaul  (** slow wide-area TCP link *)

val kind_to_string : kind -> string

type id = int

type t = {
  id : id;
  name : string;
  kind : kind;
  latency_base_us : int;
  latency_per_kb_us : int;
  jitter_us : int;
  mutable up : bool;
  rng : Ntcs_util.Rng.t;
}

val default_latency : kind -> int * int * int
(** [(base_us, per_kb_us, jitter_us)]. *)

val make :
  id:id -> name:string -> kind:kind -> ?latency:int * int * int -> ?seed:int -> unit -> t

val latency : t -> size:int -> int option
(** Transit time for [size] bytes, or [None] when partitioned. Draws
    deterministic jitter from the network's own stream. *)

val pp : Format.formatter -> t -> unit
