(* Exhaustive schedule exploration for bounded scenarios.

   The scheduler is deterministic, so the only nondeterminism a real system
   would exhibit shows up here as *same-time* events owned by different
   processes. [Sched.set_chooser] turns each such point into an explicit
   choice; this module drives a depth-first enumeration of every choice
   sequence, rebuilding the world from scratch for each schedule (scenarios
   are closures over fresh state, and same choices => same run).

   The reduction is persistent-set flavoured rather than brute-force over
   event permutations: each owner's events are a fixed program-order
   sequence, so a choice point over k same-time events collapses to a choice
   over the (usually far fewer) distinct owners, and singleton points never
   branch at all. That is exactly the set of schedules a preemptive OS
   scheduler could produce under the simulator's timing model.

   A budget caps the number of schedules; exhausting it marks the outcome
   [truncated] so a test can insist on full exploration. *)

type outcome = {
  schedules : int; (* schedules fully executed *)
  choice_points : int; (* multi-owner points encountered, over all schedules *)
  max_branch : int; (* widest choice point seen *)
  truncated : bool; (* budget ran out before the tree was exhausted *)
  failures : (int list * string) list; (* (choice path, violation) *)
}

let pp_outcome ppf o =
  Format.fprintf ppf "%d schedule(s), %d choice point(s), max branch %d%s, %d failure(s)"
    o.schedules o.choice_points o.max_branch
    (if o.truncated then " [truncated]" else "")
    (List.length o.failures)

(* One run under a choice [prefix]: choices beyond the prefix default to 0.
   Returns the (choice, arity) pairs actually taken, in order, plus the
   scenario's violations. Points where [branch] declines are taken in
   default order without consuming prefix — scenarios use this to boot
   deterministically and explore only the exchange under test. *)
let run_one ~prefix ~branch ~make ~on_choice =
  let taken = ref [] in
  let depth = ref 0 in
  let sched, body = make () in
  Sched.set_chooser sched
    (Some
       (fun ~time ~owners ->
         let n = Array.length owners in
         if not (branch ~time ~owners) then 0
         else begin
           let i = !depth in
           incr depth;
           let choice = match List.nth_opt prefix i with Some c -> c | None -> 0 in
           let choice = if choice < 0 || choice >= n then 0 else choice in
           taken := (choice, n) :: !taken;
           on_choice n;
           choice
         end));
  let violations =
    try body ()
    with e -> [ Printf.sprintf "schedule raised %s" (Printexc.to_string e) ]
  in
  let taken = List.rev !taken in
  let violations =
    (* Replay safety net: a prefix must be consumed in full, otherwise the
       scenario is not deterministic in its choices and the enumeration is
       meaningless. *)
    if !depth < List.length prefix then
      "schedule replay diverged: fewer choice points than the prefix" :: violations
    else violations
  in
  (taken, violations)

(* Next prefix in depth-first order: increment the deepest choice that still
   has unexplored siblings, dropping everything after it. *)
let next_prefix taken =
  let rec strip = function
    | [] -> None
    | (c, n) :: shallower ->
      if c + 1 < n then Some (List.rev_map fst shallower @ [ c + 1 ])
      else strip shallower
  in
  strip (List.rev taken)

let run ?(max_schedules = 1000) ?(branch = fun ~time:_ ~owners:_ -> true) ~make () =
  let schedules = ref 0 in
  let choice_points = ref 0 in
  let max_branch = ref 1 in
  let truncated = ref false in
  let failures = ref [] in
  let on_choice n =
    incr choice_points;
    if n > !max_branch then max_branch := n
  in
  let prefix = ref (Some []) in
  let continue_ = ref true in
  while !continue_ do
    match !prefix with
    | None -> continue_ := false
    | Some p ->
      if !schedules >= max_schedules then begin
        truncated := true;
        continue_ := false
      end
      else begin
        incr schedules;
        let taken, violations = run_one ~prefix:p ~branch ~make ~on_choice in
        let path = List.map fst taken in
        List.iter (fun v -> failures := (path, v) :: !failures) violations;
        prefix := next_prefix taken
      end
  done;
  {
    schedules = !schedules;
    choice_points = !choice_points;
    max_branch = !max_branch;
    truncated = !truncated;
    failures = List.rev !failures;
  }
