(** Conservative virtual-time barrier coordinator over shard schedulers —
    the synchronization kernel of domain-parallel world execution
    (ROADMAP 2).

    Each shard is a complete, self-contained {!Sched.t} (the R8 ownership
    map machine-checks that shards share no ambient mutable state); shards
    couple only through typed {!Chan}s owned by this coordinator. Time
    advances in {e epochs}: at each barrier the coordinator flushes every
    cross-shard message posted during the previous epoch into the
    destination heaps, computes [tmin] (the global earliest pending
    event), and runs every shard to [tmin + quantum] — on parallel
    domains when [workers > 1].

    {b Determinism.} Cross-shard sends only append to the sending shard's
    private outbox; the coordinator alone drains outboxes, sorting all
    pending messages by (arrival time, source shard, per-source send
    sequence) — a total order derived from virtual time and program
    order, never from wall-clock interleaving. Because every channel's
    latency is at least the quantum (enforced at creation), a message
    sent at time [tau >= tmin] arrives at [tau + latency >= tmin +
    quantum], i.e. never inside the epoch that produced it. The epoch
    structure is therefore a pure function of the program and its seeds,
    and a run is bit-identical for {e any} worker count. *)

type t

val create : quantum:int -> Sched.t array -> t
(** [create ~quantum scheds] couples the given shard schedulers. The
    quantum (virtual µs) is the conservative lookahead: every channel
    must have latency ≥ quantum. Raises [Invalid_argument] on a
    non-positive quantum or an empty shard array. *)

val quantum : t -> int
val shard_count : t -> int

val post : t -> src:int -> dst:int -> arrival:int -> (unit -> unit) -> unit
(** Low-level cross-shard send, called from inside shard [src]'s running
    epoch: [deliver] runs on shard [dst] at absolute virtual time
    [arrival]. Raises [Invalid_argument] when [arrival] is less than the
    sender's clock plus the quantum (the lookahead invariant) or a shard
    index is out of range. Most code should use {!Chan} instead. *)

val run : ?until:int -> ?workers:int -> t -> unit
(** Run the coupled world to quiescence, or to virtual time [until]
    (every shard clock then advances to exactly [until], like
    {!Sched.run}). [workers] (default 1) is the number of OCaml domains
    used per epoch: shard [s] runs on worker [s mod workers], workers
    beyond the first are spawned per epoch and joined at the barrier.
    Output is bit-identical for every [workers] value. *)

val epochs : t -> int
(** Barrier rounds completed so far. *)

val messages_exchanged : t -> int
(** Cross-shard messages flushed through barriers so far. *)

(** Typed, unidirectional cross-shard channel: the only sanctioned way
    for shards to communicate. Latency must be ≥ the barrier quantum. *)
module Chan : sig
  type barrier := t

  type 'a t

  val create : barrier -> src:int -> dst:int -> latency:int -> 'a t
  (** Raises [Invalid_argument] when [latency < quantum] or a shard index
      is out of range. *)

  val set_handler : 'a t -> ('a -> unit) -> unit
  (** Install the destination-side delivery handler; it runs on the
      destination shard at each message's arrival time. Messages arriving
      with no handler installed are counted in {!dropped}. *)

  val send : 'a t -> 'a -> unit
  (** Send from inside the source shard's epoch; arrival is the source
      clock plus the channel latency. *)

  val src : 'a t -> int
  val dst : 'a t -> int
  val latency : 'a t -> int
  val sent : 'a t -> int
  val dropped : 'a t -> int
end
