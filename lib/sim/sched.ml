(* Deterministic cooperative scheduler over OCaml 5 effect handlers.

   Simulated processes are green threads suspended via the [Suspend] effect.
   Every resumption goes through the event heap, keyed by (virtual time,
   sequence number), so runs are fully deterministic: same program + same
   seeds => same trace. This is the execution substrate standing in for the
   paper's OS processes on Apollo/VAX/Sun machines.

   Invariants that keep the continuation discipline one-shot:
   - a proc in [Suspended] holds its continuation exactly once, tagged with a
     fresh suspension id; wakers capture that id and become no-ops once the
     proc has moved on;
   - [Queued] means a resume event is already in the heap; killing such a
     proc just flips the pending resume to a discontinue;
   - resume events re-check the proc state when they fire, so a stale event
     (e.g. after a kill already executed) cannot resume a dead proc. *)

exception Killed
(* Raised inside a process when it is killed; lets Fun.protect finalizers run. *)

exception Event_limit_exceeded

type pid = int

type exit_status =
  | Exited
  | Was_killed
  | Crashed of exn

type resume_kind =
  | Resume_value
  | Resume_exn of exn

type cell_policy =
  | Exclusive
  | Waived of string

type cell = { c_name : string; c_policy : cell_policy }

(* The one scheduler-instrumentation mode record. Before this module
   existed the same two booleans were re-declared ad hoc by the scenario
   harness ({m_sanitize; m_races}), the check driver and the CLI; the R8
   ownership map, Check_race and the barrier coordinator now all name this
   single type. Everything defaults to off so default-mode traces stay
   byte-identical with the seed. *)
module Mode = struct
  type t = {
    sanitize : bool; (* arm the pool sanitizer (PR 6) on the world *)
    races : bool; (* arm the happens-before race checker (PR 7) *)
  }

  let default = { sanitize = false; races = false }
  let armed m = m.sanitize || m.races

  let pp ppf m =
    Fmt.pf ppf "{sanitize=%b; races=%b}" m.sanitize m.races
end

(* The domain-safety monitor (see Check_race): armed, it receives every
   event push (with the pusher's identity), every event execution, and
   every access to a registered shared cell. Off by default; each hook
   site costs one option match when disarmed. *)
type monitor = {
  m_push : pusher:int -> owner:int -> int;
      (** Called at push time; returns a tag stored in the event. *)
  m_exec : tag:int -> owner:int -> time:int -> unit;
      (** Called just before the event's thunk runs. *)
  m_access : cell -> owner:int -> write:bool -> time:int -> unit;
}

type t = {
  mutable now : int; (* virtual microseconds *)
  mutable label : string; (* shard tag ("s0", "s1", …) in parallel worlds *)
  mutable next_seq : int;
  events : event Ntcs_util.Heap.t;
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable current : proc option;
  mutable live_count : int;
  mutable event_count : int;
  mutable max_events : int; (* 0 = unlimited *)
  mutable exec_owner : int; (* owner of the event whose thunk is running *)
  mutable chooser : (time:int -> owners:int array -> int) option;
  mutable monitor : monitor option;
  mutable cells : cell list; (* registered shared cells, newest first *)
}

and event = { time : int; seq : int; owner : int; tag : int; thunk : unit -> unit }

and proc = {
  pid : pid;
  proc_name : string;
  sched : t;
  mutable state : proc_state;
  mutable susp_seq : int; (* per-proc suspension counter (no ambient state) *)
  mutable on_exit : (exit_status -> unit) list;
  mutable exit_status : exit_status option;
}

and proc_state =
  | Embryo of (unit -> unit)
  | Running
  | Suspended of suspension
  | Queued of queued
  | Dead

and suspension = { susp_id : int; k : (unit, unit) Effect.Deep.continuation }

and queued = { qk : (unit, unit) Effect.Deep.continuation; mutable kind : resume_kind }

type waker = { w_proc : proc; w_susp_id : int }

type _ Effect.t += Suspend : (waker -> unit) -> unit Effect.t

let create () =
  let leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq) in
  {
    now = 0;
    label = "";
    next_seq = 0;
    events = Ntcs_util.Heap.create ~leq;
    procs = Hashtbl.create 64;
    next_pid = 1;
    current = None;
    live_count = 0;
    event_count = 0;
    max_events = 0;
    exec_owner = 0;
    chooser = None;
    monitor = None;
    cells = [];
  }

let now t = t.now

let set_label t l = t.label <- l
let label t = t.label

(* Earliest pending event, if any — the barrier coordinator's horizon
   input. Peeking never disturbs the heap. *)
let next_event_time t =
  match Ntcs_util.Heap.peek t.events with
  | Some ev -> Some ev.time
  | None -> None

let set_event_limit t n = t.max_events <- n

let set_chooser t f = t.chooser <- f

(* --- domain-safety monitor hooks --- *)

let set_monitor t m = t.monitor <- m

let monitoring t = t.monitor <> None

(* Registering a cell declares a piece of world-shared mutable state to the
   race checker; [access] reports each read/write of it, attributed to the
   process whose event is executing (owner 0 = the coordinator: world
   setup, fault schedule, test driver). Both are no-ops while no monitor
   is armed. *)
let register_cell t ~name ~policy =
  let cell = { c_name = name; c_policy = policy } in
  t.cells <- cell :: t.cells;
  cell

let cells t =
  List.sort (fun a b -> String.compare a.c_name b.c_name) t.cells

let current_owner t =
  match t.current with
  | Some p -> p.pid
  | None -> t.exec_owner

let access t cell ~write =
  match t.monitor with
  | None -> ()
  | Some m -> m.m_access cell ~owner:(current_owner t) ~write ~time:t.now

(* Every event is tagged with the pid of the process whose progress it
   represents: schedule-exploration (Explore) may reorder same-time events
   across owners but never within one owner, which preserves program order
   and per-flow FIFO delivery (both are scheduled by the sending process in
   order). Events scheduled outside any process inherit the owner of the
   event being executed, so e.g. a delivery thunk's wakes belong to the
   process it wakes, not to limbo. *)
let at_owned t ~owner time thunk =
  let time = if time < t.now then t.now else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tag =
    match t.monitor with
    | None -> 0
    | Some m -> m.m_push ~pusher:(current_owner t) ~owner
  in
  Ntcs_util.Heap.push t.events { time; seq; owner; tag; thunk }

let at t time thunk = at_owned t ~owner:(current_owner t) time thunk

let after t delay thunk = at t (t.now + delay) thunk

let current_exn t =
  match t.current with
  | Some p -> p
  | None -> failwith "Sched: no current process (blocking call outside a process)"

let self t = (current_exn t).pid

let self_name t = (current_exn t).proc_name

(* Run [f] as the body of [proc] under the effect handler. Called from the
   scheduler loop, never from inside another process. *)
let finish proc status =
  proc.state <- Dead;
  proc.exit_status <- Some status;
  proc.sched.live_count <- proc.sched.live_count - 1;
  let hooks = proc.on_exit in
  proc.on_exit <- [];
  List.iter (fun h -> h status) hooks

let handler proc =
  let open Effect.Deep in
  {
    retc = (fun () -> finish proc Exited);
    exnc =
      (fun e ->
        match e with
        | Killed -> finish proc Was_killed
        | e -> finish proc (Crashed e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
          Some
            (fun (k : (a, unit) continuation) ->
              (* Suspension ids only disambiguate wakers of *this* proc, so a
                 per-proc counter suffices — no ambient global to share
                 across would-be domains. *)
              proc.susp_seq <- proc.susp_seq + 1;
              let susp_id = proc.susp_seq in
              proc.state <- Suspended { susp_id; k };
              proc.sched.current <- None;
              register { w_proc = proc; w_susp_id = susp_id })
        | _ -> None);
  }

let start_proc proc f =
  proc.state <- Running;
  proc.sched.current <- Some proc;
  Effect.Deep.match_with f () (handler proc);
  proc.sched.current <- None

let resume_proc proc =
  match proc.state with
  | Queued q ->
    proc.state <- Running;
    proc.sched.current <- Some proc;
    (match q.kind with
     | Resume_value -> Effect.Deep.continue q.qk ()
     | Resume_exn e -> Effect.Deep.discontinue q.qk e);
    proc.sched.current <- None
  | Dead -> ()
  | Embryo _ | Running | Suspended _ ->
    (* A resume event can only have been scheduled for a Queued proc; any
       other state here is a scheduler bug. *)
    assert false

let wake w =
  let proc = w.w_proc in
  match proc.state with
  | Suspended s when s.susp_id = w.w_susp_id ->
    proc.state <- Queued { qk = s.k; kind = Resume_value };
    at_owned proc.sched ~owner:proc.pid proc.sched.now (fun () -> resume_proc proc)
  | Embryo _ | Running | Suspended _ | Queued _ | Dead -> ()

let spawn ?(name = "proc") ?(at_time = -1) t f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let proc =
    {
      pid;
      proc_name = name;
      sched = t;
      state = Embryo f;
      susp_seq = 0;
      on_exit = [];
      exit_status = None;
    }
  in
  Hashtbl.replace t.procs pid proc;
  t.live_count <- t.live_count + 1;
  let start_time = if at_time < 0 then t.now else at_time in
  at_owned t ~owner:pid start_time (fun () ->
      match proc.state with
      | Embryo body -> start_proc proc body
      | Dead -> () (* killed before it ever ran *)
      | Running | Suspended _ | Queued _ -> assert false);
  pid

let find_proc t pid = Hashtbl.find_opt t.procs pid

let alive t pid =
  match find_proc t pid with
  | Some { state = Dead; _ } | None -> false
  | Some _ -> true

let status t pid =
  match find_proc t pid with
  | None -> None
  | Some p -> p.exit_status

let proc_name t pid =
  match find_proc t pid with
  | None -> None
  | Some p -> Some p.proc_name

let kill t pid =
  match find_proc t pid with
  | None -> ()
  | Some proc -> (
    match proc.state with
    | Dead -> ()
    | Embryo _ ->
      (* Never ran: no stack to unwind, just mark it dead. *)
      finish proc Was_killed
    | Suspended s ->
      proc.state <- Queued { qk = s.k; kind = Resume_exn Killed };
      at_owned t ~owner:pid t.now (fun () -> resume_proc proc)
    | Queued q -> q.kind <- Resume_exn Killed
    | Running ->
      (* Only the process itself can be Running when kill is called (the
         scheduler is single-threaded), so this is suicide. *)
      raise Killed)

let on_exit t pid hook =
  match find_proc t pid with
  | None -> ()
  | Some proc -> (
    match proc.exit_status with
    | Some status -> hook status
    | None -> proc.on_exit <- hook :: proc.on_exit)

(* --- blocking primitives (must run inside a process) --- *)

let suspend register = Effect.perform (Suspend register)

let sleep t d =
  if d <= 0 then
    (* Still go through the heap so even zero sleeps are yield points. *)
    suspend (fun w -> at t t.now (fun () -> wake w))
  else suspend (fun w -> at t (t.now + d) (fun () -> wake w))

let yield t = sleep t 0

(* --- scheduler loop --- *)

let exec_event t ev =
  assert (ev.time >= t.now);
  t.now <- ev.time;
  t.event_count <- t.event_count + 1;
  if t.max_events > 0 && t.event_count > t.max_events then raise Event_limit_exceeded;
  (match t.monitor with
   | None -> ()
   | Some m -> m.m_exec ~tag:ev.tag ~owner:ev.owner ~time:ev.time);
  let saved = t.exec_owner in
  t.exec_owner <- ev.owner;
  Fun.protect ~finally:(fun () -> t.exec_owner <- saved) ev.thunk

let step t =
  match t.chooser with
  | None -> (
    match Ntcs_util.Heap.pop t.events with
    | None -> false
    | Some ev ->
      exec_event t ev;
      true)
  | Some choose -> (
    (* Exploration mode: collect every event due at the minimum time, group
       them by owner (heap order keeps each owner's events in seq order), and
       let the chooser pick which owner makes progress. Only the chosen
       owner's *first* event runs; everything else goes back on the heap with
       its original key, so per-owner order is untouched. With a chooser that
       always answers 0 this is byte-for-byte the default schedule. *)
    match Ntcs_util.Heap.pop t.events with
    | None -> false
    | Some first ->
      let rec gather acc =
        match Ntcs_util.Heap.peek t.events with
        | Some ev when ev.time = first.time ->
          ignore (Ntcs_util.Heap.pop t.events);
          gather (ev :: acc)
        | _ -> List.rev acc
      in
      let batch = first :: gather [] in
      let owners =
        List.fold_left
          (fun acc ev -> if List.mem ev.owner acc then acc else acc @ [ ev.owner ])
          [] batch
      in
      let chosen_owner =
        match owners with
        | [ o ] -> o
        | os ->
          let arr = Array.of_list os in
          let i = choose ~time:first.time ~owners:arr in
          let i = if i < 0 || i >= Array.length arr then 0 else i in
          arr.(i)
      in
      let ev = List.find (fun e -> e.owner = chosen_owner) batch in
      List.iter (fun e -> if e != ev then Ntcs_util.Heap.push t.events e) batch;
      exec_event t ev;
      true)

let run ?until t =
  let continue_ () =
    match until with
    | None -> true
    | Some u -> ( match Ntcs_util.Heap.peek t.events with
      | Some ev -> ev.time <= u
      | None -> false)
  in
  while (not (Ntcs_util.Heap.is_empty t.events)) && continue_ () do
    ignore (step t)
  done;
  match until with
  | Some u when t.now < u -> t.now <- u
  | _ -> ()

let run_until_quiescent t = run t

let live_processes t = t.live_count
let events_executed t = t.event_count

(* Diagnostic for quiescent-but-not-finished worlds: which processes are
   still alive and suspended (blocked forever unless an external event wakes
   them)? Long-running servers legitimately appear here; a test harness can
   subtract its known daemons and flag the rest as deadlocked.

   Shard discipline (R2): names are prefixed with the scheduler's label
   when one is set ("s1/name-server/0"), and the output is sorted after
   prefixing, so the reports of a multi-shard world concatenate into one
   deterministically ordered list that diffs cleanly against any other
   shard layout. *)
let blocked_processes t =
  let tag name = if t.label = "" then name else t.label ^ "/" ^ name in
  Ntcs_util.sorted_bindings t.procs
  |> List.filter_map (fun (_, proc) ->
         match proc.state with
         | Suspended _ -> Some (tag proc.proc_name)
         | Embryo _ | Running | Queued _ | Dead -> None)
  |> List.sort String.compare

(* --- Ivar: write-once cell --- *)

module Ivar = struct
  type 'a state = Empty of (waker * 'a option ref) list | Full of 'a

  type 'a ivar = { iv_sched : t; mutable iv : 'a state }

  let create sched = { iv_sched = sched; iv = Empty [] }

  let fill ivar v =
    match ivar.iv with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      ivar.iv <- Full v;
      List.iter
        (fun (w, cell) ->
          cell := Some v;
          wake w)
        (List.rev waiters)

  let try_fill ivar v = match ivar.iv with
    | Full _ -> false
    | Empty _ -> fill ivar v; true

  let is_filled ivar = match ivar.iv with Full _ -> true | Empty _ -> false

  let peek ivar = match ivar.iv with Full v -> Some v | Empty _ -> None

  (* Blocking read with optional timeout (in virtual microseconds). *)
  let read ?timeout ivar =
    match ivar.iv with
    | Full v -> Some v
    | Empty _ ->
      let cell = ref None in
      suspend (fun w ->
          (match ivar.iv with
           | Full v ->
             (* Filled between the check and the suspension: wake at once. *)
             cell := Some v;
             wake w
           | Empty waiters -> ivar.iv <- Empty ((w, cell) :: waiters));
          match timeout with
          | None -> ()
          | Some d -> after ivar.iv_sched d (fun () -> wake w));
      !cell
end

(* --- Mailbox: unbounded many-writer single-or-multi-reader queue --- *)

module Mailbox = struct
  type 'a waiter = { mutable live : bool; mb_waker : waker; mb_cell : 'a option ref }

  type 'a mb = {
    mb_sched : t;
    q : 'a Queue.t;
    mutable waiters : 'a waiter list; (* FIFO: oldest first *)
  }

  let create sched = { mb_sched = sched; q = Queue.create (); waiters = [] }

  let length mb = Queue.length mb.q

  let rec pop_waiter mb =
    match mb.waiters with
    | [] -> None
    | w :: rest ->
      mb.waiters <- rest;
      if w.live then Some w else pop_waiter mb

  let send mb v =
    match pop_waiter mb with
    | Some w ->
      w.live <- false;
      w.mb_cell := Some v;
      wake w.mb_waker
    | None -> Queue.push v mb.q

  let recv ?timeout mb =
    match Queue.take_opt mb.q with
    | Some v -> Some v
    | None ->
      let cell = ref None in
      suspend (fun w ->
          let waiter = { live = true; mb_waker = w; mb_cell = cell } in
          mb.waiters <- mb.waiters @ [ waiter ];
          match timeout with
          | None -> ()
          | Some d ->
            after mb.mb_sched d (fun () ->
                if waiter.live then begin
                  waiter.live <- false;
                  wake w
                end));
      !cell

  let recv_opt mb = Queue.take_opt mb.q

  let clear mb = Queue.clear mb.q
end
