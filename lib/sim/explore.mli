(** Exhaustive schedule exploration for bounded scenarios.

    Enumerates every interleaving the deterministic scheduler could take if
    ties in virtual time were broken differently, via {!Sched.set_chooser}.
    The reduction is persistent-set flavoured: same-time events collapse
    into per-owner program-order sequences, so a choice point branches over
    runnable {e processes}, never over raw event permutations, and singleton
    points do not branch. Each schedule rebuilds the world from scratch, so
    [make] must return a fresh scenario every call. *)

type outcome = {
  schedules : int;  (** schedules fully executed *)
  choice_points : int;  (** multi-owner points encountered, over all schedules *)
  max_branch : int;  (** widest choice point seen *)
  truncated : bool;  (** budget ran out before the tree was exhausted *)
  failures : (int list * string) list;  (** (choice path, violation) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?max_schedules:int ->
  ?branch:(time:int -> owners:int array -> bool) ->
  make:(unit -> Sched.t * (unit -> string list)) ->
  unit ->
  outcome
(** [run ~make ()] explores the scenario's schedule tree depth-first.
    [make ()] builds a fresh world and returns its scheduler plus a body
    that runs the scenario to completion and reports that schedule's
    invariant violations (empty list = clean). The chooser is installed on
    the returned scheduler before the body runs. Exploration stops when the
    tree is exhausted or [max_schedules] (default 1000) have run; the latter
    sets [truncated]. A schedule that raises records the exception as a
    failure for that schedule and exploration continues.

    [branch] (default: always) gates which choice points actually branch;
    declined points run in default order and consume no choice. Scenarios
    use it to boot their world deterministically and explore only the
    window containing the exchange under test — the tree stays bounded
    while every interleaving of the interesting events is still covered. *)
