(* Append-only event trace for a simulated world. Tests and experiments
   assert protocol-level properties from it (e.g. "gateways never exchange
   messages with each other", E7) and the §6.2 discussion about needing to
   know *why* and *by whom* a layer is called is addressed by recording both
   a category and an actor for every entry. *)

type entry = {
  at_us : int;
  cat : string; (* e.g. "nd.open", "lcm.fault", "gw.forward" *)
  actor : string; (* process name *)
  detail : string;
}

type t = {
  mutable entries : entry list; (* newest first *)
  mutable count : int;
  mutable enabled : bool;
  mutable cats : string list; (* empty = record everything *)
  interned : (string, string * int ref) Hashtbl.t;
      (* category -> (the one shared copy, recorded-entry count). Call sites
         pass fresh string literals on every record; keeping one copy per
         category means the hot trace path stops allocating category strings
         and [categories] reads counts without rescanning the entries. *)
}

let create () =
  { entries = []; count = 0; enabled = true; cats = []; interned = Hashtbl.create 32 }

let set_enabled t b = t.enabled <- b

let set_filter t cats = t.cats <- cats

let intern t cat =
  match Hashtbl.find_opt t.interned cat with
  | Some (c, n) -> (c, n)
  | None ->
    let v = (cat, ref 0) in
    Hashtbl.replace t.interned cat v;
    v

let record t ~at_us ~cat ~actor detail =
  if t.enabled && (t.cats = [] || List.exists (fun p -> p = cat) t.cats) then begin
    let cat, seen = intern t cat in
    incr seen;
    t.entries <- { at_us; cat; actor; detail } :: t.entries;
    t.count <- t.count + 1
  end

let categories t =
  Ntcs_util.sorted_bindings t.interned
  |> List.filter_map (fun (_, (c, n)) -> if !n > 0 then Some (c, !n) else None)

let entries t = List.rev t.entries

let count t = t.count

let clear t =
  t.entries <- [];
  t.count <- 0;
  (* lint: allow determinism(Hashtbl.iter) — zeroing every per-category counter is order-free *)
  Hashtbl.iter (fun _ (_, n) -> n := 0) t.interned

let matching t ~cat = List.filter (fun e -> e.cat = cat) (entries t)

let matching_prefix t ~prefix =
  let n = String.length prefix in
  List.filter
    (fun e -> String.length e.cat >= n && String.sub e.cat 0 n = prefix)
    (entries t)

let pp_entry ppf e = Fmt.pf ppf "[%8dus] %-16s %-20s %s" e.at_us e.cat e.actor e.detail

let dump ppf t = List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
