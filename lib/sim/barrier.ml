(* Conservative virtual-time barrier coordinator over shard schedulers.

   The parallel-world model (ROADMAP 2): each shard is a complete,
   self-contained scheduler (no shared mutable state between shards — the
   R8 ownership map machine-checks this for lib/), and shards exchange
   messages only through typed channels owned by this coordinator. Time
   advances in epochs:

     epoch k:  flush every message posted during epoch k-1 into the
               destination heaps (deterministically sorted), compute
               tmin = min over shards of the earliest pending event,
               set horizon = tmin + quantum, run every shard with
               [Sched.run ~until:horizon] — in parallel when workers > 1.

   Determinism argument. During an epoch a shard only touches its own
   state; cross-shard sends append to the *sending* shard's outbox, which
   no other shard reads until the barrier. At the barrier the coordinator
   (alone) sorts all pending messages by (arrival, src shard, per-src send
   seq) — a total order derived only from virtual time and program order,
   never from wall-clock interleaving — and schedules them with their
   exact arrival timestamps. Because every channel's latency is >= the
   quantum (checked at channel creation), a message sent at virtual time
   tau >= tmin arrives at tau + latency >= tmin + quantum = horizon, i.e.
   never inside the epoch that produced it, so no shard ever needs an
   event it has not yet received. The epoch structure (tmin, horizon,
   flush batches) is therefore a pure function of the program + seeds, and
   a run is bit-identical for any worker count, including workers = 1.

   Worker scheme: shard s runs on worker (s mod workers); workers 1..n-1
   are fresh domains spawned per epoch, worker 0 is the coordinator
   itself. Per-epoch spawn keeps the design free of condition-variable
   pools; epochs are long (a quantum of virtual time) relative to domain
   spawn cost on any topology worth sharding. *)

type msg = {
  bm_arrival : int; (* absolute virtual arrival time at the destination *)
  bm_src : int;
  bm_dst : int;
  bm_seq : int; (* per-src send sequence — third sort key *)
  bm_deliver : unit -> unit;
}

type shard = {
  sh_index : int;
  sh_sched : Sched.t;
  mutable sh_outbox : msg list; (* newest first; only its own worker writes *)
  mutable sh_sent : int;
}

type t = {
  quantum : int;
  shards : shard array;
  mutable epochs : int;
  mutable exchanged : int;
}

let create ~quantum scheds =
  if quantum <= 0 then invalid_arg "Barrier.create: quantum must be positive";
  if Array.length scheds = 0 then invalid_arg "Barrier.create: no shards";
  {
    quantum;
    shards =
      Array.mapi
        (fun i s -> { sh_index = i; sh_sched = s; sh_outbox = []; sh_sent = 0 })
        scheds;
    epochs = 0;
    exchanged = 0;
  }

let quantum t = t.quantum
let shard_count t = Array.length t.shards
let epochs t = t.epochs
let messages_exchanged t = t.exchanged

let check_shard t i name =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Barrier.%s: no shard %d" name i)

(* Post a cross-shard message from [src]'s running epoch. Appends to the
   sending shard's outbox only, so concurrent epochs never contend; the
   coordinator moves it to [dst]'s heap at the next barrier. [arrival] is
   the absolute virtual delivery time and must be at least quantum past
   the sender's clock — the conservative-lookahead invariant. *)
let post t ~src ~dst ~arrival deliver =
  check_shard t src "post";
  check_shard t dst "post";
  let sh = t.shards.(src) in
  let now = Sched.now sh.sh_sched in
  if arrival < now + t.quantum then
    invalid_arg
      (Printf.sprintf
         "Barrier.post: arrival %d < now %d + quantum %d (lookahead violated)"
         arrival now t.quantum);
  let seq = sh.sh_sent in
  sh.sh_sent <- seq + 1;
  sh.sh_outbox <-
    { bm_arrival = arrival; bm_src = src; bm_dst = dst; bm_seq = seq;
      bm_deliver = deliver }
    :: sh.sh_outbox

(* Barrier flush (coordinator only, between epochs): drain every outbox,
   impose the total order, schedule into destination heaps with exact
   timestamps. Owner 0 (coordinator) is the right attribution for the
   race checker — delivery happens outside any shard process. *)
let flush t =
  let pending =
    Array.to_list t.shards
    |> List.concat_map (fun sh ->
           let msgs = List.rev sh.sh_outbox in
           sh.sh_outbox <- [];
           msgs)
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.bm_arrival b.bm_arrival with
        | 0 -> (
          match compare a.bm_src b.bm_src with
          | 0 -> compare a.bm_seq b.bm_seq
          | c -> c)
        | c -> c)
      pending
  in
  List.iter
    (fun m ->
      t.exchanged <- t.exchanged + 1;
      Sched.at t.shards.(m.bm_dst).sh_sched m.bm_arrival m.bm_deliver)
    sorted;
  List.length sorted

let tmin t =
  Array.fold_left
    (fun acc sh ->
      match (Sched.next_event_time sh.sh_sched, acc) with
      | None, acc -> acc
      | Some tm, None -> Some tm
      | Some tm, Some m -> Some (min tm m))
    None t.shards

(* Run one epoch's shard share on this worker: plain sequential runs. *)
let run_share shards ~until = List.iter (fun sh -> Sched.run ~until sh.sh_sched) shards

let run_epoch t ~until ~workers =
  if workers <= 1 || Array.length t.shards <= 1 then
    run_share (Array.to_list t.shards) ~until
  else begin
    let w = min workers (Array.length t.shards) in
    let share k =
      Array.to_list t.shards |> List.filter (fun sh -> sh.sh_index mod w = k)
    in
    (* Workers 1..w-1 are fresh domains; worker 0 is us. Join order is
       fixed, and joins re-raise any shard exception. *)
    let domains =
      List.init (w - 1) (fun i ->
          let shards = share (i + 1) in
          Domain.spawn (fun () -> run_share shards ~until))
    in
    run_share (share 0) ~until;
    List.iter Domain.join domains
  end

let run ?until ?(workers = 1) t =
  let rec loop () =
    ignore (flush t);
    match tmin t with
    | None -> () (* every heap empty and nothing in flight: quiescent *)
    | Some tm -> (
      match until with
      | Some u when tm > u -> ()
      | _ ->
        let horizon = tm + t.quantum in
        let h = match until with Some u -> min horizon u | None -> horizon in
        run_epoch t ~until:h ~workers;
        t.epochs <- t.epochs + 1;
        loop ())
  in
  loop ();
  (* Warp every shard clock to [until] so quiescent-before-the-deadline
     worlds report a common time, exactly like [Sched.run ~until]. *)
  match until with
  | Some u -> Array.iter (fun sh -> Sched.run ~until:u sh.sh_sched) t.shards
  | None -> ()

(* --- typed channels ------------------------------------------------- *)

type barrier = t

module Chan = struct
  type 'a t = {
    ch_barrier : barrier;
    ch_src : int;
    ch_dst : int;
    ch_latency : int;
    mutable ch_handler : ('a -> unit) option;
    mutable ch_sent : int;
    mutable ch_dropped : int; (* delivered with no handler installed *)
  }

  let create barrier ~src ~dst ~latency =
    check_shard barrier src "Chan.create";
    check_shard barrier dst "Chan.create";
    if latency < barrier.quantum then
      invalid_arg
        (Printf.sprintf
           "Barrier.Chan.create: latency %d < quantum %d (a channel faster \
            than the barrier quantum would need events from an epoch still \
            running)"
           latency barrier.quantum);
    {
      ch_barrier = barrier;
      ch_src = src;
      ch_dst = dst;
      ch_latency = latency;
      ch_handler = None;
      ch_sent = 0;
      ch_dropped = 0;
    }

  let set_handler c h = c.ch_handler <- Some h

  let send c v =
    let sched = c.ch_barrier.shards.(c.ch_src).sh_sched in
    let arrival = Sched.now sched + c.ch_latency in
    c.ch_sent <- c.ch_sent + 1;
    post c.ch_barrier ~src:c.ch_src ~dst:c.ch_dst ~arrival (fun () ->
        match c.ch_handler with
        | Some h -> h v
        | None -> c.ch_dropped <- c.ch_dropped + 1)

  let src c = c.ch_src
  let dst c = c.ch_dst
  let latency c = c.ch_latency
  let sent c = c.ch_sent
  let dropped c = c.ch_dropped
end
