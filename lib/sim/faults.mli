(** Deterministic, seeded fault plane.

    A declarative description of how the world should misbehave — per-link
    frame fault rules and a timed schedule of crashes, restarts, partitions
    and heals — plus the seeded runtime state that makes every injection
    reproducible: same spec + same seed ⇒ same fault schedule.

    Passive until {!World.install_faults} arms it on a world; from then on
    {!World.transmit} consults it for every frame and each injected fault is
    emitted as a [fault.*] trace event ([fault.drop], [fault.dup],
    [fault.reorder], [fault.delay], [fault.crash], [fault.restart],
    [fault.partition], [fault.heal], [fault.net_down], [fault.net_up]), so
    trace-based invariant checkers keep working on faulty runs.

    Frame faults apply only to transmissions the IPCS backends mark
    droppable — whole, self-contained ND frames. Control segments and
    partial segments of a larger frame are never dropped, duplicated or
    reordered (that would desynchronise framing, which no real network
    failure produces); they are at most delayed by the ambient latency
    model. *)

(** {1 Spec} *)

type rule = {
  r_net : Net.id option;  (** [None]: applies on every network *)
  r_from : int;  (** active window in virtual µs: [[r_from, r_until)] *)
  r_until : int;
  r_drop : float;  (** per-frame probabilities, each in [0,1] *)
  r_dup : float;
  r_reorder : float;
  r_delay : float;
  r_delay_us : int;  (** extra latency drawn uniformly from [[1, r_delay_us]] *)
}

val rule :
  ?net:Net.id ->
  ?from_us:int ->
  ?until_us:int ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?delay:float ->
  ?delay_us:int ->
  unit ->
  rule
(** Rule constructor; everything defaults to "no fault". At most one fault
    is injected per frame: the first active rule wins, and within a rule
    drop > dup > reorder > delay. *)

(** Scheduled whole-world events, by machine / network {e name} so a
    schedule can be written before the world is built. *)
type event =
  | Crash of string  (** machine: mark down, kill its processes *)
  | Restart of string
  | Partition of string list list
      (** isolate the machine-name groups from each other; frames within a
          group or to/from unlisted machines pass. Replaces any earlier
          partition. *)
  | Heal  (** forget the partition *)
  | Net_down of string  (** whole-network outage *)
  | Net_up of string

type spec = {
  seed : int;
  rules : rule list;
  schedule : (int * event) list;  (** (virtual µs, event) *)
}

type t
(** A fault plane: spec + seeded runtime state. *)

val create : ?rules:rule list -> ?schedule:(int * event) list -> seed:int -> unit -> t
(** A fresh, disarmed fault plane. The schedule is sorted by time (stable,
    so same-time events fire in list order). *)

(** {1 Runtime — consulted by [World]} *)

type action = Deliver | Drop | Duplicate | Delay of int | Reorder of int

val frame_action :
  t -> now:int -> net:Net.id -> src:string -> dst:string -> action
(** Decide the fate of one droppable frame, drawing from the plane's seeded
    stream and tracing any injection. *)

val blocked : t -> int -> int -> bool
(** Whether the current partition separates two machine ids. *)

val block_groups : t -> int list list -> unit
(** Install a partition over machine-id groups (resolved by the world). *)

val clear_partition : t -> unit
val note_blocked : t -> unit

val set_emit : t -> (cat:string -> detail:string -> unit) -> unit
(** Point fault traces at the world's trace; called by
    [World.install_faults]. *)

val seed : t -> int
val schedule : t -> (int * event) list

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable blocked : int;  (** frames refused by a partition *)
}

val counters : t -> counters
val pp_event : Format.formatter -> event -> unit
