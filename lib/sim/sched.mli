(** Deterministic cooperative scheduler over OCaml 5 effect handlers.

    Simulated processes are green threads suspended through an effect;
    every resumption goes through an event heap keyed by (virtual time,
    sequence number), so runs are fully deterministic: same program + same
    seeds ⇒ same trace. This is the execution substrate standing in for the
    paper's OS processes on Apollo/VAX/Sun machines.

    Blocking primitives ({!sleep}, {!Ivar}, {!Mailbox}) must be called from
    inside a process; scheduling primitives ({!at}, {!spawn}, {!kill}, …)
    may be called from anywhere. *)

exception Killed
(** Raised inside a process when it is killed, so [Fun.protect] finalizers
    run before it dies. *)

exception Event_limit_exceeded

type t
(** A scheduler instance (one per simulated world). *)

type pid = int

type exit_status =
  | Exited  (** body returned normally *)
  | Was_killed
  | Crashed of exn

type waker
(** One-shot handle that resumes a suspended process. Idempotent: waking an
    already-resumed process is a no-op. *)

val create : unit -> t

val now : t -> int
(** Current virtual time in microseconds. *)

val set_event_limit : t -> int -> unit
(** Abort the run with {!Event_limit_exceeded} after this many events
    (0 = unlimited). A backstop for runaway-recursion experiments. *)

val set_chooser : t -> (time:int -> owners:int array -> int) option -> unit
(** Schedule-exploration hook (see {!Explore}). When set, every scheduler
    step collects all events due at the minimum virtual time, groups them by
    owning process, and asks the chooser which owner runs next (it returns
    an index into [owners]; out-of-range answers clamp to 0). The chooser is
    only consulted when more than one owner is runnable; per-owner event
    order is always preserved, so program order and per-flow FIFO delivery
    hold on every explored schedule. [None] (the default) restores the plain
    deterministic (time, seq) order. *)

(** {1 Timers} *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time thunk] runs [thunk] at absolute virtual [time] (clamped to
    now if already past). *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay thunk] ≡ [at t (now t + delay) thunk]. *)

(** {1 Processes} *)

val spawn : ?name:string -> ?at_time:int -> t -> (unit -> unit) -> pid
(** Create a process whose body starts at [at_time] (default: now). *)

val kill : t -> pid -> unit
(** Kill a process: a suspended body is resumed with {!Killed} so its
    finalizers run; an embryo is simply marked dead. Self-kill raises
    {!Killed} directly. *)

val alive : t -> pid -> bool
val status : t -> pid -> exit_status option

val on_exit : t -> pid -> (exit_status -> unit) -> unit
(** Run a hook when the process finishes; fires immediately if it already
    has. *)

val self : t -> pid
(** Pid of the currently running process. Fails outside a process. *)

val self_name : t -> string

(** {1 Blocking (inside a process only)} *)

val suspend : (waker -> unit) -> unit
(** Suspend the current process; [register] receives the waker. *)

val wake : waker -> unit
(** Schedule the suspended process to resume now. Idempotent. *)

val sleep : t -> int -> unit
(** Suspend for a virtual duration. [sleep t 0] is a yield point. *)

val yield : t -> unit

(** {1 Running} *)

val step : t -> bool
(** Execute one event; [false] when the heap is empty. *)

val run : ?until:int -> t -> unit
(** Run until quiescence, or until virtual time [until] (the clock then
    advances to exactly [until]). *)

val run_until_quiescent : t -> unit
val live_processes : t -> int
val events_executed : t -> int

val blocked_processes : t -> string list
(** Names of live processes currently suspended. After a quiescent {!run},
    these are blocked forever unless an external event wakes them —
    legitimate for server loops, a deadlock diagnostic for anything else. *)

(** Write-once cell with blocking read. Reads after the fill return
    immediately; multiple readers all wake on fill. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Raises [Invalid_argument] when already filled. *)

  val try_fill : 'a ivar -> 'a -> bool
  val is_filled : 'a ivar -> bool
  val peek : 'a ivar -> 'a option

  val read : ?timeout:int -> 'a ivar -> 'a option
  (** Block until filled; [None] on timeout (virtual µs). *)
end

(** Unbounded FIFO mailbox with blocking receive. *)
module Mailbox : sig
  type 'a mb

  val create : t -> 'a mb
  val length : 'a mb -> int

  val send : 'a mb -> 'a -> unit
  (** Delivers to the oldest waiting receiver, else enqueues. *)

  val recv : ?timeout:int -> 'a mb -> 'a option
  (** Block for the next message; [None] on timeout. *)

  val recv_opt : 'a mb -> 'a option
  (** Non-blocking. *)

  val clear : 'a mb -> unit
end
