(** Deterministic cooperative scheduler over OCaml 5 effect handlers.

    Simulated processes are green threads suspended through an effect;
    every resumption goes through an event heap keyed by (virtual time,
    sequence number), so runs are fully deterministic: same program + same
    seeds ⇒ same trace. This is the execution substrate standing in for the
    paper's OS processes on Apollo/VAX/Sun machines.

    Blocking primitives ({!sleep}, {!Ivar}, {!Mailbox}) must be called from
    inside a process; scheduling primitives ({!at}, {!spawn}, {!kill}, …)
    may be called from anywhere. *)

exception Killed
(** Raised inside a process when it is killed, so [Fun.protect] finalizers
    run before it dies. *)

exception Event_limit_exceeded

type t
(** A scheduler instance (one per simulated world). *)

type pid = int

type exit_status =
  | Exited  (** body returned normally *)
  | Was_killed
  | Crashed of exn

type waker
(** One-shot handle that resumes a suspended process. Idempotent: waking an
    already-resumed process is a no-op. *)

(** The scheduler-instrumentation mode: which always-available dynamic
    checkers are armed on a world. This is the one canonical copy of the
    record that used to be re-declared ad hoc by the scenario harness
    ([{m_sanitize; m_races}]), the check driver and the CLI; lint R8's
    ownership map, [Check_race] and the barrier coordinator all name this
    type. Carried by {!World.Config}; both flags default to off so
    default-mode traces stay byte-identical with the seed. *)
module Mode : sig
  type t = {
    sanitize : bool;  (** arm the pool sanitizer (generation tags, poison
                          canary, leak report) on the world *)
    races : bool;  (** arm the vector-clock happens-before race checker *)
  }

  val default : t
  (** Both off — the plain deterministic world. *)

  val armed : t -> bool
  (** Is any checker on? *)

  val pp : Format.formatter -> t -> unit
end

val create : unit -> t

val now : t -> int
(** Current virtual time in microseconds. *)

val set_label : t -> string -> unit
(** Tag this scheduler with a shard label ("s0", "s1", …). The label
    prefixes {!blocked_processes} output so multi-shard reports diff
    cleanly; empty (the default) leaves output unprefixed. *)

val label : t -> string

val next_event_time : t -> int option
(** Virtual time of the earliest pending event, without disturbing the
    heap — the barrier coordinator's horizon input. [None] when idle. *)

val set_event_limit : t -> int -> unit
(** Abort the run with {!Event_limit_exceeded} after this many events
    (0 = unlimited). A backstop for runaway-recursion experiments. *)

val set_chooser : t -> (time:int -> owners:int array -> int) option -> unit
(** Schedule-exploration hook (see {!Explore}). When set, every scheduler
    step collects all events due at the minimum virtual time, groups them by
    owning process, and asks the chooser which owner runs next (it returns
    an index into [owners]; out-of-range answers clamp to 0). The chooser is
    only consulted when more than one owner is runnable; per-owner event
    order is always preserved, so program order and per-flow FIFO delivery
    hold on every explored schedule. [None] (the default) restores the plain
    deterministic (time, seq) order. *)

(** {1 Domain-safety monitor (see [Ntcs_check.Check_race])}

    Shared mutable state that several would-be domains can reach is
    declared as a {e cell}; when a monitor is armed, every event push,
    every event execution and every access to a registered cell is
    reported, which is exactly the information a vector-clock
    happens-before checker needs. Everything here is a no-op while no
    monitor is installed — the disarmed cost is one option match per
    hook site. *)

(** How the parallel-world refactor intends to protect a cell.
    [Exclusive] state must only see happens-before-ordered conflicting
    accesses; [Waived] state is sanctioned shared state whose migration
    story is the reason string (the dynamic analogue of a reasoned lint
    pragma) — conflicts on it are counted, not reported as races. *)
type cell_policy =
  | Exclusive
  | Waived of string

type cell = { c_name : string; c_policy : cell_policy }

type monitor = {
  m_push : pusher:int -> owner:int -> int;
      (** Every event push: [pusher] is the owner of the event being
          executed when the push happened (0 = coordinator), [owner] the
          process whose progress the new event represents. Returns a tag
          stored in the event and passed back to {!monitor.m_exec}. *)
  m_exec : tag:int -> owner:int -> time:int -> unit;
      (** Called immediately before an event's thunk runs. *)
  m_access : cell -> owner:int -> write:bool -> time:int -> unit;
      (** Called for every {!access} to a registered cell. *)
}

val register_cell : t -> name:string -> policy:cell_policy -> cell
(** Declare a shared cell on this scheduler (world). Registration is
    inventory, not instrumentation: the declaring module must also route
    its reads/writes through {!access}. *)

val cells : t -> cell list
(** Every registered cell, sorted by name. *)

val set_monitor : t -> monitor option -> unit
val monitoring : t -> bool

val access : t -> cell -> write:bool -> unit
(** Report a read or write of [cell], attributed to the owner of the
    currently executing event (0 = coordinator). No-op when disarmed. *)

(** {1 Timers} *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time thunk] runs [thunk] at absolute virtual [time] (clamped to
    now if already past). *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay thunk] ≡ [at t (now t + delay) thunk]. *)

(** {1 Processes} *)

val spawn : ?name:string -> ?at_time:int -> t -> (unit -> unit) -> pid
(** Create a process whose body starts at [at_time] (default: now). *)

val kill : t -> pid -> unit
(** Kill a process: a suspended body is resumed with {!Killed} so its
    finalizers run; an embryo is simply marked dead. Self-kill raises
    {!Killed} directly. *)

val alive : t -> pid -> bool
val status : t -> pid -> exit_status option

val proc_name : t -> pid -> string option
(** Name a pid was spawned under, for diagnostics (races, deadlocks). *)

val on_exit : t -> pid -> (exit_status -> unit) -> unit
(** Run a hook when the process finishes; fires immediately if it already
    has. *)

val self : t -> pid
(** Pid of the currently running process. Fails outside a process. *)

val self_name : t -> string

(** {1 Blocking (inside a process only)} *)

val suspend : (waker -> unit) -> unit
(** Suspend the current process; [register] receives the waker. *)

val wake : waker -> unit
(** Schedule the suspended process to resume now. Idempotent. *)

val sleep : t -> int -> unit
(** Suspend for a virtual duration. [sleep t 0] is a yield point. *)

val yield : t -> unit

(** {1 Running} *)

val step : t -> bool
(** Execute one event; [false] when the heap is empty. *)

val run : ?until:int -> t -> unit
(** Run until quiescence, or until virtual time [until] (the clock then
    advances to exactly [until]). *)

val run_until_quiescent : t -> unit
val live_processes : t -> int
val events_executed : t -> int

val blocked_processes : t -> string list
(** Names of live processes currently suspended. After a quiescent {!run},
    these are blocked forever unless an external event wakes them —
    legitimate for server loops, a deadlock diagnostic for anything else.
    Shard-stable: each name is prefixed with the scheduler's {!label}
    (["s1/name-server/0"]) when one is set, and the list is sorted after
    prefixing, so per-shard reports concatenate into one deterministically
    ordered list. *)

(** Write-once cell with blocking read. Reads after the fill return
    immediately; multiple readers all wake on fill. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Raises [Invalid_argument] when already filled. *)

  val try_fill : 'a ivar -> 'a -> bool
  val is_filled : 'a ivar -> bool
  val peek : 'a ivar -> 'a option

  val read : ?timeout:int -> 'a ivar -> 'a option
  (** Block until filled; [None] on timeout (virtual µs). *)
end

(** Unbounded FIFO mailbox with blocking receive. *)
module Mailbox : sig
  type 'a mb

  val create : t -> 'a mb
  val length : 'a mb -> int

  val send : 'a mb -> 'a -> unit
  (** Delivers to the oldest waiting receiver, else enqueues. *)

  val recv : ?timeout:int -> 'a mb -> 'a option
  (** Block for the next message; [None] on timeout. *)

  val recv_opt : 'a mb -> 'a option
  (** Non-blocking. *)

  val clear : 'a mb -> unit
end
