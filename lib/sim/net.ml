(* Simulated networks. Each network has a kind (which constrains the native
   IPCS that can run over it), a latency model and an up/down flag for
   partition experiments. Networks are deliberately disjoint: crossing them
   requires an NTCS gateway, exactly as in the paper. *)

type kind =
  | Tcp_lan (* Ethernet-style LAN carrying Unix TCP *)
  | Mbx_ring (* Apollo ring carrying MBX *)
  | Tcp_longhaul (* slow wide-area TCP link *)

let kind_to_string = function
  | Tcp_lan -> "tcp-lan"
  | Mbx_ring -> "mbx-ring"
  | Tcp_longhaul -> "tcp-longhaul"

type id = int

type t = {
  id : id;
  name : string;
  kind : kind;
  latency_base_us : int;
  latency_per_kb_us : int;
  jitter_us : int;
  mutable up : bool;
  rng : Ntcs_util.Rng.t;
}

let default_latency = function
  | Tcp_lan -> (300, 80, 60)
  | Mbx_ring -> (150, 40, 20)
  | Tcp_longhaul -> (20_000, 400, 4_000)

let make ~id ~name ~kind ?latency ?(seed = 7) () =
  let base, per_kb, jitter =
    match latency with Some l -> l | None -> default_latency kind
  in
  {
    id;
    name;
    kind;
    latency_base_us = base;
    latency_per_kb_us = per_kb;
    jitter_us = jitter;
    up = true;
    rng = Ntcs_util.Rng.create (seed + id);
  }

(* Transit time for [size] bytes, or None when the network is partitioned. *)
let latency t ~size =
  if not t.up then None
  else begin
    let jitter = if t.jitter_us = 0 then 0 else Ntcs_util.Rng.int t.rng (t.jitter_us + 1) in
    Some (t.latency_base_us + (size * t.latency_per_kb_us / 1024) + jitter)
  end

let pp ppf t =
  Fmt.pf ppf "%s#%d(%s%s)" t.name t.id (kind_to_string t.kind) (if t.up then "" else ",down")
