(** Append-only event trace of a simulated world.

    Tests and experiments assert protocol-level properties from it (e.g.
    "gateways never open circuits to each other"), and it answers the §6.2
    complaint — one must know {i why} a layer is called and {i who} called
    it — by recording a category and an actor with every entry. *)

type entry = {
  at_us : int;
  cat : string;  (** e.g. ["nd.open"], ["lcm.fault"], ["gw.splice"] *)
  actor : string;  (** module (process) name *)
  detail : string;
}

type t

val create : unit -> t
val set_enabled : t -> bool -> unit

val set_filter : t -> string list -> unit
(** Record only these categories ([[]] = everything) — the "adequate
    selectivity" of §6.2. *)

val record : t -> at_us:int -> cat:string -> actor:string -> string -> unit
(** Categories are interned: the stored entry shares one copy of the
    category string per trace, so the hot path does not allocate. *)

val categories : t -> (string * int) list
(** Every category recorded so far with its entry count, sorted by name. *)

val entries : t -> entry list
val count : t -> int
val clear : t -> unit
val matching : t -> cat:string -> entry list
val matching_prefix : t -> prefix:string -> entry list
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit
