(** A simulated world: scheduler + machines + networks + bookkeeping —
    the "hypothetical machine configuration" of the paper's figures.

    Experiments build one, spawn NTCS modules on its machines and run
    virtual time forward. Everything is deterministic under the seed. *)

type t

val create : ?seed:int -> unit -> t

(** {1 Accessors} *)

val sched : t -> Sched.t
val metrics : t -> Ntcs_util.Metrics.t
val trace : t -> Trace.t
val rng : t -> Ntcs_util.Rng.t
val now : t -> int

val pool : t -> Ntcs_util.Pool.t
(** The world's frame-buffer freelist. Shared by every stack in the world;
    hit/miss/in-use statistics land in {!metrics} under [pool.*]. *)

val obs : t -> Ntcs_obs.Registry.t
(** The world's observability registry — the same value as {!metrics}
    ([Metrics.t = Ntcs_obs.Registry.t]), under its full interface:
    histograms, causal spans and the circuit-id allocator. *)

val record : t -> cat:string -> actor:string -> string -> unit
(** Trace an event at the current virtual time. *)

val observe : t -> string -> int -> unit
(** Record a histogram sample at the current virtual time. *)

val span :
  t ->
  ctx:Ntcs_obs.Span.ctx ->
  phase:Ntcs_obs.Span.phase ->
  name:string ->
  actor:string ->
  string ->
  unit
(** Record a span event stamped with the current virtual time. *)

(** {1 Topology} *)

val add_machine :
  t -> name:string -> Machine.mtype -> ?drift_ppm:float -> ?offset_us:int -> unit -> Machine.t

val add_net : t -> name:string -> Net.kind -> ?latency:int * int * int -> unit -> Net.t
val machine : t -> Machine.id -> Machine.t
val machine_opt : t -> Machine.id -> Machine.t option
val net : t -> Net.id -> Net.t
val net_opt : t -> Net.id -> Net.t option
val attach : t -> Machine.t -> Net.t -> unit
val attached : t -> Machine.id -> Net.id -> bool
val nets_of_machine : t -> Machine.id -> Net.id list
val machines_on : t -> Net.id -> Machine.id list
val common_nets : t -> Machine.id -> Machine.id -> Net.id list
val all_machines : t -> Machine.t list
val all_nets : t -> Net.t list

(** {1 Processes} *)

val spawn : t -> machine:Machine.t -> name:string -> (unit -> unit) -> Sched.pid
(** Spawn a process on a machine; crashes are recorded in the trace
    (category ["sim.proc_crash"]). *)

val machine_of_proc : t -> Sched.pid -> Machine.id option
val procs_on_machine : t -> Machine.id -> Sched.pid list

val crash_machine : t -> Machine.t -> unit
(** Mark the machine down and kill every process on it. *)

val restart_machine : t -> Machine.t -> unit

(** {1 Fault plane} *)

val install_faults : t -> Faults.t -> unit
(** Arm a fault plane on this world: its scheduled events (crashes,
    restarts, partitions, heals, net outages) are registered on the
    scheduler, every injection is emitted as a [fault.*] trace event, and
    {!transmit} consults it for every frame from now on. *)

val faults : t -> Faults.t option

(** {1 Shared cells}

    The world's own mutable state, declared as {!Sched.cell}s for the
    domain-safety monitor (see [Ntcs_check.Check_race]): the topology
    tables ([world.topology], exclusive), the pid→machine map
    ([world.procs], waived) and the fault plane's partition set + rng
    ([world.faults], waived). Enumerate them with [Sched.cells (sched t)]. *)

val cell_topology : t -> Sched.cell
val cell_procs : t -> Sched.cell
val cell_faults : t -> Sched.cell

(** {1 Pool sanitizer} *)

val arm_pool_sanitizer : t -> unit
(** Arm the buffer-pool sanitizer on this world's pool and point its
    violation emitter at the world trace, so every violation is a
    deterministic [pool.sanitizer.*] trace event stamped with virtual
    time. Arm before traffic runs. *)

val pool_leak_check : t -> int
(** Emit the teardown leak report (one [pool.sanitizer.leak] event per
    buffer still outstanding) and return the count. A report, not a
    failure — crashed machines legitimately strand their in-flight
    buffers. *)

(** {1 Transmission} *)

val transmit :
  ?fifo:int ref ->
  ?droppable:bool ->
  t ->
  net:Net.t ->
  src:Machine.t ->
  dst:Machine.t ->
  size:int ->
  (unit -> unit) ->
  bool
(** Schedule delivery of [size] bytes; [false] when the attempt cannot even
    leave (partition, crash, detachment). The callback re-checks destination
    liveness at delivery time, so a machine crashing mid-flight swallows the
    bytes. [fifo] is a per-flow high-water mark forcing monotone arrivals
    (e.g. one direction of a TCP connection), so jitter never reorders a
    flow.

    [droppable] (default [false]) marks a transmission carrying one whole,
    self-contained ND frame; only those may be dropped, duplicated or
    reordered by an installed fault plane. A dropped frame still returns
    [true] — the sender saw it leave; it died on the wire. *)

val run : ?until:int -> t -> unit
