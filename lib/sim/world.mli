(** A simulated world: scheduler + machines + networks + bookkeeping —
    the "hypothetical machine configuration" of the paper's figures.

    Experiments build one, spawn NTCS modules on its machines and run
    virtual time forward. Everything is deterministic under the seed. *)

type t

(** Declarative world construction: one record naming every
    instrumentation feature, replacing the accreted per-feature arms
    ([install_faults], [arm_pool_sanitizer], the [{m_sanitize; m_races}]
    record, chooser setters, [Sched.set_event_limit]) that callers
    previously had to sequence by hand. All defaults are off, so
    [create ()] is the plain deterministic seed-42 world and default-mode
    traces stay byte-identical with earlier PRs. *)
module Config : sig
  (** Schedule-choice policy. [Choose] is the exploration hook (same
      contract as [Sched.set_chooser]); every consulted choice is recorded
      in the world's {!choice_log} as [(index, arity)]. [Replay] feeds a
      previously recorded log back in — exhausted or out-of-range entries
      fall back to owner 0, the deterministic default. *)
  type chooser =
    | Default
    | Choose of (time:int -> owners:int array -> int)
    | Replay of int list

  (** Naming-plane shape (DESIGN.md §15), consumed by [Cluster.build]:
      [shards > 1] stands up that many shard name servers (round-robin
      over the declared NS machines) with a pinned shard map;
      [cache_capacity] sizes every ComMod's NSP lookup caches. Plain data
      — the sim itself never interprets it. *)
  type naming = {
    shards : int;  (** 1 = the classic single/replicated name server *)
    cache_capacity : int;  (** per-ComMod NSP lookup-cache entries *)
  }

  val default_naming : naming
  (** [{shards = 1; cache_capacity = 512}] *)

  type t = {
    seed : int;
    domains : int;  (** shard count for {!Par} worlds; 1 = sequential *)
    faults : Faults.spec option;
        (** declarative fault plane, armed at creation: scheduled events
            registered on the scheduler, frame rules consulted by
            {!transmit}, every injection a [fault.*] trace event *)
    sanitize : bool;  (** arm the buffer-pool sanitizer on the world *)
    races : bool;
        (** request the happens-before race checker. Carried, not armed,
            by this library — [Ntcs_check.Check_race.arm] lives above it
            and arms itself on any world whose {!val-mode} asks for it *)
    chooser : chooser;
    event_limit : int;  (** abort backstop; 0 = unlimited *)
    naming : naming;  (** naming-plane shape (see {!type-naming}) *)
  }

  val default : t
  (** [{seed = 42; domains = 1; faults = None; sanitize = false;
      races = false; chooser = Default; event_limit = 0;
      naming = default_naming}] *)

  val mode : t -> Sched.Mode.t
  (** The scheduler-instrumentation view of this config. *)

  val shard : t -> shard:int -> t
  (** Per-shard copy: decorrelated seed (prime stride), [domains = 1].
      Shard 0 keeps the base seed, so a 1-domain parallel world is the
      sequential world. *)
end

val create : ?config:Config.t -> unit -> t
(** The single construction entrypoint. Applies the config in one fixed
    order: event limit, chooser, sanitizer, fault plane. *)

(** {1 Accessors} *)

val sched : t -> Sched.t

val config : t -> Config.t

val mode : t -> Sched.Mode.t
(** [Config.mode (config t)]. *)

val choice_log : t -> (int * int) list
(** Every chooser consultation so far, oldest first, as [(choice index,
    arity)] pairs. Empty under [Config.Default]. [Config.Replay (List.map
    fst (choice_log w))] reproduces this world's schedule. *)

val set_label : t -> string -> unit
(** Tag this world's scheduler with a shard label (see
    {!Sched.set_label}). *)

val label : t -> string
val metrics : t -> Ntcs_util.Metrics.t
val trace : t -> Trace.t
val rng : t -> Ntcs_util.Rng.t
val now : t -> int

val pool : t -> Ntcs_util.Pool.t
(** The world's frame-buffer freelist. Shared by every stack in the world;
    hit/miss/in-use statistics land in {!metrics} under [pool.*]. *)

val obs : t -> Ntcs_obs.Registry.t
(** The world's observability registry — the same value as {!metrics}
    ([Metrics.t = Ntcs_obs.Registry.t]), under its full interface:
    histograms, causal spans and the circuit-id allocator. *)

val record : t -> cat:string -> actor:string -> string -> unit
(** Trace an event at the current virtual time. *)

val observe : t -> string -> int -> unit
(** Record a histogram sample at the current virtual time. *)

val span :
  t ->
  ctx:Ntcs_obs.Span.ctx ->
  phase:Ntcs_obs.Span.phase ->
  name:string ->
  actor:string ->
  string ->
  unit
(** Record a span event stamped with the current virtual time. *)

(** {1 Topology} *)

val add_machine :
  t -> name:string -> Machine.mtype -> ?drift_ppm:float -> ?offset_us:int -> unit -> Machine.t

val add_net : t -> name:string -> Net.kind -> ?latency:int * int * int -> unit -> Net.t
val machine : t -> Machine.id -> Machine.t
val machine_opt : t -> Machine.id -> Machine.t option
val net : t -> Net.id -> Net.t
val net_opt : t -> Net.id -> Net.t option
val attach : t -> Machine.t -> Net.t -> unit
val attached : t -> Machine.id -> Net.id -> bool
val nets_of_machine : t -> Machine.id -> Net.id list
val machines_on : t -> Net.id -> Machine.id list
val common_nets : t -> Machine.id -> Machine.id -> Net.id list
val all_machines : t -> Machine.t list
val all_nets : t -> Net.t list

(** {1 Processes} *)

val spawn : t -> machine:Machine.t -> name:string -> (unit -> unit) -> Sched.pid
(** Spawn a process on a machine; crashes are recorded in the trace
    (category ["sim.proc_crash"]). *)

val machine_of_proc : t -> Sched.pid -> Machine.id option
val procs_on_machine : t -> Machine.id -> Sched.pid list

val crash_machine : t -> Machine.t -> unit
(** Mark the machine down and kill every process on it. *)

val restart_machine : t -> Machine.t -> unit

(** {1 Fault plane} *)

val faults : t -> Faults.t option
(** The armed fault plane, when [Config.faults] was given. *)

(** {1 Shared cells}

    The world's own mutable state, declared as {!Sched.cell}s for the
    domain-safety monitor (see [Ntcs_check.Check_race]): the topology
    tables ([world.topology], exclusive), the pid→machine map
    ([world.procs], waived) and the fault plane's partition set + rng
    ([world.faults], waived). Enumerate them with [Sched.cells (sched t)]. *)

val cell_topology : t -> Sched.cell
val cell_procs : t -> Sched.cell
val cell_faults : t -> Sched.cell

(** {1 Pool sanitizer}

    Armed declaratively via [Config.sanitize]; violations become
    deterministic [pool.sanitizer.*] trace events stamped with virtual
    time. *)

val pool_leak_check : t -> int
(** Emit the teardown leak report (one [pool.sanitizer.leak] event per
    buffer still outstanding) and return the count. A report, not a
    failure — crashed machines legitimately strand their in-flight
    buffers. *)

(** {1 Transmission} *)

val transmit :
  ?fifo:int ref ->
  ?droppable:bool ->
  t ->
  net:Net.t ->
  src:Machine.t ->
  dst:Machine.t ->
  size:int ->
  (unit -> unit) ->
  bool
(** Schedule delivery of [size] bytes; [false] when the attempt cannot even
    leave (partition, crash, detachment). The callback re-checks destination
    liveness at delivery time, so a machine crashing mid-flight swallows the
    bytes. [fifo] is a per-flow high-water mark forcing monotone arrivals
    (e.g. one direction of a TCP connection), so jitter never reorders a
    flow.

    [droppable] (default [false]) marks a transmission carrying one whole,
    self-contained ND frame; only those may be dropped, duplicated or
    reordered by an installed fault plane. A dropped frame still returns
    [true] — the sender saw it leave; it died on the wire. *)

val run : ?until:int -> t -> unit

(** {1 Domain-parallel worlds}

    A parallel world is [Config.domains] completely isolated sequential
    worlds — one per shard, each with its own scheduler, trace, registry,
    rng and pool (lint R8's ownership map proves [lib/] has no ambient
    shared state) — coupled only through the {!Barrier} coordinator's
    typed channels. Shard [i] runs under [Config.shard config ~shard:i]
    and carries the label ["s<i>"]. Runs are bit-identical for any
    [workers] value; see {!Barrier} for the determinism argument. *)
module Par : sig
  type world := t

  type t

  val create :
    ?quantum:int ->
    ?namespace_circuits:bool ->
    ?shard_config:(int -> Config.t) ->
    Config.t ->
    t
  (** Build [max 1 config.domains] shard worlds coupled by a barrier with
      the given conservative quantum (virtual µs, default 1000 — every
      cross-shard channel must have latency ≥ quantum).
      [namespace_circuits] (default true) offsets shard [i]'s circuit-id
      allocator by [i * 1_000_000] so merged span logs stay world-unique.
      [shard_config] overrides the derived per-shard config (shard [i]
      runs under [shard_config i] with [domains] forced back to 1) — the
      replay path uses it to hand shard [i] its own recorded choice log
      via [Config.Replay]. *)

  val config : t -> Config.t
  val shards : t -> world array
  val shard : t -> int -> world
  val shard_count : t -> int
  val barrier : t -> Barrier.t
  val quantum : t -> int

  val chan : t -> src:int -> dst:int -> latency:int -> 'a Barrier.Chan.t
  (** A typed cross-shard channel (see {!Barrier.Chan}). *)

  val run : ?until:int -> ?workers:int -> t -> unit
  (** Run the coupled world on [workers] domains (default 1); output is
      bit-identical for every worker count. *)

  val epochs : t -> int
  val messages_exchanged : t -> int
  val events_per_shard : t -> int array

  val merged_trace : t -> (int * Trace.entry) list
  (** All shards' trace entries merged, tagged with their shard index:
      stable-sorted on virtual time, so within one instant shard order and
      then per-shard program order are kept — the same total order the
      barrier flush uses. *)

  val merged_trace_lines : t -> string list
  (** {!merged_trace} rendered one line per entry, prefixed ["s<i> "] —
      the documented shard-tag field of parallel logs. *)

  val merged_spans : t -> Ntcs_obs.Span.event list
  (** All shards' span logs merged (stable on virtual time); circuit ids
      are world-unique when [namespace_circuits] is on, so
      [Ntcs_check.Check_spans.check] consumes this directly. *)

  val blocked_processes : t -> string list
  (** Every shard's {!Sched.blocked_processes} (already label-prefixed),
      merged and sorted — the shard-stable teardown report. *)

  val choice_logs : t -> (int * int) list array
  (** Per-shard choice logs (see {!choice_log}); shard [i]'s log replays
      via [Config.Replay] on shard [i] of an equal-topology world. *)

  val leak_check : t -> int
  (** Sum of every shard's {!pool_leak_check}. *)
end
