(** The paper's figures (2-1 … 2-4), regenerated: architecture diagrams
    printed with the modules that implement each layer. Used by
    [bin/architecture.exe] and the experiment harness. *)

val fig_2_1 : unit -> unit
(** The application's view of the NTCS. *)

val fig_2_2 : unit -> unit
(** The Nucleus internal layering (LCM / IP+Gateway / ND / native IPCS). *)

val fig_2_3 : unit -> unit
(** The Naming Service Protocol layer and its recursion. *)

val fig_2_4 : unit -> unit
(** The ComMod internal layering (ALI / NSP / Nucleus). *)

val all : unit -> unit
