(** Recursion accounting (§6).

    Every entry into a ComMod primitive passes through a tracker; nested
    entries — the naming service calling back into the Nucleus, the monitor
    timestamping its own sends — raise the depth. The tracker doubles as the
    simulated stack bound for the §6.3 experiment: with the LCM guard
    disabled, the name-server fault loop recurses until
    {!Stack_overflow_sim}. *)

exception Stack_overflow_sim

type t

val create : ?limit:int -> unit -> t
(** [limit] is the simulated stack bound (default 64 nested entries). *)

val enter : t -> unit
(** Raises {!Stack_overflow_sim} at the depth limit. *)

val leave : t -> unit

val with_entry : t -> (unit -> 'a) -> 'a
(** Bracketed {!enter}/{!leave} (exception safe). *)

val depth : t -> int
val max_depth : t -> int

val entries : t -> int
(** Total entries since creation (or {!reset_counts}). *)

val recursive_entries : t -> int
(** Entries made while already inside the ComMod — the §6.1 measure. *)

val reset_counts : t -> unit
