(* The Internet Protocol layer (§2.2, §4).

   Provides internet virtual circuits (IVCs): "established either as a
   single LVC on the local network, or as a chained set of LVCs linked
   through one or more Gateways". Everything here is portable — it sees only
   the uniform circuits the ND-layer provides.

   Chaining works by label swapping. Each leg of a chained IVC carries a
   label (header word [ivc]); a gateway's splice table maps (incoming
   circuit, incoming label) to (outgoing circuit, outgoing label) and back.
   Route computation is the paper's compromise: topology is centralized in
   the naming service (the plan oracle, wired up through the NSP-layer), but
   circuit establishment proceeds autonomously at each hop, and gateways
   never talk to each other outside the circuit chain itself.

   Because the conversion-mode decision (§5) needs the *final* destination's
   machine representation, the IVC — not the LVC — is where it is made: a
   direct IVC learns the peer's byte order from the ND HELLO exchange, and a
   chained IVC learns it from the HELLO carried inside IVC_OPEN/IVC_ACCEPT. *)

open Ntcs_sim
open Ntcs_ipcs
open Ntcs_wire

type ivc = {
  label : int; (* 0 = direct LVC, no chaining *)
  circuit : Nd_layer.circuit; (* first leg *)
  mutable peer : Addr.t; (* table key: final dst (or origin), may be an alias *)
  mutable wire_dst : Addr.t; (* what the remote end calls itself: the frame dst *)
  mutable remote_order : Endian.order;
  mutable remote_listen : Phys_addr.t list;
  inbound : bool;
  mutable i_open : bool;
  mutable last_mode : Convert.mode option; (* last conversion mode traced (ip.convert) *)
}

(* What the routing oracle (NSP + well-known table) answers. *)
type target =
  | T_direct of Phys_addr.t list (* candidate physical addresses, tried in order *)
  | T_via of {
      hops : Addr.t list; (* gateway ComMod UAdds, first hop first *)
      first_phys : Phys_addr.t list; (* how to reach the first hop *)
    }

type gw_event =
  | Gw_open of Nd_layer.circuit * Proto.header * Proto.ivc_open
  | Gw_frame of Nd_layer.circuit * Proto.Frame.t
  | Gw_down of Nd_layer.circuit

type delivery = {
  del_src : Addr.t; (* presented (alias-resolved) source *)
  del_hdr : Proto.header;
  del_payload : Bytes.t;
}

type action =
  | Deliver of delivery
  | Consumed
  | Down of Addr.t list (* peers whose IVCs just died *)

type t = {
  nd : Nd_layer.t;
  node : Node.t;
  by_peer : (Addr.t, ivc) Hashtbl.t;
  by_leg : (int * int, ivc) Hashtbl.t; (* (circuit id, label) for chained ivcs *)
  pending : (int, (Proto.hello, Errors.t) result Sched.Ivar.ivar) Hashtbl.t; (* by label *)
  mutable plan_oracle : (Addr.t -> (target list, Errors.t) result) option;
  mutable gw_handler : (gw_event -> unit) option;
}

let create node nd =
  {
    nd;
    node;
    by_peer = Hashtbl.create 16;
    by_leg = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    plan_oracle = None;
    gw_handler = None;
  }

let set_plan_oracle t f = t.plan_oracle <- Some f
let set_gateway_handler t f = t.gw_handler <- Some f

let metrics t = Node.metrics t.node
let trace t ~cat detail = Node.record t.node ~cat ~actor:t.nd.Nd_layer.owner detail

let my_hello t =
  {
    Proto.h_addr = Nd_layer.my_addr t.nd;
    h_order = Node.my_order t.node;
    h_listen = List.map Phys_addr.to_string (Nd_layer.my_listen_addrs t.nd);
  }

let register_ivc t ivc =
  Hashtbl.replace t.by_peer ivc.peer ivc;
  if ivc.label <> 0 then Hashtbl.replace t.by_leg (ivc.circuit.Nd_layer.cid, ivc.label) ivc

let unregister_ivc t ivc =
  (match Hashtbl.find_opt t.by_peer ivc.peer with
   | Some i when i == ivc -> Hashtbl.remove t.by_peer ivc.peer
   | Some _ | None -> ());
  if ivc.label <> 0 then Hashtbl.remove t.by_leg (ivc.circuit.Nd_layer.cid, ivc.label)

let find_ivc t peer =
  let peer = Nd_layer.resolve_alias t.nd peer in
  match Hashtbl.find_opt t.by_peer peer with
  | Some ivc when ivc.i_open && ivc.circuit.Nd_layer.c_open -> Some ivc
  | Some _ | None -> (
    (* Circuits are bidirectional: a peer that opened an LVC to us is
       directly reachable over it (this is how replies to not-yet-resolvable
       sources — e.g. TAdd clients of the name server — find their way). *)
    match Nd_layer.find_circuit t.nd peer with
    | Some circuit ->
      let ivc =
        {
          label = 0;
          circuit;
          peer = circuit.Nd_layer.peer_addr;
          wire_dst = circuit.Nd_layer.peer_announced;
          remote_order = circuit.Nd_layer.peer_order;
          remote_listen = circuit.Nd_layer.peer_listen;
          inbound = true;
          i_open = true;
          last_mode = None;
        }
      in
      register_ivc t ivc;
      Some ivc
    | None -> None)

(* Establish — or reuse — the LVC to a neighbour (final dst or first
   gateway). Gateways are shared: many IVCs multiplex over one LVC. *)
let neighbour_circuit t ~(addr : Addr.t option) ~(phys_candidates : Phys_addr.t list) =
  let existing =
    match addr with Some a -> Nd_layer.find_circuit t.nd a | None -> None
  in
  match existing with
  | Some c -> Ok c
  | None ->
    let rec try_phys = function
      | [] -> Error Errors.Unreachable
      | phys :: rest -> (
        match Nd_layer.open_circuit t.nd ~phys with
        | Ok c -> Ok c
        | Error _ when rest <> [] -> try_phys rest
        | Error _ as e -> e)
    in
    try_phys phys_candidates

let open_direct t ~dst ~phys_candidates =
  match neighbour_circuit t ~addr:(Some dst) ~phys_candidates with
  | Error _ as e -> e
  | Ok circuit ->
    let ivc =
      {
        label = 0;
        circuit;
        peer = circuit.Nd_layer.peer_addr;
        wire_dst = circuit.Nd_layer.peer_announced;
        remote_order = circuit.Nd_layer.peer_order;
        remote_listen = circuit.Nd_layer.peer_listen;
        inbound = false;
        i_open = true;
        last_mode = None;
      }
    in
    register_ivc t ivc;
    Ok ivc

let open_chained t ~dst ~hops ~first_phys =
  match hops with
  | [] -> Error (Errors.Internal "empty gateway route")
  | first_gw :: rest ->
    (match neighbour_circuit t ~addr:(Some first_gw) ~phys_candidates:first_phys with
     | Error _ as e -> e
     | Ok circuit ->
       let label = Registry.fresh_label t.node.Node.ipcs in
       let ivar = Sched.Ivar.create (Node.sched t.node) in
       Hashtbl.replace t.pending label ivar;
       let body =
         Packed.run_pack Proto.ivc_open_codec
           { Proto.route = rest; final_dst = dst; origin_hello = my_hello t }
       in
       let header =
         Proto.make_header ~kind:Proto.Ivc_open ~src:(Nd_layer.my_addr t.nd) ~dst:first_gw
           ~src_order:(Node.my_order t.node) ~ivc:label ~payload_len:0 ()
       in
       Ntcs_util.Metrics.incr (metrics t) "ip.ivc_open_sent";
       trace t ~cat:"ip.ivc_open_sent"
         (Printf.sprintf "label %d to %s" label (Addr.to_string dst));
       (match Nd_layer.send_frame circuit header body with
        | Error _ as e ->
          Hashtbl.remove t.pending label;
          e
        | Ok () -> (
          let timeout = t.node.Node.config.Node.default_timeout_us in
          match Sched.Ivar.read ~timeout ivar with
          | None ->
            Hashtbl.remove t.pending label;
            Error Errors.Timeout
          | Some (Error _ as e) ->
            Hashtbl.remove t.pending label;
            e
          | Some (Ok hello) ->
            Hashtbl.remove t.pending label;
            let ivc =
              {
                label;
                circuit;
                peer = dst;
                wire_dst = hello.Proto.h_addr;
                remote_order = hello.Proto.h_order;
                remote_listen = List.filter_map Phys_addr.of_string hello.Proto.h_listen;
                inbound = false;
                i_open = true;
                last_mode = None;
              }
            in
            register_ivc t ivc;
            trace t ~cat:"ip.ivc_open" (Printf.sprintf "to %s via %d hop(s) label %d"
                                          (Addr.to_string dst) (List.length hops) label);
            Ok ivc)))

(* Open an IVC to [dst]: ask the routing oracle whether it is local or
   behind gateways, then establish accordingly, trying route alternatives in
   the oracle's order. *)
let open_ivc t ~dst =
  match t.plan_oracle with
  | None -> Error (Errors.Internal "no routing oracle wired")
  | Some plan -> (
    match plan dst with
    | Error _ as e -> e
    | Ok targets ->
      let rec attempt last = function
        | [] -> Error last
        | target :: rest -> (
          let result =
            match target with
            | T_direct phys_candidates -> open_direct t ~dst ~phys_candidates
            | T_via { hops; first_phys } -> open_chained t ~dst ~hops ~first_phys
          in
          match result with
          | Ok _ as ok -> ok
          | Error e -> attempt e rest)
      in
      attempt Errors.Unreachable targets)

let get_or_open t ~dst =
  match find_ivc t dst with
  | Some ivc -> Ok ivc
  | None ->
    (* Establishment cost is the IP layer's dominant latency: histogram it
       (sim-time µs) so ntcs_stat can split open cost from transfer cost. *)
    let t0 = Node.now t.node in
    let r = open_ivc t ~dst in
    Ntcs_obs.Registry.observe (metrics t) "ip.open_us" (Node.now t.node - t0);
    r

(* Send application-level traffic on an IVC. This is where the §5 decision
   is made: identical representation -> image mode (byte copy), otherwise
   packed mode (application conversion). *)
let send t ivc ~kind ?(seq = 0) ?(conv = 0) ?(app_tag = 0) ?(span = Ntcs_obs.Span.none)
    (payload : Convert.payload) =
  if not (ivc.i_open && ivc.circuit.Nd_layer.c_open) then Error Errors.Circuit_failed
  else begin
    let my_order = Node.my_order t.node in
    let mode =
      if t.node.Node.config.Node.force_packed then Convert.Packed
      else if my_order = ivc.remote_order then Convert.Image
      else Convert.Packed
    in
    (* Per-ComMod counters track application payload conversions only;
       naming-service and DRTS control traffic is excluded so experiments can
       isolate the application's conversion behaviour (E6). *)
    let application_traffic =
      app_tag < 8000
      && (match kind with
          | Proto.Data | Proto.Reply | Proto.Dgram -> true
          | Proto.Ping | Proto.Pong | Proto.Hello | Proto.Hello_ack | Proto.Ivc_open
          | Proto.Ivc_accept | Proto.Ivc_reject | Proto.Ivc_close -> false)
    in
    (* One trace event per mode *transition* on the IVC: enough for the R3
       invariant (never packed between identical representations, never
       image between different ones) and for watching E6's adaptive flip,
       without a per-frame flood. *)
    if ivc.last_mode <> Some mode then begin
      ivc.last_mode <- Some mode;
      trace t ~cat:"ip.convert"
        (Printf.sprintf "mode=%s local=%s remote=%s dst=%s%s" (Convert.mode_to_string mode)
           (Endian.order_to_string my_order)
           (Endian.order_to_string ivc.remote_order)
           (Addr.to_string ivc.peer)
           (if t.node.Node.config.Node.force_packed then " forced" else ""))
    end;
    (match mode with
     | Convert.Image ->
       Ntcs_util.Metrics.incr (metrics t) "conv.image_msgs";
       if application_traffic then
         Ntcs_util.Metrics.incr (metrics t) ("conv.image_msgs." ^ t.nd.Nd_layer.owner)
     | Convert.Packed ->
       Ntcs_util.Metrics.incr (metrics t) "conv.packed_msgs";
       if application_traffic then
         Ntcs_util.Metrics.incr (metrics t) ("conv.packed_msgs." ^ t.nd.Nd_layer.owner));
    let data = Convert.force mode payload in
    let dst =
      if ivc.label = 0 then ivc.circuit.Nd_layer.peer_announced else ivc.wire_dst
    in
    let header =
      Proto.make_header ~kind ~src:(Nd_layer.my_addr t.nd) ~dst ~mode
        ~src_order:my_order ~seq ~conv ~app_tag ~ivc:ivc.label ~span
        ~payload_len:(Bytes.length data) ()
    in
    Nd_layer.send_frame ivc.circuit header data
  end

let close_ivc t ivc ~reason =
  if ivc.i_open then begin
    ivc.i_open <- false;
    if ivc.label <> 0 then
      trace t ~cat:"ip.ivc_close"
        (Printf.sprintf "label %d peer %s local reason=%s" ivc.label
           (Addr.to_string ivc.peer) reason);
    if ivc.label <> 0 && ivc.circuit.Nd_layer.c_open then begin
      let header =
        Proto.make_header ~kind:Proto.Ivc_close ~src:(Nd_layer.my_addr t.nd) ~dst:ivc.peer
          ~ivc:ivc.label ~payload_len:0 ()
      in
      ignore (Nd_layer.send_frame ivc.circuit header (Packed.run_pack Proto.reason_codec reason))
    end
    else if ivc.label = 0 then Nd_layer.close_circuit ivc.circuit;
    unregister_ivc t ivc
  end

(* --- incoming traffic --- *)

(* The final destination's half of IVC establishment. *)
let accept_chained_fresh t circuit (h : Proto.header) (req : Proto.ivc_open) =
  let origin_real = req.Proto.origin_hello.Proto.h_addr in
  let peer_key =
    if Addr.is_temporary origin_real then Nd_layer.fresh_alias t.nd else origin_real
  in
  (* A relocated or reconnecting origin replaces its old IVC. *)
  (match Hashtbl.find_opt t.by_peer peer_key with
   | Some old when old.label <> 0 -> unregister_ivc t old
   | Some _ | None -> ());
  let ivc =
    {
      label = h.Proto.ivc;
      circuit;
      peer = peer_key;
      wire_dst = origin_real;
      remote_order = req.Proto.origin_hello.Proto.h_order;
      remote_listen =
        List.filter_map Phys_addr.of_string req.Proto.origin_hello.Proto.h_listen;
      inbound = true;
      i_open = true;
      last_mode = None;
    }
  in
  register_ivc t ivc;
  Ntcs_util.Metrics.incr (metrics t) "ip.ivc_accepted";
  trace t ~cat:"ip.ivc_accept" (Printf.sprintf "from %s label %d" (Addr.to_string peer_key)
                                  h.Proto.ivc);
  let reply =
    Proto.make_header ~kind:Proto.Ivc_accept ~src:(Nd_layer.my_addr t.nd) ~dst:origin_real
      ~src_order:(Node.my_order t.node) ~ivc:h.Proto.ivc ~payload_len:0 ()
  in
  ignore
    (Nd_layer.send_frame circuit reply (Packed.run_pack Proto.hello_codec (my_hello t)))

let accept_chained t circuit (h : Proto.header) (req : Proto.ivc_open) =
  if Hashtbl.mem t.by_leg (circuit.Nd_layer.cid, h.Proto.ivc) then begin
    (* A duplicated open frame (the fault plane may duplicate any
       single-segment frame): this leg is already established and acked.
       Accepting again would drive the lifecycle automaton's open on a live
       label — drop it instead. The origin never retries an open under the
       same label (a timed-out open goes out again under a fresh one), so
       no re-ack is owed. *)
    Ntcs_util.Metrics.incr (metrics t) "ip.duplicate_opens";
    trace t ~cat:"ip.dup_open" (Printf.sprintf "label %d" h.Proto.ivc)
  end
  else accept_chained_fresh t circuit h req

(* Presented source for an application frame: chained frames resolve through
   the IVC's peer key (and upgrade TAdd aliases on the spot, §3.4); direct
   frames use the ND circuit's peer, which the ND-layer keeps upgraded. *)
let presented_src t circuit (h : Proto.header) =
  if h.Proto.ivc <> 0 then begin
    match Hashtbl.find_opt t.by_leg (circuit.Nd_layer.cid, h.Proto.ivc) with
    | None -> h.Proto.src
    | Some ivc ->
      if Addr.is_temporary ivc.peer && Addr.is_unique h.Proto.src then begin
        let alias = ivc.peer in
        unregister_ivc t ivc;
        ivc.peer <- h.Proto.src;
        ivc.wire_dst <- h.Proto.src;
        register_ivc t ivc;
        Nd_layer.note_alias_purged t.nd alias h.Proto.src;
        Node.record t.node ~cat:"ip.tadd_purge" ~actor:t.nd.Nd_layer.owner
          (Printf.sprintf "%s -> %s" (Addr.to_string alias) (Addr.to_string h.Proto.src))
      end;
      ivc.peer
  end
  else Nd_layer.resolve_alias t.nd circuit.Nd_layer.peer_addr

let handle_circuit_down t circuit =
  (* Every IVC riding this circuit is gone; report the peers upward so the
     LCM can attempt relocation (§4.3: "the error is passed up to the
     LCM-layer, where a new connection (or relocation) will be attempted"). *)
  let dead =
    Ntcs_util.sorted_bindings ~compare:Addr.compare t.by_peer
    |> List.filter_map (fun (_, ivc) -> if ivc.circuit == circuit then Some ivc else None)
  in
  List.iter
    (fun ivc ->
      ivc.i_open <- false;
      unregister_ivc t ivc)
    dead;
  (match t.gw_handler with Some h -> h (Gw_down circuit) | None -> ());
  let direct_peer =
    (* The circuit peer itself may have had no explicit IVC entry. *)
    if Addr.is_unique circuit.Nd_layer.peer_addr then [ circuit.Nd_layer.peer_addr ] else []
  in
  let peers = List.map (fun ivc -> ivc.peer) dead @ direct_peer in
  Down (List.sort_uniq Addr.compare peers)

(* Materialise a view's payload — the one copy a locally-consumed frame
   pays, accounted in the histogram the bench reads. *)
let materialise t view =
  let p = Proto.Frame.payload_bytes view in
  Ntcs_obs.Registry.observe (metrics t) "frame.bytes_copied" (Bytes.length p);
  p

let handle_event t (ev : Nd_layer.event) =
  match ev with
  | Nd_layer.Circuit_up _ -> Consumed
  | Nd_layer.Circuit_down (circuit, _err) -> handle_circuit_down t circuit
  | Nd_layer.Frame (circuit, view) ->
    let h = Proto.Frame.header view in
    (* Cascade teardown (§4.3) is matched by leg label before any address
       check: the gateway that lost a leg cannot know the end module's
       current address, only the label of the circuit being torn down. *)
    if h.Proto.kind = Proto.Ivc_close
       && Hashtbl.mem t.by_leg (circuit.Nd_layer.cid, h.Proto.ivc)
    then begin
      match Hashtbl.find_opt t.by_leg (circuit.Nd_layer.cid, h.Proto.ivc) with
      | None -> Consumed
      | Some ivc ->
        ivc.i_open <- false;
        unregister_ivc t ivc;
        Ntcs_util.Metrics.incr (metrics t) "ip.ivc_closed_remote";
        trace t ~cat:"ip.ivc_close"
          (Printf.sprintf "label %d peer %s remote" ivc.label (Addr.to_string ivc.peer));
        Down [ ivc.peer ]
    end
    else if Nd_layer.is_me t.nd h.Proto.dst then begin
      match h.Proto.kind with
      | Proto.Ivc_open -> (
        match Packed.run_unpack_result Proto.ivc_open_codec (materialise t view) with
        | Error m ->
          trace t ~cat:"ip.bad_open" m;
          Consumed
        | Ok req ->
          if Nd_layer.is_me t.nd req.Proto.final_dst then begin
            accept_chained t circuit h req;
            Consumed
          end
          else begin
            (* Addressed to us but destined elsewhere: we are expected to be
               a gateway hop. *)
            match t.gw_handler with
            | Some handler ->
              handler (Gw_open (circuit, h, req));
              Consumed
            | None ->
              let reject =
                Proto.make_header ~kind:Proto.Ivc_reject ~src:(Nd_layer.my_addr t.nd)
                  ~dst:h.Proto.src ~ivc:h.Proto.ivc ~payload_len:0 ()
              in
              ignore
                (Nd_layer.send_frame circuit reject
                   (Packed.run_pack Proto.reason_codec "not a gateway"));
              Consumed
          end)
      | Proto.Ivc_accept -> (
        match Hashtbl.find_opt t.pending h.Proto.ivc with
        | None -> Consumed
        | Some ivar -> (
          match Packed.run_unpack_result Proto.hello_codec (materialise t view) with
          | Ok hello ->
            ignore (Sched.Ivar.try_fill ivar (Ok hello));
            Consumed
          | Error m ->
            ignore (Sched.Ivar.try_fill ivar (Error (Errors.Bad_message m)));
            Consumed))
      | Proto.Ivc_reject -> (
        match Hashtbl.find_opt t.pending h.Proto.ivc with
        | None -> Consumed
        | Some ivar ->
          trace t ~cat:"ip.ivc_reject" (Printf.sprintf "label %d" h.Proto.ivc);
          ignore (Sched.Ivar.try_fill ivar (Error Errors.Unreachable));
          Consumed)
      | Proto.Ivc_close -> (
        match Hashtbl.find_opt t.by_leg (circuit.Nd_layer.cid, h.Proto.ivc) with
        | None -> Consumed
        | Some ivc ->
          ivc.i_open <- false;
          unregister_ivc t ivc;
          Ntcs_util.Metrics.incr (metrics t) "ip.ivc_closed_remote";
          trace t ~cat:"ip.ivc_close"
            (Printf.sprintf "label %d peer %s remote" ivc.label (Addr.to_string ivc.peer));
          Down [ ivc.peer ])
      | Proto.Hello | Proto.Hello_ack -> Consumed (* handshake residue; ignore *)
      | Proto.Data | Proto.Dgram | Proto.Reply | Proto.Ping | Proto.Pong ->
        let src = presented_src t circuit h in
        Deliver { del_src = src; del_hdr = h; del_payload = materialise t view }
    end
    else begin
      (* Not addressed to this module: gateway forwarding, or noise. The
         view travels whole — the gateway patches its header words in place
         and forwards without touching the payload. *)
      match t.gw_handler with
      | Some handler ->
        handler (Gw_frame (circuit, view));
        Consumed
      | None ->
        Ntcs_util.Metrics.incr (metrics t) "ip.misaddressed";
        Consumed
    end

(* Drop connection state for a peer (used by the LCM after relocation: the
   new instance needs a fresh circuit, §3.5). *)
let forget_peer t peer =
  match Hashtbl.find_opt t.by_peer peer with
  | None -> ()
  | Some ivc -> close_ivc t ivc ~reason:"forget"

let open_ivc_count t = Hashtbl.length t.by_peer
