(** The naming-service request/response protocol.

    These messages ride the ordinary Nucleus primitives as packed-mode
    payloads with a reserved application tag — "for all practical purposes,
    the naming service is nothing more than an application built on the
    Nucleus" (§2.4). *)

open Ntcs_wire

val app_tag : int
(** Reserved application tag for naming-service traffic. *)

type entry = {
  e_name : string;
  e_addr : Addr.t;
  e_phys : string list;  (** physical addresses, uninterpreted (§3.2) *)
  e_nets : int list;  (** logical network identifiers *)
  e_order : int;  (** machine representation tag *)
  e_attrs : (string * string) list;  (** attribute-based naming (§7) *)
  e_alive : bool;
}

type request =
  | Register of {
      r_name : string;
      r_phys : string list;
      r_nets : int list;
      r_order : int;
      r_attrs : (string * string) list;
    }
  | Lookup of string  (** logical name → UAdd *)
  | Lookup_v of string * int
      (** versioned, shard-routed lookup: [name, hops]. A non-owner shard
          forwards it name-to-name to the owner with [hops+1] (Internames
          style, DESIGN.md §15); [hops >= 1] forces a local answer so the
          resolution chain is at most one hop. Answered with {!R_addr_v}. *)
  | Lookup_attrs of (string * string) list
  | Resolve of Addr.t  (** UAdd → full entry *)
  | Resolve_v of Addr.t  (** versioned resolve, answered with {!R_entry_v} *)
  | Forward of Addr.t  (** address fault: find a replacement (§3.5) *)
  | Deregister of Addr.t
  | List_gateways  (** the centralized topology (§4.2) *)
  | Sync_pull of int  (** replication: entries stamped after n *)
  | Sync_push of (int * entry) list  (** replication: push fresh entries *)

type response =
  | R_registered of Addr.t
  | R_addr of Addr.t
  | R_addr_v of Addr.t * int * int
      (** [addr, shard, gen]: answer plus the answering authority's shard
          index and invalidation generation. [gen = 0] marks an
          unversioned answer (a replica's backup copy while the owner is
          down): cacheable, but never raises the client's generation
          floor. *)
  | R_entry of entry
  | R_entry_v of entry * int * int  (** [entry, shard, gen] — as {!R_addr_v} *)
  | R_entries of entry list
  | R_forward of Addr.t option  (** [Some] replacement / [None] still alive *)
  | R_ok
  | R_sync of (int * entry) list
  | R_error of string  (** [Errors.to_string] form *)

val entry_codec : entry Packed.t
val request_codec : request Packed.t
val response_codec : response Packed.t

val pack_request : request -> Bytes.t
val unpack_request : Bytes.t -> (request, string) result
val pack_response : response -> Bytes.t
val unpack_response : Bytes.t -> (response, string) result
