(** The Internet Protocol layer (§2.2, §4): internet virtual circuits,
    "established either as a single LVC on the local network, or as a
    chained set of LVCs linked through one or more Gateways".

    Chaining works by label swapping: each leg carries a label (header word
    [ivc]); gateways splice (circuit, label) pairs. Route computation is the
    paper's compromise — topology centralized in the naming service (the
    plan oracle), establishment autonomous at each hop, and no gateway ever
    talks to another outside the circuit chain itself.

    The §5 conversion-mode decision is made here, not per LVC, because it
    needs the {e final} destination's machine representation: direct IVCs
    learn it from the ND HELLO, chained ones from the HELLO carried in
    IVC_OPEN / IVC_ACCEPT. *)

open Ntcs_ipcs
open Ntcs_wire

type ivc = {
  label : int;  (** 0 = direct LVC, no chaining *)
  circuit : Nd_layer.circuit;  (** first leg *)
  mutable peer : Addr.t;  (** table key: final destination (or origin) *)
  mutable wire_dst : Addr.t;  (** what the remote end calls itself *)
  mutable remote_order : Endian.order;
  mutable remote_listen : Phys_addr.t list;
  inbound : bool;
  mutable i_open : bool;
  mutable last_mode : Convert.mode option;
      (** last conversion mode traced on this IVC (mode-transition events) *)
}

(** What the routing oracle answers, in preference order. *)
type target =
  | T_direct of Phys_addr.t list  (** candidate physical addresses *)
  | T_via of {
      hops : Addr.t list;  (** gateway ComMod UAdds, first hop first *)
      first_phys : Phys_addr.t list;  (** how to reach the first hop *)
    }

(** Events handed to a gateway's forwarding logic. *)
type gw_event =
  | Gw_open of Nd_layer.circuit * Proto.header * Proto.ivc_open
  | Gw_frame of Nd_layer.circuit * Proto.Frame.t
      (** the whole received frame as a view — the gateway patches header
          words in place and forwards without copying the payload *)
  | Gw_down of Nd_layer.circuit

type delivery = {
  del_src : Addr.t;  (** presented (alias-resolved) source *)
  del_hdr : Proto.header;
  del_payload : Bytes.t;
}

type action =
  | Deliver of delivery  (** application-bound traffic *)
  | Consumed  (** internal protocol event *)
  | Down of Addr.t list  (** peers whose IVCs just died *)

type t

val create : Node.t -> Nd_layer.t -> t

val set_plan_oracle : t -> (Addr.t -> (target list, Errors.t) result) -> unit
(** Wire the routing oracle (NSP + well-known table). *)

val set_gateway_handler : t -> (gw_event -> unit) -> unit
(** Install gateway forwarding: frames not addressed to this module go to
    the handler instead of being dropped. *)

val find_ivc : t -> Addr.t -> ivc option
(** Live IVC to this peer, adopting an existing inbound ND circuit if one
    exists (circuits are bidirectional). *)

val open_ivc : t -> dst:Addr.t -> (ivc, Errors.t) result
(** Plan and establish, trying route alternatives in oracle order.
    Blocking. *)

val get_or_open : t -> dst:Addr.t -> (ivc, Errors.t) result
(** Like {!open_ivc} but reusing a live IVC; a cold open is timed into the
    ["ip.open_us"] histogram. *)

val send :
  t ->
  ivc ->
  kind:Proto.kind ->
  ?seq:int ->
  ?conv:int ->
  ?app_tag:int ->
  ?span:Ntcs_obs.Span.ctx ->
  Convert.payload ->
  (unit, Errors.t) result
(** Choose the conversion mode from the machine representations (§5), force
    the payload once, frame and transmit. [span] (default [Span.none]) is
    the causal identity stamped into the header. *)

val close_ivc : t -> ivc -> reason:string -> unit
(** Close; a chained circuit sends IVC_CLOSE down the chain (§4.3). *)

val handle_event : t -> Nd_layer.event -> action
(** The dispatcher feeds every ND event through here. *)

val forget_peer : t -> Addr.t -> unit
(** Drop connection state so the next send reopens (relocation, §3.5). *)

val open_ivc_count : t -> int
