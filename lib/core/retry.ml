(* The one retry/backoff policy mechanism for the whole ComMod.

   Every layer that used to hand-roll a retry loop (the ND-layer's
   open-with-retry, the LCM's address-fault recovery, the NSP's replica
   failover) now declares a [policy] and calls [run]: bounded attempts,
   exponential backoff with a hard ceiling, and seeded jitter drawn from the
   caller's [Ntcs_util.Rng.t] so repeated failures desynchronise without
   breaking determinism. [ntcs_lint] flags sleeps in ad-hoc loops outside
   this module, so the discipline is enforced, not just encouraged. *)

open Ntcs_sim

type policy = {
  max_attempts : int; (* total attempts, including the first; >= 1 *)
  base_delay_us : int; (* backoff before the second attempt *)
  max_delay_us : int; (* backoff ceiling *)
  jitter_us : int; (* uniform seeded jitter added to each backoff *)
}

let policy ?(max_attempts = 3) ?(base_delay_us = 50_000) ?(max_delay_us = 800_000)
    ?(jitter_us = 20_000) () =
  {
    max_attempts = max 1 max_attempts;
    base_delay_us = max 0 base_delay_us;
    max_delay_us = max 0 max_delay_us;
    jitter_us = max 0 jitter_us;
  }

let no_retry = { max_attempts = 1; base_delay_us = 0; max_delay_us = 0; jitter_us = 0 }

(* Backoff before attempt [attempt + 1], after the [attempt]th failure:
   base * 2^(attempt-1), capped, plus jitter. *)
let delay_us ?rng p ~attempt =
  let shift = min 16 (max 0 (attempt - 1)) in
  let capped = min p.max_delay_us (p.base_delay_us * (1 lsl shift)) in
  let jitter =
    match rng with
    | Some rng when p.jitter_us > 0 -> Ntcs_util.Rng.int rng (p.jitter_us + 1)
    | Some _ | None -> 0
  in
  capped + jitter

let run sched ?rng ?deadline_us (p : policy) ~retryable
    ?(on_retry = fun ~attempt:_ ~delay_us:_ _ -> ()) f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
      if attempt >= p.max_attempts || not (retryable e) then err
      else begin
        let d = delay_us ?rng p ~attempt in
        match deadline_us with
        | Some dl when Sched.now sched + d >= dl ->
          (* The backoff alone would blow the caller's budget: give up with
             the underlying error rather than sleeping past the deadline. *)
          err
        | Some _ | None ->
          on_retry ~attempt ~delay_us:d e;
          if d > 0 then Sched.sleep sched d;
          go (attempt + 1)
      end
  in
  go 1
