(** STD-IF: the uniform local-virtual-circuit interface (§2.2).

    "A simple STD-IF was desired ... incorporat[ing] only those features
    necessary for the NTCS, while maintaining a high degree of compatibility
    with anticipated underlying IPCSs."

    Everything above sees message-oriented local virtual circuits; below it
    is genuinely network dependent: over TCP, messages are framed onto the
    byte stream with a shift-mode length word; over MBX, messages larger
    than the mailbox limit are fragmented and reassembled. No relocation or
    recovery here — failures surface as [Error] and pass upward. *)

open Ntcs_sim
open Ntcs_ipcs

type lvc = {
  lvc_id : int;
  kind : Phys_addr.kind;
  send_msg : Bytes.t -> (unit, Ipcs_error.t) result;
  send_sub : Bytes.t -> off:int -> len:int -> (unit, Ipcs_error.t) result;
      (** Send [data[off, off+len)] as one message without the caller
          first materialising the slice — the zero-copy path for pooled
          frame buffers. The slice is consumed before the call returns. *)
  recv_msg : ?timeout_us:int -> unit -> (Bytes.t, Ipcs_error.t) result;
  close : unit -> unit;
  abort : unit -> unit;
  is_open : unit -> bool;
}
(** One local virtual circuit: whole messages in, whole messages out,
    whichever backend carries them. *)

val of_tcp : Ipcs_tcp.conn -> lvc
(** Length-prefix framing over the byte stream. *)

val of_mbx : Ipcs_mbx.chan -> lvc
(** Fragmentation/reassembly over bounded messages. *)

val mbx_frag_header : int
val mbx_frag_payload : int

type acceptor = {
  acc_addr : Phys_addr.t;  (** the listening address to register/announce *)
  accept : ?timeout_us:int -> unit -> (lvc, Ipcs_error.t) result;
  shutdown : unit -> unit;
}

val connect :
  ?allowed:Net.id list ->
  Registry.t ->
  machine:Machine.t ->
  dst:Phys_addr.t ->
  (lvc, Ipcs_error.t) result
(** Open an LVC over whichever backend the address kind selects. *)

val listen_tcp :
  ?port:int -> Registry.t -> machine:Machine.t -> (acceptor, Ipcs_error.t) result
(** Fixed [port] for well-known modules; fresh allocation otherwise. *)

val listen_mbx :
  ?path:string ->
  Registry.t ->
  machine:Machine.t ->
  hint:string ->
  (acceptor, Ipcs_error.t) result

(** {1 The unified envelope} *)

type envelope = {
  src : Addr.t;  (** who sent it (reply here) *)
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Ntcs_wire.Convert.mode;  (** how the payload was rendered *)
  src_order : Ntcs_wire.Endian.order;
  data : Bytes.t;
  conv : int;  (** nonzero: the sender is blocked awaiting a reply *)
  seq : int;  (** sender's LCM sequence number *)
  span : Ntcs_obs.Span.ctx;
      (** causal identity of the logical send that produced this message *)
}
(** The one message-envelope record shared by every layer above the STD-IF.
    The LCM constructs it, the ALI hands it to applications, and [reply]
    consumes it unchanged; upper layers re-export it so
    [env.Lcm_layer.src] and [env.Ali_layer.src] project the same record. *)
