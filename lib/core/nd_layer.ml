(* The Network Dependent layer (§2.2).

   Sits directly on the native IPCS (through STD-IF) and gives the layers
   above uniform *local virtual circuits*: message frames to/from peers
   named by NTCS addresses, on directly-reachable machines only. What lives
   here:
   - the channel-open protocol: a HELLO / HELLO-ACK exchange announcing each
     end's address, native byte order and listening addresses (this is the
     "information exchanged between modules during the channel open
     protocol" that feeds the local address cache, §3.3);
   - retry on open — the only recovery the paper allows at this level;
   - TAdd handling (§3.4): an incoming connection from a temporary-address
     source gets a locally-assigned alias TAdd, purged the moment a real
     UAdd is seen from that circuit;
   - reader processes per circuit that demultiplex frames into the ComMod's
     single event inbox and pass failure notifications upward.

   No relocation, no reconnection, no conversion decisions for chained
   circuits (those belong to the IVC layer, which knows the final
   destination's machine type). *)

open Ntcs_sim
open Ntcs_ipcs
open Ntcs_wire

type circuit = {
  cid : int;
  lvc : Std_if.lvc;
  nd : t;
  mutable peer_addr : Addr.t; (* table key: real UAdd, or our local alias TAdd *)
  mutable peer_announced : Addr.t; (* what the peer calls itself; wire dst for frames *)
  mutable peer_order : Endian.order;
  mutable peer_listen : Phys_addr.t list;
  mutable c_open : bool;
  outbound : bool;
}

and event =
  | Frame of circuit * Proto.Frame.t (* zero-copy view; header pre-validated *)
  | Circuit_up of circuit (* inbound circuit completed its handshake *)
  | Circuit_down of circuit * Errors.t

and t = {
  node : Node.t;
  owner : string; (* module name, for traces *)
  allowed_nets : Net.id list option;
  mutable my_addr : Addr.t; (* TAdd until registration completes *)
  mutable my_past : Addr.t list; (* previous self-addresses, still accepted *)
  tadds : Addr.Tadd_gen.gen;
  inbox : event Sched.Mailbox.mb;
  circuits : (Addr.t, circuit) Hashtbl.t;
  alias_fwd : (Addr.t, Addr.t) Hashtbl.t; (* purged alias -> real UAdd *)
  phys_cache : (Addr.t, Phys_addr.t list) Hashtbl.t;
  mutable acceptors : Std_if.acceptor list;
  mutable helpers : Sched.pid list;
  mutable next_cid : int;
  mutable closed : bool;
}

let sched t = Node.sched t.node
let metrics t = Node.metrics t.node
let trace t ~cat detail = Node.record t.node ~cat ~actor:t.owner detail

let my_addr t = t.my_addr

(* Registration upgrades the module's self-assigned TAdd to its real UAdd.
   Frames addressed to a previous self-address are still ours: a peer may
   have replies in flight to the TAdd we announced. *)
let set_my_addr t addr =
  if not (Addr.equal addr t.my_addr) then begin
    t.my_past <- t.my_addr :: t.my_past;
    t.my_addr <- addr
  end

let is_me t addr =
  Addr.equal addr t.my_addr || List.exists (Addr.equal addr) t.my_past

(* Hand out a locally-unique temporary address; the IP-layer uses these to
   alias TAdd-sourced origins arriving over chained circuits, exactly as the
   ND-layer does for direct ones. *)
let fresh_alias t =
  Ntcs_util.Metrics.incr (Node.metrics t.node) "tadd.assigned";
  Addr.Tadd_gen.fresh t.tadds

let note_alias_purged t alias real =
  Hashtbl.replace t.alias_fwd alias real;
  Ntcs_util.Metrics.incr (Node.metrics t.node) "tadd.purged"

let my_listen_addrs t = List.map (fun a -> a.Std_if.acc_addr) t.acceptors

let lookup_phys t addr = Hashtbl.find_opt t.phys_cache addr

let cache_phys t addr phys =
  if phys <> [] && Addr.is_unique addr then Hashtbl.replace t.phys_cache addr phys

let drop_cached_phys t addr = Hashtbl.remove t.phys_cache addr

let find_circuit t addr =
  match Hashtbl.find_opt t.circuits addr with
  | Some c when c.c_open -> Some c
  | Some _ | None -> (
    (* A purged alias still resolves, so replies addressed before the purge
       find the upgraded circuit. *)
    match Hashtbl.find_opt t.alias_fwd addr with
    | None -> None
    | Some real -> (
      match Hashtbl.find_opt t.circuits real with
      | Some c when c.c_open -> Some c
      | Some _ | None -> None))

let resolve_alias t addr =
  match Hashtbl.find_opt t.alias_fwd addr with Some real -> real | None -> addr

let hello_payload t =
  Packed.run_pack Proto.hello_codec
    {
      Proto.h_addr = t.my_addr;
      h_order = Node.my_order t.node;
      h_listen = List.map Phys_addr.to_string (my_listen_addrs t);
    }

(* Common tail of the two send paths: metrics, span, hand the frame's byte
   range to the STD-IF, surface failure as a broken circuit. *)
let send_view (c : circuit) (h : Proto.header) buf ~off ~len =
  Ntcs_util.Metrics.incr (metrics c.nd) "nd.frames_sent";
  Ntcs_obs.Registry.observe (metrics c.nd) "nd.tx_bytes" len;
  (* A span-carrying frame leaving this machine is one hop of its logical
     send: an instant event, attributable via the header's ctx. *)
  if not (Ntcs_obs.Span.is_none h.Proto.span) then
    World.span (Node.world c.nd.node) ~ctx:h.Proto.span ~phase:Ntcs_obs.Span.I ~name:"nd.tx"
      ~actor:c.nd.owner
      (Printf.sprintf "kind=%s dst=%s" (Proto.kind_to_string h.Proto.kind)
         (Addr.to_string h.Proto.dst));
  match c.lvc.Std_if.send_sub buf ~off ~len with
  | Ok () -> Ok ()
  | Error e ->
    c.c_open <- false;
    trace c.nd ~cat:"nd.send_fail"
      (Printf.sprintf "to %s: %s" (Addr.to_string c.peer_addr) (Ipcs_error.to_string e));
    Error (Errors.of_ipcs e)

let send_frame (c : circuit) (h : Proto.header) payload =
  if not c.c_open then Error Errors.Circuit_failed
  else begin
    (* Encode into a pooled buffer: one header blit + one payload blit is
       the entire copy cost of a send; the buffer goes back as soon as the
       STD-IF has consumed the range. *)
    let pool = World.pool (Node.world c.nd.node) in
    let flen = Proto.header_bytes + Bytes.length payload in
    let buf = Ntcs_util.Pool.alloc pool flen in
    let v = Proto.Frame.encode_into h ~payload buf ~off:0 in
    Ntcs_obs.Registry.observe (metrics c.nd) "frame.bytes_copied" (Bytes.length payload);
    let r = send_view c (Proto.Frame.header v) buf ~off:0 ~len:flen in
    Ntcs_util.Pool.release pool buf;
    r
  end

(* Forward a received frame as-is (headers already patched in place): no
   encode, no copy — the view's byte range goes straight to the STD-IF. *)
let forward_view (c : circuit) (v : Proto.Frame.t) =
  if not c.c_open then Error Errors.Circuit_failed
  else begin
    Ntcs_obs.Registry.observe (metrics c.nd) "frame.bytes_copied" 0;
    send_view c (Proto.Frame.header v) (Proto.Frame.buf v) ~off:(Proto.Frame.off v)
      ~len:(Proto.Frame.len v)
  end

(* Close locally without notifying upper layers (they asked for it). *)
let close_circuit (c : circuit) =
  if c.c_open then begin
    c.c_open <- false;
    c.lvc.Std_if.close ()
  end;
  (match Hashtbl.find_opt c.nd.circuits c.peer_addr with
   | Some c' when c' == c -> Hashtbl.remove c.nd.circuits c.peer_addr
   | Some _ | None -> ())

let register_circuit t key c = Hashtbl.replace t.circuits key c

(* A real UAdd arrived on a circuit we were tracking under a TAdd alias:
   purge the alias (§3.4 — "TAdds ... are replaced in local tables when the
   real UAdd is available"). *)
let upgrade_peer (c : circuit) (real : Addr.t) =
  let t = c.nd in
  if Addr.is_temporary c.peer_addr && Addr.is_unique real then begin
    let alias = c.peer_addr in
    (match Hashtbl.find_opt t.circuits alias with
     | Some c' when c' == c -> Hashtbl.remove t.circuits alias
     | Some _ | None -> ());
    Hashtbl.replace t.alias_fwd alias real;
    c.peer_addr <- real;
    c.peer_announced <- real;
    register_circuit t real c;
    Ntcs_util.Metrics.incr (metrics t) "tadd.purged";
    trace t ~cat:"nd.tadd_purge"
      (Printf.sprintf "%s -> %s" (Addr.to_string alias) (Addr.to_string real))
  end
  else if Addr.is_unique c.peer_addr && Addr.is_unique real && not (Addr.equal c.peer_addr real)
  then begin
    (* Peer re-registered under a fresh UAdd on a live circuit. Rare but
       possible; treat like an alias upgrade. *)
    (match Hashtbl.find_opt t.circuits c.peer_addr with
     | Some c' when c' == c -> Hashtbl.remove t.circuits c.peer_addr
     | Some _ | None -> ());
    c.peer_addr <- real;
    c.peer_announced <- real;
    register_circuit t real c
  end

let handle_incoming (c : circuit) raw =
  let t = c.nd in
  (* The received buffer becomes the view's backing store — no payload copy
     here; the header decodes once and is memoised in the view. *)
  match
    let v = Proto.Frame.of_bytes raw in
    (v, Proto.Frame.header v)
  with
  | exception (Proto.Bad_header m | Shift.Shift_error m) ->
    Ntcs_util.Metrics.incr (metrics t) "nd.bad_frames";
    trace t ~cat:"nd.bad_frame" m
  | v, h ->
    Ntcs_util.Metrics.incr (metrics t) "nd.frames_recv";
    Ntcs_obs.Registry.observe (metrics t) "nd.rx_bytes" (Bytes.length raw);
    if not (Ntcs_obs.Span.is_none h.Proto.span) then
      World.span (Node.world t.node) ~ctx:h.Proto.span ~phase:Ntcs_obs.Span.I ~name:"nd.rx"
        ~actor:t.owner
        (Printf.sprintf "kind=%s src=%s" (Proto.kind_to_string h.Proto.kind)
           (Addr.to_string h.Proto.src));
    (* Only non-chained frames identify the circuit peer: a chained frame's
       source is the remote origin, not the gateway this circuit goes to —
       re-keying on it would steal the gateway's table entry. *)
    if h.Proto.ivc = 0 && Addr.is_unique h.Proto.src then upgrade_peer c h.Proto.src;
    (* The view's backing store is this frame's own receive buffer — STD-IF
       hands each message fresh bytes, never pooled — so queueing it in the
       inbox is the designed ownership hand-off: the consumer holds the only
       reference and no release can recycle it under them. *)
    (* lint: allow escape(v) — inbox hand-off of an unpooled per-message receive buffer *)
    Sched.Mailbox.send t.inbox (Frame (c, v))

let reader_loop (c : circuit) =
  let t = c.nd in
  let rec loop () =
    match c.lvc.Std_if.recv_msg () with
    | Ok raw ->
      handle_incoming c raw;
      loop ()
    | Error e ->
      if c.c_open then begin
        c.c_open <- false;
        trace t ~cat:"nd.circuit_down"
          (Printf.sprintf "%s: %s" (Addr.to_string c.peer_addr) (Ipcs_error.to_string e));
        (match Hashtbl.find_opt t.circuits c.peer_addr with
         | Some c' when c' == c -> Hashtbl.remove t.circuits c.peer_addr
         | Some _ | None -> ());
        Sched.Mailbox.send t.inbox (Circuit_down (c, Errors.of_ipcs e))
      end
  in
  loop ()

let spawn_helper t ~name f =
  let pid = World.spawn (Node.world t.node) ~machine:(Node.machine t.node) ~name f in
  t.helpers <- pid :: t.helpers;
  pid

let start_reader t c =
  ignore
    (spawn_helper t ~name:(Printf.sprintf "%s/nd-reader-%d" t.owner c.cid) (fun () ->
         reader_loop c))

let fresh_cid t =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  cid

(* Inbound handshake: expect HELLO, answer HELLO-ACK, then become the
   circuit's reader. *)
let inbound_handshake t (lvc : Std_if.lvc) =
  let timeout = t.node.Node.config.Node.default_timeout_us in
  match lvc.Std_if.recv_msg ~timeout_us:timeout () with
  | Error e ->
    lvc.Std_if.abort ();
    trace t ~cat:"nd.handshake_fail" (Ipcs_error.to_string e)
  | Ok raw -> (
    match Proto.decode_frame raw with
    | exception (Proto.Bad_header m | Shift.Shift_error m) ->
      lvc.Std_if.abort ();
      trace t ~cat:"nd.handshake_fail" m
    | h, payload ->
      if h.Proto.kind <> Proto.Hello then begin
        lvc.Std_if.abort ();
        trace t ~cat:"nd.handshake_fail" "first frame was not HELLO"
      end
      else begin
        match Packed.run_unpack_result Proto.hello_codec payload with
        | Error m ->
          lvc.Std_if.abort ();
          trace t ~cat:"nd.handshake_fail" m
        | Ok hello ->
          let peer_real = hello.Proto.h_addr in
          let key =
            if Addr.is_temporary peer_real then begin
              (* §3.4: assign our own TAdd to an incoming connection from a
                 TAdd source — theirs is not unique to us. *)
              let alias = Addr.Tadd_gen.fresh t.tadds in
              Ntcs_util.Metrics.incr (metrics t) "tadd.assigned";
              alias
            end
            else peer_real
          in
          let c =
            {
              cid = fresh_cid t;
              lvc;
              nd = t;
              peer_addr = key;
              peer_announced = peer_real;
              peer_order = hello.Proto.h_order;
              peer_listen = List.filter_map Phys_addr.of_string hello.Proto.h_listen;
              c_open = true;
              outbound = false;
            }
          in
          register_circuit t key c;
          cache_phys t peer_real c.peer_listen;
          let ack_header =
            Proto.make_header ~kind:Proto.Hello_ack ~src:t.my_addr ~dst:peer_real
              ~src_order:(Node.my_order t.node) ~payload_len:0 ()
          in
          (match send_frame c ack_header (hello_payload t) with
           | Ok () ->
             trace t ~cat:"nd.accept" (Addr.to_string key);
             Sched.Mailbox.send t.inbox (Circuit_up c);
             reader_loop c
           | Error _ -> close_circuit c)
      end)

let accept_loop t (acceptor : Std_if.acceptor) =
  let rec loop () =
    match acceptor.Std_if.accept () with
    | Ok lvc ->
      ignore
        (spawn_helper t ~name:(Printf.sprintf "%s/nd-inbound" t.owner) (fun () ->
             inbound_handshake t lvc));
      loop ()
    | Error Ipcs_error.Timeout -> loop ()
    | Error _ -> () (* acceptor shut down *)
  in
  loop ()

(* Open an LVC to [phys], with retry on open (§2.2), and run the outbound
   handshake. Returns the circuit keyed by the peer's announced address. *)
let open_circuit t ~(phys : Phys_addr.t) =
  if t.closed then Error Errors.Circuit_failed
  else begin
    let cfg = t.node.Node.config in
    (* Fixed-interval open-retry (§2.2), expressed as a capped policy so the
       one retry mechanism serves here too: ceiling = base disables the
       exponential growth, jitter 0 keeps the historical cadence. *)
    let policy =
      Retry.policy
        ~max_attempts:(cfg.Node.lvc_open_retries + 1)
        ~base_delay_us:cfg.Node.lvc_retry_delay_us
        ~max_delay_us:cfg.Node.lvc_retry_delay_us ~jitter_us:0 ()
    in
    let connect ~attempt:_ =
      match
        Std_if.connect ?allowed:t.allowed_nets t.node.Node.ipcs
          ~machine:(Node.machine t.node) ~dst:phys
      with
      | Ok lvc -> Ok lvc
      | Error e -> Error (Errors.of_ipcs e)
    in
    match Retry.run (sched t) policy ~retryable:Errors.retryable connect with
    | Error _ as e -> e
    | Ok lvc -> (
      let hello_header =
        Proto.make_header ~kind:Proto.Hello ~src:t.my_addr
          ~dst:(Addr.temporary ~assigner:0 ~value:0) ~src_order:(Node.my_order t.node)
          ~payload_len:0 ()
      in
      let frame = Proto.encode_frame hello_header (hello_payload t) in
      match lvc.Std_if.send_msg frame with
      | Error e ->
        lvc.Std_if.abort ();
        Error (Errors.of_ipcs e)
      | Ok () -> (
        match lvc.Std_if.recv_msg ~timeout_us:cfg.Node.default_timeout_us () with
        | Error e ->
          lvc.Std_if.abort ();
          Error (Errors.of_ipcs e)
        | Ok raw -> (
          match Proto.decode_frame raw with
          | exception (Proto.Bad_header m | Shift.Shift_error m) ->
            lvc.Std_if.abort ();
            Error (Errors.Bad_message m)
          | h, payload ->
            if h.Proto.kind <> Proto.Hello_ack then begin
              lvc.Std_if.abort ();
              Error (Errors.Bad_message "expected HELLO-ACK")
            end
            else begin
              match Packed.run_unpack_result Proto.hello_codec payload with
              | Error m ->
                lvc.Std_if.abort ();
                Error (Errors.Bad_message m)
              | Ok hello ->
                let peer_real = hello.Proto.h_addr in
                let key =
                  if Addr.is_temporary peer_real then begin
                    let alias = Addr.Tadd_gen.fresh t.tadds in
                    Ntcs_util.Metrics.incr (metrics t) "tadd.assigned";
                    alias
                  end
                  else peer_real
                in
                let c =
                  {
                    cid = fresh_cid t;
                    lvc;
                    nd = t;
                    peer_addr = key;
                    peer_announced = peer_real;
                    peer_order = hello.Proto.h_order;
                    peer_listen = List.filter_map Phys_addr.of_string hello.Proto.h_listen;
                    c_open = true;
                    outbound = true;
                  }
                in
                register_circuit t key c;
                cache_phys t peer_real c.peer_listen;
                start_reader t c;
                trace t ~cat:"nd.open" (Printf.sprintf "%s at %s" (Addr.to_string key)
                                          (Phys_addr.to_string phys));
                Ok c
            end)))
  end

(* Create the ND-layer for a module: allocate one communication resource per
   address kind this machine (restricted to [allowed_nets]) can speak, and
   start the accept loops. Must be called from within the owning process. *)
let create node ~owner ?allowed_nets ?(fixed = []) () =
  let sched_ = Node.sched node in
  let self = Sched.self sched_ in
  let t =
    {
      node;
      owner;
      allowed_nets;
      my_addr = Addr.temporary ~assigner:self ~value:0;
      my_past = [];
      tadds = Addr.Tadd_gen.create ~assigner:self;
      inbox = Sched.Mailbox.create sched_;
      circuits = Hashtbl.create 16;
      alias_fwd = Hashtbl.create 8;
      phys_cache = Hashtbl.create 32;
      acceptors = [];
      helpers = [];
      next_cid = 1;
      closed = false;
    }
  in
  t.my_addr <- Addr.Tadd_gen.fresh t.tadds;
  Ntcs_util.Metrics.incr (metrics t) "tadd.assigned";
  let machine = Node.machine node in
  let nets =
    match allowed_nets with Some nets -> nets | None -> Node.my_nets node
  in
  let kinds =
    nets
    |> List.map (fun nid ->
           match (World.net (Node.world node) nid).Net.kind with
           | Net.Tcp_lan | Net.Tcp_longhaul -> Phys_addr.K_tcp
           | Net.Mbx_ring -> Phys_addr.K_mbx)
    |> List.sort_uniq compare
  in
  List.iter
    (fun kind ->
      (* Well-known modules (name server, prime gateways) listen at fixed,
         pre-agreed resources instead of freshly allocated ones. *)
      let fixed_for k =
        List.find_opt (fun p -> Phys_addr.kind p = k) fixed
      in
      let acceptor =
        match kind with
        | Phys_addr.K_tcp ->
          let port =
            match fixed_for Phys_addr.K_tcp with
            | Some (Phys_addr.Tcp { port; _ }) -> Some port
            | Some (Phys_addr.Mbx _) | None -> None
          in
          Std_if.listen_tcp ?port node.Node.ipcs ~machine
        | Phys_addr.K_mbx ->
          let path =
            match fixed_for Phys_addr.K_mbx with
            | Some (Phys_addr.Mbx { path }) -> Some path
            | Some (Phys_addr.Tcp _) | None -> None
          in
          Std_if.listen_mbx ?path node.Node.ipcs ~machine ~hint:owner
      in
      match acceptor with
      | Ok a ->
        t.acceptors <- a :: t.acceptors;
        ignore
          (spawn_helper t
             ~name:(Printf.sprintf "%s/nd-accept-%s" owner (Phys_addr.kind_to_string kind))
             (fun () -> accept_loop t a))
      | Error e ->
        trace t ~cat:"nd.listen_fail" (Ipcs_error.to_string e))
    kinds;
  t

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun a -> a.Std_if.shutdown ()) t.acceptors;
    (* Tear circuits down in peer-address order: the peers observe our
       death in a reproducible sequence. *)
    List.iter
      (fun (_, c) -> if c.c_open then begin c.c_open <- false; c.lvc.Std_if.abort () end)
      (Ntcs_util.sorted_bindings ~compare:Addr.compare t.circuits);
    Hashtbl.reset t.circuits;
    List.iter (fun pid -> Sched.kill (sched t) pid) t.helpers;
    t.helpers <- []
  end

let next_event ?timeout_us t = Sched.Mailbox.recv ?timeout:timeout_us t.inbox

let circuit_count t = Hashtbl.length t.circuits
