(** Typed messaging sugar over the byte-level ComMod interface.

    The §5.1 contract: the application describes each message as a
    contiguous structure and supplies pack/unpack conversion functions; the
    NTCS decides per message whether to byte-copy the native image or apply
    the conversion. Describing the structure once as a
    {!Ntcs_wire.Layout.t} yields both representations (packed via
    Schlegel's generator). *)

open Ntcs_wire

module type MSG = sig
  type t

  val app_tag : int

  val layout : Layout.t
  (** The message structure definition. *)

  val to_values : t -> Layout.value list

  val of_values : Layout.value list -> t
  (** May raise [Invalid_argument]/[Failure] on shape mismatch; surfaced as
      [Bad_message]. *)
end

val payload : (module MSG with type t = 'a) -> Commod.t -> 'a -> Convert.payload
(** Both representations, lazily: the native image for this machine and the
    generated transport format. *)

val decode :
  (module MSG with type t = 'a) -> Commod.t -> Ali_layer.envelope -> ('a, Errors.t) result
(** Trusts the header's mode flag: image data is reinterpreted with the
    receiver's native layout — safe precisely because the NTCS only chose
    image mode when the representations agree. *)

val send :
  (module MSG with type t = 'a) -> Commod.t -> dst:Addr.t -> 'a -> (unit, Errors.t) result

val send_dgram :
  (module MSG with type t = 'a) -> Commod.t -> dst:Addr.t -> 'a -> (unit, Errors.t) result

val call :
  (module MSG with type t = 'a) ->
  (module MSG with type t = 'b) ->
  Commod.t ->
  dst:Addr.t ->
  ?timeout_us:int ->
  'a ->
  ('b, Errors.t) result
(** Synchronous call: send an ['a], decode the reply as a ['b]. *)

val reply :
  (module MSG with type t = 'a) ->
  Commod.t ->
  Ali_layer.envelope ->
  'a ->
  (unit, Errors.t) result
