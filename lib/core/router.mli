(** Route planning for the IP-layer (§4.2): "decentralize the circuit
    routing and establishment, while centralizing the topological
    information in the naming service".

    The topology is the bipartite graph of networks and gateways; gateway
    ComMods register their attachments as naming-service attributes (§4.1).
    Prime gateways and the name server come from the well-known table so the
    naming service itself is reachable before anything has registered. *)

open Ntcs_sim
open Ntcs_ipcs

(** How a ComMod resolves addressing questions: ordinary modules answer
    through the NSP-layer, the Name Server from its own database. *)
type resolver = {
  rv_resolve : Addr.t -> (Ns_proto.entry, Errors.t) result;
  rv_gateways : unit -> (Ns_proto.entry list, Errors.t) result;
  rv_forward : Addr.t -> (Addr.t option, Errors.t) result;
}

(** {1 Gateway registration attributes} *)

val attr_gateway : string
val attr_net : string
val attr_spans : string

type gw_edge = {
  ge_addr : Addr.t;  (** the gateway ComMod's UAdd on the ingress network *)
  ge_phys : Phys_addr.t list;
  ge_in : Net.id;
  ge_spans : Net.id list;
}

val edge_of_wk : Node.well_known -> gw_edge option
val edge_of_entry : Ns_proto.entry -> gw_edge option

val routes :
  edges:gw_edge list -> from_nets:Net.id list -> to_nets:Net.id list -> gw_edge list list
(** All usable routes, one per distinct first-hop gateway ComMod, shortest
    continuation each, shortest overall first — the alternatives are what
    survive a dead first-choice bridge. *)

val locate :
  Node.t -> resolver -> Addr.t -> (Phys_addr.t list * Net.id list, Errors.t) result
(** Destination information: well-known table first (§3.4 bootstrap),
    resolver otherwise. *)

val is_well_known : Node.t -> Addr.t -> bool

val plan :
  Node.t -> Nd_layer.t -> resolver -> dst:Addr.t -> (Ip_layer.target list, Errors.t) result
(** The IP-layer's oracle. Routes to well-known destinations use prime
    edges only: asking the naming service for the gateway list requires a
    route to the naming service — the recursion the well-known table exists
    to break. *)
