(* The naming-service request/response protocol. These messages ride the
   ordinary Nucleus primitives as packed-mode payloads with a reserved
   application tag — "for all practical purposes, the naming service is
   nothing more than an application built on the Nucleus" (§2.4). *)

open Ntcs_wire

(* Application tag reserved for naming-service traffic. *)
let app_tag = 9005

type entry = {
  e_name : string;
  e_addr : Addr.t;
  e_phys : string list; (* physical addresses, uninterpreted strings (§3.2) *)
  e_nets : int list; (* logical network identifiers *)
  e_order : int; (* machine representation tag (Proto.order_to_int) *)
  e_attrs : (string * string) list; (* attribute-based naming (§7) *)
  e_alive : bool;
}

type request =
  | Register of {
      r_name : string;
      r_phys : string list;
      r_nets : int list;
      r_order : int;
      r_attrs : (string * string) list;
    }
  | Lookup of string (* logical name -> UAdd *)
  | Lookup_v of string * int
  (* Versioned, shard-routed lookup (DESIGN.md §15): [name, hops]. A
     non-owner shard forwards it name-to-name to the owner with [hops+1]
     (Internames style); [hops >= 1] means "answer locally" so the chain
     is at most one hop long even if shard maps ever disagreed. Answered
     with [R_addr_v], which piggybacks the owner's invalidation
     generation for the client's cache. *)
  | Lookup_attrs of (string * string) list (* attribute query -> entries *)
  | Resolve of Addr.t (* UAdd -> full entry *)
  | Resolve_v of Addr.t (* versioned resolve, answered with [R_entry_v] *)
  | Forward of Addr.t (* address fault: find replacement (§3.5) *)
  | Deregister of Addr.t
  | List_gateways (* topology: all registered gateway ComMods *)
  | Sync_pull of int (* replication: entries stamped after n *)
  | Sync_push of (int * entry) list (* replication: peer pushes fresh entries *)

type response =
  | R_registered of Addr.t
  | R_addr of Addr.t
  | R_addr_v of Addr.t * int * int
  (* [addr, shard, gen]: the answer plus the answering authority's shard
     index and invalidation generation. [gen = 0] marks an unversioned
     answer (a surviving replica's backup copy while the owner is down):
     cacheable, but it never raises the client's generation floor. *)
  | R_entry of entry
  | R_entry_v of entry * int * int (* [entry, shard, gen] — as [R_addr_v] *)
  | R_entries of entry list
  | R_forward of Addr.t option (* Some = replacement; None = original still alive *)
  | R_ok
  | R_sync of (int * entry) list (* serial-stamped entries *)
  | R_error of string (* Errors.to_string form *)

(* --- codecs --- *)

let addr_codec = Proto.addr_codec

let attrs_codec = Packed.list (Packed.pair Packed.string Packed.string)

let entry_codec =
  Packed.iso
    ~fwd:(fun ((name, addr), ((phys, nets), ((order, attrs), alive))) ->
      { e_name = name; e_addr = addr; e_phys = phys; e_nets = nets; e_order = order;
        e_attrs = attrs; e_alive = alive })
    ~bwd:(fun e ->
      ((e.e_name, e.e_addr), ((e.e_phys, e.e_nets), ((e.e_order, e.e_attrs), e.e_alive))))
    (Packed.pair
       (Packed.pair Packed.string addr_codec)
       (Packed.pair
          (Packed.pair (Packed.list Packed.string) (Packed.list Packed.int))
          (Packed.pair (Packed.pair Packed.int attrs_codec) Packed.bool)))

let register_codec =
  Packed.iso
    ~fwd:(fun ((name, phys), ((nets, order), attrs)) ->
      Register { r_name = name; r_phys = phys; r_nets = nets; r_order = order; r_attrs = attrs })
    ~bwd:(function
      | Register r -> ((r.r_name, r.r_phys), ((r.r_nets, r.r_order), r.r_attrs))
      | _ -> invalid_arg "register_codec")
    (Packed.pair
       (Packed.pair Packed.string (Packed.list Packed.string))
       (Packed.pair (Packed.pair (Packed.list Packed.int) Packed.int) attrs_codec))

let request_codec : request Packed.t =
  Packed.tagged
    [
      ( "reg",
        (function
          | Register _ as r -> Some (fun buf -> register_codec.Packed.pack buf r)
          | _ -> None),
        fun cur -> register_codec.Packed.unpack cur );
      ( "lku",
        (function Lookup n -> Some (fun buf -> Packed.string.Packed.pack buf n) | _ -> None),
        fun cur -> Lookup (Packed.string.Packed.unpack cur) );
      ( "lkv",
        (let codec = Packed.pair Packed.string Packed.int in
         function
         | Lookup_v (n, hops) -> Some (fun buf -> codec.Packed.pack buf (n, hops))
         | _ -> None),
        fun cur ->
          let n, hops = (Packed.pair Packed.string Packed.int).Packed.unpack cur in
          Lookup_v (n, hops) );
      ( "lka",
        (function
          | Lookup_attrs a -> Some (fun buf -> attrs_codec.Packed.pack buf a)
          | _ -> None),
        fun cur -> Lookup_attrs (attrs_codec.Packed.unpack cur) );
      ( "res",
        (function Resolve a -> Some (fun buf -> addr_codec.Packed.pack buf a) | _ -> None),
        fun cur -> Resolve (addr_codec.Packed.unpack cur) );
      ( "rsv",
        (function Resolve_v a -> Some (fun buf -> addr_codec.Packed.pack buf a) | _ -> None),
        fun cur -> Resolve_v (addr_codec.Packed.unpack cur) );
      ( "fwd",
        (function Forward a -> Some (fun buf -> addr_codec.Packed.pack buf a) | _ -> None),
        fun cur -> Forward (addr_codec.Packed.unpack cur) );
      ( "der",
        (function Deregister a -> Some (fun buf -> addr_codec.Packed.pack buf a) | _ -> None),
        fun cur -> Deregister (addr_codec.Packed.unpack cur) );
      ( "gws",
        (function List_gateways -> Some (fun _ -> ()) | _ -> None),
        fun _ -> List_gateways );
      ( "syn",
        (function Sync_pull n -> Some (fun buf -> Packed.int.Packed.pack buf n) | _ -> None),
        fun cur -> Sync_pull (Packed.int.Packed.unpack cur) );
      ( "syp",
        (let codec = Packed.list (Packed.pair Packed.int entry_codec) in
         function
         | Sync_push es -> Some (fun buf -> codec.Packed.pack buf es)
         | _ -> None),
        fun cur -> Sync_push ((Packed.list (Packed.pair Packed.int entry_codec)).Packed.unpack cur) );
    ]

let response_codec : response Packed.t =
  let serial_entry = Packed.pair Packed.int entry_codec in
  Packed.tagged
    [
      ( "rgd",
        (function
          | R_registered a -> Some (fun buf -> addr_codec.Packed.pack buf a)
          | _ -> None),
        fun cur -> R_registered (addr_codec.Packed.unpack cur) );
      ( "adr",
        (function R_addr a -> Some (fun buf -> addr_codec.Packed.pack buf a) | _ -> None),
        fun cur -> R_addr (addr_codec.Packed.unpack cur) );
      ( "adv",
        (let codec = Packed.pair (Packed.pair addr_codec Packed.int) Packed.int in
         function
         | R_addr_v (a, shard, gen) ->
           Some (fun buf -> codec.Packed.pack buf ((a, shard), gen))
         | _ -> None),
        fun cur ->
          let (a, shard), gen =
            (Packed.pair (Packed.pair addr_codec Packed.int) Packed.int).Packed.unpack cur
          in
          R_addr_v (a, shard, gen) );
      ( "ent",
        (function R_entry e -> Some (fun buf -> entry_codec.Packed.pack buf e) | _ -> None),
        fun cur -> R_entry (entry_codec.Packed.unpack cur) );
      ( "env",
        (let codec = Packed.pair (Packed.pair entry_codec Packed.int) Packed.int in
         function
         | R_entry_v (e, shard, gen) ->
           Some (fun buf -> codec.Packed.pack buf ((e, shard), gen))
         | _ -> None),
        fun cur ->
          let (e, shard), gen =
            (Packed.pair (Packed.pair entry_codec Packed.int) Packed.int).Packed.unpack cur
          in
          R_entry_v (e, shard, gen) );
      ( "ens",
        (function
          | R_entries es -> Some (fun buf -> (Packed.list entry_codec).Packed.pack buf es)
          | _ -> None),
        fun cur -> R_entries ((Packed.list entry_codec).Packed.unpack cur) );
      ( "fwr",
        (function
          | R_forward a -> Some (fun buf -> (Packed.option addr_codec).Packed.pack buf a)
          | _ -> None),
        fun cur -> R_forward ((Packed.option addr_codec).Packed.unpack cur) );
      ("ok_", (function R_ok -> Some (fun _ -> ()) | _ -> None), fun _ -> R_ok);
      ( "snc",
        (function
          | R_sync es -> Some (fun buf -> (Packed.list serial_entry).Packed.pack buf es)
          | _ -> None),
        fun cur -> R_sync ((Packed.list serial_entry).Packed.unpack cur) );
      ( "err",
        (function R_error m -> Some (fun buf -> Packed.string.Packed.pack buf m) | _ -> None),
        fun cur -> R_error (Packed.string.Packed.unpack cur) );
    ]

let pack_request r = Packed.run_pack request_codec r
let unpack_request b = Packed.run_unpack_result request_codec b
let pack_response r = Packed.run_pack response_codec r
let unpack_response b = Packed.run_unpack_result response_codec b
