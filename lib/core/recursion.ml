(* Recursion accounting (§6). Every entry into a ComMod primitive passes
   through a tracker; nested entries (the naming service calling back into
   the Nucleus, the monitor timestamping its own sends, ...) raise the depth.
   The tracker doubles as the simulated stack bound for the §6.3 experiment:
   with the LCM guard disabled, the name-server fault loop recurses until
   [Stack_overflow_sim] — the simulation's rendition of "until the stack
   overflows". *)

exception Stack_overflow_sim

type t = {
  limit : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable entries : int;
  mutable recursive_entries : int; (* entries made while already inside *)
}

let create ?(limit = 64) () =
  { limit; depth = 0; max_depth = 0; entries = 0; recursive_entries = 0 }

let enter t =
  if t.depth >= t.limit then raise Stack_overflow_sim;
  if t.depth > 0 then t.recursive_entries <- t.recursive_entries + 1;
  t.depth <- t.depth + 1;
  t.entries <- t.entries + 1;
  if t.depth > t.max_depth then t.max_depth <- t.depth

let leave t = t.depth <- t.depth - 1

let with_entry t f =
  enter t;
  Fun.protect ~finally:(fun () -> leave t) f

let depth t = t.depth
let max_depth t = t.max_depth
let entries t = t.entries
let recursive_entries t = t.recursive_entries

let reset_counts t =
  t.max_depth <- t.depth;
  t.entries <- 0;
  t.recursive_entries <- 0
