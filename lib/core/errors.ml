(* NTCS error vocabulary, as surfaced at the application interface. The
   ALI-layer "tailors the error returns" (§2.4): lower layers produce the
   mechanical variants; the veneer maps them onto what an application can act
   on. *)

type t =
  | Unknown_name (* naming service has no such logical name *)
  | Unknown_address (* UAdd cannot be resolved to a physical address *)
  | Destination_dead (* module gone and no replacement located (§3.5) *)
  | Circuit_failed (* virtual circuit broke and could not be reestablished *)
  | Unreachable (* no route, even through gateways *)
  | Timeout
  | Name_service_unavailable
  | Message_too_large
  | Bad_message of string (* malformed wire data *)
  | Not_registered (* primitive requires a completed registration *)
  | Internal of string

let to_string = function
  | Unknown_name -> "unknown-name"
  | Unknown_address -> "unknown-address"
  | Destination_dead -> "destination-dead"
  | Circuit_failed -> "circuit-failed"
  | Unreachable -> "unreachable"
  | Timeout -> "timeout"
  | Name_service_unavailable -> "name-service-unavailable"
  | Message_too_large -> "message-too-large"
  | Bad_message m -> "bad-message: " ^ m
  | Not_registered -> "not-registered"
  | Internal m -> "internal: " ^ m

let pp ppf e = Fmt.string ppf (to_string e)

let equal (a : t) b = a = b

(* Severity classification, consumed by the LCM/NSP retry policy and exposed
   through the ALI so applications can make the same call we do:

   - [Transient]: the condition may clear on its own (a circuit broke, a
     timeout elapsed, the name service was briefly unreachable). Retrying —
     with backoff — is reasonable.
   - [Permanent]: the destination itself is the problem (no such name, no
     such address, module gone with no replacement, message cannot fit).
     Retrying the same operation cannot succeed.
   - [Fatal]: the caller (or this implementation) is wrong; retrying would
     repeat the mistake. *)
type severity = Transient | Permanent | Fatal

let severity = function
  | Timeout | Circuit_failed | Unreachable | Name_service_unavailable -> Transient
  | Unknown_name | Unknown_address | Destination_dead | Message_too_large -> Permanent
  | Bad_message _ | Not_registered | Internal _ -> Fatal

let severity_to_string = function
  | Transient -> "transient"
  | Permanent -> "permanent"
  | Fatal -> "fatal"

let retryable e = severity e = Transient

(* Map a native IPCS error into the NTCS vocabulary. *)
let of_ipcs (e : Ntcs_ipcs.Ipcs_error.t) =
  match e with
  | Ntcs_ipcs.Ipcs_error.Refused -> Circuit_failed
  | Ntcs_ipcs.Ipcs_error.Unreachable -> Unreachable
  | Ntcs_ipcs.Ipcs_error.Closed -> Circuit_failed
  | Ntcs_ipcs.Ipcs_error.Timeout -> Timeout
  | Ntcs_ipcs.Ipcs_error.Queue_full -> Circuit_failed
  | Ntcs_ipcs.Ipcs_error.No_such_host -> Unknown_address
  | Ntcs_ipcs.Ipcs_error.Already_bound -> Internal "address already bound"
  | Ntcs_ipcs.Ipcs_error.Too_big -> Message_too_large

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e
