(** The Application Level Interface layer (§2.4): "It simply provides the
    application interface primitives from the Nucleus and NSP-Layer
    services, tailors the error returns, and performs parameter checking.
    It may be better described as a thin veneer."

    The three primitive classes of §1.3: basic communication, resource
    location, utilities. *)

open Ntcs_wire

type envelope = Std_if.envelope = {
  src : Addr.t;  (** who sent it (reply here) *)
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Convert.mode;  (** how the payload was rendered (image/packed) *)
  src_order : Endian.order;
  data : Bytes.t;
  conv : int;  (** nonzero: the sender awaits a reply *)
  seq : int;  (** sender's LCM sequence number *)
  span : Ntcs_obs.Span.ctx;
      (** causal identity of the logical send that produced this message *)
}
(** Re-export of the one shared envelope record — see {!Std_if.envelope}.
    What {!receive} returns is exactly what {!reply} consumes. *)

val expects_reply : envelope -> bool
(** [true] when the sender is blocked in a synchronous send awaiting a
    {!reply} (i.e. [env.conv <> 0]). *)

val max_app_tag : int
(** Application tags above this are reserved for internal services. *)

(** {1 Resource location primitives} *)

val locate : Commod.t -> string -> (Addr.t, Errors.t) result
(** Logical name → address. Needed once per name: relocation is transparent
    afterwards (§1.3). *)

val locate_attrs : Commod.t -> (string * string) list -> (Addr.t list, Errors.t) result
(** Attribute-based location: addresses of all matching live modules. *)

val locate_entry : Commod.t -> Addr.t -> (Ns_proto.entry, Errors.t) result

(** {1 Basic communication primitives}

    Every primitive takes the same two optional parameters: [?app_tag]
    (default 0) typing the message for tag-filtered receives, and
    [?timeout_us] (default [Node.config.default_timeout_us] — documented
    there, once) bounding the whole operation, retry backoff included. *)

val send :
  Commod.t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result
(** Asynchronous send. *)

val send_sync :
  Commod.t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (envelope, Errors.t) result
(** Synchronous send/receive/reply. *)

val send_dgram :
  Commod.t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result
(** Connectionless (no recovery). *)

val receive : ?timeout_us:int -> ?app_tag:int -> Commod.t -> (envelope, Errors.t) result
(** Next message for this module; with [app_tag], only messages of that
    type (others are held for later receives). *)

val reply :
  Commod.t ->
  envelope ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result
(** Answer a synchronous send. Error when the sender expects no reply. *)

val retryable : Errors.t -> bool
(** The classification the LCM/NSP recovery machinery consults —
    applications retrying a failed primitive themselves should use it
    too. *)

val severity : Errors.t -> Errors.severity

(** {1 Utilities} *)

val my_address : Commod.t -> (Addr.t, Errors.t) result
(** [Error Not_registered] until registration has completed. *)

val recursion_stats : Commod.t -> int * int * int
(** [(entries, recursive_entries, max_depth)] — the §6.1 measures. *)

val stats : Commod.t -> Lcm_layer.stats
(** Per-module communication counters (sends, receives, sync calls,
    address faults, forwarding entries). *)
