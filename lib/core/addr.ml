(* The NTCS internal address space (§2.3, §3.4).

   UAdds are flat, network- and location-independent unique addresses,
   assigned by the naming service (a counter, plus a name-server identifier
   so that replicated name servers never collide). TAdds are identical in
   form but only locally unique to the module that assigned them; they exist
   so the internal protocols work before the naming service has assigned a
   real UAdd, and they are purged from all tables within the first
   communications with the name server. *)

type space =
  | Unique of int (* name-server id that assigned it *)
  | Temporary of int (* assigner tag: locally unique only *)

type t = { space : space; value : int }

let unique ~server_id ~value =
  if server_id < 0 || server_id > 0x3FFFFFFF then invalid_arg "Addr.unique: bad server id";
  { space = Unique server_id; value }

let temporary ~assigner ~value =
  if assigner < 0 || assigner > 0x3FFFFFFF then invalid_arg "Addr.temporary: bad assigner";
  { space = Temporary assigner; value }

let is_temporary t = match t.space with Temporary _ -> true | Unique _ -> false
let is_unique t = not (is_temporary t)

let equal a b = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

let to_string t =
  match t.space with
  | Unique sid -> Printf.sprintf "U%d.%d" sid t.value
  | Temporary a -> Printf.sprintf "T%d.%d" a t.value

let pp ppf t = Fmt.string ppf (to_string t)

(* Two shift-mode words: word0 = temp flag (1 bit) | space tag (31 bits),
   word1 = value. UAdds must therefore keep their counters within 32 bits,
   which a simulation never exhausts. *)
let to_words t =
  let w0 =
    match t.space with
    | Unique sid -> sid land 0x7FFFFFFF
    | Temporary a -> 0x80000000 lor (a land 0x7FFFFFFF)
  in
  [| w0; t.value land 0xFFFFFFFF |]

let of_words w0 w1 =
  let space =
    if w0 land 0x80000000 <> 0 then Temporary (w0 land 0x7FFFFFFF)
    else Unique (w0 land 0x7FFFFFFF)
  in
  { space; value = w1 }

(* A per-module generator of TAdds: the module assigns itself one at start,
   and each Nucleus layer assigns its own TAdd to each incoming connection
   from a TAdd source (§3.4). *)
module Tadd_gen = struct
  type gen = { assigner : int; mutable next : int }

  let create ~assigner = { assigner; next = 1 }

  let fresh g =
    let v = g.next in
    g.next <- v + 1;
    temporary ~assigner:g.assigner ~value:v
end
