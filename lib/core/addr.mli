(** The NTCS internal address space (§2.3, §3.4).

    UAdds are flat, network- and location-independent unique addresses
    assigned by the naming service (a counter, plus a name-server identifier
    so replicated name servers never collide). TAdds are identical in form
    but only locally unique to the module that assigned them: they exist so
    the internal protocols work before the naming service has assigned a
    real UAdd, and they are purged from all tables within the first
    communications with the name server. *)

type space =
  | Unique of int  (** the name-server id that assigned it *)
  | Temporary of int  (** the assigner's tag: locally unique only *)

type t = { space : space; value : int }

val unique : server_id:int -> value:int -> t
(** Raises [Invalid_argument] when [server_id] exceeds 30 bits. *)

val temporary : assigner:int -> value:int -> t

val is_temporary : t -> bool
val is_unique : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** ["U<server>.<value>"] or ["T<assigner>.<value>"]. *)

val pp : Format.formatter -> t -> unit

val to_words : t -> int array
(** Two shift-mode words: flag/space and value. *)

val of_words : int -> int -> t

(** Per-module generator of TAdds: a module assigns itself one at start, and
    each Nucleus layer assigns its own TAdd to each incoming connection from
    a TAdd source (§3.4). *)
module Tadd_gen : sig
  type gen

  val create : assigner:int -> gen
  val fresh : gen -> t
end
