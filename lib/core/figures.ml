(* The paper's figures (2-1 ... 2-4), regenerated. They are architecture
   diagrams, so the faithful reproduction is to print the layering annotated
   with the modules that actually implement it. Kept textually close to the
   originals; used by bin/architecture.exe and the experiment harness. *)

let fig_2_1 () =
  print_string
    {|
Figure 2-1: The Application's View of the NTCS
(modules: Commod / Ali_layer — lib/core/commod.ml, ali_layer.ml)

    +--------------------------+      +--------------------------+
    |   Application Process    |      |   Application Process    |
    |  +--------------------+  |      |  +--------------------+  |
    |  |       ComMod       |  |      |  |       ComMod       |  |
    |  +--------------------+  |      |  +--------------------+  |
    +------------|-------------+      +-------------|------------+
                 |                                  |
    =============+========== the NTCS ==============+=============
                 |                                  |
         (native IPCS: TCP)                 (native IPCS: MBX)
|}

let fig_2_2 () =
  print_string
    {|
Figure 2-2: The Nucleus Internal Layering
(modules: Lcm_layer, Ip_layer + Gateway, Nd_layer, Std_if)

    +---------------------------------------------------+
    |  LCM-Layer   logical connection maintenance       |   lcm_layer.ml
    |              relocation, forwarding, dgram        |
    +---------------------------------------------------+
    |  IP-Layer    internet virtual circuits (IVCs)     |   ip_layer.ml
    |              chained LVCs via Gateway modules     |   gateway.ml
    +---------------------------------------------------+
    |  ND-Layer    network dependent; STD-IF            |   nd_layer.ml
    |              local virtual circuits (LVCs)        |   std_if.ml
    +---------------------------------------------------+
    |  native IPCS:   Unix TCP      |   Apollo MBX      |   ipcs_tcp.ml
    |                 (streams)     |   (mailboxes)     |   ipcs_mbx.ml
    +---------------------------------------------------+

  A Gateway binds one ComMod per network; chained circuits are spliced
  by label inside the gateway, so only the ND-Layer is network dependent.
|}

let fig_2_3 () =
  print_string
    {|
Figure 2-3: The Naming Service Protocol (NSP) Layer
(modules: Nsp_layer, Name_server)

      ComMod                                   Name Server module
    +-------------+                          +--------------------+
    |  ALI-Layer  |                          |  name/address DB   |
    +-------------+     NS requests ride     |  (name_server.ml)  |
    |  NSP-Layer  | ---- the Nucleus as ---> +--------------------+
    +-------------+     ordinary messages    |      ComMod        |
    |   Nucleus   | <----------------------- |      Nucleus       |
    +-------------+    (recursion: the       +--------------------+
                        service the Nucleus
                        itself consumes)

  The NSP-Layer fully isolates the ComMod from the naming service
  implementation: centralized, replicated (E10) or attribute-based —
  nothing above it changes.
|}

let fig_2_4 () =
  print_string
    {|
Figure 2-4: The ComMod Internal Layering
(modules: Ali_layer, Nsp_layer, then the Nucleus of Fig. 2-2)

    +---------------------------------------------------+
    |  ALI-Layer   application interface primitives     |   ali_layer.ml
    |              parameter checks, tailored errors    |
    +---------------------------------------------------+
    |  NSP-Layer   naming service access point          |   nsp_layer.ml
    +---------------------------------------------------+
    |  Nucleus     LCM / IP / ND (Figure 2-2)           |
    +---------------------------------------------------+
|}

let all () =
  fig_2_1 ();
  fig_2_2 ();
  fig_2_3 ();
  fig_2_4 ()
