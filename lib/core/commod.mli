(** The communication module (§2.1): "Each application process must bind
    with a passive communication module (ComMod), which is the only aspect
    of the NTCS visible to the application. To the application, the ComMod
    is the NTCS."

    {!bind} assembles the layers bottom-up (ND → IP → LCM → NSP), wires the
    recursive couplings (the routing and fault oracles go through the
    NSP-layer, which itself sends through the LCM-layer), preloads the
    well-known address tables (§3.4), registers the module's name and
    upgrades the self-assigned TAdd to the returned UAdd.

    The Name Server binds with {!bind_with_resolver}, supplying a resolver
    backed by its own database: the naming service is an application on the
    Nucleus, used by the Nucleus. *)

open Ntcs_sim

type t

(** {1 Construction} *)

val bind :
  ?attrs:(string * string) list ->
  ?allowed_nets:Net.id list ->
  ?fixed:Ntcs_ipcs.Phys_addr.t list ->
  ?register_name:bool ->
  Node.t ->
  name:string ->
  (t, Errors.t) result
(** Assemble and (unless [register_name:false]) register. Must run inside
    the owning process; module death automatically aborts its circuits. *)

val bind_with_resolver :
  ?allowed_nets:Net.id list ->
  ?fixed:Ntcs_ipcs.Phys_addr.t list ->
  Node.t ->
  name:string ->
  resolver:Router.resolver ->
  t

val register : t -> attrs:(string * string) list -> (Addr.t, Errors.t) result
(** The §3.2 registration step, for ComMods bound without it. *)

val close : t -> unit
(** Deregister (when registered) and shut the layer stack down. *)

(** {1 Accessors} *)

val node : t -> Node.t
val nd : t -> Nd_layer.t
val ip : t -> Ip_layer.t
val lcm : t -> Lcm_layer.t
val name : t -> string
val resolver : t -> Router.resolver

val nsp_exn : t -> Nsp_layer.t
(** Raises [Invalid_argument] on a resolver-bound ComMod (the name
    server's). *)

val my_addr : t -> Addr.t
(** Current self-address: a TAdd before registration, the UAdd after. *)

val is_registered : t -> bool

val resolver_of_nsp : Nsp_layer.t -> Router.resolver
