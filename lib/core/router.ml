(* Route planning for the IP-layer (§4.2).

   "Our solution combines ideas from both centralized and decentralized
   internet schemes. The compromise was to decentralize the circuit routing
   and establishment, while centralizing the topological information in the
   naming service."

   The topology is the bipartite graph of networks and gateways; gateway
   ComMods register themselves with the naming service like any application
   module, carrying their network attachments as attributes ("while Gateways
   exist below, and *support* the naming service, their logical name and
   connected networks are *registered with* the naming service", §4.1).
   Prime gateways and the name server come from the well-known table so the
   naming service itself can be reached before any registration exists. *)

open Ntcs_sim
open Ntcs_ipcs

(* How the ComMod resolves addressing questions. Ordinary modules answer
   through the NSP-layer; the Name Server answers from its own database
   (it can hardly ask itself over the network). *)
type resolver = {
  rv_resolve : Addr.t -> (Ns_proto.entry, Errors.t) result;
  rv_gateways : unit -> (Ns_proto.entry list, Errors.t) result;
  rv_forward : Addr.t -> (Addr.t option, Errors.t) result;
}

(* Attribute keys under which gateway ComMods register. *)
let attr_gateway = "gateway"
let attr_net = "net" (* the network this ComMod serves *)
let attr_spans = "spans" (* every network the whole gateway bridges, csv *)

let parse_csv_ints s =
  String.split_on_char ',' s
  |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

type gw_edge = {
  ge_addr : Addr.t; (* the gateway ComMod's UAdd on the ingress network *)
  ge_phys : Phys_addr.t list;
  ge_in : Net.id;
  ge_spans : Net.id list;
}

let edge_of_wk (wk : Node.well_known) =
  match wk.Node.wk_nets with
  | [] -> None
  | ingress :: _ ->
    Some
      {
        ge_addr = wk.Node.wk_addr;
        ge_phys = wk.Node.wk_phys;
        ge_in = ingress;
        ge_spans = wk.Node.wk_all_nets;
      }

let edge_of_entry (e : Ns_proto.entry) =
  match
    ( List.assoc_opt attr_net e.Ns_proto.e_attrs,
      List.assoc_opt attr_spans e.Ns_proto.e_attrs )
  with
  | Some net_s, Some spans_s -> (
    match int_of_string_opt net_s with
    | None -> None
    | Some ingress ->
      Some
        {
          ge_addr = e.Ns_proto.e_addr;
          ge_phys = List.filter_map Phys_addr.of_string e.Ns_proto.e_phys;
          ge_in = ingress;
          ge_spans = parse_csv_ints spans_s;
        })
  | _ -> None

(* Breadth-first search over networks. Returns the gateway hops (ingress
   ComMod UAdds) to get from any of [from_nets] to any of [to_nets]. *)
let bfs ?(seed_visited = []) ?(seed_paths = []) ~edges ~from_nets ~to_nets () =
  let module S = Set.Make (Int) in
  let targets = S.of_list to_nets in
  let visited = ref (S.of_list (from_nets @ seed_visited)) in
  let q = Queue.create () in
  List.iter (fun n -> Queue.push (n, []) q) from_nets;
  List.iter (fun (n, path) -> Queue.push (n, path) q) seed_paths;
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let net, path = Queue.pop q in
       if S.mem net targets then begin
         result := Some (List.rev path);
         raise Exit
       end;
       List.iter
         (fun e ->
           if e.ge_in = net then
             List.iter
               (fun next ->
                 if next <> net && not (S.mem next !visited) then begin
                   visited := S.add next !visited;
                   Queue.push (next, e :: path) q
                 end)
               e.ge_spans)
         edges
     done
   with Exit -> ());
  !result

(* All usable routes, one per distinct first-hop gateway ComMod, shortest
   continuation each, shortest overall first. Alternatives matter for
   resilience: a dead first-choice gateway must not strand the module when a
   parallel bridge exists. *)
let routes ~edges ~from_nets ~to_nets =
  let firsts = List.filter (fun e -> List.mem e.ge_in from_nets) edges in
  let candidate (first : gw_edge) =
    if List.exists (fun n -> List.mem n to_nets) first.ge_spans then Some [ first ]
    else begin
      let entry_nets = List.filter (fun n -> n <> first.ge_in) first.ge_spans in
      match
        bfs
          ~seed_visited:(first.ge_in :: from_nets)
          ~seed_paths:(List.map (fun n -> (n, [ first ])) entry_nets)
          ~edges ~from_nets:[] ~to_nets ()
      with
      | Some path -> Some path
      | None -> None
    end
  in
  List.filter_map candidate firsts
  |> List.sort_uniq (fun a b ->
         match compare (List.length a) (List.length b) with
         | 0 -> compare (List.map (fun e -> e.ge_addr) a) (List.map (fun e -> e.ge_addr) b)
         | c -> c)

(* Information about a destination: from the well-known table first (the
   §3.4 bootstrap), from the resolver otherwise. *)
let locate node resolver dst =
  match
    List.find_opt (fun wk -> Addr.equal wk.Node.wk_addr dst) node.Node.config.Node.well_known
  with
  | Some wk -> Ok (wk.Node.wk_phys, wk.Node.wk_nets)
  | None -> (
    match resolver.rv_resolve dst with
    | Ok entry ->
      Ok (List.filter_map Phys_addr.of_string entry.Ns_proto.e_phys, entry.Ns_proto.e_nets)
    | Error _ as e -> e)

let is_well_known node dst =
  List.exists (fun wk -> Addr.equal wk.Node.wk_addr dst) node.Node.config.Node.well_known

let plan node (nd : Nd_layer.t) resolver ~dst =
  let my_nets =
    match nd.Nd_layer.allowed_nets with
    | Some nets -> nets
    | None -> Node.my_nets node
  in
  (* §3.3: "The ND-Layer maps from UAdd to physical address, either through
     the NSP-layer services, or by information exchanged between modules
     during the channel open protocol. This information is then locally
     cached." A cached physical address gives a direct attempt that needs no
     naming service at all; it is tried first and falls through to planned
     routes if stale. *)
  let nd_cached =
    match Nd_layer.lookup_phys nd dst with
    | Some phys when phys <> [] -> [ Ip_layer.T_direct phys ]
    | Some _ | None -> []
  in
  match locate node resolver dst with
  | Error _ when nd_cached <> [] -> Ok nd_cached
  | Error _ as e -> e
  | Ok (phys, dst_nets) ->
    let local = List.exists (fun n -> List.mem n my_nets) dst_nets in
    if local && phys <> [] then Ok (nd_cached @ [ Ip_layer.T_direct phys ])
    else begin
      (* Internetting: assemble topology from prime gateways + registered
         gateways and search. Routes to well-known destinations (the name
         server, prime gateways) must use prime edges ONLY: asking the
         naming service for the gateway list requires a route to the naming
         service — the very recursion the well-known table exists to break
         (§3.4). *)
      let prime_edges =
        List.filter_map
          (fun wk -> if wk.Node.wk_is_gateway then edge_of_wk wk else None)
          node.Node.config.Node.well_known
      in
      let registered_edges =
        if is_well_known node dst then []
        else begin
          match resolver.rv_gateways () with
          | Ok entries -> List.filter_map edge_of_entry entries
          | Error _ -> []
        end
      in
      (* Prefer registered (fresher) edges but keep primes for bootstrap.
         Drop duplicate edges (a prime gateway may also have registered). *)
      let edges =
        registered_edges @ prime_edges
        |> List.sort_uniq (fun a b -> Addr.compare a.ge_addr b.ge_addr)
      in
      match routes ~edges ~from_nets:my_nets ~to_nets:dst_nets with
      | [] -> if nd_cached <> [] then Ok nd_cached else Error Errors.Unreachable
      | paths ->
        Ok
          (nd_cached
          @ List.filter_map
              (fun path ->
                match path with
                | [] -> None
                | first :: _ ->
                  Some
                    (Ip_layer.T_via
                       { hops = List.map (fun e -> e.ge_addr) path;
                         first_phys = first.ge_phys }))
              paths)
    end
