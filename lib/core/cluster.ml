(* Deployment builder: turns a declarative description of machines, networks
   and infrastructure modules into a running simulated NTCS installation —
   name server(s) up, prime gateways bridging networks, and a shared node
   configuration whose well-known table (§3.4) lets every later module
   bootstrap. This is the "hypothetical machine configuration" of the
   paper's figures, as a library. *)

open Ntcs_sim
open Ntcs_ipcs

type t = {
  world : World.t;
  ipcs : Registry.t;
  mutable config : Node.config;
  nets_by_name : (string, Net.t) Hashtbl.t;
  machines_by_name : (string, Machine.t) Hashtbl.t;
  mutable name_servers : Name_server.t list;
  mutable gateways : Gateway.t list;
  mutable ns_pids : Sched.pid list;
  mutable gw_pids : Sched.pid list;
}

let world t = t.world
let config t = t.config
let metrics t = World.metrics t.world
let sched t = World.sched t.world

let net t name =
  match Hashtbl.find_opt t.nets_by_name name with
  | Some n -> n
  | None -> invalid_arg ("Cluster: unknown network " ^ name)

let machine t name =
  match Hashtbl.find_opt t.machines_by_name name with
  | Some m -> m
  | None -> invalid_arg ("Cluster: unknown machine " ^ name)

let net_id t name = (net t name).Net.id

(* Fixed resources for well-known module number [idx] on [machine]: one per
   IPCS kind the machine can speak. Ports/paths are pre-agreed constants —
   the operational reality behind "well known addresses". *)
let well_known_phys t (m : Machine.t) ~idx =
  let kinds =
    World.nets_of_machine t.world m.Machine.id
    |> List.map (fun nid ->
           match (World.net t.world nid).Net.kind with
           | Net.Tcp_lan | Net.Tcp_longhaul -> Phys_addr.K_tcp
           | Net.Mbx_ring -> Phys_addr.K_mbx)
    |> List.sort_uniq compare
  in
  List.map
    (fun kind ->
      match kind with
      | Phys_addr.K_tcp -> Phys_addr.tcp ~host:m.Machine.name ~port:(4000 + idx)
      | Phys_addr.K_mbx ->
        Phys_addr.mbx ~path:(Printf.sprintf "//%s/node_data/mbx/wk.%d" m.Machine.name idx))
    kinds

(* Fixed resource for one gateway ComMod: distinct per (gateway, network) —
   a gateway's ComMods each need their own listening resource even when two
   of its networks share an IPCS kind. *)
let gateway_phys t (m : Machine.t) ~idx ~net:nid =
  let net = World.net t.world nid in
  match net.Net.kind with
  | Net.Tcp_lan | Net.Tcp_longhaul ->
    [ Phys_addr.tcp ~host:m.Machine.name ~port:(4500 + (idx * 10) + nid) ]
  | Net.Mbx_ring ->
    [ Phys_addr.mbx
        ~path:(Printf.sprintf "//%s/node_data/mbx/gw.%d.net%d" m.Machine.name idx nid) ]

type gateway_spec = {
  gw_spec_name : string;
  gw_machine : string;
  gw_nets : string list;
}

let build ?world ?seed ?config ?(tweak = fun c -> c) ~nets ~machines ?(clocks = [])
    ?(gateways = []) ~ns ?(ns_replicas = []) () =
  (* [world] hosts the cluster on an existing world — a [World.Par] shard,
     typically — and then [config]/[seed] are ignored. Otherwise [config]
     is the full world configuration and wins; bare [?seed] is the
     shorthand for a default-mode world on that seed. *)
  let wconfig =
    match (config, seed) with
    | Some c, _ -> c
    | None, Some seed -> { World.Config.default with World.Config.seed }
    | None, None -> World.Config.default
  in
  let world =
    match world with Some w -> w | None -> World.create ~config:wconfig ()
  in
  let ipcs = Registry.create world in
  let t =
    {
      world;
      ipcs;
      config = Node.default_config;
      nets_by_name = Hashtbl.create 8;
      machines_by_name = Hashtbl.create 16;
      name_servers = [];
      gateways = [];
      ns_pids = [];
      gw_pids = [];
    }
  in
  List.iter
    (fun (name, kind) ->
      Hashtbl.replace t.nets_by_name name (World.add_net world ~name kind ()))
    nets;
  List.iter
    (fun (name, mtype, net_names) ->
      let drift_ppm, offset_us =
        match List.find_opt (fun (n, _, _) -> n = name) clocks with
        | Some (_, d, o) -> (d, o)
        | None -> (0., 0)
      in
      let m = World.add_machine world ~name mtype ~drift_ppm ~offset_us () in
      Hashtbl.replace t.machines_by_name name m;
      List.iter (fun nn -> World.attach world m (net t nn)) net_names)
    machines;
  (* Well-known table: name servers first, then prime gateways.

     The world's naming arm decides the shape of the naming plane: with
     [naming.shards > 1] the plane runs that many name servers — hosted
     round-robin over the given ns machines — under a pinned shard map
     where server [k] owns shard [k] (DESIGN.md §15). *)
  let naming = (World.config world).World.Config.naming in
  let ns_machines =
    let given = ns :: ns_replicas in
    let n = List.length given in
    if naming.World.Config.shards <= n then given
    else
      List.init naming.World.Config.shards (fun i -> List.nth given (i mod n))
  in
  let ns_entries =
    List.mapi
      (fun i mname ->
        let m = machine t mname in
        let addr = Addr.unique ~server_id:i ~value:0 in
        let phys = well_known_phys t m ~idx:i in
        let nets = World.nets_of_machine world m.Machine.id in
        ( i, m, addr, phys,
          {
            Node.wk_name = Printf.sprintf "name-server/%d" i;
            wk_addr = addr;
            wk_phys = phys;
            wk_nets = nets;
            wk_all_nets = nets;
            wk_is_name_server = true;
            wk_is_gateway = false;
          } ))
      ns_machines
  in
  let gw_specs =
    List.mapi
      (fun j (gname, gmachine, gnets) ->
        (j, { gw_spec_name = gname; gw_machine = gmachine; gw_nets = gnets }))
      gateways
  in
  let gw_entries =
    List.concat_map
      (fun (j, spec) ->
        let m = machine t spec.gw_machine in
        let all_net_ids = List.map (net_id t) spec.gw_nets in
        List.map
          (fun nname ->
            let nid = net_id t nname in
            let addr = Addr.unique ~server_id:(900 + j) ~value:nid in
            {
              Node.wk_name = Printf.sprintf "prime-gw/%s@%d" spec.gw_spec_name nid;
              wk_addr = addr;
              wk_phys = gateway_phys t m ~idx:j ~net:nid;
              wk_nets = [ nid ];
              wk_all_nets = all_net_ids;
              wk_is_name_server = false;
              wk_is_gateway = true;
            })
          spec.gw_nets)
      gw_specs
  in
  let well_known = List.map (fun (_, _, _, _, wk) -> wk) ns_entries @ gw_entries in
  let all_ns_addrs = List.map (fun (_, _, addr, _, _) -> addr) ns_entries in
  (* The pinned shard map every ComMod and every server agrees on: entry
     [k] is the well-known address of the server owning shard [k]. *)
  let ns_shards =
    if naming.World.Config.shards > 1 then Array.of_list all_ns_addrs else [||]
  in
  let shard_map =
    if naming.World.Config.shards > 1 then
      Some (Ntcs_naming.Shard_map.make ~version:1 (Array.of_list all_ns_addrs))
    else None
  in
  t.config <-
    tweak
      {
        Node.default_config with
        Node.well_known;
        ns_shards;
        ns_cache_capacity = naming.World.Config.cache_capacity;
      };
  (* Spawn name servers. *)
  List.iter
    (fun (i, m, addr, phys, _) ->
      let node = Node.make ~config:t.config ~world ~ipcs ~machine:m () in
      let server =
        Name_server.create node ~server_id:i ~wk_addr:addr
          ~peers:(List.filter (fun a -> not (Addr.equal a addr)) all_ns_addrs)
          ?shard_map ()
      in
      t.name_servers <- t.name_servers @ [ server ];
      let pid =
        World.spawn world ~machine:m ~name:(Printf.sprintf "name-server/%d" i)
          (Name_server.serve ~fixed:phys server)
      in
      t.ns_pids <- t.ns_pids @ [ pid ])
    ns_entries;
  (* Spawn prime gateways. *)
  List.iter
    (fun (j, spec) ->
      let m = machine t spec.gw_machine in
      let node = Node.make ~config:t.config ~world ~ipcs ~machine:m () in
      let net_ids = List.map (net_id t) spec.gw_nets in
      let prime_addrs =
        List.map (fun nid -> (nid, Addr.unique ~server_id:(900 + j) ~value:nid)) net_ids
      in
      let prime_phys = List.map (fun nid -> (nid, gateway_phys t m ~idx:j ~net:nid)) net_ids in
      let gw = Gateway.create node ~name:spec.gw_spec_name ~nets:net_ids ~prime_addrs
                 ~prime_phys () in
      t.gateways <- t.gateways @ [ gw ];
      let pid =
        World.spawn world ~machine:m ~name:("gw/" ^ spec.gw_spec_name) (Gateway.serve gw)
      in
      t.gw_pids <- t.gw_pids @ [ pid ])
    gw_specs;
  t

(* Fresh per-process NTCS context on a machine. *)
let node_on ?config t machine_name =
  let config = match config with Some c -> c | None -> t.config in
  Node.make ~config ~world:t.world ~ipcs:t.ipcs ~machine:(machine t machine_name) ()

(* Spawn an application process; the body receives a fresh Node. *)
let spawn ?config t ~machine:machine_name ~name f =
  let node = node_on ?config t machine_name in
  World.spawn t.world ~machine:(machine t machine_name) ~name (fun () -> f node)

let run ?until t = World.run ?until t.world

(* Advance virtual time by [dt] microseconds, executing everything due. *)
let settle ?(dt = 2_000_000) t = World.run ~until:(World.now t.world + dt) t.world

let name_servers t = t.name_servers
let primary_ns t = List.nth t.name_servers 0
let gateway_list t = t.gateways

let crash t machine_name = World.crash_machine t.world (machine t machine_name)
let partition t net_name = (net t net_name).Net.up <- false
let heal t net_name = (net t net_name).Net.up <- true
