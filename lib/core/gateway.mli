(** The Gateway module (§4): one portable piece of code bridging any set of
    networks.

    "The same Gateway module [can] be used for all networks and machines.
    The ability for each Gateway module to communicate with different
    networks is handled by the independent ComMods with which it binds."

    Gateways splice circuit legs by label, never talk to each other outside
    the chains (§4.2), and get all topology knowledge from the naming
    service, with which non-prime gateways register like any module (§4.1).
    Prime gateways adopt pre-assigned well-known addresses instead (§3.4). *)

(* lint: allow-file layering(Commod) — gateways bind full ComMods (§4.1). *)

open Ntcs_sim
open Ntcs_ipcs

type t

val create :
  Node.t ->
  name:string ->
  nets:Net.id list ->
  ?prime_addrs:(Net.id * Addr.t) list ->
  ?prime_phys:(Net.id * Phys_addr.t list) list ->
  unit ->
  t
(** A gateway for [nets]. Prime gateways pass their pre-assigned per-network
    addresses and fixed listening resources. *)

val serve : t -> unit -> unit
(** The gateway process body: bind one ComMod per network, adopt or
    register addresses, then forward forever. Chain establishment runs in
    worker processes so forwarding never blocks. Spawn with [World.spawn]. *)

val stop : t -> unit

val splice_count : t -> int
(** Live spliced leg pairs (2 table entries per chain). *)

val commods : t -> (Net.id * Commod.t) list
