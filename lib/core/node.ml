(* Per-process NTCS context. Everything a ComMod (or a Gateway's several
   ComMods) needs to come up on a machine: the simulated world, the native
   IPCS stacks, configuration, and the well-known address table that solves
   the §3.4 bootstrap problem ("a small number of 'well known' addresses are
   loaded into the ComMod address tables when each module is initialized;
   those of the Name Server and of certain 'prime' gateways"). *)

open Ntcs_sim

type well_known = {
  wk_name : string; (* "name-server", "prime-gw/<g>@<net>" *)
  wk_addr : Addr.t; (* pre-assigned UAdd, loaded into the address tables *)
  wk_phys : Ntcs_ipcs.Phys_addr.t list; (* where to reach it, per network kind *)
  wk_nets : Net.id list; (* the networks this entry serves *)
  wk_all_nets : Net.id list; (* for a gateway: every network it bridges *)
  wk_is_name_server : bool;
  wk_is_gateway : bool;
}

type config = {
  ns_fault_guard : bool;
  (* The §6.3 patch: the LCM address-fault handler special-cases the name
     server so a broken NS circuit cannot recurse through the NSP-layer.
     Disable to reproduce the paper's bug. *)
  recursion_limit : int; (* simulated stack bound (per ComMod) *)
  monitoring : bool; (* LCM reports events to the monitor hook *)
  timestamps : bool; (* LCM timestamps monitor records via the time hook *)
  force_packed : bool;
  (* Ablation switch: disable adaptive mode selection and convert every
     message (what a system without the §5 machinery would do). *)
  lvc_open_retries : int; (* ND retry-on-open (§2.2) *)
  lvc_retry_delay_us : int;
  send_retry : Retry.policy;
  (* LCM send recovery (§3.5): attempts through the address-fault handler,
     with exponential backoff between them. *)
  ns_retry : Retry.policy;
  (* NSP request recovery: full failover cycles over the replica list. *)
  default_timeout_us : int;
  (* The single default deadline for every ALI/LCM primitive and NSP
     request: a synchronous call's reply wait, an asynchronous send's
     retry/backoff budget. Explicit [?timeout_us] overrides per call. *)
  ns_cache_ttl_us : int; (* NSP-layer cache lifetime; 0 = no caching *)
  ns_cache_capacity : int; (* NSP-layer lookup-cache entries per ComMod *)
  ns_shards : Addr.t array;
  (* The pinned shard map of the naming plane (DESIGN.md §15):
     [ns_shards.(k)] is the well-known address of the name server owning
     shard [k]. Empty = the classic single (or fully replicated) name
     server; [Cluster.build] fills it when the world's naming arm asks for
     more than one shard. *)
  well_known : well_known list;
}

let default_config =
  {
    ns_fault_guard = true;
    recursion_limit = 64;
    monitoring = false;
    timestamps = false;
    force_packed = false;
    lvc_open_retries = 2;
    lvc_retry_delay_us = 50_000;
    send_retry =
      Retry.policy ~max_attempts:3 ~base_delay_us:50_000 ~max_delay_us:800_000
        ~jitter_us:20_000 ();
    ns_retry =
      Retry.policy ~max_attempts:2 ~base_delay_us:100_000 ~max_delay_us:1_000_000
        ~jitter_us:50_000 ();
    default_timeout_us = 3_000_000;
    ns_cache_ttl_us = 60_000_000;
    ns_cache_capacity = 512;
    ns_shards = [||];
    well_known = [];
  }

(* DRTS hooks. The defaults are self-contained; the DRTS services replace
   them, at which point the NTCS starts using services that are themselves
   built on the NTCS — the recursion of §6.1. *)
type hooks = {
  mutable timestamp : unit -> int; (* corrected time for monitor records *)
  mutable on_event : (string -> string -> unit) option; (* kind, detail *)
}

type t = {
  world : World.t;
  ipcs : Ntcs_ipcs.Registry.t;
  machine : Machine.t;
  config : config;
  hooks : hooks;
}

let make ?(config = default_config) ~world ~ipcs ~machine () =
  let hooks =
    {
      timestamp = (fun () -> Machine.local_time machine ~now_us:(World.now world));
      on_event = None;
    }
  in
  { world; ipcs; machine; config; hooks }

let world t = t.world
let sched t = World.sched t.world
let metrics t = World.metrics t.world
let machine t = t.machine
let now t = World.now t.world

let record t ~cat ~actor detail = World.record t.world ~cat ~actor detail

let my_order t = match Machine.byte_order t.machine.Machine.mtype with
  | Machine.Little_endian -> Ntcs_wire.Endian.Le
  | Machine.Big_endian -> Ntcs_wire.Endian.Be

let name_server_wk t = List.find_opt (fun wk -> wk.wk_is_name_server) t.config.well_known

let prime_gateways t = List.filter (fun wk -> wk.wk_is_gateway) t.config.well_known

(* Networks this machine is attached to. *)
let my_nets t = World.nets_of_machine t.world t.machine.Machine.id
