(* STD-IF: the uniform local-virtual-circuit interface (§2.2).

   "A simple STD-IF was desired ... This incorporates only those features
   necessary for the NTCS, while maintaining a high degree of compatibility
   with anticipated underlying IPCSs."

   Everything above this interface sees message-oriented local virtual
   circuits; everything below it is genuinely network dependent:
   - over the TCP backend we frame messages onto the byte stream with a
     shift-mode length word (segments split and coalesce underneath);
   - over the MBX backend we fragment messages larger than the mailbox
     message limit and reassemble on receive.

   Per the paper, there is no relocation or recovery here: failures surface
   as [Error] and notification is simply passed upward. *)

open Ntcs_sim
open Ntcs_ipcs

type lvc = {
  lvc_id : int;
  kind : Phys_addr.kind;
  send_msg : Bytes.t -> (unit, Ipcs_error.t) result;
  send_sub : Bytes.t -> off:int -> len:int -> (unit, Ipcs_error.t) result;
  recv_msg : ?timeout_us:int -> unit -> (Bytes.t, Ipcs_error.t) result;
  close : unit -> unit;
  abort : unit -> unit;
  is_open : unit -> bool;
}

(* --- TCP adaptation: length-prefix framing over a byte stream --- *)

let frame_word_bytes = 4

let of_tcp (conn : Ipcs_tcp.conn) =
  let pool = Ntcs_sim.World.pool (Ipcs_tcp.conn_world conn) in
  (* Framing borrows a pooled buffer for the length word + body; the TCP
     stack copies before [send] returns, so it goes straight back. *)
  let send_sub data ~off ~len =
    let framed = len + frame_word_bytes in
    let fb = Ntcs_util.Pool.alloc pool framed in
    Ntcs_wire.Shift.poke_word fb 0 len;
    Bytes.blit data off fb frame_word_bytes len;
    let r = Ipcs_tcp.send ~off:0 ~len:framed conn fb in
    Ntcs_util.Pool.release pool fb;
    r
  in
  let send_msg data = send_sub data ~off:0 ~len:(Bytes.length data) in
  (* Reassembly state persists across recv_msg calls: a flat buffer with
     head/tail cursors, so extracting a message consumes the prefix without
     re-copying everything still pending (the old Buffer-based reassembly
     re-materialised the whole backlog on every message). *)
  let rbuf = ref (Bytes.create 4096) in
  let head = ref 0 in
  let tail = ref 0 in
  let append chunk =
    let n = Bytes.length chunk in
    let used = !tail - !head in
    if Bytes.length !rbuf - !tail < n then begin
      (* Slide the live region down; grow only if that is not enough. *)
      if !head > 0 then begin
        Bytes.blit !rbuf !head !rbuf 0 used;
        head := 0;
        tail := used
      end;
      if Bytes.length !rbuf - !tail < n then begin
        let cap = ref (2 * Bytes.length !rbuf) in
        while !cap - !tail < n do
          cap := 2 * !cap
        done;
        let nb = Bytes.create !cap in
        Bytes.blit !rbuf 0 nb 0 !tail;
        rbuf := nb
      end
    end;
    Bytes.blit chunk 0 !rbuf !tail n;
    tail := !tail + n
  in
  let rec recv_msg ?timeout_us () =
    let have = !tail - !head in
    if have >= frame_word_bytes then begin
      let need = Ntcs_wire.Shift.get_word !rbuf !head in
      if have >= frame_word_bytes + need then begin
        (* The one copy on the receive path: the message leaves the cursor
           buffer and becomes the frame view's backing store upstairs. *)
        (* lint: allow copies(Bytes.sub) — ownership hand-off out of the reused reassembly buffer *)
        let msg = Bytes.sub !rbuf (!head + frame_word_bytes) need in
        head := !head + frame_word_bytes + need;
        if !head = !tail then begin
          head := 0;
          tail := 0
        end;
        Ok msg
      end
      else fill ?timeout_us ()
    end
    else fill ?timeout_us ()
  and fill ?timeout_us () =
    match Ipcs_tcp.recv ?timeout_us conn with
    | Ok chunk ->
      append chunk;
      recv_msg ?timeout_us ()
    | Error _ as e -> e
  in
  {
    lvc_id = Ipcs_tcp.conn_id conn;
    kind = Phys_addr.K_tcp;
    send_msg;
    send_sub;
    recv_msg;
    close = (fun () -> Ipcs_tcp.close conn);
    abort = (fun () -> Ipcs_tcp.abort conn);
    is_open = (fun () -> Ipcs_tcp.is_open conn);
  }

(* --- MBX adaptation: fragmentation over bounded messages ---

   Fragment header: three shift-mode words (frame id, index, count). A
   message that fits in one MBX message still carries the header so the
   receiver needs no special case. *)

let mbx_frag_header = 12
let mbx_frag_payload = Ipcs_mbx.max_message_size - mbx_frag_header

let of_mbx (chan : Ipcs_mbx.chan) =
  let next_frame = ref 1 in
  (* frame id -> (count, received so far, fragments in order) *)
  let partial : (int, int * Bytes.t option array) Hashtbl.t = Hashtbl.create 4 in
  let send_sub data ~off:base ~len:total =
    let count = max 1 ((total + mbx_frag_payload - 1) / mbx_frag_payload) in
    let frame_id = !next_frame in
    next_frame := frame_id + 1;
    let rec go idx =
      if idx >= count then Ok ()
      else begin
        let off = idx * mbx_frag_payload in
        let len = min mbx_frag_payload (total - off) in
        let buf = Buffer.create (len + mbx_frag_header) in
        Ntcs_wire.Shift.put_word buf frame_id;
        Ntcs_wire.Shift.put_word buf idx;
        Ntcs_wire.Shift.put_word buf count;
        Buffer.add_subbytes buf data (base + off) len;
        (* A single-fragment message is one whole ND frame on the ring: the
           fault plane may drop/duplicate/reorder it. Fragments of a larger
           frame must arrive whole and in order, so they are never marked. *)
        match Ipcs_mbx.send ~droppable:(count = 1) chan (Buffer.to_bytes buf) with
        | Ok () -> go (idx + 1)
        | Error Ipcs_error.Queue_full ->
          (* Bounded mailbox: surface to the ND-layer, which backs off and
             retries — MBX flow control is the caller's problem. *)
          Error Ipcs_error.Queue_full
        | Error _ as e -> e
      end
    in
    go 0
  in
  let send_msg data = send_sub data ~off:0 ~len:(Bytes.length data) in
  let rec recv_msg ?timeout_us () =
    match Ipcs_mbx.recv ?timeout_us chan with
    | Error _ as e -> e
    | Ok frag ->
      if Bytes.length frag < mbx_frag_header then Error (Ipcs_error.Closed)
      else begin
        let frame_id = Ntcs_wire.Shift.get_word frag 0 in
        let idx = Ntcs_wire.Shift.get_word frag 4 in
        let count = Ntcs_wire.Shift.get_word frag 8 in
        (* lint: allow copies(Bytes.sub) — strip the fragment header off the MBX message *)
        let body = Bytes.sub frag mbx_frag_header (Bytes.length frag - mbx_frag_header) in
        if count = 1 then Ok body
        else begin
          let got, frags =
            match Hashtbl.find_opt partial frame_id with
            | Some s -> s
            | None -> (0, Array.make count None)
          in
          if idx < Array.length frags then frags.(idx) <- Some body;
          let got = got + 1 in
          if got = count then begin
            Hashtbl.remove partial frame_id;
            let buf = Buffer.create (count * mbx_frag_payload) in
            Array.iter
              (function Some b -> Buffer.add_bytes buf b | None -> ())
              frags;
            Ok (Buffer.to_bytes buf)
          end
          else begin
            Hashtbl.replace partial frame_id (got, frags);
            recv_msg ?timeout_us ()
          end
        end
      end
  in
  {
    lvc_id = Ipcs_mbx.chan_id chan;
    kind = Phys_addr.K_mbx;
    send_msg;
    send_sub;
    recv_msg;
    close = (fun () -> Ipcs_mbx.close chan);
    abort = (fun () -> Ipcs_mbx.abort chan);
    is_open = (fun () -> Ipcs_mbx.is_open chan);
  }

(* --- uniform open / listen over both backends --- *)

type acceptor = {
  acc_addr : Phys_addr.t;
  accept : ?timeout_us:int -> unit -> (lvc, Ipcs_error.t) result;
  shutdown : unit -> unit;
}

let connect ?allowed (ipcs : Registry.t) ~(machine : Machine.t) ~(dst : Phys_addr.t) =
  match Phys_addr.kind dst with
  | Phys_addr.K_tcp -> (
    match Ipcs_tcp.connect ?allowed (Registry.tcp ipcs) ~machine ~dst with
    | Ok conn -> Ok (of_tcp conn)
    | Error _ as e -> e)
  | Phys_addr.K_mbx -> (
    match Ipcs_mbx.open_chan ?allowed (Registry.mbx ipcs) ~machine ~dst with
    | Ok chan -> Ok (of_mbx chan)
    | Error _ as e -> e)

let listen_tcp ?port (ipcs : Registry.t) ~(machine : Machine.t) =
  let port = match port with Some p -> p | None -> Registry.fresh_port ipcs in
  match Ipcs_tcp.listen (Registry.tcp ipcs) ~machine ~port with
  | Error _ as e -> e
  | Ok l ->
    Ok
      {
        acc_addr = Ipcs_tcp.listener_addr l;
        accept =
          (fun ?timeout_us () ->
            match Ipcs_tcp.accept ?timeout_us l with
            | Ok conn -> Ok (of_tcp conn)
            | Error _ as e -> e);
        shutdown = (fun () -> Ipcs_tcp.close_listener l);
      }

let listen_mbx ?path (ipcs : Registry.t) ~(machine : Machine.t) ~hint =
  let path =
    match path with Some p -> p | None -> Registry.fresh_mbx_path ipcs ~machine ~hint
  in
  match Ipcs_mbx.create_mailbox (Registry.mbx ipcs) ~machine ~path with
  | Error _ as e -> e
  | Ok mb ->
    Ok
      {
        acc_addr = Ipcs_mbx.mailbox_addr mb;
        accept =
          (fun ?timeout_us () ->
            match Ipcs_mbx.accept ?timeout_us mb with
            | Ok chan -> Ok (of_mbx chan)
            | Error _ as e -> e);
        shutdown = (fun () -> Ipcs_mbx.close_mailbox mb);
      }

(* --- the unified envelope ---

   The one message-envelope record shared by every layer above the STD-IF:
   the LCM constructs it from an IP-layer delivery, the ALI hands it to
   applications, and [reply] consumes it unchanged. Upper layers re-export
   it ([type envelope = Std_if.envelope = { ... }]) so [env.Lcm_layer.src]
   and [env.Ali_layer.src] project the same record — there is exactly one
   definition and no back-pointers. *)

type envelope = {
  src : Addr.t; (* who sent it (reply here) *)
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Ntcs_wire.Convert.mode;
  src_order : Ntcs_wire.Endian.order;
  data : Bytes.t;
  conv : int; (* nonzero: the sender is blocked awaiting a reply *)
  seq : int; (* sender's LCM sequence number *)
  span : Ntcs_obs.Span.ctx; (* causal identity of the send that produced it *)
}
