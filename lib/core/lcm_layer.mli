(** The Logical Connection Maintenance layer (§2.2, §3.5).

    "Its primary function is to relocate modules which may have moved, and
    to recover from broken connections, though it also provides a
    connectionless protocol. No explicit open or close primitives are
    provided ...; messages are simply sent/received directly to/from the
    desired destinations, with the underlying IVCs being established as
    needed."

    The address-fault path follows §3.5 exactly: failed send → local
    forwarding table → fault handler → NSP forwarding query → retry "in
    exactly the same manner as during an initial connection". The §6.3
    pathology is reproduced verbatim together with the paper's patch;
    [Node.config.ns_fault_guard] selects the behaviour.

    One dispatcher process per ComMod pumps ND events through the IP-layer
    and routes traffic to the inbox / reply ivars. *)

open Ntcs_wire

type envelope = Std_if.envelope = {
  src : Addr.t;
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Convert.mode;
  src_order : Endian.order;
  data : Bytes.t;
  conv : int;  (** nonzero: the sender awaits a reply *)
  seq : int;  (** sender's LCM sequence number *)
  span : Ntcs_obs.Span.ctx;
      (** causal identity of the logical send that produced this message *)
}
(** Re-export of the one shared envelope record — see {!Std_if.envelope}. *)

type t

val create : Node.t -> Nd_layer.t -> Ip_layer.t -> t
(** Starts the dispatcher process. Call from the owning process. *)

val shutdown : t -> unit

val set_fault_oracle : t -> (Addr.t -> (Addr.t option, Errors.t) result) -> unit
(** The NSP forwarding query ([Some] = replacement, [None] = still alive). *)

val set_ns_addr : t -> Addr.t -> unit
(** Who the name server is — consumed by the §6.3 guard. *)

val set_on_peer_down : t -> (Addr.t -> unit) -> unit

val set_on_relocate : t -> (old:Addr.t -> fresh:Addr.t -> unit) -> unit
(** §3.5 reconfiguration hook: fires when the address-fault handler learns
    a relocation and patches the forwarding table. The NSP-layer listens to
    invalidate/splice its lookup caches (DESIGN.md §15). *)

(** {1 Communication primitives} *)

(** Every primitive takes the same two optional parameters: [?app_tag]
    (default 0) typing the message for tag-filtered receives, and
    [?timeout_us] (default [Node.config.default_timeout_us]) bounding the
    {e whole} operation — connection attempts, retry backoff and, for
    synchronous calls, the reply wait all draw on the one budget.
    Recoverable sends run under [Node.config.send_retry]: each attempt
    after the first passes through the §3.5 address-fault handler, with
    exponential seeded backoff between attempts. *)

val send :
  t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result
(** Asynchronous send with transparent fault recovery / relocation. *)

val send_dgram :
  t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result
(** Connectionless: single attempt, no relocation, no recovery (§2.2). *)

val send_sync :
  t ->
  dst:Addr.t ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (envelope, Errors.t) result
(** Synchronous send / receive / reply conversation. *)

val reply :
  t ->
  envelope ->
  ?app_tag:int ->
  ?timeout_us:int ->
  Convert.payload ->
  (unit, Errors.t) result

val ping : t -> dst:Addr.t -> timeout_us:int -> (unit, Errors.t) result
(** Liveness probe; never transparently relocated (a relocated probe would
    make every dead module look alive). *)

val recv : ?timeout_us:int -> ?app_tag:int -> t -> (envelope, Errors.t) result
(** Next envelope, optionally only those with a given application tag —
    mismatches are set aside for later receives, so multiplexed services on
    one ComMod never steal each other's traffic. *)

val try_recv : t -> envelope option

(** {1 DRTS coupling (§6.1)} *)

val without_monitoring : t -> (unit -> 'a) -> 'a
(** Run with monitor reporting suppressed — how the DRTS services send their
    own traffic without "the obvious infinite recursion". *)

val recursion_tracker : t -> Recursion.t
val forwarding_entries : t -> int

type stats = {
  st_sent : int;
  st_received : int;
  st_sync_calls : int;
  st_faults : int;
  st_forwarding : int;
  st_retries : int;  (** send attempts beyond the first *)
  st_backoff_us : int;  (** total virtual time spent in backoff sleeps *)
  st_reestablished : (string * int) list;
      (** per-destination circuit reestablishments, sorted by address *)
}

val stats : t -> stats
