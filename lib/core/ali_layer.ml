(* The Application Level Interface layer (§2.4): "It simply provides the
   application interface primitives from the Nucleus and NSP-Layer services,
   tailors the error returns, and performs parameter checking. It may be
   better described as a thin veneer."

   The three primitive classes of §1.3:
   - basic communication: [send], [send_sync], [send_dgram], [receive],
     [reply] (both asynchronous and synchronous forms);
   - resource location: [locate], [locate_attrs];
   - utilities: [my_address], [stats], [locate_entry]. *)

open Ntcs_wire

(* Re-export of the one shared envelope record (see [Std_if.envelope]):
   what [receive] returns is exactly what [reply] consumes — no conversion,
   no back-pointer. *)
type envelope = Std_if.envelope = {
  src : Addr.t;
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Convert.mode;
  src_order : Endian.order;
  data : Bytes.t;
  conv : int;
  seq : int;
  span : Ntcs_obs.Span.ctx;
}

let expects_reply (env : envelope) = env.conv <> 0

(* Application tags below this are free for applications; the naming service
   tag is above it. *)
let max_app_tag = 8999

let check_tag app_tag =
  if app_tag < 0 || app_tag > max_app_tag then Error (Errors.Internal "reserved app_tag")
  else Ok ()

let check_addr (addr : Addr.t) =
  (* Applications hold addresses obtained from the resource location
     primitives; those are always unique. A temporary address may only
     appear as a reply target (which goes through [reply]). *)
  if Addr.is_unique addr then Ok ()
  else Error (Errors.Internal "temporary address passed to a send primitive")

(* --- resource location primitives --- *)

let locate commod name =
  if String.length name = 0 then Error Errors.Unknown_name
  else Nsp_layer.lookup (Commod.nsp_exn commod) name

let locate_attrs commod attrs =
  match Nsp_layer.lookup_attrs (Commod.nsp_exn commod) attrs with
  | Ok entries -> Ok (List.map (fun e -> e.Ns_proto.e_addr) entries)
  | Error _ as e -> e

let locate_entry commod addr = Nsp_layer.resolve (Commod.nsp_exn commod) addr

(* --- basic communication primitives --- *)

(* Every primitive takes the same two optional parameters — [?app_tag] and
   [?timeout_us] — with the defaults documented on [Node.config]. *)

let send commod ~dst ?(app_tag = 0) ?timeout_us payload =
  match (check_tag app_tag, check_addr dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () -> Lcm_layer.send (Commod.lcm commod) ~dst ~app_tag ?timeout_us payload

let send_sync commod ~dst ?(app_tag = 0) ?timeout_us payload =
  match (check_tag app_tag, check_addr dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () -> Lcm_layer.send_sync (Commod.lcm commod) ~dst ~app_tag ?timeout_us payload

let send_dgram commod ~dst ?(app_tag = 0) ?timeout_us payload =
  match (check_tag app_tag, check_addr dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () -> Lcm_layer.send_dgram (Commod.lcm commod) ~dst ~app_tag ?timeout_us payload

let receive ?timeout_us ?app_tag commod =
  (match app_tag with
   | Some tag when tag < 0 || tag > max_app_tag -> Error (Errors.Internal "reserved app_tag")
   | _ -> Ok ())
  |> function
  | Error _ as e -> e
  | Ok () -> Lcm_layer.recv ?timeout_us ?app_tag (Commod.lcm commod)

let reply commod (env : envelope) ?(app_tag = 0) ?timeout_us payload =
  if not (expects_reply env) then Error (Errors.Internal "sender does not expect a reply")
  else begin
    match check_tag app_tag with
    | Error _ as e -> e
    | Ok () -> Lcm_layer.reply (Commod.lcm commod) env ~app_tag ?timeout_us payload
  end

(* --- utilities --- *)

(* The error classification applications should consult before retrying a
   failed primitive themselves — the same one the LCM/NSP recovery uses. *)
let retryable = Errors.retryable
let severity = Errors.severity

let my_address commod =
  match Commod.my_addr commod with
  | addr when Addr.is_unique addr -> Ok addr
  | _ -> Error Errors.Not_registered

let recursion_stats commod =
  let tr = Lcm_layer.recursion_tracker (Commod.lcm commod) in
  (Recursion.entries tr, Recursion.recursive_entries tr, Recursion.max_depth tr)

let stats commod = Lcm_layer.stats (Commod.lcm commod)
