(* The Name Server (§3): an active module maintaining the name/address
   database, itself "nothing more than an application built on the Nucleus".

   It binds a ComMod like everyone else, but with a resolver backed by its
   own database — the one place the recursion bottoms out. Its address is
   well known (§3.4); modules bootstrap to it through their preloaded
   address tables and TAdds.

   §3.5 forwarding logic is implemented as written: on a Forward query the
   server decides "whether the old UAdd is really inactive" (a liveness
   ping), maps "the old UAdd to its name, and then look[s] for a similar
   name in a newer module" — where "similar" honours the attribute-based
   naming the paper announces as its successor scheme (same "service"
   attribute counts as similar).

   Replication (§7): any number of peer name servers with distinct server
   ids; writes are pushed to peers as datagrams (eventual consistency), and
   a starting replica pulls a full sync from its first reachable peer.

   Sharding (DESIGN.md §15): with a pinned [Shard_map], server [i] is the
   authority for every name hashing to shard [i]. Versioned lookups and
   registrations arriving at a non-owner are forwarded name-to-name to the
   owner over the NTCS itself (Internames style, one hop at most); if the
   owner is unreachable the non-owner answers from its replicated backup
   copy, marked unversioned. Each owner keeps an invalidation generation,
   bumped on every §3.5 invalidation-class mutation (relocation,
   deregistration, death detected by a Forward probe) and piggybacked on
   versioned answers so NSP-side caches can tell fresh from stale. *)

let service_attr = "service" (* attribute used for "similar name" matching *)

type record = {
  mutable r_name : string;
  r_addr : Addr.t;
  mutable r_phys : string list;
  mutable r_nets : int list;
  mutable r_order : int;
  mutable r_attrs : (string * string) list;
  mutable r_alive : bool;
  mutable r_stamp : int; (* registration time (virtual us): "newer" = larger *)
}

type t = {
  node : Node.t;
  server_id : int;
  wk_addr : Addr.t;
  db : (Addr.t, record) Hashtbl.t;
  by_name : (string, record list) Hashtbl.t;
  (* name -> every record ever registered under it (small buckets). The
     index is what keeps lookups O(bucket) instead of a full database scan
     — the difference between 10^3 and 10^6 names (BENCH_naming.json). *)
  peers : Addr.t list; (* other replicas' well-known addresses *)
  shard_map : Addr.t Ntcs_naming.Shard_map.t option;
  (* None = classic single/replicated server; Some = sharded naming plane,
     where this server is the authority for shard [server_id]. *)
  mutable inval_gen : int;
  (* invalidation generation of the shard this server owns; starts at 1 so
     0 stays the "unversioned answer" marker on the wire *)
  mutable next_value : int;
  mutable commod : Commod.t option;
  mutable running : bool;
  ping_timeout_us : int;
  forward_timeout_us : int; (* shard-forward deadline: short, so a dead
                               owner degrades to a fallback answer fast *)
}

let create node ~server_id ~wk_addr ?(peers = []) ?shard_map () =
  {
    node;
    server_id;
    wk_addr;
    db = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
    peers;
    shard_map;
    inval_gen = 1;
    next_value = 1;
    commod = None;
    running = false;
    ping_timeout_us = 400_000;
    forward_timeout_us = 600_000;
  }

let metrics t = Node.metrics t.node

let entry_of_record (r : record) =
  {
    Ns_proto.e_name = r.r_name;
    e_addr = r.r_addr;
    e_phys = r.r_phys;
    e_nets = r.r_nets;
    e_order = r.r_order;
    e_attrs = r.r_attrs;
    e_alive = r.r_alive;
  }

let record_of_entry ~stamp (e : Ns_proto.entry) =
  {
    r_name = e.Ns_proto.e_name;
    r_addr = e.Ns_proto.e_addr;
    r_phys = e.Ns_proto.e_phys;
    r_nets = e.Ns_proto.e_nets;
    r_order = e.Ns_proto.e_order;
    r_attrs = e.Ns_proto.e_attrs;
    r_alive = e.Ns_proto.e_alive;
    r_stamp = stamp;
  }

let fresh_addr t =
  let v = t.next_value in
  t.next_value <- v + 1;
  Addr.unique ~server_id:t.server_id ~value:v

(* --- the sharded naming plane (DESIGN.md §15) --- *)

let my_shard t = match t.shard_map with Some _ -> t.server_id | None -> 0

let shard_of_name t name =
  match t.shard_map with
  | Some m -> Ntcs_naming.Shard_map.shard_of_name m name
  | None -> 0

let owns t name =
  match t.shard_map with
  | Some m -> Ntcs_naming.Shard_map.shard_of_name m name = t.server_id
  | None -> true

let generation t = t.inval_gen

(* An invalidation-class mutation happened in the shard this server owns:
   every cached answer issued before it is now suspect. The new generation
   rides on subsequent versioned answers; NSP caches fold it into their
   per-shard floor and turn stale hits into misses. *)
let bump_gen t what =
  t.inval_gen <- t.inval_gen + 1;
  Ntcs_util.Metrics.incr (metrics t) "ns.invalidations";
  Node.record t.node ~cat:"ns.shard.gen" ~actor:"name-server"
    (Printf.sprintf "shard %d gen %d: %s" (my_shard t) t.inval_gen what)

(* --- the name index --- *)

let index_add t r =
  let rest =
    match Hashtbl.find_opt t.by_name r.r_name with Some rs -> rs | None -> []
  in
  Hashtbl.replace t.by_name r.r_name (r :: rest)

let index_remove t ~name ~addr =
  match Hashtbl.find_opt t.by_name name with
  | None -> ()
  | Some rs -> (
    match List.filter (fun r -> not (Addr.equal r.r_addr addr)) rs with
    | [] -> Hashtbl.remove t.by_name name
    | rs' -> Hashtbl.replace t.by_name name rs')

(* The one write path into the database: keeps [by_name] exactly in step,
   including a replicated record changing the name attached to an address. *)
let db_insert t r =
  (match Hashtbl.find_opt t.db r.r_addr with
   | Some old -> index_remove t ~name:old.r_name ~addr:old.r_addr
   | None -> ());
  Hashtbl.replace t.db r.r_addr r;
  index_add t r

(* --- queries over the database --- *)

(* Full-database walks below go through [sorted_bindings]: query answers
   (and hence tie-breaks on equal stamps) must not depend on hash-table
   layout. [find_by_name] reads one index bucket instead, with an
   order-independent best-record fold: newest stamp wins, lowest address
   breaks ties — the same answer the sorted full scan used to produce. *)

let find_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> None
  | Some rs ->
    List.fold_left
      (fun best r ->
        if not r.r_alive then best
        else
          match best with
          | Some b
            when b.r_stamp > r.r_stamp
                 || (b.r_stamp = r.r_stamp && Addr.compare b.r_addr r.r_addr <= 0) ->
            best
          | Some _ | None -> Some r)
      None rs

let matches_attrs (r : record) attrs =
  List.for_all
    (fun (k, v) ->
      match List.assoc_opt k r.r_attrs with
      | Some v' -> String.equal v v'
      | None -> false)
    attrs

let find_by_attrs t attrs =
  Ntcs_util.sorted_bindings ~compare:Addr.compare t.db
  |> List.filter_map (fun (_, r) ->
         if r.r_alive && matches_attrs r attrs then Some r else None)
  |> List.stable_sort (fun a b -> compare a.r_stamp b.r_stamp)

(* "Looking for a similar name in a newer module": same name, or same
   service attribute, strictly newer, still alive. *)
let find_replacement t (old : record) =
  let similar (r : record) =
    String.equal r.r_name old.r_name
    ||
    match (List.assoc_opt service_attr r.r_attrs, List.assoc_opt service_attr old.r_attrs) with
    | Some a, Some b -> String.equal a b
    | _ -> false
  in
  List.fold_left
    (fun best (_, r) ->
      if r.r_alive && r.r_stamp > old.r_stamp && (not (Addr.equal r.r_addr old.r_addr))
         && similar r
      then begin
        match best with
        | Some b when b.r_stamp >= r.r_stamp -> best
        | Some _ | None -> Some r
      end
      else best)
    None
    (Ntcs_util.sorted_bindings ~compare:Addr.compare t.db)

let gateway_records t =
  Ntcs_util.sorted_bindings ~compare:Addr.compare t.db
  |> List.filter_map (fun (_, r) ->
         if r.r_alive && List.assoc_opt Router.attr_gateway r.r_attrs = Some "yes" then Some r
         else None)

(* --- replication --- *)

let push_to_peers t records =
  match t.commod with
  | None -> ()
  | Some commod ->
    let payload =
      Ntcs_wire.Convert.payload_raw
        (Ns_proto.pack_request
           (Ns_proto.Sync_push (List.map (fun r -> (r.r_stamp, entry_of_record r)) records)))
    in
    List.iter
      (fun peer ->
        if not (Addr.equal peer t.wk_addr) then
          ignore
            (Lcm_layer.send_dgram (Commod.lcm commod) ~dst:peer ~app_tag:Ns_proto.app_tag
               payload))
      t.peers

let merge_entry t (stamp, entry) =
  let addr = entry.Ns_proto.e_addr in
  match Hashtbl.find_opt t.db addr with
  | Some existing when existing.r_stamp >= stamp -> ()
  | Some _ | None ->
    let r = record_of_entry ~stamp entry in
    (* An invalidation-class change replicated from a peer — a death, or a
       live binding superseding another address — lands in a shard this
       server owns: the generation must move, or cached copies of the old
       answer would outlive it. *)
    if
      owns t r.r_name
      && ((not r.r_alive)
         ||
         match find_by_name t r.r_name with
         | Some prev -> not (Addr.equal prev.r_addr addr)
         | None -> false)
    then bump_gen t ("merge " ^ r.r_name);
    db_insert t r

(* Anti-entropy catch-up at boot. The pull is bounded by the (short)
   forward timeout, not the default deadline: when every replica boots at
   once they are all in here and none is serving yet, so a long timeout
   would serialize the whole plane's boot behind 3s-per-peer failures
   (with four sharded servers that kept the name space unreachable for
   the first nine simulated seconds). A replica joining a live plane
   still syncs on the first try; fresh simultaneous boots fail fast and
   converge through push replication instead. *)
let pull_sync t =
  match t.commod with
  | None -> ()
  | Some commod ->
    let rec try_peers = function
      | [] -> ()
      | peer :: rest ->
        if Addr.equal peer t.wk_addr then try_peers rest
        else begin
          match
            Lcm_layer.send_sync (Commod.lcm commod) ~dst:peer ~app_tag:Ns_proto.app_tag
              ~timeout_us:t.forward_timeout_us
              (Ntcs_wire.Convert.payload_raw (Ns_proto.pack_request (Ns_proto.Sync_pull 0)))
          with
          | Ok env -> (
            match Ns_proto.unpack_response env.Lcm_layer.data with
            | Ok (Ns_proto.R_sync entries) -> List.iter (merge_entry t) entries
            | Ok _ | Error _ -> try_peers rest)
          | Error _ -> try_peers rest
        end
    in
    try_peers t.peers

(* --- request handling --- *)

let is_alive t ?commod (r : record) =
  (* "first determining whether the old UAdd is really inactive" — probe it.
     The ping rides the NTCS itself (recursion), with monitoring suppressed.
     Without a ComMod (offline benches) the database's word stands. *)
  r.r_alive
  &&
  match commod with
  | None -> true
  | Some commod ->
    Lcm_layer.without_monitoring (Commod.lcm commod) (fun () ->
        match
          Lcm_layer.ping (Commod.lcm commod) ~dst:r.r_addr ~timeout_us:t.ping_timeout_us
        with
        | Ok () -> true
        | Error _ -> false)

(* One shard-to-shard hop over the NTCS itself: forward [req] to the owner
   of [shard] and relay its answer verbatim (generations included).
   Monitoring is suppressed like the liveness pings; the deadline is short
   so a dead owner degrades into a fallback answer quickly. *)
let forward_to_shard t commod ~shard req =
  match t.shard_map with
  | None -> None
  | Some m -> (
    let owner = Ntcs_naming.Shard_map.owner m shard in
    Lcm_layer.without_monitoring (Commod.lcm commod) (fun () ->
        match
          Lcm_layer.send_sync (Commod.lcm commod) ~dst:owner ~app_tag:Ns_proto.app_tag
            ~timeout_us:t.forward_timeout_us
            (Ntcs_wire.Convert.payload_raw (Ns_proto.pack_request req))
        with
        | Error _ -> None
        | Ok env -> (
          match Ns_proto.unpack_response env.Lcm_layer.data with
          | Ok resp -> Some resp
          | Error _ -> None)))

(* Shard-router wrapper around a request for [name] that this server does
   not own: one forward to the owner; on failure, answer from the local
   replicated backup via [local] (marked unversioned by the caller). *)
let route t ?commod ~name ~hop_note req local =
  match (t.shard_map, commod) with
  | None, _ | _, None -> local ()
  | Some _, Some commod ->
    let shard = shard_of_name t name in
    Ntcs_util.Metrics.incr (metrics t) "ns.shard.forwards";
    Node.record t.node ~cat:"ns.shard.forward" ~actor:"name-server"
      (Printf.sprintf "%s: shard %d -> %d hop %d" name (my_shard t) shard hop_note);
    (match forward_to_shard t commod ~shard req with
     | Some resp -> resp
     | None ->
       Ntcs_util.Metrics.incr (metrics t) "ns.shard.fallbacks";
       Node.record t.node ~cat:"ns.shard.fallback" ~actor:"name-server"
         (Printf.sprintf "%s: shard %d answering for %d" name (my_shard t) shard);
       local ())

let handle_request t ?commod (req : Ns_proto.request) =
  match req with
  | Ns_proto.Register { r_name; r_phys; r_nets; r_order; r_attrs } ->
    let do_register () =
      let addr = fresh_addr t in
      let record =
        {
          r_name;
          r_addr = addr;
          r_phys;
          r_nets;
          r_order;
          r_attrs;
          r_alive = true;
          r_stamp = Node.now t.node;
        }
      in
      (* A live binding already answering for this name means the new
         registration is a §3.5 relocation: cached copies of the old
         answer must die, so the generation moves. *)
      (match find_by_name t r_name with
       | Some prev when owns t r_name && not (Addr.equal prev.r_addr addr) ->
         bump_gen t ("re-register " ^ r_name)
       | _ -> ());
      db_insert t record;
      Ntcs_util.Metrics.incr (metrics t) "ns.registrations";
      Node.record t.node ~cat:"ns.register" ~actor:"name-server"
        (Printf.sprintf "%s -> %s" r_name (Addr.to_string addr));
      push_to_peers t [ record ];
      Ns_proto.R_registered addr
    in
    if owns t r_name then do_register ()
    else route t ?commod ~name:r_name ~hop_note:1 req do_register
  | Ns_proto.Lookup name -> (
    Ntcs_util.Metrics.incr (metrics t) "ns.lookups";
    match find_by_name t name with
    | Some r -> Ns_proto.R_addr r.r_addr
    | None -> Ns_proto.R_error "unknown-name")
  | Ns_proto.Lookup_v (name, hops) ->
    Ntcs_util.Metrics.incr (metrics t) "ns.lookups";
    Ntcs_util.Metrics.incr (metrics t)
      (Printf.sprintf "ns.shard%d.lookups" (my_shard t));
    let local () =
      match find_by_name t name with
      | Some r ->
        (* Owners stamp their generation; a backup answer is unversioned
           (gen 0) so it can never advance the client's floor. *)
        let gen = if owns t name then t.inval_gen else 0 in
        Ns_proto.R_addr_v (r.r_addr, shard_of_name t name, gen)
      | None -> Ns_proto.R_error "unknown-name"
    in
    if owns t name || hops >= 1 then local ()
    else route t ?commod ~name ~hop_note:(hops + 1) (Ns_proto.Lookup_v (name, hops + 1)) local
  | Ns_proto.Lookup_attrs attrs ->
    Ntcs_util.Metrics.incr (metrics t) "ns.attr_lookups";
    Ns_proto.R_entries (List.map entry_of_record (find_by_attrs t attrs))
  | Ns_proto.Resolve addr -> (
    Ntcs_util.Metrics.incr (metrics t) "ns.resolves";
    match Hashtbl.find_opt t.db addr with
    | Some r -> Ns_proto.R_entry (entry_of_record r)
    | None -> Ns_proto.R_error "unknown-address")
  | Ns_proto.Resolve_v addr -> (
    Ntcs_util.Metrics.incr (metrics t) "ns.resolves";
    match Hashtbl.find_opt t.db addr with
    | Some r ->
      (* The minting server's id *is* the owning shard for sharded
         deployments; well-known addresses (gateways, the servers
         themselves) fall outside the map and are answered unversioned. *)
      let shard, gen =
        match (t.shard_map, addr.Addr.space) with
        | Some m, Addr.Unique sid when sid < Ntcs_naming.Shard_map.nshards m ->
          (sid, if sid = t.server_id then t.inval_gen else 0)
        | Some _, _ -> (my_shard t, 0)
        | None, _ -> (0, t.inval_gen)
      in
      Ns_proto.R_entry_v (entry_of_record r, shard, gen)
    | None -> Ns_proto.R_error "unknown-address")
  | Ns_proto.Forward old_addr -> (
    Ntcs_util.Metrics.incr (metrics t) "ns.forward_queries";
    match Hashtbl.find_opt t.db old_addr with
    | None -> Ns_proto.R_error "unknown-address"
    | Some old ->
      if is_alive t ?commod old then Ns_proto.R_forward None
      else begin
        if old.r_alive then begin
          old.r_alive <- false;
          if owns t old.r_name then
            bump_gen t (Printf.sprintf "dead %s (%s)" old.r_name (Addr.to_string old_addr))
        end;
        match find_replacement t old with
        | Some fresh ->
          Node.record t.node ~cat:"ns.forward" ~actor:"name-server"
            (Printf.sprintf "%s -> %s" (Addr.to_string old_addr) (Addr.to_string fresh.r_addr));
          Ns_proto.R_forward (Some fresh.r_addr)
        | None -> Ns_proto.R_error "destination-dead"
      end)
  | Ns_proto.Deregister addr -> (
    match Hashtbl.find_opt t.db addr with
    | None -> Ns_proto.R_ok
    | Some r ->
      if r.r_alive && owns t r.r_name then
        bump_gen t ("deregister " ^ r.r_name);
      r.r_alive <- false;
      r.r_stamp <- Node.now t.node;
      push_to_peers t [ r ];
      Ns_proto.R_ok)
  | Ns_proto.List_gateways -> Ns_proto.R_entries (List.map entry_of_record (gateway_records t))
  | Ns_proto.Sync_pull since ->
    let fresh =
      Ntcs_util.sorted_bindings ~compare:Addr.compare t.db
      |> List.filter_map (fun (_, r) ->
             if r.r_stamp > since then Some (r.r_stamp, entry_of_record r) else None)
    in
    Ns_proto.R_sync fresh
  | Ns_proto.Sync_push entries ->
    List.iter (merge_entry t) entries;
    Ns_proto.R_ok

(* The Name Server's resolver answers from its own database: no pings here —
   a fault inside the server's own sends must not recurse into more sends. *)
let local_resolver t =
  {
    Router.rv_resolve =
      (fun addr ->
        match Hashtbl.find_opt t.db addr with
        | Some r -> Ok (entry_of_record r)
        | None -> Error Errors.Unknown_address);
    rv_gateways = (fun () -> Ok (List.map entry_of_record (gateway_records t)));
    rv_forward =
      (fun addr ->
        match Hashtbl.find_opt t.db addr with
        | None -> Error Errors.Unknown_address
        | Some old -> (
          match find_replacement t old with
          | Some fresh -> Ok (Some fresh.r_addr)
          | None -> Ok None));
  }

(* Body of the Name Server process. Spawn with [World.spawn]. [fixed] are
   the pre-agreed physical addresses every ComMod's well-known table points
   at (§3.4). *)
let serve ?fixed t () =
  let commod =
    Commod.bind_with_resolver ?fixed t.node
      ~name:(Printf.sprintf "name-server.%d" t.server_id)
      ~resolver:(local_resolver t)
  in
  (* The server's address is well known: no registration, just adopt it. *)
  Nd_layer.set_my_addr (Commod.nd commod) t.wk_addr;
  t.commod <- Some commod;
  (* Self-entry, so lookups and liveness checks can see the server itself. *)
  db_insert t
    {
      r_name = "name-server";
      r_addr = t.wk_addr;
      r_phys = List.map Ntcs_ipcs.Phys_addr.to_string (Nd_layer.my_listen_addrs (Commod.nd commod));
      r_nets = Node.my_nets t.node;
      r_order = Proto.order_to_int (Node.my_order t.node);
      r_attrs = [ ("service", "name-server") ];
      r_alive = true;
      r_stamp = Node.now t.node;
    };
  t.running <- true;
  if t.peers <> [] then pull_sync t;
  let lcm = Commod.lcm commod in
  while t.running do
    match Lcm_layer.recv lcm with
    | Error _ -> ()
    | Ok env -> (
      if env.Lcm_layer.app_tag = Ns_proto.app_tag then begin
        match Ns_proto.unpack_request env.Lcm_layer.data with
        | Error m ->
          Node.record t.node ~cat:"ns.bad_request" ~actor:"name-server" m
        | Ok req ->
          let resp = handle_request t ~commod req in
          if env.Lcm_layer.conv <> 0 then
            ignore
              (Lcm_layer.reply lcm env ~app_tag:Ns_proto.app_tag
                 (Ntcs_wire.Convert.payload_raw (Ns_proto.pack_response resp)))
      end)
  done

let stop t = t.running <- false

(* Bulk-load bindings straight into the database, bypassing the protocol:
   benches populate 10^6-name databases this way (registering each over the
   wire would drown the measurement in transport costs). *)
let preload t names =
  let stamp = Node.now t.node in
  List.iter
    (fun (name, attrs) ->
      let addr = fresh_addr t in
      db_insert t
        {
          r_name = name;
          r_addr = addr;
          r_phys = [];
          r_nets = [];
          r_order = 0;
          r_attrs = attrs;
          r_alive = true;
          r_stamp = stamp;
        })
    names

let db_size t = Hashtbl.length t.db

let dump t =
  (* Keys are the record addresses, so sorted bindings are already in
     address order. *)
  List.map (fun (_, r) -> entry_of_record r)
    (Ntcs_util.sorted_bindings ~compare:Addr.compare t.db)
