(* The communication module (§2.1): "Each application process must bind with
   a passive communication module (ComMod), which is the only aspect of the
   NTCS visible to the application. To the application, the ComMod is the
   NTCS."

   [bind] assembles the internal layers bottom-up — ND, IP, LCM, NSP — wires
   the recursive couplings (the IP-layer's routing oracle and the LCM-layer's
   fault oracle both go through the NSP-layer, which itself sends through
   the LCM-layer), preloads the well-known address tables (§3.4), registers
   the module's name, and upgrades the self-assigned TAdd to the UAdd the
   naming service returns.

   The Name Server itself binds with [bind_with_resolver], supplying a
   resolver backed by its own database instead of the NSP-layer: the naming
   service is an application on the Nucleus, used by the Nucleus. *)

open Ntcs_sim

type t = {
  node : Node.t;
  nd : Nd_layer.t;
  ip : Ip_layer.t;
  lcm : Lcm_layer.t;
  nsp : Nsp_layer.t option; (* absent on the Name Server's own ComMods *)
  resolver : Router.resolver;
  name : string;
  mutable registered : Addr.t option;
  mutable closed : bool;
}

let node t = t.node
let nd t = t.nd
let ip t = t.ip
let lcm t = t.lcm
let name t = t.name
let resolver t = t.resolver

let nsp_exn t =
  match t.nsp with
  | Some nsp -> nsp
  | None -> invalid_arg "Commod: this ComMod has no NSP-layer (name server?)"

let my_addr t = Nd_layer.my_addr t.nd

let is_registered t = t.registered <> None

let resolver_of_nsp nsp =
  {
    Router.rv_resolve = (fun addr -> Nsp_layer.resolve nsp addr);
    rv_gateways = (fun () -> Nsp_layer.gateways nsp);
    rv_forward = (fun addr -> Nsp_layer.forward_query nsp addr);
  }

(* Assemble the layer stack. Must be called from within the owning process
   (the ND-layer spawns its helpers on the caller's machine and the exit
   hook attaches to the caller). *)
let assemble node ~name ?allowed_nets ?fixed ~resolver_of () =
  let nd = Nd_layer.create node ~owner:name ?allowed_nets ?fixed () in
  (* §3.4: well-known addresses into the ComMod address tables. *)
  List.iter
    (fun wk -> Nd_layer.cache_phys nd wk.Node.wk_addr wk.Node.wk_phys)
    node.Node.config.Node.well_known;
  let ip = Ip_layer.create node nd in
  let lcm = Lcm_layer.create node nd ip in
  let nsp, resolver = resolver_of lcm in
  Ip_layer.set_plan_oracle ip (fun dst -> Router.plan node nd resolver ~dst);
  Lcm_layer.set_fault_oracle lcm resolver.Router.rv_forward;
  let t =
    { node; nd; ip; lcm; nsp; resolver; name; registered = None; closed = false }
  in
  (* Module death must close its channels so peers' ND-layers detect it. *)
  Sched.on_exit (Node.sched node) (Sched.self (Node.sched node)) (fun _ ->
      if not t.closed then begin
        t.closed <- true;
        Lcm_layer.shutdown lcm
      end);
  t

(* The registration step of §3.2: send name + attributes + communication
   resources to the naming service, receive the UAdd, and replace the TAdd. *)
let register t ~attrs =
  match t.nsp with
  | None -> Error (Errors.Internal "cannot register: no NSP-layer")
  | Some nsp -> (
    let nets =
      match t.nd.Nd_layer.allowed_nets with
      | Some nets -> nets
      | None -> Node.my_nets t.node
    in
    match
      Nsp_layer.register nsp ~name:t.name
        ~phys:(Nd_layer.my_listen_addrs t.nd)
        ~nets ~order:(Node.my_order t.node) ~attrs
    with
    | Error _ as e -> e
    | Ok addr ->
      Nd_layer.set_my_addr t.nd addr;
      t.registered <- Some addr;
      Node.record t.node ~cat:"commod.registered" ~actor:t.name (Addr.to_string addr);
      Ok addr)

let bind ?(attrs = []) ?allowed_nets ?fixed ?(register_name = true) node ~name =
  let t =
    assemble node ~name ?allowed_nets ?fixed
      ~resolver_of:(fun lcm ->
        let nsp = Nsp_layer.create ~owner:name node lcm in
        (* Reconfiguration-driven invalidation (§3.5): relocations the LCM
           fault handler learns retire/splice the NSP lookup caches. *)
        Lcm_layer.set_on_relocate lcm (fun ~old ~fresh ->
            Nsp_layer.note_relocated nsp ~old_addr:old ~fresh);
        (Some nsp, resolver_of_nsp nsp))
      ()
  in
  if register_name then begin
    match register t ~attrs with
    | Error e -> Error e
    | Ok _ -> Ok t
  end
  else Ok t

let bind_with_resolver ?allowed_nets ?fixed node ~name ~resolver =
  assemble node ~name ?allowed_nets ?fixed ~resolver_of:(fun _ -> (None, resolver)) ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match (t.registered, t.nsp) with
     | Some addr, Some nsp -> ignore (Nsp_layer.deregister nsp addr)
     | _ -> ());
    Lcm_layer.shutdown t.lcm
  end
