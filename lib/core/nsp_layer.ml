(* The Name Service Protocol layer (§2.4, §3).

   "The NSP-Layer is the single naming service access point for all layers
   within the ComMod. Its purpose is to fully isolate the ComMod from the
   naming service implementation."

   It talks to the Name Server with the ordinary LCM primitives — which is
   what forces the Nucleus to operate recursively (§3.1) — using the
   well-known name-server addresses from the node configuration to bootstrap
   (§3.4). With replicated name servers (§7) it simply fails over through
   the candidate list. Results are cached; the caches are what let the
   system keep running with the name server removed (§3.3, E1).

   Under a sharded naming plane (DESIGN.md §15) the caches become the
   versioned [Ntcs_naming.Ns_cache]: every entry remembers which shard
   answered and at which invalidation generation, requests for a name are
   routed owner-first through the pinned shard map, and generation
   observations piggybacked on versioned answers retire stale entries. A
   stale cache hit resolves to a miss plus a fresh lookup — never a
   delivery on the old circuit; §3.5 relocation events (forward queries,
   the LCM relocation hook) splice-repair cached names in place. *)

open Ntcs_wire
module Ns_cache = Ntcs_naming.Ns_cache
module Shard_map = Ntcs_naming.Shard_map

type t = {
  node : Node.t;
  lcm : Lcm_layer.t;
  rng : Ntcs_util.Rng.t; (* private stream for backoff jitter *)
  owner : string; (* actor name on ns.cache.* trace events *)
  candidates : Addr.t list; (* well-known NS addresses, primary first *)
  shard_map : Addr.t Shard_map.t option; (* pinned map; None = unsharded *)
  name_cache : (string, Addr.t) Ns_cache.t;
  entry_cache : (Addr.t, Ns_proto.entry) Ns_cache.t;
  mutable gw_cache : (Ns_proto.entry list * int) option;
  mutable last_good : Addr.t option; (* which replica answered last *)
}

let create ?(owner = "nsp") node lcm =
  let candidates =
    node.Node.config.Node.well_known
    |> List.filter (fun wk -> wk.Node.wk_is_name_server)
    |> List.map (fun wk -> wk.Node.wk_addr)
  in
  (match candidates with
   | ns :: _ -> Lcm_layer.set_ns_addr lcm ns
   | [] -> ());
  let shards = node.Node.config.Node.ns_shards in
  let shard_map =
    if Array.length shards > 1 then Some (Shard_map.make ~version:1 shards) else None
  in
  let nshards = max 1 (Array.length shards) in
  let capacity = node.Node.config.Node.ns_cache_capacity in
  {
    node;
    lcm;
    rng = Ntcs_util.Rng.split (Ntcs_sim.World.rng (Node.world node));
    owner;
    candidates;
    shard_map;
    name_cache = Ns_cache.create ~capacity ~nshards;
    entry_cache = Ns_cache.create ~capacity ~nshards;
    gw_cache = None;
    last_good = None;
  }

let metrics t = Node.metrics t.node

let ttl t = t.node.Node.config.Node.ns_cache_ttl_us

let sharded t = t.shard_map <> None

(* The cache-coherence trace (Check_naming): hit / stale / store / invalidate
   events, emitted only under a sharded naming plane so classic single-NS
   traces are unchanged. *)
let cache_event t cat detail =
  if sharded t then Node.record t.node ~cat ~actor:t.owner detail

let kv_detail kind key ~shard ~gen =
  Printf.sprintf "%s:%s shard %d gen %d" kind key shard gen

(* Fold a generation observation from a versioned answer into both caches'
   per-shard floors. Retired entries are invalidated lazily: they report
   Stale on their next touch, which [lookup]/[resolve] turn into a miss
   plus a fresh versioned lookup. The invalidate event's count is how
   many resident entries the new floor retired. *)
let note_generation t ~shard ~gen =
  if gen > 0 && gen > Ns_cache.floor t.name_cache ~shard then begin
    let dropped =
      Ns_cache.note_generation t.name_cache ~shard ~gen
      + Ns_cache.note_generation t.entry_cache ~shard ~gen
    in
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_invalidations";
    cache_event t "ns.cache.invalidate"
      (Printf.sprintf "shard %d floor %d dropped %d" shard gen dropped)
  end

(* Store an authoritative answer in [cache]. Observation first, then the
   store: the new entry must not be retired by its own generation. The
   recorded generation is the clamped one actually stored, so per-shard
   store generations are non-decreasing in the trace (Check_naming). *)
let store t cache key_str cache_key ~value ~kind ~shard ~gen =
  if ttl t > 0 then begin
    note_generation t ~shard ~gen;
    let stored_gen = max gen (Ns_cache.floor cache ~shard) in
    Ns_cache.store cache cache_key ~value ~shard ~gen ~expiry:(Node.now t.node + ttl t);
    cache_event t "ns.cache.store" (kv_detail kind key_str ~shard ~gen:stored_gen)
  end

let error_of_string = function
  | "unknown-name" -> Errors.Unknown_name
  | "unknown-address" -> Errors.Unknown_address
  | "destination-dead" -> Errors.Destination_dead
  | s -> Errors.Internal ("name server: " ^ s)

(* One NS round trip, failing over through the replica list. One failover
   pass is one attempt of [Node.config.ns_retry]: when the whole list fails
   with a transient error, the policy backs off and cycles again — an NS
   briefly unreachable mid-reconfiguration is not yet "unavailable". Server
   answers ([R_error ...]) are never retried: they are responses, not
   transport failures. [?prefer] puts one replica (the owning shard of the
   name being asked about) at the head of the pass, ahead of [last_good]. *)
let request_prefer ?prefer t (req : Ns_proto.request) =
  let payload = Convert.payload_raw (Ns_proto.pack_request req) in
  let started = Node.now t.node in
  let one_pass ~attempt =
    if attempt > 1 then Ntcs_util.Metrics.incr (metrics t) "nsp.retry_cycles";
    let front =
      match (prefer, t.last_good) with
      | Some p, Some g when not (Addr.equal p g) -> [ p; g ]
      | Some p, _ -> [ p ]
      | None, Some g -> [ g ]
      | None, None -> []
    in
    let order =
      front
      @ List.filter
          (fun c -> not (List.exists (Addr.equal c) front))
          t.candidates
    in
    let rec failover = function
      | [] -> Error Errors.Name_service_unavailable
      | ns :: rest -> (
        Ntcs_util.Metrics.incr (metrics t) "nsp.requests";
        match
          Lcm_layer.send_sync t.lcm ~dst:ns ~app_tag:Ns_proto.app_tag
            ~timeout_us:t.node.Node.config.Node.default_timeout_us payload
        with
        | Error _ when rest <> [] ->
          Ntcs_util.Metrics.incr (metrics t) "nsp.failovers";
          failover rest
        | Error _ -> Error Errors.Name_service_unavailable
        | Ok env -> (
          match Ns_proto.unpack_response env.Lcm_layer.data with
          | Error m -> Error (Errors.Bad_message m)
          | Ok (Ns_proto.R_error m) -> Error (error_of_string m)
          | Ok resp ->
            t.last_good <- Some ns;
            Lcm_layer.set_ns_addr t.lcm ns;
            Ok resp))
    in
    failover order
  in
  let result =
    Retry.run (Node.sched t.node) ~rng:t.rng t.node.Node.config.Node.ns_retry
      ~retryable:Errors.retryable one_pass
  in
  Ntcs_obs.Registry.observe (metrics t) "nsp.request_us" (Node.now t.node - started);
  result

let request t req = request_prefer t req

let protocol_error = Errors.Bad_message "unexpected name-server response"

(* --- the services the rest of the ComMod consumes --- *)

let register t ~name ~phys ~nets ~order ~attrs =
  let req =
    Ns_proto.Register
      {
        r_name = name;
        r_phys = List.map Ntcs_ipcs.Phys_addr.to_string phys;
        r_nets = nets;
        r_order = Proto.order_to_int order;
        r_attrs = attrs;
      }
  in
  let prefer = Option.map (fun m -> Shard_map.owner_of_name m name) t.shard_map in
  match request_prefer ?prefer t req with
  | Ok (Ns_proto.R_registered addr) -> Ok addr
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let lookup t name =
  match Ns_cache.find t.name_cache ~now:(Node.now t.node) name with
  | Ns_cache.Hit (addr, shard, gen) ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    cache_event t "ns.cache.hit" (kv_detail "name" name ~shard ~gen);
    Ok addr
  | (Ns_cache.Stale _ | Ns_cache.Miss) as outcome -> (
    (match outcome with
     | Ns_cache.Stale (_, shard, gen) ->
       (* The shard invalidated this generation: a miss plus a fresh
          lookup, never a delivery on the old circuit. *)
       Ntcs_util.Metrics.incr (metrics t) "nsp.cache_stale";
       cache_event t "ns.cache.stale" (kv_detail "name" name ~shard ~gen)
     | _ -> Ntcs_util.Metrics.incr (metrics t) "nsp.cache_misses");
    match t.shard_map with
    | Some m -> (
      match
        request_prefer ~prefer:(Shard_map.owner_of_name m name) t
          (Ns_proto.Lookup_v (name, 0))
      with
      | Ok (Ns_proto.R_addr_v (addr, shard, gen)) ->
        store t t.name_cache name name ~value:addr ~kind:"name" ~shard ~gen;
        Ok addr
      | Ok _ -> Error protocol_error
      | Error _ as e -> e)
    | None -> (
      match request t (Ns_proto.Lookup name) with
      | Ok (Ns_proto.R_addr addr) ->
        store t t.name_cache name name ~value:addr ~kind:"name" ~shard:0 ~gen:0;
        Ok addr
      | Ok _ -> Error protocol_error
      | Error _ as e -> e))

let lookup_attrs t attrs =
  match request t (Ns_proto.Lookup_attrs attrs) with
  | Ok (Ns_proto.R_entries es) -> Ok es
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let resolve t addr =
  let key = Addr.to_string addr in
  match Ns_cache.find t.entry_cache ~now:(Node.now t.node) addr with
  | Ns_cache.Hit (entry, shard, gen) ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    cache_event t "ns.cache.hit" (kv_detail "addr" key ~shard ~gen);
    Ok entry
  | (Ns_cache.Stale _ | Ns_cache.Miss) as outcome -> (
    (match outcome with
     | Ns_cache.Stale (_, shard, gen) ->
       Ntcs_util.Metrics.incr (metrics t) "nsp.cache_stale";
       cache_event t "ns.cache.stale" (kv_detail "addr" key ~shard ~gen)
     | _ -> Ntcs_util.Metrics.incr (metrics t) "nsp.cache_misses");
    if sharded t then begin
      match request t (Ns_proto.Resolve_v addr) with
      | Ok (Ns_proto.R_entry_v (e, shard, gen)) ->
        store t t.entry_cache key addr ~value:e ~kind:"addr" ~shard ~gen;
        Ok e
      | Ok _ -> Error protocol_error
      | Error _ as err -> err
    end
    else begin
      match request t (Ns_proto.Resolve addr) with
      | Ok (Ns_proto.R_entry e) ->
        store t t.entry_cache key addr ~value:e ~kind:"addr" ~shard:0 ~gen:0;
        Ok e
      | Ok _ -> Error protocol_error
      | Error _ as err -> err
    end)

(* §3.5 splice repair: [old_addr] was just proved stale (an address fault,
   or a relocation the LCM learned). Drop its cached entry and re-point
   every cached name that resolved to it at the replacement, on the shard
   the dead entry carried — the repaired binding is unversioned (it did not
   come from an owner's stamped answer), so its generation is just the
   shard's current floor. *)
let splice t ~old_addr ~fresh =
  let dead_names = ref [] in
  Ns_cache.iter t.name_cache (fun name a ~shard ~gen:_ ->
      if Addr.equal a old_addr then dead_names := (name, shard) :: !dead_names);
  let dropped = Ns_cache.invalidate_if t.entry_cache (fun a _ -> Addr.equal a old_addr) in
  (match (!dead_names, dropped) with
   | [], 0 -> ()
   | _ ->
     cache_event t "ns.cache.invalidate"
       (Printf.sprintf "splice addr:%s dropped %d"
          (Addr.to_string old_addr)
          (dropped + List.length !dead_names)));
  match fresh with
  | None ->
    List.iter (fun (name, _) -> Ns_cache.remove t.name_cache name) !dead_names
  | Some fresh ->
    List.iter
      (fun (name, shard) ->
        store t t.name_cache name name ~value:fresh ~kind:"name" ~shard ~gen:0)
      (List.rev !dead_names)

(* Address-fault query (§3.5): never cached — the whole point is that the
   cached state just proved stale. A located replacement splice-repairs the
   name cache so names resolving to the dead address heal. *)
let forward_query t addr =
  Ns_cache.remove t.entry_cache addr;
  match request t (Ns_proto.Forward addr) with
  | Ok (Ns_proto.R_forward r) ->
    (match r with
     | Some fresh -> splice t ~old_addr:addr ~fresh:(Some fresh)
     | None -> Ns_cache.remove t.entry_cache addr);
    Ok r
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

(* The LCM relocation hook (reconfiguration-driven invalidation): the
   address-fault handler just patched its forwarding table, so every cached
   answer naming [old] is wrong from this instant. *)
let note_relocated t ~old_addr ~fresh = splice t ~old_addr ~fresh:(Some fresh)

let gateways t =
  match t.gw_cache with
  | Some (entries, stamp) when ttl t > 0 && Node.now t.node <= stamp ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    Ok entries
  | Some _ | None -> (
    match request t Ns_proto.List_gateways with
    | Ok (Ns_proto.R_entries es) ->
      t.gw_cache <- Some (es, Node.now t.node + ttl t);
      Ok es
    | Ok _ -> Error protocol_error
    | Error _ as e -> e)

let deregister t addr =
  match request t (Ns_proto.Deregister addr) with
  | Ok Ns_proto.R_ok ->
    splice t ~old_addr:addr ~fresh:None;
    Ok ()
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let invalidate t =
  Ns_cache.clear t.name_cache;
  Ns_cache.clear t.entry_cache;
  t.gw_cache <- None

let cache_stats t =
  let h1, s1, m1 = Ns_cache.stats t.name_cache in
  let h2, s2, m2 = Ns_cache.stats t.entry_cache in
  (h1 + h2, s1 + s2, m1 + m2)

let name_server_addrs t = t.candidates
