(* The Name Service Protocol layer (§2.4, §3).

   "The NSP-Layer is the single naming service access point for all layers
   within the ComMod. Its purpose is to fully isolate the ComMod from the
   naming service implementation."

   It talks to the Name Server with the ordinary LCM primitives — which is
   what forces the Nucleus to operate recursively (§3.1) — using the
   well-known name-server addresses from the node configuration to bootstrap
   (§3.4). With replicated name servers (§7) it simply fails over through
   the candidate list. Results are cached with a TTL; the caches are what
   let the system keep running with the name server removed (§3.3, E1). *)

open Ntcs_wire

type t = {
  node : Node.t;
  lcm : Lcm_layer.t;
  rng : Ntcs_util.Rng.t; (* private stream for backoff jitter *)
  candidates : Addr.t list; (* well-known NS addresses, primary first *)
  name_cache : (string, Addr.t * int) Hashtbl.t; (* value, expiry (virtual us) *)
  entry_cache : (Addr.t, Ns_proto.entry * int) Hashtbl.t;
  mutable gw_cache : (Ns_proto.entry list * int) option;
  mutable last_good : Addr.t option; (* which replica answered last *)
}

let create node lcm =
  let candidates =
    node.Node.config.Node.well_known
    |> List.filter (fun wk -> wk.Node.wk_is_name_server)
    |> List.map (fun wk -> wk.Node.wk_addr)
  in
  (match candidates with
   | ns :: _ -> Lcm_layer.set_ns_addr lcm ns
   | [] -> ());
  {
    node;
    lcm;
    rng = Ntcs_util.Rng.split (Ntcs_sim.World.rng (Node.world node));
    candidates;
    name_cache = Hashtbl.create 32;
    entry_cache = Hashtbl.create 32;
    gw_cache = None;
    last_good = None;
  }

let metrics t = Node.metrics t.node

let ttl t = t.node.Node.config.Node.ns_cache_ttl_us

(* TTL 0 disables caching outright (every entry is born expired). *)
let expired t stamp = ttl t = 0 || Node.now t.node > stamp

let error_of_string = function
  | "unknown-name" -> Errors.Unknown_name
  | "unknown-address" -> Errors.Unknown_address
  | "destination-dead" -> Errors.Destination_dead
  | s -> Errors.Internal ("name server: " ^ s)

(* One NS round trip, failing over through the replica list. One failover
   pass is one attempt of [Node.config.ns_retry]: when the whole list fails
   with a transient error, the policy backs off and cycles again — an NS
   briefly unreachable mid-reconfiguration is not yet "unavailable". Server
   answers ([R_error ...]) are never retried: they are responses, not
   transport failures. *)
let request t (req : Ns_proto.request) =
  let payload = Convert.payload_raw (Ns_proto.pack_request req) in
  let started = Node.now t.node in
  let one_pass ~attempt =
    if attempt > 1 then Ntcs_util.Metrics.incr (metrics t) "nsp.retry_cycles";
    let order =
      match t.last_good with
      | Some a -> a :: List.filter (fun c -> not (Addr.equal c a)) t.candidates
      | None -> t.candidates
    in
    let rec failover = function
      | [] -> Error Errors.Name_service_unavailable
      | ns :: rest -> (
        Ntcs_util.Metrics.incr (metrics t) "nsp.requests";
        match
          Lcm_layer.send_sync t.lcm ~dst:ns ~app_tag:Ns_proto.app_tag
            ~timeout_us:t.node.Node.config.Node.default_timeout_us payload
        with
        | Error _ when rest <> [] ->
          Ntcs_util.Metrics.incr (metrics t) "nsp.failovers";
          failover rest
        | Error _ -> Error Errors.Name_service_unavailable
        | Ok env -> (
          match Ns_proto.unpack_response env.Lcm_layer.data with
          | Error m -> Error (Errors.Bad_message m)
          | Ok (Ns_proto.R_error m) -> Error (error_of_string m)
          | Ok resp ->
            t.last_good <- Some ns;
            Lcm_layer.set_ns_addr t.lcm ns;
            Ok resp))
    in
    failover order
  in
  let result =
    Retry.run (Node.sched t.node) ~rng:t.rng t.node.Node.config.Node.ns_retry
      ~retryable:Errors.retryable one_pass
  in
  Ntcs_obs.Registry.observe (metrics t) "nsp.request_us" (Node.now t.node - started);
  result

let protocol_error = Errors.Bad_message "unexpected name-server response"

(* --- the services the rest of the ComMod consumes --- *)

let register t ~name ~phys ~nets ~order ~attrs =
  match
    request t
      (Ns_proto.Register
         {
           r_name = name;
           r_phys = List.map Ntcs_ipcs.Phys_addr.to_string phys;
           r_nets = nets;
           r_order = Proto.order_to_int order;
           r_attrs = attrs;
         })
  with
  | Ok (Ns_proto.R_registered addr) -> Ok addr
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let lookup t name =
  match Hashtbl.find_opt t.name_cache name with
  | Some (addr, stamp) when not (expired t stamp) ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    Ok addr
  | Some _ | None -> (
    match request t (Ns_proto.Lookup name) with
    | Ok (Ns_proto.R_addr addr) ->
      Hashtbl.replace t.name_cache name (addr, Node.now t.node + ttl t);
      Ok addr
    | Ok _ -> Error protocol_error
    | Error _ as e -> e)

let lookup_attrs t attrs =
  match request t (Ns_proto.Lookup_attrs attrs) with
  | Ok (Ns_proto.R_entries es) -> Ok es
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let resolve t addr =
  match Hashtbl.find_opt t.entry_cache addr with
  | Some (entry, stamp) when not (expired t stamp) ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    Ok entry
  | Some _ | None -> (
    match request t (Ns_proto.Resolve addr) with
    | Ok (Ns_proto.R_entry e) ->
      Hashtbl.replace t.entry_cache addr (e, Node.now t.node + ttl t);
      Ok e
    | Ok _ -> Error protocol_error
    | Error _ as e -> e)

(* Address-fault query (§3.5): never cached — the whole point is that the
   cached state just proved stale. *)
let forward_query t addr =
  Hashtbl.remove t.entry_cache addr;
  match request t (Ns_proto.Forward addr) with
  | Ok (Ns_proto.R_forward r) ->
    (match r with
     | Some fresh ->
       (* Patch the name cache so names resolving to the dead address heal.
          A sorted snapshot both fixes the walk order and makes the
          mid-iteration [replace] safe without copying the table. *)
       List.iter
         (fun (name, (a, _)) ->
           if Addr.equal a addr then
             Hashtbl.replace t.name_cache name (fresh, Node.now t.node + ttl t))
         (Ntcs_util.sorted_bindings t.name_cache)
     | None -> ());
    Ok r
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let gateways t =
  match t.gw_cache with
  | Some (entries, stamp) when not (expired t stamp) ->
    Ntcs_util.Metrics.incr (metrics t) "nsp.cache_hits";
    Ok entries
  | Some _ | None -> (
    match request t Ns_proto.List_gateways with
    | Ok (Ns_proto.R_entries es) ->
      t.gw_cache <- Some (es, Node.now t.node + ttl t);
      Ok es
    | Ok _ -> Error protocol_error
    | Error _ as e -> e)

let deregister t addr =
  match request t (Ns_proto.Deregister addr) with
  | Ok Ns_proto.R_ok -> Ok ()
  | Ok _ -> Error protocol_error
  | Error _ as e -> e

let invalidate t =
  Hashtbl.reset t.name_cache;
  Hashtbl.reset t.entry_cache;
  t.gw_cache <- None

let name_server_addrs t = t.candidates
