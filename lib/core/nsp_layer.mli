(** The Name Service Protocol layer (§2.4, §3): "the single naming service
    access point for all layers within the ComMod. Its purpose is to fully
    isolate the ComMod from the naming service implementation."

    Requests ride the ordinary LCM primitives — which is what forces the
    Nucleus to operate recursively (§3.1). Bootstrap goes through the
    well-known name-server addresses (§3.4); with replicated servers (§7)
    requests fail over down the candidate list. Results are cached with a
    TTL: the caches are what let the system run with the name server removed
    (§3.3, experiment E1). *)

type t

val create : Node.t -> Lcm_layer.t -> t

val request : t -> Ns_proto.request -> (Ns_proto.response, Errors.t) result
(** One name-server round trip with replica failover. *)

val register :
  t ->
  name:string ->
  phys:Ntcs_ipcs.Phys_addr.t list ->
  nets:int list ->
  order:Ntcs_wire.Endian.order ->
  attrs:(string * string) list ->
  (Addr.t, Errors.t) result
(** §3.2 registration: returns the assigned UAdd. *)

val lookup : t -> string -> (Addr.t, Errors.t) result
(** Logical name → UAdd, cached. *)

val lookup_attrs : t -> (string * string) list -> (Ns_proto.entry list, Errors.t) result
(** Attribute-based naming (§7 successor): all live entries matching every
    given attribute. *)

val resolve : t -> Addr.t -> (Ns_proto.entry, Errors.t) result
(** UAdd → full entry (physical addresses, networks, representation),
    cached. *)

val forward_query : t -> Addr.t -> (Addr.t option, Errors.t) result
(** Address-fault query (§3.5), never cached. [Some fresh] = replacement
    located (name cache healed as a side effect); [None] = original still
    alive, reconnect. *)

val gateways : t -> (Ns_proto.entry list, Errors.t) result
(** Registered gateway ComMods — the centralized topology (§4.2). Cached. *)

val deregister : t -> Addr.t -> (unit, Errors.t) result

val invalidate : t -> unit
(** Drop every cache (test/experiment hook). *)

val name_server_addrs : t -> Addr.t list
