(** The Name Service Protocol layer (§2.4, §3): "the single naming service
    access point for all layers within the ComMod. Its purpose is to fully
    isolate the ComMod from the naming service implementation."

    Requests ride the ordinary LCM primitives — which is what forces the
    Nucleus to operate recursively (§3.1). Bootstrap goes through the
    well-known name-server addresses (§3.4); with replicated servers (§7)
    requests fail over down the candidate list. Results are cached with a
    TTL: the caches are what let the system run with the name server removed
    (§3.3, experiment E1).

    Under a sharded naming plane (DESIGN.md §15) — [Node.config.ns_shards]
    non-trivial — the caches are the versioned {!Ntcs_naming.Ns_cache}:
    entries carry the answering shard and its invalidation generation,
    lookups route owner-first through the pinned shard map, and generation
    observations piggybacked on versioned answers retire stale entries. A
    stale hit resolves to a miss plus a fresh lookup, never a delivery on
    the old circuit; relocation events splice-repair cached names. *)

type t

val create : ?owner:string -> Node.t -> Lcm_layer.t -> t
(** [owner] is the actor stamped on [ns.cache.*] trace events (the binding
    ComMod's name; defaults to ["nsp"]). *)

val request : t -> Ns_proto.request -> (Ns_proto.response, Errors.t) result
(** One name-server round trip with replica failover. *)

val register :
  t ->
  name:string ->
  phys:Ntcs_ipcs.Phys_addr.t list ->
  nets:int list ->
  order:Ntcs_wire.Endian.order ->
  attrs:(string * string) list ->
  (Addr.t, Errors.t) result
(** §3.2 registration: returns the assigned UAdd. *)

val lookup : t -> string -> (Addr.t, Errors.t) result
(** Logical name → UAdd, cached. *)

val lookup_attrs : t -> (string * string) list -> (Ns_proto.entry list, Errors.t) result
(** Attribute-based naming (§7 successor): all live entries matching every
    given attribute. *)

val resolve : t -> Addr.t -> (Ns_proto.entry, Errors.t) result
(** UAdd → full entry (physical addresses, networks, representation),
    cached. *)

val forward_query : t -> Addr.t -> (Addr.t option, Errors.t) result
(** Address-fault query (§3.5), never cached. [Some fresh] = replacement
    located (name cache splice-repaired as a side effect); [None] =
    original still alive, reconnect. *)

val note_relocated : t -> old_addr:Addr.t -> fresh:Addr.t -> unit
(** Reconfiguration-driven invalidation: the LCM learned that [old_addr]
    relocated to [fresh] (§3.5). Cached entries for [old_addr] are dropped
    and cached names pointing at it are splice-repaired in place. Wired to
    {!Lcm_layer.set_on_relocate} by [Commod.bind]. *)

val gateways : t -> (Ns_proto.entry list, Errors.t) result
(** Registered gateway ComMods — the centralized topology (§4.2). Cached. *)

val deregister : t -> Addr.t -> (unit, Errors.t) result

val invalidate : t -> unit
(** Drop every cache (test/experiment hook). *)

val cache_stats : t -> int * int * int
(** [(hits, stale, misses)] over both lookup caches since creation. *)

val name_server_addrs : t -> Addr.t list
