(** Deployment builder: a declarative description of machines, networks and
    infrastructure becomes a running NTCS installation — name server(s) up,
    prime gateways bridging networks, and a shared node configuration whose
    well-known table (§3.4) lets every later module bootstrap. The
    "hypothetical machine configuration" of the paper's figures, as a
    library. *)

open Ntcs_sim

type t

val build :
  ?world:World.t ->
  ?seed:int ->
  ?config:World.Config.t ->
  ?tweak:(Node.config -> Node.config) ->
  nets:(string * Net.kind) list ->
  machines:(string * Machine.mtype * string list) list ->
  ?clocks:(string * float * int) list ->
  ?gateways:(string * string * string list) list ->
  ns:string ->
  ?ns_replicas:string list ->
  unit ->
  t
(** [build ~nets ~machines ~ns ()] creates the world and spawns the
    infrastructure.
    - [machines]: (name, type, attached network names);
    - [clocks]: per-machine (name, drift ppm, offset µs);
    - [gateways]: (gateway name, hosting machine, bridged network names) —
      all prime (well-known);
    - [ns] / [ns_replicas]: machines hosting the name server(s);
    - [tweak] adjusts the node configuration (guards, timeouts, ablations);
    - [config] is the full {!World.Config} (fault plane, sanitizer, chooser,
      …) and wins over [seed], which remains as shorthand for a
      default-mode world on that seed;
    - [world] hosts the cluster on an existing world — a {!World.Par}
      shard, typically — and then [config]/[seed] are ignored entirely.

    Call {!settle} afterwards to let the infrastructure boot. *)

(** {1 Accessors} *)

val world : t -> World.t
val config : t -> Node.config
val metrics : t -> Ntcs_util.Metrics.t
val sched : t -> Sched.t
val net : t -> string -> Net.t
val machine : t -> string -> Machine.t
val net_id : t -> string -> Net.id
val name_servers : t -> Name_server.t list
val primary_ns : t -> Name_server.t
val gateway_list : t -> Gateway.t list

(** {1 Application modules} *)

val node_on : ?config:Node.config -> t -> string -> Node.t
(** Fresh per-process NTCS context on the named machine. *)

val spawn :
  ?config:Node.config -> t -> machine:string -> name:string -> (Node.t -> unit) -> Sched.pid
(** Spawn an application process; the body receives a fresh Node. *)

(** {1 Running and failure injection} *)

val run : ?until:int -> t -> unit

val settle : ?dt:int -> t -> unit
(** Advance virtual time by [dt] µs (default 2 s), executing everything
    due. *)

val crash : t -> string -> unit
(** Crash a machine: mark it down and kill its processes. *)

val partition : t -> string -> unit
(** Take a network down. *)

val heal : t -> string -> unit

val gateway_phys :
  t -> Machine.t -> idx:int -> net:Net.id -> Ntcs_ipcs.Phys_addr.t list
(** The fixed listening resources of a (gateway, network) pair — exposed for
    tests that construct gateways manually. *)
