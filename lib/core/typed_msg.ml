(* Typed messaging sugar over the byte-level ComMod interface.

   The paper's contract (§5.1): the application describes each message as a
   contiguous structure and supplies pack/unpack conversion functions; the
   NTCS decides per message whether to byte-copy the native image or apply
   the conversion. Describing the structure once as a {!Ntcs_wire.Layout.t}
   gives both representations: the image encoder renders the native memory
   image for this machine, and the packed codec is generated from the same
   definition (Schlegel's generator, [22]).

   Decoding trusts the mode flag in the header: image-mode data is
   reinterpreted with the *receiver's* native layout — safe precisely
   because the NTCS only chose image mode when the representations agree. *)

open Ntcs_wire

module type MSG = sig
  type t

  val app_tag : int
  val layout : Layout.t
  val to_values : t -> Layout.value list
  val of_values : Layout.value list -> t
end

let payload (type a) (module M : MSG with type t = a) commod (v : a) : Convert.payload =
  let order = Node.my_order (Commod.node commod) in
  let values () = M.to_values v in
  Convert.payload
    ~image:(fun () -> Layout.encode ~order M.layout (values ()))
    ~packed:(fun () -> Packed.run_pack (Packed.of_layout M.layout) (values ()))

let decode (type a) (module M : MSG with type t = a) commod (env : Ali_layer.envelope) :
    (a, Errors.t) result =
  let my_order = Node.my_order (Commod.node commod) in
  match env.Ali_layer.mode with
  | Convert.Image -> (
    match Layout.decode ~order:my_order M.layout env.Ali_layer.data with
    | values -> (
      match M.of_values values with
      | v -> Ok v
      | exception (Invalid_argument m | Failure m) -> Error (Errors.Bad_message m))
    | exception Layout.Layout_error m -> Error (Errors.Bad_message m))
  | Convert.Packed -> (
    match Packed.run_unpack (Packed.of_layout M.layout) env.Ali_layer.data with
    | values -> (
      match M.of_values values with
      | v -> Ok v
      | exception (Invalid_argument m | Failure m) -> Error (Errors.Bad_message m))
    | exception Packed.Unpack_error m -> Error (Errors.Bad_message m))

let send (type a) (module M : MSG with type t = a) commod ~dst (v : a) =
  Ali_layer.send commod ~dst ~app_tag:M.app_tag (payload (module M) commod v)

let send_dgram (type a) (module M : MSG with type t = a) commod ~dst (v : a) =
  Ali_layer.send_dgram commod ~dst ~app_tag:M.app_tag (payload (module M) commod v)

(* Synchronous call: send an [M] and decode the reply as an [R]. *)
let call (type a b) (module M : MSG with type t = a) (module R : MSG with type t = b) commod
    ~dst ?timeout_us (v : a) : (b, Errors.t) result =
  match
    Ali_layer.send_sync commod ~dst ~app_tag:M.app_tag ?timeout_us
      (payload (module M) commod v)
  with
  | Error _ as e -> e
  | Ok env -> decode (module R) commod env

let reply (type a) (module M : MSG with type t = a) commod env (v : a) =
  Ali_layer.reply commod env ~app_tag:M.app_tag (payload (module M) commod v)
