(* The Gateway module (§4).

   One portable piece of code, instantiated once per gateway machine,
   bridging any set of networks: "the same Gateway module [can] be used for
   all networks and machines. The ability for each Gateway module to
   communicate with different networks is handled by the independent ComMods
   with which it binds. Each ComMod is bound with an ND-Layer designed for
   one of the networks."

   Gateways splice pairs of circuit legs by label. They never talk to each
   other outside the circuit chain (§4.2); every piece of topology knowledge
   they need comes from the naming service, with which they register like
   any application module (§4.1). Prime gateways adopt pre-assigned
   well-known addresses instead of registering (§3.4); all others register
   and are found through the naming service. *)

(* lint: allow-file layering(Commod) — gateways bind full ComMods and
   register through the naming service exactly like application modules
   (§4.1); only their splicing runs at the IP level. *)

open Ntcs_sim
open Ntcs_ipcs

type leg = {
  lg_net : Net.id;
  lg_commod : Commod.t;
  lg_circuit : Nd_layer.circuit;
  lg_label : int;
}

type t = {
  node : Node.t;
  gw_name : string;
  nets : Net.id list;
  prime_addrs : (Net.id * Addr.t) list; (* pre-assigned well-known addresses *)
  prime_phys : (Net.id * Phys_addr.t list) list; (* fixed listening resources *)
  mutable commods : (Net.id * Commod.t) list;
  events : (Net.id * Commod.t * Ip_layer.gw_event) Sched.Mailbox.mb;
  (* (net of receiving commod, circuit id, label) -> the other leg *)
  splices : (Net.id * int * int, leg) Hashtbl.t;
  mutable running : bool;
}

let create node ~name ~nets ?(prime_addrs = []) ?(prime_phys = []) () =
  {
    node;
    gw_name = name;
    nets;
    prime_addrs;
    prime_phys;
    commods = [];
    events = Sched.Mailbox.create (Node.sched node);
    splices = Hashtbl.create 32;
    running = true;
  }

let metrics t = Node.metrics t.node
let trace t ~cat detail = Node.record t.node ~cat ~actor:t.gw_name detail

let spans_csv t = String.concat "," (List.map string_of_int t.nets)

let leg_key (net : Net.id) (circuit : Nd_layer.circuit) label =
  (net, circuit.Nd_layer.cid, label)

let send_reject commod circuit ~(h : Proto.header) reason =
  let reject =
    Proto.make_header ~kind:Proto.Ivc_reject ~src:(Nd_layer.my_addr (Commod.nd commod))
      ~dst:h.Proto.src ~ivc:h.Proto.ivc ~payload_len:0 ()
  in
  ignore
    (Nd_layer.send_frame circuit reject
       (Ntcs_wire.Packed.run_pack Proto.reason_codec reason))

(* Establish the next leg of a chained IVC and splice it to the inbound one.
   Runs in its own worker process: it performs naming-service lookups and a
   blocking channel open, and the gateway must keep forwarding meanwhile. *)
let handle_open t (in_net : Net.id) (in_commod : Commod.t) in_circuit (h : Proto.header)
    (req : Proto.ivc_open) =
  let in_key = leg_key in_net in_circuit h.Proto.ivc in
  if Hashtbl.mem t.splices in_key then begin
    (* Duplicated IVC_OPEN (the fault plane can replay control frames): the
       splice already exists and the original open already answered —
       splice repair must be idempotent, so drop the replay instead of
       opening a second outbound leg over the live one. *)
    Ntcs_util.Metrics.incr (metrics t) "gw.duplicate_opens";
    trace t ~cat:"gw.dup_open"
      (Printf.sprintf "net%d label %d dst=%s" in_net h.Proto.ivc
         (Addr.to_string req.Proto.final_dst))
  end
  else begin
  if h.Proto.hops >= 255 then begin
    (* The 8-bit hop field is full: a route this deep is a loop (E7), and
       encoding hops+1 would be rejected rather than silently wrapped. *)
    Ntcs_util.Metrics.incr (metrics t) "gw.hop_overflow";
    send_reject in_commod in_circuit ~h "hop limit exceeded"
  end
  else begin
  let target =
    match req.Proto.route with [] -> req.Proto.final_dst | next :: _ -> next
  in
  let resolver = Commod.resolver in_commod in
  match Router.locate t.node resolver target with
  | Error e ->
    Ntcs_util.Metrics.incr (metrics t) "gw.open_failures";
    send_reject in_commod in_circuit ~h (Errors.to_string e)
  | Ok (phys_candidates, target_nets) -> (
    (* Pick the outbound ComMod: one of ours attached to a network the
       target is on. *)
    let out =
      List.find_opt (fun (net, _) -> List.mem net target_nets) t.commods
    in
    match out with
    | None ->
      Ntcs_util.Metrics.incr (metrics t) "gw.open_failures";
      send_reject in_commod in_circuit ~h "no outbound network"
    | Some (out_net, out_commod) -> (
      let out_nd = Commod.nd out_commod in
      let circuit_result =
        match Nd_layer.find_circuit out_nd target with
        | Some c -> Ok c
        | None ->
          let rec try_phys = function
            | [] -> Error Errors.Unreachable
            | phys :: rest -> (
              match Nd_layer.open_circuit out_nd ~phys with
              | Ok c -> Ok c
              | Error _ when rest <> [] -> try_phys rest
              | Error _ as e -> e)
          in
          try_phys phys_candidates
      in
      match circuit_result with
      | Error e ->
        Ntcs_util.Metrics.incr (metrics t) "gw.open_failures";
        send_reject in_commod in_circuit ~h (Errors.to_string e)
      | Ok out_circuit ->
        if Hashtbl.mem t.splices in_key then begin
          (* A worker for a replayed copy of this open won the race while we
             were blocked on naming / channel setup: same answer as above. *)
          Ntcs_util.Metrics.incr (metrics t) "gw.duplicate_opens";
          trace t ~cat:"gw.dup_open"
            (Printf.sprintf "net%d label %d dst=%s (lost race)" in_net h.Proto.ivc
               (Addr.to_string req.Proto.final_dst))
        end
        else begin
          let out_label = Registry.fresh_label t.node.Node.ipcs in
          Hashtbl.replace t.splices in_key
            { lg_net = out_net; lg_commod = out_commod; lg_circuit = out_circuit;
              lg_label = out_label };
          Hashtbl.replace t.splices
            (leg_key out_net out_circuit out_label)
            { lg_net = in_net; lg_commod = in_commod; lg_circuit = in_circuit;
              lg_label = h.Proto.ivc };
          let body =
            Ntcs_wire.Packed.run_pack Proto.ivc_open_codec
              { req with Proto.route = (match req.Proto.route with [] -> [] | _ :: r -> r) }
          in
          let fwd =
            { h with Proto.dst = target; ivc = out_label; hops = h.Proto.hops + 1 }
          in
          Ntcs_util.Metrics.incr (metrics t) "gw.opens";
          trace t ~cat:"gw.splice"
            (Printf.sprintf "net%d label %d <-> net%d label %d dst=%s" in_net h.Proto.ivc
               out_net out_label (Addr.to_string req.Proto.final_dst));
          match Nd_layer.send_frame out_circuit fwd body with
          | Ok () -> ()
          | Error e ->
            Hashtbl.remove t.splices in_key;
            Hashtbl.remove t.splices (leg_key out_net out_circuit out_label);
            send_reject in_commod in_circuit ~h (Errors.to_string e)
        end))
  end
  end

let remove_splice_pair t in_key (out_leg : leg) =
  (* Idempotent: a duplicated IVC_CLOSE (the fault plane can replay control
     frames), the forward-error path and the close path may all tear down
     the same splice — only the first call does anything, so [gw.close] is
     traced exactly once per splice and a replayed close can never tear
     down a successor splice reusing the labels. Traced so the lifecycle
     checker (ntcs_check) can prove no frame is ever forwarded across a
     splice after its teardown (§4.3 ordering). *)
  if Hashtbl.mem t.splices in_key then begin
    let in_net, _, in_label = in_key in
    trace t ~cat:"gw.close"
      (Printf.sprintf "net%d label %d <-> net%d label %d" in_net in_label out_leg.lg_net
         out_leg.lg_label);
    Hashtbl.remove t.splices in_key;
    Hashtbl.remove t.splices (leg_key out_leg.lg_net out_leg.lg_circuit out_leg.lg_label)
  end

(* Forward one frame across a splice, label-swapped. Messages can sit in a
   dead leg's queue and be lost during reconfiguration — "for all practical
   purposes, this is indistinguishable from the issues already discussed due
   to dynamic reconfiguration" (§4.3).

   The forward is zero-copy: only the two affected shift-mode header words
   (label, hop count) are patched in place; the frame's bytes otherwise
   leave exactly as they arrived. [h] is the pre-patch header snapshot —
   patches build a fresh memoised record, so the error path below still
   sees the inbound label and source. *)
let handle_frame t (net : Net.id) (_commod : Commod.t) circuit (view : Proto.Frame.t) =
  let h = Proto.Frame.header view in
  let key = leg_key net circuit h.Proto.ivc in
  match Hashtbl.find_opt t.splices key with
  | None -> Ntcs_util.Metrics.incr (metrics t) "gw.orphan_frames"
  | Some out ->
    if h.Proto.hops >= 255 then begin
      (* Hop field full: this frame is looping (E7). Dropping it here is
         the loop protection the 8-bit counter exists for — wrapping to a
         small value would let it circulate forever. *)
      Ntcs_util.Metrics.incr (metrics t) "gw.hop_overflow";
      trace t ~cat:"gw.hop_overflow"
        (Printf.sprintf "net%d label %d kind=%s dst=%s" net h.Proto.ivc
           (Proto.kind_to_string h.Proto.kind)
           (Addr.to_string h.Proto.dst))
    end
    else begin
      Proto.Frame.patch_ivc view out.lg_label;
      Proto.Frame.patch_hops view (h.Proto.hops + 1);
      Ntcs_util.Metrics.incr (metrics t) "gw.forwards";
      (* Every forwarding decision is traced so the §4.2 invariant — gateways
         never talk to each other — is checkable from event logs (lint R3)
         instead of assumed. *)
      trace t ~cat:"gw.forward"
        (Printf.sprintf "net%d label %d -> net%d label %d kind=%s dst=%s span=%s" net
           h.Proto.ivc out.lg_net out.lg_label
           (Proto.kind_to_string h.Proto.kind)
           (Addr.to_string h.Proto.dst)
           (Ntcs_obs.Span.to_string h.Proto.span));
      if not (Ntcs_obs.Span.is_none h.Proto.span) then
        World.span (Node.world t.node) ~ctx:h.Proto.span ~phase:Ntcs_obs.Span.I
          ~name:"gw.forward" ~actor:t.gw_name
          (Printf.sprintf "net%d->net%d" net out.lg_net);
      (match Nd_layer.forward_view out.lg_circuit view with
       | Ok () -> ()
       | Error _ ->
         (* Outbound leg just died: tear the chain down toward the inbound
            side. The reader on the dead leg will handle the other side. *)
         let close =
           Proto.make_header ~kind:Proto.Ivc_close
             ~src:(Nd_layer.my_addr (Commod.nd out.lg_commod))
             ~dst:h.Proto.src ~ivc:h.Proto.ivc ~payload_len:0 ()
         in
         ignore
           (Nd_layer.send_frame circuit close
              (Ntcs_wire.Packed.run_pack Proto.reason_codec "leg failed"));
         remove_splice_pair t key out);
      if h.Proto.kind = Proto.Ivc_close then remove_splice_pair t key out
    end

(* A whole circuit died: cascade IVC_CLOSE across every splice riding it
   (§4.3), in both directions. *)
let handle_down t (net : Net.id) circuit =
  (* Cascade in (net, circuit, label) order: peers see the closes in a
     reproducible sequence. *)
  let affected =
    Ntcs_util.sorted_bindings t.splices
    |> List.filter (fun ((k_net, k_cid, _), _) -> k_net = net && k_cid = circuit.Nd_layer.cid)
  in
  List.iter
    (fun (key, (out : leg)) ->
      let close =
        Proto.make_header ~kind:Proto.Ivc_close
          ~src:(Nd_layer.my_addr (Commod.nd out.lg_commod))
          ~dst:(Nd_layer.my_addr (Commod.nd out.lg_commod)) (* matched by label, not address *)
          ~ivc:out.lg_label ~payload_len:0 ()
      in
      ignore
        (Nd_layer.send_frame out.lg_circuit close
           (Ntcs_wire.Packed.run_pack Proto.reason_codec "upstream circuit failed"));
      Ntcs_util.Metrics.incr (metrics t) "gw.cascade_closes";
      remove_splice_pair t key out)
    affected

(* The gateway process body. *)
let serve t () =
  (* Bind one ComMod per bridged network. *)
  t.commods <-
    List.map
      (fun net ->
        let name = Printf.sprintf "gw/%s@%d" t.gw_name net in
        let fixed = List.assoc_opt net t.prime_phys in
        match Commod.bind t.node ~name ~allowed_nets:[ net ] ?fixed ~register_name:false with
        | Ok c -> (net, c)
        | Error e -> failwith ("gateway bind failed: " ^ Errors.to_string e))
      t.nets;
  (* Prime gateways adopt their well-known addresses; others register with
     the naming service, carrying their topology as attributes. *)
  List.iter
    (fun (net, commod) ->
      (match List.assoc_opt net t.prime_addrs with
      | Some addr -> Nd_layer.set_my_addr (Commod.nd commod) addr
      | None ->
        let attrs =
          [
            (Router.attr_gateway, "yes");
            (Router.attr_net, string_of_int net);
            (Router.attr_spans, spans_csv t);
            ("service", "gateway/" ^ t.gw_name);
          ]
        in
        (match Commod.register commod ~attrs with
         | Ok _ -> ()
         | Error e ->
           trace t ~cat:"gw.register_fail"
             (Printf.sprintf "net %d: %s" net (Errors.to_string e))));
      (* Publish each ComMod's settled address: the R3 trace checker learns
         the set of gateway addresses from these events. *)
      trace t ~cat:"gw.addr" (Addr.to_string (Nd_layer.my_addr (Commod.nd commod))))
    t.commods;
  (* Route every ComMod's gateway events into one mailbox. *)
  List.iter
    (fun (net, commod) ->
      Ip_layer.set_gateway_handler (Commod.ip commod) (fun ev ->
          Sched.Mailbox.send t.events (net, commod, ev)))
    t.commods;
  trace t ~cat:"gw.up" (Printf.sprintf "bridging nets [%s]" (spans_csv t));
  while t.running do
    match Sched.Mailbox.recv t.events with
    | None -> ()
    | Some (net, commod, ev) -> (
      match ev with
      | Ip_layer.Gw_open (circuit, h, req) ->
        (* Worker process: the open blocks on naming and channel setup. *)
        ignore
          (World.spawn (Node.world t.node) ~machine:(Node.machine t.node)
             ~name:(Printf.sprintf "%s/open-worker" t.gw_name) (fun () ->
               handle_open t net commod circuit h req))
      | Ip_layer.Gw_frame (circuit, view) ->
        ignore (handle_frame t net commod circuit view)
      | Ip_layer.Gw_down circuit -> handle_down t net circuit)
  done

let stop t = t.running <- false

let splice_count t = Hashtbl.length t.splices

let commods t = t.commods
