(** The one retry/backoff policy mechanism for the whole ComMod.

    Layers declare a {!policy} and call {!run} instead of hand-rolling
    retry loops: bounded attempts, exponential backoff with a ceiling, and
    seeded jitter drawn from the caller's generator, so recovery is both
    bounded and deterministic under the world seed. [ntcs_lint] flags
    sleeps in ad-hoc loops outside this module. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  base_delay_us : int;  (** backoff before the second attempt *)
  max_delay_us : int;  (** backoff ceiling *)
  jitter_us : int;  (** uniform seeded jitter added to each backoff *)
}

val policy :
  ?max_attempts:int ->
  ?base_delay_us:int ->
  ?max_delay_us:int ->
  ?jitter_us:int ->
  unit ->
  policy
(** Defaults: 3 attempts, 50 ms base, 800 ms ceiling, 20 ms jitter. *)

val no_retry : policy
(** Exactly one attempt — for primitives that must not recover (datagrams,
    liveness probes). *)

val delay_us : ?rng:Ntcs_util.Rng.t -> policy -> attempt:int -> int
(** Backoff after the [attempt]th failure: [base * 2^(attempt-1)], capped
    at [max_delay_us], plus a jitter draw when [rng] is given. *)

val run :
  Ntcs_sim.Sched.t ->
  ?rng:Ntcs_util.Rng.t ->
  ?deadline_us:int ->
  policy ->
  retryable:('e -> bool) ->
  ?on_retry:(attempt:int -> delay_us:int -> 'e -> unit) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** [run sched p ~retryable f] calls [f ~attempt:1], [f ~attempt:2], ...
    until one succeeds, an error fails [retryable], attempts are exhausted,
    or the next backoff would sleep past [deadline_us] (virtual absolute
    time) — the last error is returned as-is in every failure case.
    [on_retry] fires before each backoff sleep, for counters and traces.
    Blocking: call from inside a process. *)
