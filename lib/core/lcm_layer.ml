(* The Logical Connection Maintenance layer (§2.2, §3.5).

   "Its primary function is to relocate modules which may have moved, and to
   recover from broken connections, though it also provides a connectionless
   protocol. No explicit open or close primitives are provided at the
   Nucleus interface; messages are simply sent/received directly to/from the
   desired destinations, with the underlying IVCs being established as
   needed."

   The address-fault path follows the paper exactly: a failed send closes
   the channel, the local forwarding-address table is consulted, then the
   fault handler asks the NSP-layer for a forwarding UAdd; a hit is entered
   in the forwarding table and the send proceeds "in exactly the same manner
   as during an initial connection". The §6.3 pathology — the fault handler
   recursing through the NSP when the broken circuit *is* the name server's —
   is reproduced verbatim, together with the paper's patch (the LCM
   special-cases the name server's address, "although it also should not
   know of the Name Server"); [Node.config.ns_fault_guard] switches between
   the two behaviours.

   One dispatcher process per ComMod pumps ND events through the IP-layer
   and routes application traffic into the inbox / reply ivars. *)

open Ntcs_sim
open Ntcs_wire

(* Re-export of the one shared envelope record (see [Std_if.envelope]):
   the labels are usable both bare and as [Lcm_layer.src] etc. *)
type envelope = Std_if.envelope = {
  src : Addr.t;
  kind : [ `Data | `Dgram ];
  app_tag : int;
  mode : Convert.mode;
  src_order : Endian.order;
  data : Bytes.t;
  conv : int; (* nonzero: the sender is blocked in send_sync awaiting a reply *)
  seq : int; (* sender's LCM sequence number *)
  span : Ntcs_obs.Span.ctx; (* causal identity of the send that produced it *)
}

type t = {
  node : Node.t;
  nd : Nd_layer.t;
  ip : Ip_layer.t;
  rng : Ntcs_util.Rng.t; (* private stream for backoff jitter *)
  track : Recursion.t;
  app_inbox : envelope Sched.Mailbox.mb;
  stash : envelope Queue.t; (* set aside by tag-filtered receives *)
  waiting : (int, reply_slot) Hashtbl.t; (* conversation id -> waiter *)
  circuits : (Addr.t, circ) Hashtbl.t; (* logical-circuit span per destination *)
  forwarding : (Addr.t, Addr.t) Hashtbl.t; (* old UAdd -> replacement UAdd *)
  reestablish : (Addr.t, int) Hashtbl.t; (* per-destination circuit reestablishments *)
  last_seq : (Addr.t, int) Hashtbl.t; (* per-source high-water mark (§3.5 audit) *)
  mutable fault_oracle : (Addr.t -> (Addr.t option, Errors.t) result) option;
  mutable ns_addr : Addr.t option; (* who the name server is, for the guard *)
  mutable next_conv : int;
  mutable next_seq : int;
  mutable monitor_suppress : bool;
  mutable dispatcher : Sched.pid option;
  mutable on_peer_down : (Addr.t -> unit) option;
  mutable on_relocate : (old:Addr.t -> fresh:Addr.t -> unit) option;
  (* §3.5 reconfiguration hook: fires when the address-fault handler learns
     a relocation and patches the forwarding table — the NSP-layer listens
     to invalidate/splice its lookup caches (DESIGN.md §15). *)
  mutable running : bool;
  mutable deepest : int; (* recursion high-water mark already traced *)
  counters : counters;
}

and counters = {
  mutable c_sent : int;
  mutable c_received : int;
  mutable c_sync_calls : int;
  mutable c_faults : int;
  mutable c_retries : int;
  mutable c_backoff_us : int;
}

and reply_slot = { rs_dst : Addr.t; rs_ivar : (envelope, Errors.t) result Sched.Ivar.ivar }

(* One logical circuit for span purposes: this ComMod speaking to one
   destination UAdd, from first use until peer-down/shutdown. Relocation
   keeps the circuit (the logical connection survives, §3.5); a later
   reconnection after a close gets a fresh world-unique id. *)
and circ = { circ_id : int; mutable circ_seq : int }

let metrics t = Node.metrics t.node
let trace t ~cat detail = Node.record t.node ~cat ~actor:t.nd.Nd_layer.owner detail

(* --- the causal-span plane ---

   Spans are allocated here, at the entry to the Nucleus (the ALI delegates
   straight down): a world-unique circuit id per destination plus a
   per-message sequence id, combined into the [Span.ctx] that rides the
   protocol header through IP, ND, every gateway splice and every
   fault-plane retry. Ids come from the world's registry, whose allocation
   order is fixed by the deterministic scheduler. *)

let span_event t ~ctx ~phase ~name detail =
  World.span (Node.world t.node) ~ctx ~phase ~name ~actor:t.nd.Nd_layer.owner detail

let circuit_of t ~dst =
  match Hashtbl.find_opt t.circuits dst with
  | Some c -> c
  | None ->
    let id = Ntcs_obs.Registry.fresh_circuit (metrics t) in
    let c = { circ_id = id; circ_seq = 0 } in
    Hashtbl.replace t.circuits dst c;
    span_event t
      ~ctx:(Ntcs_obs.Span.make ~circuit:id ~seq:0)
      ~phase:Ntcs_obs.Span.B ~name:"lcm.circuit"
      (Printf.sprintf "dst=%s" (Addr.to_string dst));
    c

let next_ctx t ~dst =
  let c = circuit_of t ~dst in
  c.circ_seq <- c.circ_seq + 1;
  Ntcs_obs.Span.make ~circuit:c.circ_id ~seq:c.circ_seq

let close_circuit t ~reason dst =
  match Hashtbl.find_opt t.circuits dst with
  | Some c ->
    Hashtbl.remove t.circuits dst;
    span_event t
      ~ctx:(Ntcs_obs.Span.make ~circuit:c.circ_id ~seq:0)
      ~phase:Ntcs_obs.Span.E ~name:"lcm.circuit" reason
  | None -> ()

let close_all_circuits t ~reason =
  List.iter (fun (dst, _) -> close_circuit t ~reason dst)
    (Ntcs_util.sorted_bindings t.circuits)

(* Bracket one ALI-boundary primitive in a message span: B before the work,
   E (with the outcome) after, and the elapsed sim time into the layer's
   latency histogram ("lcm.send_us", "lcm.send_sync_us", ...). *)
let spanned t ~dst ~name f =
  let ctx = next_ctx t ~dst in
  let t0 = Node.now t.node in
  span_event t ~ctx ~phase:Ntcs_obs.Span.B ~name
    (Printf.sprintf "dst=%s" (Addr.to_string dst));
  let r =
    (* An exception here is the owner dying mid-operation (e.g. the §6.3
       divergence's simulated stack overflow): mark the span crashed so the
       B/E pairing survives, then let the crash propagate. *)
    try f ctx
    with exn ->
      span_event t ~ctx ~phase:Ntcs_obs.Span.E ~name "crashed";
      raise exn
  in
  Ntcs_obs.Registry.observe (metrics t) (name ^ "_us") (Node.now t.node - t0);
  span_event t ~ctx ~phase:Ntcs_obs.Span.E ~name
    (match r with Ok _ -> "ok" | Error e -> "err=" ^ Errors.to_string e);
  r

let set_fault_oracle t f = t.fault_oracle <- Some f
let set_ns_addr t a = t.ns_addr <- Some a
let set_on_peer_down t f = t.on_peer_down <- Some f
let set_on_relocate t f = t.on_relocate <- Some f

let fresh_conv t =
  let c = t.next_conv in
  t.next_conv <- c + 1;
  c

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* §6 / lint R3: make the recursion ceiling observable from the trace. One
   event per new high-water mark, so the steady state stays quiet and
   [Lint_trace.recursion_bounded] can assert the §6.3 bound from logs. *)
let note_depth t =
  let d = Recursion.depth t.track in
  if d > t.deepest then begin
    t.deepest <- d;
    trace t ~cat:"lcm.depth" (string_of_int d)
  end

let tracked t f =
  Recursion.with_entry t.track (fun () ->
      note_depth t;
      f ())

(* --- the monitor / time-service hooks (§6.1) --- *)

let monitor_event t kind detail =
  if t.node.Node.config.Node.monitoring && not t.monitor_suppress then begin
    match t.node.Node.hooks.Node.on_event with
    | None -> ()
    | Some hook ->
      (* "control passes to the LCM-layer, which generates a time stamp for
         monitor data. A distributed time primitive is called, which may
         recursively call on the ComMod ..." — the hook and the timestamp
         function are installed by the DRTS and may both re-enter us. *)
      let ts =
        if t.node.Node.config.Node.timestamps then t.node.Node.hooks.Node.timestamp ()
        else Node.now t.node
      in
      hook kind (Printf.sprintf "t=%d %s" ts detail)
  end

(* --- the address-fault handler (§3.5 / §6.3) --- *)

let rec follow_forwarding t addr n =
  if n <= 0 then addr
  else begin
    match Hashtbl.find_opt t.forwarding addr with
    | Some next -> follow_forwarding t next (n - 1)
    | None -> addr
  end

let is_ns t addr = match t.ns_addr with Some a -> Addr.equal a addr | None -> false

(* Handle an address fault for [dst]. Returns the address to retry with
   (possibly the same, after clearing state for a clean reconnect), or an
   error if the destination is gone for good. *)
let address_fault t ~dst =
  t.counters.c_faults <- t.counters.c_faults + 1;
  Ntcs_util.Metrics.incr (metrics t) "lcm.addr_faults";
  trace t ~cat:"lcm.fault" (Addr.to_string dst);
  (* The channel just failed, so the local tables were already consulted to
     no avail (§3.5). Next stop: the fault handler proper. *)
  match Hashtbl.find_opt t.forwarding dst with
  | Some fwd -> Ok fwd
  | None ->
    if is_ns t dst && t.node.Node.config.Node.ns_fault_guard then begin
      (* The paper's patch: the only layer that could stop the NS fault
         recursion is us, "although it also should not know of the Name
         Server". Reconnect through the well-known address instead of asking
         the NSP (which would have to reach the name server over the very
         circuit that just died). *)
      Ntcs_util.Metrics.incr (metrics t) "lcm.ns_guard_hits";
      Ip_layer.forget_peer t.ip dst;
      Ok dst
    end
    else begin
      match t.fault_oracle with
      | None -> Error Errors.Destination_dead
      | Some oracle -> (
        Ntcs_util.Metrics.incr (metrics t) "lcm.fault_queries";
        match oracle dst with
        | Error e -> Error e
        | Ok (Some replacement) ->
          Hashtbl.replace t.forwarding dst replacement;
          Ntcs_util.Metrics.incr (metrics t) "lcm.relocations";
          trace t ~cat:"lcm.relocate"
            (Printf.sprintf "%s -> %s" (Addr.to_string dst) (Addr.to_string replacement));
          (match t.on_relocate with
           | Some f -> f ~old:dst ~fresh:replacement
           | None -> ());
          Ok replacement
        | Ok None ->
          (* Original module still alive: "it will attempt to reestablish
             what appears to be a broken communication link." *)
          Ip_layer.forget_peer t.ip dst;
          Ok dst)
    end

(* --- sending --- *)

(* Datagrams are connectionless (no recovery, §2.2); PINGs are liveness
   probes and must report on the probed address itself — transparently
   relocating a probe would make every dead module look alive. *)
let recoverable_kind = function
  | Proto.Dgram | Proto.Ping -> false
  | Proto.Data | Proto.Reply | Proto.Pong | Proto.Hello | Proto.Hello_ack | Proto.Ivc_open
  | Proto.Ivc_accept | Proto.Ivc_reject | Proto.Ivc_close -> true

(* The default deadline for every primitive; an explicit [?timeout_us]
   overrides it. It bounds the whole operation — retry backoff included. *)
let deadline_of t timeout_us =
  let budget =
    match timeout_us with
    | Some v -> v
    | None -> t.node.Node.config.Node.default_timeout_us
  in
  Node.now t.node + budget

let note_reestablish t dst =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.reestablish dst) in
  Hashtbl.replace t.reestablish dst (n + 1)

(* One send under the configured retry policy (§3.5): the first attempt goes
   to [dst] (after following any forwarding chain); every later attempt runs
   the address-fault handler first — forwarding table, §6.3 guard, fault
   oracle — and reopens the circuit to whatever address it yields, with
   exponential seeded backoff between attempts. *)
let send_frame ?deadline_us ?(span = Ntcs_obs.Span.none) t ~dst ~kind ~conv ~app_tag payload =
  let recoverable = recoverable_kind kind in
  let policy =
    if recoverable then t.node.Node.config.Node.send_retry else Retry.no_retry
  in
  let cur = ref (if recoverable then follow_forwarding t dst 4 else dst) in
  let retries = ref 0 in
  let attempt_once ~attempt =
    let target =
      if attempt = 1 then Ok !cur
      else begin
        match address_fault t ~dst:!cur with
        | Error _ as e -> e
        | Ok dst' ->
          cur := dst';
          note_reestablish t dst';
          Ok dst'
        end
    in
    match target with
    | Error _ as e -> e
    | Ok dst -> (
      match Ip_layer.get_or_open t.ip ~dst with
      | Error _ as e -> e
      | Ok ivc -> Ip_layer.send t.ip ivc ~kind ~seq:(fresh_seq t) ~conv ~app_tag ~span payload)
  in
  let r =
    Retry.run (Node.sched t.node) ~rng:t.rng ?deadline_us policy ~retryable:Errors.retryable
      ~on_retry:(fun ~attempt ~delay_us e ->
        incr retries;
        t.counters.c_retries <- t.counters.c_retries + 1;
        t.counters.c_backoff_us <- t.counters.c_backoff_us + delay_us;
        Ntcs_util.Metrics.incr (metrics t) "lcm.retries";
        Ntcs_obs.Registry.observe (metrics t) "lcm.retry_backoff_us" delay_us;
        trace t ~cat:"lcm.retry"
          (Printf.sprintf "%s attempt=%d backoff=%dus err=%s" (Addr.to_string !cur) attempt
             delay_us (Errors.to_string e)))
      attempt_once
  in
  Ntcs_obs.Registry.observe (metrics t) "lcm.retries_per_send" !retries;
  r

let send t ~dst ?(app_tag = 0) ?timeout_us payload =
  tracked t (fun () ->
      spanned t ~dst ~name:"lcm.send" (fun span ->
          monitor_event t "send" (Addr.to_string dst);
          let deadline_us = deadline_of t timeout_us in
          let r =
            send_frame ~deadline_us ~span t ~dst ~kind:Proto.Data ~conv:0 ~app_tag payload
          in
          (match r with
           | Ok () ->
             t.counters.c_sent <- t.counters.c_sent + 1;
             Ntcs_util.Metrics.incr (metrics t) "lcm.sends"
           | Error _ -> Ntcs_util.Metrics.incr (metrics t) "lcm.send_errors");
          r))

(* Connectionless protocol: single attempt, no relocation, no recovery. *)
let send_dgram t ~dst ?(app_tag = 0) ?timeout_us payload =
  tracked t (fun () ->
      spanned t ~dst ~name:"lcm.send_dgram" (fun span ->
          let deadline_us = deadline_of t timeout_us in
          let r =
            send_frame ~deadline_us ~span t ~dst ~kind:Proto.Dgram ~conv:0 ~app_tag payload
          in
          (match r with
           | Ok () -> Ntcs_util.Metrics.incr (metrics t) "lcm.dgrams"
           | Error _ -> Ntcs_util.Metrics.incr (metrics t) "lcm.dgram_errors");
          r))

let await_reply t ~dst ~conv ~timeout_us =
  let ivar = Sched.Ivar.create (Node.sched t.node) in
  Hashtbl.replace t.waiting conv { rs_dst = dst; rs_ivar = ivar };
  let result =
    match Sched.Ivar.read ~timeout:timeout_us ivar with
    | Some r -> r
    | None -> Error Errors.Timeout
  in
  Hashtbl.remove t.waiting conv;
  result

(* Synchronous send/receive/reply conversation (§1.3). *)
let send_sync t ~dst ?(app_tag = 0) ?timeout_us payload =
  tracked t (fun () ->
      spanned t ~dst ~name:"lcm.send_sync" (fun span ->
          monitor_event t "send-sync" (Addr.to_string dst);
          (* One deadline for the whole conversation: send retries, their
             backoff, and the reply wait all draw on the same budget. The
             whole conversation shares one span ctx — the reply comes back
             carrying it, so the round trip is one slice in the export. *)
          let deadline_us = deadline_of t timeout_us in
          let conv = fresh_conv t in
          match
            send_frame ~deadline_us ~span t ~dst ~kind:Proto.Data ~conv ~app_tag payload
          with
          | Error _ as e -> e
          | Ok () ->
            t.counters.c_sent <- t.counters.c_sent + 1;
            t.counters.c_sync_calls <- t.counters.c_sync_calls + 1;
            Ntcs_util.Metrics.incr (metrics t) "lcm.sync_sends";
            await_reply t ~dst ~conv ~timeout_us:(max 0 (deadline_us - Node.now t.node))))

let reply t (env : envelope) ?(app_tag = 0) ?timeout_us payload =
  tracked t (fun () ->
      if env.conv = 0 then Error (Errors.Internal "reply to a message that expects none")
      else
        spanned t ~dst:env.src ~name:"lcm.reply" (fun span ->
            monitor_event t "reply" (Addr.to_string env.src);
            let deadline_us = deadline_of t timeout_us in
            send_frame ~deadline_us ~span t ~dst:env.src ~kind:Proto.Reply ~conv:env.conv
              ~app_tag payload))

(* Liveness probe: PING / PONG with a conversation id. Used by the naming
   service to decide whether an old UAdd is "really inactive" (§3.5). *)
let ping t ~dst ~timeout_us =
  tracked t (fun () ->
      spanned t ~dst ~name:"lcm.ping" (fun span ->
          let conv = fresh_conv t in
          match
            send_frame ~deadline_us:(Node.now t.node + timeout_us) ~span t ~dst
              ~kind:Proto.Ping ~conv ~app_tag:0
              (Convert.payload_raw Bytes.empty)
          with
          | Error _ as e -> e
          | Ok () -> (
            match await_reply t ~dst ~conv ~timeout_us with
            | Ok _ -> Ok ()
            | Error _ as e -> e)))

(* Take the first stashed envelope accepted by [want], if any. *)
let take_stashed t want =
  let n = Queue.length t.stash in
  let found = ref None in
  for _ = 1 to n do
    let env = Queue.pop t.stash in
    if !found = None && want env then found := Some env else Queue.push env t.stash
  done;
  !found

let recv ?timeout_us ?app_tag t =
  tracked t (fun () ->
      let want env =
        match app_tag with None -> true | Some tag -> env.app_tag = tag
      in
      let deadline = Option.map (fun d -> Node.now t.node + d) timeout_us in
      let rec pull () =
        let timeout =
          match deadline with
          | None -> None
          | Some dl -> Some (max 0 (dl - Node.now t.node))
        in
        match timeout with
        | Some 0 -> Error Errors.Timeout
        | _ -> (
          match Sched.Mailbox.recv ?timeout t.app_inbox with
          | None -> Error Errors.Timeout
          | Some env ->
            if want env then Ok env
            else begin
              (* Not for this receive: set it aside for a later one. *)
              Queue.push env t.stash;
              pull ()
            end)
      in
      let result =
        match take_stashed t want with Some env -> Ok env | None -> pull ()
      in
      (match result with
       | Ok env ->
         t.counters.c_received <- t.counters.c_received + 1;
         monitor_event t "recv" (Addr.to_string env.src)
       | Error _ -> ());
      result)

let try_recv t =
  match take_stashed t (fun _ -> true) with
  | Some env -> Some env
  | None -> Sched.Mailbox.recv_opt t.app_inbox

(* --- the dispatcher --- *)

let envelope_of t (d : Ip_layer.delivery) kind =
  ignore t;
  {
    src = d.Ip_layer.del_src;
    kind;
    app_tag = d.Ip_layer.del_hdr.Proto.app_tag;
    mode = d.Ip_layer.del_hdr.Proto.mode;
    src_order = d.Ip_layer.del_hdr.Proto.src_order;
    data = d.Ip_layer.del_payload;
    conv = d.Ip_layer.del_hdr.Proto.conv;
    seq = d.Ip_layer.del_hdr.Proto.seq;
    span = d.Ip_layer.del_hdr.Proto.span;
  }

(* Audit per-source sequencing: in a static environment the LCM must never
   see reordering or duplication; during reconfiguration gaps are expected
   (dropped messages) but regressions still are not. *)
let note_seq t src seq =
  match Hashtbl.find_opt t.last_seq src with
  | Some last when seq <= last ->
    Ntcs_util.Metrics.incr (metrics t) "lcm.seq_regressions"
  | Some last ->
    if seq > last + 1 then Ntcs_util.Metrics.incr (metrics t) "lcm.seq_gaps";
    Hashtbl.replace t.last_seq src seq
  | None -> Hashtbl.replace t.last_seq src seq

let handle_delivery t (d : Ip_layer.delivery) =
  let h = d.Ip_layer.del_hdr in
  (match h.Proto.kind with
   | Proto.Data | Proto.Dgram | Proto.Reply -> note_seq t d.Ip_layer.del_src h.Proto.seq
   | Proto.Ping | Proto.Pong | Proto.Hello | Proto.Hello_ack | Proto.Ivc_open
   | Proto.Ivc_accept | Proto.Ivc_reject | Proto.Ivc_close -> ());
  (* The frame's span ctx crossed the whole stack to get here: mark the
     hand-off to the application and sample the inbox depth it joins. *)
  let deliver_span () =
    if not (Ntcs_obs.Span.is_none h.Proto.span) then
      span_event t ~ctx:h.Proto.span ~phase:Ntcs_obs.Span.I ~name:"lcm.deliver"
        (Printf.sprintf "kind=%s" (Proto.kind_to_string h.Proto.kind))
  in
  let to_inbox env =
    Sched.Mailbox.send t.app_inbox env;
    Ntcs_obs.Registry.observe (metrics t) "lcm.inbox_depth"
      (Sched.Mailbox.length t.app_inbox)
  in
  match h.Proto.kind with
  | Proto.Data ->
    deliver_span ();
    to_inbox (envelope_of t d `Data)
  | Proto.Dgram ->
    deliver_span ();
    to_inbox (envelope_of t d `Dgram)
  | Proto.Reply -> (
    deliver_span ();
    match Hashtbl.find_opt t.waiting h.Proto.conv with
    | Some slot -> ignore (Sched.Ivar.try_fill slot.rs_ivar (Ok (envelope_of t d `Data)))
    | None -> Ntcs_util.Metrics.incr (metrics t) "lcm.orphan_replies")
  | Proto.Ping ->
    (* Answer from the dispatcher itself: liveness must not depend on the
       application draining its inbox. *)
    let pong =
      (* The pong echoes the ping's span ctx, so the probe's round trip is
         attributable to the prober's circuit. *)
      Proto.make_header ~kind:Proto.Pong ~src:(Nd_layer.my_addr t.nd) ~dst:d.Ip_layer.del_src
        ~conv:h.Proto.conv ~span:h.Proto.span ~payload_len:0 ()
    in
    (match Ip_layer.find_ivc t.ip d.Ip_layer.del_src with
     | Some ivc -> ignore (Nd_layer.send_frame ivc.Ip_layer.circuit { pong with Proto.ivc = ivc.Ip_layer.label } Bytes.empty)
     | None -> ())
  | Proto.Pong -> (
    match Hashtbl.find_opt t.waiting h.Proto.conv with
    | Some slot -> ignore (Sched.Ivar.try_fill slot.rs_ivar (Ok (envelope_of t d `Data)))
    | None -> ())
  | Proto.Hello | Proto.Hello_ack | Proto.Ivc_open | Proto.Ivc_accept | Proto.Ivc_reject
  | Proto.Ivc_close ->
    (* The IP-layer never delivers these. *)
    assert false

let peers_down t peers =
  List.iter
    (fun peer ->
      (* The connectivity epoch to this peer is over: close its circuit
         span. A later send reconnects under a fresh circuit id. *)
      close_circuit t ~reason:"peer-down" peer;
      (* Fail conversations that were waiting on this peer: their reply may
         never come. The caller's fault path takes it from there. Waiters
         wake in conversation-id order, never in table order. *)
      List.iter
        (fun (_, slot) ->
          if Addr.equal slot.rs_dst peer then
            ignore (Sched.Ivar.try_fill slot.rs_ivar (Error Errors.Circuit_failed)))
        (Ntcs_util.sorted_bindings t.waiting);
      match t.on_peer_down with Some f -> f peer | None -> ())
    peers

let dispatcher_loop t =
  while t.running do
    match Nd_layer.next_event t.nd with
    | None -> () (* no timeout given: unreachable *)
    | Some ev -> (
      match Ip_layer.handle_event t.ip ev with
      | Ip_layer.Consumed -> ()
      | Ip_layer.Down peers -> peers_down t peers
      | Ip_layer.Deliver d -> handle_delivery t d)
  done

let create node nd ip =
  let t =
    {
      node;
      nd;
      ip;
      (* Split off the world stream at creation: creation order is
         deterministic, so each ComMod gets a reproducible jitter stream. *)
      rng = Ntcs_util.Rng.split (World.rng (Node.world node));
      track = Recursion.create ~limit:node.Node.config.Node.recursion_limit ();
      app_inbox = Sched.Mailbox.create (Node.sched node);
      stash = Queue.create ();
      waiting = Hashtbl.create 16;
      circuits = Hashtbl.create 8;
      forwarding = Hashtbl.create 8;
      reestablish = Hashtbl.create 8;
      last_seq = Hashtbl.create 16;
      fault_oracle = None;
      ns_addr = None;
      next_conv = 1;
      next_seq = 1;
      monitor_suppress = false;
      dispatcher = None;
      on_peer_down = None;
      on_relocate = None;
      running = true;
      deepest = 0;
      counters =
        {
          c_sent = 0;
          c_received = 0;
          c_sync_calls = 0;
          c_faults = 0;
          c_retries = 0;
          c_backoff_us = 0;
        };
    }
  in
  let pid =
    World.spawn (Node.world node) ~machine:(Node.machine node)
      ~name:(Printf.sprintf "%s/lcm-dispatch" nd.Nd_layer.owner) (fun () -> dispatcher_loop t)
  in
  t.dispatcher <- Some pid;
  (* However this ComMod dies, its open circuit spans get their E event:
     "shutdown" on a clean stop, "crashed" when the machine went down under
     us (the fault plane killing the dispatcher while we were running) or
     the dispatcher itself raised. The span invariant — every opened circuit
     closed or marked crashed — rests on this hook. *)
  Sched.on_exit (Node.sched node) pid (fun status ->
      match status with
      | Sched.Crashed _ -> close_all_circuits t ~reason:"crashed"
      | Sched.Was_killed ->
        close_all_circuits t ~reason:(if t.running then "crashed" else "shutdown")
      | Sched.Exited -> close_all_circuits t ~reason:"shutdown");
  t

let shutdown t =
  t.running <- false;
  (match t.dispatcher with
   | Some pid -> Sched.kill (Node.sched t.node) pid
   | None -> ());
  close_all_circuits t ~reason:"shutdown";
  Nd_layer.shutdown t.nd

(* Run [f] with monitor reporting suppressed: how the DRTS services send
   their own traffic without recursing forever (§6.1: "time correction and
   monitoring are disabled here, to avoid the obvious infinite recursion"). *)
let without_monitoring t f =
  let saved = t.monitor_suppress in
  t.monitor_suppress <- true;
  Fun.protect ~finally:(fun () -> t.monitor_suppress <- saved) f

let recursion_tracker t = t.track
let forwarding_entries t = Hashtbl.length t.forwarding

type stats = {
  st_sent : int;  (* successful sends, sync included *)
  st_received : int;  (* envelopes handed to the application *)
  st_sync_calls : int;
  st_faults : int;  (* address faults handled *)
  st_forwarding : int;  (* live forwarding-table entries *)
  st_retries : int;  (* send attempts beyond the first *)
  st_backoff_us : int;  (* total virtual time spent in backoff sleeps *)
  st_reestablished : (string * int) list;
      (* per-destination circuit reestablishments, sorted by address *)
}

let stats t =
  {
    st_sent = t.counters.c_sent;
    st_received = t.counters.c_received;
    st_sync_calls = t.counters.c_sync_calls;
    st_faults = t.counters.c_faults;
    st_forwarding = Hashtbl.length t.forwarding;
    st_retries = t.counters.c_retries;
    st_backoff_us = t.counters.c_backoff_us;
    st_reestablished =
      List.map (fun (a, n) -> (Addr.to_string a, n))
        (Ntcs_util.sorted_bindings t.reestablish);
  }
