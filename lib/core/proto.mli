(** The Nucleus wire protocol.

    Every NTCS message starts with a fixed header "built with structures of
    four byte integers, which can be bit field divided as required" (§5.2),
    transferred in shift mode so it is correct between any pair of machines
    with no conversion decision. Control messages that carry data fields
    (the route of an IVC_OPEN, HELLO announcements) put them in the payload
    in packed mode, as the paper prescribes. *)

open Ntcs_wire

exception Bad_header of string

val magic : int
val version : int

val header_words : int
val header_bytes : int

type kind =
  | Data  (** connection-oriented application data *)
  | Dgram  (** connectionless application data *)
  | Reply  (** send_sync response, matched by conversation id *)
  | Hello  (** ND channel-open: announces UAdd + machine representation *)
  | Hello_ack
  | Ivc_open  (** IP-layer: establish a chained circuit; payload = route *)
  | Ivc_accept
  | Ivc_reject
  | Ivc_close  (** IP-layer: cascade teardown (§4.3) *)
  | Ping  (** liveness probe (used by the naming service, §3.5) *)
  | Pong

val kind_to_int : kind -> int

val kind_of_int : int -> kind
(** Raises {!Bad_header} on an unknown tag. *)

val kind_to_string : kind -> string
val order_to_int : Endian.order -> int
val order_of_int : int -> Endian.order

type header = {
  kind : kind;
  src : Addr.t;
  dst : Addr.t;
  mode : Convert.mode;  (** how the payload was rendered *)
  src_order : Endian.order;  (** source machine's native representation *)
  hops : int;  (** gateway transits so far *)
  seq : int;
  conv : int;  (** conversation id for send_sync/reply matching *)
  app_tag : int;  (** application message type *)
  ivc : int;  (** internet-virtual-circuit leg label; 0 = direct *)
  payload_len : int;
  span : Ntcs_obs.Span.ctx;
      (** causal identity of the logical send that produced this frame;
          [Span.none] on control traffic predating any circuit. Rides the
          wire (words 11–12), so it survives gateway splices and fault-plane
          retries unchanged. *)
}

val make_header :
  kind:kind ->
  src:Addr.t ->
  dst:Addr.t ->
  ?mode:Convert.mode ->
  ?src_order:Endian.order ->
  ?hops:int ->
  ?seq:int ->
  ?conv:int ->
  ?app_tag:int ->
  ?ivc:int ->
  ?span:Ntcs_obs.Span.ctx ->
  payload_len:int ->
  unit ->
  header

val encode_header : header -> Bytes.t
(** Raises {!Bad_header} when [hops] is outside 0–255: the 8-bit hop field
    backs loop detection (E7), so a silently wrapped count would defeat it. *)

val decode_header : Bytes.t -> header
(** Raises {!Bad_header} on bad magic/version/shape. *)

val encode_frame : header -> Bytes.t -> Bytes.t
(** Header (with [payload_len] fixed up) followed by the payload bytes. *)

val decode_frame : Bytes.t -> header * Bytes.t
(** Raises {!Bad_header} when the byte count disagrees with the header. *)

(** {1 Zero-copy frame views}

    A {!Frame.t} is a window onto an existing buffer holding one complete
    frame: the header decodes lazily (and is memoised), the payload is only
    materialised on explicit request, and gateways forward by patching the
    affected shift-mode header words in place. Patching is byte-identical
    to a full re-encode because shift-mode layout is machine-independent
    (§5.2). *)
module Frame : sig
  type t

  val of_bytes : ?off:int -> ?len:int -> Bytes.t -> t
  (** View over [len] bytes (default: to the end of the buffer) starting at
      [off] (default 0). Only bounds are checked here; the header decodes on
      first {!header} call. Raises {!Bad_header} when the window cannot hold
      a frame. *)

  val header : t -> header
  (** Decode (once) and memoise. Raises {!Bad_header} when magic/version/
      payload_len disagree with the window. *)

  val buf : t -> Bytes.t
  val off : t -> int
  val len : t -> int

  val payload_off : t -> int
  val payload_len : t -> int
  (** Offset/length of the payload within [buf t] — for consumers that can
      read in place instead of copying. *)

  val payload_bytes : t -> Bytes.t
  (** Materialise the payload (one copy). Call sites account for it in the
      [frame.bytes_copied] histogram. *)

  val to_bytes : t -> Bytes.t
  (** The full frame. Returns the underlying buffer without copying when
      the view spans it exactly. *)

  val encode_into : header -> payload:Bytes.t -> Bytes.t -> off:int -> t
  (** Encode a frame into a caller-supplied (typically pooled) buffer: one
      header blit plus one payload blit. [payload_len] is fixed up. Raises
      {!Bad_header} when the frame does not fit. *)

  val of_parts : header -> Bytes.t -> t
  (** [encode_into] with a fresh exactly-sized buffer. *)

  val patch_ivc : t -> int -> unit
  (** Rewrite the leg label (word 9) in place. *)

  val patch_hops : t -> int -> unit
  (** Rewrite the hop count (word 5 bits) in place. Raises {!Bad_header}
      outside 0–255. *)

  val patch_dst : t -> Addr.t -> unit
  (** Rewrite the destination address (words 3–4) in place. *)
end

(** {1 Control payload codecs (packed mode, §5.2)} *)

val addr_codec : Addr.t Packed.t

type hello = {
  h_addr : Addr.t;  (** the sender's current self-address (may be a TAdd) *)
  h_order : Endian.order;
  h_listen : string list;  (** its listening physical addresses, as strings *)
}

val hello_codec : hello Packed.t

type ivc_open = {
  route : Addr.t list;  (** remaining gateway hops, outermost first *)
  final_dst : Addr.t;
  origin_hello : hello;  (** so the destination learns the origin's machine
                             representation without a direct LVC *)
}

val ivc_open_codec : ivc_open Packed.t

val reason_codec : string Packed.t
(** Body of IVC_ACCEPT / IVC_REJECT / IVC_CLOSE. *)
