(** The Nucleus wire protocol.

    Every NTCS message starts with a fixed header "built with structures of
    four byte integers, which can be bit field divided as required" (§5.2),
    transferred in shift mode so it is correct between any pair of machines
    with no conversion decision. Control messages that carry data fields
    (the route of an IVC_OPEN, HELLO announcements) put them in the payload
    in packed mode, as the paper prescribes. *)

open Ntcs_wire

exception Bad_header of string

val magic : int
val version : int

val header_words : int
val header_bytes : int

type kind =
  | Data  (** connection-oriented application data *)
  | Dgram  (** connectionless application data *)
  | Reply  (** send_sync response, matched by conversation id *)
  | Hello  (** ND channel-open: announces UAdd + machine representation *)
  | Hello_ack
  | Ivc_open  (** IP-layer: establish a chained circuit; payload = route *)
  | Ivc_accept
  | Ivc_reject
  | Ivc_close  (** IP-layer: cascade teardown (§4.3) *)
  | Ping  (** liveness probe (used by the naming service, §3.5) *)
  | Pong

val kind_to_int : kind -> int

val kind_of_int : int -> kind
(** Raises {!Bad_header} on an unknown tag. *)

val kind_to_string : kind -> string
val order_to_int : Endian.order -> int
val order_of_int : int -> Endian.order

type header = {
  kind : kind;
  src : Addr.t;
  dst : Addr.t;
  mode : Convert.mode;  (** how the payload was rendered *)
  src_order : Endian.order;  (** source machine's native representation *)
  hops : int;  (** gateway transits so far *)
  seq : int;
  conv : int;  (** conversation id for send_sync/reply matching *)
  app_tag : int;  (** application message type *)
  ivc : int;  (** internet-virtual-circuit leg label; 0 = direct *)
  payload_len : int;
  span : Ntcs_obs.Span.ctx;
      (** causal identity of the logical send that produced this frame;
          [Span.none] on control traffic predating any circuit. Rides the
          wire (words 11–12), so it survives gateway splices and fault-plane
          retries unchanged. *)
}

val make_header :
  kind:kind ->
  src:Addr.t ->
  dst:Addr.t ->
  ?mode:Convert.mode ->
  ?src_order:Endian.order ->
  ?hops:int ->
  ?seq:int ->
  ?conv:int ->
  ?app_tag:int ->
  ?ivc:int ->
  ?span:Ntcs_obs.Span.ctx ->
  payload_len:int ->
  unit ->
  header

val encode_header : header -> Bytes.t

val decode_header : Bytes.t -> header
(** Raises {!Bad_header} on bad magic/version/shape. *)

val encode_frame : header -> Bytes.t -> Bytes.t
(** Header (with [payload_len] fixed up) followed by the payload bytes. *)

val decode_frame : Bytes.t -> header * Bytes.t
(** Raises {!Bad_header} when the byte count disagrees with the header. *)

(** {1 Control payload codecs (packed mode, §5.2)} *)

val addr_codec : Addr.t Packed.t

type hello = {
  h_addr : Addr.t;  (** the sender's current self-address (may be a TAdd) *)
  h_order : Endian.order;
  h_listen : string list;  (** its listening physical addresses, as strings *)
}

val hello_codec : hello Packed.t

type ivc_open = {
  route : Addr.t list;  (** remaining gateway hops, outermost first *)
  final_dst : Addr.t;
  origin_hello : hello;  (** so the destination learns the origin's machine
                             representation without a direct LVC *)
}

val ivc_open_codec : ivc_open Packed.t

val reason_codec : string Packed.t
(** Body of IVC_ACCEPT / IVC_REJECT / IVC_CLOSE. *)
