(** Per-process NTCS context: everything a ComMod (or a gateway's several
    ComMods) needs to come up on a machine — the simulated world, the native
    IPCS stacks, configuration, and the well-known address table that solves
    the §3.4 bootstrap problem. *)

open Ntcs_sim

type well_known = {
  wk_name : string;  (** ["name-server/0"], ["prime-gw/<g>@<net>"] *)
  wk_addr : Addr.t;  (** pre-assigned UAdd, loaded into the address tables *)
  wk_phys : Ntcs_ipcs.Phys_addr.t list;  (** where to reach it *)
  wk_nets : Net.id list;  (** the networks this entry serves *)
  wk_all_nets : Net.id list;  (** for a gateway: every network it bridges *)
  wk_is_name_server : bool;
  wk_is_gateway : bool;
}

type config = {
  ns_fault_guard : bool;
      (** The §6.3 patch: the LCM address-fault handler special-cases the
          name server so a broken NS circuit cannot recurse through the
          NSP-layer. Disable to reproduce the paper's bug. *)
  recursion_limit : int;  (** simulated stack bound, per ComMod *)
  monitoring : bool;  (** LCM reports events to the monitor hook *)
  timestamps : bool;  (** monitor records use the (DRTS) time hook *)
  force_packed : bool;
      (** Ablation switch: always convert, never byte-copy (A1). *)
  lvc_open_retries : int;  (** ND retry-on-open (§2.2) *)
  lvc_retry_delay_us : int;
  send_retry : Retry.policy;
      (** LCM send recovery (§3.5): attempts through the address-fault
          handler, exponential backoff between them. *)
  ns_retry : Retry.policy;
      (** NSP request recovery: full failover cycles over the replica
          list. *)
  default_timeout_us : int;
      (** The single default deadline for every ALI/LCM primitive and NSP
          request — a synchronous call's reply wait, an asynchronous send's
          retry/backoff budget. Explicit [?timeout_us] overrides per
          call. *)
  ns_cache_ttl_us : int;  (** NSP-layer cache lifetime; 0 = no caching *)
  ns_cache_capacity : int;  (** NSP-layer lookup-cache entries per ComMod *)
  ns_shards : Addr.t array;
      (** pinned shard map of the naming plane: [ns_shards.(k)] is the
          well-known address of the name server owning shard [k]; empty =
          the classic single (or fully replicated) name server *)
  well_known : well_known list;
}

val default_config : config

(** DRTS hooks. Defaults are self-contained; the DRTS services replace them,
    at which point the NTCS uses services built on the NTCS — §6.1. *)
type hooks = {
  mutable timestamp : unit -> int;  (** corrected time for monitor records *)
  mutable on_event : (string -> string -> unit) option;  (** kind, detail *)
}

type t = {
  world : World.t;
  ipcs : Ntcs_ipcs.Registry.t;
  machine : Machine.t;
  config : config;
  hooks : hooks;
}

val make :
  ?config:config -> world:World.t -> ipcs:Ntcs_ipcs.Registry.t -> machine:Machine.t ->
  unit -> t

val world : t -> World.t
val sched : t -> Sched.t
val metrics : t -> Ntcs_util.Metrics.t
val machine : t -> Machine.t
val now : t -> int
val record : t -> cat:string -> actor:string -> string -> unit

val my_order : t -> Ntcs_wire.Endian.order
(** This machine's native byte order. *)

val name_server_wk : t -> well_known option
val prime_gateways : t -> well_known list
val my_nets : t -> Net.id list
