(* The Nucleus wire protocol. Every NTCS message starts with a fixed header
   "built with structures of four byte integers, which can be bit field
   divided as required" (§5.2), transferred in shift mode so it is correct
   between any pair of machines with no conversion decision needed. Control
   messages that carry data fields (e.g. the route of an IVC_OPEN) put them
   in the payload in packed mode, as the paper prescribes. *)

open Ntcs_wire

exception Bad_header of string

let magic = 0x4E54 (* "NT" *)
let version = 1
let header_words = 13
let header_bytes = 4 * header_words

type kind =
  | Data (* connection-oriented application data *)
  | Dgram (* connectionless application data *)
  | Reply (* send_sync response, matched by conversation id *)
  | Hello (* ND channel-open: announces UAdd + machine repr *)
  | Hello_ack
  | Ivc_open (* IP-layer: establish a chained circuit; payload = route *)
  | Ivc_accept
  | Ivc_reject
  | Ivc_close (* IP-layer: cascade teardown (§4.3) *)
  | Ping (* liveness probe (used by the naming service) *)
  | Pong

let kind_to_int = function
  | Data -> 0
  | Dgram -> 1
  | Reply -> 2
  | Hello -> 3
  | Hello_ack -> 4
  | Ivc_open -> 5
  | Ivc_accept -> 6
  | Ivc_reject -> 7
  | Ivc_close -> 8
  | Ping -> 9
  | Pong -> 10

let kind_of_int = function
  | 0 -> Data
  | 1 -> Dgram
  | 2 -> Reply
  | 3 -> Hello
  | 4 -> Hello_ack
  | 5 -> Ivc_open
  | 6 -> Ivc_accept
  | 7 -> Ivc_reject
  | 8 -> Ivc_close
  | 9 -> Ping
  | 10 -> Pong
  | n -> raise (Bad_header (Printf.sprintf "unknown message kind %d" n))

let kind_to_string k =
  match k with
  | Data -> "data"
  | Dgram -> "dgram"
  | Reply -> "reply"
  | Hello -> "hello"
  | Hello_ack -> "hello-ack"
  | Ivc_open -> "ivc-open"
  | Ivc_accept -> "ivc-accept"
  | Ivc_reject -> "ivc-reject"
  | Ivc_close -> "ivc-close"
  | Ping -> "ping"
  | Pong -> "pong"

let order_to_int = function Endian.Le -> 0 | Endian.Be -> 1

let order_of_int = function
  | 0 -> Endian.Le
  | 1 -> Endian.Be
  | n -> raise (Bad_header (Printf.sprintf "unknown byte order tag %d" n))

type header = {
  kind : kind;
  src : Addr.t;
  dst : Addr.t;
  mode : Convert.mode; (* how the payload was rendered *)
  src_order : Endian.order; (* native representation of the source machine *)
  hops : int; (* gateway hops so far, for loop detection and E7 *)
  seq : int;
  conv : int; (* conversation id for send_sync/reply matching *)
  app_tag : int; (* application message type *)
  ivc : int; (* internet virtual circuit id *)
  payload_len : int;
  span : Ntcs_obs.Span.ctx;
      (* causal identity of the logical send that produced this frame;
         Span.none (circuit 0) on control traffic predating any circuit *)
}

let make_header ~kind ~src ~dst ?(mode = Convert.Packed) ?(src_order = Endian.Be) ?(hops = 0)
    ?(seq = 0) ?(conv = 0) ?(app_tag = 0) ?(ivc = 0) ?(span = Ntcs_obs.Span.none)
    ~payload_len () =
  { kind; src; dst; mode; src_order; hops; seq; conv; app_tag; ivc; payload_len; span }

(* Header layout:
   w0: magic(16) | version(8) | kind(8)
   w1-w2: src address
   w3-w4: dst address
   w5: mode(4) | src_order(4) | hops(8) | flags(16, reserved)
   w6: seq   w7: conv   w8: app_tag   w9: ivc   w10: payload_len
   w11: span circuit id   w12: span per-circuit sequence id *)
let header_to_words h =
  if h.hops < 0 || h.hops > 255 then
    raise
      (Bad_header
         (Printf.sprintf "hop count %d outside the 8-bit field (loop-detection E7 must not wrap)"
            h.hops));
  let src = Addr.to_words h.src and dst = Addr.to_words h.dst in
  let w0 = Shift.pack_bits [ (magic, 16); (version, 8); (kind_to_int h.kind, 8) ] in
  let w5 =
    Shift.pack_bits
      [ (Convert.mode_to_int h.mode, 4); (order_to_int h.src_order, 4); (h.hops, 8); (0, 16) ]
  in
  [| w0; src.(0); src.(1); dst.(0); dst.(1); w5; h.seq; h.conv; h.app_tag; h.ivc;
     h.payload_len; h.span.Ntcs_obs.Span.sp_circuit; h.span.Ntcs_obs.Span.sp_seq |]

let encode_header h = Shift.encode_words (header_to_words h)

let blit_header h buf off =
  Array.iteri (fun i w -> Shift.poke_word buf (off + (4 * i)) w) (header_to_words h)

let decode_header_at data off =
  if off < 0 || Bytes.length data - off < header_bytes then raise (Bad_header "short header");
  let w = Shift.decode_words data ~off ~count:header_words in
  let kind =
    match Shift.unpack_bits w.(0) [ 16; 8; 8 ] with
    | [ m; v; k ] ->
      if m <> magic then raise (Bad_header "bad magic");
      if v <> version then raise (Bad_header (Printf.sprintf "unsupported version %d" v));
      kind_of_int k
    | _ -> assert false
  in
  let mode, src_order, hops =
    match Shift.unpack_bits w.(5) [ 4; 4; 8; 16 ] with
    | [ m; o; h; _ ] -> (
      ( (match Convert.mode_of_int m with
         | Some m -> m
         | None -> raise (Bad_header (Printf.sprintf "unknown conversion mode %d" m))),
        order_of_int o,
        h ))
    | _ -> assert false
  in
  {
    kind;
    src = Addr.of_words w.(1) w.(2);
    dst = Addr.of_words w.(3) w.(4);
    mode;
    src_order;
    hops;
    seq = w.(6);
    conv = w.(7);
    app_tag = w.(8);
    ivc = w.(9);
    payload_len = w.(10);
    span = Ntcs_obs.Span.make ~circuit:w.(11) ~seq:w.(12);
  }

let decode_header data = decode_header_at data 0

(* A full frame: shift-mode header followed by the (already converted)
   payload bytes. *)
let encode_frame h payload =
  let hdr = encode_header { h with payload_len = Bytes.length payload } in
  if Bytes.length payload = 0 then hdr else Bytes.cat hdr payload

let decode_frame data =
  let h = decode_header data in
  if Bytes.length data <> header_bytes + h.payload_len then
    raise
      (Bad_header
         (Printf.sprintf "frame length %d does not match header payload_len %d"
            (Bytes.length data) h.payload_len));
  (h, Bytes.sub data header_bytes h.payload_len)

(* --- zero-copy frame views ---

   A [view] is a window onto an existing buffer holding one complete frame.
   The header is decoded lazily and memoised; the payload is never
   materialised unless a consumer explicitly asks for bytes. Gateways
   forward a view by patching the affected shift-mode header words in
   place — legitimate exactly because shift-mode layout is
   machine-independent (§5.2), so a patched word is byte-identical to what
   a full re-encode would have produced. *)
module Frame = struct
  type t = {
    buf : Bytes.t;
    off : int;
    len : int;
    mutable hdr : header option; (* memoised decode; kept in sync by patches *)
  }

  let of_bytes ?(off = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - off in
    if off < 0 || len < header_bytes || off + len > Bytes.length buf then
      raise
        (Bad_header
           (Printf.sprintf "view [%d,+%d) does not hold a frame in %d bytes" off len
              (Bytes.length buf)))
    else { buf; off; len; hdr = None }

  let header v =
    match v.hdr with
    | Some h -> h
    | None ->
      let h = decode_header_at v.buf v.off in
      if v.len <> header_bytes + h.payload_len then
        raise
          (Bad_header
             (Printf.sprintf "view length %d does not match header payload_len %d" v.len
                h.payload_len));
      v.hdr <- Some h;
      h

  let buf v = v.buf
  let off v = v.off
  let len v = v.len
  let payload_off v = v.off + header_bytes
  let payload_len v = v.len - header_bytes

  (* Copies: each materialisation is deliberate — call sites account for it
     in the frame.bytes_copied histogram. *)
  let payload_bytes v = Bytes.sub v.buf (payload_off v) (payload_len v)

  let to_bytes v =
    if v.off = 0 && v.len = Bytes.length v.buf then v.buf else Bytes.sub v.buf v.off v.len

  (* Build a frame into a caller-supplied (typically pooled) buffer: one
     header blit plus one payload blit — the only copy on the send path. *)
  let encode_into h ~payload buf ~off =
    let plen = Bytes.length payload in
    let h = { h with payload_len = plen } in
    let len = header_bytes + plen in
    if off < 0 || off + len > Bytes.length buf then
      raise
        (Bad_header
           (Printf.sprintf "frame of %d bytes does not fit at offset %d of %d-byte buffer" len
              off (Bytes.length buf)));
    blit_header h buf off;
    Bytes.blit payload 0 buf (off + header_bytes) plen;
    { buf; off; len; hdr = Some h }

  let of_parts h payload =
    let plen = Bytes.length payload in
    encode_into h ~payload (Bytes.create (header_bytes + plen)) ~off:0

  (* --- in-place header patches (word offsets per the layout above) --- *)

  let word_off v i = v.off + (4 * i)

  let patch_ivc v ivc =
    Shift.poke_word v.buf (word_off v 9) ivc;
    match v.hdr with Some h -> v.hdr <- Some { h with ivc } | None -> ()

  let patch_hops v hops =
    if hops < 0 || hops > 255 then
      raise (Bad_header (Printf.sprintf "hop count %d outside the 8-bit field" hops));
    let w5 = Shift.get_word v.buf (word_off v 5) in
    match Shift.unpack_bits w5 [ 4; 4; 8; 16 ] with
    | [ m; o; _; fl ] ->
      Shift.poke_word v.buf (word_off v 5)
        (Shift.pack_bits [ (m, 4); (o, 4); (hops, 8); (fl, 16) ]);
      (match v.hdr with Some h -> v.hdr <- Some { h with hops } | None -> ())
    | _ -> assert false

  let patch_dst v dst =
    let w = Addr.to_words dst in
    Shift.poke_word v.buf (word_off v 3) w.(0);
    Shift.poke_word v.buf (word_off v 4) w.(1);
    match v.hdr with Some h -> v.hdr <- Some { h with dst } | None -> ()
end

(* --- control payload codecs (packed mode, per §5.2) --- *)

let addr_codec =
  Packed.iso
    ~fwd:(fun (w0, w1) -> Addr.of_words w0 w1)
    ~bwd:(fun a ->
      let w = Addr.to_words a in
      (w.(0), w.(1)))
    (Packed.pair Packed.int Packed.int)

(* HELLO / HELLO_ACK body: my UAdd (redundant with the header, but the header
   src may be a TAdd the peer should keep), my machine order, my listening
   addresses (so the peer can reconnect or pass them on). *)
type hello = {
  h_addr : Addr.t;
  h_order : Endian.order;
  h_listen : string list; (* physical addresses, uninterpreted strings *)
}

let hello_codec =
  Packed.iso
    ~fwd:(fun (a, (o, l)) -> { h_addr = a; h_order = order_of_int o; h_listen = l })
    ~bwd:(fun h -> (h.h_addr, (order_to_int h.h_order, h.h_listen)))
    (Packed.pair addr_codec (Packed.pair Packed.int (Packed.list Packed.string)))

(* IVC_OPEN body: the remaining route (gateway commod UAdds, outermost
   first), the final destination, and the origin's HELLO announcement so the
   destination learns the origin's machine representation and listening
   addresses without a direct LVC. Gateways pop themselves off the front of
   the route and forward. The IVC_ACCEPT travelling back carries the final
   destination's HELLO for the same reason. *)
type ivc_open = {
  route : Addr.t list;
  final_dst : Addr.t;
  origin_hello : hello;
}

let ivc_open_codec =
  Packed.iso
    ~fwd:(fun (r, (f, o)) -> { route = r; final_dst = f; origin_hello = o })
    ~bwd:(fun v -> (v.route, (v.final_dst, v.origin_hello)))
    (Packed.pair (Packed.list addr_codec) (Packed.pair addr_codec hello_codec))

(* IVC_ACCEPT / IVC_REJECT / IVC_CLOSE body: reason string (possibly empty). *)
let reason_codec = Packed.string
