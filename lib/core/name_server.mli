(** The Name Server (§3): an active module maintaining the name/address
    database — "nothing more than an application built on the Nucleus",
    which the Nucleus itself then consumes.

    §3.5 forwarding is implemented as written: a Forward query first decides
    "whether the old UAdd is really inactive" (a liveness ping over the
    NTCS, monitoring suppressed), then looks "for a similar name in a newer
    module", where similarity honours the attribute-based naming scheme the
    paper announces as its successor (equal ["service"] attributes count).

    Replication (§7): peers with distinct server ids; writes are pushed to
    peers as datagrams (eventual consistency), and a starting replica pulls
    a full sync from its first reachable peer.

    Sharding (DESIGN.md §15): under a pinned {!Ntcs_naming.Shard_map} the
    server with id [i] is the authority for every name hashing to shard
    [i]. Versioned requests ({!Ns_proto.request.Lookup_v}, routed
    registrations) arriving at a non-owner are forwarded name-to-name to
    the owner over the NTCS itself — one hop at most — and the owner's
    invalidation generation rides back on the answer for the NSP-side
    caches. If the owner is unreachable, the non-owner answers from its
    replicated backup copy, marked unversioned (generation 0). *)

type t

val service_attr : string
(** The attribute key used for "similar name" matching (["service"]). *)

val create :
  Node.t -> server_id:int -> wk_addr:Addr.t -> ?peers:Addr.t list ->
  ?shard_map:Addr.t Ntcs_naming.Shard_map.t -> unit -> t
(** [wk_addr] is the pre-assigned well-known address every ComMod's tables
    point at (§3.4); [peers] are the other replicas' well-known addresses.
    [shard_map] turns on the sharded naming plane: this server owns shard
    [server_id] and forwards versioned requests for other shards to their
    owners. Without it the server behaves exactly as the classic single (or
    fully replicated) name server. *)

val serve : ?fixed:Ntcs_ipcs.Phys_addr.t list -> t -> unit -> unit
(** The server process body: bind (at the [fixed] resources), adopt the
    well-known address, optionally sync from peers, then answer requests
    forever. Spawn with [World.spawn]. *)

val stop : t -> unit

val local_resolver : t -> Router.resolver
(** The server's own ComMod resolves from this database directly — the one
    place the naming recursion bottoms out. *)

val handle_request : t -> ?commod:Commod.t -> Ns_proto.request -> Ns_proto.response
(** Exposed for tests and benches; normal traffic arrives through {!serve}.
    Without [?commod] the server cannot ping, shard-forward, or replicate —
    liveness is taken from the database and non-owned shards are answered
    from the local (backup) copy, unversioned. *)

val preload : t -> (string * (string * string) list) list -> unit
(** Bulk-load [(name, attrs)] bindings straight into the database,
    bypassing the request protocol — how benches build 10^6-name databases
    without drowning the measurement in transport costs. Addresses are
    minted locally; entries are alive and stamped with the current virtual
    time. *)

val generation : t -> int
(** Current invalidation generation of the shard this server owns (starts
    at 1; 0 is reserved on the wire for unversioned answers). *)

val my_shard : t -> int
(** The shard this server owns (= its server id under a shard map, else 0). *)

val owns : t -> string -> bool
(** Whether this server is the authority for [name] under its shard map
    (always true without one). *)

val db_size : t -> int
val dump : t -> Ns_proto.entry list
