(** The Name Server (§3): an active module maintaining the name/address
    database — "nothing more than an application built on the Nucleus",
    which the Nucleus itself then consumes.

    §3.5 forwarding is implemented as written: a Forward query first decides
    "whether the old UAdd is really inactive" (a liveness ping over the
    NTCS, monitoring suppressed), then looks "for a similar name in a newer
    module", where similarity honours the attribute-based naming scheme the
    paper announces as its successor (equal ["service"] attributes count).

    Replication (§7): peers with distinct server ids; writes are pushed to
    peers as datagrams (eventual consistency), and a starting replica pulls
    a full sync from its first reachable peer. *)

type t

val service_attr : string
(** The attribute key used for "similar name" matching (["service"]). *)

val create :
  Node.t -> server_id:int -> wk_addr:Addr.t -> ?peers:Addr.t list -> unit -> t
(** [wk_addr] is the pre-assigned well-known address every ComMod's tables
    point at (§3.4); [peers] are the other replicas' well-known addresses. *)

val serve : ?fixed:Ntcs_ipcs.Phys_addr.t list -> t -> unit -> unit
(** The server process body: bind (at the [fixed] resources), adopt the
    well-known address, optionally sync from peers, then answer requests
    forever. Spawn with [World.spawn]. *)

val stop : t -> unit

val local_resolver : t -> Router.resolver
(** The server's own ComMod resolves from this database directly — the one
    place the naming recursion bottoms out. *)

val handle_request : t -> Commod.t -> Ns_proto.request -> Ns_proto.response
(** Exposed for tests; normal traffic arrives through {!serve}. *)

val db_size : t -> int
val dump : t -> Ns_proto.entry list
