(** NTCS error vocabulary, as surfaced at the application interface.

    The ALI-layer "tailors the error returns" (§2.4): lower layers produce
    the mechanical variants; the veneer maps them onto conditions an
    application can act on. *)

type t =
  | Unknown_name  (** naming service has no such logical name *)
  | Unknown_address  (** UAdd cannot be resolved to a physical address *)
  | Destination_dead  (** module gone and no replacement located (§3.5) *)
  | Circuit_failed  (** virtual circuit broke and could not be reestablished *)
  | Unreachable  (** no route, even through gateways *)
  | Timeout
  | Name_service_unavailable
  | Message_too_large
  | Bad_message of string  (** malformed wire data *)
  | Not_registered  (** primitive requires a completed registration *)
  | Internal of string

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** How an application (or the LCM/NSP retry policy) should react:
    [Transient] conditions may clear on their own and are worth retrying
    with backoff; [Permanent] ones indict the destination itself; [Fatal]
    ones indict the caller. *)
type severity = Transient | Permanent | Fatal

val severity : t -> severity
val severity_to_string : severity -> string

val retryable : t -> bool
(** [retryable e] iff [severity e = Transient]. This is the single
    classification the LCM and NSP retry machinery consults — applications
    distinguishing [Timeout]/[Circuit_failed] (retry) from
    [Unknown_name]/[Message_too_large] (don't) should use it too. *)

val of_ipcs : Ntcs_ipcs.Ipcs_error.t -> t
(** Map a native IPCS error into the NTCS vocabulary. The mapping is total:
    every [Ipcs_error] variant has an NTCS rendering. *)

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
