(** The Network Dependent layer (§2.2).

    Sits directly on the native IPCS (through STD-IF) and gives the layers
    above uniform {e local virtual circuits}: message frames to and from
    peers named by NTCS addresses, on directly-reachable machines only.
    Lives here:

    - the channel-open protocol — a HELLO / HELLO-ACK exchange announcing
      each end's address, byte order and listening addresses (the
      "information exchanged during the channel open protocol" that feeds
      the local address cache, §3.3);
    - retry on open, the only recovery the paper allows at this level;
    - TAdd handling (§3.4): an incoming connection from a temporary-address
      source gets a locally-assigned alias, purged the moment a real UAdd is
      seen on that circuit;
    - reader processes per circuit, demultiplexing frames into the ComMod's
      single event inbox and passing failure notifications upward. *)

open Ntcs_sim
open Ntcs_ipcs
open Ntcs_wire

type circuit = {
  cid : int;
  lvc : Std_if.lvc;
  nd : t;
  mutable peer_addr : Addr.t;
      (** table key: the peer's real UAdd, or our local alias TAdd *)
  mutable peer_announced : Addr.t;
      (** what the peer calls itself — the wire destination for frames *)
  mutable peer_order : Endian.order;
  mutable peer_listen : Phys_addr.t list;
  mutable c_open : bool;
  outbound : bool;
}

and event =
  | Frame of circuit * Proto.Frame.t
      (** a received frame as a zero-copy view over the receive buffer;
          the header is already decoded and memoised *)
  | Circuit_up of circuit  (** inbound circuit completed its handshake *)
  | Circuit_down of circuit * Errors.t

and t = {
  node : Node.t;
  owner : string;  (** module name, for traces *)
  allowed_nets : Net.id list option;
      (** a gateway's per-network ComMod is pinned to its network *)
  mutable my_addr : Addr.t;
  mutable my_past : Addr.t list;
  tadds : Addr.Tadd_gen.gen;
  inbox : event Sched.Mailbox.mb;
  circuits : (Addr.t, circuit) Hashtbl.t;
  alias_fwd : (Addr.t, Addr.t) Hashtbl.t;
  phys_cache : (Addr.t, Phys_addr.t list) Hashtbl.t;
  mutable acceptors : Std_if.acceptor list;
  mutable helpers : Sched.pid list;
  mutable next_cid : int;
  mutable closed : bool;
}

val create :
  Node.t ->
  owner:string ->
  ?allowed_nets:Net.id list ->
  ?fixed:Phys_addr.t list ->
  unit ->
  t
(** Allocate one communication resource per address kind this module can
    speak (well-known modules pass [fixed] resources) and start the accept
    loops. Call from within the owning process. *)

val shutdown : t -> unit
(** Abort every circuit, close listeners, kill helper processes — what
    module death looks like to the peers' ND-layers. *)

val my_addr : t -> Addr.t

val set_my_addr : t -> Addr.t -> unit
(** Registration upgrade: the self-assigned TAdd becomes the real UAdd.
    Frames addressed to previous self-addresses are still accepted. *)

val is_me : t -> Addr.t -> bool
val my_listen_addrs : t -> Phys_addr.t list

val fresh_alias : t -> Addr.t
(** A locally-unique temporary address — the IP-layer aliases TAdd-sourced
    origins on chained circuits exactly as the ND-layer does on direct
    ones. *)

val note_alias_purged : t -> Addr.t -> Addr.t -> unit
(** Record an alias upgrade made by an upper layer so late replies still
    resolve. *)

(** {1 Address cache (UAdd → physical), §3.3} *)

val lookup_phys : t -> Addr.t -> Phys_addr.t list option
val cache_phys : t -> Addr.t -> Phys_addr.t list -> unit
val drop_cached_phys : t -> Addr.t -> unit

(** {1 Circuits} *)

val find_circuit : t -> Addr.t -> circuit option
(** Open circuit to this peer, following purged aliases. *)

val resolve_alias : t -> Addr.t -> Addr.t

val open_circuit : t -> phys:Phys_addr.t -> (circuit, Errors.t) result
(** Open an LVC (with retry on open, §2.2) and run the HELLO handshake.
    Returns the circuit keyed by the peer's announced address. Blocking. *)

val close_circuit : circuit -> unit
(** Local close, no upward notification (the caller asked for it). *)

val send_frame : circuit -> Proto.header -> Bytes.t -> (unit, Errors.t) result
(** Frame and transmit: one header blit + one payload blit into a pooled
    buffer, released once the STD-IF has consumed it. A failure marks the
    circuit broken. *)

val forward_view : circuit -> Proto.Frame.t -> (unit, Errors.t) result
(** Transmit a received frame as-is (headers already patched in place):
    no re-encode, no payload copy. A failure marks the circuit broken. *)

val next_event : ?timeout_us:int -> t -> event option
(** Pull the next demultiplexed event (the LCM dispatcher's loop). *)

val circuit_count : t -> int
