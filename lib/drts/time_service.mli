(** The distributed precision time service (Wang [27], §1.3, §6.1).

    Machines run drifting clocks; the server publishes its machine's clock
    as the reference; correctors estimate their offset Cristian-style
    (offset = server_time + rtt/2 − local_arrival) and install a corrected
    [timestamp] hook into the node.

    Faithful to §6.1: the corrector communicates through the {e same} ComMod
    whose sends it timestamps (monitoring suppressed for its own traffic) —
    so a monitored send's timestamp may recursively invoke resource location
    and another send/receive pair. *)

open Ntcs

val server_name : string

val serve : Node.t -> unit -> unit
(** Time-server process body: answers every request with its machine's
    local time. Spawn on the reference machine. *)

type corrector

val create : ?sync_interval_us:int -> Commod.t -> corrector
(** A corrector for the module owning [commod] (default resync 30 s). *)

val sync : corrector -> (int, Errors.t) result
(** One synchronisation exchange; returns the new offset. Locates the
    server on first use (§6.1). *)

val now : corrector -> int
(** Corrected timestamp; resynchronises first when stale — the recursive
    path of §6.1. *)

val install : corrector -> unit
(** Become the node's timestamp hook: LCM monitor records now use corrected
    time. *)

val offset_us : corrector -> int
val sync_count : corrector -> int
val failure_count : corrector -> int

val true_error_us : corrector -> int
(** True clock error against the global (simulation) clock — for
    experiment evaluation only; unobservable in a real system. *)
