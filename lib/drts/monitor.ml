(* The distributed network monitor (Wang [27]).

   Modules report LCM-level events (send/recv/fault) to a central monitor
   module as datagrams; the monitor aggregates per-kind and per-module
   counts plus a ring of recent records, and answers queries synchronously.

   The client side installs itself as the node's [on_event] hook. Because
   the hook fires from inside the LCM's own send path, its reporting rides
   the very ComMod being monitored — with monitoring suppressed for its own
   traffic, "to avoid the obvious infinite recursion" (§6.1). *)

open Ntcs
open Ntcs_wire

let monitor_name = "network-monitor"

let ring_capacity = 256

type server = {
  mutable total : int;
  by_kind : (string, int ref) Hashtbl.t;
  by_module : (string, int ref) Hashtbl.t;
  recent : Drts_proto.monitor_record Ntcs_util.Bqueue.t;
}

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let stats_of server =
  let dump tbl =
    List.map (fun (k, r) -> (k, !r)) (Ntcs_util.sorted_bindings tbl)
  in
  {
    Drts_proto.ms_total = server.total;
    ms_by_kind = dump server.by_kind;
    ms_by_module = dump server.by_module;
  }

(* The monitor process body. *)
let serve node () =
  match Commod.bind node ~name:monitor_name ~attrs:[ ("service", "monitor") ] with
  | Error e -> failwith ("monitor bind failed: " ^ Errors.to_string e)
  | Ok commod ->
    let server =
      {
        total = 0;
        by_kind = Hashtbl.create 8;
        by_module = Hashtbl.create 16;
        recent = Ntcs_util.Bqueue.create ring_capacity;
      }
    in
    let lcm = Commod.lcm commod in
    let rec loop () =
      (match Lcm_layer.recv lcm with
       | Error _ -> ()
       | Ok env ->
         if env.Lcm_layer.app_tag = Drts_proto.monitor_tag then begin
           if env.Lcm_layer.conv = 0 then begin
             (* A report datagram. *)
             match
               Packed.run_unpack_result Drts_proto.monitor_record_codec
                 env.Lcm_layer.data
             with
             | Error _ -> ()
             | Ok record ->
               server.total <- server.total + 1;
               bump server.by_kind record.Drts_proto.mr_kind;
               bump server.by_module record.Drts_proto.mr_module;
               if Ntcs_util.Bqueue.is_full server.recent then
                 ignore (Ntcs_util.Bqueue.pop server.recent);
               ignore (Ntcs_util.Bqueue.push server.recent record)
           end
           else begin
             (* A query. *)
             match
               Packed.run_unpack_result Drts_proto.monitor_query_codec env.Lcm_layer.data
             with
             | Error _ -> ()
             | Ok Drts_proto.Q_stats ->
               let reply =
                 Packed.run_pack Drts_proto.monitor_stats_codec (stats_of server)
               in
               ignore
                 (Lcm_layer.reply lcm env ~app_tag:Drts_proto.monitor_tag
                    (Convert.payload_raw reply))
             | Ok (Drts_proto.Q_recent n) ->
               let records = ref [] in
               Ntcs_util.Bqueue.iter server.recent (fun r -> records := r :: !records);
               let records =
                 !records |> List.filteri (fun i _ -> i < n) |> List.rev
               in
               let reply = Packed.run_pack Drts_proto.monitor_recent_codec records in
               ignore
                 (Lcm_layer.reply lcm env ~app_tag:Drts_proto.monitor_tag
                    (Convert.payload_raw reply))
           end
         end);
      loop ()
    in
    loop ()

(* --- client --- *)

type client = {
  commod : Commod.t;
  mutable monitor : Addr.t option;
  mutable reported : int;
  mutable dropped : int;
}

let create_client commod = { commod; monitor = None; reported = 0; dropped = 0 }

let report c kind detail =
  Lcm_layer.without_monitoring (Commod.lcm c.commod) (fun () ->
      let addr =
        match c.monitor with
        | Some a -> Ok a
        | None -> (
          match Ali_layer.locate c.commod monitor_name with
          | Ok a ->
            c.monitor <- Some a;
            Ok a
          | Error _ as e -> e)
      in
      match addr with
      | Error _ -> c.dropped <- c.dropped + 1
      | Ok addr -> (
        let node = Commod.node c.commod in
        let record =
          {
            Drts_proto.mr_module = Commod.name c.commod;
            mr_kind = kind;
            mr_detail = detail;
            mr_time = node.Node.hooks.Node.timestamp ();
          }
        in
        let data = Packed.run_pack Drts_proto.monitor_record_codec record in
        match
          Ali_layer.send_dgram c.commod ~dst:addr ~app_tag:Drts_proto.monitor_tag
            (Convert.payload_raw data)
        with
        | Ok () -> c.reported <- c.reported + 1
        | Error _ -> c.dropped <- c.dropped + 1))

(* Install as the node's monitor hook: every LCM event on this node's
   ComMods now flows to the monitor module. *)
let install c =
  let node = Commod.node c.commod in
  node.Node.hooks.Node.on_event <- Some (fun kind detail -> report c kind detail)

let query_stats commod ~monitor =
  match
    Ali_layer.send_sync commod ~dst:monitor ~app_tag:Drts_proto.monitor_tag
      (Convert.payload_raw (Packed.run_pack Drts_proto.monitor_query_codec Drts_proto.Q_stats))
  with
  | Error _ as e -> e
  | Ok env -> (
    match Packed.run_unpack_result Drts_proto.monitor_stats_codec env.Ali_layer.data with
    | Ok stats -> Ok stats
    | Error m -> Error (Errors.Bad_message m))

let reported c = c.reported
let dropped c = c.dropped
