(** Distributed process control (§1.2): "the need to dynamically add,
    modify, or replace system modules, while in operation".

    A managed module is a (name, attributes, body) specification process
    control can start anywhere, kill, and — the testbed's signature move —
    {e relocate}: kill the instance, start a replacement elsewhere under the
    same name. The replacement registers afresh, the naming service sees a
    newer module with a similar name, and every correspondent's LCM
    transparently re-routes (§3.5). *)

open Ntcs_sim
open Ntcs

type spec = {
  sp_name : string;  (** the logical name each generation registers *)
  sp_attrs : (string * string) list;
  sp_body : Commod.t -> unit;  (** runs after bind+register *)
}

type managed = {
  m_spec : spec;
  mutable m_machine : string;
  mutable m_pid : Sched.pid;
  mutable m_generation : int;
}

type t

val create : Cluster.t -> t

val start : t -> spec -> machine:string -> managed
(** Raises [Invalid_argument] when the name is already managed. *)

val find : t -> string -> managed option
val kill : t -> managed -> unit
val alive : t -> managed -> bool

val relocate : t -> managed -> to_machine:string -> Sched.pid
(** Kill, bump the generation, respawn under the same name. Correspondents
    need no participation. *)

val generation : managed -> int
val machine_of : managed -> string
