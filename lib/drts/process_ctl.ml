(* Distributed process control (§1.2): "the need to dynamically add, modify,
   or replace system modules, while in operation".

   A managed module is a (name, attributes, body) specification that process
   control can start on any machine, kill, and — the testbed's signature
   move — *relocate*: kill the instance, start a replacement elsewhere under
   the same name. The replacement registers afresh, the naming service sees
   a newer module with a similar name, and the LCM address-fault machinery
   of every correspondent transparently re-routes in-progress conversations
   (§3.5). Process control itself needs no participation from the peers. *)

open Ntcs_sim
open Ntcs

type spec = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_body : Commod.t -> unit; (* runs after bind+register *)
}

type managed = {
  m_spec : spec;
  mutable m_machine : string;
  mutable m_pid : Sched.pid;
  mutable m_generation : int;
}

type t = {
  cluster : Cluster.t;
  modules : (string, managed) Hashtbl.t;
}

let create cluster = { cluster; modules = Hashtbl.create 16 }

let launch t spec ~machine ~generation =
  Cluster.spawn t.cluster ~machine
    ~name:(Printf.sprintf "%s.g%d" spec.sp_name generation)
    (fun node ->
      match Commod.bind node ~name:spec.sp_name ~attrs:spec.sp_attrs with
      | Error e ->
        Node.record node ~cat:"pctl.bind_fail" ~actor:spec.sp_name (Errors.to_string e)
      | Ok commod -> spec.sp_body commod)

let start t spec ~machine =
  if Hashtbl.mem t.modules spec.sp_name then
    invalid_arg ("Process_ctl.start: module already managed: " ^ spec.sp_name);
  let m =
    { m_spec = spec; m_machine = machine; m_pid = launch t spec ~machine ~generation:0;
      m_generation = 0 }
  in
  Hashtbl.replace t.modules spec.sp_name m;
  m

let find t name = Hashtbl.find_opt t.modules name

let kill t (m : managed) =
  Sched.kill (Cluster.sched t.cluster) m.m_pid;
  World.record (Cluster.world t.cluster) ~cat:"pctl.kill" ~actor:m.m_spec.sp_name
    (Printf.sprintf "generation %d on %s" m.m_generation m.m_machine)

let alive t (m : managed) = Sched.alive (Cluster.sched t.cluster) m.m_pid

(* Replace a running module with a fresh instance on [to_machine] (which may
   be the same machine: an in-place upgrade). The old instance is killed
   first; its circuits abort, correspondents fault, and the naming service
   forwards them to the replacement once it has registered. *)
let relocate t (m : managed) ~to_machine =
  kill t m;
  m.m_generation <- m.m_generation + 1;
  m.m_machine <- to_machine;
  m.m_pid <- launch t m.m_spec ~machine:to_machine ~generation:m.m_generation;
  World.record (Cluster.world t.cluster) ~cat:"pctl.relocate" ~actor:m.m_spec.sp_name
    (Printf.sprintf "generation %d now on %s" m.m_generation to_machine);
  m.m_pid

let generation (m : managed) = m.m_generation
let machine_of (m : managed) = m.m_machine
