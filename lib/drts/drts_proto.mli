(** Wire formats for the distributed run-time support services — ordinary
    packed-mode application traffic as far as the NTCS is concerned. *)

open Ntcs_wire

val time_tag : int
val monitor_tag : int
val error_log_tag : int
val process_ctl_tag : int

(** {1 Time service} *)

type time_request = { tq_client_time : int }
type time_reply = { tr_server_time : int }

val time_request_codec : time_request Packed.t
val time_reply_codec : time_reply Packed.t

(** {1 Monitor} *)

type monitor_record = {
  mr_module : string;
  mr_kind : string;  (** "send", "recv", "fault", … *)
  mr_detail : string;
  mr_time : int;  (** corrected timestamp at the reporting module *)
}

val monitor_record_codec : monitor_record Packed.t

type monitor_query = Q_stats | Q_recent of int

val monitor_query_codec : monitor_query Packed.t

type monitor_stats = {
  ms_total : int;
  ms_by_kind : (string * int) list;
  ms_by_module : (string * int) list;
}

val monitor_stats_codec : monitor_stats Packed.t
val monitor_recent_codec : monitor_record list Packed.t

(** {1 Error log} *)

type severity = Info | Warning | Error | Fatal

val severity_to_int : severity -> int
val severity_of_int : int -> severity
val severity_to_string : severity -> string

type log_record = {
  lr_module : string;
  lr_severity : severity;
  lr_message : string;
  lr_time : int;
}

val log_record_codec : log_record Packed.t

type log_query = L_count of int | L_recent of int

val log_query_codec : log_query Packed.t
val log_recent_codec : log_record list Packed.t
