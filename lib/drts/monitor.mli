(** The distributed network monitor (Wang [27]).

    Modules report LCM-level events as datagrams; the monitor aggregates
    per-kind and per-module counts plus a ring of recent records, and
    answers queries synchronously. The client installs itself as the node's
    [on_event] hook: reporting rides the very ComMod being monitored, with
    monitoring suppressed for its own traffic — "to avoid the obvious
    infinite recursion" (§6.1). *)

open Ntcs

val monitor_name : string
val ring_capacity : int

val serve : Node.t -> unit -> unit
(** Monitor process body. *)

type client

val create_client : Commod.t -> client

val report : client -> string -> string -> unit
(** [report c kind detail] — locates the monitor on first use, then fires a
    datagram. Never raises; drops are counted. *)

val install : client -> unit
(** Become the node's monitor hook. *)

val query_stats : Commod.t -> monitor:Addr.t -> (Drts_proto.monitor_stats, Errors.t) result

val reported : client -> int
val dropped : client -> int
