(* Distributed error logging service (§1, §6.2): modules report classified
   conditions; the log server keeps a bounded history and per-severity
   counts. One answer to the paper's observation that "a running table of
   errors could be maintained and monitored". *)

open Ntcs
open Ntcs_wire

let log_name = "error-log"

let history_capacity = 512

let serve node () =
  match Commod.bind node ~name:log_name ~attrs:[ ("service", "error-log") ] with
  | Error e -> failwith ("error-log bind failed: " ^ Errors.to_string e)
  | Ok commod ->
    let history = Ntcs_util.Bqueue.create history_capacity in
    let counts = Array.make 4 0 in
    let lcm = Commod.lcm commod in
    let rec loop () =
      (match Lcm_layer.recv lcm with
       | Error _ -> ()
       | Ok env ->
         if env.Lcm_layer.app_tag = Drts_proto.error_log_tag then begin
           if env.Lcm_layer.conv = 0 then begin
             match
               Packed.run_unpack_result Drts_proto.log_record_codec env.Lcm_layer.data
             with
             | Error _ -> ()
             | Ok record ->
               let s = Drts_proto.severity_to_int record.Drts_proto.lr_severity in
               counts.(s) <- counts.(s) + 1;
               if Ntcs_util.Bqueue.is_full history then ignore (Ntcs_util.Bqueue.pop history);
               ignore (Ntcs_util.Bqueue.push history record)
           end
           else begin
             match
               Packed.run_unpack_result Drts_proto.log_query_codec env.Lcm_layer.data
             with
             | Error _ -> ()
             | Ok (Drts_proto.L_count min_sev) ->
               let total = ref 0 in
               for s = min_sev to 3 do
                 total := !total + counts.(s)
               done;
               let reply = Packed.run_pack Packed.int !total in
               ignore
                 (Lcm_layer.reply lcm env ~app_tag:Drts_proto.error_log_tag
                    (Convert.payload_raw reply))
             | Ok (Drts_proto.L_recent n) ->
               let records = ref [] in
               Ntcs_util.Bqueue.iter history (fun r -> records := r :: !records);
               let records = !records |> List.filteri (fun i _ -> i < n) |> List.rev in
               let reply = Packed.run_pack Drts_proto.log_recent_codec records in
               ignore
                 (Lcm_layer.reply lcm env ~app_tag:Drts_proto.error_log_tag
                    (Convert.payload_raw reply))
           end
         end);
      loop ()
    in
    loop ()

(* --- client --- *)

type client = { commod : Commod.t; mutable log_addr : Addr.t option; mutable sent : int }

let create_client commod = { commod; log_addr = None; sent = 0 }

let log c severity message =
  Lcm_layer.without_monitoring (Commod.lcm c.commod) (fun () ->
      let addr =
        match c.log_addr with
        | Some a -> Ok a
        | None -> (
          match Ali_layer.locate c.commod log_name with
          | Ok a ->
            c.log_addr <- Some a;
            Ok a
          | Error _ as e -> e)
      in
      match addr with
      | Error _ -> ()
      | Ok addr ->
        let node = Commod.node c.commod in
        let record =
          {
            Drts_proto.lr_module = Commod.name c.commod;
            lr_severity = severity;
            lr_message = message;
            lr_time = node.Node.hooks.Node.timestamp ();
          }
        in
        (match
           Ali_layer.send_dgram c.commod ~dst:addr ~app_tag:Drts_proto.error_log_tag
             (Convert.payload_raw (Packed.run_pack Drts_proto.log_record_codec record))
         with
         | Ok () -> c.sent <- c.sent + 1
         | Error _ -> ()))

let query_count commod ~log_addr ~min_severity =
  match
    Ali_layer.send_sync commod ~dst:log_addr ~app_tag:Drts_proto.error_log_tag
      (Convert.payload_raw
         (Packed.run_pack Drts_proto.log_query_codec
            (Drts_proto.L_count (Drts_proto.severity_to_int min_severity))))
  with
  | Error _ as e -> e
  | Ok env -> (
    match Packed.run_unpack_result Packed.int env.Ali_layer.data with
    | Ok n -> Ok n
    | Error m -> Error (Errors.Bad_message m))

let query_recent commod ~log_addr ~n =
  match
    Ali_layer.send_sync commod ~dst:log_addr ~app_tag:Drts_proto.error_log_tag
      (Convert.payload_raw (Packed.run_pack Drts_proto.log_query_codec (Drts_proto.L_recent n)))
  with
  | Error _ as e -> e
  | Ok env -> (
    match Packed.run_unpack_result Drts_proto.log_recent_codec env.Ali_layer.data with
    | Ok records -> Ok records
    | Error m -> Error (Errors.Bad_message m))
