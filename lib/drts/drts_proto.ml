(* Wire formats for the distributed run-time support services. All packed
   mode, all ordinary application traffic as far as the NTCS is concerned. *)

open Ntcs_wire

(* Application tags. Must stay within the ALI-layer's application range. *)
let time_tag = 8101
let monitor_tag = 8102
let error_log_tag = 8103
let process_ctl_tag = 8104

(* --- time service --- *)

type time_request = { tq_client_time : int }

type time_reply = { tr_server_time : int }

let time_request_codec =
  Packed.iso
    ~fwd:(fun v -> { tq_client_time = v })
    ~bwd:(fun r -> r.tq_client_time)
    Packed.int

let time_reply_codec =
  Packed.iso
    ~fwd:(fun v -> { tr_server_time = v })
    ~bwd:(fun r -> r.tr_server_time)
    Packed.int

(* --- monitor --- *)

type monitor_record = {
  mr_module : string;
  mr_kind : string; (* "send", "recv", "fault", ... *)
  mr_detail : string;
  mr_time : int; (* corrected timestamp at the reporting module *)
}

let monitor_record_codec =
  Packed.iso
    ~fwd:(fun ((m, k), (d, t)) -> { mr_module = m; mr_kind = k; mr_detail = d; mr_time = t })
    ~bwd:(fun r -> ((r.mr_module, r.mr_kind), (r.mr_detail, r.mr_time)))
    (Packed.pair (Packed.pair Packed.string Packed.string) (Packed.pair Packed.string Packed.int))

type monitor_query = Q_stats | Q_recent of int

let monitor_query_codec =
  Packed.tagged
    [
      ("sta", (function Q_stats -> Some (fun _ -> ()) | _ -> None), fun _ -> Q_stats);
      ( "rec",
        (function Q_recent n -> Some (fun buf -> Packed.int.Packed.pack buf n) | _ -> None),
        fun cur -> Q_recent (Packed.int.Packed.unpack cur) );
    ]

type monitor_stats = {
  ms_total : int;
  ms_by_kind : (string * int) list;
  ms_by_module : (string * int) list;
}

let monitor_stats_codec =
  Packed.iso
    ~fwd:(fun (t, (k, m)) -> { ms_total = t; ms_by_kind = k; ms_by_module = m })
    ~bwd:(fun s -> (s.ms_total, (s.ms_by_kind, s.ms_by_module)))
    (Packed.pair Packed.int
       (Packed.pair
          (Packed.list (Packed.pair Packed.string Packed.int))
          (Packed.list (Packed.pair Packed.string Packed.int))))

let monitor_recent_codec = Packed.list monitor_record_codec

(* --- error log --- *)

type severity = Info | Warning | Error | Fatal

let severity_to_int = function Info -> 0 | Warning -> 1 | Error -> 2 | Fatal -> 3

let severity_of_int = function
  | 0 -> Info
  | 1 -> Warning
  | 2 -> Error
  | _ -> Fatal

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

type log_record = {
  lr_module : string;
  lr_severity : severity;
  lr_message : string;
  lr_time : int;
}

let log_record_codec =
  Packed.iso
    ~fwd:(fun ((m, s), (msg, t)) ->
      { lr_module = m; lr_severity = severity_of_int s; lr_message = msg; lr_time = t })
    ~bwd:(fun r -> ((r.lr_module, severity_to_int r.lr_severity), (r.lr_message, r.lr_time)))
    (Packed.pair (Packed.pair Packed.string Packed.int) (Packed.pair Packed.string Packed.int))

type log_query = L_count of int (* min severity *) | L_recent of int

let log_query_codec =
  Packed.tagged
    [
      ( "cnt",
        (function L_count s -> Some (fun buf -> Packed.int.Packed.pack buf s) | _ -> None),
        fun cur -> L_count (Packed.int.Packed.unpack cur) );
      ( "rec",
        (function L_recent n -> Some (fun buf -> Packed.int.Packed.pack buf n) | _ -> None),
        fun cur -> L_recent (Packed.int.Packed.unpack cur) );
    ]

let log_recent_codec = Packed.list log_record_codec
