(* The distributed precision time service (Wang [27], §1.3, §6.1).

   Machines in the world run drifting clocks. The time server publishes its
   own machine's clock as the reference; correctors on other machines
   estimate their offset with a Cristian-style exchange (offset =
   server_time + rtt/2 - local_arrival_time) and install a corrected
   [timestamp] hook into the node.

   Faithful to §6.1, the corrector communicates through the *same* ComMod
   whose sends it is timestamping (with monitoring suppressed for its own
   traffic): a monitored send's timestamp may therefore recursively invoke
   the resource-location primitives and another send/receive pair — the
   scenario the paper walks through. *)

open Ntcs_sim
open Ntcs
open Ntcs_wire

let server_name = "time-server"

(* The server process body: answer every request with our local time. *)
let serve node () =
  match Commod.bind node ~name:server_name ~attrs:[ ("service", "time") ] with
  | Error e -> failwith ("time-server bind failed: " ^ Errors.to_string e)
  | Ok commod ->
    let lcm = Commod.lcm commod in
    let rec loop () =
      match Lcm_layer.recv lcm with
      | Error _ -> loop ()
      | Ok env ->
        if env.Lcm_layer.app_tag = Drts_proto.time_tag && env.Lcm_layer.conv <> 0
        then begin
          let reply =
            Packed.run_pack Drts_proto.time_reply_codec
              { Drts_proto.tr_server_time = Node.now node |> fun now ->
                Machine.local_time (Node.machine node) ~now_us:now }
          in
          ignore
            (Lcm_layer.reply lcm env ~app_tag:Drts_proto.time_tag (Convert.payload_raw reply))
        end;
        loop ()
    in
    loop ()

(* --- corrector --- *)

type corrector = {
  commod : Commod.t;
  mutable server : Addr.t option;
  mutable offset_us : int; (* corrected = local + offset *)
  mutable last_sync_us : int; (* in virtual (global) time *)
  sync_interval_us : int;
  mutable syncs : int;
  mutable failures : int;
}

let create ?(sync_interval_us = 30_000_000) commod =
  {
    commod;
    server = None;
    offset_us = 0;
    last_sync_us = min_int / 2;
    sync_interval_us;
    syncs = 0;
    failures = 0;
  }

let local_now c =
  let node = Commod.node c.commod in
  Machine.local_time (Node.machine node) ~now_us:(Node.now node)

(* One synchronisation exchange. Runs through the ComMod (recursively, when
   triggered from inside a send) with monitoring suppressed. *)
let sync c =
  let node = Commod.node c.commod in
  Lcm_layer.without_monitoring (Commod.lcm c.commod) (fun () ->
      let server =
        match c.server with
        | Some s -> Ok s
        | None -> (
          (* "If this is the first such communication, it will call the
             resource location primitives to locate the module" (§6.1). *)
          match Ali_layer.locate c.commod server_name with
          | Ok addr ->
            c.server <- Some addr;
            Ok addr
          | Error _ as e -> e)
      in
      match server with
      | Error e ->
        c.failures <- c.failures + 1;
        Error e
      | Ok addr -> (
        let t_send = local_now c in
        let req =
          Packed.run_pack Drts_proto.time_request_codec { Drts_proto.tq_client_time = t_send }
        in
        match
          Ali_layer.send_sync c.commod ~dst:addr ~app_tag:Drts_proto.time_tag
            (Convert.payload_raw req)
        with
        | Error e ->
          c.failures <- c.failures + 1;
          Error e
        | Ok env -> (
          match
            Packed.run_unpack_result Drts_proto.time_reply_codec env.Ali_layer.data
          with
          | Error m ->
            c.failures <- c.failures + 1;
            Error (Errors.Bad_message m)
          | Ok reply ->
            let t_arrive = local_now c in
            let rtt = t_arrive - t_send in
            let estimate = reply.Drts_proto.tr_server_time + (rtt / 2) in
            c.offset_us <- estimate - t_arrive;
            c.last_sync_us <- Node.now node;
            c.syncs <- c.syncs + 1;
            Ntcs_util.Metrics.incr (Node.metrics node) "time.syncs";
            Ok c.offset_us)))

(* Corrected timestamp; resynchronises first when the estimate is stale —
   this is the recursive path of §6.1. *)
let now c =
  let node = Commod.node c.commod in
  if Node.now node - c.last_sync_us > c.sync_interval_us then ignore (sync c);
  local_now c + c.offset_us

(* Install as the node's timestamp hook, so LCM monitor records use
   corrected time. *)
let install c =
  let node = Commod.node c.commod in
  node.Node.hooks.Node.timestamp <- (fun () -> now c)

let offset_us c = c.offset_us
let sync_count c = c.syncs
let failure_count c = c.failures

(* True clock error of this corrector's machine against the global clock,
   for experiment evaluation only (a real system could never observe it). *)
let true_error_us c =
  let node = Commod.node c.commod in
  let corrected = local_now c + c.offset_us in
  corrected - Node.now node
