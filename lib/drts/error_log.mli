(** Distributed error logging (§6.2): modules report classified conditions;
    the log server keeps a bounded history and per-severity counts — the
    "running table of errors [that] could be maintained and monitored". *)

open Ntcs

val log_name : string
val history_capacity : int

val serve : Node.t -> unit -> unit
(** Log-server process body. *)

type client

val create_client : Commod.t -> client

val log : client -> Drts_proto.severity -> string -> unit
(** Fire-and-forget report (datagram, monitoring suppressed). *)

val query_count :
  Commod.t -> log_addr:Addr.t -> min_severity:Drts_proto.severity -> (int, Errors.t) result

val query_recent :
  Commod.t -> log_addr:Addr.t -> n:int -> (Drts_proto.log_record list, Errors.t) result
