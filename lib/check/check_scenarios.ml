(* Bounded scenarios for exhaustive schedule exploration.

   Each scenario builds a small cluster from scratch (Explore reruns it once
   per schedule), drives one protocol exchange to completion, and reports
   every invariant violation observable from that schedule:

   - the R3 trace invariants (no gateway peering, bounded recursion, no
     identity conversion) from the PR 1 linter;
   - the circuit-lifecycle automaton over the same trace (Check_lifecycle);
   - simulated process crashes;
   - the scenario's own outcome (the exchange must end the way the protocol
     promises, on *every* schedule, not just the default one).

   first_send crosses a prime gateway so chained opens, splices and
   forwards — the interesting lifecycle traffic — actually occur. break_ns
   is the §6.3 pathology under the LCM guard: partition the name server
   mid-run and insist the fault stays bounded on every interleaving. *)

open Ntcs

type scenario = {
  sc_name : string;
  sc_from : int;
  sc_until : int;
      (* [sc_from, sc_until): the virtual-time window whose ties are
         branched on. The world boots deterministically before it, and
         steady-state maintenance timers (whose ties recur every period,
         forever) run in default order after it — the window is chosen to
         contain the whole exchange under test, so every interleaving of
         the interesting events is still covered while the tree stays
         finite. *)
  sc_make : unit -> Ntcs_sim.Sched.t * (unit -> string list);
}

let payload s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

(* Echo responder; bind failures surface as violations, not exceptions. *)
let spawn_echo c ~machine ~name errs =
  ignore
    (Cluster.spawn c ~machine ~name (fun node ->
         match Commod.bind node ~name with
         | Error e -> errs := Printf.sprintf "echo bind: %s" (Errors.to_string e) :: !errs
         | Ok commod ->
           let rec loop () =
             (match Ali_layer.receive commod with
              | Ok env ->
                if env.Ali_layer.expects_reply then
                  ignore
                    (Ali_layer.reply commod env
                       (Ntcs_wire.Convert.payload_raw
                          (Bytes.cat (Bytes.of_string "echo:") env.Ali_layer.data)))
              | Error _ -> ());
             loop ()
           in
           loop ()))

(* Everything checkable after a schedule ran. *)
let trace_violations ?recursion_limit c =
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  let r3 =
    List.map
      (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
      (Lint_trace.check_all ?recursion_limit entries)
  in
  let lifecycle =
    List.map
      (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
      (Check_lifecycle.check entries)
  in
  let crashes =
    List.map
      (fun (e : Ntcs_sim.Trace.entry) -> Printf.sprintf "process crashed: %s" e.detail)
      (Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash")
  in
  r3 @ lifecycle @ crashes

(* §6.1 first send, across a gateway: NS on the LAN, service on the ring.
   Every schedule must deliver the echo and keep every circuit lifecycle
   legal. *)
let first_send =
  let make () =
    let c =
      Cluster.build
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
            ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ]
        ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
        ~ns:"vax1" ()
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"ap1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"vax1" ~name:"app" (fun node ->
             match Commod.bind node ~name:"app" with
             | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
             | Ok commod -> (
               match Ali_layer.locate commod "svc" with
               | Error e -> outcome := `Err ("locate: " ^ Errors.to_string e)
               | Ok addr -> (
                 match Ali_layer.send_sync commod ~dst:addr (payload "first") with
                 | Error e -> outcome := `Err ("send_sync: " ^ Errors.to_string e)
                 | Ok env -> outcome := `Reply (Bytes.to_string env.Ali_layer.data)))));
      Cluster.settle ~dt:30_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Reply "echo:first" -> []
        | `Reply other -> [ Printf.sprintf "wrong reply %S" other ]
        | `Err e -> [ Printf.sprintf "first send failed: %s" e ]
        | `Not_run -> [ "app never completed" ]
      in
      !errs @ outcome_errs @ trace_violations c
    in
    (Cluster.sched c, body)
  in
  (* The exchange (locate, chained open, splice, echo, teardown) completes
     well before t=4.05s; later ties are 3s-periodic maintenance. *)
  { sc_name = "first-send"; sc_from = 4_000_000; sc_until = 4_050_000; sc_make = make }

(* §6.3 circuit break under the LCM guard: the name server is partitioned
   away mid-run; a fresh lookup must fail cleanly — bounded recursion, no
   crash — on every interleaving of the teardown. *)
let break_ns =
  let make () =
    let tweak cfg = { cfg with Node.ns_fault_guard = true; recursion_limit = 40 } in
    let c =
      Cluster.build ~tweak
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
            ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ]
        ~ns:"vax1" ()
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"sun1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
             match Commod.bind node ~name:"app" with
             | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
             | Ok commod -> (
               match Ali_layer.locate commod "svc" with
               | Error e -> outcome := `Err ("locate svc: " ^ Errors.to_string e)
               | Ok _ -> (
                 Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
                 match Ali_layer.locate commod "never-seen" with
                 | Ok _ -> outcome := `Resolved
                 | Error e -> outcome := `Failed e))));
      Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.partition c "ether");
      Cluster.settle ~dt:60_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Failed
            ( Errors.Name_service_unavailable | Errors.Timeout | Errors.Circuit_failed
            | Errors.Unreachable ) ->
          []
        | `Failed e -> [ Printf.sprintf "unexpected error: %s" (Errors.to_string e) ]
        | `Resolved -> [ "lookup cannot succeed while partitioned" ]
        | `Err e -> [ e ]
        | `Not_run -> [ "app never finished (recursion hang?)" ]
      in
      let guard_errs =
        if Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.ns_guard_hits" > 0 then []
        else [ "guard never engaged" ]
      in
      !errs @ outcome_errs @ guard_errs @ trace_violations ~recursion_limit:40 c
    in
    (Cluster.sched c, body)
  in
  (* Window covers the partition (t=6s), the app's wake (t=8s) and the
     whole fault exchange; the tree is small enough to leave it wide. *)
  { sc_name = "break-ns"; sc_from = 4_000_000; sc_until = 64_000_000; sc_make = make }

let all = [ first_send; break_ns ]

let explore ?max_schedules sc =
  Ntcs_sim.Explore.run ?max_schedules
    ~branch:(fun ~time ~owners:_ -> time >= sc.sc_from && time < sc.sc_until)
    ~make:sc.sc_make ()
