(* Bounded scenarios for exhaustive schedule exploration.

   Each scenario builds a small cluster from scratch (Explore reruns it once
   per schedule), drives one protocol exchange to completion, and reports
   every invariant violation observable from that schedule:

   - the R3 trace invariants (no gateway peering, bounded recursion, no
     identity conversion) from the PR 1 linter;
   - the circuit-lifecycle automaton over the same trace (Check_lifecycle);
   - simulated process crashes;
   - the scenario's own outcome (the exchange must end the way the protocol
     promises, on *every* schedule, not just the default one).

   first_send crosses a prime gateway so chained opens, splices and
   forwards — the interesting lifecycle traffic — actually occur. break_ns
   is the §6.3 pathology under the LCM guard: partition the name server
   mid-run and insist the fault stays bounded on every interleaving. *)

open Ntcs

(* The instrumentation mode is the scheduler's own canonical record now
   (PR 8) — this harness used to carry its own {m_sanitize; m_races}
   copy. Still threaded explicitly through every scenario build: a
   module-level flag here would itself be ambient shared state, exactly
   what R8 forbids. *)
module Mode = Ntcs_sim.Sched.Mode

type scenario = {
  sc_name : string;
  sc_from : int;
  sc_until : int;
      (* [sc_from, sc_until): the virtual-time window whose ties are
         branched on. The world boots deterministically before it, and
         steady-state maintenance timers (whose ties recur every period,
         forever) run in default order after it — the window is chosen to
         contain the whole exchange under test, so every interleaving of
         the interesting events is still covered while the tree stays
         finite. *)
  sc_make : Mode.t -> Ntcs_sim.World.t * (unit -> string list);
}

(* The world configuration a mode asks for: sanitizer armed declaratively
   at creation (before any hand-out), fault plane likewise. [races] rides
   in the config too, but arming the checker is this library's job (the
   sim layer sits below Check_race) — see [built]. *)
let config_of_mode ?faults ?(naming = Ntcs_sim.World.Config.default_naming)
    (mode : Mode.t) =
  {
    Ntcs_sim.World.Config.default with
    Ntcs_sim.World.Config.sanitize = mode.Mode.sanitize;
    races = mode.Mode.races;
    faults;
    naming;
  }

let payload s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

(* Echo responder; bind failures surface as violations, not exceptions. *)
let spawn_echo c ~machine ~name errs =
  ignore
    (Cluster.spawn c ~machine ~name (fun node ->
         match Commod.bind node ~name with
         | Error e -> errs := Printf.sprintf "echo bind: %s" (Errors.to_string e) :: !errs
         | Ok commod ->
           let rec loop () =
             (match Ali_layer.receive commod with
              | Ok env ->
                if Ali_layer.expects_reply env then
                  ignore
                    (Ali_layer.reply commod env
                       (Ntcs_wire.Convert.payload_raw
                          (Bytes.cat (Bytes.of_string "echo:") env.Ali_layer.data)))
              | Error _ -> ());
             loop ()
           in
           loop ()))

(* Arm the race checker right after the world is built — before any event
   executes, so it sees every push from the first one on. (The sanitizer
   needs no step here: [config_of_mode] arms it inside [World.create].) *)
let built (mode : Mode.t) c =
  if mode.Mode.races then ignore (Check_race.arm (Cluster.world c));
  c

(* Pool-sanitizer soak mode (`ntcs_check --sanitize` / `@sanitize`): fail
   the schedule on any aliasing violation (poison, double release, foreign
   release, rejected release). Leaks are *reported* (as
   pool.sanitizer.leak trace events) but are not failures: when virtual
   time stops, crashed machines and undrained in-flight segments
   legitimately still hold buffers. *)
let sanitizer_violations (mode : Mode.t) c =
  if not mode.Mode.sanitize then []
  else begin
    ignore (Ntcs_sim.World.pool_leak_check (Cluster.world c));
    List.concat_map
      (fun (name, what) ->
        let n = Ntcs_util.Metrics.get (Cluster.metrics c) name in
        if n > 0 then [ Printf.sprintf "pool sanitizer: %d %s" n what ] else [])
      [
        ("pool.sanitizer.poison", "buffer(s) written through a stale view");
        ("pool.sanitizer.double_release", "double release(s)");
        ("pool.sanitizer.foreign_release", "foreign release(s)");
        ("pool.bad_release", "rejected release(s)");
      ]
  end

(* Race soak mode (`ntcs_check --races` / `@race`): any conflicting access
   pair the happens-before checker could not order fails the schedule. The
   checker already deduplicates (one finding per cell/owner/kind pattern)
   and emits each as a race.conflict trace event, so the trace is the
   report. *)
let race_violations (mode : Mode.t) c =
  if not mode.Mode.races then []
  else
    List.map
      (fun (e : Ntcs_sim.Trace.entry) -> Printf.sprintf "race: %s" e.detail)
      (Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"race.conflict")

(* Everything checkable after a schedule ran. *)
let trace_violations ?recursion_limit mode c =
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  let r3 =
    List.map
      (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
      (Lint_trace.check_all ?recursion_limit entries)
  in
  let lifecycle =
    List.map
      (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
      (Check_lifecycle.check entries)
  in
  let crashes =
    List.map
      (fun (e : Ntcs_sim.Trace.entry) -> Printf.sprintf "process crashed: %s" e.detail)
      (Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash")
  in
  let spans =
    List.map
      (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
      (Check_spans.check (Ntcs_obs.Registry.spans (Cluster.metrics c)))
  in
  let naming = Check_naming.check entries in
  r3 @ lifecycle @ crashes @ spans @ naming @ sanitizer_violations mode c
  @ race_violations mode c

(* §6.1 first send, across a gateway: NS on the LAN, service on the ring.
   Every schedule must deliver the echo and keep every circuit lifecycle
   legal. *)
let first_send =
  let make mode =
    let c =
      Cluster.build ~config:(config_of_mode mode)
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
            ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ]
        ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
        ~ns:"vax1" ()
      |> built mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"ap1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"vax1" ~name:"app" (fun node ->
             match Commod.bind node ~name:"app" with
             | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
             | Ok commod -> (
               match Ali_layer.locate commod "svc" with
               | Error e -> outcome := `Err ("locate: " ^ Errors.to_string e)
               | Ok addr -> (
                 match Ali_layer.send_sync commod ~dst:addr (payload "first") with
                 | Error e -> outcome := `Err ("send_sync: " ^ Errors.to_string e)
                 | Ok env -> outcome := `Reply (Bytes.to_string env.Ali_layer.data)))));
      Cluster.settle ~dt:30_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Reply "echo:first" -> []
        | `Reply other -> [ Printf.sprintf "wrong reply %S" other ]
        | `Err e -> [ Printf.sprintf "first send failed: %s" e ]
        | `Not_run -> [ "app never completed" ]
      in
      !errs @ outcome_errs @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  (* The exchange (locate, chained open, splice, echo, teardown) completes
     well before t=4.05s; later ties are 3s-periodic maintenance. *)
  { sc_name = "first-send"; sc_from = 4_000_000; sc_until = 4_050_000; sc_make = make }

(* §6.3 circuit break under the LCM guard: the name server is partitioned
   away mid-run; a fresh lookup must fail cleanly — bounded recursion, no
   crash — on every interleaving of the teardown. *)
let break_ns =
  let make mode =
    let tweak cfg = { cfg with Node.ns_fault_guard = true; recursion_limit = 40 } in
    let c =
      Cluster.build ~config:(config_of_mode mode) ~tweak
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
            ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ]
        ~ns:"vax1" ()
      |> built mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"sun1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
             match Commod.bind node ~name:"app" with
             | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
             | Ok commod -> (
               match Ali_layer.locate commod "svc" with
               | Error e -> outcome := `Err ("locate svc: " ^ Errors.to_string e)
               | Ok _ -> (
                 Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
                 match Ali_layer.locate commod "never-seen" with
                 | Ok _ -> outcome := `Resolved
                 | Error e -> outcome := `Failed e))));
      Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.partition c "ether");
      Cluster.settle ~dt:60_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Failed
            ( Errors.Name_service_unavailable | Errors.Timeout | Errors.Circuit_failed
            | Errors.Unreachable ) ->
          []
        | `Failed e -> [ Printf.sprintf "unexpected error: %s" (Errors.to_string e) ]
        | `Resolved -> [ "lookup cannot succeed while partitioned" ]
        | `Err e -> [ e ]
        | `Not_run -> [ "app never finished (recursion hang?)" ]
      in
      let guard_errs =
        if Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.ns_guard_hits" > 0 then []
        else [ "guard never engaged" ]
      in
      !errs @ outcome_errs @ guard_errs @ trace_violations ~recursion_limit:40 mode c
    in
    (Cluster.world c, body)
  in
  (* Window covers the partition (t=6s), the app's wake (t=8s) and the
     whole fault exchange; the tree is small enough to leave it wide. *)
  { sc_name = "break-ns"; sc_from = 4_000_000; sc_until = 64_000_000; sc_make = make }

(* ----- fault-plane soak scenarios (PR 3) -----

   Same contract as the scenarios above — every explored schedule must be
   violation-free — but the world now runs under an armed {!Ntcs_sim.Faults}
   plane, so the exchanges being checked are the *recovery* paths: LCM
   retry/backoff, the §3.5 oracle, and the §6.3 guard. Their trees are
   effectively unbounded (retry timers breed ties forever), so unlike [all]
   these are run with truncation allowed: the soak contract is "at least N
   schedules, zero failures", not exhaustiveness. *)

(* Trace checks for runs where divergence — and with it a simulated process
   crash — is the *expected* outcome: R3 minus the recursion bound, plus
   the lifecycle automaton. *)
let trace_violations_crashes_expected mode c =
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  List.map
    (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v)
    (Lint_trace.check_all entries @ Check_lifecycle.check entries
    @ Check_spans.check (Ntcs_obs.Registry.spans (Cluster.metrics c)))
  @ Check_naming.check entries
  @ sanitizer_violations mode c @ race_violations mode c

let lan3 ?tweak ?faults mode =
  Cluster.build ~config:(config_of_mode ?faults mode) ?tweak
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
      ]
    ~ns:"vax1" ()
  |> built mode

(* App body shared by the recovery soaks: locate [svc], prove the path works
   once, then — after the faults have begun — keep sending until an echo
   comes back or virtual time [give_up_us] passes. Every error along the way
   (timeouts from dropped frames, broken circuits from partitions,
   destination-dead from the oracle while the replacement is not yet
   registered) is survivable by design: the loop just tries again. *)
let spawn_chaser c ~machine ~text ~give_up_us outcome =
  ignore
    (Cluster.spawn c ~machine ~name:"app" (fun node ->
         match Commod.bind node ~name:"app" with
         | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
         | Ok commod -> (
           match Ali_layer.locate commod "svc" with
           | Error e -> outcome := `Err ("locate: " ^ Errors.to_string e)
           | Ok addr -> (
             match Ali_layer.send_sync commod ~dst:addr (payload "warm") with
             | Error e -> outcome := `Err ("warm-up: " ^ Errors.to_string e)
             | Ok _ ->
               let sched = Node.sched node in
               (* Into the fault window. *)
               Ntcs_sim.Sched.sleep sched 3_000_000;
               let rec chase () =
                 if Ntcs_sim.Sched.now sched > give_up_us then outcome := `Gave_up
                 else
                   match
                     Ali_layer.send_sync commod ~dst:addr ~timeout_us:1_000_000
                       (payload text)
                   with
                   | Ok env -> outcome := `Reply (Bytes.to_string env.Ali_layer.data)
                   | Error _ ->
                     Ntcs_sim.Sched.sleep sched 1_000_000;
                     chase ()
               in
               chase ()))))

let chaser_errs ~text outcome =
  match !outcome with
  | `Reply r when r = "echo:" ^ text -> []
  | `Reply other -> [ Printf.sprintf "wrong reply %S" other ]
  | `Gave_up -> [ "app never recovered" ]
  | `Err e -> [ e ]
  | `Not_run -> [ "app never completed" ]

let metric_at_least c name n msg =
  if Ntcs_util.Metrics.get (Cluster.metrics c) name >= n then [] else [ msg ]

(* Partition-heal: sever the service's machine from the rest of the LAN for
   4s (with lossy/duplicating/delaying links around the window for good
   measure), then heal. The app must ride out the outage on the LCM retry
   policy and converge after the heal — on every interleaving. *)
let fault_partition_heal =
  let make mode =
    let c =
      lan3
        ~faults:
          {
            Ntcs_sim.Faults.seed = 0xFA11;
            rules =
              [
                Ntcs_sim.Faults.rule ~from_us:5_000_000 ~until_us:11_000_000 ~drop:0.03
                  ~dup:0.05 ~delay:0.2 ~delay_us:20_000 ();
              ];
            schedule =
              [
                (6_000_000, Ntcs_sim.Faults.Partition [ [ "sun1" ]; [ "vax1"; "sun2" ] ]);
                (10_000_000, Ntcs_sim.Faults.Heal);
              ];
          }
        mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"sun1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      spawn_chaser c ~machine:"sun2" ~text:"heal" ~give_up_us:35_000_000 outcome;
      Cluster.settle ~dt:40_000_000 c;
      !errs @ chaser_errs ~text:"heal" outcome
      @ metric_at_least c "fault.blocked_frames" 1 "partition never blocked a frame"
      @ metric_at_least c "lcm.retries" 1 "recovery never engaged the retry policy"
      @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  (* Branch across the outage and the convergence that follows it. *)
  { sc_name = "fault-partition-heal"; sc_from = 5_000_000; sc_until = 36_000_000; sc_make = make }

(* Crash-restart of a located module (§3.5): the service's machine crashes,
   restarts, and a fresh generation re-registers under the same name. The
   app holds the stale address; recovery must go through the address-fault
   oracle ("map the old UAdd to its name, and then look for a similar name
   in a newer module") on every interleaving. *)
let fault_crash_restart =
  let make mode =
    let c =
      lan3
        ~faults:
          {
            Ntcs_sim.Faults.seed = 0xFA12;
            rules = [];
            schedule =
              [
                (6_000_000, Ntcs_sim.Faults.Crash "sun1");
                (8_000_000, Ntcs_sim.Faults.Restart "sun1");
              ];
          }
        mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"sun1" ~name:"svc" errs;
      Cluster.settle c;
      (* The replacement generation, spawned once the machine is back. *)
      Ntcs_sim.Sched.at (Cluster.sched c) 9_000_000 (fun () ->
          spawn_echo c ~machine:"sun1" ~name:"svc" errs);
      let outcome = ref `Not_run in
      spawn_chaser c ~machine:"sun2" ~text:"gen2" ~give_up_us:38_000_000 outcome;
      Cluster.settle ~dt:45_000_000 c;
      !errs @ chaser_errs ~text:"gen2" outcome
      @ metric_at_least c "lcm.relocations" 1 "stale address never healed through the oracle"
      @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  { sc_name = "fault-crash-restart"; sc_from = 5_000_000; sc_until = 39_000_000; sc_make = make }

(* NS partition via the fault plane, under both guard settings. Guard on:
   the §6.3 fault recursion must stay bounded on every schedule (this is
   [break_ns] with the partition injected by the fault plane instead of by
   the test driver). Guard off: the paper's divergence — recursion through
   the NSP layer "until either the stack overflows, or the connection can
   be reestablished" — must reproduce deterministically on every schedule. *)
let ns_partition_make ~guard ~seed mode =
  let tweak cfg = { cfg with Node.ns_fault_guard = guard; recursion_limit = 40 } in
  let c =
    lan3 ~tweak
      ~faults:
        {
          Ntcs_sim.Faults.seed;
          rules = [];
          schedule =
            [ (6_000_000, Ntcs_sim.Faults.Partition [ [ "vax1" ]; [ "sun1"; "sun2" ] ]) ];
        }
      mode
  in
  let errs = ref [] in
  let outcome = ref `Not_run in
  let body_common () =
    Cluster.settle c;
    spawn_echo c ~machine:"sun1" ~name:"svc" errs;
    Cluster.settle c;
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
           match Commod.bind node ~name:"app" with
           | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
           | Ok commod -> (
             match Ali_layer.locate commod "svc" with
             | Error e -> outcome := `Err ("locate svc: " ^ Errors.to_string e)
             | Ok _ -> (
               (* Wake with the name server already partitioned away. *)
               Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
               match Ali_layer.locate commod "never-seen" with
               | Ok _ -> outcome := `Resolved
               | Error e -> outcome := `Failed e))));
    Cluster.settle ~dt:60_000_000 c
  in
  (c, errs, outcome, body_common)

let fault_ns_partition_guard =
  let make mode =
    let c, errs, outcome, body_common = ns_partition_make ~guard:true ~seed:0xFA13 mode in
    let body () =
      body_common ();
      let outcome_errs =
        match !outcome with
        | `Failed
            ( Errors.Name_service_unavailable | Errors.Timeout | Errors.Circuit_failed
            | Errors.Unreachable ) ->
          []
        | `Failed e -> [ Printf.sprintf "unexpected error: %s" (Errors.to_string e) ]
        | `Resolved -> [ "lookup cannot succeed while partitioned" ]
        | `Err e -> [ e ]
        | `Not_run -> [ "app never finished (recursion hang?)" ]
      in
      !errs @ outcome_errs
      @ metric_at_least c "lcm.ns_guard_hits" 1 "guard never engaged"
      @ trace_violations ~recursion_limit:40 mode c
    in
    (Cluster.world c, body)
  in
  { sc_name = "fault-ns-partition-guard"; sc_from = 4_000_000; sc_until = 64_000_000; sc_make = make }

let fault_ns_partition_noguard =
  let make mode =
    let c, errs, outcome, body_common = ns_partition_make ~guard:false ~seed:0xFA14 mode in
    let body () =
      body_common ();
      let crashes =
        List.length
          (Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c))
             ~cat:"sim.proc_crash")
      in
      let deep = Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.fault_queries" in
      (* The divergence must be observed: either the app died of the
         simulated stack overflow, or the depth bound cut a recursion that
         had already gone deep. A clean bounded failure here would mean the
         §6.3 bug no longer reproduces. *)
      let divergence_errs =
        match !outcome with
        | `Not_run when crashes > 0 -> []
        | `Not_run -> [ "app hung without crashing or diverging" ]
        | `Err e -> [ e ]
        | `Resolved | `Failed _ ->
          if deep >= 5 then []
          else [ Printf.sprintf "fault recursion never went deep (fault_queries=%d)" deep ]
      in
      let guard_errs =
        if Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.ns_guard_hits" = 0 then []
        else [ "guard engaged with ns_fault_guard=false" ]
      in
      !errs @ divergence_errs @ guard_errs @ trace_violations_crashes_expected mode c
    in
    (Cluster.world c, body)
  in
  {
    sc_name = "fault-ns-partition-noguard";
    sc_from = 4_000_000;
    sc_until = 64_000_000;
    sc_make = make;
  }

(* ----- sharded naming plane (DESIGN.md §15, PR 9) -----

   Four shards round-robin over the three LAN machines (vax1 owns 0 and 3,
   sun1 owns 1, sun2 owns 2) plus [ap1], a shard-less machine that hosts
   the service under test so it can crash without taking a name server
   with it. [trace_violations] already folds in [Check_naming], so every
   schedule of every scenario below is also checked for cache coherence:
   no stale hit ever resolves as fresh, store generations never go
   backwards, shard forwarding stays within one hop. *)

let sharded_naming = { Ntcs_sim.World.Config.shards = 4; cache_capacity = 64 }

let lan4_sharded ?tweak ?faults mode =
  Cluster.build ~config:(config_of_mode ?faults ~naming:sharded_naming mode) ?tweak
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("ap1", Ntcs_sim.Machine.Apollo, [ "ether" ]);
      ]
    ~ns:"vax1" ~ns_replicas:[ "sun1"; "sun2" ] ()
  |> built mode

(* First name (from a deterministic candidate stream) owned by [shard]
   under the 4-way FNV map — lets a scenario pin where a binding lives. *)
let name_on_shard shard =
  let rec pick i =
    let n = Printf.sprintf "svc%d" i in
    if Ntcs_naming.Shard_map.hash_name n mod 4 = shard then n else pick (i + 1)
  in
  pick 0

(* Shard routing with every owner alive: an app resolves a service through
   its versioned cache (second locate must hit), and a Lookup_v planted on
   a *non-owner* server must come back relayed from the owner — one
   name-to-name hop, owner generation attached. *)
let naming_shard_route =
  let make mode =
    let c = lan4_sharded mode in
    let errs = ref [] in
    let svc_shard = Ntcs_naming.Shard_map.hash_name "svc" mod 4 in
    let non_owner = Addr.unique ~server_id:((svc_shard + 1) mod 4) ~value:0 in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"ap1" ~name:"svc" errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
             match Commod.bind node ~name:"app" with
             | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
             | Ok commod -> (
               match (Ali_layer.locate commod "svc", Ali_layer.locate commod "svc") with
               | Error e, _ | _, Error e ->
                 outcome := `Err ("locate: " ^ Errors.to_string e)
               | Ok addr, Ok addr2 when not (Addr.equal addr addr2) ->
                 outcome := `Err "cached locate disagrees with the first"
               | Ok addr, Ok _ -> (
                 match Ali_layer.send_sync commod ~dst:addr (payload "route") with
                 | Error e -> outcome := `Err ("send_sync: " ^ Errors.to_string e)
                 | Ok env -> (
                   (* Plant the versioned lookup on a non-owner: the shard
                      router must relay the owner's answer. *)
                   match
                     Lcm_layer.send_sync (Commod.lcm commod) ~dst:non_owner
                       ~app_tag:Ns_proto.app_tag
                       (Ntcs_wire.Convert.payload_raw
                          (Ns_proto.pack_request (Ns_proto.Lookup_v ("svc", 0))))
                   with
                   | Error e -> outcome := `Err ("routed lookup: " ^ Errors.to_string e)
                   | Ok renv -> (
                     match Ns_proto.unpack_response renv.Lcm_layer.data with
                     | Ok (Ns_proto.R_addr_v (raddr, rshard, rgen)) ->
                       outcome :=
                         `Routed (Bytes.to_string env.Ali_layer.data, raddr, addr, rshard, rgen)
                     | Ok (Ns_proto.R_error m) ->
                       outcome := `Err ("routed lookup refused: " ^ m)
                     | Ok _ -> outcome := `Err "routed lookup: unexpected response"
                     | Error m -> outcome := `Err ("routed lookup: " ^ m)))))));
      Cluster.settle ~dt:30_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Routed ("echo:route", raddr, addr, rshard, rgen) ->
          (if Addr.equal raddr addr then []
           else [ "routed lookup answered a different address" ])
          @ (if rshard = svc_shard then []
             else [ Printf.sprintf "routed lookup named shard %d, not %d" rshard svc_shard ])
          @ (if rgen >= 1 then []
             else [ "routed answer came back unversioned (owner should have stamped it)" ])
        | `Routed (other, _, _, _, _) -> [ Printf.sprintf "wrong reply %S" other ]
        | `Err e -> [ e ]
        | `Not_run -> [ "app never completed" ]
      in
      !errs @ outcome_errs
      @ metric_at_least c "ns.shard.forwards" 1 "shard router never forwarded"
      @ metric_at_least c "nsp.cache_hits" 1 "second locate never hit the cache"
      @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  { sc_name = "naming-shard-route"; sc_from = 4_000_000; sc_until = 4_100_000; sc_make = make }

(* §3.5 relocation racing a cached lookup: the service's machine crashes and
   a new generation re-registers under the same name; the owner's bumped
   generation must retire every cached copy of the old answer. A chaser
   holds the stale address (heals through the fault oracle: splice repair);
   a looker keeps resolving the name through its versioned cache. On every
   interleaving the splice repair must win — stale hits resolve as misses,
   never as deliveries on the old circuit (Check_naming). *)
let naming_stale_splice =
  let make mode =
    let c =
      lan4_sharded
        ~faults:
          {
            Ntcs_sim.Faults.seed = 0xFA15;
            rules = [];
            schedule =
              [
                (6_000_000, Ntcs_sim.Faults.Crash "ap1");
                (8_000_000, Ntcs_sim.Faults.Restart "ap1");
              ];
          }
        mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"ap1" ~name:"svc" errs;
      Cluster.settle c;
      (* The relocated generation, once the machine is back. *)
      Ntcs_sim.Sched.at (Cluster.sched c) 9_000_000 (fun () ->
          spawn_echo c ~machine:"ap1" ~name:"svc" errs);
      let outcome = ref `Not_run in
      spawn_chaser c ~machine:"sun2" ~text:"gen2" ~give_up_us:38_000_000 outcome;
      (* The looker: resolve through the versioned cache across the whole
         relocation, then keep the final answer. *)
      let looked = ref `Not_run in
      ignore
        (Cluster.spawn c ~machine:"sun1" ~name:"looker" (fun node ->
             match Commod.bind node ~name:"looker" with
             | Error e -> looked := `Err ("looker bind: " ^ Errors.to_string e)
             | Ok commod ->
               let sched = Node.sched node in
               let rec look () =
                 if Ntcs_sim.Sched.now sched > 38_000_000 then ()
                 else begin
                   (match Ali_layer.locate commod "svc" with
                    | Ok addr -> looked := `Located addr
                    | Error _ -> ());
                   Ntcs_sim.Sched.sleep sched 1_500_000;
                   look ()
                 end
               in
               look ()));
      Cluster.settle ~dt:45_000_000 c;
      let looker_errs =
        match !looked with
        | `Located _ -> []
        | `Err e -> [ e ]
        | `Not_run -> [ "looker never resolved svc" ]
      in
      !errs @ chaser_errs ~text:"gen2" outcome @ looker_errs
      @ metric_at_least c "lcm.relocations" 1 "stale address never healed through the oracle"
      @ metric_at_least c "ns.invalidations" 1 "relocation never bumped a shard generation"
      @ metric_at_least c "nsp.cache_hits" 1 "the versioned cache was never consulted"
      @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  { sc_name = "naming-stale-splice"; sc_from = 5_000_000; sc_until = 39_000_000; sc_make = make }

(* Shard loss: the machine owning the probe name's shard crashes (taking
   that name server with it — no restart). A fresh app must still bind,
   resolve the name and reach the service: owner-first lookup fails over
   down the replica list, the surviving shard router's forward to the dead
   owner degrades into a backup answer (unversioned), and delivery
   succeeds through replication. *)
let naming_shard_loss =
  let probe = name_on_shard 1 (* owned by the name server hosted on sun1 *) in
  let make mode =
    let c =
      lan4_sharded
        ~faults:
          {
            Ntcs_sim.Faults.seed = 0xFA16;
            rules = [];
            schedule = [ (6_000_000, Ntcs_sim.Faults.Crash "sun1") ];
          }
        mode
    in
    let errs = ref [] in
    let body () =
      Cluster.settle c;
      spawn_echo c ~machine:"ap1" ~name:probe errs;
      Cluster.settle c;
      let outcome = ref `Not_run in
      Ntcs_sim.Sched.at (Cluster.sched c) 8_000_000 (fun () ->
          ignore
            (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
                 match Commod.bind node ~name:"app" with
                 | Error e -> outcome := `Err ("bind: " ^ Errors.to_string e)
                 | Ok commod -> (
                   match Ali_layer.locate commod probe with
                   | Error e -> outcome := `Err ("locate: " ^ Errors.to_string e)
                   | Ok addr -> (
                     match
                       Ali_layer.send_sync commod ~dst:addr (payload "survive")
                     with
                     | Error e -> outcome := `Err ("send_sync: " ^ Errors.to_string e)
                     | Ok env -> outcome := `Reply (Bytes.to_string env.Ali_layer.data))))));
      Cluster.settle ~dt:60_000_000 c;
      let outcome_errs =
        match !outcome with
        | `Reply "echo:survive" -> []
        | `Reply other -> [ Printf.sprintf "wrong reply %S" other ]
        | `Err e -> [ Printf.sprintf "lookup after shard loss failed: %s" e ]
        | `Not_run -> [ "app never completed" ]
      in
      !errs @ outcome_errs
      @ metric_at_least c "ns.shard.fallbacks" 1
          "surviving replicas never answered for the lost shard"
      @ metric_at_least c "nsp.failovers" 1 "the client never failed over"
      @ trace_violations mode c
    in
    (Cluster.world c, body)
  in
  { sc_name = "naming-shard-loss"; sc_from = 5_000_000; sc_until = 30_000_000; sc_make = make }

let all = [ first_send; break_ns ]

let naming = [ naming_shard_route; naming_stale_splice; naming_shard_loss ]

let faults =
  [
    fault_partition_heal;
    fault_crash_restart;
    fault_ns_partition_guard;
    fault_ns_partition_noguard;
    naming_stale_splice;
    naming_shard_loss;
  ]

let explore ?max_schedules ?(mode = Mode.default) sc =
  Ntcs_sim.Explore.run ?max_schedules
    ~branch:(fun ~time ~owners:_ -> time >= sc.sc_from && time < sc.sc_until)
    ~make:(fun () ->
      let w, body = sc.sc_make mode in
      (Ntcs_sim.World.sched w, body))
    ()
