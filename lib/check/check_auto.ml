(* The circuit-lifecycle automaton, declared exactly once.

   idle -> opening -> established -> draining -> closed, with reject and
   break edges. Both halves of ntcs_check consume this single declaration:

   - statically, the kind table below says which protocol constructors map
     to which automaton input and which modules must dispatch on them
     (Check_proto verifies the table against proto.ml/ns_proto.ml and the
     modules against the table);
   - dynamically, [transition] is the oracle Check_lifecycle replays every
     simulation trace through, schedule by schedule.

   So a drift between what the code handles and what the automaton admits is
   a diagnostic in both directions, not a silently stale comment. *)

type state = Idle | Opening | Established | Draining | Closed

type input =
  | Open_sent (* origin asked for a circuit: IVC_OPEN / ND HELLO sent *)
  | Open_rcvd (* target (or gateway splice) saw the open and committed *)
  | Accept (* origin learned the open succeeded: IVC_ACCEPT / HELLO_ACK *)
  | Reject (* origin learned the open failed: IVC_REJECT *)
  | Traffic (* payload-bearing frame: DATA / DGRAM / REPLY / PING / PONG *)
  | Close (* orderly teardown: IVC_CLOSE, cascade included (§4.3) *)
  | Break (* the circuit underneath failed *)

let all_states = [ Idle; Opening; Established; Draining; Closed ]
let all_inputs = [ Open_sent; Open_rcvd; Accept; Reject; Traffic; Close; Break ]

let state_to_string = function
  | Idle -> "idle"
  | Opening -> "opening"
  | Established -> "established"
  | Draining -> "draining"
  | Closed -> "closed"

let input_to_string = function
  | Open_sent -> "open-sent"
  | Open_rcvd -> "open-received"
  | Accept -> "accept"
  | Reject -> "reject"
  | Traffic -> "traffic"
  | Close -> "close"
  | Break -> "break"

type step =
  | Goto of state
  | Stay
  | Violation of string

let transition state input =
  match (state, input) with
  | Idle, Open_sent -> Goto Opening
  | Idle, Open_rcvd -> Goto Established (* target side commits on the open *)
  | Idle, (Accept | Reject) -> Violation "accept/reject for a circuit that was never opened"
  | Idle, Traffic -> Violation "traffic on a circuit that was never opened"
  | Idle, Close -> Stay (* cascades may cross a leg already forgotten *)
  | Idle, Break -> Stay
  | Opening, Open_sent -> Stay (* open retry *)
  | Opening, Open_rcvd -> Violation "open collision on a label still being opened"
  | Opening, Accept -> Goto Established
  | Opening, Reject -> Goto Closed
  | Opening, Traffic -> Violation "traffic before the open was accepted"
  | Opening, Close -> Goto Closed (* opener gave up (timeout) *)
  | Opening, Break -> Goto Closed
  | Established, Open_sent -> Violation "re-open of a live label"
  | Established, Open_rcvd -> Violation "open/splice on a live label"
  | Established, Accept -> Stay (* duplicate accept: benign *)
  | Established, Reject -> Violation "reject on an established circuit"
  | Established, Traffic -> Stay
  | Established, Close -> Goto Draining
  | Established, Break -> Goto Closed
  | Draining, (Open_sent | Open_rcvd) -> Violation "label reused while draining"
  | Draining, (Accept | Reject) -> Violation "accept/reject while draining"
  | Draining, Traffic -> Violation "traffic forwarded after close (§4.3 teardown ordering)"
  | Draining, Close -> Goto Closed (* both directions of the cascade met *)
  | Draining, Break -> Goto Closed
  | Closed, (Open_sent | Open_rcvd) -> Violation "label reused after close"
  | Closed, (Accept | Reject) -> Violation "accept/reject after close"
  | Closed, Traffic -> Violation "traffic on a closed circuit"
  | Closed, (Close | Break) -> Stay (* teardown is idempotent *)

(* Structural self-check, run by ntcs_check and the test suite: the checker
   must not silently rot either. *)
let check_automaton () =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* Every state is reachable from Idle through legal steps. *)
  let reachable = ref [ Idle ] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if List.mem s !reachable then
          List.iter
            (fun i ->
              match transition s i with
              | Goto s' when not (List.mem s' !reachable) ->
                reachable := s' :: !reachable;
                changed := true
              | Goto _ | Stay | Violation _ -> ())
            all_inputs)
      all_states
  done;
  List.iter
    (fun s ->
      if not (List.mem s !reachable) then
        note "state %s is unreachable from idle" (state_to_string s))
    all_states;
  (* Closed is absorbing: no legal step leaves it. *)
  List.iter
    (fun i ->
      match transition Closed i with
      | Goto s -> note "closed is not absorbing: %s leads to %s" (input_to_string i) (state_to_string s)
      | Stay | Violation _ -> ())
    all_inputs;
  (* Traffic is legal exactly in Established: the ordering theorem the
     dynamic checker relies on. *)
  List.iter
    (fun s ->
      match (s, transition s Traffic) with
      | Established, (Stay | Goto Established) -> ()
      | Established, _ -> note "established must carry traffic"
      | _, (Stay | Goto _) -> note "traffic must be illegal in %s" (state_to_string s)
      | _, Violation _ -> ())
    all_states;
  List.rev !problems

(* --- the protocol-facing declarations --- *)

(* Proto.kind constructors, in declaration order, with the automaton input
   each one drives and the modules that must dispatch on it. Check_proto
   verifies the name column against proto.ml (both directions) and the
   handler column against the named modules' sources. *)
let kinds : (string * input * string list) list =
  [
    ("Data", Traffic, [ "Lcm_layer"; "Ip_layer" ]);
    ("Dgram", Traffic, [ "Lcm_layer"; "Ip_layer" ]);
    ("Reply", Traffic, [ "Lcm_layer"; "Ip_layer" ]);
    ("Hello", Open_sent, [ "Nd_layer"; "Ip_layer"; "Lcm_layer" ]);
    ("Hello_ack", Accept, [ "Nd_layer"; "Ip_layer"; "Lcm_layer" ]);
    ("Ivc_open", Open_rcvd, [ "Ip_layer"; "Lcm_layer" ]);
    ("Ivc_accept", Accept, [ "Ip_layer"; "Lcm_layer" ]);
    ("Ivc_reject", Reject, [ "Ip_layer"; "Lcm_layer"; "Gateway" ]);
    ("Ivc_close", Close, [ "Ip_layer"; "Lcm_layer"; "Gateway" ]);
    ("Ping", Traffic, [ "Lcm_layer"; "Ip_layer" ]);
    ("Pong", Traffic, [ "Lcm_layer"; "Ip_layer" ]);
  ]

let kind_names = List.map (fun (k, _, _) -> k) kinds

(* Ns_proto.request constructors, in declaration order, with the response
   each one is answered by. A module that issues a request must dispatch on
   its response (and on R_error); the server must dispatch on all of them. *)
let ns_requests : (string * string) list =
  [
    ("Register", "R_registered");
    ("Lookup", "R_addr");
    ("Lookup_v", "R_addr_v");
    ("Lookup_attrs", "R_entries");
    ("Resolve", "R_entry");
    ("Resolve_v", "R_entry_v");
    ("Forward", "R_forward");
    ("Deregister", "R_ok");
    ("List_gateways", "R_entries");
    ("Sync_pull", "R_sync");
    ("Sync_push", "R_ok");
  ]

(* Ns_proto.response constructors, in declaration order. *)
let ns_responses =
  [
    "R_registered"; "R_addr"; "R_addr_v"; "R_entry"; "R_entry_v"; "R_entries";
    "R_forward"; "R_ok"; "R_sync"; "R_error";
  ]

(* Modules that implement the naming-service server side: they must handle
   every request. *)
let ns_servers = [ "Name_server" ]

(* The gateway event alternatives every gateway implementation must
   dispatch on (open / forward / teardown — §4). *)
let gw_events = [ "Ip_layer.Gw_open"; "Ip_layer.Gw_frame"; "Ip_layer.Gw_down" ]

let gw_modules = [ "Gateway" ]
