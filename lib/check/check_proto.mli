(** Handler exhaustiveness against the protocol constructors.

    Two directions, both anchored in {!Check_auto}'s single declaration:
    the constructor lists parsed (lexically) out of proto.ml/ns_proto.ml
    must match the automaton's tables in order, and every module the
    table names must mention every constructor it is responsible for.
    Opt a module out of one (state, kind) pair only with a reasoned
    pragma: [lint: allow lifecycle(Kind) — reason]. *)

val check : Lint_lex.source list -> Lint_diag.t list
(** Run both directions over the tree; diagnostics carry rule
    ["lifecycle"]. Sources other than proto.ml/ns_proto.ml and the
    dispatching modules contribute nothing. *)
