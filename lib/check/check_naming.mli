(** Cache-coherence invariants of the sharded naming plane (DESIGN.md §15),
    checked over the structured trace: per-(actor, shard) store-generation
    monotonicity, the generation-floor discipline ("an invalidated entry is
    never served fresh again"), the stale-hit-resolves-as-miss splice rule,
    and the one-hop bound on shard-router forwarding. *)

val check : Ntcs_sim.Trace.entry list -> string list
(** One message per violation; empty = coherent. Traces without any
    [ns.cache.*] / [ns.shard.*] events (an unsharded naming plane)
    trivially pass. *)
