(** Bounded scenarios for exhaustive schedule exploration: each builds a
    small cluster, drives one protocol exchange, and reports R3 trace
    invariants, lifecycle-automaton conformance, process crashes and the
    exchange's own outcome as that schedule's violations. *)

(** The instrumentation mode is the scheduler's canonical
    {!Ntcs_sim.Sched.Mode} record (PR 8); this harness used to carry its
    own [{m_sanitize; m_races}] copy. Still threaded explicitly through
    every build — a module-level flag would itself be the ambient shared
    state rule R8 forbids.

    [sanitize]: the buffer-pool sanitizer, armed declaratively via
    {!Ntcs_sim.World.Config}; aliasing violations — poison hits, double
    and foreign releases, rejected releases — fail the schedule, leaks at
    teardown are reported as [pool.sanitizer.leak] trace events but not
    failed on (stopped virtual time legitimately strands in-flight
    buffers).

    [races]: the happens-before checker ({!Check_race}), armed by this
    library on any world whose config asks for it; any [race.conflict] it
    reports fails the schedule.

    Both off in [Mode.default], keeping soak traces byte-identical with
    the seed. *)
module Mode = Ntcs_sim.Sched.Mode

type scenario = {
  sc_name : string;
  sc_from : int;
  sc_until : int;
      (** ties inside [[sc_from, sc_until)] are branched on; the boot
          before and the steady-state maintenance after run in default
          order *)
  sc_make : Mode.t -> Ntcs_sim.World.t * (unit -> string list);
      (** build a fresh world for this mode and return it with the body
          that drives the exchange and reports that run's violations *)
}

val config_of_mode :
  ?faults:Ntcs_sim.Faults.spec ->
  ?naming:Ntcs_sim.World.Config.naming ->
  Mode.t ->
  Ntcs_sim.World.Config.t
(** The world configuration a mode asks for (sanitizer + fault plane armed
    declaratively at creation; [naming] shapes the naming plane, default
    unsharded). *)

val first_send : scenario
(** §6.1 first send across a prime gateway (chained open + splice). *)

val break_ns : scenario
(** §6.3 name-server partition under the LCM guard. *)

val all : scenario list
(** The exhaustive scenarios: exploration must drain the whole tree. *)

(** {1 Fault-plane soak scenarios}

    The same contract per schedule — zero violations — but the world runs
    under an armed {!Ntcs_sim.Faults} plane, so what is being explored is
    the recovery machinery itself. Their schedule trees are effectively
    unbounded (retry timers breed ties forever); run them with a budget and
    accept truncation, requiring a minimum number of failure-free
    schedules instead of exhaustiveness. *)

val fault_partition_heal : scenario
(** Partition the service's machine away mid-run (plus lossy links), heal
    4s later; the app must converge on the LCM retry policy. *)

val fault_crash_restart : scenario
(** §3.5: crash and restart the machine hosting a located module; a new
    generation re-registers and the app's stale address must heal through
    the address-fault oracle. *)

val fault_ns_partition_guard : scenario
(** §6.3 NS partition injected by the fault plane, [ns_fault_guard] on:
    recursion bounded, guard engaged, no crashes — on every schedule. *)

val fault_ns_partition_noguard : scenario
(** Same partition, guard off: the paper's divergence (deep fault-query
    recursion or simulated stack overflow) must reproduce on every
    schedule. *)

val faults : scenario list
(** The recovery soaks, the two naming soaks included. *)

(** {1 Sharded naming plane (DESIGN.md §15)}

    Four shards round-robin over the LAN's name-server machines; every
    schedule is additionally checked for cache coherence by
    {!Check_naming} (wired into the shared trace checks). *)

val naming_shard_route : scenario
(** All owners alive: versioned cached resolution (second locate hits),
    and a [Lookup_v] planted on a non-owner relays the owner's stamped
    answer in one hop. *)

val naming_stale_splice : scenario
(** §3.5 relocation racing a cached lookup: crash/restart of the service's
    machine plus re-registration; the owner's generation bump must retire
    cached copies, the chaser's stale address heals by splice repair, and
    no stale hit ever resolves as fresh. Also part of {!faults}. *)

val naming_shard_loss : scenario
(** The machine owning the probe name's shard crashes for good; resolution
    must survive through replica failover and unversioned backup answers.
    Also part of {!faults}. *)

val naming : scenario list
(** The naming-plane scenarios, for [ntcs_check --naming] / [@naming]. *)

val explore : ?max_schedules:int -> ?mode:Mode.t -> scenario -> Ntcs_sim.Explore.outcome
(** Explore the scenario's schedule tree (see {!Ntcs_sim.Explore.run});
    [mode] defaults to [Mode.default] — everything disarmed. *)
