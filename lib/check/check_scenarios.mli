(** Bounded scenarios for exhaustive schedule exploration: each builds a
    small cluster, drives one protocol exchange, and reports R3 trace
    invariants, lifecycle-automaton conformance, process crashes and the
    exchange's own outcome as that schedule's violations. *)

type scenario = {
  sc_name : string;
  sc_from : int;
  sc_until : int;
      (** ties inside [[sc_from, sc_until)] are branched on; the boot
          before and the steady-state maintenance after run in default
          order *)
  sc_make : unit -> Ntcs_sim.Sched.t * (unit -> string list);
}

val first_send : scenario
(** §6.1 first send across a prime gateway (chained open + splice). *)

val break_ns : scenario
(** §6.3 name-server partition under the LCM guard. *)

val all : scenario list

val explore : ?max_schedules:int -> scenario -> Ntcs_sim.Explore.outcome
