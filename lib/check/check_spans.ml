(* Span invariants, checked over a finished world's causal span log the way
   Check_lifecycle checks the trace: one ordered walk, one automaton per
   logical circuit.

   The obs plane promises (DESIGN.md §10):
   - circuit spans bracket everything: a message span can only begin on a
     circuit that is open, and circuit ids are never reused;
   - B/E events pair: no E without a B, no duplicate B for the same
     (circuit, seq, name), at most one close per circuit;
   - every opened message span ends — the LCM brackets its primitives
     synchronously — unless its owner died mid-operation (the circuit is
     then marked crashed by the dispatcher's exit hook) or the run ended
     with the operation genuinely in flight (its circuit is still open);
   - a circuit close carries a known reason.

   Instant (I) events — nd.tx / nd.rx / gw.forward / lcm.deliver hops —
   only require their circuit to have been opened at some point: the fault
   plane may replay a frame after the sender already shut down, and the
   late delivery is legal (§4.3). *)

type violation = Lint_trace.violation = {
  v_at_us : int;
  v_invariant : string;
  v_detail : string;
}

let close_reasons = [ "peer-down"; "shutdown"; "crashed" ]

type circ_state = {
  mutable c_open : bool;
  mutable c_reason : string; (* close reason once closed *)
  (* open message spans on this circuit: (seq, name) -> B timestamp *)
  c_msgs : (int * string, int) Hashtbl.t;
}

let check (spans : Ntcs_obs.Span.event list) =
  let open Ntcs_obs.Span in
  let circuits : (int, circ_state) Hashtbl.t = Hashtbl.create 32 in
  let violations = ref [] in
  let fail at inv detail =
    violations := { v_at_us = at; v_invariant = inv; v_detail = detail } :: !violations
  in
  List.iter
    (fun e ->
      let c = e.ev_ctx.sp_circuit in
      let seq = e.ev_ctx.sp_seq in
      if c > 0 then begin
        let state = Hashtbl.find_opt circuits c in
        match (seq, e.ev_phase) with
        | 0, B -> (
          match state with
          | Some _ ->
            (* Ids are allocated fresh, so a second B is a reopen either way. *)
            fail e.ev_at_us "span-circuit-unique"
              (Printf.sprintf "circuit %d opened twice (%s)" c e.ev_detail)
          | None ->
            Hashtbl.replace circuits c
              { c_open = true; c_reason = ""; c_msgs = Hashtbl.create 4 })
        | 0, E -> (
          match state with
          | Some st when st.c_open ->
            st.c_open <- false;
            st.c_reason <- e.ev_detail;
            if not (List.mem e.ev_detail close_reasons) then
              fail e.ev_at_us "span-close-reason"
                (Printf.sprintf "circuit %d closed with unknown reason %S" c e.ev_detail)
          | Some _ ->
            fail e.ev_at_us "span-orphan-end"
              (Printf.sprintf "circuit %d closed twice" c)
          | None ->
            fail e.ev_at_us "span-orphan-end"
              (Printf.sprintf "circuit %d closed but never opened" c))
        | 0, I -> ()
        | _, B -> (
          match state with
          | Some st when st.c_open ->
            if Hashtbl.mem st.c_msgs (seq, e.ev_name) then
              fail e.ev_at_us "span-duplicate-begin"
                (Printf.sprintf "span %s %s began twice" (to_string e.ev_ctx) e.ev_name)
            else Hashtbl.replace st.c_msgs (seq, e.ev_name) e.ev_at_us
          | Some _ ->
            fail e.ev_at_us "span-use-after-close"
              (Printf.sprintf "span %s %s began on a closed circuit"
                 (to_string e.ev_ctx) e.ev_name)
          | None ->
            fail e.ev_at_us "span-orphan"
              (Printf.sprintf "span %s %s began on an unopened circuit"
                 (to_string e.ev_ctx) e.ev_name))
        | _, E -> (
          (* The circuit may already be closed (a sender blocked in a retry
             completes after peers_down) — only the B must exist. *)
          match state with
          | Some st when Hashtbl.mem st.c_msgs (seq, e.ev_name) ->
            Hashtbl.remove st.c_msgs (seq, e.ev_name)
          | Some _ | None ->
            fail e.ev_at_us "span-orphan-end"
              (Printf.sprintf "span %s %s ended but never began"
                 (to_string e.ev_ctx) e.ev_name))
        | _, I ->
          if state = None then
            fail e.ev_at_us "span-orphan"
              (Printf.sprintf "hop %s on unopened circuit %s" e.ev_name
                 (to_string e.ev_ctx))
      end)
    spans;
  (* End of run: every message span still open must be excused — its owner
     died mid-operation (circuit marked crashed) or the operation was still
     genuinely in flight when the world stopped (circuit still open). *)
  Hashtbl.fold (fun c st acc -> (c, st) :: acc) circuits []
  |> List.sort compare
  |> List.iter (fun (c, st) ->
         if (not st.c_open) && st.c_reason <> "crashed" then
           Hashtbl.fold (fun k at acc -> (k, at) :: acc) st.c_msgs []
           |> List.sort compare
           |> List.iter (fun ((seq, name), at) ->
                  fail at "span-unterminated"
                    (Printf.sprintf "span c%d#%d %s never ended (circuit closed: %s)"
                       c seq name st.c_reason)));
  List.rev !violations

(* Circuits whose close marked the owner's death — the crash-restart soak
   asserts the dispatcher exit hook actually ran. *)
let crashed_circuits (spans : Ntcs_obs.Span.event list) =
  let open Ntcs_obs.Span in
  List.length
    (List.filter
       (fun e ->
         e.ev_ctx.sp_seq = 0 && e.ev_phase = E && e.ev_name = "lcm.circuit"
         && e.ev_detail = "crashed")
       spans)
