(* Handler exhaustiveness against the protocol constructors.

   Two directions, both anchored in Check_auto's single declaration:

   1. Declaration conformance — the constructor lists parsed (lexically)
      out of proto.ml / ns_proto.ml must match the automaton's tables, in
      order. Adding a message kind without teaching the automaton about it
      is a diagnostic on the new constructor's own line.

   2. Dispatch exhaustiveness — every module the table names must mention
      every constructor it is responsible for (OCaml match arms are
      `Proto.Data`-style tokens, so a word-bounded token search on blanked
      text is exactly "there is an arm for it"). A module may opt out of
      one (state, kind) pair only with an explicit, reasoned pragma:
      (* lint: allow lifecycle(Kind) — reason *). Requests follow the
      request/response discipline instead: whoever issues Ns_proto.X must
      dispatch on its response and on R_error. *)

let rule = "lifecycle"

(* --- constructor extraction --- *)

let trimmed line = String.trim line

let starts_with_bar line =
  let l = trimmed line in
  String.length l > 0 && l.[0] = '|'

(* Net depth change of brackets on a blanked line. *)
let depth_delta line =
  let d = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' | '(' | '[' -> incr d
      | '}' | ')' | ']' -> decr d
      | _ -> ())
    line;
  !d

let ident_at line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && Lint_lex.is_ident_char line.[!j] do
    incr j
  done;
  String.sub line i (!j - i)

(* First capitalised identifier after the leading '|'. *)
let arm_constructor line =
  let l = trimmed line in
  let n = String.length l in
  let rec find i =
    if i >= n then None
    else if l.[i] >= 'A' && l.[i] <= 'Z' then Some (ident_at l i)
    else if l.[i] = '|' || l.[i] = ' ' || l.[i] = '\t' then find (i + 1)
    else None
  in
  find 0

(* [(line, name)] for the constructors of `type [ty] = | A | B of ... | C`,
   parsed from the blanked text. Inline-record and multi-line arms are
   handled by tracking bracket depth; the declaration ends at the first
   depth-0 line that is neither blank nor an arm. *)
let constructors (src : Lint_lex.source) ~ty =
  let ls = Lint_lex.lines src.Lint_lex.src_blank in
  let decl_line =
    List.find_index
      (fun l ->
        Lint_lex.line_has_token l "type"
        && Lint_lex.line_has_token l ty
        && String.contains l '=')
      ls
  in
  match decl_line with
  | None -> []
  | Some idx ->
    let rec collect acc depth lineno = function
      | [] -> List.rev acc
      | line :: rest ->
        if depth > 0 then collect acc (depth + depth_delta line) (lineno + 1) rest
        else if starts_with_bar line then begin
          let acc =
            match arm_constructor line with
            | Some c -> (lineno, c) :: acc
            | None -> acc
          in
          collect acc (depth + depth_delta line) (lineno + 1) rest
        end
        else if trimmed line = "" then collect acc depth (lineno + 1) rest
        else List.rev acc
    in
    let rest = List.filteri (fun i _ -> i > idx) ls in
    let first = List.nth ls idx in
    collect [] (depth_delta first) (idx + 2) rest

(* --- declaration conformance --- *)

let diag ~src ~line fmt =
  Printf.ksprintf
    (fun msg -> Lint_diag.make ~file:src.Lint_lex.src_file ~line ~rule msg)
    fmt

let decl_line_of src ty =
  let ls = Lint_lex.lines src.Lint_lex.src_blank in
  match
    List.find_index
      (fun l ->
        Lint_lex.line_has_token l "type" && Lint_lex.line_has_token l ty
        && String.contains l '=')
      ls
  with
  | Some i -> i + 1
  | None -> 1

let check_decl src ~ty ~declared =
  let parsed = constructors src ~ty in
  let parsed_names = List.map snd parsed in
  let missing = List.filter (fun d -> not (List.mem d parsed_names)) declared in
  let extra = List.filter (fun (_, p) -> not (List.mem p declared)) parsed in
  let order_drift =
    missing = [] && extra = [] && parsed_names <> declared
  in
  List.map
    (fun d ->
      diag ~src ~line:(decl_line_of src ty)
        "lifecycle automaton declares constructor %s, but type %s does not define it" d ty)
    missing
  @ List.map
      (fun (line, p) ->
        diag ~src ~line
          "constructor %s of type %s is not covered by the lifecycle automaton \
           (extend Check_auto and the handler modules)"
          p ty)
      extra
  @
  if order_drift then
    [
      diag ~src ~line:(decl_line_of src ty)
        "type %s declares its constructors in a different order than the lifecycle \
         automaton (wire tags are positional: keep them aligned)"
        ty;
    ]
  else []

(* --- dispatch exhaustiveness --- *)

let has_token src tok =
  List.exists (fun l -> Lint_lex.line_has_token l tok) (Lint_lex.lines src.Lint_lex.src_blank)

(* The line where a family is dispatched: the first line mentioning any of
   its tokens — gap diagnostics point at the match that is missing the arm,
   not at the top of the file. *)
let anchor src tokens =
  let ls = Lint_lex.lines src.Lint_lex.src_blank in
  let rec go lineno = function
    | [] -> 1
    | l :: rest ->
      if List.exists (fun t -> Lint_lex.line_has_token l t) tokens then lineno
      else go (lineno + 1) rest
  in
  go 1 ls

let is_ml src = Filename.check_suffix src.Lint_lex.src_file ".ml"

let module_of src = Lint_rules.module_of_file src.Lint_lex.src_file

(* Proto.kind dispatch: every module the automaton table names must carry
   an arm for every constructor assigned to it. *)
let check_kind_dispatch src =
  let m = module_of src in
  let required =
    List.filter_map
      (fun (k, input, handlers) -> if List.mem m handlers then Some (k, input) else None)
      Check_auto.kinds
  in
  if required = [] || not (is_ml src) then []
  else begin
    let pragmas, _ = Lint_lex.pragmas src in
    let all_tokens = List.map (fun (k, _) -> "Proto." ^ k) required in
    let anchor_line = anchor src all_tokens in
    List.filter_map
      (fun (k, input) ->
        if has_token src ("Proto." ^ k) then None
        else if Lint_lex.pragma_allows pragmas ~rule ~arg:k ~line:anchor_line then None
        else
          Some
            (diag ~src ~line:anchor_line
               "%s does not handle Proto.%s (automaton input: %s) — add a match arm or \
                an explicit reject"
               m k
               (Check_auto.input_to_string input)))
      required
  end

(* Gateway event dispatch: Gw_open / Gw_frame / Gw_down. *)
let check_gw_dispatch src =
  let m = module_of src in
  if not (List.mem m Check_auto.gw_modules) || not (is_ml src) then []
  else begin
    let anchor_line = anchor src Check_auto.gw_events in
    List.filter_map
      (fun ev ->
        if has_token src ev then None
        else
          Some
            (diag ~src ~line:anchor_line
               "%s does not handle %s — a gateway must dispatch every splice event" m ev))
      Check_auto.gw_events
  end

(* Naming-protocol discipline. The server dispatches every request; every
   issuer of a request dispatches its response and R_error. *)
let check_ns_discipline src =
  let m = module_of src in
  if m = "Ns_proto" || not (is_ml src) then []
  else begin
    let is_server = List.mem m Check_auto.ns_servers in
    let issued =
      List.filter (fun (req, _) -> has_token src ("Ns_proto." ^ req)) Check_auto.ns_requests
    in
    let req_tokens = List.map (fun (r, _) -> "Ns_proto." ^ r) Check_auto.ns_requests in
    let anchor_line = anchor src req_tokens in
    let server_gaps =
      if not is_server then []
      else
        List.filter_map
          (fun (req, _) ->
            if has_token src ("Ns_proto." ^ req) then None
            else
              Some
                (diag ~src ~line:anchor_line
                   "%s is a naming-service server but does not handle Ns_proto.%s" m req))
          Check_auto.ns_requests
    in
    let response_gaps =
      if issued = [] then []
      else begin
        let wanted =
          List.sort_uniq compare (List.map snd issued @ [ "R_error" ])
        in
        List.filter_map
          (fun resp ->
            if has_token src ("Ns_proto." ^ resp) then None
            else
              Some
                (diag ~src ~line:anchor_line
                   "%s issues a request answered by Ns_proto.%s but never dispatches on it \
                    (unhandled response = silent drop)"
                   m resp))
          wanted
      end
    in
    server_gaps @ response_gaps
  end

(* --- entry points --- *)

let check_source src =
  let decls =
    match module_of src with
    | "Proto" when is_ml src -> check_decl src ~ty:"kind" ~declared:Check_auto.kind_names
    | "Ns_proto" when is_ml src ->
      check_decl src ~ty:"request" ~declared:(List.map fst Check_auto.ns_requests)
      @ check_decl src ~ty:"response" ~declared:Check_auto.ns_responses
    | _ -> []
  in
  Lint_diag.sort
    (decls @ check_kind_dispatch src @ check_gw_dispatch src @ check_ns_discipline src)

let check srcs = Lint_diag.sort (List.concat_map check_source srcs)
