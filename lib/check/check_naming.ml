(* Cache-coherence invariants of the sharded naming plane (DESIGN.md §15),
   checked over the structured trace.

   The NSP-layer emits ns.cache.{hit,stale,store,invalidate} events (one
   actor per caching ComMod) and the shard servers emit ns.shard.forward /
   ns.shard.gen. Four invariants make "a stale cache hit must resolve to a
   miss plus a re-lookup, never a delivery on the old circuit" checkable
   end to end:

   1. Store monotonicity — per (actor, shard), the generations recorded by
      ns.cache.store never decrease. (The cache clamps stored generations
      up to the shard's floor, so a violation means the floor went
      backwards.)

   2. Floor discipline — after an actor's cache raised shard [s]'s floor to
      [g] (ns.cache.invalidate "shard s floor g ..."), every later
      ns.cache.hit that actor reports for shard [s] carries a generation at
      least [g]: an invalidated entry can never be served fresh again.

   3. Stale splice — a stale hit on a key is a miss: between an actor's
      ns.cache.stale on key [k] and its next ns.cache.hit on [k] there must
      be an ns.cache.store on [k] (the re-lookup's fresh answer).

   4. Hop bound — shard-router forwarding is one hop at most: every
      ns.shard.forward event's "hop" field is <= 1.

   Detail formats (produced by Nsp_layer / Name_server):
     ns.cache.hit/stale/store  "<kind>:<key> shard <s> gen <g>"
     ns.cache.invalidate       "shard <s> floor <g> dropped <n>"
                               | "splice addr:<a> dropped <n>"
     ns.shard.forward          "<name>: shard <a> -> <b> hop <h>" *)

(* [cut ~sep s] splits [s] at the first occurrence of [sep]. *)
let cut ~sep s =
  let sl = String.length sep and n = String.length s in
  let rec go i =
    if i + sl > n then None
    else if String.sub s i sl = sep then
      Some (String.sub s 0 i, String.sub s (i + sl) (n - i - sl))
    else go (i + 1)
  in
  go 0

(* "<kind>:<key> shard <s> gen <g>" -> (key-with-kind, shard, gen). *)
let parse_kv detail =
  match cut ~sep:" shard " detail with
  | Some (key, rest) -> (
    match cut ~sep:" gen " rest with
    | Some (s, g) -> (
      match (int_of_string_opt s, int_of_string_opt g) with
      | Some shard, Some gen -> Some (key, shard, gen)
      | _ -> None)
    | None -> None)
  | None -> None

(* "shard <s> floor <g> dropped <n>" -> (shard, floor); splice invalidations
   carry no floor raise and are skipped. *)
let parse_floor detail =
  match cut ~sep:"shard " detail with
  | Some ("", rest) -> (
    match cut ~sep:" floor " rest with
    | Some (s, rest) -> (
      match cut ~sep:" dropped " rest with
      | Some (g, _) -> (
        match (int_of_string_opt s, int_of_string_opt g) with
        | Some shard, Some floor -> Some (shard, floor)
        | _ -> None)
      | None -> None)
    | None -> None)
  | _ -> None

(* trailing " hop <h>" of a forward event *)
let parse_hop detail =
  match cut ~sep:" hop " detail with
  | Some (_, h) -> int_of_string_opt h
  | None -> None

let check (entries : Ntcs_sim.Trace.entry list) =
  let errs = ref [] in
  let err at fmt =
    Printf.ksprintf (fun m -> errs := Printf.sprintf "t=%dus: %s" at m :: !errs) fmt
  in
  let store_gen : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
  let floors : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
  let awaiting_store : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Ntcs_sim.Trace.entry) ->
      let bad () = err e.at_us "%s: unparseable detail %S" e.cat e.detail in
      match e.cat with
      | "ns.cache.store" -> (
        match parse_kv e.detail with
        | None -> bad ()
        | Some (key, shard, gen) ->
          (match Hashtbl.find_opt store_gen (e.actor, shard) with
           | Some prev when gen < prev ->
             err e.at_us "%s: store gen went backwards on shard %d (%d after %d, key %s)"
               e.actor shard gen prev key
           | _ -> ());
          Hashtbl.replace store_gen (e.actor, shard) gen;
          Hashtbl.remove awaiting_store (e.actor, key))
      | "ns.cache.stale" -> (
        match parse_kv e.detail with
        | None -> bad ()
        | Some (key, _, _) -> Hashtbl.replace awaiting_store (e.actor, key) e.at_us)
      | "ns.cache.hit" -> (
        match parse_kv e.detail with
        | None -> bad ()
        | Some (key, shard, gen) ->
          (match Hashtbl.find_opt awaiting_store (e.actor, key) with
           | Some since ->
             err e.at_us
               "%s: hit on %s after a stale hit at t=%dus with no store in between"
               e.actor key since
           | None -> ());
          (match Hashtbl.find_opt floors (e.actor, shard) with
           | Some floor when gen < floor ->
             err e.at_us "%s: hit on %s at gen %d below shard %d's floor %d" e.actor key
               gen shard floor
           | _ -> ()))
      | "ns.cache.invalidate" -> (
        match parse_floor e.detail with
        | Some (shard, floor) -> Hashtbl.replace floors (e.actor, shard) floor
        | None -> if not (String.starts_with ~prefix:"splice " e.detail) then bad ())
      | "ns.shard.forward" -> (
        match parse_hop e.detail with
        | None -> bad ()
        | Some h ->
          if h > 1 then
            err e.at_us "%s: shard forward exceeded the one-hop bound (hop %d: %s)"
              e.actor h e.detail)
      | _ -> ())
    entries;
  List.rev_map (fun m -> "naming coherence: " ^ m) !errs
