(* Resolved cross-module call graph over lib/, hunting the §6.3 bug class:
   a recursion cycle that crosses the NSP→LCM boundary without passing
   through the Recursion guard.

   The shape of the bug: LCM needs a route, asks the resolver; the resolver
   is NSP code, which sends a message; sending a message re-enters LCM.
   Direct references alone miss it because the back edge is an *installed
   callback* (a closure stored in a hook field), so in addition to
   head-of-path references we add edges for the known hook installers:
   installing a callback into module S gives S an edge to the installing
   module and to everything the installed closure references.

   A strongly connected component that (a) contains Lcm_layer, (b) reaches
   rank ≥ 5 (NSP or above), and (c) nowhere references the Recursion guard
   is exactly an unbounded cross-boundary recursion — the depth bound that
   keeps resolver re-entry finite has been lost. *)

let rule = "cycle"

type edge = {
  e_src : string;  (** caller module *)
  e_dst : string;  (** callee module *)
  e_file : string;  (** where the edge was observed *)
  e_line : int;
  e_via : string;  (** "reference" or the installer pattern *)
}

(* Hook installers: calling [pattern] stores a closure inside the module on
   the right, giving that module edges back into the caller's world. The
   token-matched ones are dotted calls; the substring-matched ones are
   mutable-field assignments (dotted on the left, so [line_has_token] would
   reject them). *)
let hook_installers =
  [
    ("Lcm_layer.set_fault_oracle", "Lcm_layer");
    ("Lcm_layer.set_on_peer_down", "Lcm_layer");
    ("Ip_layer.set_plan_oracle", "Ip_layer");
    ("Ip_layer.set_gateway_handler", "Ip_layer");
    ("rv_resolve", "Router");
    ("rv_forward", "Router");
    ("rv_gateways", "Router");
  ]

let assign_installers = [ ("on_event <-", "Lcm_layer"); ("timestamp <-", "Lcm_layer") ]

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let depth_delta line =
  let d = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' | '(' | '[' -> incr d
      | '}' | ')' | ']' -> decr d
      | _ -> ())
    line;
  !d

let is_ml src = Filename.check_suffix src.Lint_lex.src_file ".ml"
let module_of src = Lint_rules.module_of_file src.Lint_lex.src_file

(* The closure installed at [lineno] spans the bracket-balanced region that
   opens there (capped — hooks in this codebase are small). *)
let region_end lines lineno =
  let cap = 30 in
  let rec go depth n = function
    | [] -> n
    | _ when depth <= 0 || n - lineno >= cap -> n
    | l :: rest -> go (depth + depth_delta l) (n + 1) rest
  in
  let rec drop n = function
    | rest when n = 0 -> rest
    | _ :: rest -> drop (n - 1) rest
    | [] -> []
  in
  match drop (lineno - 1) lines with
  | [] -> lineno
  | first :: rest ->
    let d = depth_delta first in
    if d <= 0 then lineno else go d (lineno + 1) rest

let edges_of_source known src =
  if not (is_ml src) then []
  else begin
    let m = module_of src in
    let refs = Lint_lex.module_refs src in
    let direct =
      List.filter_map
        (fun (line, r) ->
          if r <> m && List.mem r known then
            Some { e_src = m; e_dst = r; e_file = src.Lint_lex.src_file; e_line = line; e_via = "reference" }
          else None)
        refs
    in
    let lines = Lint_lex.lines src.Lint_lex.src_blank in
    let hook_edges =
      List.concat
        (List.mapi
           (fun i l ->
             let lineno = i + 1 in
             let hits =
               List.filter (fun (pat, _) -> Lint_lex.line_has_token l pat) hook_installers
               @ List.filter (fun (pat, _) -> contains_sub l pat) assign_installers
             in
             List.concat_map
               (fun (pat, target) ->
                 if not (List.mem target known) then []
                 else begin
                   let stop = region_end lines lineno in
                   let body_refs =
                     List.filter_map
                       (fun (rl, r) ->
                         if rl >= lineno && rl <= stop && r <> target && List.mem r known
                         then Some r
                         else None)
                       refs
                   in
                   let callees = List.sort_uniq compare (m :: body_refs) in
                   List.filter_map
                     (fun callee ->
                       if callee = target then None
                       else
                         Some
                           {
                             e_src = target;
                             e_dst = callee;
                             e_file = src.Lint_lex.src_file;
                             e_line = lineno;
                             e_via = pat;
                           })
                     callees
                 end)
               hits)
           lines)
    in
    direct @ hook_edges
  end

let graph srcs =
  let known = List.sort_uniq compare (List.map module_of (List.filter is_ml srcs)) in
  List.concat_map (edges_of_source known) srcs

(* --- Tarjan SCC --- *)

let sccs edges =
  let nodes =
    List.sort_uniq compare (List.concat_map (fun e -> [ e.e_src; e.e_dst ]) edges)
  in
  let succ n =
    List.sort_uniq compare (List.filter_map (fun e -> if e.e_src = n then Some e.e_dst else None) edges)
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := List.sort compare (pop []) :: !out
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  List.sort compare !out

(* --- the §6.3 rule --- *)

let references_recursion srcs scc =
  List.exists
    (fun src ->
      List.mem (module_of src) scc
      && List.exists
           (fun l -> Lint_lex.line_has_token l "Recursion")
           (Lint_lex.lines src.Lint_lex.src_blank))
    srcs

let crosses_boundary scc =
  List.mem "Lcm_layer" scc
  && List.exists
       (fun m -> match Lint_rules.rank_of m with Some r -> r >= 5 | None -> false)
       scc

let check srcs =
  let edges = graph srcs in
  let components = List.filter (fun c -> List.length c > 1) (sccs edges) in
  let diags =
    List.filter_map
      (fun scc ->
        if crosses_boundary scc && not (references_recursion srcs scc) then begin
          (* Anchor at the first edge re-entering LCM from inside the cycle. *)
          let into_lcm =
            List.filter (fun e -> e.e_dst = "Lcm_layer" && List.mem e.e_src scc) edges
          in
          let anchor =
            match
              List.sort (fun a b -> compare (a.e_file, a.e_line) (b.e_file, b.e_line)) into_lcm
            with
            | e :: _ -> e
            | [] -> { e_src = "?"; e_dst = "Lcm_layer"; e_file = "?"; e_line = 1; e_via = "?" }
          in
          Some
            (Lint_diag.make ~file:anchor.e_file ~line:anchor.e_line ~rule
               (Printf.sprintf
                  "recursion cycle %s re-enters LCM across the NSP boundary with no \
                   Recursion guard in the cycle (%s via %s) — unbounded resolver \
                   re-entry (§6.3)"
                  (String.concat " -> " (scc @ [ List.hd scc ]))
                  anchor.e_src anchor.e_via))
        end
        else None)
      components
  in
  Lint_diag.sort diags
