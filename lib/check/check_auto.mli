(** The circuit-lifecycle automaton: idle → opening → established →
    draining → closed, with reject and break edges. Declared once; the
    static exhaustiveness pass ({!Check_proto}) and the dynamic trace
    checker ({!Check_lifecycle}) both read it, so protocol drift surfaces
    as a diagnostic rather than a stale table. *)

type state = Idle | Opening | Established | Draining | Closed

type input =
  | Open_sent  (** origin asked for a circuit: IVC_OPEN / ND HELLO sent *)
  | Open_rcvd  (** target (or gateway splice) saw the open and committed *)
  | Accept  (** origin learned the open succeeded: IVC_ACCEPT / HELLO_ACK *)
  | Reject  (** origin learned the open failed: IVC_REJECT *)
  | Traffic  (** payload-bearing frame: DATA / DGRAM / REPLY / PING / PONG *)
  | Close  (** orderly teardown: IVC_CLOSE, cascades included (§4.3) *)
  | Break  (** the circuit underneath failed *)

val all_states : state list
val all_inputs : input list
val state_to_string : state -> string
val input_to_string : input -> string

type step =
  | Goto of state
  | Stay
  | Violation of string  (** illegal (state, input) pair, with the reason *)

val transition : state -> input -> step
(** Total over [state × input]; the single source of truth. *)

val check_automaton : unit -> string list
(** Structural self-check: every state reachable from idle, closed
    absorbing, traffic legal exactly in established. Empty = sound. *)

val kinds : (string * input * string list) list
(** [Proto.kind] constructors in declaration order: name, automaton input,
    and the modules that must dispatch on the constructor. *)

val kind_names : string list

val ns_requests : (string * string) list
(** [Ns_proto.request] constructors in declaration order, each with the
    response constructor that answers it. *)

val ns_responses : string list
(** [Ns_proto.response] constructors in declaration order. *)

val ns_servers : string list
(** Modules implementing the naming-service server side. *)

val gw_events : string list
(** Gateway event alternatives ([Ip_layer.Gw_*]) every gateway must
    dispatch on. *)

val gw_modules : string list
