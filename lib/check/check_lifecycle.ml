(* Dynamic half of the lifecycle check: replay a simulation trace through
   the Check_auto automaton, one state machine per circuit endpoint.

   Keys. Endpoint events (category ip.ivc_<x>) key on (actor, label): the
   opener and the acceptor of the same chained circuit run separate
   machines, as they do in the implementation. Gateway splice events
   (category gw.<x>) key on (actor, net, label) — one machine per leg. Labels come from a global registry,
   so a key can never be reborn under a different circuit.

   Inputs.  ip.ivc_open_sent -> open-sent        (opener: idle -> opening)
            ip.ivc_open      -> accept           (opener: opening -> established)
            ip.ivc_reject    -> reject           (opener: opening -> closed)
            ip.ivc_accept    -> open-received    (acceptor: idle -> established)
            ip.ivc_close     -> close            (either side, local or remote)
            gw.splice        -> open-received    (both legs commit)
            gw.forward       -> traffic          (both legs)
            gw.close         -> close            (both legs)

   Because a splice leg is removed from the table in the same step that
   traces gw.close, a gw.forward after gw.close on the same key is
   impossible in a correct gateway — and a Draining/Closed + traffic
   violation here is exactly the §4.3 teardown-ordering bug. *)

let invariant = "lifecycle"

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let int_of w = int_of_string_opt w

let net_of w =
  if String.length w > 3 && String.sub w 0 3 = "net" then
    int_of_string_opt (String.sub w 3 (String.length w - 3))
  else None

let ep_key actor label = Printf.sprintf "%s label %d" actor label
let leg_key actor net label = Printf.sprintf "%s net%d label %d" actor net label

(* The automaton inputs an entry drives, as (key, input) pairs. Entries of
   other categories (and unparseable details, which cannot happen unless the
   trace formats drift) drive nothing. *)
let inputs_of (e : Ntcs_sim.Trace.entry) : (string * Check_auto.input) list =
  let ep label input =
    match label with Some l -> [ (ep_key e.actor l, input) ] | None -> []
  in
  let both_legs na la nb lb input =
    match (na, la, nb, lb) with
    | Some na, Some la, Some nb, Some lb ->
      [ (leg_key e.actor na la, input); (leg_key e.actor nb lb, input) ]
    | _ -> []
  in
  match (e.cat, words e.detail) with
  | "ip.ivc_open_sent", "label" :: l :: _ -> ep (int_of l) Check_auto.Open_sent
  | "ip.ivc_open", "to" :: _ :: "via" :: _ :: _ :: "label" :: l :: _ ->
    ep (int_of l) Check_auto.Accept
  | "ip.ivc_reject", "label" :: l :: _ -> ep (int_of l) Check_auto.Reject
  | "ip.ivc_accept", "from" :: _ :: "label" :: l :: _ -> ep (int_of l) Check_auto.Open_rcvd
  | "ip.ivc_close", "label" :: l :: _ -> ep (int_of l) Check_auto.Close
  | "gw.splice", na :: "label" :: la :: "<->" :: nb :: "label" :: lb :: _ ->
    both_legs (net_of na) (int_of la) (net_of nb) (int_of lb) Check_auto.Open_rcvd
  | "gw.forward", na :: "label" :: la :: "->" :: nb :: "label" :: lb :: _ ->
    both_legs (net_of na) (int_of la) (net_of nb) (int_of lb) Check_auto.Traffic
  | "gw.close", na :: "label" :: la :: "<->" :: nb :: "label" :: lb :: _ ->
    both_legs (net_of na) (int_of la) (net_of nb) (int_of lb) Check_auto.Close
  | _ -> []

let check (entries : Ntcs_sim.Trace.entry list) : Lint_trace.violation list =
  let states : (string, Check_auto.state) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (fun (e : Ntcs_sim.Trace.entry) ->
      List.iter
        (fun (key, input) ->
          let cur =
            match Hashtbl.find_opt states key with Some s -> s | None -> Check_auto.Idle
          in
          match Check_auto.transition cur input with
          | Check_auto.Goto s' -> Hashtbl.replace states key s'
          | Check_auto.Stay -> ()
          | Check_auto.Violation why ->
            violations :=
              {
                Lint_trace.v_at_us = e.at_us;
                v_invariant = invariant;
                v_detail =
                  Printf.sprintf "%s: %s (%s in state %s, from %s %S)" key why
                    (Check_auto.input_to_string input)
                    (Check_auto.state_to_string cur)
                    e.cat e.detail;
              }
              :: !violations)
        (inputs_of e))
    entries;
  List.rev !violations

(* Final states, for tests and post-mortems: [(key, state)] sorted. *)
let final_states entries =
  let states : (string, Check_auto.state) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun (key, input) ->
          let cur =
            match Hashtbl.find_opt states key with Some s -> s | None -> Check_auto.Idle
          in
          match Check_auto.transition cur input with
          | Check_auto.Goto s' -> Hashtbl.replace states key s'
          | Check_auto.Stay | Check_auto.Violation _ ->
            if not (Hashtbl.mem states key) then Hashtbl.replace states key cur)
        (inputs_of e))
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) states []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
