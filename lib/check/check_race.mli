(** Happens-before race checker — the dynamic half of the domain-safety
    pass (static half: {!Lint_domsafe}).

    Arms a {!Ntcs_sim.Sched.monitor} on a world and tracks a vector
    clock per event owner: pushing an event snapshots the pusher's
    clock into it (a send), executing one joins that snapshot into the
    owner's clock (a receive). Two accesses to the same registered
    shared cell at the same virtual instant, from different owners,
    with at least one write and neither ordered by happens-before, are
    would-be races under the planned domain-parallel world execution
    (ROADMAP item 2), where distinct virtual times are separated by
    barriers and only same-instant work runs concurrently.

    Owner 0 is the coordinator (setup, fault schedule, test driver); a
    coordinator event joins all clocks and raises a global floor, so
    deliberately-sequential harness writes are never reported.

    Conflicts on [Exclusive] cells are races: each distinct
    (cell, owners, kinds) pattern is reported once as a [race.conflict]
    trace event plus a [race.conflicts] counter. Conflicts on [Waived]
    cells only bump [race.waived]. Disarmed, every scheduler hook is a
    no-op and same-seed traces are byte-identical. *)

(** Vector clocks over dense owner ids. Pure operations (exposed for
    the qcheck law tests in [test_race]). *)
module Vc : sig
  type t

  val empty : t
  val get : t -> int -> int
  val tick : t -> int -> t
  val join : t -> t -> t

  val leq : t -> t -> bool
  (** Component-wise ≤ — the happens-before partial order. *)

  val pp : Format.formatter -> t -> unit
end

type access = {
  a_owner : int;
  a_write : bool;
  a_snap : Vc.t;  (** the owner's clock at the instant of the access *)
}

type conflict = {
  r_cell : string;
  r_policy : Ntcs_sim.Sched.cell_policy;
  r_time : int;  (** virtual instant both accesses happened at *)
  r_first : access;
  r_second : access;
}

type t
(** An armed checker (one per world). *)

val arm : Ntcs_sim.World.t -> t
(** Install the monitor on the world's scheduler. Arm before traffic
    runs; accesses made while disarmed are invisible. *)

val disarm : t -> unit
(** Remove the monitor; accumulated results remain readable. *)

val conflicts : t -> conflict list
(** Races on [Exclusive] cells, in detection order. *)

val waived : t -> int
(** Count of conflict patterns on [Waived] cells (sanctioned shared
    state — counted, not reported). *)

val pp_conflict : Format.formatter -> conflict -> unit
val conflict_to_json : conflict -> string
