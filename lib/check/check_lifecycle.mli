(** Dynamic lifecycle conformance: replays a simulation trace through the
    {!Check_auto} automaton, one machine per circuit endpoint (opener,
    acceptor, each gateway splice leg), and reports every illegal
    transition as an R3-style violation. *)

val invariant : string
(** ["lifecycle"] — the [v_invariant] tag on every violation. *)

val inputs_of : Ntcs_sim.Trace.entry -> (string * Check_auto.input) list
(** The (endpoint key, automaton input) pairs one trace entry drives;
    [[]] for categories outside the lifecycle vocabulary. *)

val check : Ntcs_sim.Trace.entry list -> Lint_trace.violation list

val final_states : Ntcs_sim.Trace.entry list -> (string * Check_auto.state) list
(** Per-endpoint state after the whole trace, sorted by key — for tests
    and post-mortems. *)
