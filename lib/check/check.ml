(* ntcs_check driver: the static analyses over source trees, and the
   dynamic schedule-exploration entry point. *)

(* Automaton soundness surfaces as diagnostics so a broken checker can
   never report a clean repo. *)
let automaton_diags () =
  List.map
    (fun p -> Lint_diag.make ~file:"lib/check/check_auto.ml" ~line:1 ~rule:"automaton" p)
    (Check_auto.check_automaton ())

let check_sources srcs =
  Lint_diag.sort (automaton_diags () @ Check_proto.check srcs @ Check_graph.check srcs)

let static_check paths =
  let srcs = List.map Lint_lex.load (Lint.source_files paths) in
  check_sources srcs

let report ppf diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." Lint_diag.pp d) (Lint_diag.sort diags)

type exploration = {
  x_scenario : string;
  x_outcome : Ntcs_sim.Explore.outcome;
}

let mode ~sanitize ~races = { Ntcs_sim.Sched.Mode.sanitize; races }

let explore_all ?max_schedules ?(sanitize = false) ?(races = false) () =
  let mode = mode ~sanitize ~races in
  List.map
    (fun sc ->
      { x_scenario = sc.Check_scenarios.sc_name;
        x_outcome = Check_scenarios.explore ?max_schedules ~mode sc })
    Check_scenarios.all

let exploration_failed x =
  x.x_outcome.Ntcs_sim.Explore.truncated || x.x_outcome.Ntcs_sim.Explore.failures <> []

(* --- fault-plane soaks ---

   Same explorer, different contract: the fault scenarios' schedule trees
   are effectively unbounded (retry timers keep breeding same-time ties),
   so truncation is expected. What the soak demands is volume and silence:
   at least [min_schedules] schedules ran, and none of them produced a
   violation. *)

let explore_faults ?max_schedules ?(sanitize = false) ?(races = false) () =
  let mode = mode ~sanitize ~races in
  List.map
    (fun sc ->
      { x_scenario = sc.Check_scenarios.sc_name;
        x_outcome = Check_scenarios.explore ?max_schedules ~mode sc })
    Check_scenarios.faults

(* Naming-plane soaks (`ntcs_check --naming` / `@naming`): the sharded
   scenarios under the same volume-and-silence contract as the fault
   soaks — their worlds run four name servers plus the fault plane, so
   the trees are unbounded too. *)
let explore_naming ?max_schedules ?(sanitize = false) ?(races = false) () =
  let mode = mode ~sanitize ~races in
  List.map
    (fun sc ->
      { x_scenario = sc.Check_scenarios.sc_name;
        x_outcome = Check_scenarios.explore ?max_schedules ~mode sc })
    Check_scenarios.naming

let fault_exploration_failed ?(min_schedules = 100) x =
  let o = x.x_outcome in
  o.Ntcs_sim.Explore.failures <> []
  || (o.Ntcs_sim.Explore.truncated && o.Ntcs_sim.Explore.schedules < min_schedules)

let report_exploration ppf x =
  Format.fprintf ppf "%s: %a@." x.x_scenario Ntcs_sim.Explore.pp_outcome x.x_outcome;
  List.iter
    (fun (path, msg) ->
      Format.fprintf ppf "%s: schedule [%s]: %s@." x.x_scenario
        (String.concat ";" (List.map string_of_int path))
        msg)
    x.x_outcome.Ntcs_sim.Explore.failures

let exploration_to_json xs =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      let o = x.x_outcome in
      Buffer.add_string b
        (Printf.sprintf
           "{\"scenario\":\"%s\",\"schedules\":%d,\"choice_points\":%d,\"max_branch\":%d,\
            \"truncated\":%b,\"failures\":%d}"
           x.x_scenario o.Ntcs_sim.Explore.schedules o.Ntcs_sim.Explore.choice_points
           o.Ntcs_sim.Explore.max_branch o.Ntcs_sim.Explore.truncated
           (List.length o.Ntcs_sim.Explore.failures)))
    xs;
  Buffer.add_char b ']';
  Buffer.contents b
