(** Span invariants over a finished world's causal span log: circuit spans
    bracket message spans, B/E events pair exactly, nothing rides an
    unopened circuit, and every opened span is closed or excused by a crash
    (see DESIGN.md §10). *)

type violation = Lint_trace.violation = {
  v_at_us : int;
  v_invariant : string;
  v_detail : string;
}

val check : Ntcs_obs.Span.event list -> violation list
(** Violations in event order, for a span log in oldest-first order
    ({!Ntcs_obs.Registry.spans}). *)

val crashed_circuits : Ntcs_obs.Span.event list -> int
(** How many circuit spans were closed as [crashed] — the dispatcher exit
    hook's mark for an owner that died with circuits open. *)
