(* Dynamic half of the domain-safety pass (the static half is
   [Lint_domsafe]): a vector-clock happens-before checker over the
   scheduler's owner-tagged events and the shared cells registered on a
   world ([world.topology], [world.procs], [world.faults], …).

   The model anticipates the ROADMAP-2 parallel-world refactor, where
   processes become domain work items and virtual time advances through
   barriers: two accesses at *different* virtual times are always ordered
   by the barrier, so only same-instant conflicts can race. Within one
   instant, the happens-before order is exactly what the event graph
   gives us — event push is a message send (tick the pusher's clock and
   snapshot it into the event), event execution a receive (join the
   snapshot into the executing owner's clock, then tick). Owner 0 is the
   coordinator (setup code, the fault schedule, the test driver itself);
   a coordinator event acts as a mini-barrier: it joins every clock and
   raises a global floor, so coordinator writes never read as concurrent
   with process traffic.

   A conflict is two accesses to the same cell, same virtual instant,
   different owners, at least one a write, neither happens-before the
   other. On an [Exclusive] cell that is a race (trace event
   [race.conflict] + [race.conflicts] counter); on a [Waived] cell it is
   sanctioned shared state and only counted ([race.waived]). Arming is
   the pool-sanitizer pattern: install on a world before traffic runs,
   read the report at the end; with no checker armed every hook in
   [Sched] is a no-op, so same-seed traces stay byte-identical. *)

(* Vector clocks, exposed for the qcheck law tests. Represented as a
   dense int array indexed by owner id (pids are small and dense, owner
   0 the coordinator); absent entries read as 0, and all operations are
   pure so a snapshot is just a value. *)
module Vc = struct
  type t = int array

  let empty : t = [||]
  let get (v : t) i = if i >= 0 && i < Array.length v then v.(i) else 0

  let tick (v : t) owner =
    let n = max (Array.length v) (owner + 1) in
    Array.init n (fun i -> if i = owner then get v i + 1 else get v i)

  let join (a : t) (b : t) =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i -> max (get a i) (get b i))

  let leq (a : t) (b : t) =
    let ok = ref true in
    Array.iteri (fun i x -> if x > get b i then ok := false) a;
    !ok

  let pp ppf (v : t) =
    Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ",") int) v
end

type access = {
  a_owner : int;
  a_write : bool;
  a_snap : Vc.t;  (* the owner's clock at the instant of the access *)
}

type conflict = {
  r_cell : string;
  r_policy : Ntcs_sim.Sched.cell_policy;
  r_time : int;
  r_first : access;
  r_second : access;
}

type t = {
  world : Ntcs_sim.World.t;
  clocks : (int, Vc.t) Hashtbl.t;  (* owner -> current clock *)
  tags : (int, Vc.t) Hashtbl.t;  (* event tag -> pusher snapshot *)
  mutable next_tag : int;
  mutable floor : Vc.t;  (* last coordinator barrier; joined into every exec *)
  mutable epoch : int;  (* virtual instant the cell store belongs to *)
  store : (string, access list) Hashtbl.t;
      (* per-cell accesses this epoch, one per (owner, rw kind): keeping
         only the latest snapshot is sound — if an earlier snapshot was
         unordered w.r.t. some later access, the latest one is too. *)
  reported : (string * int * bool * int * bool, unit) Hashtbl.t;
      (* (cell, owner₁, write₁, owner₂, write₂) pairs already reported,
         so one bad access pattern is one finding, not one per repeat *)
  mutable conflicts : conflict list;
  mutable waived : int;
}

let kind w = if w then "write" else "read"

let owner_label t o =
  if o = 0 then "coordinator"
  else
    match Ntcs_sim.Sched.proc_name (Ntcs_sim.World.sched t.world) o with
    | Some n -> Printf.sprintf "%s(pid %d)" n o
    | None -> Printf.sprintf "pid %d" o

let clock t owner =
  match Hashtbl.find_opt t.clocks owner with Some v -> v | None -> Vc.empty

(* A happened-before B iff B's clock has seen A's owner component at the
   value it had when A ran — the standard component test. *)
let hb (a : access) (b : access) =
  Vc.get a.a_snap a.a_owner <= Vc.get b.a_snap a.a_owner

let ordered a b = hb a b || hb b a

let flush t ~time =
  Hashtbl.reset t.store;
  t.epoch <- time

let record_conflict t cell (prev : access) (cur : access) =
  let key =
    (cell.Ntcs_sim.Sched.c_name, prev.a_owner, prev.a_write, cur.a_owner,
     cur.a_write)
  in
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    let c =
      { r_cell = cell.Ntcs_sim.Sched.c_name;
        r_policy = cell.Ntcs_sim.Sched.c_policy;
        r_time = t.epoch;
        r_first = prev;
        r_second = cur }
    in
    match cell.Ntcs_sim.Sched.c_policy with
    | Ntcs_sim.Sched.Waived _ ->
      t.waived <- t.waived + 1;
      Ntcs_util.Metrics.incr (Ntcs_sim.World.metrics t.world) "race.waived"
    | Ntcs_sim.Sched.Exclusive ->
      t.conflicts <- c :: t.conflicts;
      Ntcs_util.Metrics.incr (Ntcs_sim.World.metrics t.world) "race.conflicts";
      Ntcs_sim.World.record t.world ~cat:"race.conflict" ~actor:"race"
        (Printf.sprintf "%s: %s by %s unordered with %s by %s" c.r_cell
           (kind prev.a_write) (owner_label t prev.a_owner)
           (kind cur.a_write) (owner_label t cur.a_owner))
  end

let on_push t ~pusher ~owner:_ =
  let c = Vc.tick (clock t pusher) pusher in
  Hashtbl.replace t.clocks pusher c;
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  Hashtbl.replace t.tags tag c;
  tag

let on_exec t ~tag ~owner ~time =
  if time <> t.epoch then flush t ~time;
  let snap =
    match Hashtbl.find_opt t.tags tag with
    | Some v ->
      Hashtbl.remove t.tags tag;
      v
    | None -> Vc.empty
  in
  let c = Vc.join (Vc.join (clock t owner) snap) t.floor in
  let c =
    if owner = 0 then
      (* Coordinator barrier: setup code, fault injections and the test
         driver run with everything that has happened so far visible. *)
      Hashtbl.fold (fun _ v acc -> Vc.join v acc) t.clocks c
    else c
  in
  let c = Vc.tick c owner in
  Hashtbl.replace t.clocks owner c;
  if owner = 0 then t.floor <- c

let on_access t cell ~owner ~write ~time =
  if time <> t.epoch then flush t ~time;
  let snap = clock t owner in
  let cur = { a_owner = owner; a_write = write; a_snap = snap } in
  let name = cell.Ntcs_sim.Sched.c_name in
  let prior = match Hashtbl.find_opt t.store name with Some l -> l | None -> [] in
  List.iter
    (fun prev ->
      if
        prev.a_owner <> cur.a_owner
        && (prev.a_write || cur.a_write)
        && not (ordered prev cur)
      then record_conflict t cell prev cur)
    prior;
  let rest =
    List.filter
      (fun a -> not (a.a_owner = owner && a.a_write = write))
      prior
  in
  Hashtbl.replace t.store name (cur :: rest)

let arm world =
  let t =
    { world;
      clocks = Hashtbl.create 16;
      tags = Hashtbl.create 64;
      next_tag = 1;
      floor = Vc.empty;
      epoch = -1;
      store = Hashtbl.create 8;
      reported = Hashtbl.create 8;
      conflicts = [];
      waived = 0 }
  in
  Ntcs_sim.Sched.set_monitor
    (Ntcs_sim.World.sched world)
    (Some
       { Ntcs_sim.Sched.m_push = (fun ~pusher ~owner -> on_push t ~pusher ~owner);
         m_exec = (fun ~tag ~owner ~time -> on_exec t ~tag ~owner ~time);
         m_access = (fun cell ~owner ~write ~time -> on_access t cell ~owner ~write ~time) })
  ;
  t

let disarm t = Ntcs_sim.Sched.set_monitor (Ntcs_sim.World.sched t.world) None
let conflicts t = List.rev t.conflicts
let waived t = t.waived

let pp_conflict ppf c =
  Fmt.pf ppf "race on %s @@t=%d: %s by owner %d unordered with %s by owner %d"
    c.r_cell c.r_time (kind c.r_first.a_write) c.r_first.a_owner
    (kind c.r_second.a_write) c.r_second.a_owner

let conflict_to_json c =
  Printf.sprintf
    {|{"cell":%S,"time":%d,"first":{"owner":%d,"kind":%S},"second":{"owner":%d,"kind":%S}}|}
    c.r_cell c.r_time c.r_first.a_owner (kind c.r_first.a_write)
    c.r_second.a_owner (kind c.r_second.a_write)
