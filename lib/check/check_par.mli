(** Domain-parallel validation (DESIGN.md §14): scenario replication on
    real OCaml domains, and a coupled multi-shard barrier soak whose
    merged trace, span log and blocked-process report must stay
    byte-identical for every worker count. Driven by [ntcs_check --par N],
    the [@par] dune alias and [test/test_par.ml]. *)

module Mode = Ntcs_sim.Sched.Mode

(** {1 Scenario replication}

    Each bounded scenario builds its whole world from a seed, so N
    replicas running concurrently on N domains must each produce a trace
    byte-identical to the solo run and report zero violations — the
    shard-isolation claim of the parallel world model, exercised with
    actual preemptive parallelism. *)

type replication = {
  rp_scenario : string;
  rp_replicas : int;
  rp_violations : string list;  (** the solo run's own violations *)
  rp_divergent : int list;  (** replica indices whose run differed *)
}

val replicate : ?replicas:int -> Check_scenarios.scenario -> replication
(** Run the scenario solo, then on [replicas] (default 2) concurrent
    domains, and compare every replica's trace and violation list against
    the solo run's. *)

val replication_failed : replication -> bool
val report_replication : Format.formatter -> replication -> unit

(** {1 Coupled barrier soak} *)

type par_report = {
  pr_domains : int;
  pr_workers : int list;
  pr_epochs : int;
  pr_messages : int;  (** cross-shard messages exchanged *)
  pr_trace_lines : int;
  pr_span_events : int;
  pr_choices : int;  (** chooser consultations replayed in the replay pass *)
  pr_blocked : string list;  (** the shard-stable teardown report *)
  pr_race_conflicts : int;
  pr_span_violations : Lint_trace.violation list;
  pr_divergences : string list;
}

val par_soak : ?domains:int -> ?workers:int list -> ?seed:int -> unit -> par_report
(** Build the coupled workload — a ring of barrier channels carrying
    spanned tokens between [domains] (default 2) shard worlds, each under
    a seeded crash/restart fault plane — and require bit-identical output
    across [workers] (default [[1; 2; 4]]), with the race checker armed
    (zero conflicts, zero byte perturbation), the merged span log clean
    under {!Check_spans.check}, and a recording chooser whose per-shard
    choice logs replay to the same bytes via
    {!Ntcs_sim.World.Config.Replay}. *)

val par_soak_failed : par_report -> bool
val report_par : Format.formatter -> par_report -> unit
