(** ntcs_check driver: protocol-conformance static analyses plus the
    schedule-exploration harness. *)

val check_sources : Lint_lex.source list -> Lint_diag.t list
(** Automaton self-check + {!Check_proto} + {!Check_graph}, sorted. *)

val static_check : string list -> Lint_diag.t list
(** [check_sources] over every [.ml]/[.mli] under the given paths. *)

val report : Format.formatter -> Lint_diag.t list -> unit

type exploration = {
  x_scenario : string;
  x_outcome : Ntcs_sim.Explore.outcome;
}

val explore_all :
  ?max_schedules:int -> ?sanitize:bool -> ?races:bool -> unit -> exploration list
(** Run every bounded scenario under exhaustive exploration. [sanitize]
    arms the pool sanitizer, [races] the happens-before race checker, on
    every scenario world (see {!Check_scenarios.Mode}); both default off. *)

val exploration_failed : exploration -> bool
(** Truncated (budget exhausted) or any schedule violated an invariant. *)

val explore_faults :
  ?max_schedules:int -> ?sanitize:bool -> ?races:bool -> unit -> exploration list
(** Run the {!Check_scenarios.faults} soaks under a schedule budget,
    optionally with the pool sanitizer and/or race checker armed. *)

val explore_naming :
  ?max_schedules:int -> ?sanitize:bool -> ?races:bool -> unit -> exploration list
(** Run the {!Check_scenarios.naming} sharded-naming scenarios under a
    schedule budget — same soak contract as {!explore_faults}. *)

val fault_exploration_failed : ?min_schedules:int -> exploration -> bool
(** The soak contract: any violation fails; truncation is acceptable but
    only past [min_schedules] (default 100) failure-free schedules. *)

val report_exploration : Format.formatter -> exploration -> unit

val exploration_to_json : exploration list -> string
