(* Domain-parallel validation: the dynamic evidence behind DESIGN.md §14.

   Two harnesses, both consumed by `ntcs_check --par N`, the `@par` dune
   alias and test/test_par.ml:

   - [replicate]: run each bounded scenario once solo, then again on N
     real OCaml domains at once — every replica builds its own world from
     the same seed, so every replica's trace must be byte-identical to the
     solo run and violation-free. This is the shard-isolation claim (a
     world owns all of its state; R8's ownership map proves lib/ has no
     ambient globals) exercised with actual preemptive parallelism.

   - [par_soak]: a coupled multi-shard world — ring of barrier channels,
     causal spans stitched across shards, a seeded per-shard crash/restart
     fault plane — run under every requested worker count, requiring the
     merged trace, merged span log and blocked-process report to stay
     byte-identical; then once more with the race checker armed on every
     shard, and once more under a recording chooser whose per-shard choice
     logs must replay to the same bytes via [World.Config.Replay]. *)

module Mode = Ntcs_sim.Sched.Mode
module World = Ntcs_sim.World
module Config = Ntcs_sim.World.Config
module Par = Ntcs_sim.World.Par
module Span = Ntcs_obs.Span

(* --- scenario replication on domains -------------------------------- *)

let scenario_run sc =
  let w, body = sc.Check_scenarios.sc_make Mode.default in
  let violations = body () in
  let trace = Format.asprintf "%a" Ntcs_sim.Trace.dump (World.trace w) in
  (trace, violations)

type replication = {
  rp_scenario : string;
  rp_replicas : int;
  rp_violations : string list; (* the solo run's own violations *)
  rp_divergent : int list; (* replica indices whose run differed *)
}

let replicate ?(replicas = 2) sc =
  let solo_trace, solo_violations = scenario_run sc in
  let doms =
    Array.init replicas (fun _ -> Domain.spawn (fun () -> scenario_run sc))
  in
  let divergent = ref [] in
  Array.iteri
    (fun i d ->
      let trace, violations = Domain.join d in
      if trace <> solo_trace || violations <> solo_violations then
        divergent := i :: !divergent)
    doms;
  {
    rp_scenario = sc.Check_scenarios.sc_name;
    rp_replicas = replicas;
    rp_violations = solo_violations;
    rp_divergent = List.rev !divergent;
  }

let replication_failed r = r.rp_violations <> [] || r.rp_divergent <> []

let report_replication ppf r =
  Format.fprintf ppf "%s: %d replica(s) on domains: %s@." r.rp_scenario
    r.rp_replicas
    (if replication_failed r then "DIVERGED" else "byte-identical, clean");
  List.iter
    (fun i -> Format.fprintf ppf "%s: replica %d diverged from the solo run@." r.rp_scenario i)
    r.rp_divergent;
  List.iter (fun v -> Format.fprintf ppf "%s: solo violation: %s@." r.rp_scenario v)
    r.rp_violations

(* --- the coupled soak workload --------------------------------------- *)

(* Geometry. Sends every [soak_period] µs with channel latency equal to
   the period, so round k's cross-shard delivery (owner 0, posted by the
   barrier flush) lands on the exact instant of the pump's round-(k+1)
   wakeup (owner = pump pid): a two-owner tie at every round, which is
   what makes the recording chooser actually record. *)
let soak_quantum = 1_000
let soak_period = 2_000
let soak_latency = 2_000
let soak_rounds = 40
let soak_close = 180_000 (* circuit close, after every delivery has landed *)
let soak_until = 200_000

(* Per-shard crash/restart of the victim machine — the seeded cross-shard
   fault soak. The schedule is data; each shard world arms its own plane. *)
let soak_faults =
  {
    Ntcs_sim.Faults.seed = 0xBA55;
    rules = [];
    schedule =
      [ (50_000, Ntcs_sim.Faults.Crash "m0"); (80_000, Ntcs_sim.Faults.Restart "m0") ];
  }

type token = { tk_ctx : Span.ctx; tk_round : int; tk_src : int }

let build_soak ?shard_config config =
  let p = Par.create ~quantum:soak_quantum ?shard_config config in
  let n = Par.shard_count p in
  for i = 0 to n - 1 do
    let w = Par.shard p i in
    let sched = World.sched w in
    let m0 = World.add_machine w ~name:"m0" Ntcs_sim.Machine.Sun3 () in
    let m1 = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Sun3 () in
    (* The fault plane's victim: crashed at 50ms, machine restarted at
       80ms (the process stays dead — restart revives the machine, not
       its tenants). *)
    ignore
      (World.spawn w ~machine:m0 ~name:"victim" (fun () ->
           Ntcs_sim.Sched.sleep sched 1_000_000_000));
    (* A process still blocked at teardown, for the shard-stable
       blocked-process report. *)
    ignore
      (World.spawn w ~machine:m1 ~name:"resident" (fun () ->
           Ntcs_sim.Sched.sleep sched 1_000_000_000));
    let out = Par.chan p ~src:i ~dst:((i + 1) mod n) ~latency:soak_latency in
    let dst = Par.shard p ((i + 1) mod n) in
    Ntcs_sim.Barrier.Chan.set_handler out (fun tok ->
        World.record dst ~cat:"par.recv" ~actor:"ring"
          (Printf.sprintf "round %d from s%d" tok.tk_round tok.tk_src);
        World.span dst ~ctx:tok.tk_ctx ~phase:Span.I ~name:"par.hop" ~actor:"ring"
          (Printf.sprintf "s%d->s%d" tok.tk_src ((tok.tk_src + 1) mod n));
        World.span dst ~ctx:tok.tk_ctx ~phase:Span.E ~name:"par.msg" ~actor:"ring"
          "delivered");
    (* The pump is a plain scheduler process (not a machine tenant), so
       the m0 crash never kills it: its circuit closes cleanly. *)
    let circuit = Ntcs_obs.Registry.fresh_circuit (World.obs w) in
    ignore
      (Ntcs_sim.Sched.spawn ~name:"pump" sched (fun () ->
           World.span w ~ctx:(Span.make ~circuit ~seq:0) ~phase:Span.B
             ~name:"par.circuit" ~actor:"pump" "open";
           for k = 1 to soak_rounds do
             Ntcs_sim.Sched.sleep sched soak_period;
             let ctx = Span.make ~circuit ~seq:k in
             World.record w ~cat:"par.send" ~actor:"pump"
               (Printf.sprintf "round %d" k);
             World.span w ~ctx ~phase:Span.B ~name:"par.msg" ~actor:"pump" "send";
             Ntcs_sim.Barrier.Chan.send out { tk_ctx = ctx; tk_round = k; tk_src = i }
           done;
           Ntcs_sim.Sched.sleep sched (soak_close - (soak_rounds * soak_period));
           World.span w ~ctx:(Span.make ~circuit ~seq:0) ~phase:Span.E
             ~name:"par.circuit" ~actor:"pump" "shutdown"))
  done;
  p

(* Everything the determinism contract covers, rendered to strings. *)
let snapshot p =
  let spans =
    List.map (fun e -> Format.asprintf "%a" Span.pp_event e) (Par.merged_spans p)
  in
  (Par.merged_trace_lines p, spans, Par.blocked_processes p)

type par_report = {
  pr_domains : int;
  pr_workers : int list;
  pr_epochs : int;
  pr_messages : int;
  pr_trace_lines : int;
  pr_span_events : int;
  pr_choices : int; (* chooser consultations recorded in the replay pass *)
  pr_blocked : string list;
  pr_race_conflicts : int;
  pr_span_violations : Lint_trace.violation list;
  pr_divergences : string list;
}

let par_soak ?(domains = 2) ?(workers = [ 1; 2; 4 ]) ?(seed = 42) () =
  let config =
    { Config.default with Config.seed; domains; faults = Some soak_faults }
  in
  let divergences = ref [] in
  let diverged fmt = Printf.ksprintf (fun s -> divergences := s :: !divergences) fmt in
  let run_soak ?shard_config ~workers cfg =
    let p = build_soak ?shard_config cfg in
    Par.run ~until:soak_until ~workers p;
    p
  in
  (* Reference: the sequential (workers = 1) run. *)
  let ref_p = run_soak ~workers:1 config in
  let ref_lines, ref_spans, ref_blocked = snapshot ref_p in
  let expect_messages = domains * soak_rounds in
  if Par.messages_exchanged ref_p <> expect_messages then
    diverged "reference run exchanged %d cross-shard messages, expected %d"
      (Par.messages_exchanged ref_p) expect_messages;
  (* Worker matrix: bit-identical output for every worker count. *)
  List.iter
    (fun w ->
      let p = run_soak ~workers:w config in
      let lines, spans, blocked = snapshot p in
      if lines <> ref_lines then diverged "workers=%d: merged trace diverges" w;
      if spans <> ref_spans then diverged "workers=%d: merged span log diverges" w;
      if blocked <> ref_blocked then
        diverged "workers=%d: blocked-process report diverges" w;
      if Par.epochs p <> Par.epochs ref_p then
        diverged "workers=%d: epoch count %d, expected %d" w (Par.epochs p)
          (Par.epochs ref_p))
    workers;
  (* Race pass: checker armed on every shard, run at full parallelism.
     Arming must neither find a conflict nor perturb the bytes. *)
  let race_conflicts =
    let p = build_soak config in
    let checkers = Array.to_list (Array.map Check_race.arm (Par.shards p)) in
    Par.run ~until:soak_until ~workers:(List.fold_left max 1 workers) p;
    let lines, spans, blocked = snapshot p in
    if (lines, spans, blocked) <> (ref_lines, ref_spans, ref_blocked) then
      diverged "race-armed run diverges from the reference bytes";
    List.concat_map Check_race.conflicts checkers
  in
  (* Replay pass: a recording chooser breaks the two-owner ties its own
     way; feeding each shard its recorded choice log back must reproduce
     the exact bytes. *)
  let choices =
    let rotate ~time ~owners = time / soak_period mod Array.length owners in
    let p =
      run_soak ~workers:1 { config with Config.chooser = Config.Choose rotate }
    in
    let logs = Par.choice_logs p in
    let chosen = snapshot p in
    let shard_config i =
      {
        (Config.shard config ~shard:i) with
        Config.chooser = Config.Replay (List.map fst logs.(i));
      }
    in
    let replayed = snapshot (run_soak ~shard_config ~workers:1 config) in
    if replayed <> chosen then diverged "choice-log replay diverges from the recorded run";
    let total = Array.fold_left (fun acc l -> acc + List.length l) 0 logs in
    if total = 0 then diverged "recording chooser was never consulted (no ties?)";
    total
  in
  {
    pr_domains = domains;
    pr_workers = workers;
    pr_epochs = Par.epochs ref_p;
    pr_messages = Par.messages_exchanged ref_p;
    pr_trace_lines = List.length ref_lines;
    pr_span_events = List.length ref_spans;
    pr_choices = choices;
    pr_blocked = ref_blocked;
    pr_race_conflicts = List.length race_conflicts;
    pr_span_violations = Check_spans.check (Par.merged_spans ref_p);
    pr_divergences = List.rev !divergences;
  }

let par_soak_failed r =
  r.pr_divergences <> [] || r.pr_span_violations <> [] || r.pr_race_conflicts > 0

let report_par ppf r =
  Format.fprintf ppf
    "par soak: %d shard(s), workers {%s}: %s (%d epochs, %d cross-shard msgs, \
     %d trace lines, %d span events, %d choices replayed)@."
    r.pr_domains
    (String.concat "," (List.map string_of_int r.pr_workers))
    (if par_soak_failed r then "FAILED" else "bit-identical, clean")
    r.pr_epochs r.pr_messages r.pr_trace_lines r.pr_span_events r.pr_choices;
  List.iter (fun d -> Format.fprintf ppf "par soak: %s@." d) r.pr_divergences;
  List.iter
    (fun v -> Format.fprintf ppf "par soak: span violation: %a@." Lint_trace.pp_violation v)
    r.pr_span_violations;
  if r.pr_race_conflicts > 0 then
    Format.fprintf ppf "par soak: %d race conflict(s)@." r.pr_race_conflicts
