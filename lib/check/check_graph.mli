(** Resolved cross-module call graph over lib/ sources, including
    installed-callback ("hook") edges, with Tarjan SCC detection of
    recursion cycles that cross the NSP→LCM boundary without a [Recursion]
    guard — the §6.3 unbounded-resolver-re-entry bug class. *)

type edge = {
  e_src : string;  (** caller module *)
  e_dst : string;  (** callee module *)
  e_file : string;  (** where the edge was observed *)
  e_line : int;
  e_via : string;  (** "reference" or the installer pattern *)
}

val graph : Lint_lex.source list -> edge list
(** Direct head-of-path reference edges plus hook edges: installing a
    callback into module [S] gives [S] an edge to the installing module and
    to every module the installed closure references. Restricted to modules
    with a [.ml] among the given sources. *)

val sccs : edge list -> string list list
(** Strongly connected components, each sorted, the list sorted. *)

val check : Lint_lex.source list -> Lint_diag.t list
(** Flags every multi-node SCC that contains [Lcm_layer], reaches rank ≥ 5
    (NSP or above), and nowhere references [Recursion]. Rule ["cycle"],
    anchored at the first edge re-entering LCM from inside the cycle. *)
