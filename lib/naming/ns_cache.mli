(** Versioned lookup cache for the naming plane (DESIGN.md §15).

    Entries carry the answering shard and that shard's invalidation
    generation; the cache keeps a per-shard generation floor fed by
    [note_generation]. An entry below its shard's floor is reported as
    {!Stale} — the caller must treat it as a miss and re-look-up, never
    deliver on it. Recency order, eviction and iteration are deterministic
    (built on [Ntcs_util.Lru]). *)

type ('k, 'v) t

val create : capacity:int -> nshards:int -> ('k, 'v) t
(** Both arguments are clamped to at least 1. *)

val nshards : _ t -> int

type 'v outcome =
  | Hit of 'v * int * int
      (** [(value, shard, gen)] — fresh: within TTL and at/above its
          shard's floor *)
  | Stale of 'v * int * int
      (** the shard invalidated this generation — resolve as a miss; the
          value is exposed only so callers can log/repair it *)
  | Miss

val find : ('k, 'v) t -> now:int -> 'k -> 'v outcome
(** TTL-expired entries are ordinary misses; floor-invalidated entries are
    {!Stale}. Either way the dead entry is evicted. *)

val store : ('k, 'v) t -> 'k -> value:'v -> shard:int -> gen:int -> expiry:int -> unit
(** Cache an authoritative answer. [gen] is clamped up to the shard's
    current floor: a fresh answer is fresh even when the server's counter
    restarted. *)

val note_generation : ('k, 'v) t -> shard:int -> gen:int -> int
(** Raise the shard's floor to [gen] (no-op if not higher). Invalidation
    is lazy: retired entries report {!Stale} on their next [find] (and
    are evicted then), sending the caller back for a fresh lookup.
    Returns how many resident entries the new floor invalidated. *)

val floor : ('k, 'v) t -> shard:int -> int
(** Current generation floor of a shard (0 until first observation). *)

val invalidate_if : ('k, 'v) t -> ('k -> 'v -> bool) -> int
(** Predicate eviction over (key, value); returns the eviction count. *)

val remove : ('k, 'v) t -> 'k -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> shard:int -> gen:int -> unit) -> unit
(** Recency order (most recently used first), like [Lru.iter]. *)

val clear : ('k, 'v) t -> unit
val length : ('k, 'v) t -> int

val stats : ('k, 'v) t -> int * int * int
(** [(hits, stale, misses)] since creation. *)
