(* Versioned NSP-side lookup cache (DESIGN.md §15).

   An entry remembers, besides the cached value, which shard answered and
   at which invalidation generation. Shard servers bump their generation on
   every invalidation-class mutation (§3.5 relocation, deregistration,
   death detected by a Forward probe) and piggyback it on every versioned
   answer; the client folds those observations into a per-shard floor. A
   cached entry whose generation has fallen below its shard's floor is a
   *stale hit*: it must resolve to a miss plus a fresh lookup — never to a
   delivery on the old circuit. That rule is what the cache-coherence trace
   invariant (Check_naming) enforces end to end.

   Built on the recency-ordered [Ntcs_util.Lru]: eviction order, predicate
   invalidation and iteration are all deterministic, so equal-seed runs
   stay byte-identical (lint rule R2 applies to this directory). *)

type 'v entry = {
  e_value : 'v;
  e_shard : int; (* which shard's authority produced the value *)
  e_gen : int; (* that shard's invalidation generation at answer time *)
  e_expiry : int; (* absolute virtual time; the pre-existing TTL bound *)
}

type ('k, 'v) t = {
  lru : ('k, 'v entry) Ntcs_util.Lru.t;
  floors : int array; (* per-shard minimum acceptable generation *)
  mutable hits : int;
  mutable stale : int;
  mutable misses : int;
}

let create ~capacity ~nshards =
  {
    lru = Ntcs_util.Lru.create (max 1 capacity);
    floors = Array.make (max 1 nshards) 0;
    hits = 0;
    stale = 0;
    misses = 0;
  }

let nshards t = Array.length t.floors

let in_range t shard = shard >= 0 && shard < Array.length t.floors

let floor t ~shard = if in_range t shard then t.floors.(shard) else 0

type 'v outcome =
  | Hit of 'v * int * int (* value, shard, gen — for the coherence trace *)
  | Stale of 'v * int * int (* known value, but its shard invalidated that generation *)
  | Miss

let find t ~now key =
  match Ntcs_util.Lru.find t.lru key with
  | None ->
    t.misses <- t.misses + 1;
    Miss
  | Some e when e.e_expiry < now ->
    (* TTL expiry is an ordinary miss: nothing was proved wrong, the entry
       just aged out. *)
    Ntcs_util.Lru.remove t.lru key;
    t.misses <- t.misses + 1;
    Miss
  | Some e when in_range t e.e_shard && e.e_gen < t.floors.(e.e_shard) ->
    Ntcs_util.Lru.remove t.lru key;
    t.stale <- t.stale + 1;
    Stale (e.e_value, e.e_shard, e.e_gen)
  | Some e ->
    t.hits <- t.hits + 1;
    Hit (e.e_value, e.e_shard, e.e_gen)

(* Store a fresh answer. The effective generation is clamped up to the
   shard's floor: the value just came from an authoritative answer, so it
   is fresh *as of now* even when the answering server's counter restarted
   below a previously observed generation (e.g. after a shard restart). *)
let store t key ~value ~shard ~gen ~expiry =
  let gen = if in_range t shard then max gen t.floors.(shard) else gen in
  Ntcs_util.Lru.set t.lru key { e_value = value; e_shard = shard; e_gen = gen; e_expiry = expiry }

(* Fold a generation observation from shard [shard] into the floor.
   Invalidation is lazy: entries the new floor retires stay resident and
   report {!Stale} on their next touch ([find] evicts them then), which
   is what sends the caller back for a fresh lookup — the §3.5
   splice-repair path. Eager eviction would be *too* strong: it would
   turn every would-be stale hit into a plain miss and leave the stale
   protocol (and its coherence invariant) unexercised. Returns how many
   resident entries the new floor invalidated. *)
let note_generation t ~shard ~gen =
  if (not (in_range t shard)) || gen <= t.floors.(shard) then 0
  else begin
    t.floors.(shard) <- gen;
    let n = ref 0 in
    Ntcs_util.Lru.iter t.lru (fun _ e -> if e.e_shard = shard && e.e_gen < gen then incr n);
    !n
  end

let invalidate_if t pred =
  Ntcs_util.Lru.invalidate_if t.lru (fun k e -> pred k e.e_value)

let remove t key = Ntcs_util.Lru.remove t.lru key

let iter t f = Ntcs_util.Lru.iter t.lru (fun k e -> f k e.e_value ~shard:e.e_shard ~gen:e.e_gen)

let clear t = Ntcs_util.Lru.clear t.lru

let length t = Ntcs_util.Lru.length t.lru

let stats t = (t.hits, t.stale, t.misses)
