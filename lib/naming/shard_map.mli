(** Pinned, versioned partition of the name space across replica name
    servers (DESIGN.md §15).

    Names are assigned to shards by a deterministic content hash, so every
    NSP layer and every shard server derives the same owner for a name with
    no directory round trip. Polymorphic in the shard address type so the
    module can sit below the core library. *)

type 'addr t

val make : version:int -> 'addr array -> 'addr t
(** [make ~version owners] pins [owners.(k)] as the well-known address of
    shard [k]. The array is copied. Raises [Invalid_argument] when the
    array is empty or [version <= 0]. *)

val version : _ t -> int
val nshards : _ t -> int

val hash_name : string -> int
(** The deterministic 30-bit FNV-1a name hash behind [shard_of_name] —
    exposed so tests and benches can pre-compute shard ownership. *)

val shard_of_name : _ t -> string -> int
(** Which shard owns a logical name: [hash_name name mod nshards]. *)

val owner : 'addr t -> int -> 'addr
(** Well-known address of a shard. Raises [Invalid_argument] when out of
    range. *)

val owner_of_name : 'addr t -> string -> 'addr

val bindings : 'addr t -> (int * 'addr) list
(** All [(shard, owner)] pairs in ascending shard order — the one sanctioned
    iteration order over the map. *)
