(* The pinned, versioned shard map of the naming plane (DESIGN.md §15).

   The name space is partitioned across N replica name servers by a
   deterministic hash of the logical name. Every party — clients' NSP
   layers and the shard servers themselves — holds the same pinned map, so
   ownership questions ("which shard answers for this name?") are decided
   locally, identically, everywhere, without a directory round trip. The
   map is versioned so a future re-sharding protocol can invalidate caches
   wholesale; within one deployment the version is fixed at build time.

   The module is polymorphic in the shard address type so it can live below
   the core library (which instantiates it at [Addr.t]). *)

type 'addr t = {
  version : int; (* pinned at deployment; bumped only by re-sharding *)
  owners : 'addr array; (* owners.(k) = well-known address of shard k *)
}

let make ~version owners =
  if Array.length owners = 0 then invalid_arg "Shard_map.make: no shards";
  if version <= 0 then invalid_arg "Shard_map.make: version must be positive";
  { version; owners = Array.copy owners }

let version t = t.version
let nshards t = Array.length t.owners

(* FNV-1a over the name bytes, folded to 30 bits so the result is a
   tagged-int everywhere. Chosen for determinism across runs and builds —
   [Hashtbl.hash] of a string is stable too, but spelling the function out
   pins it against stdlib changes and makes the sharding auditable. *)
let hash_name name =
  (* The offset basis is folded to 30 bits up front so the empty name obeys
     the 30-bit contract too. Nonempty hashes are unchanged: bits above 30
     in a multiplicand cannot reach the low 30 bits of the product. *)
  let h = ref (0x811C9DC5 land 0x3FFFFFFF) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

let shard_of_name t name =
  if Array.length t.owners = 1 then 0 else hash_name name mod Array.length t.owners

let owner t shard =
  if shard < 0 || shard >= Array.length t.owners then
    invalid_arg "Shard_map.owner: shard out of range";
  t.owners.(shard)

let owner_of_name t name = owner t (shard_of_name t name)

(* Deterministic iteration order: ascending shard index, always. The map is
   an array precisely so no hash-table walk can sneak into a protocol
   decision (lint rule R2 covers lib/naming). *)
let bindings t = Array.to_list (Array.mapi (fun i a -> (i, a)) t.owners)
