(** R4: every literal [~cat:"..."] trace category must appear in the
    registered manifest ([Ntcs_obs.Manifest]). *)

val rule : string

val literal_sites : Lint_lex.source -> (int * string) list
(** [(line, category)] for every literal [~cat:"..."] site, in file order —
    exposed for the linter's tests. *)

val check : Lint_lex.source -> Lint_diag.t list
