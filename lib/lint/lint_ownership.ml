(* R6 [ownership] / R7 [escape]: the frame-lifetime discipline, machine
   checked. PR 5's zero-copy pipeline is only sound under rules that until
   now lived in comments: [Pool.alloc] transfers a buffer to the binder,
   [Pool.release] revokes it, and no [Proto.Frame] view may outlive the
   buffer it aliases. A recycled-buffer aliasing bug violates none of the
   functional tests — the bytes are simply someone else's — so the rules
   are enforced statically here, with the pool's runtime sanitizer as the
   dynamic backstop.

   The analysis is grep-grade on purpose, like every other rule in this
   linter: an intraprocedural, path-insensitive dataflow over blanked
   source lines. Each top-level [let]/[and] chunk is scanned once, top to
   bottom, tracking identifiers bound from the calls in
   [Lint_rules.alloc_calls] / [view_calls]:

   - a tracked identifier appearing on a line after its release is a
     use-after-release (R6), as is use of a view whose backing buffer has
     been released;
   - a second release of the same identifier is a double release (R6);
   - a tracked buffer that reaches the end of its chunk without being
     released, tail-returned, consumed or escaped is a leak (R6);
   - a literal [raise]/[failwith] between an alloc and its release marks
     an exception path on which the release cannot run (R6);
   - a tracked buffer or view on a line that stores through one of
     [Lint_rules.escape_sinks] (Hashtbl/Queue/ref/mutable-field/mailbox)
     escapes to a lifetime the function no longer controls (R7).

   One level of interprocedural propagation: every chunk gets a summary —
   consumes (releases one of its own parameters) / returns-ownership
   (tail-returns a buffer it allocated) — resolved by the same
   module-of-file scheme the check plane's call graph uses, so a call to a
   consuming helper counts as a release and a call to an allocating
   helper counts as an alloc. Summaries are computed from direct events
   only (no fixpoint), which is exactly "one level".

   Suppressions: [lint: allow ownership(<id>) — reason] and
   [lint: allow escape(<id>) — reason], the standard pragma syntax. Every
   sanctioned escape must say why the stored view's buffer cannot be
   recycled under it. *)

let rule_own = "ownership"
let rule_esc = "escape"

type summary = {
  s_module : string;
  s_name : string;
  s_consumes : bool;  (** releases one of its parameters *)
  s_returns : bool;  (** tail-returns a buffer it allocated *)
}

let is_ml file = Filename.check_suffix file ".ml"

(* --- lexical helpers ---------------------------------------------------- *)

(* Dotted-suffix call match: like [Lint_lex.line_has_token], but a '.' may
   precede the pattern, so "Pool.alloc" also matches in
   "Ntcs_util.Pool.alloc". Returns the position just past the first match. *)
let call_end line pat =
  let n = String.length line and m = String.length pat in
  let ok_at i =
    (i = 0 || (let c = line.[i - 1] in (not (Lint_lex.is_ident_char c)) || c = '.'))
    && (i + m >= n || not (Lint_lex.is_ident_char line.[i + m]))
  in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat && ok_at i then Some (i + m)
    else go (i + 1)
  in
  go 0

let has_call line pat = call_end line pat <> None

let has_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'

(* Lowercase identifiers from position [from], with positions, in order.
   Module-path components ([Foo.bar] -> bar), labels ([~off]), optional
   args and record projections ([t.pool]) are skipped: those are not the
   binding occurrences we track. *)
let idents_from line from =
  let n = String.length line in
  let out = ref [] in
  let i = ref from in
  while !i < n do
    let c = line.[!i] in
    if Lint_lex.is_ident_char c then begin
      let j = ref !i in
      while !j < n && Lint_lex.is_ident_char line.[!j] do incr j done;
      let prev = if !i = 0 then ' ' else line.[!i - 1] in
      if is_lower c && prev <> '~' && prev <> '?' && prev <> '.' && prev <> '\'' then
        out := (!i, String.sub line !i (!j - !i)) :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

(* First standalone '=' at or after [from]: not part of a two-char operator
   like [<=], [:=], [==], [=>]. *)
let eq_pos line from =
  let n = String.length line in
  let op = function
    | '<' | '>' | '!' | ':' | '+' | '-' | '*' | '/' | '&' | '|' | '@' | '^' | '=' -> true
    | _ -> false
  in
  let rec go i =
    if i >= n then None
    else if line.[i] = '=' && (i = 0 || not (op line.[i - 1])) && (i + 1 >= n || line.[i + 1] <> '=')
    then Some i
    else go (i + 1)
  in
  go from

(* [let]-bindings opened on this line whose '=' sits on the same line:
   [(id, params_nonempty, text after '=')]. Pattern, unit and wildcard
   bindings yield nothing. *)
let bindings line =
  let n = String.length line in
  let rec lets i acc =
    if i + 3 > n then List.rev acc
    else if
      String.sub line i 3 = "let"
      && (i = 0 || not (Lint_lex.is_ident_char line.[i - 1]))
      && (i + 3 >= n || not (Lint_lex.is_ident_char line.[i + 3]))
    then lets (i + 3) ((i + 3) :: acc)
    else lets (i + 1) acc
  in
  List.filter_map
    (fun after ->
      match idents_from line after with
      | [] -> None
      | (p0, "rec") :: rest -> (
        ignore p0;
        match rest with [] -> None | (p, id) :: _ -> Some (p, id))
      | (p, id) :: _ -> Some (p, id))
    (lets 0 [])
  |> List.filter_map (fun (p, id) ->
         if id = "" || id.[0] = '_' then None
         else
           let id_end = p + String.length id in
           match eq_pos line id_end with
           | None ->
             (* '=' on a later line: treat as a rebind with an unknown body. *)
             Some (id, String.trim (String.sub line id_end (n - id_end)) <> "", "")
           | Some eq ->
             let between = String.trim (String.sub line id_end (eq - id_end)) in
             let rest = String.sub line (eq + 1) (n - eq - 1) in
             Some (id, between <> "", rest))

(* A line whose whole content is one identifier (optionally under
   [Ok]/[Some]/[Error], optionally ';'-terminated) tail-returns it. *)
let transfer_target line =
  let s = String.trim line in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = ';' then
      String.trim (String.sub s 0 (String.length s - 1))
    else s
  in
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then String.trim (String.sub s lp (String.length s - lp))
    else s
  in
  let s = strip_prefix "Ok " (strip_prefix "Some " (strip_prefix "Error " s)) in
  if s <> "" && is_lower s.[0] && String.for_all Lint_lex.is_ident_char s then Some s else None

(* --- per-chunk dataflow ------------------------------------------------- *)

type origin = Buf | View of string option

type tr = {
  t_origin : origin;
  t_bound : int;
  mutable t_released : int;  (* 0 = live *)
  mutable t_gone : bool;  (* transferred / escaped / consumed *)
  mutable t_transferred : bool;
}

(* A chunk: one top-level [let]/[and] with its body, as (lineno, line). *)
let chunks blank =
  let starts_chunk line =
    let kw k =
      let lk = String.length k in
      String.length line > lk && String.sub line 0 lk = k && not (Lint_lex.is_ident_char line.[lk])
    in
    kw "let" || kw "and"
  in
  let rec go acc cur = function
    | [] -> List.rev (match cur with [] -> acc | c -> List.rev c :: acc)
    | (no, line) :: rest ->
      if starts_chunk line then go (match cur with [] -> acc | c -> List.rev c :: acc) [ (no, line) ] rest
      else go acc (match cur with [] -> [] | c -> (no, line) :: c) rest
  in
  let numbered = List.mapi (fun i l -> (i + 1, l)) (Lint_lex.lines blank) in
  go [] [] numbered

let chunk_name = function
  | [] -> None
  | (_, header) :: _ -> (
    let name =
      match idents_from header 3 with
      | (_, "rec") :: (_, id) :: _ -> Some id
      | (_, id) :: _ -> Some id
      | [] -> None
    in
    match name with Some id when id <> "" && id.[0] <> '_' -> Some id | _ -> None)

(* Parameters named on the chunk's header line, between the function name
   and the '=' (or to end of line). Good enough to classify a released
   identifier as "one of my parameters". *)
let chunk_params = function
  | [] -> []
  | (_, header) :: _ -> (
    match idents_from header 3 with
    | [] -> []
    | (p0, "rec") :: rest | (p0, _) :: rest -> (
      ignore p0;
      let stop = match eq_pos header 0 with Some e -> e | None -> String.length header in
      match rest with
      | _ ->
        List.filter_map (fun (p, id) -> if p < stop then Some id else None) rest))

(* Scan one chunk. [report] is how diagnostics leave; the returned flags
   feed the summary pass. *)
let scan_chunk ~file ~pragmas ~summaries ~self chunk report =
  let tracked : (string, tr) Hashtbl.t = Hashtbl.create 8 in
  let raises = ref [] in
  let returns_direct = ref false in
  let consumed_param = ref false in
  let params = chunk_params chunk in
  let header_line = match chunk with (no, _) :: _ -> no | [] -> 0 in
  let last_line = List.fold_left (fun acc (no, l) -> if String.trim l = "" then acc else no) 0 chunk in
  let find id = Hashtbl.find_opt tracked id in
  let allowed rule arg line = Lint_lex.pragma_allows pragmas ~rule ~arg ~line in
  let diag rule line msg = report (Lint_diag.make ~file ~line ~rule msg) in
  (* Does this expression call something that hands ownership back? *)
  let binds_buffer rest =
    List.exists (has_call rest) Lint_rules.alloc_calls
    || List.exists
         (fun s ->
           s.s_returns && s.s_name <> self
           && (Lint_lex.line_has_token rest s.s_name
              || Lint_lex.line_has_token rest (s.s_module ^ "." ^ s.s_name)))
         summaries
  in
  let consuming_call line =
    List.exists
      (fun s ->
        s.s_consumes && s.s_name <> self
        && (Lint_lex.line_has_token line s.s_name
           || Lint_lex.line_has_token line (s.s_module ^ "." ^ s.s_name)))
      summaries
  in
  List.iter
    (fun (lineno, line) ->
      (* 1. releases — direct calls name their argument; consuming helpers
         release every tracked buffer they are handed. *)
      let released_here = ref [] in
      let release_of id =
        match find id with
        | Some t when t.t_origin = Buf ->
          released_here := id :: !released_here;
          if List.mem id params then consumed_param := true;
          if t.t_released > 0 then begin
            if not (allowed rule_own id lineno) then
              diag rule_own lineno
                (Printf.sprintf "%s: released again (first released at line %d)" id t.t_released)
          end
          else t.t_released <- lineno
        | Some _ | None -> if List.mem id params then consumed_param := true
      in
      List.iter
        (fun pat ->
          match call_end line pat with
          | None -> ()
          | Some after -> (
            match idents_from line after with
            | _ :: (_, id) :: _ | [ (_, id) ] -> release_of id
            | [] -> ()))
        Lint_rules.release_calls;
      if consuming_call line then
        Hashtbl.iter
          (fun id t ->
            if t.t_origin = Buf && t.t_released = 0 && Lint_lex.line_has_token line id then
              release_of id)
          tracked;
      (* 2. bindings *)
      List.iter
        (fun (id, is_fun, rest) ->
          if is_fun then begin
            (* A function definition, not a value: its body returning an
               alloc directly is a returns-ownership summary, not a leak. *)
            if lineno = header_line && binds_buffer rest then returns_direct := true
          end
          else if binds_buffer rest then
            Hashtbl.replace tracked id
              { t_origin = Buf; t_bound = lineno; t_released = 0; t_gone = false; t_transferred = false }
          else if List.exists (has_call rest) Lint_rules.view_calls then begin
            let base =
              List.find_map
                (fun (_, w) ->
                  match find w with Some { t_origin = Buf; _ } -> Some w | _ -> None)
                (idents_from rest 0)
            in
            Hashtbl.replace tracked id
              { t_origin = View base; t_bound = lineno; t_released = 0; t_gone = false;
                t_transferred = false }
          end
          else if Hashtbl.mem tracked id then Hashtbl.remove tracked id)
        (bindings line);
      (* 3. use after release *)
      Hashtbl.iter
        (fun id t ->
          if (not (List.mem id !released_here)) && Lint_lex.line_has_token line id then begin
            (match t.t_origin with
             | Buf ->
               if t.t_released > 0 && t.t_released < lineno && not (allowed rule_own id lineno)
               then
                 diag rule_own lineno
                   (Printf.sprintf "%s: used after release (line %d) — the buffer may already be recycled"
                      id t.t_released)
             | View base -> (
               match base with
               | Some b -> (
                 match find b with
                 | Some bt when bt.t_released > 0 && bt.t_released < lineno ->
                   if not (allowed rule_own id lineno) then
                     diag rule_own lineno
                       (Printf.sprintf
                          "%s: view used after its buffer %s was released (line %d)" id b
                          bt.t_released)
                 | _ -> ())
               | None -> ()));
            (* 4. escapes (R7) *)
            if t.t_released = 0 then
              match
                List.find_opt (fun s -> has_sub ~sub:s line) Lint_rules.escape_sinks
              with
              | Some sink ->
                t.t_gone <- true;
                if not (allowed rule_esc id lineno) then
                  diag rule_esc lineno
                    (Printf.sprintf
                       "%s: stored into a long-lived structure (%s) without an ownership pragma"
                       id sink)
              | None -> ()
          end)
        tracked;
      (* 5. literal exception sites *)
      if
        Lint_lex.line_has_token line "raise"
        || Lint_lex.line_has_token line "failwith"
        || Lint_lex.line_has_token line "invalid_arg"
      then raises := lineno :: !raises;
      (* 6. tail transfer *)
      match transfer_target line with
      | Some id -> (
        match find id with
        | Some t when t.t_origin = Buf && t.t_released = 0 ->
          t.t_gone <- true;
          t.t_transferred <- true;
          if lineno = last_line then returns_direct := true
        | _ -> ())
      | None -> ())
    chunk;
  (* end of chunk: leaks and exception-path holes *)
  Hashtbl.iter
    (fun id t ->
      match t.t_origin with
      | View _ -> ()
      | Buf ->
        if t.t_released = 0 && not t.t_gone then begin
          if not (allowed rule_own id t.t_bound) then
            diag rule_own t.t_bound
              (Printf.sprintf "%s: pooled buffer is never released, returned or handed off" id)
        end
        else if t.t_released > 0 then
          List.iter
            (fun r ->
              if r > t.t_bound && r < t.t_released && not (allowed rule_own id r) then
                diag rule_own r
                  (Printf.sprintf
                     "%s: raise between alloc (line %d) and release (line %d) — the exception \
                      path leaks the buffer"
                     id t.t_bound t.t_released))
            (List.sort compare !raises))
    tracked;
  (!consumed_param, !returns_direct)

(* --- public passes ------------------------------------------------------ *)

let summarize (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  if not (is_ml file) || Lint_rules.may_manage_buffers file then []
  else begin
    let m = Lint_rules.module_of_file file in
    List.filter_map
      (fun chunk ->
        match chunk_name chunk with
        | None -> None
        | Some name ->
          let consumes, returns =
            scan_chunk ~file ~pragmas:[] ~summaries:[] ~self:name chunk (fun _ -> ())
          in
          if consumes || returns then
            Some { s_module = m; s_name = name; s_consumes = consumes; s_returns = returns }
          else None)
      (chunks src.Lint_lex.src_blank)
  end

let check ?(summaries = []) (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  if not (is_ml file) || Lint_rules.may_manage_buffers file then []
  else begin
    let pragmas, _ = Lint_lex.pragmas src in
    (* Same-file helpers always contribute summaries; cross-file ones come
       from the caller (the tree-level pass in [Lint.lint_paths]). *)
    let summaries = summarize src @ summaries in
    let diags = ref [] in
    List.iter
      (fun chunk ->
        let self = match chunk_name chunk with Some n -> n | None -> "" in
        ignore
          (scan_chunk ~file ~pragmas ~summaries ~self chunk (fun d -> diags := d :: !diags)))
      (chunks src.Lint_lex.src_blank);
    Lint_diag.sort !diags
  end
