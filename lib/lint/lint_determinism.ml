(* R2: determinism. The simulation's repeatability rests on nothing in a
   protocol path consulting wall clocks, unseeded randomness or hash-table
   layout. Grep-grade, word-bounded, on blanked text; suppress with
   `lint: allow determinism(<pattern>) — reason`. *)

let rule = "determinism"

let check (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  let pragmas, _ = Lint_lex.pragmas src in
  let in_protocol = Lint_rules.protocol_path file in
  let applicable =
    List.filter
      (fun (r : Lint_rules.det_rule) -> r.Lint_rules.d_everywhere || in_protocol)
      Lint_rules.det_rules
  in
  let diags = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      List.iter
        (fun (r : Lint_rules.det_rule) ->
          if Lint_lex.line_has_token line r.Lint_rules.d_pat
             && not
                  (Lint_lex.pragma_allows pragmas ~rule ~arg:r.Lint_rules.d_pat ~line:lineno)
          then
            diags :=
              Lint_diag.make ~file ~line:lineno ~rule
                (Printf.sprintf "%s: %s" r.Lint_rules.d_pat r.Lint_rules.d_why)
              :: !diags)
        applicable)
    (Lint_lex.lines src.Lint_lex.src_blank);
  Lint_diag.sort !diags
