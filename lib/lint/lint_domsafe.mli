(** R8 [domsafe]: the shared-state ownership map — static half of the
    domain-safety pass (dynamic half: [Check_race]).

    Classifies every module-level mutable binding in the tree for the
    ROADMAP-2 domain-parallel refactor:

    - a module-scope [let] allocating a [ref]/table/pool/queue
      ({!Lint_rules.mutable_ctors}) is {e ambient-global} — one instance
      every domain would share. Reachable from per-machine code
      ({!Lint_rules.machine_path}, transitively over the module-reference
      graph) and unwaived, it is an R8 violation. Waive with
      [lint: allow domsafe(<name>) — <reason>].
    - a [mutable] record field is {e machine-local} or {e world-local}
      by where the record is declared — inventory only, never a
      violation: this is the state the refactor threads through domains.

    [ntcs_lint --ownership-map --json] emits the full inventory
    (schema [ntcs.lint.ownership-map/1]) as the refactor's work list. *)

type scope = Binding | Field
type cls = World_local | Machine_local | Ambient_global

type entry = {
  d_file : string;
  d_line : int;  (** allocating line (binding) / the field's line *)
  d_module : string;
  d_name : string;  (** binding name, or [type.field] *)
  d_ctor : string;  (** the mutable constructor, or ["mutable"] *)
  d_scope : scope;
  d_class : cls;
  d_reachable : bool;  (** can per-machine code reach the holder module? *)
  d_waived : string option;  (** covering pragma's reason, if any *)
}

val scope_name : scope -> string
val class_name : cls -> string

val inventory : ?graph:(string * string) list -> Lint_lex.source list -> entry list
(** The full ownership map over the given sources ([.mli]s are skipped —
    interfaces restate the implementation's fields). [graph] supplies
    resolved (referrer, referee) module edges — the caller may pass the
    hook-aware graph from [Check_graph]; the default is the lexical
    module-reference graph of the sources themselves. *)

val check : ?graph:(string * string) list -> Lint_lex.source list -> Lint_diag.t list
(** R8 violations: unwaived ambient-global bindings reachable from
    per-machine code. *)

val pp_entry : Format.formatter -> entry -> unit

val map_to_json : entry list -> string
(** The inventory as [{"schema":"ntcs.lint.ownership-map/1","entries":[…]}],
    sorted by (file, line, name) so runs diff byte-for-byte. *)
