(* The repo-specific policy tables: which module sits on which layer, which
   files may name which restricted modules, and which calls threaten
   determinism. Everything else in the linter is generic machinery. *)

(* Layer ranks, following the paper's stack (§2): application-level modules
   on top, IPCS backends at the bottom. A ranked module may reference ranked
   modules at its own rank or below; references upward violate R1.

     7  applications (Name Server, DRTS services, URSA)
     6  ALI-Layer / ComMod assembly
     5  NSP-Layer
     4  LCM-Layer
     3  IP-Layer / Gateway / Router
     2  ND-Layer
     1  STD-IF
     0  IPCS backends

   Unranked modules (Addr, Proto, Node, Errors, the sim, the wire codecs,
   Ntcs_util, ...) are common substrate and carry no constraint. *)
let rank_of = function
  | "Name_server" | "Monitor" | "Time_service" | "Error_log" | "Process_ctl" | "Host"
  | "Servers" ->
    Some 7
  | "Ali_layer" | "Commod" -> Some 6
  | "Nsp_layer" -> Some 5
  | "Lcm_layer" -> Some 4
  | "Ip_layer" | "Gateway" | "Router" -> Some 3
  | "Nd_layer" -> Some 2
  | "Std_if" -> Some 1
  | "Ipcs_tcp" | "Ipcs_mbx" | "Registry" | "Phys_addr" | "Ipcs_error" -> Some 0
  | _ -> None

let layer_name = function
  | 7 -> "application"
  | 6 -> "ALI/ComMod"
  | 5 -> "NSP"
  | 4 -> "LCM"
  | 3 -> "IP/Gateway"
  | 2 -> "ND"
  | 1 -> "STD-IF"
  | 0 -> "IPCS"
  | _ -> "?"

(* Windows never happens here, but normalise anyway so path predicates are
   simple substring checks on '/'-separated paths. *)
let norm path = String.map (fun c -> if c = '\\' then '/' else c) path

let has_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let basename path =
  match String.rindex_opt (norm path) '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* The module a file defines: basename, extension stripped, capitalised. *)
let module_of_file path =
  let b = basename path in
  let stem = match String.index_opt b '.' with Some i -> String.sub b 0 i | None -> b in
  if stem = "" then stem else String.capitalize_ascii stem

(* Directories whose code is on the message path: hash-order iteration there
   is a reproducibility bug, not a style nit. lib/util and lib/wire are pure
   leaf libraries and exempt. *)
let protocol_path path =
  let p = norm path in
  List.exists
    (fun d -> has_sub ~sub:d p)
    [ "lib/core"; "lib/ipcs"; "lib/sim"; "lib/drts"; "lib/ursa"; "lib/naming" ]

(* Only the ND layer, the STD-IF shim and the IPCS library itself may name a
   concrete IPCS backend: everything above must stay backend-agnostic
   (that is the portability claim of §2.1/§5). *)
let may_name_ipcs_backend path =
  let p = norm path in
  has_sub ~sub:"lib/ipcs/" p
  || List.mem (module_of_file p) [ "Std_if"; "Nd_layer" ]

let ipcs_backends = [ "Ipcs_tcp"; "Ipcs_mbx" ]

(* Only the IP layer selects a conversion mode for traffic (§5): lib/wire
   owns the mechanism, ip_layer.ml the policy. *)
let may_select_conversion path =
  let p = norm path in
  has_sub ~sub:"lib/wire/" p || String.equal (module_of_file p) "Ip_layer"

let conversion_selectors = [ "Convert.choose"; "Convert.force" ]

(* Retry discipline: the ComMod layers (lib/core) recover through the one
   [Retry] policy module. A bare [Sched.sleep] anywhere else in lib/core is
   a hand-rolled backoff loop waiting to drift from the policy — bounded
   differently, jittered differently, or not at all. Applications, services
   and the sim itself may sleep freely. *)
let may_sleep path =
  let p = norm path in
  (not (has_sub ~sub:"lib/core/" p)) || String.equal (module_of_file p) "Retry"

let sleep_calls = [ "Sched.sleep" ]

(* R5: copy discipline. The zero-copy frame pipeline keeps payload bytes in
   place from receive through forward to send; a stray Bytes.cat/sub/copy in
   lib/core is a hot-path copy creeping back in. Proto owns the sanctioned
   materialisation points (Frame.payload_bytes, to_bytes, the legacy
   encode/decode pair) and the pool lives outside lib/core; everything else
   must either stay on views or carry a pragma naming its reason. *)
let copy_calls = [ "Bytes.cat"; "Bytes.sub"; "Bytes.copy" ]

let may_copy_frames path =
  let p = norm path in
  (not (has_sub ~sub:"lib/core/" p)) || String.equal (module_of_file p) "Proto"

(* R6/R7: frame-ownership discipline. The zero-copy pipeline (PR 5) rests
   on lifetime rules that live in comments — Pool.alloc transfers, release
   revokes, no view outlives its buffer. Lint_ownership tracks identifiers
   bound from these calls through each function; the tables below are the
   policy: what allocates, what releases, what creates a view over a
   buffer, and which stores hand a tracked value to something that
   outlives the binding. *)
let alloc_calls = [ "Pool.alloc" ]
let release_calls = [ "Pool.release" ]
let view_calls = [ "Frame.of_bytes"; "Frame.of_parts"; "Frame.encode_into" ]

(* Long-lived sinks (R7): storing a tracked buffer or view through one of
   these gives it a lifetime the function no longer controls, which is
   exactly when a later [release] turns the stored view stale. Matched as
   substrings of the blanked line — the dotted heads ("Sched.Mailbox.send")
   defeat head-anchored token matching. *)
let escape_sinks =
  [ "Hashtbl.replace"; "Hashtbl.add"; "Queue.push"; "Queue.add"; "Mailbox.send"; ":="; "<-" ]

(* Only the pool implementation manipulates raw freelist buffers; every
   other file is subject to the ownership dataflow. *)
let may_manage_buffers path = String.equal (module_of_file (norm path)) "Pool"

(* R8: domain safety. A module-level [let] whose right-hand side allocates
   one of these is ambient mutable state: every domain in the planned
   parallel-world execution (ROADMAP 2) would share the one instance. The
   same constructors inside a function or stored in a record field are
   fine — that state hangs off whoever holds the value. *)
let mutable_ctors =
  [
    "ref"; "Hashtbl.create"; "Tbl.create"; "Lru.create"; "Pool.create";
    "Queue.create"; "Stack.create"; "Buffer.create"; "Bytes.create";
    "Array.make"; "Atomic.make";
  ]

(* Per-machine code: what becomes a domain work item when worlds go
   parallel. An ambient global is a violation exactly when code here can
   reach it — directly or through anything it calls (the sim substrate
   included: the protocol stack runs on [Sched]). *)
let machine_path path =
  let p = norm path in
  List.exists
    (fun d -> has_sub ~sub:d p)
    [ "lib/core"; "lib/ipcs"; "lib/drts"; "lib/ursa"; "lib/naming" ]

(* Inventory scope for mutable record fields: instances of records declared
   in per-machine directories are owned by a machine's stack; everything
   else (sim, util, obs, wire, the analysis tooling itself) is owned by the
   world — or the tool — that created the instance. *)
let field_scope path = if machine_path path then `Machine_local else `World_local

type det_rule = {
  d_pat : string;  (** dotted path to match, word-bounded *)
  d_why : string;
  d_everywhere : bool;  (** false: only in [protocol_path] files *)
}

let det_rules =
  [
    { d_pat = "Random.self_init"; d_why = "nondeterministic seed; use the world's seeded Rng";
      d_everywhere = true };
    { d_pat = "Unix.gettimeofday"; d_why = "wall-clock time; use virtual time (Node.now)";
      d_everywhere = true };
    { d_pat = "Sys.time"; d_why = "process time; use virtual time (Node.now)";
      d_everywhere = true };
    { d_pat = "Obj.magic"; d_why = "defeats the type system; never on a protocol path";
      d_everywhere = true };
    { d_pat = "Unix.sleep";
      d_why = "blocks the host thread outside virtual time; use Retry.run or Sched.sleep";
      d_everywhere = true };
    { d_pat = "Unix.sleepf";
      d_why = "blocks the host thread outside virtual time; use Retry.run or Sched.sleep";
      d_everywhere = true };
    { d_pat = "Hashtbl.iter";
      d_why = "hash-order iteration is nondeterministic; use Ntcs_util.sorted_bindings";
      d_everywhere = false };
    { d_pat = "Hashtbl.fold";
      d_why = "hash-order iteration is nondeterministic; use Ntcs_util.sorted_bindings";
      d_everywhere = false };
  ]
