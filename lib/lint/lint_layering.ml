(* R1: layer discipline. Four lexical checks per file:

   - references must point downward (or sideways) in the layer ranking;
   - only the ND layer, STD-IF and lib/ipcs may name an IPCS backend;
   - only the IP layer (and lib/wire itself) may select a conversion mode;
   - only the Retry policy module sleeps inside lib/core (ad-hoc backoff
     loops drift from the one bounded, jittered policy).

   All on blanked text, so comments and strings can't trip it; all
   suppressible with `lint: allow layering(<module>) — reason`. *)

let rule = "layering"

let check (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  let pragmas, _ = Lint_lex.pragmas src in
  let allowed ~arg ~line = Lint_lex.pragma_allows pragmas ~rule ~arg ~line in
  let self = Lint_rules.module_of_file file in
  let self_rank = Lint_rules.rank_of self in
  let diags = ref [] in
  let add ~line msg = diags := Lint_diag.make ~file ~line ~rule msg :: !diags in
  (* Upward references. *)
  List.iter
    (fun (line, m) ->
      if not (String.equal m self) then begin
        match (self_rank, Lint_rules.rank_of m) with
        | Some r_self, Some r_ref when r_ref > r_self ->
          if not (allowed ~arg:m ~line) then
            add ~line
              (Printf.sprintf "%s (%s, rank %d) references %s (%s, rank %d): layers only call downward"
                 self
                 (Lint_rules.layer_name r_self)
                 r_self m
                 (Lint_rules.layer_name r_ref)
                 r_ref)
        | _ -> ()
      end)
    (Lint_lex.module_refs src);
  (* Backend naming. *)
  if not (Lint_rules.may_name_ipcs_backend file) then
    List.iter
      (fun (line, m) ->
        if List.mem m Lint_rules.ipcs_backends && not (allowed ~arg:m ~line) then
          add ~line
            (Printf.sprintf
               "%s names IPCS backend %s: only lib/ipcs, Std_if and Nd_layer may (portability, §2.1)"
               self m))
      (Lint_lex.module_refs src);
  (* Conversion-mode selection. *)
  if not (Lint_rules.may_select_conversion file) then
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        List.iter
          (fun pat ->
            if Lint_lex.line_has_token line pat && not (allowed ~arg:pat ~line:lineno) then
              add ~line:lineno
                (Printf.sprintf
                   "%s calls %s: only Ip_layer selects a conversion mode (\xc2\xa75)" self pat))
          Lint_rules.conversion_selectors)
      (Lint_lex.lines src.Lint_lex.src_blank);
  (* Retry discipline. *)
  if not (Lint_rules.may_sleep file) then
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        List.iter
          (fun pat ->
            if Lint_lex.line_has_token line pat && not (allowed ~arg:pat ~line:lineno) then
              add ~line:lineno
                (Printf.sprintf
                   "%s calls %s: lib/core recovers through Retry.run, not ad-hoc sleeps" self
                   pat))
          Lint_rules.sleep_calls)
      (Lint_lex.lines src.Lint_lex.src_blank);
  Lint_diag.sort !diags
