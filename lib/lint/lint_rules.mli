(** The repo-specific lint policy: layer ranks, restricted-module
    allowlists, and determinism-threatening call patterns. *)

val rank_of : string -> int option
(** Layer rank of a module name, following the paper's stack: 7
    applications, 6 ALI/ComMod, 5 NSP, 4 LCM, 3 IP/Gateway/Router, 2 ND,
    1 STD-IF, 0 IPCS backends. [None] = common substrate, unconstrained. *)

val layer_name : int -> string

val module_of_file : string -> string
(** ["lib/core/lcm_layer.ml"] -> ["Lcm_layer"]. *)

val protocol_path : string -> bool
(** Is this file on the message path (lib/core, lib/ipcs, lib/sim,
    lib/drts, lib/ursa)? Hash-order iteration is forbidden there. *)

val may_name_ipcs_backend : string -> bool
(** May this file name [Ipcs_tcp]/[Ipcs_mbx]? True for lib/ipcs itself,
    [Std_if] and [Nd_layer]. *)

val ipcs_backends : string list

val may_select_conversion : string -> bool
(** May this file call [Convert.choose]/[Convert.force]? True for lib/wire
    (mechanism) and [Ip_layer] (policy, §5). *)

val conversion_selectors : string list

val may_sleep : string -> bool
(** May this file call [Sched.sleep] directly? False only inside lib/core,
    where all backoff belongs to the [Retry] policy module. *)

val sleep_calls : string list

val may_copy_frames : string -> bool
(** May this file call [Bytes.cat]/[Bytes.sub]/[Bytes.copy]? False inside
    lib/core — the frame pipeline is zero-copy — except for [Proto], which
    owns the sanctioned materialisation points. *)

val copy_calls : string list

val alloc_calls : string list
(** Calls that transfer ownership of a buffer to the binder (R6). *)

val release_calls : string list
(** Calls that revoke ownership — after one, the buffer is untouchable. *)

val view_calls : string list
(** Frame-view constructors: the bound view aliases its backing buffer. *)

val escape_sinks : string list
(** Stores that hand a tracked buffer/view a longer lifetime than the
    binding (R7); matched as substrings of the blanked line. *)

val may_manage_buffers : string -> bool
(** Is this file the pool implementation itself (exempt from R6/R7)? *)

val mutable_ctors : string list
(** Constructors whose result, bound by a module-level [let], is ambient
    mutable state (R8): [ref], the table/pool/queue makers, … *)

val machine_path : string -> bool
(** Is this file per-machine code (lib/core, lib/ipcs, lib/drts,
    lib/ursa) — a domain work item under parallel-world execution? An
    ambient global is an R8 violation exactly when reachable from here. *)

val field_scope : string -> [ `Machine_local | `World_local ]
(** Ownership class of a mutable record field declared in this file:
    instances of per-machine records belong to a machine's stack,
    everything else to the world (or tool) holding the instance. *)

type det_rule = { d_pat : string; d_why : string; d_everywhere : bool }

val det_rules : det_rule list
