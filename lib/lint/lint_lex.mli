(** Lexical front end for the linter: comment/string blanking, [lint:]
    pragma harvesting, and head-of-path module-reference extraction. *)

type source = {
  src_file : string;  (** path as given (used in diagnostics) *)
  src_text : string;  (** raw contents *)
  src_blank : string;  (** comments/strings/chars blanked, newlines kept *)
}

val blank : string -> string
(** Replace comment bodies (and delimiters), string-literal contents and
    character literals with spaces. Line structure is preserved exactly, so
    byte [i] is on the same line in both texts. *)

val of_string : file:string -> string -> source
val load : string -> source

val lines : string -> string list

val is_ident_char : char -> bool

val line_has_token : string -> string -> bool
(** [line_has_token line "Hashtbl.fold"]: word-bounded match — neither an
    identifier character nor a dot may precede it; no identifier character
    may follow it. *)

val comments : string -> (int * string) list
(** Top-level comments with the line each opens on, delimiters stripped,
    nested comments kept inline. String literals never read as comments. *)

(** An allow pragma: a comment whose text {e begins} with [lint:]:

    {v (* lint: allow <rule>[(<arg>)] — <reason> *) v}

    or [allow-file] for whole-file scope. The separator may be an em dash,
    [--] or [-]; the reason is mandatory (a pragma without one is reported
    as malformed). A line-scoped pragma covers the line its comment opens
    on and the next one. Mentions of the syntax mid-comment or in strings
    are ignored. *)
type pragma = {
  p_line : int;
  p_file_scope : bool;
  p_rule : string;  (** ["layering"] or ["determinism"] *)
  p_arg : string option;  (** restricts the pragma to one module/pattern *)
  p_reason : string;  (** mandatory justification, for the audit listing *)
}

val pragmas : source -> pragma list * Lint_diag.t list
(** Well-formed pragmas, plus a diagnostic for each malformed one (missing
    separator or reason). *)

val pragma_allows : pragma list -> rule:string -> arg:string -> line:int -> bool
(** Is a violation of [rule] on [arg] at [line] suppressed? An argless
    pragma matches any [arg]. *)

val module_refs : source -> (int * string) list
(** [(line, module)] for every head-of-path module reference: [Foo.bar]
    yields [Foo] (not [bar]); [open Foo] and [include Foo] count. Computed
    on the blanked text, so comments and strings cannot fake references.
    Deduplicated per line. *)
