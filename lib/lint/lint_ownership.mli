(** R6 [ownership] / R7 [escape]: the frame-lifetime discipline of the
    zero-copy pipeline, checked statically.

    An intraprocedural, path-insensitive dataflow over blanked source
    lines tracks identifiers bound from [Pool.alloc] and the
    [Proto.Frame] view constructors, and flags use-after-release, double
    release, a buffer never released on some path, a literal
    [raise]/[failwith] between alloc and release (R6), and tracked
    values stored into long-lived structures without a reasoned pragma
    (R7). One level of interprocedural propagation via per-function
    summaries: helpers that release a parameter count as releases at
    their call sites, helpers that tail-return an allocation count as
    allocs.

    Suppress with [lint: allow ownership(<id>) — reason] or
    [lint: allow escape(<id>) — reason]. *)

type summary = {
  s_module : string;
  s_name : string;
  s_consumes : bool;  (** releases one of its parameters *)
  s_returns : bool;  (** tail-returns a buffer it allocated *)
}

val summarize : Lint_lex.source -> summary list
(** Per-function ownership summaries for this file (only functions with
    pool events get one). Computed from direct events only — one level. *)

val check : ?summaries:summary list -> Lint_lex.source -> Lint_diag.t list
(** Run R6/R7 on one source. [summaries] supplies cross-file function
    summaries (from {!summarize} over the rest of the tree); same-file
    helpers are summarized automatically. [.mli] files and the pool
    implementation itself are exempt. *)
