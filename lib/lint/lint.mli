(** Static-analysis driver: walks source trees, runs the layering (R1) and
    determinism (R2) rule families plus pragma well-formedness on every
    [.ml]/[.mli], and aggregates sorted diagnostics. Trace-based invariants
    (R3) live in {!Lint_trace} and run from tests. *)

val source_files : string list -> string list
(** Every [.ml]/[.mli] under the given files/directories, walked in sorted
    order; hidden and [_build]-style directories are skipped. *)

val check_source : ?summaries:Lint_ownership.summary list -> Lint_lex.source -> Lint_diag.t list
(** All static rules on one (possibly in-memory) source. [summaries]
    supplies R6/R7 cross-file function summaries; same-file helpers are
    summarized automatically. *)

val lint_file : string -> Lint_diag.t list

val lint_paths : ?graph:(string * string) list -> string list -> Lint_diag.t list
(** Tree-level run: computes ownership summaries over the whole tree
    first, so R6/R7 classify cross-file helper calls, runs R8 over the
    whole set, then checks every file. [graph] substitutes resolved
    (referrer, referee) module edges for R8 reachability (the ntcs_lint
    driver passes the hook-aware [Check_graph] edges); default is the
    lexical module-reference graph. *)

val ownership_map : ?graph:(string * string) list -> string list -> Lint_domsafe.entry list
(** The R8 shared-state inventory over the given paths
    ([ntcs_lint --ownership-map]). *)

val report : Format.formatter -> Lint_diag.t list -> unit
(** One [file:line: [rule] message] per line. *)

val pragmas_in_paths : string list -> (string * Lint_lex.pragma) list
(** Every well-formed [lint: allow] pragma under the given paths, in
    deterministic (file, line) order — the audit feed for
    [ntcs_lint --pragmas]. *)

val report_pragmas : Format.formatter -> (string * Lint_lex.pragma) list -> unit
(** One [file:line: allow[-file] rule(arg) — reason] per line. *)

val pragmas_to_json : (string * Lint_lex.pragma) list -> string
