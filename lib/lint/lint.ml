(* The static-analysis driver: walk source trees, run every rule family on
   every .ml/.mli, aggregate sorted diagnostics. Malformed pragmas are
   diagnostics too — a suppression that silently fails to parse would be
   worse than no suppression at all. *)

let is_source file =
  Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"

let hidden name = String.length name = 0 || name.[0] = '.' || name.[0] = '_'

(* Deterministic directory walk (sorted readdir). *)
let rec walk path acc =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.filter (fun name -> not (hidden name))
    |> List.sort String.compare
    |> List.fold_left (fun acc name -> walk (Filename.concat path name) acc) acc
  else if is_source path then path :: acc
  else acc

let source_files paths = List.rev (List.fold_left (fun acc p -> walk p acc) [] paths)

let check_source ?(summaries = []) src =
  let _, malformed = Lint_lex.pragmas src in
  Lint_diag.sort
    (malformed @ Lint_layering.check src @ Lint_determinism.check src
    @ Lint_copies.check src @ Lint_categories.check src
    @ Lint_ownership.check ~summaries src)

let lint_file file = check_source (Lint_lex.load file)

(* Tree-level pass: load everything once, give R6/R7 the cross-file
   function summaries (one interprocedural level) and run R8 over the
   whole set (it needs the module-reference graph), then check each file.
   [graph] lets the caller substitute resolved reference edges — the
   ntcs_lint driver passes Check_graph's hook-aware graph. *)
let lint_paths ?graph paths =
  let sources = List.map Lint_lex.load (source_files paths) in
  let summaries = List.concat_map Lint_ownership.summarize sources in
  Lint_diag.sort
    (List.concat_map (check_source ~summaries) sources @ Lint_domsafe.check ?graph sources)

(* The R8 shared-state inventory (`ntcs_lint --ownership-map`). *)
let ownership_map ?graph paths =
  Lint_domsafe.inventory ?graph (List.map Lint_lex.load (source_files paths))

let report ppf diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." Lint_diag.pp d) diags

(* --- pragma audit (--pragmas) --- *)

(* Every active escape hatch, in (file, line) order: suppressions must stay
   auditable, or the allowlist quietly becomes the rule. *)
let pragmas_in_paths paths =
  List.concat_map
    (fun file ->
      let ps, _ = Lint_lex.pragmas (Lint_lex.load file) in
      List.map (fun (p : Lint_lex.pragma) -> (file, p)) ps)
    (source_files paths)

let pp_pragma ppf (file, (p : Lint_lex.pragma)) =
  Format.fprintf ppf "%s:%d: allow%s %s%s \xe2\x80\x94 %s" file p.Lint_lex.p_line
    (if p.Lint_lex.p_file_scope then "-file" else "")
    p.Lint_lex.p_rule
    (match p.Lint_lex.p_arg with Some a -> "(" ^ a ^ ")" | None -> "")
    p.Lint_lex.p_reason

let report_pragmas ppf entries =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_pragma e) entries

let pragmas_to_json entries =
  let one (file, (p : Lint_lex.pragma)) =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"scope\":\"%s\",\"rule\":\"%s\",\"arg\":%s,\"reason\":\"%s\"}"
      (Lint_diag.json_escape file) p.Lint_lex.p_line
      (if p.Lint_lex.p_file_scope then "file" else "line")
      (Lint_diag.json_escape p.Lint_lex.p_rule)
      (match p.Lint_lex.p_arg with
       | Some a -> "\"" ^ Lint_diag.json_escape a ^ "\""
       | None -> "null")
      (Lint_diag.json_escape p.Lint_lex.p_reason)
  in
  "[" ^ String.concat "," (List.map one entries) ^ "]"
