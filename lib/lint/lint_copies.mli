(** R5: copy discipline — no [Bytes.cat]/[Bytes.sub]/[Bytes.copy] on frame
    paths in lib/core outside [Proto]; the pipeline moves payloads as
    {!Proto.Frame} views and pooled buffers. Suppress with
    [lint: allow copies(<call>) — reason]. *)

val rule : string

val check : Lint_lex.source -> Lint_diag.t list
