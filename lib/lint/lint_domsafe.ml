(* R8 [domsafe]: the shared-state ownership map, and the rule that keeps
   it honest. Static half of the domain-safety pass (dynamic half:
   Check_race in the check library).

   The ROADMAP-2 refactor — one OCaml 5 domain per machine group, worlds
   advancing through virtual-time barriers — is only safe if every piece
   of mutable state has a known owner. This pass classifies every
   module-level mutable binding in the tree:

   - a [let] at module scope whose right-hand side allocates a [ref], a
     table ([Hashtbl]/[Tbl]/[Lru]), a [Pool], a queue, … is
     *ambient-global*: one instance shared by every domain. If any
     per-machine code (lib/core, lib/ipcs, lib/drts, lib/ursa) can reach
     the module holding it — directly or transitively through the
     resolved reference graph — that is an R8 violation: the refactor
     cannot shard it. Sanctioned globals carry a reasoned pragma:
     [lint: allow domsafe(<name>) — <reason>].

   - a [mutable] record field is owned by whoever holds the record
     instance: *machine-local* when the record is declared in per-machine
     code, *world-local* otherwise. Fields are inventory, not violations
     — they are exactly the state the refactor will thread through
     domains, and `ntcs_lint --ownership-map` emits them all as the
     refactor's work list.

   Like every rule here this is lexical, over blanked text: module level
   means column zero, and a [let] with parameters is a function (its
   allocations are per-call, not ambient). *)

type scope = Binding | Field
type cls = World_local | Machine_local | Ambient_global

type entry = {
  d_file : string;
  d_line : int;  (* the allocating line (binding) / the field's line *)
  d_module : string;
  d_name : string;  (* binding name, or [type.field] *)
  d_ctor : string;  (* which mutable constructor, or ["mutable"] *)
  d_scope : scope;
  d_class : cls;
  d_reachable : bool;  (* can per-machine code reach the holder module? *)
  d_waived : string option;  (* reason of the covering pragma, if any *)
}

let scope_name = function Binding -> "binding" | Field -> "field"

let class_name = function
  | World_local -> "world-local"
  | Machine_local -> "machine-local"
  | Ambient_global -> "ambient-global"

let is_ident_start c = (c >= 'a' && c <= 'z') || c = '_'

(* Word-bounded occurrences of [tok] in [line] (same bounds as
   {!Lint_lex.line_has_token}), as start offsets. *)
let token_positions line tok =
  let n = String.length line and m = String.length tok in
  let ok_before i =
    i = 0 || (let c = line.[i - 1] in (not (Lint_lex.is_ident_char c)) && c <> '.')
  in
  let ok_after i = i + m >= n || not (Lint_lex.is_ident_char line.[i + m]) in
  let rec go i acc =
    if i + m > n then List.rev acc
    else if String.sub line i m = tok && ok_before i && ok_after i then
      go (i + m) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

(* First identifier starting at or after [i]. *)
let ident_after line i =
  let n = String.length line in
  let rec start i = if i >= n then None else if is_ident_start line.[i] then Some i else start (i + 1) in
  match start i with
  | None -> None
  | Some s ->
    let rec stop j = if j < n && Lint_lex.is_ident_char line.[j] then stop (j + 1) else j in
    Some (String.sub line s (stop s - s))

(* ----- toplevel items ----- *)

(* Split the blanked text into toplevel items: an item starts on a line
   whose first character is non-blank (comments are already spaces). *)
let toplevel_items blank =
  let lines = Array.of_list (Lint_lex.lines blank) in
  let items = ref [] and cur = ref [] and cur_start = ref 0 in
  let flush () =
    if !cur <> [] then items := (!cur_start, List.rev !cur) :: !items;
    cur := []
  in
  Array.iteri
    (fun i line ->
      let starts = line <> "" && line.[0] <> ' ' && line.[0] <> '\t' in
      if starts then begin
        flush ();
        cur_start := i + 1
      end;
      if !cur <> [] || starts then cur := line :: !cur)
    lines;
  flush ();
  List.rev !items

(* A module-level value binding: [let x =], [let rec x =], [let x : t =].
   Anything between the name and the [=] other than a type annotation
   means parameters — a function, out of scope for R8. *)
let binding_head item_text =
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s >= lp && String.sub s 0 lp = p then Some (String.sub s lp (String.length s - lp))
    else None
  in
  let rest =
    match strip_prefix "let rec " item_text with
    | Some r -> Some r
    | None -> strip_prefix "let " item_text
  in
  match rest with
  | None -> None
  | Some r -> (
    let r = String.trim r in
    match ident_after r 0 with
    | Some name when r <> "" && is_ident_start r.[0] -> (
      match String.index_opt r '=' with
      | None -> None
      | Some eq ->
        let between = String.trim (String.sub r (String.length name) (eq - String.length name)) in
        if between = "" || between.[0] = ':' then Some (name, eq) else None)
    | _ -> None)

(* ----- reachability over the module-reference graph ----- *)

let reachable_modules ~graph ~roots =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (src, dst) ->
      let l = match Hashtbl.find_opt adj src with Some l -> l | None -> [] in
      Hashtbl.replace adj src (dst :: l))
    graph;
  let seen = Hashtbl.create 64 in
  let rec visit m =
    if not (Hashtbl.mem seen m) then begin
      Hashtbl.replace seen m ();
      List.iter visit (match Hashtbl.find_opt adj m with Some l -> l | None -> [])
    end
  in
  List.iter visit roots;
  seen

(* ----- the inventory ----- *)

let find_waiver pragmas ~name ~line =
  List.find_map
    (fun (p : Lint_lex.pragma) ->
      if
        p.p_rule = "domsafe"
        && (match p.p_arg with None -> true | Some a -> a = name)
        && (p.p_file_scope || line = p.p_line || line = p.p_line + 1)
      then Some p.p_reason
      else None)
    pragmas

let bindings_of_source (src : Lint_lex.source) =
  let pragmas, _ = Lint_lex.pragmas src in
  List.concat_map
    (fun (start_line, lines) ->
      let text = String.concat " " lines in
      match binding_head text with
      | None -> []
      | Some (name, _) ->
        (* Find the first mutable-constructor token in the binding's head
           expression — past the [=], before any nested [let]/[fun] (what
           a closure allocates is per-call, not ambient). The ctor's line
           is the diagnostic anchor. [text] joins the item's lines with
           single spaces in order, so line i starts at the sum of the
           earlier lines' lengths plus i separators. *)
        let eq_global =
          match String.index_opt text '=' with Some i -> i | None -> 0
        in
        let stop_global =
          List.fold_left
            (fun acc tok ->
              List.fold_left
                (fun acc pos -> if pos > eq_global then min acc pos else acc)
                acc (token_positions text tok))
            max_int [ "let"; "fun"; "function" ]
        in
        let hit = ref None in
        let offset = ref 0 in
        List.iteri
          (fun i line ->
            List.iter
              (fun ctor ->
                List.iter
                  (fun pos ->
                    let global = !offset + pos in
                    if global > eq_global && global < stop_global && !hit = None
                    then hit := Some (start_line + i, ctor))
                  (token_positions line ctor))
              Lint_rules.mutable_ctors;
            offset := !offset + String.length line + 1)
          lines;
        (match !hit with
         | None -> []
         | Some (line, ctor) ->
           [ (name, line, ctor, find_waiver pragmas ~name ~line) ]))
    (toplevel_items src.src_blank)

let fields_of_source (src : Lint_lex.source) =
  let current_type = ref "t" in
  List.concat
    (List.mapi
       (fun i line ->
         (match token_positions line "type" with
          | pos :: _ -> (
            (* [type 'a mb = …]: skip parameters, take the constructor. *)
            let rec skip_params j =
              let n = String.length line in
              let rec sp j = if j < n && line.[j] = ' ' then sp (j + 1) else j in
              let j = sp j in
              if j < n && (line.[j] = '\'' || line.[j] = '(') then
                let rec tok j = if j < n && line.[j] <> ' ' then tok (j + 1) else j in
                skip_params (tok j)
              else j
            in
            match ident_after line (skip_params (pos + 4)) with
            | Some "nonrec" | None -> ()
            | Some name -> current_type := name)
          | [] -> ());
         List.filter_map
           (fun pos ->
             match ident_after line (pos + 7) with
             | Some field -> Some (i + 1, Printf.sprintf "%s.%s" !current_type field)
             | None -> None)
           (token_positions line "mutable"))
       (Lint_lex.lines src.src_blank))

let default_graph srcs =
  List.concat_map
    (fun (src : Lint_lex.source) ->
      let m = Lint_rules.module_of_file src.src_file in
      List.map (fun (_, dst) -> (m, dst)) (Lint_lex.module_refs src))
    srcs

let inventory ?graph srcs =
  (* Interfaces restate the implementation's fields; inventory the .ml. *)
  let mls =
    List.filter
      (fun (s : Lint_lex.source) -> not (Filename.check_suffix s.src_file ".mli"))
      srcs
  in
  let graph = match graph with Some g -> g | None -> default_graph mls in
  let roots =
    List.filter_map
      (fun (s : Lint_lex.source) ->
        if Lint_rules.machine_path s.src_file then
          Some (Lint_rules.module_of_file s.src_file)
        else None)
      mls
    @ List.filter_map
        (fun (m, _) -> if Lint_rules.rank_of m <> None then Some m else None)
        graph
  in
  let reach = reachable_modules ~graph ~roots in
  List.concat_map
    (fun (src : Lint_lex.source) ->
      let m = Lint_rules.module_of_file src.src_file in
      let reachable = Hashtbl.mem reach m in
      let bindings =
        List.map
          (fun (name, line, ctor, waived) ->
            { d_file = src.src_file; d_line = line; d_module = m; d_name = name;
              d_ctor = ctor; d_scope = Binding; d_class = Ambient_global;
              d_reachable = reachable; d_waived = waived })
          (bindings_of_source src)
      in
      let fields =
        List.map
          (fun (line, name) ->
            let cls =
              match Lint_rules.field_scope src.src_file with
              | `Machine_local -> Machine_local
              | `World_local -> World_local
            in
            { d_file = src.src_file; d_line = line; d_module = m; d_name = name;
              d_ctor = "mutable"; d_scope = Field; d_class = cls;
              d_reachable = reachable; d_waived = None })
          (fields_of_source src)
      in
      bindings @ fields)
    mls

let check ?graph srcs =
  List.filter_map
    (fun e ->
      if e.d_scope = Binding && e.d_reachable && e.d_waived = None then
        Some
          (Lint_diag.make ~file:e.d_file ~line:e.d_line ~rule:"domsafe"
             (Printf.sprintf
                "module-level mutable binding '%s' (%s) is ambient-global and \
                 reachable from per-machine code; move it into World/Node \
                 state or add `lint: allow domsafe(%s)` with the migration \
                 story"
                e.d_name e.d_ctor e.d_name))
      else None)
    (inventory ?graph srcs)

let pp_entry ppf e =
  Fmt.pf ppf "%s:%d: %s %s.%s (%s) %s%s%s" e.d_file e.d_line (scope_name e.d_scope)
    e.d_module e.d_name e.d_ctor (class_name e.d_class)
    (if e.d_reachable then " reachable" else "")
    (match e.d_waived with Some r -> " waived: " ^ r | None -> "")

let map_to_json entries =
  let one e =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"module\":\"%s\",\"name\":\"%s\",\
       \"ctor\":\"%s\",\"scope\":\"%s\",\"class\":\"%s\",\"reachable\":%b,\
       \"waived\":%s}"
      (Lint_diag.json_escape e.d_file) e.d_line
      (Lint_diag.json_escape e.d_module)
      (Lint_diag.json_escape e.d_name)
      (Lint_diag.json_escape e.d_ctor) (scope_name e.d_scope)
      (class_name e.d_class) e.d_reachable
      (match e.d_waived with
       | Some r -> "\"" ^ Lint_diag.json_escape r ^ "\""
       | None -> "null")
  in
  let entries =
    List.sort
      (fun a b ->
        match String.compare a.d_file b.d_file with
        | 0 -> compare (a.d_line, a.d_name) (b.d_line, b.d_name)
        | c -> c)
      entries
  in
  Printf.sprintf "{\"schema\":\"ntcs.lint.ownership-map/1\",\"entries\":[%s]}"
    (String.concat "," (List.map one entries))
