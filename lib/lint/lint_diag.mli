(** Linter diagnostics: one finding per source location. *)

type t = {
  file : string;  (** path as given to the linter *)
  line : int;  (** 1-based *)
  rule : string;  (** rule family: ["layering"], ["determinism"], ["pragma"] *)
  msg : string;
}

val make : file:string -> line:int -> rule:string -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule, then message. *)

val sort : t list -> t list
(** Sort and drop exact duplicates. *)

val pp : Format.formatter -> t -> unit
(** Renders as [file:line: [rule] message]. *)

val to_string : t -> string

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
(** One diagnostic as a JSON object:
    [{"file":..,"line":..,"rule":..,"msg":..}]. *)

val list_to_json : t list -> string
(** A report as a JSON array, sorted and deduplicated ({!sort}), so CI can
    diff outputs byte-for-byte. *)
