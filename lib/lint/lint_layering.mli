(** R1: layer discipline — downward-only references, IPCS backends named
    only below the ND boundary, conversion modes selected only by the IP
    layer. Suppress with [lint: allow layering(<module>) — reason]. *)

val rule : string

val check : Lint_lex.source -> Lint_diag.t list
