(* R3: runtime invariants, checked over a simulation's event trace instead
   of its code. The static rules keep the layering honest; these keep the
   protocol honest:

   - gateways never talk to each other (§4.2) — chains may pass through
     several gateways, but no chain terminates at one, and no gateway opens
     an IVC to another;
   - §6.3 recursion stays bounded — the LCM's high-water depth marks never
     exceed the configured limit;
   - no conversion between identical machine types (§5) — an IVC between
     same-order machines runs in image mode unless packing was forced. *)

type violation = { v_at_us : int; v_invariant : string; v_detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "t=%dus [%s] %s" v.v_at_us v.v_invariant v.v_detail

let tokens s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let kv_token ~key toks =
  let prefix = key ^ "=" in
  let pl = String.length prefix in
  List.find_map
    (fun t ->
      if String.length t >= pl && String.sub t 0 pl = prefix then
        Some (String.sub t pl (String.length t - pl))
      else None)
    toks

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "gw/NAME@NET" -> Some "NAME" *)
let gw_name_of_actor actor =
  if starts_with ~prefix:"gw/" actor then begin
    let rest = String.sub actor 3 (String.length actor - 3) in
    match String.index_opt rest '@' with
    | Some i -> Some (String.sub rest 0 i)
    | None -> Some rest
  end
  else None

let no_gateway_peering (entries : Ntcs_sim.Trace.entry list) =
  let gw_addrs =
    List.filter_map
      (fun (e : Ntcs_sim.Trace.entry) ->
        if e.Ntcs_sim.Trace.cat = "gw.addr" then Some e.Ntcs_sim.Trace.detail else None)
      entries
  in
  let is_gw_addr a = List.mem a gw_addrs in
  (* Gateways that demonstrably took part in a chain: they spliced or
     forwarded. A gateway-to-gateway circuit leg is only legal inside a
     chain, so its opener must appear here. *)
  let chained_gws =
    List.filter_map
      (fun (e : Ntcs_sim.Trace.entry) ->
        match e.Ntcs_sim.Trace.cat with
        | "gw.splice" | "gw.forward" -> Some e.Ntcs_sim.Trace.actor
        | _ -> None)
      entries
  in
  List.filter_map
    (fun (e : Ntcs_sim.Trace.entry) ->
      let v inv detail = Some { v_at_us = e.Ntcs_sim.Trace.at_us; v_invariant = inv; v_detail = detail } in
      match e.Ntcs_sim.Trace.cat with
      | "gw.splice" | "gw.forward" -> (
        let toks = tokens e.Ntcs_sim.Trace.detail in
        (* Only request-direction kinds prove who a chain serves. Response
           and teardown frames legitimately carry gateway addresses in dst:
           replies/accepts flow back to a gateway ComMod whenever one
           originates naming-service traffic through its own chains, and a
           cascading IVC_CLOSE is matched by label, not address (§4.3). A
           real peering violation always shows an open or payload frame
           toward the gateway. *)
        let request_kind k =
          List.mem k [ "ivc-open"; "data"; "dgram"; "hello"; "ping" ]
        in
        match (kv_token ~key:"kind" toks, kv_token ~key:"dst" toks) with
        | Some k, Some dst when (not (request_kind k)) || not (is_gw_addr dst) -> None
        | _, Some dst when is_gw_addr dst ->
          v "gateway-peering"
            (Printf.sprintf "%s: chain terminates at gateway address %s (%s)"
               e.Ntcs_sim.Trace.actor dst e.Ntcs_sim.Trace.cat)
        | _ -> None)
      | "ip.ivc_open" -> (
        (* detail: "to <addr> via <n> hop(s)" *)
        match (gw_name_of_actor e.Ntcs_sim.Trace.actor, tokens e.Ntcs_sim.Trace.detail) with
        | Some gw, "to" :: dst :: _ when is_gw_addr dst ->
          v "gateway-peering"
            (Printf.sprintf "gateway %s opened an IVC to gateway address %s" gw dst)
        | _ -> None)
      | "nd.open" -> (
        (* detail: "<addr> at <phys>". A circuit from one gateway to a
           gateway address is a chain leg only if the opener spliced. *)
        match (gw_name_of_actor e.Ntcs_sim.Trace.actor, tokens e.Ntcs_sim.Trace.detail) with
        | Some gw, addr :: _ when is_gw_addr addr && not (List.mem gw chained_gws) ->
          v "gateway-peering"
            (Printf.sprintf
               "gateway %s opened a circuit to gateway address %s outside any chain" gw addr)
        | _ -> None)
      | _ -> None)
    entries

let recursion_bounded ~limit (entries : Ntcs_sim.Trace.entry list) =
  List.filter_map
    (fun (e : Ntcs_sim.Trace.entry) ->
      if e.Ntcs_sim.Trace.cat <> "lcm.depth" then None
      else
        match int_of_string_opt (String.trim e.Ntcs_sim.Trace.detail) with
        | Some d when d > limit ->
          Some
            {
              v_at_us = e.Ntcs_sim.Trace.at_us;
              v_invariant = "recursion-depth";
              v_detail =
                Printf.sprintf "%s reached nesting depth %d > limit %d (\xc2\xa76.3)"
                  e.Ntcs_sim.Trace.actor d limit;
            }
        | _ -> None)
    entries

let no_identity_conversion (entries : Ntcs_sim.Trace.entry list) =
  List.filter_map
    (fun (e : Ntcs_sim.Trace.entry) ->
      if e.Ntcs_sim.Trace.cat <> "ip.convert" then None
      else begin
        let toks = tokens e.Ntcs_sim.Trace.detail in
        if List.mem "forced" toks then None (* deliberate ablation: exempt *)
        else
          match
            (kv_token ~key:"mode" toks, kv_token ~key:"local" toks, kv_token ~key:"remote" toks)
          with
          | Some "packed", Some l, Some r when String.equal l r ->
            Some
              {
                v_at_us = e.Ntcs_sim.Trace.at_us;
                v_invariant = "identity-conversion";
                v_detail =
                  Printf.sprintf "%s packs between identical byte orders (%s): %s"
                    e.Ntcs_sim.Trace.actor l e.Ntcs_sim.Trace.detail;
              }
          | Some "image", Some l, Some r when not (String.equal l r) ->
            Some
              {
                v_at_us = e.Ntcs_sim.Trace.at_us;
                v_invariant = "identity-conversion";
                v_detail =
                  Printf.sprintf "%s ships raw images between differing byte orders (%s/%s): %s"
                    e.Ntcs_sim.Trace.actor l r e.Ntcs_sim.Trace.detail;
              }
          | _ -> None
      end)
    entries

let check_all ?recursion_limit entries =
  no_gateway_peering entries
  @ (match recursion_limit with Some l -> recursion_bounded ~limit:l entries | None -> [])
  @ no_identity_conversion entries
