(** R3: runtime invariants checked over simulation traces.

    Consumes [Ntcs_sim.Trace.entry] lists and asserts the protocol-level
    promises the static rules cannot see: gateways never talk to each
    other (§4.2), §6.3 recursion stays within the configured bound, and no
    IVC converts between identical machine types (§5). *)

type violation = { v_at_us : int; v_invariant : string; v_detail : string }

val pp_violation : Format.formatter -> violation -> unit

val no_gateway_peering : Ntcs_sim.Trace.entry list -> violation list
(** Gateway addresses are learned from [gw.addr] events. Violations: a
    [gw.splice], or a request-direction [gw.forward] (open/payload kinds),
    whose final destination is a gateway address; an [ip.ivc_open] by a
    gateway ComMod toward a gateway address; an [nd.open] by a gateway
    toward a gateway address when the opener never spliced or forwarded
    (i.e. the leg belongs to no chain). Response and teardown kinds are
    exempt: gateways originate naming-service chains through themselves,
    so replies flow back to their addresses legitimately. *)

val recursion_bounded : limit:int -> Ntcs_sim.Trace.entry list -> violation list
(** Flags every [lcm.depth] high-water mark exceeding [limit]. *)

val no_identity_conversion : Ntcs_sim.Trace.entry list -> violation list
(** Flags [ip.convert] events that pack between identical byte orders or
    ship raw images between differing ones. Events marked [forced]
    (deliberate ablation, cf. E-series experiments) are exempt. *)

val check_all : ?recursion_limit:int -> Ntcs_sim.Trace.entry list -> violation list
(** All of the above; the recursion check only runs when a limit is given. *)
