(* A single linter finding, pinned to a source location so editors and CI
   logs can jump straight to it. *)

type t = { file : string; line : int; rule : string; msg : string }

let make ~file ~line ~rule msg = { file; line; rule; msg }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.msg b.msg
      | c -> c)
    | c -> c)
  | c -> c

let sort ds = List.sort_uniq compare ds

let pp ppf d = Format.fprintf ppf "%s:%d: [%s] %s" d.file d.line d.rule d.msg

let to_string d = Format.asprintf "%a" pp d

(* Minimal JSON string escaping: enough for paths, rule names and messages
   (which may quote source text). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
    (json_escape d.file) d.line (json_escape d.rule) (json_escape d.msg)

(* The whole report as one JSON array, sorted: stable output for CI diffing. *)
let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json (sort ds)) ^ "]"
