(* A single linter finding, pinned to a source location so editors and CI
   logs can jump straight to it. *)

type t = { file : string; line : int; rule : string; msg : string }

let make ~file ~line ~rule msg = { file; line; rule; msg }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.msg b.msg
      | c -> c)
    | c -> c)
  | c -> c

let sort ds = List.sort_uniq compare ds

let pp ppf d = Format.fprintf ppf "%s:%d: [%s] %s" d.file d.line d.rule d.msg

let to_string d = Format.asprintf "%a" pp d
