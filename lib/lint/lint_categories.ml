(* R4: trace-category discipline. Every literal category passed to a
   [~cat:"..."] argument (Trace.record and its wrappers) must appear in the
   registered manifest ([Ntcs_obs.Manifest]), which is what the exporters,
   the demo's category listing and the ntcs_stat timeline reader key off.
   A category invented at a call site would silently fall outside every
   report; fail the build instead. Suppress with
   `lint: allow category(<cat>) — reason`. *)

let rule = "category"

(* Find the literal at a [~cat:] quoted site. Offsets are shared between
   [src_text] and [src_blank] (blanking is byte-preserving), so we locate
   the pattern on the blanked text — comments and strings cannot fake a
   site, because blanking erases the quotes inside comments and the pattern
   itself inside strings — and read the literal's characters from the raw
   text between the real quotes. *)
let pattern = "~cat:\""

let line_of_offset text off =
  let n = ref 1 in
  String.iteri (fun i c -> if i < off && c = '\n' then incr n) text;
  !n

let literal_sites (src : Lint_lex.source) =
  let blank = src.Lint_lex.src_blank in
  let raw = src.Lint_lex.src_text in
  let plen = String.length pattern in
  let n = String.length blank in
  let sites = ref [] in
  let i = ref 0 in
  while !i + plen <= n do
    if String.sub blank !i plen = pattern then begin
      let start = !i + plen in
      (* The literal's contents are blanked; the closing quote survives. *)
      let close = ref start in
      while !close < n && blank.[!close] <> '"' do
        incr close
      done;
      if !close < n then
        sites :=
          (line_of_offset blank !i, String.sub raw start (!close - start)) :: !sites;
      i := !close + 1
    end
    else incr i
  done;
  List.rev !sites

let check (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  let pragmas, _ = Lint_lex.pragmas src in
  List.filter_map
    (fun (line, cat) ->
      if Ntcs_obs.Manifest.known cat
         || Lint_lex.pragma_allows pragmas ~rule ~arg:cat ~line
      then None
      else
        Some
          (Lint_diag.make ~file ~line ~rule
             (Printf.sprintf
                "%S is not in the registered category manifest (Ntcs_obs.Manifest) \
                 — add it there with one line of documentation"
                cat)))
    (literal_sites src)
  |> Lint_diag.sort
