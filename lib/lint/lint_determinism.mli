(** R2: determinism — no wall clocks, unseeded randomness, [Obj.magic], or
    hash-order iteration in protocol paths. Suppress with
    [lint: allow determinism(<pattern>) — reason]. *)

val rule : string

val check : Lint_lex.source -> Lint_diag.t list
