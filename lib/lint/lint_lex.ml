(* A deliberately small lexical front end: enough OCaml lexing to blank out
   comments, strings and character literals (preserving newlines, so every
   byte keeps its line number), to harvest `lint:` pragmas from comments,
   and to extract head-of-path module references. It is not a parser — the
   rules it feeds are lexical by design, like ocamldep's approximation. *)

type source = { src_file : string; src_text : string; src_blank : string }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Replace the contents of comments (including delimiters), string literals
   (keeping the quotes) and character literals with spaces. Newlines inside
   them survive. Nested comments nest; strings inside comments do not close
   the comment (same quirk as the real lexer). *)
let blank text =
  let n = String.length text in
  let out = Bytes.of_string text in
  let blank_at i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let blank_string_body ~blank_quotes () =
    (* !i is just past the opening quote, already blanked or kept. *)
    let fin = ref false in
    while (not !fin) && !i < n do
      match text.[!i] with
      | '\\' when !i + 1 < n ->
        blank_at !i;
        blank_at (!i + 1);
        i := !i + 2
      | '"' ->
        if blank_quotes then blank_at !i;
        incr i;
        fin := true
      | _ ->
        blank_at !i;
        incr i
    done
  in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let depth = ref 1 in
      blank_at !i;
      blank_at (!i + 1);
      i := !i + 2;
      while !depth > 0 && !i < n do
        if text.[!i] = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
          incr depth;
          blank_at !i;
          blank_at (!i + 1);
          i := !i + 2
        end
        else if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
          decr depth;
          blank_at !i;
          blank_at (!i + 1);
          i := !i + 2
        end
        else if text.[!i] = '"' then begin
          blank_at !i;
          incr i;
          blank_string_body ~blank_quotes:true ()
        end
        else begin
          blank_at !i;
          incr i
        end
      done
    end
    else if c = '"' then begin
      incr i;
      blank_string_body ~blank_quotes:false ()
    end
    else if c = '\'' then begin
      if !i + 2 < n && text.[!i + 2] = '\'' && text.[!i + 1] <> '\\' && text.[!i + 1] <> '\''
      then begin
        (* plain char literal 'x' *)
        blank_at (!i + 1);
        i := !i + 3
      end
      else if !i + 1 < n && text.[!i + 1] = '\\' then begin
        (* escaped char literal: '\n' '\\' '\'' '\123' '\x41' — the char
           right after the backslash is always part of the escape. *)
        let j = ref (!i + 3) in
        while !j < n && text.[!j] <> '\'' && text.[!j] <> '\n' do
          incr j
        done;
        if !j < n && text.[!j] = '\'' then begin
          for k = !i + 1 to !j - 1 do
            blank_at k
          done;
          i := !j + 1
        end
        else incr i
      end
      else incr i (* type variable 'a, or part of an identifier *)
    end
    else incr i
  done;
  Bytes.to_string out

let of_string ~file text = { src_file = file; src_text = text; src_blank = blank text }

let load file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~file text

let lines s = String.split_on_char '\n' s

(* Word-bounded occurrence of a dotted pattern (e.g. "Hashtbl.fold") in one
   line: the character before must not extend an identifier or path, the
   character after must not extend an identifier. *)
let line_has_token line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i > n - m then false
    else if
      String.sub line i m = pat
      && (i = 0 || not (is_ident_char line.[i - 1] || line.[i - 1] = '.'))
      && (i + m >= n || not (is_ident_char line.[i + m]))
    then true
    else go (i + 1)
  in
  m > 0 && go 0

(* --- pragmas --- *)

type pragma = {
  p_line : int;
  p_file_scope : bool;
  p_rule : string;
  p_arg : string option;
  p_reason : string;
}

let em_dash = "\xe2\x80\x94"

let starts_with ~prefix s pos =
  let pl = String.length prefix in
  pos + pl <= String.length s && String.sub s pos pl = prefix

(* Top-level comments with the line each one opens on. Same scanner shape
   as [blank]; strings (inside and outside comments) are handled so their
   contents can never look like a comment. *)
let comments text =
  let n = String.length text in
  let line = ref 1 in
  let out = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let skip_string () =
    (* !i just past the opening quote *)
    let fin = ref false in
    while (not !fin) && !i < n do
      (match text.[!i] with
       | '\\' when !i + 1 < n ->
         bump text.[!i + 1];
         i := !i + 2
       | '"' ->
         incr i;
         fin := true
       | c ->
         bump c;
         incr i)
    done
  in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let open_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if text.[!i] = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else if text.[!i] = '"' then begin
          Buffer.add_char buf '"';
          incr i;
          let start = !i in
          skip_string ();
          Buffer.add_string buf (String.sub text start (!i - start))
        end
        else begin
          bump text.[!i];
          Buffer.add_char buf text.[!i];
          incr i
        end
      done;
      out := (open_line, Buffer.contents buf) :: !out
    end
    else if c = '"' then begin
      incr i;
      skip_string ()
    end
    else if c = '\'' && !i + 2 < n && text.[!i + 2] = '\'' && text.[!i + 1] <> '\\'
            && text.[!i + 1] <> '\'' then begin
      bump text.[!i + 1];
      i := !i + 3
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

(* Parse one pragma starting right after "lint: allow[-file]". Returns
   either the pragma or a malformed-pragma message. *)
let parse_tail ~file_scope ~line ~file rest =
  let n = String.length rest in
  let pos = ref 0 in
  let skip_spaces () =
    while !pos < n && (rest.[!pos] = ' ' || rest.[!pos] = '\t') do
      incr pos
    done
  in
  skip_spaces ();
  let rule_start = !pos in
  while !pos < n && ((rest.[!pos] >= 'a' && rest.[!pos] <= 'z') || rest.[!pos] = '-') do
    incr pos
  done;
  let rule = String.sub rest rule_start (!pos - rule_start) in
  if rule = "" then
    Error (Lint_diag.make ~file ~line ~rule:"pragma" "malformed pragma: missing rule name")
  else begin
    let arg =
      if !pos < n && rest.[!pos] = '(' then begin
        let close = try String.index_from rest !pos ')' with Not_found -> -1 in
        if close < 0 then None
        else begin
          let a = String.sub rest (!pos + 1) (close - !pos - 1) in
          pos := close + 1;
          Some (String.trim a)
        end
      end
      else None
    in
    skip_spaces ();
    let sep_ok =
      if starts_with ~prefix:em_dash rest !pos then begin
        pos := !pos + String.length em_dash;
        true
      end
      else if starts_with ~prefix:"--" rest !pos then begin
        pos := !pos + 2;
        true
      end
      else if !pos < n && rest.[!pos] = '-' then begin
        incr pos;
        true
      end
      else false
    in
    if not sep_ok then
      Error
        (Lint_diag.make ~file ~line ~rule:"pragma"
           "malformed pragma: missing \xe2\x80\x94 separator before the reason")
    else begin
      let reason = String.sub rest !pos (n - !pos) in
      (* The comment may close on this line; the reason may also continue on
         the next line — only require something non-empty here. *)
      let reason =
        match String.index_opt reason '*' with
        | Some star when star + 1 < String.length reason && reason.[star + 1] = ')' ->
          String.sub reason 0 star
        | _ -> reason
      in
      if String.trim reason = "" then
        Error
          (Lint_diag.make ~file ~line ~rule:"pragma"
             "malformed pragma: missing reason after the separator")
      else
        Ok
          {
            p_line = line;
            p_file_scope = file_scope;
            p_rule = rule;
            p_arg = arg;
            p_reason = String.trim reason;
          }
    end
  end

(* A pragma is a comment whose text BEGINS with "lint:". Mentions of the
   syntax mid-comment (documentation) or in string literals are not
   pragmas and are never flagged as malformed. *)
let pragmas src =
  let ps = ref [] and bad = ref [] in
  List.iter
    (fun (lineno, body) ->
      let body = String.trim body in
      if starts_with ~prefix:"lint:" body 0 then begin
        let after_tag = String.sub body 5 (String.length body - 5) in
        let after_tag = String.trim after_tag in
        if starts_with ~prefix:"allow" after_tag 0 then begin
          let after = String.length "allow" in
          let file_scope = starts_with ~prefix:"-file" after_tag after in
          let after = if file_scope then after + 5 else after in
          let rest = String.sub after_tag after (String.length after_tag - after) in
          (* Only the first line of the comment is parsed; the reason may
             spill onto following lines. *)
          let rest = List.hd (lines rest) in
          match parse_tail ~file_scope ~line:lineno ~file:src.src_file rest with
          | Ok p -> ps := p :: !ps
          | Error d -> bad := d :: !bad
        end
        else
          bad :=
            Lint_diag.make ~file:src.src_file ~line:lineno ~rule:"pragma"
              "malformed pragma: expected `lint: allow' or `lint: allow-file'"
            :: !bad
      end)
    (comments src.src_text);
  (List.rev !ps, List.rev !bad)

let pragma_allows pragmas ~rule ~arg ~line =
  List.exists
    (fun p ->
      String.equal p.p_rule rule
      && (match p.p_arg with None -> true | Some a -> String.equal a arg)
      && (p.p_file_scope || p.p_line = line || p.p_line = line - 1))
    pragmas

(* --- module references --- *)

(* Head-of-path module references: an uppercase identifier not preceded by
   an identifier character or a dot, and either immediately followed by a
   dot ([Foo.bar]) or preceded by the [open]/[include] keyword. Works on
   the blanked text so comments and strings cannot fake references. *)
let module_refs src =
  let refs = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let n = String.length line in
      let preceded_by_keyword pos =
        (* scan back over spaces, then over the previous word *)
        let j = ref (pos - 1) in
        while !j >= 0 && (line.[!j] = ' ' || line.[!j] = '\t') do
          decr j
        done;
        let word_end = !j in
        while !j >= 0 && is_ident_char line.[!j] do
          decr j
        done;
        let w = String.sub line (!j + 1) (word_end - !j) in
        String.equal w "open" || String.equal w "include"
      in
      let i = ref 0 in
      while !i < n do
        let c = line.[!i] in
        if c >= 'A' && c <= 'Z' && (!i = 0 || (not (is_ident_char line.[!i - 1]) && line.[!i - 1] <> '.'))
        then begin
          let j = ref (!i + 1) in
          while !j < n && is_ident_char line.[!j] do
            incr j
          done;
          let name = String.sub line !i (!j - !i) in
          let is_ref = (!j < n && line.[!j] = '.') || preceded_by_keyword !i in
          if is_ref && not (List.mem (lineno, name) !refs) then refs := (lineno, name) :: !refs;
          i := !j
        end
        else incr i
      done)
    (lines src.src_blank);
  List.rev !refs
