(* R5: copy discipline. The frame pipeline is zero-copy by construction —
   received frames travel as Proto.Frame views, gateways patch header words
   in place, sends blit once into a pooled buffer. A bare Bytes.cat /
   Bytes.sub / Bytes.copy in lib/core is a payload copy sneaking back onto
   the hot path; Proto (which owns the sanctioned materialisation points)
   is exempt. Grep-grade, word-bounded, on blanked text; suppress with
   `lint: allow copies(<call>) — reason`. *)

let rule = "copies"

let check (src : Lint_lex.source) =
  let file = src.Lint_lex.src_file in
  if Lint_rules.may_copy_frames file then []
  else begin
    let pragmas, _ = Lint_lex.pragmas src in
    let diags = ref [] in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        List.iter
          (fun call ->
            if Lint_lex.line_has_token line call
               && not (Lint_lex.pragma_allows pragmas ~rule ~arg:call ~line:lineno)
            then
              diags :=
                Lint_diag.make ~file ~line:lineno ~rule
                  (Printf.sprintf
                     "%s: byte copy on a frame path — use Proto.Frame views (or the pool) \
                      and keep payloads in place"
                     call)
                :: !diags)
          Lint_rules.copy_calls)
      (Lint_lex.lines src.Lint_lex.src_blank);
    Lint_diag.sort !diags
  end
