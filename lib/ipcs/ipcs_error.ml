(* Error vocabulary of the native IPC backends. The ND-layer maps these onto
   NTCS errors; per the paper there is no recovery down here — notification
   is simply passed upward. *)

type t =
  | Refused (* nothing listening at the address *)
  | Unreachable (* no usable common network, partition, or machine down *)
  | Closed (* circuit closed by peer or underlying failure *)
  | Timeout
  | Queue_full (* MBX bounded mailbox overflow *)
  | No_such_host
  | Already_bound
  | Too_big (* exceeds the backend's message size limit *)

let to_string = function
  | Refused -> "refused"
  | Unreachable -> "unreachable"
  | Closed -> "closed"
  | Timeout -> "timeout"
  | Queue_full -> "queue-full"
  | No_such_host -> "no-such-host"
  | Already_bound -> "already-bound"
  | Too_big -> "too-big"

let pp ppf e = Fmt.string ppf (to_string e)

let equal (a : t) b = a = b
