(** Simulated Unix TCP: connection-oriented, byte-stream, host:port
    addressed.

    Faithful in the ways that matter to the ND-layer above it:
    - it transports {e bytes}, not messages — single writes larger than the
      MSS are segmented, and bytes from consecutive writes coalesce at the
      receiver, so the ND-layer must do its own framing;
    - connection setup costs a round trip and can be refused;
    - a peer machine failing or a partition surfaces only when the
      connection is next used (plus FIN on clean close). *)

open Ntcs_sim

val mss : int
(** Maximum segment size in bytes (1460). *)

type t
(** One TCP stack per simulated world. *)

type listener
type conn

val create : World.t -> t

val listen : t -> machine:Machine.t -> port:int -> (listener, Ipcs_error.t) result
val listener_addr : listener -> Phys_addr.t
val close_listener : listener -> unit

val connect :
  ?timeout_us:int ->
  ?allowed:Net.id list ->
  t ->
  machine:Machine.t ->
  dst:Phys_addr.t ->
  (conn, Ipcs_error.t) result
(** Three-way-handshake connect over the cheapest usable common network
    (restricted to [allowed] when given — a gateway's per-network ComMod
    must not sneak packets across its other interface). Blocking; call from
    inside a process. *)

val accept : ?timeout_us:int -> listener -> (conn, Ipcs_error.t) result

val send : ?off:int -> ?len:int -> conn -> Bytes.t -> (unit, Ipcs_error.t) result
(** Stream write of [data[off, off+len)] (default: the whole buffer):
    segmented at {!mss}; in-order delivery per direction. The bytes are
    copied before [send] returns, so the caller may reuse (or release) the
    buffer immediately. A refused wire (partition / peer machine down)
    breaks the connection. *)

val recv : ?timeout_us:int -> conn -> (Bytes.t, Ipcs_error.t) result
(** [read(2)] semantics: everything available, coalesced; blocks when
    nothing has arrived. [Error Closed] after FIN or breakage. *)

val close : conn -> unit
(** Graceful close; the peer sees [Closed] after draining. *)

val abort : conn -> unit
(** Abrupt teardown (process death). *)

val is_open : conn -> bool
val remote_addr : conn -> Phys_addr.t
val conn_id : conn -> int

val conn_world : conn -> World.t
(** The world this connection lives in — the STD-IF borrows its buffer
    pool for framing. *)
