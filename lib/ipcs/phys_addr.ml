(* Network-dependent physical addresses — the lowest of the paper's three
   addressing levels (§2.3). A TCP address is host:port; an MBX address is a
   mailbox pathname. The naming service stores these uninterpreted (as
   strings); only the ND-layer ever takes them apart. *)

type t =
  | Tcp of { host : string; port : int }
  | Mbx of { path : string }

let tcp ~host ~port = Tcp { host; port }
let mbx ~path = Mbx { path }

type kind = K_tcp | K_mbx

let kind = function Tcp _ -> K_tcp | Mbx _ -> K_mbx

let kind_to_string = function K_tcp -> "tcp" | K_mbx -> "mbx"

let equal a b =
  match (a, b) with
  | Tcp a, Tcp b -> String.equal a.host b.host && a.port = b.port
  | Mbx a, Mbx b -> String.equal a.path b.path
  | Tcp _, Mbx _ | Mbx _, Tcp _ -> false

let compare = Stdlib.compare

let to_string = function
  | Tcp { host; port } -> Printf.sprintf "tcp://%s:%d" host port
  | Mbx { path } -> Printf.sprintf "mbx:%s" path

(* Inverse of [to_string]; used when addresses come back out of the naming
   service, which stores them as opaque strings. *)
let of_string s =
  let tcp_prefix = "tcp://" and mbx_prefix = "mbx:" in
  let has_prefix p =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if has_prefix tcp_prefix then begin
    let rest = String.sub s 6 (String.length s - 6) in
    match String.rindex_opt rest ':' with
    | None -> None
    | Some i -> (
      let host = String.sub rest 0 i in
      let port_s = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port_s with
      | Some port when host <> "" -> Some (Tcp { host; port })
      | Some _ | None -> None)
  end
  else if has_prefix mbx_prefix then begin
    let path = String.sub s 4 (String.length s - 4) in
    if path = "" then None else Some (Mbx { path })
  end
  else None

let pp ppf a = Fmt.string ppf (to_string a)

let hash = Hashtbl.hash
