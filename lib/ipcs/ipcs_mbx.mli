(** Simulated Apollo MBX: message-oriented server mailboxes addressed by
    pathname, reachable only across an Apollo ring network.

    Contrasts with the TCP backend in every way the ND-layer can observe:
    whole messages with preserved boundaries, a hard per-message size limit
    (so the ND-layer must fragment large NTCS messages), and bounded queues
    that refuse when full (so the ND-layer must back off). *)

open Ntcs_sim

val max_message_size : int
(** Hard per-message limit in bytes; larger sends return [Too_big]. *)

val default_queue_capacity : int

type t
(** One MBX subsystem per simulated world. *)

type mailbox
type chan

val create : World.t -> t

val create_mailbox : t -> machine:Machine.t -> path:string -> (mailbox, Ipcs_error.t) result
val mailbox_addr : mailbox -> Phys_addr.t
val close_mailbox : mailbox -> unit

val open_chan :
  ?timeout_us:int ->
  ?allowed:Net.id list ->
  t ->
  machine:Machine.t ->
  dst:Phys_addr.t ->
  (chan, Ipcs_error.t) result
(** Open a channel to a server mailbox over a shared ring. Blocking. *)

val accept : ?timeout_us:int -> mailbox -> (chan, Ipcs_error.t) result

val send : ?droppable:bool -> chan -> Bytes.t -> (unit, Ipcs_error.t) result
(** Whole-message send. [Queue_full] when the peer's bounded inbox is full;
    [Too_big] above {!max_message_size}. [droppable] (default [false]) marks
    a message carrying one whole ND frame — only those are subject to the
    fault plane's drop/duplicate/reorder rules; fragments of a larger frame
    never are (losing one would wedge reassembly, not model a lost
    message). *)

val recv : ?timeout_us:int -> chan -> (Bytes.t, Ipcs_error.t) result
(** Next whole message, boundaries preserved, in order. *)

val close : chan -> unit
val abort : chan -> unit
val is_open : chan -> bool
val chan_id : chan -> int
val chan_path : chan -> string
