(** One instance of each native IPCS per simulated world, plus world-wide
    allocators for communication resources. The NTCS node bootstrap hands
    the right stack to each ND-layer based on the address kind it must
    speak. *)

type t

val create : Ntcs_sim.World.t -> t
val world : t -> Ntcs_sim.World.t
val tcp : t -> Ipcs_tcp.t
val mbx : t -> Ipcs_mbx.t

val fresh_port : t -> int
(** Allocate a TCP port no other module will be handed. *)

val fresh_mbx_path : t -> machine:Ntcs_sim.Machine.t -> hint:string -> string
(** Allocate a unique mailbox pathname on a machine. *)

val fresh_label : t -> int
(** World-unique internet-virtual-circuit leg label (a real implementation
    would negotiate per-channel label spaces; a global counter gives the
    same guarantee with none of the bookkeeping). *)

val kinds_of_machine : t -> Ntcs_sim.Machine.t -> Phys_addr.kind list
(** Which address kinds the machine can speak at all, from its network
    attachments. *)
