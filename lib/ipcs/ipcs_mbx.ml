(* Simulated Apollo MBX: message-oriented server mailboxes addressed by
   pathname, reachable only across an Apollo ring network.

   Contrasts with the TCP backend in every way the ND-layer can observe:
   messages (not bytes) with preserved boundaries, a hard per-message size
   limit (so the ND-layer must fragment large NTCS messages), and bounded
   mailbox queues that refuse when full (so the ND-layer must back off). *)

open Ntcs_sim

let max_message_size = 32_000 (* bytes; larger sends are refused *)
let default_queue_capacity = 64
let ctl_size = 48 (* channel-open / close control message cost *)
let default_open_timeout_us = 2_000_000

type t = {
  world : World.t;
  mailboxes : (string, mailbox) Hashtbl.t;
  mutable next_chan_id : int;
}

and mailbox = {
  mb_path : string;
  mb_machine : Machine.t;
  mb_stack : t;
  new_chans : chan Sched.Mailbox.mb;
  mutable mb_open : bool;
}

and chan_end = {
  ce_machine : Machine.t;
  inbox : Bytes.t Ntcs_util.Bqueue.t;
  ce_signal : unit Sched.Mailbox.mb;
  ce_fifo : int ref; (* the ring delivers a channel's messages in order *)
  mutable ce_open : bool;
  mutable ce_peer_gone : bool;
}

and chan = {
  chan_id : int;
  c_stack : t;
  c_net : Net.t;
  c_near : chan_end;
  c_far : chan_end;
  c_path : string; (* the mailbox this channel belongs to *)
}

let create world = { world; mailboxes = Hashtbl.create 32; next_chan_id = 1 }

(* The ring network shared by both machines, if any, optionally restricted
   to [allowed]. *)
let ring_between ?allowed t (a : Machine.t) (b : Machine.t) =
  World.common_nets t.world a.id b.id
  |> List.filter (fun nid ->
         match allowed with None -> true | Some nets -> List.mem nid nets)
  |> List.filter_map (fun nid ->
         let n = World.net t.world nid in
         match n.Net.kind with Net.Mbx_ring -> Some n | Net.Tcp_lan | Net.Tcp_longhaul -> None)
  |> function
  | [] -> None
  | n :: _ -> Some n

let create_mailbox t ~(machine : Machine.t) ~path =
  if Hashtbl.mem t.mailboxes path then Error Ipcs_error.Already_bound
  else begin
    let mb =
      {
        mb_path = path;
        mb_machine = machine;
        mb_stack = t;
        new_chans = Sched.Mailbox.create (World.sched t.world);
        mb_open = true;
      }
    in
    Hashtbl.replace t.mailboxes path mb;
    World.record t.world ~cat:"mbx.create" ~actor:machine.name path;
    Ok mb
  end

let mailbox_addr (mb : mailbox) = Phys_addr.mbx ~path:mb.mb_path

let close_mailbox (mb : mailbox) =
  if mb.mb_open then begin
    mb.mb_open <- false;
    Hashtbl.remove mb.mb_stack.mailboxes mb.mb_path
  end

let make_end world machine =
  {
    ce_machine = machine;
    inbox = Ntcs_util.Bqueue.create default_queue_capacity;
    ce_signal = Sched.Mailbox.create (World.sched world);
    ce_fifo = ref 0;
    ce_open = true;
    ce_peer_gone = false;
  }

let open_chan ?(timeout_us = default_open_timeout_us) ?allowed t ~(machine : Machine.t)
    ~(dst : Phys_addr.t) =
  match dst with
  | Phys_addr.Tcp _ -> Error Ipcs_error.Unreachable
  | Phys_addr.Mbx { path } -> (
    match Hashtbl.find_opt t.mailboxes path with
    | None -> (
      (* Even a missing mailbox costs a ring round trip to discover — if we
         can find the machine that would host it. When we cannot, the
         pathname itself tells us nothing (that is the point of pathnames),
         so refuse immediately. *)
      Error Ipcs_error.Refused)
    | Some mb -> (
      match ring_between ?allowed t machine mb.mb_machine with
      | None -> Error Ipcs_error.Unreachable
      | Some net ->
        let sched = World.sched t.world in
        let result = Sched.Ivar.create sched in
        let sent =
          World.transmit t.world ~net ~src:machine ~dst:mb.mb_machine ~size:ctl_size (fun () ->
              if mb.mb_open then begin
                let server_end = make_end t.world mb.mb_machine in
                let client_end = make_end t.world machine in
                let chan_id = t.next_chan_id in
                t.next_chan_id <- chan_id + 1;
                let server_chan =
                  { chan_id; c_stack = t; c_net = net; c_near = server_end;
                    c_far = client_end; c_path = path }
                in
                let client_chan =
                  { chan_id; c_stack = t; c_net = net; c_near = client_end;
                    c_far = server_end; c_path = path }
                in
                ignore
                  (World.transmit t.world ~net ~src:mb.mb_machine ~dst:machine ~size:ctl_size
                     (fun () ->
                       Sched.Mailbox.send mb.new_chans server_chan;
                       ignore (Sched.Ivar.try_fill result (Ok client_chan))))
              end
              else
                ignore
                  (World.transmit t.world ~net ~src:mb.mb_machine ~dst:machine ~size:ctl_size
                     (fun () -> ignore (Sched.Ivar.try_fill result (Error Ipcs_error.Refused)))))
        in
        if not sent then Error Ipcs_error.Unreachable
        else begin
          match Sched.Ivar.read ~timeout:timeout_us result with
          | Some r ->
            (match r with
             | Ok _ -> World.record t.world ~cat:"mbx.open" ~actor:machine.name path
             | Error _ -> ());
            r
          | None -> Error Ipcs_error.Timeout
        end))

let accept ?timeout_us (mb : mailbox) =
  if not mb.mb_open then Error Ipcs_error.Closed
  else begin
    match Sched.Mailbox.recv ?timeout:timeout_us mb.new_chans with
    | Some chan -> Ok chan
    | None -> Error Ipcs_error.Timeout
  end

let is_open (c : chan) = c.c_near.ce_open && not c.c_near.ce_peer_gone

let send ?(droppable = false) (c : chan) (data : Bytes.t) =
  (* [droppable]: the caller (the STD-IF, which owns fragmentation) marks
     ring messages that carry one whole ND frame; only those may be dropped,
     duplicated or reordered by an installed fault plane. Fragments of a
     larger frame are not droppable — losing one would wedge reassembly
     rather than model a lost message. *)
  if not c.c_near.ce_open then Error Ipcs_error.Closed
  else if c.c_near.ce_peer_gone then Error Ipcs_error.Closed
  else if Bytes.length data > max_message_size then Error Ipcs_error.Too_big
  else begin
    (* MBX refuses when the destination queue is full *right now*; we check
       at send time (the queue is also bounded at delivery, where overflow
       counts as a drop — both ends of the race are modelled). *)
    if Ntcs_util.Bqueue.is_full c.c_far.inbox then Error Ipcs_error.Queue_full
    else begin
      let sent =
        World.transmit ~fifo:c.c_far.ce_fifo ~droppable c.c_stack.world ~net:c.c_net
          ~src:c.c_near.ce_machine ~dst:c.c_far.ce_machine ~size:(Bytes.length data + 24)
          (fun () ->
            if c.c_far.ce_open then begin
              if Ntcs_util.Bqueue.push c.c_far.inbox data then
                Sched.Mailbox.send c.c_far.ce_signal ()
            end)
      in
      if sent then Ok ()
      else begin
        c.c_near.ce_peer_gone <- true;
        Error Ipcs_error.Closed
      end
    end
  end

let recv ?timeout_us (c : chan) =
  let sched = World.sched c.c_stack.world in
  let deadline = Option.map (fun d -> Sched.now sched + d) timeout_us in
  let rec loop () =
    match Ntcs_util.Bqueue.pop c.c_near.inbox with
    | Some data -> Ok data
    | None ->
      if c.c_near.ce_peer_gone then Error Ipcs_error.Closed
      else if not c.c_near.ce_open then Error Ipcs_error.Closed
      else begin
        let timeout =
          match deadline with
          | None -> None
          | Some dl ->
            let left = dl - Sched.now sched in
            if left <= 0 then Some 0 else Some left
        in
        match timeout with
        | Some 0 -> Error Ipcs_error.Timeout
        | _ -> (
          match Sched.Mailbox.recv ?timeout c.c_near.ce_signal with
          | Some () -> loop ()
          | None -> Error Ipcs_error.Timeout)
      end
  in
  loop ()

let close (c : chan) =
  if c.c_near.ce_open then begin
    c.c_near.ce_open <- false;
    ignore
      (World.transmit ~fifo:c.c_far.ce_fifo c.c_stack.world ~net:c.c_net
         ~src:c.c_near.ce_machine ~dst:c.c_far.ce_machine ~size:ctl_size (fun () ->
           c.c_far.ce_peer_gone <- true;
           Sched.Mailbox.send c.c_far.ce_signal ()))
  end

let abort (c : chan) =
  c.c_near.ce_open <- false;
  c.c_near.ce_peer_gone <- true;
  ignore
    (World.transmit ~fifo:c.c_far.ce_fifo c.c_stack.world ~net:c.c_net
       ~src:c.c_near.ce_machine ~dst:c.c_far.ce_machine ~size:ctl_size (fun () ->
         c.c_far.ce_peer_gone <- true;
         Sched.Mailbox.send c.c_far.ce_signal ()))

let chan_id (c : chan) = c.chan_id
let chan_path (c : chan) = c.c_path
