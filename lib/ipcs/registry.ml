(* One instance of each native IPCS per simulated world. The NTCS node
   bootstrap hands the right stack to each ND-layer instance based on the
   physical address kind it must speak. *)

type t = {
  world : Ntcs_sim.World.t;
  tcp : Ipcs_tcp.t;
  mbx : Ipcs_mbx.t;
  mutable next_port : int;
  mutable next_mbx_id : int;
  mutable next_label : int;
}

let create world =
  { world; tcp = Ipcs_tcp.create world; mbx = Ipcs_mbx.create world;
    next_port = 5000; next_mbx_id = 1; next_label = 1 }

(* World-unique small integers for internet-virtual-circuit leg labels (a
   real implementation would negotiate per-channel label spaces; a global
   counter gives the same guarantee with none of the bookkeeping). *)
let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

(* World-wide allocators for communication resources, so no two modules ever
   collide on a port or mailbox pathname. *)
let fresh_port t =
  let p = t.next_port in
  t.next_port <- p + 1;
  p

let fresh_mbx_path t ~(machine : Ntcs_sim.Machine.t) ~hint =
  let id = t.next_mbx_id in
  t.next_mbx_id <- id + 1;
  Printf.sprintf "//%s/node_data/mbx/%s.%d" machine.name hint id

let world t = t.world
let tcp t = t.tcp
let mbx t = t.mbx

(* Which address kinds can this machine speak at all? It must be attached to
   a network of the matching kind. *)
let kinds_of_machine t (m : Ntcs_sim.Machine.t) =
  Ntcs_sim.World.nets_of_machine t.world m.id
  |> List.map (fun nid -> (Ntcs_sim.World.net t.world nid).Ntcs_sim.Net.kind)
  |> List.map (function
       | Ntcs_sim.Net.Tcp_lan | Ntcs_sim.Net.Tcp_longhaul -> Phys_addr.K_tcp
       | Ntcs_sim.Net.Mbx_ring -> Phys_addr.K_mbx)
  |> List.sort_uniq compare
