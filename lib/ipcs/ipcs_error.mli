(** Error vocabulary of the native IPC backends. Per the paper, no recovery
    happens at this level — "notification is simply passed upward". *)

type t =
  | Refused  (** nothing listening at the address *)
  | Unreachable  (** no usable common network, partition, or machine down *)
  | Closed  (** circuit closed by peer or underlying failure *)
  | Timeout
  | Queue_full  (** MBX bounded mailbox overflow *)
  | No_such_host
  | Already_bound
  | Too_big  (** exceeds the backend's message size limit *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
