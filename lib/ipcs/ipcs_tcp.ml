(* Simulated Unix TCP: connection-oriented, byte-stream, host:port addressed.

   Faithful in the ways that matter to the NTCS ND-layer above it:
   - it transports *bytes*, not messages: single writes larger than the MSS
     are segmented, and bytes from consecutive writes coalesce at the
     receiver, so the ND-layer must do its own framing;
   - connection setup costs a round trip and can be refused;
   - failure of the peer machine or a partition surfaces only when the
     connection is next used (plus FIN when the peer closes cleanly). *)

open Ntcs_sim

let mss = 1460 (* maximum segment size, bytes *)
let syn_size = 64 (* handshake / control segment cost *)
let default_connect_timeout_us = 2_000_000

type t = {
  world : World.t;
  listeners : (string * int, listener) Hashtbl.t;
  mutable next_conn_id : int;
  mutable next_ephemeral : int;
}

and listener = {
  l_host : string;
  l_port : int;
  l_machine : Machine.t;
  l_stack : t;
  accept_q : conn Sched.Mailbox.mb;
  mutable l_open : bool;
}

and endpoint = {
  ep_machine : Machine.t;
  (* In-flight bytes that have arrived: (buffer, valid length, pooled).
     Pooled buffers are class-sized — larger than their payload — and go
     back to the world's pool when the receiver drains them. *)
  chunks : (Bytes.t * int * bool) Queue.t;
  signal : unit Sched.Mailbox.mb; (* pulsed on arrival / close *)
  arrival_fifo : int ref; (* enforces in-order delivery toward this end *)
  mutable ep_open : bool; (* our side still open *)
  mutable peer_closed : bool; (* FIN received *)
  mutable broken : bool; (* hard failure detected *)
}

and conn = {
  conn_id : int;
  net : Net.t;
  stack : t;
  near : endpoint;
  far : endpoint;
  remote : Phys_addr.t; (* peer's listening address, as seen from [near] *)
}

let create world =
  { world; listeners = Hashtbl.create 32; next_conn_id = 1; next_ephemeral = 30000 }

let find_machine_by_host t host =
  List.find_opt (fun (m : Machine.t) -> m.name = host) (World.all_machines t.world)

(* The cheapest TCP-capable network shared by both machines, optionally
   restricted to [allowed] (a gateway's per-network ComMod must not sneak
   packets across its other interface). *)
let tcp_net_between ?allowed t (a : Machine.t) (b : Machine.t) =
  World.common_nets t.world a.id b.id
  |> List.filter (fun nid ->
         match allowed with None -> true | Some nets -> List.mem nid nets)
  |> List.filter_map (fun nid ->
         let n = World.net t.world nid in
         match n.Net.kind with
         | Net.Tcp_lan | Net.Tcp_longhaul -> Some n
         | Net.Mbx_ring -> None)
  |> List.sort (fun (a : Net.t) b -> compare a.latency_base_us b.latency_base_us)
  |> function
  | [] -> None
  | n :: _ -> Some n

let listen t ~(machine : Machine.t) ~port =
  if Hashtbl.mem t.listeners (machine.name, port) then Error Ipcs_error.Already_bound
  else begin
    let l =
      {
        l_host = machine.name;
        l_port = port;
        l_machine = machine;
        l_stack = t;
        accept_q = Sched.Mailbox.create (World.sched t.world);
        l_open = true;
      }
    in
    Hashtbl.replace t.listeners (machine.name, port) l;
    World.record t.world ~cat:"tcp.listen" ~actor:machine.name (Printf.sprintf "port %d" port);
    Ok l
  end

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- p + 1;
  p

let listener_addr (l : listener) = Phys_addr.tcp ~host:l.l_host ~port:l.l_port

let close_listener (l : listener) =
  if l.l_open then begin
    l.l_open <- false;
    Hashtbl.remove l.l_stack.listeners (l.l_host, l.l_port)
  end

let make_endpoint world machine =
  {
    ep_machine = machine;
    chunks = Queue.create ();
    signal = Sched.Mailbox.create (World.sched world);
    arrival_fifo = ref 0;
    ep_open = true;
    peer_closed = false;
    broken = false;
  }

let connect ?(timeout_us = default_connect_timeout_us) ?allowed t ~(machine : Machine.t)
    ~(dst : Phys_addr.t) =
  match dst with
  | Phys_addr.Mbx _ -> Error Ipcs_error.Unreachable
  | Phys_addr.Tcp { host; port } -> (
    match find_machine_by_host t host with
    | None -> Error Ipcs_error.No_such_host
    | Some dst_machine -> (
      match tcp_net_between ?allowed t machine dst_machine with
      | None -> Error Ipcs_error.Unreachable
      | Some net ->
        let sched = World.sched t.world in
        let result = Sched.Ivar.create sched in
        (* SYN: carried to the server side, which either refuses or builds
           the connection and answers; the answer segment carries the
           decision back to us. *)
        let syn_sent =
          World.transmit t.world ~net ~src:machine ~dst:dst_machine ~size:syn_size (fun () ->
              match Hashtbl.find_opt t.listeners (host, port) with
              | Some l when l.l_open ->
                let near = make_endpoint t.world dst_machine in
                let far = make_endpoint t.world machine in
                let conn_id = t.next_conn_id in
                t.next_conn_id <- conn_id + 1;
                let server_conn =
                  { conn_id; net; stack = t; near; far;
                    remote = Phys_addr.tcp ~host:machine.name ~port:(ephemeral_port t) }
                in
                let client_conn =
                  { conn_id; net; stack = t; near = far; far = near; remote = dst }
                in
                let acked =
                  World.transmit t.world ~net ~src:dst_machine ~dst:machine ~size:syn_size
                    (fun () ->
                      Sched.Mailbox.send l.accept_q server_conn;
                      ignore (Sched.Ivar.try_fill result (Ok client_conn)))
                in
                if not acked then () (* client will time out *)
              | Some _ | None ->
                ignore
                  (World.transmit t.world ~net ~src:dst_machine ~dst:machine ~size:syn_size
                     (fun () -> ignore (Sched.Ivar.try_fill result (Error Ipcs_error.Refused)))))
        in
        if not syn_sent then Error Ipcs_error.Unreachable
        else begin
          match Sched.Ivar.read ~timeout:timeout_us result with
          | Some r ->
            (match r with
             | Ok _ ->
               World.record t.world ~cat:"tcp.connect" ~actor:machine.name
                 (Phys_addr.to_string dst)
             | Error _ -> ());
            r
          | None -> Error Ipcs_error.Timeout
        end))

let accept ?timeout_us (l : listener) =
  if not l.l_open then Error Ipcs_error.Closed
  else begin
    match Sched.Mailbox.recv ?timeout:timeout_us l.accept_q with
    | Some conn -> Ok conn
    | None -> Error Ipcs_error.Timeout
  end

let is_open (c : conn) = c.near.ep_open && not c.near.broken

(* Deliver one segment's payload into [ep]. *)
let deliver_segment ep payload len pooled =
  Queue.push (payload, len, pooled) ep.chunks;
  Sched.Mailbox.send ep.signal ()

let send ?(off = 0) ?len (c : conn) (data : Bytes.t) =
  if not c.near.ep_open then Error Ipcs_error.Closed
  else if c.near.broken then Error Ipcs_error.Closed
  else begin
    let total = match len with Some l -> l | None -> Bytes.length data - off in
    (* A write that fits one segment is one whole framed ND message on the
       wire (the STD-IF sends exactly one message per write): the fault
       plane may drop/duplicate/reorder it without desynchronising the
       receiver's framing. Segments of a larger write are not droppable —
       this simulated TCP has no retransmission, so losing one would corrupt
       the stream rather than model any real failure. *)
    let droppable = total <= mss in
    let pool = World.pool c.stack.world in
    let rec push_segments pos ok =
      if (not ok) || pos >= total then ok
      else begin
        let len = min mss (total - pos) in
        (* The in-flight copy decouples the caller's buffer (released and
           reused as soon as [send] returns) from delivery. Non-droppable
           segments are delivered at most once, so they can borrow from the
           pool and go back when drained. Droppable segments cannot: the
           fault plane's duplicate rule schedules the same delivery twice,
           so the buffer's lifetime is unbounded — they stay plain
           exact-size allocations. *)
        let pooled = not droppable in
        let seg =
          if pooled then begin
            let b = Ntcs_util.Pool.alloc pool len in
            Bytes.blit data (off + pos) b 0 len;
            b
          end
          else Bytes.sub data (off + pos) len
        in
        let sent =
          World.transmit ~fifo:c.far.arrival_fifo ~droppable c.stack.world ~net:c.net
            ~src:c.near.ep_machine ~dst:c.far.ep_machine ~size:(len + 40) (fun () ->
              if c.far.ep_open then deliver_segment c.far seg len pooled
              else if pooled then Ntcs_util.Pool.release pool seg)
        in
        push_segments (pos + len) sent
      end
    in
    if total = 0 then Ok ()
    else if push_segments 0 true then Ok ()
    else begin
      (* The wire refused (partition / peer machine down): a real TCP would
         discover this via timers; we surface it immediately as a broken
         circuit, which is all the ND-layer needs. *)
      c.near.broken <- true;
      Error Ipcs_error.Closed
    end
  end

(* Drain everything that has arrived, coalescing chunks — read(2) semantics.
   Pooled in-flight buffers go back to the freelist here, once their bytes
   are out. *)
let take_available pool ep =
  if Queue.is_empty ep.chunks then None
  else begin
    let buf = Buffer.create 1024 in
    while not (Queue.is_empty ep.chunks) do
      let b, len, pooled = Queue.pop ep.chunks in
      Buffer.add_subbytes buf b 0 len;
      if pooled then Ntcs_util.Pool.release pool b
    done;
    Some (Buffer.to_bytes buf)
  end

let recv ?timeout_us (c : conn) =
  let sched = World.sched c.stack.world in
  let deadline = Option.map (fun d -> Sched.now sched + d) timeout_us in
  let rec loop () =
    match take_available (World.pool c.stack.world) c.near with
    | Some data -> Ok data
    | None ->
      if c.near.broken then Error Ipcs_error.Closed
      else if c.near.peer_closed then Error Ipcs_error.Closed
      else if not c.near.ep_open then Error Ipcs_error.Closed
      else begin
        let timeout =
          match deadline with
          | None -> None
          | Some dl ->
            let left = dl - Sched.now sched in
            if left <= 0 then Some 0 else Some left
        in
        match timeout with
        | Some 0 -> Error Ipcs_error.Timeout
        | _ -> (
          match Sched.Mailbox.recv ?timeout c.near.signal with
          | Some () -> loop ()
          | None -> Error Ipcs_error.Timeout)
      end
  in
  loop ()

let close (c : conn) =
  if c.near.ep_open then begin
    c.near.ep_open <- false;
    (* FIN: tell the peer, if the wire still works — ordered after the data. *)
    ignore
      (World.transmit ~fifo:c.far.arrival_fifo c.stack.world ~net:c.net
         ~src:c.near.ep_machine ~dst:c.far.ep_machine ~size:syn_size (fun () ->
           c.far.peer_closed <- true;
           Sched.Mailbox.send c.far.signal ()))
  end

(* Abrupt teardown used when the owning process dies without closing. *)
let abort (c : conn) =
  c.near.ep_open <- false;
  c.near.broken <- true;
  ignore
    (World.transmit ~fifo:c.far.arrival_fifo c.stack.world ~net:c.net ~src:c.near.ep_machine
       ~dst:c.far.ep_machine ~size:syn_size (fun () ->
         c.far.broken <- true;
         Sched.Mailbox.send c.far.signal ()))

let remote_addr (c : conn) = c.remote
let conn_id (c : conn) = c.conn_id
let conn_world (c : conn) = c.stack.world
