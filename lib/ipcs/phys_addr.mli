(** Network-dependent physical addresses — the lowest of the paper's three
    addressing levels (§2.3).

    A TCP address is host:port; an MBX address is a mailbox pathname. The
    naming service stores them uninterpreted, as strings; only the ND-layer
    ever takes them apart. *)

type t =
  | Tcp of { host : string; port : int }
  | Mbx of { path : string }

val tcp : host:string -> port:int -> t
val mbx : path:string -> t

type kind = K_tcp | K_mbx

val kind : t -> kind
val kind_to_string : kind -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** ["tcp://host:port"] or ["mbx:path"] — the uninterpreted form the naming
    service carries. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on malformed input. *)

val pp : Format.formatter -> t -> unit
val hash : t -> int
