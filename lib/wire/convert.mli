(** Conversion-mode selection (§5).

    "Messages between identical machines are simply byte-copied (image mode)
    while those between incompatible machines are transmitted in a converted
    representation (packed mode). The NTCS determines the correct mode based
    on the source and destination machine types, thus avoiding needless
    conversions." The application supplies both representations lazily in a
    {!payload}; the lowest layer with visibility of the destination machine
    type forces exactly one. *)

type mode =
  | Image  (** raw byte copy of the native memory image *)
  | Packed  (** application-converted byte-stream transport format *)

val mode_to_string : mode -> string
val mode_of_int : int -> mode option
val mode_to_int : mode -> int

type machine_repr = { repr_name : string; order : Endian.order }
(** A machine's native data representation (byte order is the modelled
    difference). *)

val repr_compatible : machine_repr -> machine_repr -> bool

val choose : src:machine_repr -> dst:machine_repr -> mode
(** Image when representations agree, packed otherwise. *)

type payload
(** A message with both representations available lazily. *)

val payload : image:(unit -> Bytes.t) -> packed:(unit -> Bytes.t) -> payload
(** [image] must produce the contiguous native memory image on the source
    machine; [packed] the application's transport format. *)

val payload_packed_only : packed:(unit -> Bytes.t) -> payload
(** For data that only exists in transport format (control messages). *)

val payload_raw : Bytes.t -> payload
(** Raw bytes: both modes are the identity, safe between any machines. *)

val force : mode -> payload -> Bytes.t
(** Produce the representation for [mode] — calling the corresponding
    conversion function exactly once. *)
