(* Byte-order primitives. Only image mode (§5.1) ever uses these with a
   *machine-dependent* order; shift mode is built from shift/mask operations
   precisely so that it never needs to know the host order. *)

type order = Le | Be

let order_to_string = function Le -> "le" | Be -> "be"

let put_u16 ~order buf v =
  let v = v land 0xFFFF in
  match order with
  | Le ->
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
  | Be ->
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 ~order buf v =
  match order with
  | Le ->
    put_u16 ~order buf (v land 0xFFFF);
    put_u16 ~order buf ((v lsr 16) land 0xFFFF)
  | Be ->
    put_u16 ~order buf ((v lsr 16) land 0xFFFF);
    put_u16 ~order buf (v land 0xFFFF)

let put_u64 ~order buf v =
  match order with
  | Le ->
    put_u32 ~order buf (v land 0xFFFFFFFF);
    put_u32 ~order buf ((v lsr 32) land 0xFFFFFFFF)
  | Be ->
    put_u32 ~order buf ((v lsr 32) land 0xFFFFFFFF);
    put_u32 ~order buf (v land 0xFFFFFFFF)

let get_u8 b off = Char.code (Bytes.get b off)

let get_u16 ~order b off =
  match order with
  | Le -> get_u8 b off lor (get_u8 b (off + 1) lsl 8)
  | Be -> (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let get_u32 ~order b off =
  match order with
  | Le -> get_u16 ~order b off lor (get_u16 ~order b (off + 2) lsl 16)
  | Be -> (get_u16 ~order b off lsl 16) lor get_u16 ~order b (off + 2)

let get_u64 ~order b off =
  match order with
  | Le -> get_u32 ~order b off lor (get_u32 ~order b (off + 4) lsl 32)
  | Be -> (get_u32 ~order b off lsl 32) lor get_u32 ~order b (off + 4)

(* Sign-extend a 32-bit unsigned value into an OCaml int. *)
let sign32 v = if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let sign16 v = if v land 0x8000 <> 0 then v - (1 lsl 16) else v

let sign8 v = if v land 0x80 <> 0 then v - 256 else v
