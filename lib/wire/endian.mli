(** Byte-order primitives.

    Only image mode (§5.1 of the paper) uses these with a machine-dependent
    order; shift mode is built purely from shift/mask operations so it never
    consults a byte order. *)

type order = Le | Be

val order_to_string : order -> string

(** {1 Writers} — append to a buffer in the given order. Values are masked
    to the field width. *)

val put_u16 : order:order -> Buffer.t -> int -> unit
val put_u32 : order:order -> Buffer.t -> int -> unit
val put_u64 : order:order -> Buffer.t -> int -> unit

(** {1 Readers} — read from [bytes] at an offset. Unsigned results. *)

val get_u8 : Bytes.t -> int -> int
val get_u16 : order:order -> Bytes.t -> int -> int
val get_u32 : order:order -> Bytes.t -> int -> int
val get_u64 : order:order -> Bytes.t -> int -> int

(** {1 Sign extension} — reinterpret an unsigned field as two's-complement. *)

val sign8 : int -> int
val sign16 : int -> int
val sign32 : int -> int
