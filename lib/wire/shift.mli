(** Shift mode (§5.2): NTCS headers as sequences of four-byte integers,
    moved byte-by-byte with shift/mask operations.

    Because the byte sequence is produced by explicit shifts, no host byte
    order is ever consulted: the same code is correct on every machine, and
    it is cheap enough to use on every transfer regardless of destination.
    Words are unsigned 32-bit values carried in OCaml [int]s. *)

exception Shift_error of string

val put_word : Buffer.t -> int -> unit
(** Append one word, most significant byte first. Raises {!Shift_error} if
    the value does not fit 32 unsigned bits. *)

val get_word : Bytes.t -> int -> int
(** Read one word at a byte offset. Raises {!Shift_error} when truncated. *)

val poke_word : Bytes.t -> int -> int -> unit
(** [poke_word data off v] overwrites the word at byte offset [off] in
    place, most significant byte first. Because shift-mode byte layout is
    machine-independent (§5.2), patching a word of a received frame is
    byte-identical to re-encoding it. Raises {!Shift_error} when the value
    does not fit 32 bits or the offset is out of range. *)

val encode_words : int array -> Bytes.t
val decode_words : Bytes.t -> off:int -> count:int -> int array

val pack_bits : (int * int) list -> int
(** [pack_bits [(v1, w1); ...]] packs bit fields, most significant first,
    into one word. Widths must sum to 32 and every value must fit its
    width; {!Shift_error} otherwise. *)

val unpack_bits : int -> int list -> int list
(** Inverse of {!pack_bits} given the widths. *)
