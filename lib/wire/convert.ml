(* Conversion-mode selection (§5): "Messages between identical machines are
   simply byte-copied (image mode) while those between incompatible machines
   are transmitted in a converted representation (packed mode). The NTCS
   determines the correct mode based on the source and destination machine
   types, thus avoiding needless conversions."

   The decision lives at the lowest layer (the ND-layer calls [choose] with
   the machine type learned during the channel-open protocol); the
   application provides the pack/unpack functions. *)

type mode =
  | Image (* raw byte copy of the native memory image *)
  | Packed (* application-converted byte-stream transport format *)

let mode_to_string = function Image -> "image" | Packed -> "packed"

let mode_of_int = function 0 -> Some Image | 1 -> Some Packed | _ -> None

let mode_to_int = function Image -> 0 | Packed -> 1

(* Machine types, mirrored from the simulator but kept independent so the
   wire library stays free of simulator types. *)
type machine_repr = { repr_name : string; order : Endian.order }

let repr_compatible a b = a.order = b.order

let choose ~src ~dst = if repr_compatible src dst then Image else Packed

(* A payload as handed to the NTCS: both representations available lazily,
   the lowest layer forces exactly one. [image] must be the contiguous
   native memory image on the *source* machine; [packed] must be the
   application's transport format. *)
type payload = {
  p_image : unit -> Bytes.t;
  p_packed : unit -> Bytes.t;
}

let payload ~image ~packed = { p_image = image; p_packed = packed }

let payload_packed_only ~packed =
  { p_image = (fun () -> packed ()); p_packed = packed }

(* Raw payloads (already bytes, no structure): both modes are the identity,
   so they are safe between any machines. *)
let payload_raw data = { p_image = (fun () -> data); p_packed = (fun () -> data) }

let force mode p = match mode with Image -> p.p_image () | Packed -> p.p_packed ()
