(* Shift mode (§5.2): NTCS message headers are structs of four-byte integers
   "byte shifted sequentially into the final message, using standard high
   level shift and mask routines". Because values travel as an explicit byte
   sequence produced by shifts, no host byte order is ever consulted — the
   same code is correct on every machine, and it is cheap enough to run on
   *every* transfer regardless of destination.

   Words are unsigned 32-bit values carried in OCaml ints. *)

exception Shift_error of string

let word_mask = 0xFFFFFFFF

let check_word v =
  if v < 0 || v > word_mask then
    raise (Shift_error (Printf.sprintf "value %d does not fit an unsigned 32-bit word" v))

(* One word, most significant byte first, via shift/mask only. *)
let put_word buf v =
  check_word v;
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

(* In-place variant: overwrite one word inside an existing frame buffer.
   This is what makes shift-mode headers patchable without re-encoding —
   the byte layout is machine-independent, so rewriting word [i] of a
   received frame is exactly the write the original sender would have
   produced. *)
let poke_word data off v =
  check_word v;
  if off < 0 || off + 4 > Bytes.length data then
    raise (Shift_error (Printf.sprintf "poke at offset %d outside %d-byte buffer" off
                          (Bytes.length data)));
  Bytes.set data off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set data (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set data (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set data (off + 3) (Char.chr (v land 0xFF))

let get_word data off =
  if off + 4 > Bytes.length data then raise (Shift_error "truncated word");
  let b i = Char.code (Bytes.get data (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let encode_words words =
  let buf = Buffer.create (4 * Array.length words) in
  Array.iter (put_word buf) words;
  Buffer.to_bytes buf

let decode_words data ~off ~count =
  if off + (4 * count) > Bytes.length data then
    raise (Shift_error (Printf.sprintf "need %d words at offset %d, have %d bytes" count off
                          (Bytes.length data)));
  Array.init count (fun i -> get_word data (off + (4 * i)))

(* --- bit fields ---

   Headers divide words into bit fields as required. Fields are given as
   (value, width) pairs, most significant first; total width must be 32. *)

let pack_bits fields =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 fields in
  if total <> 32 then
    raise (Shift_error (Printf.sprintf "bit fields sum to %d, want 32" total));
  List.fold_left
    (fun acc (v, w) ->
      if w <= 0 || w > 32 then raise (Shift_error "bad field width");
      let limit = if w = 32 then word_mask else (1 lsl w) - 1 in
      if v < 0 || v > limit then
        raise (Shift_error (Printf.sprintf "value %d does not fit %d bits" v w));
      (acc lsl w) lor v)
    0 fields

let unpack_bits word widths =
  let total = List.fold_left ( + ) 0 widths in
  if total <> 32 then
    raise (Shift_error (Printf.sprintf "bit fields sum to %d, want 32" total));
  let rec go remaining = function
    | [] -> []
    | w :: ws ->
      let shift = remaining - w in
      let mask = if w = 32 then word_mask else (1 lsl w) - 1 in
      ((word lsr shift) land mask) :: go shift ws
  in
  go 32 widths
