(** Packed mode (§5.1): application-supplied conversion into a standard
    byte-stream transport format.

    The transport format is character-based — every value is a
    machine-representation-independent text token — so "standard problems
    with byte orderings do not arise, since the message is viewed as a byte
    stream". Codecs compose; {!of_layout} is the moral equivalent of
    Schlegel's generator, deriving pack/unpack directly from a message
    structure definition. *)

exception Unpack_error of string

type cursor
(** Read position inside packed data. *)

type 'a t = {
  pack : Buffer.t -> 'a -> unit;
  unpack : cursor -> 'a;
}
(** A codec: how to pack a value into the transport format and back. *)

val run_pack : 'a t -> 'a -> Bytes.t

val run_unpack : 'a t -> Bytes.t -> 'a
(** Raises {!Unpack_error} on malformed data or trailing bytes. *)

val run_unpack_result : 'a t -> Bytes.t -> ('a, string) result
(** Exception-free variant for protocol boundaries. *)

(** {1 Primitives} *)

val int : int t
val bool : bool t

val float : float t
(** Exact (hexadecimal text representation). *)

val string : string t
(** Length-prefixed; may contain any byte. *)

val bytes : Bytes.t t

(** {1 Combinators} *)

val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t

val iso : fwd:('a -> 'b) -> bwd:('b -> 'a) -> 'a t -> 'b t
(** Map a codec through an isomorphism — how record types get codecs. *)

val tagged : (string * ('a -> (Buffer.t -> unit) option) * (cursor -> 'a)) list -> 'a t
(** Tagged unions: each case is [(tag, probe, unpacker)]. [probe v] returns
    the packer when the case accepts [v]. Unknown tags raise
    {!Unpack_error}; a value no case accepts raises [Invalid_argument]. *)

val of_layout : Layout.t -> Layout.value list t
(** Generate the packed codec from a message structure definition, so one
    description yields both conversion modes. *)
