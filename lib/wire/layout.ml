(* Image mode (§5.1): a message is "a contiguous block of memory" and image
   transfer is a raw byte copy of that memory. We make this concrete by
   giving each message a *layout* — the struct definition — and rendering
   values into the native representation of a given machine (byte order).

   The crucial property reproduced here: an image encoded on one machine and
   decoded with the layout rules of an incompatible machine yields garbled
   multi-byte values. Nothing in the decode can detect this — exactly why
   the NTCS must choose the mode from the (source, destination) machine
   types rather than from the data. *)

exception Layout_error of string

type field =
  | F_i8
  | F_i16
  | F_i32
  | F_i64
  | F_char_array of int (* fixed size, NUL padded *)

type t = field list

type value =
  | V_int of int
  | V_str of string

let field_size = function
  | F_i8 -> 1
  | F_i16 -> 2
  | F_i32 -> 4
  | F_i64 -> 8
  | F_char_array n -> n

let size layout = List.fold_left (fun acc f -> acc + field_size f) 0 layout

let field_to_string = function
  | F_i8 -> "i8"
  | F_i16 -> "i16"
  | F_i32 -> "i32"
  | F_i64 -> "i64"
  | F_char_array n -> Printf.sprintf "char[%d]" n

(* Render values into the native memory image for a machine with byte order
   [order]. Raises [Layout_error] on shape mismatch. *)
let encode ~order layout values =
  let buf = Buffer.create (size layout) in
  let put field value =
    match (field, value) with
    | F_i8, V_int v -> Buffer.add_char buf (Char.chr (v land 0xFF))
    | F_i16, V_int v -> Endian.put_u16 ~order buf v
    | F_i32, V_int v -> Endian.put_u32 ~order buf v
    | F_i64, V_int v -> Endian.put_u64 ~order buf v
    | F_char_array n, V_str s ->
      if String.length s > n then
        raise (Layout_error (Printf.sprintf "string of %d exceeds char[%d]" (String.length s) n));
      Buffer.add_string buf s;
      for _ = String.length s + 1 to n do
        Buffer.add_char buf '\000'
      done
    | (F_i8 | F_i16 | F_i32 | F_i64), V_str _ ->
      raise (Layout_error "expected integer value")
    | F_char_array _, V_int _ -> raise (Layout_error "expected string value")
  in
  let rec go fields values =
    match (fields, values) with
    | [], [] -> ()
    | f :: fs, v :: vs ->
      put f v;
      go fs vs
    | [], _ :: _ -> raise (Layout_error "too many values for layout")
    | _ :: _, [] -> raise (Layout_error "too few values for layout")
  in
  go layout values;
  Buffer.to_bytes buf

(* Reinterpret a memory image according to [layout] with byte order [order].
   This is what the *destination* machine does with an image-mode message: it
   trusts the bytes. Decoding with the wrong order gives wrong values, not an
   error — by design. *)
let decode ~order layout data =
  if Bytes.length data <> size layout then
    raise
      (Layout_error
         (Printf.sprintf "image size %d does not match layout size %d" (Bytes.length data)
            (size layout)));
  let off = ref 0 in
  let take field =
    let v =
      match field with
      | F_i8 -> V_int (Endian.sign8 (Endian.get_u8 data !off))
      | F_i16 -> V_int (Endian.sign16 (Endian.get_u16 ~order data !off))
      | F_i32 -> V_int (Endian.sign32 (Endian.get_u32 ~order data !off))
      | F_i64 -> V_int (Endian.get_u64 ~order data !off)
      | F_char_array n ->
        let raw = Bytes.sub_string data !off n in
        let len = match String.index_opt raw '\000' with Some i -> i | None -> n in
        V_str (String.sub raw 0 len)
    in
    off := !off + field_size field;
    v
  in
  List.map take layout

let pp_value ppf = function
  | V_int v -> Fmt.int ppf v
  | V_str s -> Fmt.pf ppf "%S" s

let value_equal a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_str x, V_str y -> String.equal x y
  | V_int _, V_str _ | V_str _, V_int _ -> false
