(** Image mode (§5.1): message structure definitions and native memory
    images.

    A message is "a contiguous block of memory"; its [layout] is the struct
    definition. {!encode} renders values into the native representation of a
    machine with a given byte order, and {!decode} reinterprets an image —
    trusting the bytes, exactly as a C struct cast would. Decoding an image
    with the wrong order yields garbled values, not an error: that hazard is
    why the NTCS chooses the conversion mode from the machine types, and it
    is deliberately reproducible here. *)

exception Layout_error of string
(** Shape errors only (wrong value count/type, size mismatch) — never
    representation errors. *)

type field =
  | F_i8
  | F_i16
  | F_i32
  | F_i64
  | F_char_array of int  (** fixed size, NUL padded *)

type t = field list
(** A structure definition: fields in memory order, no padding. *)

type value =
  | V_int of int
  | V_str of string

val field_size : field -> int

val size : t -> int
(** Total image size in bytes. *)

val field_to_string : field -> string

val encode : order:Endian.order -> t -> value list -> Bytes.t
(** Render values into the native memory image. Raises {!Layout_error} on a
    shape mismatch. *)

val decode : order:Endian.order -> t -> Bytes.t -> value list
(** Reinterpret a memory image. Raises {!Layout_error} only when the byte
    count does not match the layout. *)

val pp_value : Format.formatter -> value -> unit
val value_equal : value -> value -> bool
