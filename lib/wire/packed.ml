(* Packed mode (§5.1): the application supplies pack/unpack functions that
   turn a message into "a standard byte-stream transport format" of its own
   choosing. The paper's implementation used a character representation built
   with machine-independent constructs (sprintf/sscanf); this module provides
   the same thing as composable codecs, plus the equivalent of Schlegel's
   generator that derives pack/unpack directly from a message structure
   definition (a {!Layout.t}).

   Transport format: each value is rendered as a decimal/escaped-text token
   terminated by '\n'. Machine representation never leaks into the bytes,
   so byte ordering problems "do not arise, since the message is viewed as a
   byte stream". *)

exception Unpack_error of string

type cursor = { data : string; mutable pos : int }

let cursor_of_bytes b = { data = Bytes.to_string b; pos = 0 }

let token cur =
  if cur.pos >= String.length cur.data then raise (Unpack_error "unexpected end of packed data");
  match String.index_from_opt cur.data cur.pos '\n' with
  | None -> raise (Unpack_error "unterminated token")
  | Some i ->
    let tok = String.sub cur.data cur.pos (i - cur.pos) in
    cur.pos <- i + 1;
    tok

let take_raw cur n =
  if cur.pos + n > String.length cur.data then raise (Unpack_error "truncated raw block");
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  (* raw blocks are '\n'-terminated for symmetry *)
  if cur.pos >= String.length cur.data || cur.data.[cur.pos] <> '\n' then
    raise (Unpack_error "missing raw block terminator");
  cur.pos <- cur.pos + 1;
  s

type 'a t = {
  pack : Buffer.t -> 'a -> unit;
  unpack : cursor -> 'a;
}

let run_pack codec v =
  let buf = Buffer.create 64 in
  codec.pack buf v;
  Buffer.to_bytes buf

let run_unpack codec data =
  let cur = cursor_of_bytes data in
  let v = codec.unpack cur in
  if cur.pos <> String.length cur.data then raise (Unpack_error "trailing bytes after message");
  v

let run_unpack_result codec data =
  match run_unpack codec data with
  | v -> Ok v
  | exception Unpack_error msg -> Error msg

(* --- primitive codecs --- *)

let int =
  {
    pack = (fun buf v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf '\n');
    unpack =
      (fun cur ->
        let tok = token cur in
        match int_of_string_opt tok with
        | Some v -> v
        | None -> raise (Unpack_error (Printf.sprintf "bad integer token %S" tok)));
  }

let bool =
  {
    pack = (fun buf v -> Buffer.add_string buf (if v then "T\n" else "F\n"));
    unpack =
      (fun cur ->
        match token cur with
        | "T" -> true
        | "F" -> false
        | tok -> raise (Unpack_error (Printf.sprintf "bad boolean token %S" tok)));
  }

let float =
  {
    pack =
      (fun buf v ->
        (* %h is exact and locale-independent — the moral equivalent of the
           paper's sprintf-based machine independence. *)
        Buffer.add_string buf (Printf.sprintf "%h\n" v));
    unpack =
      (fun cur ->
        let tok = token cur in
        match float_of_string_opt tok with
        | Some v -> v
        | None -> raise (Unpack_error (Printf.sprintf "bad float token %S" tok)));
  }

(* Strings go length-prefixed + raw so they may contain any byte. *)
let string =
  {
    pack =
      (fun buf v ->
        Buffer.add_string buf (string_of_int (String.length v));
        Buffer.add_char buf '\n';
        Buffer.add_string buf v;
        Buffer.add_char buf '\n');
    unpack =
      (fun cur ->
        let n = int.unpack cur in
        if n < 0 then raise (Unpack_error "negative string length");
        take_raw cur n);
  }

(* --- combinators --- *)

let list item =
  {
    pack =
      (fun buf vs ->
        int.pack buf (List.length vs);
        List.iter (item.pack buf) vs);
    unpack =
      (fun cur ->
        let n = int.unpack cur in
        if n < 0 then raise (Unpack_error "negative list length");
        List.init n (fun _ -> item.unpack cur));
  }

let array item =
  let as_list = list item in
  {
    pack = (fun buf vs -> as_list.pack buf (Array.to_list vs));
    unpack = (fun cur -> Array.of_list (as_list.unpack cur));
  }

let pair a b =
  {
    pack =
      (fun buf (x, y) ->
        a.pack buf x;
        b.pack buf y);
    unpack =
      (fun cur ->
        let x = a.unpack cur in
        let y = b.unpack cur in
        (x, y));
  }

let triple a b c =
  {
    pack =
      (fun buf (x, y, z) ->
        a.pack buf x;
        b.pack buf y;
        c.pack buf z);
    unpack =
      (fun cur ->
        let x = a.unpack cur in
        let y = b.unpack cur in
        let z = c.unpack cur in
        (x, y, z));
  }

let option item =
  {
    pack =
      (fun buf v ->
        match v with
        | None -> bool.pack buf false
        | Some x ->
          bool.pack buf true;
          item.pack buf x);
    unpack =
      (fun cur -> if bool.unpack cur then Some (item.unpack cur) else None);
  }

(* Map a codec through an isomorphism: how record types get their codecs. *)
let iso ~fwd ~bwd codec =
  {
    pack = (fun buf v -> codec.pack buf (bwd v));
    unpack = (fun cur -> fwd (codec.unpack cur));
  }

(* Tagged unions: each case is (tag, codec embedded via partial iso). *)
let tagged cases =
  {
    pack =
      (fun buf v ->
        let rec go = function
          | [] -> invalid_arg "Packed.tagged: no case accepts this value"
          | (tag, probe, _) :: rest -> (
            match probe v with
            | Some packer ->
              string.pack buf tag;
              packer buf
            | None -> go rest)
        in
        go cases);
    unpack =
      (fun cur ->
        let tag = string.unpack cur in
        match List.find_opt (fun (t, _, _) -> String.equal t tag) cases with
        | Some (_, _, unpacker) -> unpacker cur
        | None -> raise (Unpack_error (Printf.sprintf "unknown tag %S" tag)));
  }

let bytes =
  iso ~fwd:Bytes.of_string ~bwd:Bytes.to_string string

(* --- the structure-definition generator (Schlegel [22]) ---

   Given the same {!Layout.t} that drives image mode, generate the packed
   codec for its value list. Applications that describe their messages once
   get both modes for free. *)

let value_codec field =
  match field with
  | Layout.F_i8 | Layout.F_i16 | Layout.F_i32 | Layout.F_i64 ->
    iso
      ~fwd:(fun v -> Layout.V_int v)
      ~bwd:(function
        | Layout.V_int v -> v
        | Layout.V_str _ -> invalid_arg "packed: layout expects integer")
      int
  | Layout.F_char_array n ->
    iso
      ~fwd:(fun s -> Layout.V_str s)
      ~bwd:(function
        | Layout.V_str s when String.length s <= n -> s
        | Layout.V_str _ -> invalid_arg "packed: string exceeds char array"
        | Layout.V_int _ -> invalid_arg "packed: layout expects string")
      string

let of_layout (layout : Layout.t) : Layout.value list t =
  let codecs = List.map value_codec layout in
  {
    pack =
      (fun buf values ->
        let rec go cs vs =
          match (cs, vs) with
          | [], [] -> ()
          | c :: cs, v :: vs ->
            c.pack buf v;
            go cs vs
          | [], _ :: _ | _ :: _, [] ->
            invalid_arg "packed: value count does not match layout"
        in
        go codecs values);
    unpack = (fun cur -> List.map (fun c -> c.unpack cur) codecs);
  }
