(* Dynamic reconfiguration (§3.5, E4): transparent relocation of modules
   mid-conversation, forwarding-table behaviour, loss characteristics, and
   the boundaries the paper draws (no transaction recovery). *)

open Ntcs
open Helpers

let counter_spec tag =
  {
    Ntcs_drts.Process_ctl.sp_name = "counter";
    sp_attrs = [ ("service", "counter") ];
    sp_body =
      (fun commod ->
        let lcm = Commod.lcm commod in
        let n = ref 0 in
        let rec loop () =
          (match Lcm_layer.recv lcm with
           | Ok env when env.Lcm_layer.conv <> 0 ->
             incr n;
             ignore
               (Lcm_layer.reply lcm env (raw (Printf.sprintf "%s:%d" tag !n)))
           | Ok _ | Error _ -> ());
          loop ()
        in
        loop ());
  }

let test_transparent_relocation () =
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let managed = Ntcs_drts.Process_ctl.start pctl (counter_spec "gen0") ~machine:"sun1" in
  Cluster.settle c;
  let replies = ref [] and errors = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate once" (Ali_layer.locate commod "counter") in
         for _ = 1 to 16 do
           (match
              Ali_layer.send_sync commod ~dst:addr ~timeout_us:2_000_000 (raw "tick")
            with
            | Ok env -> replies := body env :: !replies
            | Error _ -> incr errors);
           Ntcs_sim.Sched.sleep (Node.sched node) 400_000
         done));
  (* Relocate mid-run. *)
  Ntcs_sim.Sched.after (Cluster.sched c) 3_000_000
    (fun () ->
      managed.Ntcs_drts.Process_ctl.m_spec.Ntcs_drts.Process_ctl.sp_body
      |> ignore;
      let moved = { managed with Ntcs_drts.Process_ctl.m_spec = counter_spec "gen1" } in
      ignore (Ntcs_drts.Process_ctl.relocate pctl moved ~to_machine:"sun2"));
  Cluster.settle ~dt:30_000_000 c;
  let replies = List.rev !replies in
  Alcotest.(check int) "no failed calls" 0 !errors;
  Alcotest.(check int) "all ticks answered" 16 (List.length replies);
  let gen0 = List.filter (fun r -> String.length r > 4 && String.sub r 0 4 = "gen0") replies in
  let gen1 = List.filter (fun r -> String.length r > 4 && String.sub r 0 4 = "gen1") replies in
  Alcotest.(check bool) "old generation served some" true (List.length gen0 > 0);
  Alcotest.(check bool) "new generation served some" true (List.length gen1 > 0);
  Alcotest.(check int) "exactly one relocation observed" 1
    (Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.relocations")

let test_forwarding_table_reused () =
  (* After the first fault, subsequent sends use the local forwarding table
     without asking the naming service again. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let managed = Ntcs_drts.Process_ctl.start pctl (counter_spec "g0") ~machine:"sun1" in
  Cluster.settle c;
  let fault_queries = ref (-1) in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "counter") in
         ignore (check_ok "warm" (Ali_layer.send_sync commod ~dst:addr (raw "t")));
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         (* Post-relocation: first send faults and queries; the rest must
            come straight from the forwarding table. *)
         for _ = 1 to 5 do
           ignore (Ali_layer.send_sync commod ~dst:addr ~timeout_us:2_000_000 (raw "t"))
         done;
         fault_queries := Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.fault_queries"));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000
    (fun () ->
      ignore
        (Ntcs_drts.Process_ctl.relocate pctl
           { managed with Ntcs_drts.Process_ctl.m_spec = counter_spec "g1" }
           ~to_machine:"sun2"));
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check int) "a single NSP fault query" 1 !fault_queries

let test_async_sends_may_drop_during_reconfig () =
  (* "While the NTCS can not lose messages in a static environment, they can
     be dropped due to the nature of dynamic reconfiguration." Async sends
     fired continuously across a relocation: received <= sent, and the gap
     is bounded by what was in flight around the blackout. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let received = ref 0 in
  let spec =
    {
      Ntcs_drts.Process_ctl.sp_name = "sink";
      sp_attrs = [];
      sp_body =
        (fun commod ->
          let rec loop () =
            (match Ali_layer.receive commod with Ok _ -> incr received | Error _ -> ());
            loop ()
          in
          loop ());
    }
  in
  let pctl = Ntcs_drts.Process_ctl.create c in
  let managed = Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1" in
  Cluster.settle c;
  let sent_ok = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"firehose" (fun node ->
         let commod = bind_exn node ~name:"firehose" in
         let addr = check_ok "locate" (Ali_layer.locate commod "sink") in
         for _ = 1 to 40 do
           (match Ali_layer.send commod ~dst:addr (raw "m") with
            | Ok () -> incr sent_ok
            | Error _ -> ());
           Ntcs_sim.Sched.sleep (Node.sched node) 200_000
         done));
  Ntcs_sim.Sched.after (Cluster.sched c) 3_000_000
    (fun () -> ignore (Ntcs_drts.Process_ctl.relocate pctl managed ~to_machine:"sun2"));
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check bool) "most messages arrive" true (!received > 30);
  Alcotest.(check bool) "no duplication" true (!received <= !sent_ok);
  Alcotest.(check bool) "loss is bounded" true (!sent_ok - !received <= 5)

let test_static_run_loses_nothing () =
  (* The complementary claim: without reconfiguration, nothing is lost. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let received = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"sink" (fun node ->
         let commod = bind_exn node ~name:"sink" in
         let rec loop () =
           (match Ali_layer.receive commod with Ok _ -> incr received | Error _ -> ());
           loop ()
         in
         loop ()));
  Cluster.settle c;
  let sent_ok = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"firehose" (fun node ->
         let commod = bind_exn node ~name:"firehose" in
         let addr = check_ok "locate" (Ali_layer.locate commod "sink") in
         for _ = 1 to 100 do
           match Ali_layer.send commod ~dst:addr (raw "m") with
           | Ok () -> incr sent_ok
           | Error _ -> ()
         done));
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check int) "every send delivered" !sent_ok !received;
  Alcotest.(check int) "all sends succeeded" 100 !sent_ok

let test_relocation_across_networks () =
  (* Relocate a module from the LAN onto the ring: correspondents must
     re-route through the gateway transparently. *)
  let c = two_net_cluster () in
  Cluster.settle c;
  let spec = counter_spec "lan-gen" in
  let pctl = Ntcs_drts.Process_ctl.create c in
  let managed = Ntcs_drts.Process_ctl.start pctl spec ~machine:"vax1" in
  Cluster.settle ~dt:5_000_000 c;
  let answers = ref [] in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "counter") in
         let ask label =
           match Ali_layer.send_sync commod ~dst:addr ~timeout_us:15_000_000 (raw "t") with
           | Ok env -> answers := (label, body env) :: !answers
           | Error e -> answers := (label, "ERR:" ^ Errors.to_string e) :: !answers
         in
         ask "before";
         Ntcs_sim.Sched.sleep (Node.sched node) 12_000_000;
         ask "after";
         (* One retry: crossing networks may need a second attempt while the
            replacement registers. *)
         (match List.assoc_opt "after" !answers with
          | Some s when String.length s >= 3 && String.sub s 0 3 = "ERR" ->
            answers := List.remove_assoc "after" !answers;
            Ntcs_sim.Sched.sleep (Node.sched node) 3_000_000;
            ask "after"
          | _ -> ())));
  Ntcs_sim.Sched.after (Cluster.sched c) 6_000_000
    (fun () ->
      ignore
        (Ntcs_drts.Process_ctl.relocate pctl
           { managed with Ntcs_drts.Process_ctl.m_spec = counter_spec "ring-gen" }
           ~to_machine:"ap1"));
  Cluster.settle ~dt:80_000_000 c;
  Alcotest.(check (option string)) "before relocation" (Some "lan-gen:1")
    (List.assoc_opt "before" !answers);
  Alcotest.(check (option string)) "after relocation, across the gateway" (Some "ring-gen:1")
    (List.assoc_opt "after" !answers)

let test_kill_without_replacement_errors () =
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let managed = Ntcs_drts.Process_ctl.start pctl (counter_spec "only") ~machine:"sun1" in
  Cluster.settle c;
  let outcome = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "counter") in
         ignore (check_ok "warm" (Ali_layer.send_sync commod ~dst:addr (raw "t")));
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         outcome := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:2_000_000 (raw "t"))));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000
    (fun () -> Ntcs_drts.Process_ctl.kill pctl managed);
  Cluster.settle ~dt:30_000_000 c;
  match !outcome with
  | None -> Alcotest.fail "client did not finish"
  | Some (Ok _) -> Alcotest.fail "send to a dead module with no replacement must fail"
  | Some (Error e) ->
    Alcotest.(check bool) "call simply returns with an error (§3.5)" true
      (match e with
       | Errors.Destination_dead | Errors.Circuit_failed | Errors.Timeout -> true
       | _ -> false)

let () =
  Alcotest.run "reconfiguration"
    [
      ( "relocation",
        [
          Alcotest.test_case "transparent relocation" `Quick test_transparent_relocation;
          Alcotest.test_case "forwarding table reused" `Quick test_forwarding_table_reused;
          Alcotest.test_case "relocation across networks" `Quick test_relocation_across_networks;
          Alcotest.test_case "kill without replacement" `Quick
            test_kill_without_replacement_errors;
        ] );
      ( "loss",
        [
          Alcotest.test_case "drops bounded during reconfig" `Quick
            test_async_sends_may_drop_during_reconfig;
          Alcotest.test_case "static run loses nothing" `Quick test_static_run_loses_nothing;
        ] );
    ]
