(* The golden determinism property: the same seed must reproduce the same
   simulation, byte for byte. Runs the full two-net URSA workload (deploy,
   a cross-gateway search, a document fetch) twice and compares the entire
   event trace and metrics dump; then feeds the trace to the R3 invariant
   checker, which must stay silent on a healthy run. *)

open Ntcs
open Helpers

let run_once seed =
  let c = two_net_cluster ~seed () in
  Cluster.settle c;
  let corpus = Ursa.Corpus.generate 30 in
  Ursa.Host.deploy c ~machines:[ "ap1"; "ap2" ] ~partitions:2 ~corpus
    ~search_machine:"vax1";
  Cluster.settle ~dt:5_000_000 c;
  let reply = ref None and fetched = ref None in
  ignore
    (Cluster.spawn c ~machine:"ap2" ~name:"user" (fun node ->
         let commod = bind_exn node ~name:"user" in
         let host = Ursa.Host.create commod in
         reply := Some (check_ok "search" (Ursa.Host.search ~k:5 host "gateway routing circuit"));
         fetched := Some (check_ok "fetch" (Ursa.Host.fetch host ~doc:3))));
  Cluster.settle ~dt:30_000_000 c;
  (match !reply with
   | Some r -> Alcotest.(check bool) "search found hits" true (r.Ursa.Ursa_msg.sr_hits <> [])
   | None -> Alcotest.fail "no search reply");
  (match !fetched with
   | Some _ -> ()
   | None -> Alcotest.fail "no fetch reply");
  let trace_txt = Fmt.str "%a" Ntcs_sim.Trace.dump (Ntcs_sim.World.trace (Cluster.world c)) in
  let metrics_txt = Fmt.str "%a" Ntcs_util.Metrics.pp (Cluster.metrics c) in
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  let recursion_limit = (Cluster.config c).Node.recursion_limit in
  (trace_txt, metrics_txt, entries, recursion_limit)

(* Byte equality, but fail with the first differing line instead of dumping
   two full traces at each other. *)
let check_same label a b =
  if not (String.equal a b) then begin
    let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
    let rec first_diff i = function
      | x :: xs, y :: ys -> if String.equal x y then first_diff (i + 1) (xs, ys) else (i, x, y)
      | x :: _, [] -> (i, x, "<missing>")
      | [], y :: _ -> (i, "<missing>", y)
      | [], [] -> (i, "<equal?>", "<equal?>")
    in
    let i, x, y = first_diff 1 (la, lb) in
    Alcotest.failf "%s: runs diverge at line %d:@.  run1: %s@.  run2: %s" label i x y
  end

let test_trace_identical () =
  let t1, m1, _, _ = run_once 42 in
  let t2, m2, _, _ = run_once 42 in
  check_same "trace" t1 t2;
  check_same "metrics" m1 m2;
  Alcotest.(check bool) "trace is non-trivial" true
    (List.length (String.split_on_char '\n' t1) > 50)

(* The same workload under an armed fault plane: delaying and duplicating
   links plus a crash/restart of an idle machine. Injections draw from the
   plane's seeded stream, so the whole faulty run — injections included —
   must still be byte-reproducible. *)
let run_once_faulty seed =
  let config =
    {
      Ntcs_sim.World.Config.default with
      Ntcs_sim.World.Config.seed;
      faults =
        Some
          {
            Ntcs_sim.Faults.seed = 13;
            rules =
              [
                Ntcs_sim.Faults.rule ~from_us:4_000_000 ~dup:0.1 ~delay:0.3
                  ~delay_us:25_000 ();
              ];
            schedule =
              [
                (5_000_000, Ntcs_sim.Faults.Crash "ap1");
                (7_000_000, Ntcs_sim.Faults.Restart "ap1");
              ];
          };
    }
  in
  let c = two_net_cluster ~config () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap2" ~name:"svc";
  Cluster.settle c;
  let got = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"user" (fun node ->
         let commod = bind_exn node ~name:"user" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         got := Some (check_ok "faulty echo" (Ali_layer.send_sync commod ~dst:addr (raw "f")))));
  Cluster.settle ~dt:20_000_000 c;
  (match !got with
   | Some env -> Alcotest.(check string) "echo under faults" "echo:f" (body env)
   | None -> Alcotest.fail "no faulty echo");
  let trace_txt = Fmt.str "%a" Ntcs_sim.Trace.dump (Ntcs_sim.World.trace (Cluster.world c)) in
  let metrics_txt = Fmt.str "%a" Ntcs_util.Metrics.pp (Cluster.metrics c) in
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  (trace_txt, metrics_txt, entries)

let test_faulty_trace_identical () =
  let t1, m1, entries = run_once_faulty 42 in
  let t2, m2, _ = run_once_faulty 42 in
  check_same "faulty trace" t1 t2;
  check_same "faulty metrics" m1 m2;
  let injected cat = List.exists (fun e -> e.Ntcs_sim.Trace.cat = cat) entries in
  Alcotest.(check bool) "crash fired" true (injected "fault.crash");
  Alcotest.(check bool) "restart fired" true (injected "fault.restart");
  Alcotest.(check bool) "frame faults fired" true
    (injected "fault.dup" || injected "fault.delay")

let test_seed_matters () =
  (* Sanity that the comparison has teeth: a different seed must move
     something in the virtual timeline. *)
  let t1, _, _, _ = run_once 42 in
  let t2, _, _, _ = run_once 43 in
  Alcotest.(check bool) "different seeds diverge" false (String.equal t1 t2)

let test_r3_invariants_hold () =
  let _, _, entries, recursion_limit = run_once 42 in
  Alcotest.(check bool) "trace saw the gateway work" true
    (List.exists (fun e -> e.Ntcs_sim.Trace.cat = "gw.forward") entries);
  Alcotest.(check bool) "trace saw conversion decisions" true
    (List.exists (fun e -> e.Ntcs_sim.Trace.cat = "ip.convert") entries);
  Alcotest.(check bool) "trace saw recursion depth marks" true
    (List.exists (fun e -> e.Ntcs_sim.Trace.cat = "lcm.depth") entries);
  match Lint_trace.check_all ~recursion_limit entries with
  | [] -> ()
  | vs ->
    Alcotest.failf "R3 violations on a healthy run:@.%s"
      (String.concat "\n" (List.map (Fmt.str "%a" Lint_trace.pp_violation) vs))

let () =
  Alcotest.run "determinism"
    [
      ( "golden",
        [
          Alcotest.test_case "same seed, same bytes" `Quick test_trace_identical;
          Alcotest.test_case "same seed, same faulty bytes" `Quick test_faulty_trace_identical;
          Alcotest.test_case "different seed differs" `Quick test_seed_matters;
          Alcotest.test_case "R3 invariants hold" `Quick test_r3_invariants_hold;
        ] );
    ]
