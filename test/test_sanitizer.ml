(* Pool sanitizer tests: the dynamic half of the frame-ownership
   discipline. Unit tests pin each violation class (double release,
   foreign release, stale write through a released buffer, leak at
   teardown) and the release-side guards that hold even with the
   sanitizer off. The qcheck properties drive seeded alloc/release/abuse
   interleavings against a reference model and require that the
   sanitizer detects exactly the injected violations — no false
   positives on the clean ops, no misses on the dirty ones — and that
   the same seed yields a byte-identical violation trace. *)

module Pool = Ntcs_util.Pool
module Metrics = Ntcs_util.Metrics
module Registry = Ntcs_obs.Registry

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A pool with the sanitizer armed and violations captured as text, the
   way the world wires them into its trace. *)
let armed_pool () =
  let r = Registry.create () in
  let pool = Pool.create ~registry:r () in
  let events = Buffer.create 64 in
  Pool.set_emit pool (fun ~cat ~detail ->
      Buffer.add_string events (Printf.sprintf "%s %s\n" cat detail));
  Pool.set_sanitize pool true;
  (pool, r, events)

(* --- violation classes, one by one --- *)

let test_double_release () =
  let pool, r, events = armed_pool () in
  let b = Pool.alloc pool 100 in
  Pool.release pool b;
  Pool.release pool b;
  Alcotest.(check int) "double_release counted" 1
    (Metrics.get r "pool.sanitizer.double_release");
  Alcotest.(check int) "also a bad_release" 1 (Metrics.get r "pool.bad_release");
  Alcotest.(check int) "one violation" 1 (Pool.violations pool);
  Alcotest.(check int) "gauge not double-decremented" 0 (Pool.in_use pool);
  Alcotest.(check string) "event names size and class"
    "pool.sanitizer.double_release size=128 class=128\n" (Buffer.contents events);
  (* The freelist was not aliased: the two allocs after the double
     release must be distinct buffers. *)
  let b1 = Pool.alloc pool 100 and b2 = Pool.alloc pool 100 in
  Alcotest.(check bool) "first alloc reuses" true (b1 == b);
  Alcotest.(check bool) "second alloc is fresh" false (b1 == b2)

let test_foreign_release () =
  let pool, r, _ = armed_pool () in
  (* Never handed out by this pool, in every size shape: an exact class
     size, a size no alloc ever produces, and an unpooled size. *)
  Pool.release pool (Bytes.create 256);
  Pool.release pool (Bytes.create 100);
  Pool.release pool (Bytes.create (Pool.max_pooled + 1));
  Alcotest.(check int) "all three foreign" 3
    (Metrics.get r "pool.sanitizer.foreign_release");
  Alcotest.(check int) "all three bad" 3 (Metrics.get r "pool.bad_release");
  Alcotest.(check int) "gauge untouched" 0 (Pool.in_use pool)

let test_stale_write_poison () =
  let pool, r, events = armed_pool () in
  let b = Pool.alloc pool 128 in
  Pool.release pool b;
  (* A stale view kept across the release writes through the buffer
     while it rests on the freelist... *)
  Bytes.set b 5 'x';
  (* ...and the canary check on the next hand-out catches it. *)
  let b2 = Pool.alloc pool 128 in
  Alcotest.(check bool) "same buffer re-issued" true (b == b2);
  Alcotest.(check int) "poison tripped" 1 (Metrics.get r "pool.sanitizer.poison");
  Alcotest.(check string) "event names the first stale byte"
    "pool.sanitizer.poison size=128 first_stale_byte=5\n" (Buffer.contents events);
  (* Once re-issued and released again, the buffer is re-poisoned: a
     clean cycle reports nothing further. *)
  Pool.release pool b2;
  let b3 = Pool.alloc pool 128 in
  ignore b3;
  Alcotest.(check int) "clean cycle stays clean" 1
    (Metrics.get r "pool.sanitizer.poison")

let test_leak_report () =
  let pool, r, events = armed_pool () in
  let b1 = Pool.alloc pool 64 in
  let b2 = Pool.alloc pool 70_000 in
  ignore b1;
  ignore b2;
  Alcotest.(check int) "two leaked" 2 (Pool.leak_check pool);
  Alcotest.(check int) "leak counter" 2 (Metrics.get r "pool.sanitizer.leak");
  Alcotest.(check string) "hand-out order, generation-tagged"
    "pool.sanitizer.leak gen=1 size=64\npool.sanitizer.leak gen=2 size=70000\n"
    (Buffer.contents events);
  Alcotest.(check int) "report drains the tracker" 0 (Pool.leak_check pool)

let test_arming_poisons_resting_buffers () =
  (* Buffers already resting on a freelist when the sanitizer arms
     predate the canary discipline; arming must poison them so their
     next hand-out verifies cleanly instead of tripping on old payload
     bytes. *)
  let r = Registry.create () in
  let pool = Pool.create ~registry:r () in
  let b = Pool.alloc pool 128 in
  Bytes.fill b 0 128 'q';
  Pool.release pool b;
  Pool.set_sanitize pool true;
  ignore (Pool.alloc pool 128);
  Alcotest.(check int) "no false poison hit" 0
    (Metrics.get r "pool.sanitizer.poison")

(* --- the guards that hold with the sanitizer off --- *)

let test_guards_without_sanitizer () =
  let r = Registry.create () in
  let pool = Pool.create ~registry:r () in
  let b = Pool.alloc pool 100 in
  Pool.release pool b;
  Pool.release pool b;
  Pool.release pool (Bytes.create 100);
  Alcotest.(check int) "both rejections counted" 2 (Metrics.get r "pool.bad_release");
  Alcotest.(check int) "no sanitizer violations" 0 (Pool.violations pool);
  Alcotest.(check int) "gauge still sane" 0 (Pool.in_use pool);
  let b1 = Pool.alloc pool 100 and b2 = Pool.alloc pool 100 in
  Alcotest.(check bool) "freelist reuses once" true (b1 == b);
  Alcotest.(check bool) "no aliased hand-out" false (b1 == b2)

let test_pooling_boundary () =
  (* n = max_pooled is the largest pooled request; n = max_pooled + 1
     falls through to plain allocation — and both must keep the
     in_use/high_water accounting consistent on the way out and back. *)
  let r = Registry.create () in
  let pool = Pool.create ~registry:r () in
  let at = Pool.alloc pool Pool.max_pooled in
  Alcotest.(check int) "boundary is pooled: class-sized" Pool.max_pooled
    (Bytes.length at);
  Alcotest.(check int) "boundary is a miss" 1 (Metrics.get r "pool.misses");
  Alcotest.(check int) "not unpooled" 0 (Metrics.get r "pool.unpooled");
  let over = Pool.alloc pool (Pool.max_pooled + 1) in
  Alcotest.(check int) "over the boundary: exact size" (Pool.max_pooled + 1)
    (Bytes.length over);
  Alcotest.(check int) "counted unpooled" 1 (Metrics.get r "pool.unpooled");
  Alcotest.(check int) "both hand-outs owed back" 2 (Pool.in_use pool);
  Alcotest.(check int) "high water saw both" 2
    (int_of_float (Metrics.gauge r "pool.high_water"));
  Pool.release pool over;
  Pool.release pool at;
  Alcotest.(check int) "gauge returns to zero" 0 (Pool.in_use pool);
  Alcotest.(check int) "gauge exported" 0
    (int_of_float (Metrics.gauge r "pool.in_use"));
  let at2 = Pool.alloc pool Pool.max_pooled in
  Alcotest.(check bool) "boundary buffer recycled" true (at == at2);
  Alcotest.(check int) "recycle is a hit" 1 (Metrics.get r "pool.hits")

(* --- seeded interleavings against a reference model ---

   Ops are interpreted against a real pool and, in lockstep, a model
   that mirrors the freelist discipline (per-class LIFO stacks with a
   dirty bit per resting buffer). The model predicts exactly which
   violations the sanitizer must report; anything more is a false
   positive, anything less is a miss. *)

type op =
  | Alloc of int  (* pooled size seed *)
  | Release_valid of int  (* index into the live set *)
  | Double_release of int  (* class seed: release a resting buffer again *)
  | Stale_write of int  (* class seed: write through a resting buffer *)
  | Foreign of int  (* size seed: release bytes the pool never issued *)

let op_gen =
  QCheck.Gen.(
    map
      (fun (tag, k) ->
        match tag with
        | 0 | 1 -> Alloc k
        | 2 -> Release_valid k
        | 3 -> Double_release k
        | 4 -> Stale_write k
        | _ -> Foreign k)
      (pair (int_range 0 5) (int_range 0 99_999)))

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Alloc k -> Printf.sprintf "A%d" k
             | Release_valid k -> Printf.sprintf "R%d" k
             | Double_release k -> Printf.sprintf "D%d" k
             | Stale_write k -> Printf.sprintf "W%d" k
             | Foreign k -> Printf.sprintf "F%d" k)
           ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let num_classes = 11

let class_of n =
  let rec go shift c = if 1 lsl shift >= n then c else go (shift + 1) (c + 1) in
  if n <= 64 then 0 else go 7 1

(* Interpret [ops] against a fresh armed pool. Returns the registry, the
   captured event text and the model's expected violation counts
   (poison, double, foreign, leaks). *)
let interpret ops =
  let pool, r, events = armed_pool () in
  let free = Array.make num_classes [] in (* (buffer, dirty) stacks, LIFO *)
  let live = ref [] in
  let exp_poison = ref 0 and exp_double = ref 0 and exp_foreign = ref 0 in
  (* Pick the first class with a resting buffer, scanning from a seeded
     start so both violation injectors reach every class. *)
  let resting_class k =
    let rec go i =
      if i >= num_classes then None
      else
        let c = (k + i) mod num_classes in
        match free.(c) with [] -> go (i + 1) | _ -> Some c
    in
    go 0
  in
  List.iter
    (fun op ->
      match op with
      | Alloc k ->
        let n = 1 + (k mod Pool.max_pooled) in
        let c = class_of n in
        let b = Pool.alloc pool n in
        (match free.(c) with
        | (top, dirty) :: rest ->
          assert (b == top);
          if dirty then incr exp_poison;
          free.(c) <- rest
        | [] -> ());
        live := b :: !live
      | Release_valid k ->
        if !live <> [] then begin
          let i = k mod List.length !live in
          let b = List.nth !live i in
          live := List.filteri (fun j _ -> j <> i) !live;
          Pool.release pool b;
          (* Accepted: poison-filled and resting clean. *)
          let c = class_of (Bytes.length b) in
          free.(c) <- (b, false) :: free.(c)
        end
      | Double_release k -> (
        match resting_class k with
        | None -> ()
        | Some c ->
          let b, _ = List.hd free.(c) in
          Pool.release pool b;
          incr exp_double)
      | Stale_write k -> (
        match resting_class k with
        | None -> ()
        | Some c ->
          let b, _ = List.hd free.(c) in
          Bytes.set b 0 'x';
          free.(c) <- (b, true) :: List.tl free.(c))
      | Foreign k ->
        let n = if k mod 2 = 0 then 100 else 64 lsl (k mod 4) in
        Pool.release pool (Bytes.create n);
        incr exp_foreign)
    ops;
  let exp_leaks = List.length !live in
  let leaks = Pool.leak_check pool in
  (pool, r, Buffer.contents events, (!exp_poison, !exp_double, !exp_foreign, exp_leaks, leaks))

let prop_detects_exactly =
  qtest "sanitizer detects exactly the injected violations" ops_arb (fun ops ->
      let pool, r, _, (poison, double, foreign, exp_leaks, leaks) = interpret ops in
      Metrics.get r "pool.sanitizer.poison" = poison
      && Metrics.get r "pool.sanitizer.double_release" = double
      && Metrics.get r "pool.sanitizer.foreign_release" = foreign
      && Metrics.get r "pool.sanitizer.leak" = exp_leaks
      && leaks = exp_leaks
      && Pool.violations pool = poison + double + foreign + exp_leaks)

let prop_trace_deterministic =
  qtest "same interleaving, byte-identical violation trace" ops_arb (fun ops ->
      let pool1, _, trace1, _ = interpret ops in
      let pool2, _, trace2, _ = interpret ops in
      String.equal trace1 trace2 && Pool.violations pool1 = Pool.violations pool2)

let () =
  Alcotest.run "sanitizer"
    [
      ( "violations",
        [
          Alcotest.test_case "double release" `Quick test_double_release;
          Alcotest.test_case "foreign release" `Quick test_foreign_release;
          Alcotest.test_case "stale write trips the canary" `Quick
            test_stale_write_poison;
          Alcotest.test_case "leak report at teardown" `Quick test_leak_report;
          Alcotest.test_case "arming poisons resting buffers" `Quick
            test_arming_poisons_resting_buffers;
        ] );
      ( "guards",
        [
          Alcotest.test_case "bad releases rejected unsanitized" `Quick
            test_guards_without_sanitizer;
          Alcotest.test_case "pooling boundary accounting" `Quick
            test_pooling_boundary;
        ] );
      ("interleavings", [ prop_detects_exactly; prop_trace_deterministic ]);
    ]
