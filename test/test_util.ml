(* Unit tests for ntcs_util: RNG, heap, LRU, bounded queue, stats, metrics. *)

open Ntcs_util

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_rng_between () =
  let r = Rng.create 11 in
  for _ = 1 to 200 do
    let v = Rng.between r 5 9 in
    Alcotest.(check bool) "between" true (v >= 5 && v < 9)
  done;
  Alcotest.(check int) "empty range" 5 (Rng.between r 5 5)

let test_rng_errors () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  let copy = Array.copy arr in
  Rng.shuffle r arr;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list arr) = List.sort compare (Array.to_list copy));
  Alcotest.(check bool) "actually moved" true (arr <> copy)

let test_rng_split_independent () =
  let r = Rng.create 9 in
  let a = Rng.split r in
  let va = Rng.next_int64 a and vr = Rng.next_int64 r in
  Alcotest.(check bool) "split diverges from parent" true (va <> vr)

let test_heap_sorts () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  let input = [ 5; 3; 9; 1; 7; 3; 0; -2; 8 ] in
  List.iter (Heap.push h) input;
  Alcotest.(check (list int)) "sorted drain" (List.sort compare input) (Heap.to_list h)

let test_heap_peek_pop () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Alcotest.(check (option int)) "empty pop" None (Heap.pop h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h);
  Alcotest.(check (option int)) "pop min" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop next" (Some 4) (Heap.pop h);
  Alcotest.(check bool) "now empty" true (Heap.is_empty h)

let test_heap_stability_by_seq () =
  (* The scheduler orders by (time, seq); equal times must preserve seq
     order. *)
  let h = Heap.create ~leq:(fun (t1, s1) (t2, s2) -> t1 < t2 || (t1 = t2 && s1 <= s2)) in
  List.iter (Heap.push h) [ (5, 1); (5, 0); (3, 2); (5, 2); (3, 3) ];
  Alcotest.(check (list (pair int int)))
    "time then seq" [ (3, 2); (3, 3); (5, 0); (5, 1); (5, 2) ] (Heap.to_list h)

let test_lru_basics () =
  let c = Lru.create 2 in
  Lru.set c "a" 1;
  Lru.set c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  Lru.set c "c" 3;
  (* "b" was least recently used (a was just touched) *)
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_update_refreshes () =
  let c = Lru.create 2 in
  Lru.set c "a" 1;
  Lru.set c "b" 2;
  Lru.set c "a" 10;
  Lru.set c "c" 3;
  Alcotest.(check (option int)) "updated value survives" (Some 10) (Lru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b")

let test_lru_stats_and_remove () =
  let c = Lru.create 4 in
  Lru.set c 1 "x";
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  let hits, misses = Lru.stats c in
  Alcotest.(check (pair int int)) "stats" (1, 1) (hits, misses);
  Lru.remove c 1;
  Alcotest.(check (option string)) "removed" None (Lru.find c 1);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create 0))

(* Model-based properties for predicate eviction: against the snapshot of
   the recency order, [invalidate_if] must drop exactly the selected
   entries, keep the survivors in their relative order, and leave hit/miss
   accounting alone. *)
let lru_props =
  [
    QCheck.Test.make ~name:"invalidate_if: count, survivors, recency order"
      ~count:300
      (QCheck.make QCheck.Gen.(list_size (0 -- 40) (pair (int_bound 7) (int_bound 100))))
      (fun ops ->
        let c = Lru.create 4 in
        List.iter (fun (k, v) -> Lru.set c k v) ops;
        let snapshot cache =
          let acc = ref [] in
          Lru.iter cache (fun k v -> acc := (k, v) :: !acc);
          List.rev !acc
        in
        let pred _ v = v mod 2 = 0 in
        let before = snapshot c in
        let stats_before = Lru.stats c in
        let dropped = Lru.invalidate_if c pred in
        let after = snapshot c in
        let selected, survivors = List.partition (fun (k, v) -> pred k v) before in
        dropped = List.length selected
        && after = survivors
        && Lru.length c = List.length survivors
        && Lru.stats c = stats_before
        && List.for_all (fun (k, _) -> not (Lru.mem c k)) selected);
    QCheck.Test.make ~name:"invalidate_if: false predicate is the identity"
      ~count:100
      (QCheck.make QCheck.Gen.(list_size (0 -- 20) (pair (int_bound 5) (int_bound 100))))
      (fun ops ->
        let c = Lru.create 4 in
        List.iter (fun (k, v) -> Lru.set c k v) ops;
        let len = Lru.length c in
        Lru.invalidate_if c (fun _ _ -> false) = 0 && Lru.length c = len);
  ]

let test_bqueue () =
  let q = Bqueue.create 2 in
  Alcotest.(check bool) "push 1" true (Bqueue.push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.push q 2);
  Alcotest.(check bool) "push 3 refused" false (Bqueue.push q 3);
  Alcotest.(check int) "dropped" 1 (Bqueue.dropped q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "push after pop" true (Bqueue.push q 4);
  Alcotest.(check (option int)) "peek" (Some 2) (Bqueue.peek q);
  Alcotest.(check int) "length" 2 (Bqueue.length q)

let test_stats () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min_ s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.max_ s);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p25 interp" 2. (Stats.percentile s 25.);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "mean of empty" 0. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "median of empty" 0. (Stats.median s)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.incr m "x" ~by:4;
  Metrics.incr m "y";
  Alcotest.(check int) "x" 5 (Metrics.get m "x");
  Alcotest.(check int) "y" 1 (Metrics.get m "y");
  Alcotest.(check int) "absent" 0 (Metrics.get m "z");
  let stat = Alcotest.testable (fun ppf -> function
    | `Counter n -> Fmt.pf ppf "counter %d" n
    | `Gauge g -> Fmt.pf ppf "gauge %g" g)
    (fun a b -> match (a, b) with
      | `Counter a, `Counter b -> a = b
      | `Gauge a, `Gauge b -> abs_float (a -. b) < 1e-9
      | _ -> false)
  in
  Alcotest.(check (list (pair string stat))) "alist sorted"
    [ ("x", `Counter 5); ("y", `Counter 1) ]
    (Metrics.to_alist m);
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge m "g");
  (* The long-standing to_alist/pp gap: gauges now show up alongside
     counters, merged into one name-sorted listing. *)
  Alcotest.(check (list (pair string stat))) "alist includes gauges"
    [ ("g", `Gauge 2.5); ("x", `Counter 5); ("y", `Counter 1) ]
    (Metrics.to_alist m);
  let printed = Fmt.str "%a" Metrics.pp m in
  Alcotest.(check bool) "pp includes gauges" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'g') (String.split_on_char '\n' printed));
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.get m "x")

let () =
  Alcotest.run "ntcs_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "between" `Quick test_rng_between;
          Alcotest.test_case "errors" `Quick test_rng_errors;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "stability by seq" `Quick test_heap_stability_by_seq;
        ] );
      ( "lru",
        Alcotest.test_case "basics" `Quick test_lru_basics
        :: Alcotest.test_case "update refreshes" `Quick test_lru_update_refreshes
        :: Alcotest.test_case "stats and remove" `Quick test_lru_stats_and_remove
        :: List.map QCheck_alcotest.to_alcotest lru_props );
      ("bqueue", [ Alcotest.test_case "bounded fifo" `Quick test_bqueue ]);
      ( "stats",
        [
          Alcotest.test_case "moments and percentiles" `Quick test_stats;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ("metrics", [ Alcotest.test_case "counters and gauges" `Quick test_metrics ]);
    ]
