(* Systematic failure injection: partitions mid-conversation, machine
   crashes at awkward moments, bounded-queue pressure, and the ND-layer's
   open-protocol address cache keeping cached peers reachable with the
   naming service gone (§3.3). *)

open Ntcs
open Helpers

let test_partition_breaks_then_heals () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let phase = ref [] in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         let try_send label =
           match Ali_layer.send_sync commod ~dst:addr ~timeout_us:1_000_000 (raw label) with
           | Ok _ -> phase := (label, "ok") :: !phase
           | Error e -> phase := (label, Errors.to_string e) :: !phase
         in
         try_send "before";
         Ntcs_sim.Sched.sleep (Node.sched node) 3_000_000;
         try_send "during";
         Ntcs_sim.Sched.sleep (Node.sched node) 3_000_000;
         try_send "after";
         (* The circuit broke during the partition; one more call must
            succeed after transparent re-establishment. *)
         if List.assoc "after" !phase <> "ok" then try_send "after"));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.partition c "ether");
  Ntcs_sim.Sched.after (Cluster.sched c) 5_000_000 (fun () -> Cluster.heal c "ether");
  Cluster.settle ~dt:60_000_000 c;
  Alcotest.(check (option string)) "before ok" (Some "ok") (List.assoc_opt "before" !phase);
  Alcotest.(check bool) "during fails" true (List.assoc "during" !phase <> "ok");
  Alcotest.(check (option string)) "after heals" (Some "ok") (List.assoc_opt "after" !phase)

let slow_server c =
  Cluster.spawn c ~machine:"sun1" ~name:"slow" (fun node ->
      let commod = bind_exn node ~name:"slow-svc" in
      let rec loop () =
        (match Ali_layer.receive commod with
         | Ok env when Ali_layer.expects_reply env ->
           Ntcs_sim.Sched.sleep (Node.sched node) 5_000_000;
           ignore (Ali_layer.reply commod env (raw "late"))
         | Ok _ | Error _ -> ());
        loop ()
      in
      loop ())

let run_mid_sync_failure ~inject =
  let c = lan_cluster () in
  Cluster.settle c;
  let server_pid = slow_server c in
  Cluster.settle c;
  let outcome = ref None in
  let t_start = ref 0 and t_end = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "slow-svc") in
         t_start := Node.now node;
         outcome := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:8_000_000 (raw "q"));
         t_end := Node.now node));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> inject c server_pid);
  Cluster.settle ~dt:60_000_000 c;
  (match !outcome with
   | Some (Error e) ->
     Alcotest.(check bool) "failure surfaced" true
       (match e with
        | Errors.Circuit_failed | Errors.Timeout | Errors.Destination_dead -> true
        | _ -> false)
   | Some (Ok _) -> Alcotest.fail "server died before replying; call cannot succeed"
   | None -> Alcotest.fail "client never finished");
  !t_end - !t_start

let test_process_kill_mid_sync_fails_promptly () =
  (* Killing the *process* leaves its machine up: the dying module's ND-layer
     aborts its circuits, so the blocked conversation fails on the peer-down
     notification, well before the timeout ("Module death is detected by the
     ND-layer in any connected module", §4.3). *)
  let elapsed =
    run_mid_sync_failure ~inject:(fun c pid -> Ntcs_sim.Sched.kill (Cluster.sched c) pid)
  in
  Alcotest.(check bool) "failed promptly via peer-down" true (elapsed < 6_000_000)

let test_machine_crash_mid_sync_times_out () =
  (* Crashing the whole *machine* gives the wire no chance to say goodbye:
     nothing arrives, and only the caller's timeout bounds the wait — like
     a real host losing power under a TCP connection. *)
  let elapsed = run_mid_sync_failure ~inject:(fun c _pid -> Cluster.crash c "sun1") in
  Alcotest.(check bool) "bounded by the timeout" true
    (elapsed >= 6_000_000 && elapsed <= 9_000_000)

let test_nd_cache_survives_total_ns_loss () =
  (* §3.3: the open-protocol exchange caches peer addresses in the ND-layer.
     With NSP caching disabled entirely (TTL 0) and the name server gone, a
     once-contacted peer is still reachable for NEW circuits. *)
  let c = lan_cluster ~tweak:(fun cfg -> { cfg with Node.ns_cache_ttl_us = 0 }) () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let late_call = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         ignore (check_ok "warm" (Ali_layer.send_sync commod ~dst:addr (raw "warm")));
         (* Drop the circuit so the next send must re-plan from scratch. *)
         Ip_layer.forget_peer (Commod.ip commod) addr;
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         late_call := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:3_000_000 (raw "cold"))));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.crash c "vax1");
  Cluster.settle ~dt:30_000_000 c;
  match !late_call with
  | Some (Ok env) -> Alcotest.(check string) "reached via ND cache" "echo:cold" (body env)
  | Some (Error e) -> Alcotest.failf "ND-cached reopen failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "client never finished"

let test_sequence_audit_clean_in_static_run () =
  let c = lan_cluster () in
  Cluster.settle c;
  let hits = ref 0 in
  spawn_echo c ~machine:"sun1" ~name:"svc" ~hits;
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         for _ = 1 to 50 do
           ignore (Ali_layer.send commod ~dst:addr (raw "m"))
         done;
         for _ = 1 to 10 do
           ignore (Ali_layer.send_sync commod ~dst:addr (raw "s"))
         done));
  Cluster.settle ~dt:30_000_000 c;
  let m = Cluster.metrics c in
  Alcotest.(check int) "everything arrived" 60 !hits;
  Alcotest.(check int) "no regressions/duplicates" 0
    (Ntcs_util.Metrics.get m "lcm.seq_regressions")

let test_gateway_queue_pressure () =
  (* Saturate a gateway with large messages both ways; everything must still
     arrive (TCP framing + MBX fragmentation + splice forwarding). *)
  let c = two_net_cluster () in
  Cluster.settle c;
  let received_bytes = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"ap1" ~name:"sink" (fun node ->
         let commod = bind_exn node ~name:"sink" in
         let rec loop () =
           (match Ali_layer.receive commod with
            | Ok env -> received_bytes := !received_bytes + Bytes.length env.Ali_layer.data
            | Error _ -> ());
           loop ()
         in
         loop ()));
  Cluster.settle ~dt:5_000_000 c;
  let sent = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"pump" (fun node ->
         let commod = bind_exn node ~name:"pump" in
         let addr = check_ok "locate" (Ali_layer.locate commod "sink") in
         let chunk = Bytes.make 48_000 'q' in
         for _ = 1 to 12 do
           (match Ali_layer.send commod ~dst:addr (raw_bytes chunk) with
            | Ok () -> sent := !sent + Bytes.length chunk
            | Error _ -> ());
           Ntcs_sim.Sched.sleep (Node.sched node) 300_000
         done));
  Cluster.settle ~dt:120_000_000 c;
  Alcotest.(check int) "all bytes crossed the bridge" !sent !received_bytes;
  Alcotest.(check bool) "volume was real" true (!sent >= 12 * 48_000)

let test_double_crash_and_replacement () =
  (* Two generations die in sequence; a third one picks the traffic up. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let spec tag =
    {
      Ntcs_drts.Process_ctl.sp_name = "phoenix";
      sp_attrs = [ ("service", "phoenix") ];
      sp_body =
        (fun commod ->
          let rec loop () =
            (match Ali_layer.receive commod with
             | Ok env when Ali_layer.expects_reply env ->
               ignore (Ali_layer.reply commod env (raw tag))
             | Ok _ | Error _ -> ());
            loop ()
          in
          loop ());
    }
  in
  let managed = Ntcs_drts.Process_ctl.start pctl (spec "gen0") ~machine:"sun1" in
  Cluster.settle c;
  let answers = ref [] in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "phoenix") in
         for _ = 1 to 3 do
           (match
              Ali_layer.send_sync commod ~dst:addr ~timeout_us:4_000_000 (raw "who?")
            with
            | Ok env -> answers := body env :: !answers
            | Error _ -> ());
           Ntcs_sim.Sched.sleep (Node.sched node) 5_000_000
         done));
  Ntcs_sim.Sched.after (Cluster.sched c) 3_000_000 (fun () ->
      ignore
        (Ntcs_drts.Process_ctl.relocate pctl
           { managed with Ntcs_drts.Process_ctl.m_spec = spec "gen1" }
           ~to_machine:"sun2"));
  Ntcs_sim.Sched.after (Cluster.sched c) 8_000_000 (fun () ->
      match Ntcs_drts.Process_ctl.find pctl "phoenix" with
      | Some m ->
        ignore
          (Ntcs_drts.Process_ctl.relocate pctl
             { m with Ntcs_drts.Process_ctl.m_spec = spec "gen2" }
             ~to_machine:"sun1")
      | None -> ());
  Cluster.settle ~dt:60_000_000 c;
  let answers = List.rev !answers in
  Alcotest.(check int) "three answers" 3 (List.length answers);
  Alcotest.(check bool) "three distinct generations served" true
    (List.sort_uniq compare answers |> List.length >= 2)

let test_dgram_not_relocated () =
  (* The connectionless protocol has no recovery (§2.2): datagrams to a
     relocated module fail rather than being transparently re-routed. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let spec =
    {
      Ntcs_drts.Process_ctl.sp_name = "target";
      sp_attrs = [];
      sp_body =
        (fun commod ->
          let rec loop () =
            ignore (Ali_layer.receive commod);
            loop ()
          in
          loop ());
    }
  in
  let managed = Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1" in
  Cluster.settle c;
  let dgram_result = ref None and data_result = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "target") in
         ignore (Ali_layer.send commod ~dst:addr (raw "warm"));
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         dgram_result := Some (Ali_layer.send_dgram commod ~dst:addr (raw "dgram"));
         data_result := Some (Ali_layer.send commod ~dst:addr (raw "data"))));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () ->
      ignore (Ntcs_drts.Process_ctl.relocate pctl managed ~to_machine:"sun2"));
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check bool) "dgram fails: no recovery" true
    (match !dgram_result with Some (Error _) -> true | _ -> false);
  Alcotest.(check bool) "data send recovers transparently" true
    (match !data_result with Some (Ok ()) -> true | _ -> false)

let test_late_reply_after_tadd_purge () =
  (* A reply addressed to a module's old TAdd still lands after the purge
     (the alias forwarding of §3.4 keeps boundary-condition replies alive). *)
  let c = lan_cluster () in
  Cluster.settle c;
  (* A server that delays its reply long enough for the client's TAdd to be
     purged from the server's tables in between. *)
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"slowpoke" (fun node ->
         let commod = bind_exn node ~name:"slowpoke" in
         match Ali_layer.receive commod with
         | Ok env when Ali_layer.expects_reply env ->
           Ntcs_sim.Sched.sleep (Node.sched node) 1_000_000;
           (match Ali_layer.reply commod env (raw "late-but-delivered") with
            | Ok () -> ()
            | Error e -> Alcotest.failf "late reply failed: %s" (Errors.to_string e))
         | Ok _ | Error _ -> ()));
  Cluster.settle c;
  let got = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"caller" (fun node ->
         let commod = bind_exn node ~name:"caller" in
         let addr = check_ok "locate" (Ali_layer.locate commod "slowpoke") in
         got := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:5_000_000 (raw "q"))));
  Cluster.settle ~dt:30_000_000 c;
  match !got with
  | Some (Ok env) -> Alcotest.(check string) "reply arrived" "late-but-delivered" (body env)
  | Some (Error e) -> Alcotest.failf "sync failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "caller never finished"

let test_unreachable_island () =
  (* A module on a network no gateway serves is honestly unreachable. *)
  let c =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("island", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("dual", Ntcs_sim.Machine.Sun3, [ "ether"; "island" ]);
          ("marooned", Ntcs_sim.Machine.Sun3, [ "island" ]);
        ]
      ~ns:"vax1" ()
  in
  Cluster.settle c;
  (* The island module can register: its machine shares "island" with dual,
     but dual runs NO gateway — so vax1 cannot reach it, and in fact the
     island module cannot even reach the name server. *)
  let island_bind = ref None in
  ignore
    (Cluster.spawn c ~machine:"marooned" ~name:"islander" (fun node ->
         island_bind := Some (Commod.bind node ~name:"islander")));
  Cluster.settle ~dt:30_000_000 c;
  match !island_bind with
  | Some (Error (Errors.Name_service_unavailable | Errors.Unreachable)) -> ()
  | Some (Error e) -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)
  | Some (Ok _) -> Alcotest.fail "registration cannot cross an unbridged network"
  | None -> Alcotest.fail "islander never ran"

let () =
  Alcotest.run "failures"
    [
      ( "network",
        [
          Alcotest.test_case "partition then heal" `Quick test_partition_breaks_then_heals;
          Alcotest.test_case "process kill mid-sync" `Quick
            test_process_kill_mid_sync_fails_promptly;
          Alcotest.test_case "machine crash mid-sync" `Quick
            test_machine_crash_mid_sync_times_out;
          Alcotest.test_case "gateway queue pressure" `Quick test_gateway_queue_pressure;
        ] );
      ( "caching",
        [
          Alcotest.test_case "nd cache survives NS loss" `Quick
            test_nd_cache_survives_total_ns_loss;
          Alcotest.test_case "sequence audit clean" `Quick test_sequence_audit_clean_in_static_run;
        ] );
      ( "generations",
        [ Alcotest.test_case "double crash and replacement" `Quick
            test_double_crash_and_replacement ] );
      ( "boundaries",
        [
          Alcotest.test_case "dgram not relocated" `Quick test_dgram_not_relocated;
          Alcotest.test_case "late reply after TAdd purge" `Quick
            test_late_reply_after_tadd_purge;
          Alcotest.test_case "unreachable island" `Quick test_unreachable_island;
        ] );
    ]
