(* Tests for NTCS addressing (UAdds/TAdds) and the nucleus wire protocol. *)

open Ntcs
open Ntcs_wire

let addr = Alcotest.testable Addr.pp Addr.equal

let test_addr_words_roundtrip () =
  let cases =
    [
      Addr.unique ~server_id:0 ~value:0;
      Addr.unique ~server_id:3 ~value:12345;
      Addr.unique ~server_id:0x3FFFFFFF ~value:0xFFFFFFFF;
      Addr.temporary ~assigner:1 ~value:1;
      Addr.temporary ~assigner:0x3FFFFFFF ~value:77;
    ]
  in
  List.iter
    (fun a ->
      let w = Addr.to_words a in
      Alcotest.check addr "roundtrip" a (Addr.of_words w.(0) w.(1)))
    cases

let test_addr_kinds () =
  Alcotest.(check bool) "unique" true (Addr.is_unique (Addr.unique ~server_id:1 ~value:2));
  Alcotest.(check bool) "temp" true (Addr.is_temporary (Addr.temporary ~assigner:1 ~value:2));
  Alcotest.(check string) "unique str" "U1.2" (Addr.to_string (Addr.unique ~server_id:1 ~value:2));
  Alcotest.(check string) "temp str" "T1.2"
    (Addr.to_string (Addr.temporary ~assigner:1 ~value:2));
  Alcotest.check_raises "server id range" (Invalid_argument "Addr.unique: bad server id")
    (fun () -> ignore (Addr.unique ~server_id:(-1) ~value:0))

let test_tadd_gen_unique () =
  let g = Addr.Tadd_gen.create ~assigner:9 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 100 do
    let a = Addr.Tadd_gen.fresh g in
    Alcotest.(check bool) "temporary" true (Addr.is_temporary a);
    Alcotest.(check bool) "locally unique" false (Hashtbl.mem seen a);
    Hashtbl.replace seen a ()
  done

let test_header_roundtrip () =
  let h =
    Proto.make_header ~kind:Proto.Data
      ~src:(Addr.unique ~server_id:1 ~value:10)
      ~dst:(Addr.temporary ~assigner:44 ~value:3)
      ~mode:Convert.Image ~src_order:Endian.Le ~hops:3 ~seq:99 ~conv:7 ~app_tag:1234 ~ivc:55
      ~payload_len:0 ()
  in
  let payload = Bytes.of_string "abcdef" in
  let frame = Proto.encode_frame h payload in
  let h', payload' = Proto.decode_frame frame in
  Alcotest.(check string) "payload" "abcdef" (Bytes.to_string payload');
  Alcotest.check addr "src" h.Proto.src h'.Proto.src;
  Alcotest.check addr "dst" h.Proto.dst h'.Proto.dst;
  Alcotest.(check bool) "kind" true (h'.Proto.kind = Proto.Data);
  Alcotest.(check bool) "mode" true (h'.Proto.mode = Convert.Image);
  Alcotest.(check bool) "order" true (h'.Proto.src_order = Endian.Le);
  Alcotest.(check int) "hops" 3 h'.Proto.hops;
  Alcotest.(check int) "seq" 99 h'.Proto.seq;
  Alcotest.(check int) "conv" 7 h'.Proto.conv;
  Alcotest.(check int) "app_tag" 1234 h'.Proto.app_tag;
  Alcotest.(check int) "ivc" 55 h'.Proto.ivc;
  Alcotest.(check int) "payload_len" 6 h'.Proto.payload_len

let test_all_kinds_roundtrip () =
  List.iter
    (fun kind ->
      let h =
        Proto.make_header ~kind
          ~src:(Addr.unique ~server_id:0 ~value:1)
          ~dst:(Addr.unique ~server_id:0 ~value:2)
          ~payload_len:0 ()
      in
      let h', _ = Proto.decode_frame (Proto.encode_frame h Bytes.empty) in
      Alcotest.(check string) "kind" (Proto.kind_to_string kind)
        (Proto.kind_to_string h'.Proto.kind))
    [ Proto.Data; Proto.Dgram; Proto.Reply; Proto.Hello; Proto.Hello_ack; Proto.Ivc_open;
      Proto.Ivc_accept; Proto.Ivc_reject; Proto.Ivc_close; Proto.Ping; Proto.Pong ]

let test_header_rejects_garbage () =
  Alcotest.(check bool) "short" true
    (match Proto.decode_header (Bytes.create 4) with
     | exception Proto.Bad_header _ -> true
     | _ -> false);
  let h =
    Proto.make_header ~kind:Proto.Data
      ~src:(Addr.unique ~server_id:0 ~value:1)
      ~dst:(Addr.unique ~server_id:0 ~value:2)
      ~payload_len:0 ()
  in
  let frame = Proto.encode_frame h (Bytes.of_string "xy") in
  (* Corrupt the magic. *)
  Bytes.set frame 0 '\xFF';
  Alcotest.(check bool) "bad magic" true
    (match Proto.decode_frame frame with exception Proto.Bad_header _ -> true | _ -> false);
  (* Length mismatch. *)
  let frame = Proto.encode_frame h (Bytes.of_string "xy") in
  Alcotest.(check bool) "length mismatch" true
    (match Proto.decode_frame (Bytes.sub frame 0 (Bytes.length frame - 1)) with
     | exception Proto.Bad_header _ -> true
     | _ -> false)

let test_hello_codec () =
  let hello =
    {
      Proto.h_addr = Addr.temporary ~assigner:12 ~value:1;
      h_order = Endian.Be;
      h_listen = [ "tcp://vax1:4000"; "mbx://x/y" ];
    }
  in
  let b = Packed.run_pack Proto.hello_codec hello in
  let back = Packed.run_unpack Proto.hello_codec b in
  Alcotest.check addr "addr" hello.Proto.h_addr back.Proto.h_addr;
  Alcotest.(check bool) "order" true (back.Proto.h_order = Endian.Be);
  Alcotest.(check (list string)) "listen" hello.Proto.h_listen back.Proto.h_listen

let test_ivc_open_codec () =
  let v =
    {
      Proto.route = [ Addr.unique ~server_id:900 ~value:2; Addr.unique ~server_id:901 ~value:3 ];
      final_dst = Addr.unique ~server_id:0 ~value:9;
      origin_hello =
        { Proto.h_addr = Addr.unique ~server_id:0 ~value:4; h_order = Endian.Le; h_listen = [] };
    }
  in
  let back = Packed.run_unpack Proto.ivc_open_codec (Packed.run_pack Proto.ivc_open_codec v) in
  Alcotest.(check int) "route length" 2 (List.length back.Proto.route);
  Alcotest.check addr "final" v.Proto.final_dst back.Proto.final_dst;
  Alcotest.check addr "origin" v.Proto.origin_hello.Proto.h_addr
    back.Proto.origin_hello.Proto.h_addr

let test_ns_proto_roundtrips () =
  let reqs =
    [
      Ns_proto.Register
        { r_name = "m"; r_phys = [ "tcp://h:1" ]; r_nets = [ 1; 2 ]; r_order = 1;
          r_attrs = [ ("service", "x") ] };
      Ns_proto.Lookup "m";
      Ns_proto.Lookup_attrs [ ("a", "b") ];
      Ns_proto.Resolve (Addr.unique ~server_id:0 ~value:5);
      Ns_proto.Forward (Addr.unique ~server_id:0 ~value:5);
      Ns_proto.Deregister (Addr.unique ~server_id:0 ~value:5);
      Ns_proto.List_gateways;
      Ns_proto.Sync_pull 17;
    ]
  in
  List.iter
    (fun r ->
      match Ns_proto.unpack_request (Ns_proto.pack_request r) with
      | Ok r' -> Alcotest.(check bool) "request roundtrip" true (r = r')
      | Error m -> Alcotest.fail m)
    reqs;
  let entry =
    {
      Ns_proto.e_name = "m";
      e_addr = Addr.unique ~server_id:1 ~value:9;
      e_phys = [ "tcp://h:1" ];
      e_nets = [ 3 ];
      e_order = 0;
      e_attrs = [ ("k", "v") ];
      e_alive = true;
    }
  in
  let resps =
    [
      Ns_proto.R_registered entry.Ns_proto.e_addr;
      Ns_proto.R_addr entry.Ns_proto.e_addr;
      Ns_proto.R_entry entry;
      Ns_proto.R_entries [ entry; entry ];
      Ns_proto.R_forward (Some entry.Ns_proto.e_addr);
      Ns_proto.R_forward None;
      Ns_proto.R_ok;
      Ns_proto.R_sync [ (12, entry) ];
      Ns_proto.R_error "unknown-name";
    ]
  in
  List.iter
    (fun r ->
      match Ns_proto.unpack_response (Ns_proto.pack_response r) with
      | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
      | Error m -> Alcotest.fail m)
    resps

let () =
  Alcotest.run "ntcs_proto"
    [
      ( "addr",
        [
          Alcotest.test_case "words roundtrip" `Quick test_addr_words_roundtrip;
          Alcotest.test_case "kinds" `Quick test_addr_kinds;
          Alcotest.test_case "tadd generator" `Quick test_tadd_gen_unique;
        ] );
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "all kinds" `Quick test_all_kinds_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_header_rejects_garbage;
        ] );
      ( "control",
        [
          Alcotest.test_case "hello codec" `Quick test_hello_codec;
          Alcotest.test_case "ivc open codec" `Quick test_ivc_open_codec;
          Alcotest.test_case "ns proto roundtrips" `Quick test_ns_proto_roundtrips;
        ] );
    ]
