(* Tests for the happens-before race checker (Check_race), the dynamic
   half of the domain-safety pass. The qcheck properties pin the
   vector-clock laws the detector's soundness rests on; the unit tests
   drive small worlds with deliberately unsynchronized, synchronized,
   waived and coordinator-ordered accesses to a registered shared cell
   and require exactly the injected findings — one report per bad access
   pattern, none for anything happens-before can order. The last test is
   the zero-overhead contract: arming the checker on a clean protocol
   exchange adds not a single trace entry, so disarmed (the default)
   same-seed traces are trivially byte-identical with the seed. *)

module Sched = Ntcs_sim.Sched
module World = Ntcs_sim.World
module Vc = Check_race.Vc

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- vector-clock laws --- *)

(* Clocks are built the only way the detector builds them: ticks and
   joins from empty. *)
let vc_of owners = List.fold_left Vc.tick Vc.empty owners
let owners = QCheck.(list_of_size QCheck.Gen.(int_bound 12) (int_bound 5))

let test_vc_tick =
  qtest "tick strictly increases" (QCheck.pair owners (QCheck.int_bound 5))
    (fun (l, o) ->
      let v = vc_of l in
      let v' = Vc.tick v o in
      Vc.leq v v' && (not (Vc.leq v' v)) && Vc.get v' o = Vc.get v o + 1)

let test_vc_leq_transitive =
  (* Happens-before transitivity, on a constructed a ≤ b ≤ c chain —
     random triples satisfy the premise too rarely to test anything. *)
  qtest "leq transitive" (QCheck.triple owners owners owners) (fun (l1, l2, l3) ->
      let a = vc_of l1 in
      let b = Vc.join a (vc_of l2) in
      let c = Vc.join b (vc_of l3) in
      Vc.leq a b && Vc.leq b c && Vc.leq a c)

let test_vc_join_upper_bound =
  qtest "join is an upper bound, commutative, idempotent" (QCheck.pair owners owners)
    (fun (l1, l2) ->
      let a = vc_of l1 and b = vc_of l2 in
      let j = Vc.join a b in
      Vc.leq a j && Vc.leq b j
      && Vc.leq (Vc.join b a) j
      && Vc.leq j (Vc.join b a)
      && Vc.leq (Vc.join a a) a)

let test_vc_join_least =
  (* Least upper bound: any clock above both a and b is above join a b. *)
  qtest "join is the least upper bound" (QCheck.triple owners owners owners)
    (fun (l1, l2, l3) ->
      let a = vc_of l1 and b = vc_of l2 in
      let c = Vc.join (Vc.join a b) (vc_of l3) in
      Vc.leq (Vc.join a b) c)

let test_vc_join_monotone =
  (* a ≤ b ⇒ join a c ≤ join b c. *)
  qtest "join monotone" (QCheck.triple owners owners owners) (fun (l1, l2, l3) ->
      let a = vc_of l1 in
      let b = Vc.join a (vc_of l2) in
      let c = vc_of l3 in
      Vc.leq (Vc.join a c) (Vc.join b c))

(* --- the detector on small worlds --- *)

let world () =
  let w = World.create ~config:{ World.Config.default with World.Config.seed = 11 } () in
  let m = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Vax () in
  (w, m)

let conflict_events w =
  Ntcs_sim.Trace.matching (World.trace w) ~cat:"race.conflict"

(* Two processes spawned at the same instant, no synchronization between
   them, both touching the cell twice: exactly one report — the bad
   (writer, reader) pattern — not one per repeated access. *)
let test_unsynchronized_detected_once () =
  let w, m = world () in
  let sched = World.sched w in
  let cell = Sched.register_cell sched ~name:"test.cell" ~policy:Sched.Exclusive in
  let rc = Check_race.arm w in
  let touch ~write () =
    Sched.access sched cell ~write;
    Sched.access sched cell ~write
  in
  ignore (World.spawn w ~machine:m ~name:"writer" (touch ~write:true));
  ignore (World.spawn w ~machine:m ~name:"reader" (touch ~write:false));
  World.run w;
  Alcotest.(check int) "exactly one conflict" 1 (List.length (Check_race.conflicts rc));
  Alcotest.(check int) "counted once" 1
    (Ntcs_util.Metrics.get (World.metrics w) "race.conflicts");
  Alcotest.(check int) "one trace event" 1 (List.length (conflict_events w));
  match Check_race.conflicts rc with
  | [ c ] ->
    Alcotest.(check string) "on the registered cell" "test.cell" c.Check_race.r_cell;
    Alcotest.(check bool) "a write is involved" true
      (c.Check_race.r_first.a_write || c.Check_race.r_second.a_write)
  | _ -> assert false

(* Two concurrent readers conflict with nothing. *)
let test_readers_clean () =
  let w, m = world () in
  let sched = World.sched w in
  let cell = Sched.register_cell sched ~name:"test.cell" ~policy:Sched.Exclusive in
  let rc = Check_race.arm w in
  let read () = Sched.access sched cell ~write:false in
  ignore (World.spawn w ~machine:m ~name:"r1" read);
  ignore (World.spawn w ~machine:m ~name:"r2" read);
  World.run w;
  Alcotest.(check int) "no conflicts" 0 (List.length (Check_race.conflicts rc))

(* The same write/read pattern on a Waived cell is counted, not raced. *)
let test_waived_counted_not_raced () =
  let w, m = world () in
  let sched = World.sched w in
  let cell =
    Sched.register_cell sched ~name:"test.cell"
      ~policy:(Sched.Waived "sharded per domain when worlds go parallel")
  in
  let rc = Check_race.arm w in
  ignore (World.spawn w ~machine:m ~name:"writer" (fun () -> Sched.access sched cell ~write:true));
  ignore (World.spawn w ~machine:m ~name:"reader" (fun () -> Sched.access sched cell ~write:false));
  World.run w;
  Alcotest.(check int) "no races" 0 (List.length (Check_race.conflicts rc));
  Alcotest.(check int) "one waived pattern" 1 (Check_race.waived rc);
  Alcotest.(check int) "race.waived counted" 1
    (Ntcs_util.Metrics.get (World.metrics w) "race.waived");
  Alcotest.(check int) "no trace events" 0 (List.length (conflict_events w))

(* A mailbox hand-off is a happens-before edge: the consumer blocks, the
   producer writes then sends, the wake carries the producer's clock —
   same virtual instant, conflicting accesses, but ordered. *)
let test_synchronized_clean () =
  let w, m = world () in
  let sched = World.sched w in
  let cell = Sched.register_cell sched ~name:"test.cell" ~policy:Sched.Exclusive in
  let rc = Check_race.arm w in
  let mb = Sched.Mailbox.create sched in
  ignore
    (World.spawn w ~machine:m ~name:"consumer" (fun () ->
         match Sched.Mailbox.recv mb with
         | Some () -> Sched.access sched cell ~write:false
         | None -> ()));
  ignore
    (World.spawn w ~machine:m ~name:"producer" (fun () ->
         Sched.access sched cell ~write:true;
         Sched.Mailbox.send mb ()));
  World.run w;
  Alcotest.(check int) "ordered by the hand-off" 0
    (List.length (Check_race.conflicts rc))

(* A coordinator event (pushed from outside any process — setup code,
   fault schedules) is a barrier: its writes are ordered against every
   process access at the same instant, whichever side runs first. *)
let test_coordinator_barrier () =
  let w, m = world () in
  let sched = World.sched w in
  let cell = Sched.register_cell sched ~name:"test.cell" ~policy:Sched.Exclusive in
  let rc = Check_race.arm w in
  ignore
    (World.spawn w ~machine:m ~name:"p" (fun () ->
         Sched.sleep sched 1_000;
         Sched.access sched cell ~write:false));
  Sched.at sched 1_000 (fun () -> Sched.access sched cell ~write:true);
  World.run w;
  Alcotest.(check int) "coordinator writes never race" 0
    (List.length (Check_race.conflicts rc))

(* Accesses at different virtual times are ordered by the virtual-time
   barrier of the planned refactor — never conflicts. *)
let test_different_instants_clean () =
  let w, m = world () in
  let sched = World.sched w in
  let cell = Sched.register_cell sched ~name:"test.cell" ~policy:Sched.Exclusive in
  let rc = Check_race.arm w in
  ignore
    (World.spawn w ~machine:m ~name:"early" (fun () -> Sched.access sched cell ~write:true));
  ignore
    (World.spawn w ~machine:m ~name:"late" (fun () ->
         Sched.sleep sched 5_000;
         Sched.access sched cell ~write:true));
  World.run w;
  Alcotest.(check int) "barrier-separated writes" 0
    (List.length (Check_race.conflicts rc))

(* --- zero interference with clean runs --- *)

let trace_render w =
  List.map
    (fun e -> Format.asprintf "%a" Ntcs_sim.Trace.pp_entry e)
    (Ntcs_sim.Trace.entries (World.trace w))

let exchange_trace ~races =
  let c = Helpers.lan_cluster ~seed:42 () in
  if races then ignore (Check_race.arm (Ntcs.Cluster.world c));
  Ntcs.Cluster.settle c;
  Helpers.spawn_echo c ~machine:"sun1" ~name:"svc";
  Ntcs.Cluster.settle c;
  let get =
    Helpers.in_process c ~machine:"sun2" ~name:"app" (fun node ->
        let commod = Helpers.bind_exn node ~name:"app" in
        match Ntcs.Ali_layer.locate commod "svc" with
        | Error e -> Error e
        | Ok addr -> Ntcs.Ali_layer.send_sync commod ~dst:addr (Helpers.raw "ping"))
  in
  Ntcs.Cluster.settle ~dt:30_000_000 c;
  ignore (Helpers.check_ok "send" (get ()));
  trace_render (Ntcs.Cluster.world c)

let test_armed_trace_identical () =
  (* A full §6.1 exchange over the world's registered cells: arming the
     checker must find nothing and add nothing — the armed trace is
     byte-identical with the unarmed (seed) trace. *)
  Alcotest.(check (list string))
    "armed == disarmed trace" (exchange_trace ~races:false) (exchange_trace ~races:true)

let () =
  Alcotest.run "race"
    [
      ( "vector-clocks",
        [
          test_vc_tick;
          test_vc_leq_transitive;
          test_vc_join_upper_bound;
          test_vc_join_least;
          test_vc_join_monotone;
        ] );
      ( "detector",
        [
          Alcotest.test_case "unsynchronized detected once" `Quick
            test_unsynchronized_detected_once;
          Alcotest.test_case "readers clean" `Quick test_readers_clean;
          Alcotest.test_case "waived counted not raced" `Quick
            test_waived_counted_not_raced;
          Alcotest.test_case "mailbox hand-off orders" `Quick test_synchronized_clean;
          Alcotest.test_case "coordinator barrier" `Quick test_coordinator_barrier;
          Alcotest.test_case "different instants" `Quick test_different_instants_clean;
        ] );
      ( "interference",
        [ Alcotest.test_case "armed trace identical" `Quick test_armed_trace_identical ]
      );
    ]
