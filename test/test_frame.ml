(* Property tests for the zero-copy frame pipeline: Proto.Frame views are
   observationally identical to the legacy encode/decode path, in-place
   header patches produce the exact bytes a decode-modify-re-encode would
   have produced (the invariant that makes gateway patching sound, §5.2),
   fuzzed truncation/corruption can only surface as Bad_header, and the
   buffer pool really recycles. *)

open Ntcs
open Ntcs_wire

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- generators --- *)

let addr_gen =
  QCheck.Gen.(
    let id = int_range 0 0x3FFFFFFF and value = int_range 0 0xFFFFFFFF in
    oneof
      [
        map2 (fun s v -> Addr.unique ~server_id:s ~value:v) id value;
        map2 (fun a v -> Addr.temporary ~assigner:a ~value:v) id value;
      ])

let kind_gen =
  QCheck.Gen.oneofl
    [ Proto.Data; Proto.Dgram; Proto.Reply; Proto.Hello; Proto.Hello_ack;
      Proto.Ivc_open; Proto.Ivc_accept; Proto.Ivc_reject; Proto.Ivc_close;
      Proto.Ping; Proto.Pong ]

(* A full random header plus a payload whose length matches it. *)
let frame_gen =
  QCheck.Gen.(
    kind_gen >>= fun kind ->
    addr_gen >>= fun src ->
    addr_gen >>= fun dst ->
    oneofl [ Convert.Image; Convert.Packed ] >>= fun mode ->
    oneofl [ Endian.Le; Endian.Be ] >>= fun src_order ->
    int_range 0 255 >>= fun hops ->
    int_range 0 0xFFFFFFFF >>= fun seq ->
    int_range 0 0xFFFFFFFF >>= fun conv ->
    int_range 0 0xFFFFFFFF >>= fun app_tag ->
    int_range 0 0xFFFFFFFF >>= fun ivc ->
    int_range 0 0xFFFFFFFF >>= fun circuit ->
    int_range 0 0xFFFFFFFF >>= fun sp_seq ->
    string_size (int_range 0 300) >>= fun payload ->
    let payload = Bytes.of_string payload in
    return
      ( Proto.make_header ~kind ~src ~dst ~mode ~src_order ~hops ~seq ~conv ~app_tag
          ~ivc
          ~span:(Ntcs_obs.Span.make ~circuit ~seq:sp_seq)
          ~payload_len:(Bytes.length payload) (),
        payload ))

let frame_arb =
  QCheck.make
    ~print:(fun (h, payload) ->
      Printf.sprintf "%s src=%s dst=%s hops=%d ivc=%d |payload|=%d"
        (Proto.kind_to_string h.Proto.kind)
        (Addr.to_string h.Proto.src) (Addr.to_string h.Proto.dst) h.Proto.hops
        h.Proto.ivc (Bytes.length payload))
    frame_gen

(* --- view round-trip equals the legacy path --- *)

let prop_view_equals_legacy =
  qtest "Frame view round-trip == legacy encode/decode" frame_arb (fun (h, payload) ->
      let legacy = Proto.encode_frame h payload in
      let v = Proto.Frame.of_parts h payload in
      Bytes.equal legacy (Proto.Frame.to_bytes v)
      && Proto.Frame.header (Proto.Frame.of_bytes legacy) = h
      && Bytes.equal (Proto.Frame.payload_bytes (Proto.Frame.of_bytes legacy)) payload)

let prop_view_at_offset =
  qtest "view over an embedded frame sees the same header and payload"
    (QCheck.pair frame_arb (QCheck.make QCheck.Gen.(int_range 0 64)))
    (fun ((h, payload), pad) ->
      let frame = Proto.encode_frame h payload in
      let big = Bytes.make (pad + Bytes.length frame + 17) '\xAA' in
      Bytes.blit frame 0 big pad (Bytes.length frame);
      let v = Proto.Frame.of_bytes ~off:pad ~len:(Bytes.length frame) big in
      Proto.Frame.header v = h
      && Bytes.equal (Proto.Frame.payload_bytes v) payload
      && Bytes.equal (Proto.Frame.to_bytes v) frame)

(* --- in-place patches == decode-modify-re-encode --- *)

let patch_arb =
  QCheck.pair frame_arb
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 0 0xFFFFFFFF) (int_range 0 255) addr_gen))

let prop_patch_equals_reencode =
  qtest "patch_ivc/hops/dst produce the re-encoded bytes" patch_arb
    (fun ((h, payload), (ivc', hops', dst')) ->
      let v = Proto.Frame.of_parts h payload in
      Proto.Frame.patch_ivc v ivc';
      Proto.Frame.patch_hops v hops';
      Proto.Frame.patch_dst v dst';
      let h' = { h with Proto.ivc = ivc'; hops = hops'; dst = dst' } in
      Bytes.equal (Proto.Frame.to_bytes v) (Proto.encode_frame h' payload)
      && Proto.Frame.header v = h')

let prop_patch_keeps_snapshots =
  qtest "a header read before a patch is unaffected by it" frame_arb
    (fun (h, payload) ->
      let v = Proto.Frame.of_parts h payload in
      let before = Proto.Frame.header v in
      Proto.Frame.patch_ivc v ((h.Proto.ivc + 1) land 0xFFFFFFFF);
      (* The gateway error path depends on this: it reports the pre-patch
         src/ivc after the forward has already rewritten the words. *)
      before.Proto.ivc = h.Proto.ivc && before = h)

(* --- hop-count range is enforced, not wrapped --- *)

let test_hops_never_wrap () =
  let h =
    Proto.make_header ~kind:Proto.Data
      ~src:(Addr.unique ~server_id:1 ~value:1)
      ~dst:(Addr.unique ~server_id:1 ~value:2)
      ~hops:256 ~payload_len:0 ()
  in
  Alcotest.(check bool) "encode_header raises" true
    (match Proto.encode_header h with exception Proto.Bad_header _ -> true | _ -> false);
  let v = Proto.Frame.of_parts { h with Proto.hops = 255 } Bytes.empty in
  Alcotest.(check bool) "patch_hops 256 raises" true
    (match Proto.Frame.patch_hops v 256 with
     | exception Proto.Bad_header _ -> true
     | () -> false);
  Alcotest.(check bool) "patch_hops -1 raises" true
    (match Proto.Frame.patch_hops v (-1) with
     | exception Proto.Bad_header _ -> true
     | () -> false);
  (* The failed patches must not have corrupted the frame. *)
  Alcotest.(check int) "hops intact" 255 (Proto.Frame.header v).Proto.hops

(* --- fuzz: truncation and corruption surface only as Bad_header --- *)

let only_bad_header f =
  match f () with _ -> true | exception Proto.Bad_header _ -> true

let fuzz_arb =
  QCheck.pair frame_arb
    (QCheck.make QCheck.Gen.(triple small_nat small_nat (int_range 0 7)))

let prop_truncation_safe =
  qtest "truncated frames: view construction raises only Bad_header" fuzz_arb
    (fun ((h, payload), (cut, _, _)) ->
      let frame = Proto.encode_frame h payload in
      let t = Bytes.sub frame 0 (cut mod Bytes.length frame) in
      only_bad_header (fun () ->
          let v = Proto.Frame.of_bytes t in
          ignore (Proto.Frame.header v);
          ignore (Proto.Frame.payload_bytes v)))

let prop_corruption_safe =
  qtest "bit-flipped frames: decode raises only Bad_header" fuzz_arb
    (fun ((h, payload), (pos, bit, _)) ->
      let frame = Proto.encode_frame h payload in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos
        (Char.chr (Char.code (Bytes.get frame pos) lxor (1 lsl (bit mod 8))));
      only_bad_header (fun () ->
          let v = Proto.Frame.of_bytes frame in
          ignore (Proto.Frame.header v);
          ignore (Proto.Frame.payload_bytes v)))

let prop_bad_view_bounds =
  qtest "of_bytes rejects windows that cannot hold a frame"
    (QCheck.make QCheck.Gen.(triple (int_range (-8) 80) (int_range (-8) 80) (int_range 0 80)))
    (fun (off, len, size) ->
      let buf = Bytes.create size in
      match Proto.Frame.of_bytes ~off ~len buf with
      | v ->
        (* Accepted: the window must genuinely fit. *)
        off >= 0 && len >= Proto.header_bytes
        && off + len <= size
        && Proto.Frame.len v = len
      | exception Proto.Bad_header _ -> true)

(* --- the buffer pool recycles --- *)

let test_pool_recycles () =
  let r = Ntcs_obs.Registry.create () in
  let pool = Ntcs_util.Pool.create ~registry:r () in
  let b1 = Ntcs_util.Pool.alloc pool 300 in
  Alcotest.(check bool) "rounded to a size class" true (Bytes.length b1 = 512);
  Alcotest.(check int) "one out" 1 (Ntcs_util.Pool.in_use pool);
  Ntcs_util.Pool.release pool b1;
  Alcotest.(check int) "none out" 0 (Ntcs_util.Pool.in_use pool);
  let b2 = Ntcs_util.Pool.alloc pool 400 in
  Alcotest.(check bool) "same class buffer reused" true (b1 == b2);
  Ntcs_util.Pool.release pool b2;
  let big = Ntcs_util.Pool.alloc pool 200_000 in
  Alcotest.(check int) "oversize allocations are exact" 200_000 (Bytes.length big);
  Ntcs_util.Pool.release pool big;
  Alcotest.(check int) "one miss then a hit" 1
    (Ntcs_util.Metrics.get r "pool.misses");
  Alcotest.(check int) "hit counted" 1 (Ntcs_util.Metrics.get r "pool.hits");
  Alcotest.(check int) "oversize counted" 1 (Ntcs_util.Metrics.get r "pool.unpooled");
  Alcotest.(check int) "high water" 1
    (int_of_float (Ntcs_util.Metrics.gauge r "pool.high_water"))

let test_pool_size_classes () =
  let pool = Ntcs_util.Pool.create () in
  List.iter
    (fun n ->
      let b = Ntcs_util.Pool.alloc pool n in
      Alcotest.(check bool)
        (Printf.sprintf "alloc %d fits" n)
        true
        (Bytes.length b >= n);
      Ntcs_util.Pool.release pool b)
    [ 1; 63; 64; 65; 511; 512; 513; 4096; 65536; 65537 ];
  Alcotest.(check int) "all returned" 0 (Ntcs_util.Pool.in_use pool)

let test_pool_boundary_accounting () =
  (* Unpooled hand-outs are owed back like pooled ones: the in_use gauge
     must rise and fall across the max_pooled boundary, and a bogus
     release must be rejected and counted instead of corrupting it. *)
  let r = Ntcs_obs.Registry.create () in
  let pool = Ntcs_util.Pool.create ~registry:r () in
  let at = Ntcs_util.Pool.alloc pool Ntcs_util.Pool.max_pooled in
  let over = Ntcs_util.Pool.alloc pool (Ntcs_util.Pool.max_pooled + 1) in
  Alcotest.(check int) "boundary pooled to class size" Ntcs_util.Pool.max_pooled
    (Bytes.length at);
  Alcotest.(check int) "past the boundary allocated exactly"
    (Ntcs_util.Pool.max_pooled + 1) (Bytes.length over);
  Alcotest.(check int) "both owed back" 2 (Ntcs_util.Pool.in_use pool);
  Ntcs_util.Pool.release pool at;
  Ntcs_util.Pool.release pool over;
  Alcotest.(check int) "both returned" 0 (Ntcs_util.Pool.in_use pool);
  Ntcs_util.Pool.release pool at;
  Alcotest.(check int) "double release rejected" 1
    (Ntcs_util.Metrics.get r "pool.bad_release");
  Alcotest.(check int) "gauge not driven negative" 0 (Ntcs_util.Pool.in_use pool)

let () =
  Alcotest.run "frame"
    [
      ( "views",
        [
          prop_view_equals_legacy;
          prop_view_at_offset;
          prop_patch_equals_reencode;
          prop_patch_keeps_snapshots;
          Alcotest.test_case "hops never wrap" `Quick test_hops_never_wrap;
        ] );
      ( "fuzz",
        [ prop_truncation_safe; prop_corruption_safe; prop_bad_view_bounds ] );
      ( "pool",
        [
          Alcotest.test_case "recycles buffers" `Quick test_pool_recycles;
          Alcotest.test_case "size classes" `Quick test_pool_size_classes;
          Alcotest.test_case "boundary accounting" `Quick
            test_pool_boundary_accounting;
        ] );
    ]
