(* Adversarial-input robustness: garbage bytes on raw circuits, malformed
   naming-service requests, orphan IVC labels at gateways. "The NTCS (like
   any communication system), quickly became inundated with the handling of
   unlikely exceptional conditions" (§6.3) — none of them may crash a
   module. *)

open Ntcs
open Helpers

let no_crashes c =
  Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash"

let test_garbage_bytes_on_raw_circuit () =
  (* Connect straight to a module's listening socket and write noise: not a
     HELLO, not even a frame. The module must drop it and keep serving. *)
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  (* Find the service's physical address via the naming service. *)
  let svc_phys = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"snoop" (fun node ->
         let commod = bind_exn node ~name:"snoop" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         let entry = check_ok "resolve" (Ali_layer.locate_entry commod addr) in
         svc_phys := List.nth_opt entry.Ns_proto.e_phys 0));
  Cluster.settle c;
  let attacker_done = ref false in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"attacker" (fun node ->
         match Option.bind !svc_phys Ntcs_ipcs.Phys_addr.of_string with
         | None -> Alcotest.fail "no phys to attack"
         | Some phys -> (
           match
             Std_if.connect node.Node.ipcs ~machine:(Node.machine node) ~dst:phys
           with
           | Error _ -> Alcotest.fail "attacker connect failed"
           | Ok lvc ->
             ignore (lvc.Std_if.send_msg (Bytes.of_string "not a frame at all"));
             ignore (lvc.Std_if.send_msg (Bytes.make 3 '\255'));
             attacker_done := true)));
  Cluster.settle c;
  (* Service still answers a legitimate client. *)
  let legit = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"legit" (fun node ->
         let commod = bind_exn node ~name:"legit" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         legit := Some (Ali_layer.send_sync commod ~dst:addr (raw "still there?"))));
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check bool) "attacker ran" true !attacker_done;
  (match !legit with
   | Some (Ok env) -> Alcotest.(check string) "service survived" "echo:still there?" (body env)
   | Some (Error e) -> Alcotest.failf "service broken by garbage: %s" (Errors.to_string e)
   | None -> Alcotest.fail "legit client never ran");
  Alcotest.(check int) "no crashes" 0 (List.length (no_crashes c));
  (* Garbage arriving before the handshake is rejected there and traced. *)
  Alcotest.(check bool) "rejection recorded" true
    (List.length
       (Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c))
          ~cat:"nd.handshake_fail")
     >= 1
    || Ntcs_util.Metrics.get (Cluster.metrics c) "nd.bad_frames" >= 1)

let test_malformed_ns_request () =
  (* Speak the nucleus protocol correctly but send unparseable request bytes
     to the name server under its own app tag. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let outcome = ref None and after = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"fuzzer" (fun node ->
         let commod = bind_exn node ~name:"fuzzer" in
         let lcm = Commod.lcm commod in
         let ns = List.nth (Nsp_layer.name_server_addrs (Commod.nsp_exn commod)) 0 in
         outcome :=
           Some
             (Lcm_layer.send_sync lcm ~dst:ns ~app_tag:Ns_proto.app_tag
                ~timeout_us:1_000_000
                (raw "definitely-not-a-packed-request"));
         (* The server must still answer real requests afterwards. *)
         after := Some (Ali_layer.locate commod "fuzzer")));
  Cluster.settle ~dt:20_000_000 c;
  (match !outcome with
   | Some (Error Errors.Timeout) -> () (* server ignored the garbage *)
   | Some (Error e) -> Alcotest.failf "unexpected: %s" (Errors.to_string e)
   | Some (Ok _) -> Alcotest.fail "the name server answered garbage"
   | None -> Alcotest.fail "fuzzer never ran");
  (match !after with
   | Some (Ok _) -> ()
   | Some (Error e) -> Alcotest.failf "name server damaged: %s" (Errors.to_string e)
   | None -> Alcotest.fail "no follow-up");
  Alcotest.(check int) "no crashes" 0 (List.length (no_crashes c))

let test_orphan_ivc_label_at_gateway () =
  (* Frames with labels no splice knows are dropped and counted; the
     gateway keeps forwarding real traffic. *)
  let c = two_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"ring-svc";
  Cluster.settle ~dt:5_000_000 c;
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"mischief" (fun node ->
         let commod = bind_exn node ~name:"mischief" in
         let addr = check_ok "locate" (Ali_layer.locate commod "ring-svc") in
         ignore
           (check_ok "legit call"
              (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "one")));
         (* Inject a frame with a bogus label on the chain's first-leg
            circuit (the LVC to the gateway). *)
         let ivc =
           match Ip_layer.find_ivc (Commod.ip commod) addr with
           | Some ivc -> ivc
           | None -> Alcotest.fail "no chained ivc for the service"
         in
         let bogus =
           Proto.make_header ~kind:Proto.Data ~src:(Commod.my_addr commod) ~dst:addr
             ~ivc:987654 ~payload_len:0 ()
         in
         (match Nd_layer.send_frame ivc.Ip_layer.circuit bogus (Bytes.of_string "orphan") with
          | Ok () -> ()
          | Error e -> Alcotest.failf "bogus send failed: %s" (Errors.to_string e));
         (* Legit traffic still flows. *)
         ignore
           (check_ok "still works"
              (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "two")))));
  Cluster.settle ~dt:40_000_000 c;
  Alcotest.(check bool) "orphan counted" true
    (Ntcs_util.Metrics.get (Cluster.metrics c) "gw.orphan_frames" >= 1);
  Alcotest.(check int) "no crashes" 0 (List.length (no_crashes c))

let test_gateway_circuit_key_stable_under_chained_traffic () =
  (* Regression: forwarded frames carry theremote origin's source address; the
     ND-layer must not re-key its circuit to the gateway on them. After a
     chained conversation, the circuit is still findable by the gateway's
     own address (so later chains reuse the LVC). *)
  let c = two_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"ring-svc";
  Cluster.settle ~dt:5_000_000 c;
  let found = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "ring-svc") in
         ignore
           (check_ok "chained call"
              (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "x")));
         let nd = Commod.nd commod in
         found :=
           Some
             (List.exists
                (fun wk ->
                  wk.Node.wk_is_gateway && Nd_layer.find_circuit nd wk.Node.wk_addr <> None)
                (Cluster.config c).Node.well_known)));
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check (option bool)) "gateway circuit still keyed by its address" (Some true)
    !found

let test_reply_to_dead_conversation () =
  (* A reply that arrives after the caller timed out is dropped as an
     orphan, not delivered to the wrong conversation. *)
  let c = lan_cluster () in
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"tortoise" (fun node ->
         let commod = bind_exn node ~name:"tortoise" in
         let rec loop () =
           (match Ali_layer.receive commod with
            | Ok env when Ali_layer.expects_reply env ->
              Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000;
              ignore (Ali_layer.reply commod env (raw "too-late"))
            | Ok _ | Error _ -> ());
           loop ()
         in
         loop ()));
  Cluster.settle c;
  let first = ref None and second = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"impatient" (fun node ->
         let commod = bind_exn node ~name:"impatient" in
         let addr = check_ok "locate" (Ali_layer.locate commod "tortoise") in
         first := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:500_000 (raw "q1"));
         (* Wait past the late reply, then a fresh conversation: it must get
            ITS answer, not the stale one. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 3_000_000;
         second := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:4_000_000 (raw "q2"))));
  Cluster.settle ~dt:30_000_000 c;
  (match !first with
   | Some (Error Errors.Timeout) -> ()
   | Some _ -> Alcotest.fail "first call should have timed out"
   | None -> Alcotest.fail "client never ran");
  (match !second with
   | Some (Ok env) -> Alcotest.(check string) "fresh conversation" "too-late" (body env)
   | Some (Error e) -> Alcotest.failf "second call: %s" (Errors.to_string e)
   | None -> Alcotest.fail "no second call");
  Alcotest.(check bool) "orphan reply counted" true
    (Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.orphan_replies" >= 1)

let () =
  Alcotest.run "robustness"
    [
      ( "garbage",
        [
          Alcotest.test_case "raw garbage on a circuit" `Quick test_garbage_bytes_on_raw_circuit;
          Alcotest.test_case "malformed NS request" `Quick test_malformed_ns_request;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "orphan IVC label" `Quick test_orphan_ivc_label_at_gateway;
          Alcotest.test_case "gateway circuit key stable" `Quick
            test_gateway_circuit_key_stable_under_chained_traffic;
          Alcotest.test_case "reply after timeout" `Quick test_reply_to_dead_conversation;
        ] );
    ]
