(* The fault plane and the recovery machinery it exercises.

   - Determinism: the same world seed + the same fault spec must reproduce
     the same injections and the same trace, byte for byte; a different
     fault seed must move something.
   - Injection: rules and scheduled events actually fire, are counted, and
     appear as fault.* trace events.
   - Recovery: a partitioned service heals through the LCM retry policy and
     the retry counters surface in [Lcm_layer.stats].
   - Gateway idempotence: duplicated open/control frames (dup probability
     1.0 on every droppable frame) must not double-splice or double-close an
     IVC — the §4.3 teardown-ordering regression.
   - The [Retry] policy itself: deterministic backoff, bounded attempts,
     permanent errors and deadlines cut the loop. *)

open Ntcs
open Helpers

(* One faulty workload: lossy, duplicating, delaying LAN plus a 4s partition
   of the service's machine, and an app that keeps resending until the echo
   comes back. Returns (trace text, metrics text, cluster). *)
let faulty_run ?(fault_seed = 7) () =
  let config =
    {
      Ntcs_sim.World.Config.default with
      Ntcs_sim.World.Config.seed = 42;
      faults =
        Some
          {
            Ntcs_sim.Faults.seed = fault_seed;
            rules =
              [
                Ntcs_sim.Faults.rule ~from_us:5_000_000 ~until_us:15_000_000 ~drop:0.15
                  ~dup:0.1 ~delay:0.3 ~delay_us:20_000 ();
              ];
            schedule =
              [
                (6_000_000, Ntcs_sim.Faults.Partition [ [ "sun1" ]; [ "vax1"; "sun2" ] ]);
                (10_000_000, Ntcs_sim.Faults.Heal);
              ];
          };
    }
  in
  let c = lan_cluster ~config () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let recovered = ref false in
  let stats = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"app" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         ignore (check_ok "warm-up" (Ali_layer.send_sync commod ~dst:addr (raw "warm")));
         let sched = Node.sched node in
         Ntcs_sim.Sched.sleep sched 3_000_000;
         let rec chase () =
           if Ntcs_sim.Sched.now sched > 35_000_000 then ()
           else
             match Ali_layer.send_sync commod ~dst:addr ~timeout_us:1_000_000 (raw "hi") with
             | Ok env ->
               Alcotest.(check string) "echo after heal" "echo:hi" (body env);
               recovered := true
             | Error _ ->
               Ntcs_sim.Sched.sleep sched 1_000_000;
               chase ()
         in
         chase ();
         stats := Some (Ali_layer.stats commod)));
  Cluster.settle ~dt:40_000_000 c;
  Alcotest.(check bool) "app recovered after heal" true !recovered;
  let trace_txt = Fmt.str "%a" Ntcs_sim.Trace.dump (Ntcs_sim.World.trace (Cluster.world c)) in
  let metrics_txt = Fmt.str "%a" Ntcs_util.Metrics.pp (Cluster.metrics c) in
  (trace_txt, metrics_txt, c, !stats)

let check_same label a b =
  if not (String.equal a b) then begin
    let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
    let rec first_diff i = function
      | x :: xs, y :: ys -> if String.equal x y then first_diff (i + 1) (xs, ys) else (i, x, y)
      | x :: _, [] -> (i, x, "<missing>")
      | [], y :: _ -> (i, "<missing>", y)
      | [], [] -> (i, "<equal?>", "<equal?>")
    in
    let i, x, y = first_diff 1 (la, lb) in
    Alcotest.failf "%s: runs diverge at line %d:@.  run1: %s@.  run2: %s" label i x y
  end

let test_same_seed_same_faults () =
  let t1, m1, _, _ = faulty_run () in
  let t2, m2, _, _ = faulty_run () in
  check_same "faulty trace" t1 t2;
  check_same "faulty metrics" m1 m2

let test_fault_seed_matters () =
  let t1, _, _, _ = faulty_run ~fault_seed:7 () in
  let t2, _, _, _ = faulty_run ~fault_seed:8 () in
  Alcotest.(check bool) "different fault seeds diverge" false (String.equal t1 t2)

let test_faults_injected_and_traced () =
  let _, _, c, stats = faulty_run () in
  let f =
    match Ntcs_sim.World.faults (Cluster.world c) with
    | Some f -> f
    | None -> Alcotest.fail "fault plane not installed"
  in
  let k = Ntcs_sim.Faults.counters f in
  Alcotest.(check bool) "frames dropped" true (k.Ntcs_sim.Faults.dropped > 0);
  Alcotest.(check bool) "frames duplicated" true (k.Ntcs_sim.Faults.duplicated > 0);
  Alcotest.(check bool) "frames blocked by partition" true (k.Ntcs_sim.Faults.blocked > 0);
  let has cat =
    Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat <> []
  in
  Alcotest.(check bool) "fault.partition traced" true (has "fault.partition");
  Alcotest.(check bool) "fault.heal traced" true (has "fault.heal");
  Alcotest.(check bool) "fault.drop traced" true (has "fault.drop");
  (* The outage engaged the LCM recovery, and the counters surface in the
     per-module stats the ALI exposes. *)
  match stats with
  | None -> Alcotest.fail "no app stats"
  | Some s ->
    Alcotest.(check bool) "retries counted" true (s.Lcm_layer.st_retries > 0);
    Alcotest.(check bool) "backoff time counted" true (s.Lcm_layer.st_backoff_us > 0)

(* Every droppable frame duplicated: the gateway sees each chained open (and
   every control/data frame that fits one segment) twice. The splice must
   commit once, traffic must still flow, and teardown must close each leg
   exactly once — the lifecycle automaton replay catches any double-close. *)
let test_gateway_duplicate_open_idempotent () =
  let config =
    {
      Ntcs_sim.World.Config.default with
      Ntcs_sim.World.Config.seed = 5;
      faults =
        Some
          {
            Ntcs_sim.Faults.seed = 11;
            rules =
              [ Ntcs_sim.Faults.rule ~from_us:3_000_000 ~until_us:20_000_000 ~dup:1.0 () ];
            schedule = [];
          };
    }
  in
  let c = two_net_cluster ~config () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"svc";
  Cluster.settle c;
  let get =
    in_process c ~machine:"vax1" ~name:"app" (fun node ->
        let commod = bind_exn node ~name:"app" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        check_ok "cross-gateway echo" (Ali_layer.send_sync commod ~dst:addr (raw "dup")))
  in
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check string) "echo across gateway under dup=1.0" "echo:dup" (body (get ()));
  Alcotest.(check bool) "duplicate opens were seen and dropped" true
    (Ntcs_util.Metrics.get (Cluster.metrics c) "gw.duplicate_opens" > 0);
  let entries = Ntcs_sim.Trace.entries (Ntcs_sim.World.trace (Cluster.world c)) in
  (match Check_lifecycle.check entries with
   | [] -> ()
   | vs ->
     Alcotest.failf "lifecycle violations under duplication:@.%s"
       (String.concat "\n" (List.map (Fmt.str "%a" Lint_trace.pp_violation) vs)));
  (* No splice leg may be torn down twice: gw.close details are unique. *)
  let closes =
    Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"gw.close"
    |> List.map (fun (e : Ntcs_sim.Trace.entry) -> e.detail)
  in
  Alcotest.(check int) "each splice closed at most once"
    (List.length (List.sort_uniq compare closes))
    (List.length closes)

(* --- the Retry policy itself --- *)

let test_backoff_deterministic () =
  let p = Retry.policy () in
  Alcotest.(check (list int)) "exponential backoff with ceiling"
    [ 50_000; 100_000; 200_000; 400_000; 800_000; 800_000 ]
    (List.map (fun attempt -> Retry.delay_us p ~attempt) [ 1; 2; 3; 4; 5; 6 ])

let test_retry_bounded_attempts () =
  let c = lan_cluster () in
  let calls = ref 0 and retries = ref 0 in
  let get =
    in_process c ~machine:"sun1" ~name:"r" (fun node ->
        Retry.run (Node.sched node)
          (Retry.policy ~max_attempts:4 ~base_delay_us:10_000 ~max_delay_us:80_000
             ~jitter_us:0 ())
          ~retryable:Errors.retryable
          ~on_retry:(fun ~attempt:_ ~delay_us:_ _ -> incr retries)
          (fun ~attempt:_ ->
            incr calls;
            Error Errors.Timeout))
  in
  Cluster.settle c;
  check_err "exhausted retries return the last error" Errors.Timeout (get ());
  Alcotest.(check int) "all attempts made" 4 !calls;
  Alcotest.(check int) "a backoff between each pair" 3 !retries

let test_retry_permanent_error_aborts () =
  let c = lan_cluster () in
  let calls = ref 0 in
  let get =
    in_process c ~machine:"sun1" ~name:"r" (fun node ->
        Retry.run (Node.sched node)
          (Retry.policy ~max_attempts:5 ())
          ~retryable:Errors.retryable
          (fun ~attempt:_ ->
            incr calls;
            Error Errors.Unknown_name))
  in
  Cluster.settle c;
  check_err "permanent error returned" Errors.Unknown_name (get ());
  Alcotest.(check int) "no retry on a permanent error" 1 !calls

let test_retry_deadline_cuts_backoff () =
  let c = lan_cluster () in
  let calls = ref 0 in
  let get =
    in_process c ~machine:"sun1" ~name:"r" (fun node ->
        let sched = Node.sched node in
        (* Backoff 50ms, deadline 75ms out: attempt 1 fails, one backoff
           fits, attempt 2 fails, the second backoff would cross. *)
        Retry.run sched
          ~deadline_us:(Ntcs_sim.Sched.now sched + 75_000)
          (Retry.policy ~max_attempts:10 ~base_delay_us:50_000 ~max_delay_us:50_000
             ~jitter_us:0 ())
          ~retryable:Errors.retryable
          (fun ~attempt:_ ->
            incr calls;
            Error Errors.Timeout))
  in
  Cluster.settle c;
  check_err "deadline returns the last error" Errors.Timeout (get ());
  Alcotest.(check int) "deadline stopped the loop" 2 !calls

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same faults, same bytes" `Quick
            test_same_seed_same_faults;
          Alcotest.test_case "fault seed matters" `Quick test_fault_seed_matters;
        ] );
      ( "injection",
        [
          Alcotest.test_case "faults injected, counted, traced" `Quick
            test_faults_injected_and_traced;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "duplicated opens are idempotent" `Quick
            test_gateway_duplicate_open_idempotent;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic backoff" `Quick test_backoff_deterministic;
          Alcotest.test_case "bounded attempts" `Quick test_retry_bounded_attempts;
          Alcotest.test_case "permanent error aborts" `Quick test_retry_permanent_error_aborts;
          Alcotest.test_case "deadline cuts backoff" `Quick test_retry_deadline_cuts_backoff;
        ] );
    ]
