(* Tests for the native IPCS backends: physical addresses, simulated TCP
   (stream semantics), simulated MBX (message semantics). *)

open Ntcs_sim
open Ntcs_ipcs

let addr = Alcotest.testable Phys_addr.pp Phys_addr.equal

let test_phys_addr_roundtrip () =
  let cases =
    [ Phys_addr.tcp ~host:"vax1" ~port:4000; Phys_addr.mbx ~path:"//m/node_data/mbx/x.1" ]
  in
  List.iter
    (fun a ->
      match Phys_addr.of_string (Phys_addr.to_string a) with
      | Some b -> Alcotest.check addr "roundtrip" a b
      | None -> Alcotest.failf "failed to parse %s" (Phys_addr.to_string a))
    cases

let test_phys_addr_parse_errors () =
  List.iter
    (fun s -> Alcotest.(check bool) ("reject " ^ s) true (Phys_addr.of_string s = None))
    [ ""; "bogus"; "tcp://"; "tcp://host"; "tcp://host:abc"; "tcp://:123"; "mbx:"; "http://x" ]

let test_phys_addr_kind () =
  Alcotest.(check string) "tcp kind" "tcp"
    (Phys_addr.kind_to_string (Phys_addr.kind (Phys_addr.tcp ~host:"h" ~port:1)));
  Alcotest.(check string) "mbx kind" "mbx"
    (Phys_addr.kind_to_string (Phys_addr.kind (Phys_addr.mbx ~path:"p")))

(* --- scaffolding for backend tests --- *)

type rig = {
  world : World.t;
  reg : Registry.t;
  vax : Machine.t;
  sun : Machine.t;
  apollo1 : Machine.t;
  apollo2 : Machine.t;
  lan : Net.t;
}

let make_rig () =
  let world = World.create ~config:{ World.Config.default with World.Config.seed = 17 } () in
  let lan = World.add_net world ~name:"lan" Net.Tcp_lan () in
  let ring = World.add_net world ~name:"ring" Net.Mbx_ring () in
  let vax = World.add_machine world ~name:"vax" Machine.Vax () in
  let sun = World.add_machine world ~name:"sun" Machine.Sun3 () in
  let apollo1 = World.add_machine world ~name:"ap1" Machine.Apollo () in
  let apollo2 = World.add_machine world ~name:"ap2" Machine.Apollo () in
  World.attach world vax lan;
  World.attach world sun lan;
  World.attach world apollo1 ring;
  World.attach world apollo2 ring;
  { world; reg = Registry.create world; vax; sun; apollo1; apollo2; lan }

let spawn rig ~machine f = ignore (World.spawn rig.world ~machine ~name:"t" f)

let run rig = World.run rig.world

(* --- TCP --- *)

let test_tcp_connect_and_stream () =
  let rig = make_rig () in
  let tcp = Registry.tcp rig.reg in
  let server_got = Buffer.create 64 in
  let reads = ref 0 in
  spawn rig ~machine:rig.vax (fun () ->
      let l =
        match Ipcs_tcp.listen tcp ~machine:rig.vax ~port:9000 with
        | Ok l -> l
        | Error e -> Alcotest.failf "listen: %s" (Ipcs_error.to_string e)
      in
      match Ipcs_tcp.accept l with
      | Error e -> Alcotest.failf "accept: %s" (Ipcs_error.to_string e)
      | Ok conn ->
        let rec drain () =
          match Ipcs_tcp.recv ~timeout_us:500_000 conn with
          | Ok chunk ->
            incr reads;
            Buffer.add_bytes server_got chunk;
            drain ()
          | Error _ -> ()
        in
        drain ());
  spawn rig ~machine:rig.sun (fun () ->
      match
        Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"vax" ~port:9000)
      with
      | Error e -> Alcotest.failf "connect: %s" (Ipcs_error.to_string e)
      | Ok conn ->
        ignore (Ipcs_tcp.send conn (Bytes.of_string "hello "));
        ignore (Ipcs_tcp.send conn (Bytes.of_string "world. "));
        ignore (Ipcs_tcp.send conn (Bytes.make 5000 'z'));
        Sched.sleep (World.sched rig.world) 300_000;
        Ipcs_tcp.close conn);
  run rig;
  let s = Buffer.contents server_got in
  Alcotest.(check int) "total bytes" (13 + 5000) (String.length s);
  Alcotest.(check string) "prefix" "hello world. " (String.sub s 0 13);
  Alcotest.(check bool) "stream was chunked" true (!reads >= 2)

let test_tcp_refused_and_no_host () =
  let rig = make_rig () in
  let tcp = Registry.tcp rig.reg in
  let results = ref [] in
  spawn rig ~machine:rig.sun (fun () ->
      (match
         Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"vax" ~port:1)
       with
       | Error e -> results := ("refused", Ipcs_error.to_string e) :: !results
       | Ok _ -> ());
      (match
         Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"nowhere" ~port:1)
       with
       | Error e -> results := ("nohost", Ipcs_error.to_string e) :: !results
       | Ok _ -> ());
      match
        Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"ap1" ~port:1)
      with
      | Error e -> results := ("no-common-net", Ipcs_error.to_string e) :: !results
      | Ok _ -> ());
  run rig;
  Alcotest.(check (option string)) "refused" (Some "refused")
    (List.assoc_opt "refused" !results);
  Alcotest.(check (option string)) "no host" (Some "no-such-host")
    (List.assoc_opt "nohost" !results);
  Alcotest.(check (option string)) "unreachable" (Some "unreachable")
    (List.assoc_opt "no-common-net" !results)

let test_tcp_fin_detected () =
  let rig = make_rig () in
  let tcp = Registry.tcp rig.reg in
  let saw_close = ref false in
  spawn rig ~machine:rig.vax (fun () ->
      let l =
        match Ipcs_tcp.listen tcp ~machine:rig.vax ~port:9001 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      match Ipcs_tcp.accept l with
      | Error _ -> Alcotest.fail "accept"
      | Ok conn -> (
        match Ipcs_tcp.recv conn with
        | Error Ipcs_error.Closed -> saw_close := true
        | Error _ | Ok _ -> ()));
  spawn rig ~machine:rig.sun (fun () ->
      match
        Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"vax" ~port:9001)
      with
      | Error _ -> Alcotest.fail "connect"
      | Ok conn -> Ipcs_tcp.close conn);
  run rig;
  Alcotest.(check bool) "FIN surfaced as Closed" true !saw_close

let test_tcp_partition_breaks_send () =
  let rig = make_rig () in
  let tcp = Registry.tcp rig.reg in
  let send_result = ref (Ok ()) in
  spawn rig ~machine:rig.vax (fun () ->
      let l =
        match Ipcs_tcp.listen tcp ~machine:rig.vax ~port:9002 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      ignore (Ipcs_tcp.accept l));
  spawn rig ~machine:rig.sun (fun () ->
      match
        Ipcs_tcp.connect tcp ~machine:rig.sun ~dst:(Phys_addr.tcp ~host:"vax" ~port:9002)
      with
      | Error _ -> Alcotest.fail "connect"
      | Ok conn ->
        rig.lan.Net.up <- false;
        send_result := Ipcs_tcp.send conn (Bytes.of_string "x");
        Alcotest.(check bool) "conn broken" false (Ipcs_tcp.is_open conn));
  run rig;
  Alcotest.(check bool) "send failed" true
    (match !send_result with Error Ipcs_error.Closed -> true | Error _ | Ok () -> false)

let test_tcp_double_listen () =
  let rig = make_rig () in
  let tcp = Registry.tcp rig.reg in
  (match Ipcs_tcp.listen tcp ~machine:rig.vax ~port:9003 with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first listen");
  match Ipcs_tcp.listen tcp ~machine:rig.vax ~port:9003 with
  | Error Ipcs_error.Already_bound -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Ipcs_error.to_string e)
  | Ok _ -> Alcotest.fail "second listen should fail"

(* --- MBX --- *)

let test_mbx_message_boundaries () =
  let rig = make_rig () in
  let mbx = Registry.mbx rig.reg in
  let got = ref [] in
  spawn rig ~machine:rig.apollo1 (fun () ->
      let mb =
        match Ipcs_mbx.create_mailbox mbx ~machine:rig.apollo1 ~path:"//ap1/mbx/test" with
        | Ok mb -> mb
        | Error _ -> Alcotest.fail "create mailbox"
      in
      match Ipcs_mbx.accept mb with
      | Error _ -> Alcotest.fail "accept"
      | Ok chan ->
        for _ = 1 to 3 do
          match Ipcs_mbx.recv ~timeout_us:1_000_000 chan with
          | Ok m -> got := Bytes.to_string m :: !got
          | Error _ -> ()
        done);
  spawn rig ~machine:rig.apollo2 (fun () ->
      match
        Ipcs_mbx.open_chan mbx ~machine:rig.apollo2
          ~dst:(Phys_addr.mbx ~path:"//ap1/mbx/test")
      with
      | Error _ -> Alcotest.fail "open"
      | Ok chan ->
        ignore (Ipcs_mbx.send chan (Bytes.of_string "one"));
        ignore (Ipcs_mbx.send chan (Bytes.of_string "two"));
        ignore (Ipcs_mbx.send chan (Bytes.of_string "three")));
  run rig;
  Alcotest.(check (list string)) "boundaries preserved" [ "one"; "two"; "three" ]
    (List.rev !got)

let test_mbx_too_big_and_refused () =
  let rig = make_rig () in
  let mbx = Registry.mbx rig.reg in
  let results = ref [] in
  spawn rig ~machine:rig.apollo1 (fun () ->
      let mb =
        match Ipcs_mbx.create_mailbox mbx ~machine:rig.apollo1 ~path:"//ap1/mbx/big" with
        | Ok mb -> mb
        | Error _ -> Alcotest.fail "create"
      in
      ignore (Ipcs_mbx.accept mb));
  spawn rig ~machine:rig.apollo2 (fun () ->
      (match
         Ipcs_mbx.open_chan mbx ~machine:rig.apollo2 ~dst:(Phys_addr.mbx ~path:"//no/such")
       with
       | Error e -> results := ("missing", Ipcs_error.to_string e) :: !results
       | Ok _ -> ());
      match
        Ipcs_mbx.open_chan mbx ~machine:rig.apollo2 ~dst:(Phys_addr.mbx ~path:"//ap1/mbx/big")
      with
      | Error _ -> Alcotest.fail "open"
      | Ok chan -> (
        match Ipcs_mbx.send chan (Bytes.make (Ipcs_mbx.max_message_size + 1) 'x') with
        | Error e -> results := ("toobig", Ipcs_error.to_string e) :: !results
        | Ok () -> ()));
  run rig;
  Alcotest.(check (option string)) "missing mailbox" (Some "refused")
    (List.assoc_opt "missing" !results);
  Alcotest.(check (option string)) "too big" (Some "too-big") (List.assoc_opt "toobig" !results)

let test_mbx_queue_full () =
  let rig = make_rig () in
  let mbx = Registry.mbx rig.reg in
  let full_seen = ref false in
  spawn rig ~machine:rig.apollo1 (fun () ->
      let mb =
        match Ipcs_mbx.create_mailbox mbx ~machine:rig.apollo1 ~path:"//ap1/mbx/full" with
        | Ok mb -> mb
        | Error _ -> Alcotest.fail "create"
      in
      ignore (Ipcs_mbx.accept mb);
      Sched.sleep (World.sched rig.world) 60_000_000);
  spawn rig ~machine:rig.apollo2 (fun () ->
      match
        Ipcs_mbx.open_chan mbx ~machine:rig.apollo2 ~dst:(Phys_addr.mbx ~path:"//ap1/mbx/full")
      with
      | Error _ -> Alcotest.fail "open"
      | Ok chan ->
        for _ = 1 to 200 do
          (match Ipcs_mbx.send chan (Bytes.of_string "m") with
           | Error Ipcs_error.Queue_full -> full_seen := true
           | Error _ | Ok () -> ());
          Sched.sleep (World.sched rig.world) 1_000
        done);
  run rig;
  Alcotest.(check bool) "bounded queue refused" true !full_seen

let test_mbx_ring_only () =
  let rig = make_rig () in
  let mbx = Registry.mbx rig.reg in
  spawn rig ~machine:rig.apollo1 (fun () ->
      ignore (Ipcs_mbx.create_mailbox mbx ~machine:rig.apollo1 ~path:"//ap1/mbx/ro"));
  let result = ref (Ok ()) in
  spawn rig ~machine:rig.vax (fun () ->
      Sched.sleep (World.sched rig.world) 1000;
      match
        Ipcs_mbx.open_chan mbx ~machine:rig.vax ~dst:(Phys_addr.mbx ~path:"//ap1/mbx/ro")
      with
      | Error e -> result := Error e
      | Ok _ -> ());
  run rig;
  Alcotest.(check bool) "unreachable across kinds" true
    (match !result with Error Ipcs_error.Unreachable -> true | Error _ | Ok () -> false)

let () =
  Alcotest.run "ntcs_ipcs"
    [
      ( "phys_addr",
        [
          Alcotest.test_case "roundtrip" `Quick test_phys_addr_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_phys_addr_parse_errors;
          Alcotest.test_case "kinds" `Quick test_phys_addr_kind;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect and stream" `Quick test_tcp_connect_and_stream;
          Alcotest.test_case "refused / no host / unreachable" `Quick
            test_tcp_refused_and_no_host;
          Alcotest.test_case "fin detected" `Quick test_tcp_fin_detected;
          Alcotest.test_case "partition breaks send" `Quick test_tcp_partition_breaks_send;
          Alcotest.test_case "double listen" `Quick test_tcp_double_listen;
        ] );
      ( "mbx",
        [
          Alcotest.test_case "message boundaries" `Quick test_mbx_message_boundaries;
          Alcotest.test_case "too big and refused" `Quick test_mbx_too_big_and_refused;
          Alcotest.test_case "queue full" `Quick test_mbx_queue_full;
          Alcotest.test_case "ring only" `Quick test_mbx_ring_only;
        ] );
    ]
