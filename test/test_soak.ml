(* Long-run soak under seeded chaos: continuous traffic across two networks
   while services relocate, the ring partitions and heals, and clients come
   and go. Invariants checked at the end:
   - no process ever crashes (beyond the injected kills);
   - the LCM sequence audit never sees regression or duplication;
   - after the chaos stops, every client can reach every service again. *)

open Ntcs
open Helpers

let services = [ "alpha"; "beta"; "gamma" ]

let service_spec name generation =
  {
    Ntcs_drts.Process_ctl.sp_name = name;
    sp_attrs = [ ("service", name) ];
    sp_body =
      (fun commod ->
        let tag = Printf.sprintf "%s.g%d" name generation in
        let rec loop () =
          (match Ali_layer.receive commod with
           | Ok env when Ali_layer.expects_reply env ->
             ignore (Ali_layer.reply commod env (raw tag))
           | Ok _ | Error _ -> ());
          loop ()
        in
        loop ());
  }

let test_soak () =
  let c = two_net_cluster ~seed:2027 () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let machines = [| "vax1"; "ap1"; "ap2" |] in
  List.iteri
    (fun i name ->
      ignore
        (Ntcs_drts.Process_ctl.start pctl (service_spec name 0)
           ~machine:machines.(i mod Array.length machines)))
    services;
  Cluster.settle ~dt:5_000_000 c;
  (* Client fleet: each loops locate-once + send_sync forever, tolerating
     errors (chaos is expected; crashes are not). *)
  let calls_ok = ref 0 and calls_err = ref 0 in
  let spawn_client i =
    let machine = if i mod 2 = 0 then "vax1" else "ap2" in
    ignore
      (Cluster.spawn c ~machine ~name:(Printf.sprintf "client%d" i) (fun node ->
           let commod = bind_exn node ~name:(Printf.sprintf "client%d" i) in
           let rng = Ntcs_util.Rng.create (1000 + i) in
           let rec loop () =
             let svc = List.nth services (Ntcs_util.Rng.int rng (List.length services)) in
             (match Ali_layer.locate commod svc with
              | Error _ -> incr calls_err
              | Ok addr -> (
                match
                  Ali_layer.send_sync commod ~dst:addr ~timeout_us:4_000_000 (raw "tick")
                with
                | Ok _ -> incr calls_ok
                | Error _ -> incr calls_err));
             Ntcs_sim.Sched.sleep (Node.sched node) (300_000 + Ntcs_util.Rng.int rng 700_000);
             loop ()
           in
           loop ()))
  in
  for i = 0 to 3 do
    spawn_client i
  done;
  (* Chaos driver: every ~4 virtual seconds, one random disruption. *)
  let chaos_rng = Ntcs_util.Rng.create 555 in
  let chaos_until = Ntcs_sim.World.now (Cluster.world c) + 60_000_000 in
  let rec chaos () =
    Ntcs_sim.Sched.after (Cluster.sched c)
      (3_000_000 + Ntcs_util.Rng.int chaos_rng 2_000_000)
      (fun () ->
        if Ntcs_sim.World.now (Cluster.world c) < chaos_until then begin
          (match Ntcs_util.Rng.int chaos_rng 3 with
           | 0 ->
             (* Relocate a random service to a random machine. *)
             let name = List.nth services (Ntcs_util.Rng.int chaos_rng 3) in
             (match Ntcs_drts.Process_ctl.find pctl name with
              | Some m ->
                let dst = Ntcs_util.Rng.pick chaos_rng machines in
                let gen = Ntcs_drts.Process_ctl.generation m + 1 in
                ignore
                  (Ntcs_drts.Process_ctl.relocate pctl
                     { m with Ntcs_drts.Process_ctl.m_spec = service_spec name gen }
                     ~to_machine:dst)
              | None -> ())
           | 1 ->
             (* Short ring partition. *)
             Cluster.partition c "ring";
             Ntcs_sim.Sched.after (Cluster.sched c) 1_500_000 (fun () -> Cluster.heal c "ring")
           | _ ->
             (* Kill and respawn a service in place (fast restart). *)
             let name = List.nth services (Ntcs_util.Rng.int chaos_rng 3) in
             (match Ntcs_drts.Process_ctl.find pctl name with
              | Some m ->
                let here = Ntcs_drts.Process_ctl.machine_of m in
                let gen = Ntcs_drts.Process_ctl.generation m + 1 in
                ignore
                  (Ntcs_drts.Process_ctl.relocate pctl
                     { m with Ntcs_drts.Process_ctl.m_spec = service_spec name gen }
                     ~to_machine:here)
              | None -> ()));
          chaos ()
        end)
  in
  chaos ();
  (* 60 virtual seconds of chaos + 30 of recovery. *)
  Cluster.settle ~dt:95_000_000 c;
  let m = Cluster.metrics c in
  let crashes =
    Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash"
  in
  Alcotest.(check int) "no unexpected crashes" 0 (List.length crashes);
  Alcotest.(check int) "no sequence regressions" 0
    (Ntcs_util.Metrics.get m "lcm.seq_regressions");
  Alcotest.(check bool) "real traffic volume" true (!calls_ok > 100);
  Alcotest.(check bool) "chaos actually disrupted" true
    (Ntcs_util.Metrics.get m "lcm.relocations" >= 2);
  (* Convergence probe: after the dust settles every service answers. *)
  let final = ref [] in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"prober" (fun node ->
         let commod = bind_exn node ~name:"prober" in
         List.iter
           (fun svc ->
             match Ali_layer.locate commod svc with
             | Error e -> final := (svc, "locate:" ^ Errors.to_string e) :: !final
             | Ok addr -> (
               match
                 Ali_layer.send_sync commod ~dst:addr ~timeout_us:8_000_000 (raw "probe")
               with
               | Ok _ -> final := (svc, "ok") :: !final
               | Error e -> final := (svc, Errors.to_string e) :: !final))
           services));
  Cluster.settle ~dt:60_000_000 c;
  List.iter
    (fun svc ->
      Alcotest.(check (option string))
        (Printf.sprintf "%s converged" svc)
        (Some "ok")
        (List.assoc_opt svc !final))
    services

let () =
  Alcotest.run "soak" [ ("chaos", [ Alcotest.test_case "60s chaos soak" `Slow test_soak ]) ]
