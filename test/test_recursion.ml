(* Recursion in the NTCS (§6): the §6.1 first-send scenario with monitoring
   and time correction enabled (E8), and the §6.3 name-server circuit-break
   pathology with and without the LCM guard (E9). *)

open Ntcs
open Helpers

let monitored_config c =
  { (Cluster.config c) with Node.monitoring = true; timestamps = true }

let test_first_send_recursion_scenario () =
  (* §6.1: with monitoring + time correction on, the application's first
     send recursively re-enters the ComMod (time sync, resource location,
     monitor reporting). We count recursive entries via the tracker. *)
  let c = lan_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"monitor" (fun node ->
            Ntcs_drts.Monitor.serve node ()));
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let stats = ref (0, 0, 0) in
  ignore
    (Cluster.spawn c ~config:(monitored_config c) ~machine:"vax1" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"app" in
         (* Install the DRTS hooks: corrected timestamps + monitor reports. *)
         let corrector = Ntcs_drts.Time_service.create commod in
         Ntcs_drts.Time_service.install corrector;
         Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod);
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         (* The measured send: first app-level communication. *)
         ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "first")));
         stats := Ali_layer.recursion_stats commod));
  Cluster.settle ~dt:30_000_000 c;
  let entries, recursive, max_depth = !stats in
  Alcotest.(check bool) "comMod entered many times" true (entries > 3);
  Alcotest.(check bool) "recursive entries observed" true (recursive > 0);
  Alcotest.(check bool) "nested depth beyond 1" true (max_depth >= 2)

let test_naming_recursion_is_inherent () =
  (* Even with monitoring and time correction off, the first send re-enters
     the ComMod through the NSP-layer ("This contacts the naming service for
     network resolution, invoking the NSP-layer recursively again", Â§6.1).
     The DRTS services then add further levels -- the comparison is the
     claim. *)
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let plain = ref (0, 0, 0) in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"plain-app" (fun node ->
         let commod = bind_exn node ~name:"plain-app" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "first")));
         plain := Ali_layer.recursion_stats commod));
  Cluster.settle ~dt:10_000_000 c;
  let _, recursive, max_depth = !plain in
  Alcotest.(check bool) "naming recursion present" true (recursive >= 1);
  Alcotest.(check bool) "depth 2 from NSP re-entry" true (max_depth >= 2);
  (* Now the same exchange with the DRTS services wired in. *)
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"monitor" (fun node ->
            Ntcs_drts.Monitor.serve node ()));
  Cluster.settle c;
  let monitored = ref (0, 0, 0) in
  ignore
    (Cluster.spawn c ~config:(monitored_config c) ~machine:"vax1" ~name:"rich-app"
       (fun node ->
         let commod = bind_exn node ~name:"rich-app" in
         let corrector = Ntcs_drts.Time_service.create commod in
         Ntcs_drts.Time_service.install corrector;
         Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod);
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "first")));
         monitored := Ali_layer.recursion_stats commod));
  Cluster.settle ~dt:30_000_000 c;
  let entries_plain, recursive_plain, _ = !plain in
  let entries_rich, recursive_rich, _ = !monitored in
  Alcotest.(check bool) "services add ComMod entries" true (entries_rich > entries_plain);
  Alcotest.(check bool) "services add recursion" true (recursive_rich > recursive_plain)

let test_monitor_traffic_reaches_monitor () =
  let c = lan_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"monitor" (fun node ->
            Ntcs_drts.Monitor.serve node ()));
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let total = ref 0 in
  ignore
    (Cluster.spawn c ~config:(monitored_config c) ~machine:"vax1" ~name:"app" (fun node ->
         let node = { node with Node.config = { node.Node.config with Node.timestamps = false } } in
         let commod = bind_exn node ~name:"app" in
         Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod);
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         for _ = 1 to 5 do
           ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "x")))
         done;
         Ntcs_sim.Sched.sleep (Node.sched node) 3_000_000;
         let monitor = check_ok "locate monitor" (Ali_layer.locate commod "network-monitor") in
         let stats =
           check_ok "query" (Ntcs_drts.Monitor.query_stats commod ~monitor)
         in
         total := stats.Ntcs_drts.Drts_proto.ms_total));
  Cluster.settle ~dt:30_000_000 c;
  (* 5 monitored send-syncs, each reporting at least one event. *)
  Alcotest.(check bool) "events collected" true (!total >= 5)

(* --- the §6.3 pathology (E9) --- *)

let break_ns_and_send ~guard () =
  let tweak cfg = { cfg with Node.ns_fault_guard = guard; recursion_limit = 40 } in
  let c = lan_cluster ~tweak () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let outcome = ref `Not_run in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"app" in
         let _addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         (* Wait for the name server's machine to be partitioned away. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         (* A fresh lookup now needs the NS: its circuit is dead, the fault
            handler engages. Without the guard, the handler recurses through
            the NSP-layer "until either the stack overflows, or the
            connection can be reestablished". *)
         match Ali_layer.locate commod "never-seen" with
         | Ok _ -> outcome := `Ok
         | Error e -> outcome := `Error e));
  Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.partition c "ether");
  Cluster.settle ~dt:60_000_000 c;
  (c, !outcome)

let test_ns_break_with_guard () =
  let c, outcome = break_ns_and_send ~guard:true () in
  (match outcome with
   | `Error (Errors.Name_service_unavailable | Errors.Timeout | Errors.Circuit_failed
            | Errors.Unreachable) -> ()
   | `Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)
   | `Ok -> Alcotest.fail "lookup cannot succeed while partitioned"
   | `Not_run -> Alcotest.fail "app never finished (recursion hang?)");
  Alcotest.(check bool) "guard engaged" true
    (Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.ns_guard_hits" > 0);
  (* No process died of simulated stack overflow. *)
  let crashes =
    Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash"
  in
  Alcotest.(check int) "no crashes" 0 (List.length crashes)

let test_ns_break_without_guard_overflows () =
  let c, outcome = break_ns_and_send ~guard:false () in
  let crashes =
    Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash"
  in
  (* Either the app crashed with the simulated stack overflow, or the
     recursion was cut by the depth bound and surfaced as an error — both
     demonstrate the §6.3 bug; what must NOT happen is a clean bounded
     name-service-unavailable with zero guard hits and no deep recursion. *)
  let deep = Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.fault_queries" in
  (match outcome with
   | `Not_run ->
     Alcotest.(check bool) "app died in the recursion" true (List.length crashes > 0)
   | `Error _ | `Ok ->
     Alcotest.(check bool) "unbounded fault recursion observed" true (deep >= 5));
  Alcotest.(check int) "guard never engaged" 0
    (Ntcs_util.Metrics.get (Cluster.metrics c) "lcm.ns_guard_hits")

let test_without_monitoring_suppression () =
  (* Suppression is what prevents the "obvious infinite recursion" (§6.1):
     monitor reports made during monitor reports. We verify the suppression
     flag restores correctly even on failure paths. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let ok = ref false in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"app" in
         let lcm = Commod.lcm commod in
         (try
            Lcm_layer.without_monitoring lcm (fun () -> failwith "inner")
          with Failure _ -> ());
         (* A second use must still work and restore. *)
         Lcm_layer.without_monitoring lcm (fun () -> ());
         ok := true));
  Cluster.settle c;
  Alcotest.(check bool) "suppression restores on exceptions" true !ok

let () =
  Alcotest.run "recursion"
    [
      ( "scenario (E8)",
        [
          Alcotest.test_case "first send recursion" `Quick test_first_send_recursion_scenario;
          Alcotest.test_case "naming recursion inherent" `Quick
            test_naming_recursion_is_inherent;
          Alcotest.test_case "monitor collects events" `Quick test_monitor_traffic_reaches_monitor;
        ] );
      ( "ns fault (E9)",
        [
          Alcotest.test_case "guard bounds the fault" `Quick test_ns_break_with_guard;
          Alcotest.test_case "without guard it recurses" `Quick
            test_ns_break_without_guard_overflows;
          Alcotest.test_case "suppression restores" `Quick test_without_monitoring_suppression;
        ] );
    ]
