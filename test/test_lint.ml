(* Self-tests for the ntcs_lint static-analysis pass: the lexer, one
   seeded violation per rule family (R1 layering, R2 determinism, R3 trace
   invariants) asserting the linter fires with the right file:line, and the
   allow-pragma escape hatch. *)

let src file text = Lint_lex.of_string ~file text

let diag_strings ds = List.map Lint_diag.to_string ds

(* --- lexer --- *)

let test_blank () =
  let text = "let a = 1 (* note\n   Foo.bar *)\nlet s = \"Baz.qux\"\nlet c = '\"'\n" in
  let b = Lint_lex.blank text in
  Alcotest.(check int) "same length" (String.length text) (String.length b);
  Alcotest.(check int)
    "same line count"
    (List.length (Lint_lex.lines text))
    (List.length (Lint_lex.lines b));
  Alcotest.(check bool) "comment gone" false
    (List.exists (fun (_, m) -> m = "Foo") (Lint_lex.module_refs (src "x.ml" text)));
  Alcotest.(check bool) "string gone" false
    (List.exists (fun (_, m) -> m = "Baz") (Lint_lex.module_refs (src "x.ml" text)))

let test_nested_comment () =
  let text = "(* a (* nested *) still comment Foo.bar *)\nlet x = Lcm_layer.create\n" in
  let refs = Lint_lex.module_refs (src "x.ml" text) in
  Alcotest.(check (list (pair int string))) "only the real ref" [ (2, "Lcm_layer") ] refs

let test_module_refs () =
  let text = "open Nsp_layer\nlet x = Ntcs_util.Metrics.incr\nlet y = Some 1\n" in
  let refs = Lint_lex.module_refs (src "x.ml" text) in
  Alcotest.(check (list (pair int string)))
    "open + head of path, constructors skipped"
    [ (1, "Nsp_layer"); (2, "Ntcs_util") ]
    refs

let test_pragma_parse () =
  let text =
    "(* lint: allow layering(Commod) \xe2\x80\x94 documented exception *)\n\
     let x = 1\n\
     (* lint: allow-file determinism -- whole file *)\n"
  in
  let ps, bad = Lint_lex.pragmas (src "x.ml" text) in
  Alcotest.(check int) "no malformed" 0 (List.length bad);
  Alcotest.(check int) "two pragmas" 2 (List.length ps);
  let p1 = List.nth ps 0 and p2 = List.nth ps 1 in
  Alcotest.(check bool) "line scope" false p1.Lint_lex.p_file_scope;
  Alcotest.(check (option string)) "arg" (Some "Commod") p1.Lint_lex.p_arg;
  Alcotest.(check bool) "file scope" true p2.Lint_lex.p_file_scope;
  Alcotest.(check (option string)) "no arg" None p2.Lint_lex.p_arg;
  Alcotest.(check bool) "covers own line"
    true
    (Lint_lex.pragma_allows ps ~rule:"layering" ~arg:"Commod" ~line:1);
  Alcotest.(check bool) "covers next line"
    true
    (Lint_lex.pragma_allows ps ~rule:"layering" ~arg:"Commod" ~line:2);
  Alcotest.(check bool) "not two lines down"
    false
    (Lint_lex.pragma_allows ps ~rule:"layering" ~arg:"Commod" ~line:3);
  Alcotest.(check bool) "file scope covers everything"
    true
    (Lint_lex.pragma_allows ps ~rule:"determinism" ~arg:"Hashtbl.iter" ~line:99)

let test_pragma_malformed () =
  let text = "(* lint: allow layering(Commod) *)\n(* lint: allow determinism \xe2\x80\x94 *)\n" in
  let ps, bad = Lint_lex.pragmas (src "x.ml" text) in
  Alcotest.(check int) "none parse" 0 (List.length ps);
  Alcotest.(check (list string))
    "both reported with file:line"
    [
      "x.ml:1: [pragma] malformed pragma: missing \xe2\x80\x94 separator before the reason";
      "x.ml:2: [pragma] malformed pragma: missing reason after the separator";
    ]
    (diag_strings bad);
  (* Documentation that merely mentions the syntax is not a pragma. *)
  let doc = "(* write e.g. lint: allow layering(Foo) to suppress *)\n" in
  let ps, bad = Lint_lex.pragmas (src "x.ml" doc) in
  Alcotest.(check int) "mid-comment mention ignored" 0 (List.length ps + List.length bad)

(* --- R1: layering --- *)

let test_r1_upward_reference () =
  let text = "let boot () =\n  Lcm_layer.create ()\n" in
  let ds = Lint_layering.check (src "lib/core/nd_layer.ml" text) in
  Alcotest.(check (list string))
    "upward reference reported at file:line"
    [
      "lib/core/nd_layer.ml:2: [layering] Nd_layer (ND, rank 2) references Lcm_layer (LCM, \
       rank 4): layers only call downward";
    ]
    (diag_strings ds);
  (* Downward is fine. *)
  let ds = Lint_layering.check (src "lib/core/lcm_layer.ml" "let x = Ip_layer.send\n") in
  Alcotest.(check int) "downward clean" 0 (List.length ds);
  (* The pragma silences it. *)
  let text = "(* lint: allow layering(Lcm_layer) \xe2\x80\x94 test exception *)\nlet b = Lcm_layer.create\n" in
  let ds = Lint_layering.check (src "lib/core/nd_layer.ml" text) in
  Alcotest.(check int) "pragma suppresses" 0 (List.length ds)

let test_r1_backend_naming () =
  let ds = Lint_layering.check (src "lib/core/lcm_layer.ml" "let x = Ipcs_tcp.connect\n") in
  Alcotest.(check int) "LCM may not name a backend" 1 (List.length ds);
  Alcotest.(check string) "right rule" "layering" (List.hd ds).Lint_diag.rule;
  let ds = Lint_layering.check (src "lib/core/std_if.ml" "let x = Ipcs_tcp.connect\n") in
  Alcotest.(check int) "Std_if may" 0 (List.length ds);
  let ds = Lint_layering.check (src "lib/ipcs/registry.ml" "let x = Ipcs_mbx.create\n") in
  Alcotest.(check int) "lib/ipcs may" 0 (List.length ds)

let test_r1_conversion_selection () =
  let ds = Lint_layering.check (src "lib/core/lcm_layer.ml" "let m = Convert.choose a b\n") in
  Alcotest.(check (list string))
    "conversion selected above IP"
    [
      "lib/core/lcm_layer.ml:1: [layering] Lcm_layer calls Convert.choose: only Ip_layer \
       selects a conversion mode (\xc2\xa75)";
    ]
    (diag_strings ds);
  let ds = Lint_layering.check (src "lib/core/ip_layer.ml" "let m = Convert.choose a b\n") in
  Alcotest.(check int) "Ip_layer may" 0 (List.length ds)

let test_r1_retry_discipline () =
  let text = "let backoff sched = Sched.sleep sched 50_000\n" in
  let ds = Lint_layering.check (src "lib/core/lcm_layer.ml" text) in
  Alcotest.(check (list string))
    "ad-hoc sleep in lib/core flagged"
    [
      "lib/core/lcm_layer.ml:1: [layering] Lcm_layer calls Sched.sleep: lib/core recovers \
       through Retry.run, not ad-hoc sleeps";
    ]
    (diag_strings ds);
  Alcotest.(check int) "Retry itself may sleep" 0
    (List.length (Lint_layering.check (src "lib/core/retry.ml" text)));
  Alcotest.(check int) "applications may sleep" 0
    (List.length (Lint_layering.check (src "lib/drts/time_service.ml" text)));
  (* Unix.sleep is a determinism violation everywhere. *)
  Alcotest.(check int) "Unix.sleep everywhere" 1
    (List.length (Lint_determinism.check (src "lib/util/x.ml" "let () = Unix.sleep 1\n")))

(* --- R2: determinism --- *)

let test_r2_forbidden_calls () =
  let text = "let a tbl = Hashtbl.iter f tbl\nlet b () = Obj.magic 0\n" in
  let ds = Lint_determinism.check (src "lib/core/lcm_layer.ml" text) in
  Alcotest.(check (list string))
    "both reported with file:line"
    [
      "lib/core/lcm_layer.ml:1: [determinism] Hashtbl.iter: hash-order iteration is \
       nondeterministic; use Ntcs_util.sorted_bindings";
      "lib/core/lcm_layer.ml:2: [determinism] Obj.magic: defeats the type system; never on \
       a protocol path";
    ]
    (diag_strings ds)

let test_r2_scope_and_pragma () =
  (* Hashtbl rules apply only on protocol paths... *)
  let text = "let a tbl = Hashtbl.fold f tbl []\n" in
  Alcotest.(check int) "lib/util exempt" 0
    (List.length (Lint_determinism.check (src "lib/util/tbl.ml" text)));
  Alcotest.(check int) "protocol path flagged" 1
    (List.length (Lint_determinism.check (src "lib/sim/sched.ml" text)));
  (* ...but the wall-clock/unsafe rules apply everywhere. *)
  Alcotest.(check int) "Unix.gettimeofday everywhere" 1
    (List.length
       (Lint_determinism.check (src "lib/util/x.ml" "let t = Unix.gettimeofday ()\n")));
  (* Escape hatch. *)
  let text =
    "(* lint: allow determinism(Hashtbl.fold) \xe2\x80\x94 snapshot, order irrelevant *)\n\
     let a tbl = Hashtbl.fold f tbl []\n"
  in
  Alcotest.(check int) "pragma suppresses" 0
    (List.length (Lint_determinism.check (src "lib/sim/sched.ml" text)));
  (* Word boundaries: prefixes and strings don't fire. *)
  let text = "let a = My_hashtbl.iter\nlet b = \"Hashtbl.iter\"\n" in
  Alcotest.(check int) "no false positives" 0
    (List.length (Lint_determinism.check (src "lib/sim/sched.ml" text)))

(* --- R3: trace invariants --- *)

let e ?(at = 0) cat actor detail =
  { Ntcs_sim.Trace.at_us = at; cat; actor; detail }

let gw_world =
  [
    e "gw.addr" "gwA" "U900.1";
    e "gw.addr" "gwB" "U901.1";
    e "gw.up" "gwA" "bridging nets [0,1]";
  ]

let test_r3_gateway_peering () =
  (* Clean: a chain through gwA terminating at an application address. *)
  let clean =
    gw_world
    @ [
        e "nd.open" "gw/gwA@1" "U901.1 at mbx:ring/7";
        e "gw.splice" "gwA" "net0 label 3 <-> net1 label 4 dst=U55.9";
        e "gw.forward" "gwA" "net0 label 3 -> net1 label 4 kind=msg dst=U55.9";
      ]
  in
  Alcotest.(check int) "chain through a gateway is legal" 0
    (List.length (Lint_trace.no_gateway_peering clean));
  (* Violation: a chain terminating at a gateway address. *)
  let bad = gw_world @ [ e "gw.splice" "gwA" "net0 label 3 <-> net1 label 4 dst=U901.1" ] in
  (match Lint_trace.no_gateway_peering bad with
   | [ v ] -> Alcotest.(check string) "invariant name" "gateway-peering" v.Lint_trace.v_invariant
   | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* Forwarded payload toward a gateway: violation. Replies flowing back to
     a gateway-originated chain: legal. *)
  let bad = gw_world @ [ e "gw.forward" "gwA" "net0 label 3 -> net1 label 4 kind=data dst=U901.1" ] in
  Alcotest.(check int) "payload toward a gateway" 1
    (List.length (Lint_trace.no_gateway_peering bad));
  let ok = gw_world @ [ e "gw.forward" "gwA" "net0 label 3 -> net1 label 4 kind=reply dst=U901.1" ] in
  Alcotest.(check int) "replies back to a gateway-originated chain" 0
    (List.length (Lint_trace.no_gateway_peering ok));
  (* Violation: a gateway ComMod opens an IVC to another gateway. *)
  let bad = gw_world @ [ e "ip.ivc_open" "gw/gwA@0" "to U901.1 via 1 hop(s)" ] in
  Alcotest.(check int) "gateway IVC to gateway" 1
    (List.length (Lint_trace.no_gateway_peering bad));
  (* Violation: a gateway-to-gateway circuit with no chain to justify it. *)
  let bad = gw_world @ [ e "nd.open" "gw/gwA@1" "U901.1 at mbx:ring/7" ] in
  Alcotest.(check int) "chainless circuit between gateways" 1
    (List.length (Lint_trace.no_gateway_peering bad));
  (* Ordinary modules may open circuits to gateways, of course. *)
  let ok = gw_world @ [ e "nd.open" "client" "U900.1 at tcp:ether/2" ] in
  Alcotest.(check int) "apps reach gateways freely" 0
    (List.length (Lint_trace.no_gateway_peering ok))

let test_r3_recursion_depth () =
  let entries = [ e "lcm.depth" "vax1/ns" "3"; e ~at:7 "lcm.depth" "vax1/ns" "70" ] in
  (match Lint_trace.recursion_bounded ~limit:64 entries with
   | [ v ] ->
     Alcotest.(check string) "invariant" "recursion-depth" v.Lint_trace.v_invariant;
     Alcotest.(check int) "timestamped" 7 v.Lint_trace.v_at_us
   | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  Alcotest.(check int) "within bound clean" 0
    (List.length (Lint_trace.recursion_bounded ~limit:70 entries))

let test_r3_identity_conversion () =
  let ok =
    [
      e "ip.convert" "vax1/a" "mode=image local=be remote=be dst=U5.1";
      e "ip.convert" "vax1/a" "mode=packed local=be remote=le dst=U5.2";
      e "ip.convert" "vax1/a" "mode=packed local=be remote=be dst=U5.3 forced";
    ]
  in
  Alcotest.(check int) "image/equal, packed/mixed, forced all legal" 0
    (List.length (Lint_trace.no_identity_conversion ok));
  let bad =
    [
      e "ip.convert" "vax1/a" "mode=packed local=be remote=be dst=U5.1";
      e "ip.convert" "vax1/a" "mode=image local=le remote=be dst=U5.2";
    ]
  in
  Alcotest.(check int) "both degenerate modes flagged" 2
    (List.length (Lint_trace.no_identity_conversion bad));
  Alcotest.(check int) "check_all aggregates" 2
    (List.length (Lint_trace.check_all ~recursion_limit:64 bad))

(* --- R6: frame ownership --- *)

let test_r6_use_after_release () =
  let text =
    "let send pool =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  Pool.release pool b;\n\
    \  Bytes.set b 0 'x'\n"
  in
  Alcotest.(check (list string))
    "use after release flagged at the use site"
    [
      "lib/core/own.ml:4: [ownership] b: used after release (line 3) \xe2\x80\x94 the buffer \
       may already be recycled";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_double_release () =
  let text =
    "let f pool =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  Pool.release pool b;\n\
    \  Pool.release pool b\n"
  in
  Alcotest.(check (list string))
    "second release flagged"
    [ "lib/core/own.ml:4: [ownership] b: released again (first released at line 3)" ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_leak () =
  let text = "let f pool =\n  let b = Pool.alloc pool 64 in\n  ignore b\n" in
  Alcotest.(check (list string))
    "missing release flagged at the alloc"
    [
      "lib/core/own.ml:2: [ownership] b: pooled buffer is never released, returned or \
       handed off";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_exception_path () =
  let text =
    "let f pool n =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  if n > 9 then failwith \"bad\";\n\
    \  Pool.release pool b\n"
  in
  Alcotest.(check (list string))
    "raise between alloc and release flagged"
    [
      "lib/core/own.ml:3: [ownership] b: raise between alloc (line 2) and release (line 4) \
       \xe2\x80\x94 the exception path leaks the buffer";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_view_after_release () =
  let text =
    "let f pool h payload =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  let v = Proto.Frame.encode_into h ~payload b ~off:0 in\n\
    \  Pool.release pool b;\n\
    \  ignore (Proto.Frame.header v)\n"
  in
  Alcotest.(check (list string))
    "stale view flagged"
    [
      "lib/core/own.ml:5: [ownership] v: view used after its buffer b was released (line 4)";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_summaries () =
  (* One interprocedural level: a helper that tail-returns its allocation
     transfers ownership to the caller; a helper that releases a parameter
     consumes at the call site. *)
  let text =
    "let make pool =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  b\n\
     \n\
     let use pool =\n\
    \  let q = make pool in\n\
    \  ignore q\n\
     \n\
     let free pool b = Pool.release pool b\n\
     \n\
     let ok pool =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  free pool b\n"
  in
  Alcotest.(check (list string))
    "returns-ownership leaks at the caller; consuming helper releases"
    [
      "lib/core/own.ml:6: [ownership] q: pooled buffer is never released, returned or \
       handed off";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r6_clean_hot_path () =
  (* The canonical send shape must stay diagnostic-free: alloc, encode a
     view over it, send, release, return the result. *)
  let text =
    "let send_frame c h payload pool =\n\
    \  let buf = Pool.alloc pool 128 in\n\
    \  let v = Proto.Frame.encode_into h ~payload buf ~off:0 in\n\
    \  let r = send_view c v buf in\n\
    \  Pool.release pool buf;\n\
    \  r\n"
  in
  Alcotest.(check (list string)) "clean" []
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

(* --- R7: escapes --- *)

let test_r7_escape () =
  let text =
    "let f pool tbl k =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  Hashtbl.replace tbl k b\n"
  in
  Alcotest.(check (list string))
    "store into a Hashtbl flagged"
    [
      "lib/core/own.ml:3: [escape] b: stored into a long-lived structure (Hashtbl.replace) \
       without an ownership pragma";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)));
  (* The sanctioned form: a pragma with a reason. The escape also counts as
     a hand-off, so no leak diagnostic either. *)
  let text =
    "let f pool tbl k =\n\
    \  let b = Pool.alloc pool 64 in\n\
    \  (* lint: allow escape(b) \xe2\x80\x94 retained until the table entry is evicted *)\n\
    \  Hashtbl.replace tbl k b\n"
  in
  Alcotest.(check (list string)) "pragma sanctions the escape" []
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

let test_r7_mailbox_send () =
  let text =
    "let f pool inbox =\n\
    \  let v = Proto.Frame.of_bytes raw in\n\
    \  Sched.Mailbox.send inbox v\n"
  in
  Alcotest.(check (list string))
    "view queued into a mailbox flagged"
    [
      "lib/core/own.ml:3: [escape] v: stored into a long-lived structure (Mailbox.send) \
       without an ownership pragma";
    ]
    (diag_strings (Lint_ownership.check (src "lib/core/own.ml" text)))

(* --- R8: domain safety (shared-state ownership map) --- *)

(* A module-level ref in lib/sim, referenced from a lib/core file: the
   holder is reachable from per-machine code, so the binding is an R8
   violation — pinned at the allocating line of a multi-line RHS. *)
let test_r8_ambient_reachable () =
  let holder =
    src "lib/sim/counter_store.ml" "let counter =\n  ref 0\n\nlet peek () = !counter\n"
  in
  let user = src "lib/core/some_layer.ml" "let bump () = incr Counter_store.counter\n" in
  Alcotest.(check (list string))
    "flagged at the ref, not the let"
    [
      "lib/sim/counter_store.ml:2: [domsafe] module-level mutable binding 'counter' \
       (ref) is ambient-global and reachable from per-machine code; move it into \
       World/Node state or add `lint: allow domsafe(counter)` with the migration story";
    ]
    (diag_strings (Lint_domsafe.check [ holder; user ]))

(* Functions and closure-captured state are per-call / per-value, not
   module-level: none of these are bindings. *)
let test_r8_functions_skipped () =
  let holder =
    src "lib/sim/counter_store.ml"
      "let lookup tbl k = Hashtbl.find_opt tbl k\n\n\
       let make () = ref 0\n\n\
       let scenario =\n\
      \  let cell = ref 0 in\n\
      \  fun () -> incr cell\n"
  in
  let user = src "lib/core/some_layer.ml" "let go () = Counter_store.scenario ()\n" in
  Alcotest.(check (list string)) "no module-level mutable bindings" []
    (diag_strings (Lint_domsafe.check [ holder; user ]));
  Alcotest.(check int) "inventory agrees: zero binding entries" 0
    (List.length
       (List.filter
          (fun e -> e.Lint_domsafe.d_scope = Lint_domsafe.Binding)
          (Lint_domsafe.inventory [ holder; user ])))

(* Unreferenced from any per-machine module: still inventoried as
   ambient-global, but not a violation. *)
let test_r8_unreachable_inventoried () =
  let holder = src "lib/sim/counter_store.ml" "let counter = ref 0\n" in
  Alcotest.(check (list string)) "no diagnostics" []
    (diag_strings (Lint_domsafe.check [ holder ]));
  match Lint_domsafe.inventory [ holder ] with
  | [ e ] ->
    Alcotest.(check string) "class" "ambient-global"
      (Lint_domsafe.class_name e.Lint_domsafe.d_class);
    Alcotest.(check bool) "not reachable" false e.Lint_domsafe.d_reachable
  | es -> Alcotest.failf "expected one inventory entry, got %d" (List.length es)

(* The resolved call graph is injected by the driver (ntcs_lint passes
   Check_graph's hook-aware edges): an edge from a ranked module makes
   the holder reachable even with no lexical reference in the sources. *)
let test_r8_resolved_graph_override () =
  let holder = src "lib/sim/counter_store.ml" "let counter = ref 0\n" in
  Alcotest.(check int) "edge from Lcm_layer makes it a violation" 1
    (List.length
       (Lint_domsafe.check ~graph:[ ("Lcm_layer", "Counter_store") ] [ holder ]));
  Alcotest.(check int) "no edge, no violation" 0
    (List.length (Lint_domsafe.check ~graph:[] [ holder ]))

let test_r8_pragma_waives () =
  let holder =
    src "lib/sim/counter_store.ml"
      "(* lint: allow domsafe(counter) \xe2\x80\x94 sharded per domain at spawn *)\n\
       let counter = ref 0\n"
  in
  let user = src "lib/core/some_layer.ml" "let bump () = incr Counter_store.counter\n" in
  Alcotest.(check (list string)) "waived" []
    (diag_strings (Lint_domsafe.check [ holder; user ]));
  match Lint_domsafe.inventory [ holder; user ] with
  | [ e ] ->
    Alcotest.(check (option string))
      "reason recorded in the inventory"
      (Some "sharded per domain at spawn") e.Lint_domsafe.d_waived
  | es -> Alcotest.failf "expected one inventory entry, got %d" (List.length es)

(* Mutable record fields are the state the refactor threads through
   domains: classified by holder path, never violations. *)
let test_r8_fields_classified () =
  let machine = src "lib/core/some_layer.ml" "type t = { mutable seq : int }\n" in
  let world =
    src "lib/sim/counter_store.ml" "type 'a cell = {\n  mutable value : 'a;\n}\n"
  in
  Alcotest.(check (list string)) "fields never fire R8" []
    (diag_strings (Lint_domsafe.check [ machine; world ]));
  let render e =
    Printf.sprintf "%s:%d %s %s" e.Lint_domsafe.d_file e.Lint_domsafe.d_line
      e.Lint_domsafe.d_name
      (Lint_domsafe.class_name e.Lint_domsafe.d_class)
  in
  Alcotest.(check (list string))
    "field lines, names and classes"
    [
      "lib/core/some_layer.ml:1 t.seq machine-local";
      "lib/sim/counter_store.ml:2 cell.value world-local";
    ]
    (List.sort compare (List.map render (Lint_domsafe.inventory [ machine; world ])))

let test_r8_map_json () =
  let holder =
    src "lib/sim/counter_store.ml"
      "let counter = ref 0\n\ntype t = { mutable hits : int }\n"
  in
  Alcotest.(check string) "ownership-map schema"
    "{\"schema\":\"ntcs.lint.ownership-map/1\",\"entries\":[{\"file\":\"lib/sim/counter_store.ml\",\"line\":1,\"module\":\"Counter_store\",\"name\":\"counter\",\"ctor\":\"ref\",\"scope\":\"binding\",\"class\":\"ambient-global\",\"reachable\":false,\"waived\":null},{\"file\":\"lib/sim/counter_store.ml\",\"line\":3,\"module\":\"Counter_store\",\"name\":\"t.hits\",\"ctor\":\"mutable\",\"scope\":\"field\",\"class\":\"world-local\",\"reachable\":false,\"waived\":null}]}"
    (Lint_domsafe.map_to_json (Lint_domsafe.inventory [ holder ]))

(* --- the repo itself stays clean --- *)

let test_repo_sources_clean () =
  (* `dune build @lint` enforces this too; asserting it here keeps the
     property visible in the unit suite (and exercises lint_paths against
     the real tree when run from the repo root). *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then
    Alcotest.(check (list string)) "no violations in lib/" []
      (diag_strings (Lint.lint_paths [ "lib" ]))

let () =
  Alcotest.run "lint"
    [
      ( "lexer",
        [
          Alcotest.test_case "blanking" `Quick test_blank;
          Alcotest.test_case "nested comments" `Quick test_nested_comment;
          Alcotest.test_case "module refs" `Quick test_module_refs;
          Alcotest.test_case "pragma parse" `Quick test_pragma_parse;
          Alcotest.test_case "pragma malformed" `Quick test_pragma_malformed;
        ] );
      ( "r1-layering",
        [
          Alcotest.test_case "upward reference" `Quick test_r1_upward_reference;
          Alcotest.test_case "backend naming" `Quick test_r1_backend_naming;
          Alcotest.test_case "conversion selection" `Quick test_r1_conversion_selection;
          Alcotest.test_case "retry discipline" `Quick test_r1_retry_discipline;
        ] );
      ( "r2-determinism",
        [
          Alcotest.test_case "forbidden calls" `Quick test_r2_forbidden_calls;
          Alcotest.test_case "scope + pragma" `Quick test_r2_scope_and_pragma;
        ] );
      ( "r3-trace",
        [
          Alcotest.test_case "gateway peering" `Quick test_r3_gateway_peering;
          Alcotest.test_case "recursion depth" `Quick test_r3_recursion_depth;
          Alcotest.test_case "identity conversion" `Quick test_r3_identity_conversion;
        ] );
      ( "r6-ownership",
        [
          Alcotest.test_case "use after release" `Quick test_r6_use_after_release;
          Alcotest.test_case "double release" `Quick test_r6_double_release;
          Alcotest.test_case "leak" `Quick test_r6_leak;
          Alcotest.test_case "exception path" `Quick test_r6_exception_path;
          Alcotest.test_case "view after release" `Quick test_r6_view_after_release;
          Alcotest.test_case "function summaries" `Quick test_r6_summaries;
          Alcotest.test_case "clean hot path" `Quick test_r6_clean_hot_path;
        ] );
      ( "r7-escape",
        [
          Alcotest.test_case "hashtbl store + pragma" `Quick test_r7_escape;
          Alcotest.test_case "mailbox send" `Quick test_r7_mailbox_send;
        ] );
      ( "r8-domsafe",
        [
          Alcotest.test_case "ambient + reachable" `Quick test_r8_ambient_reachable;
          Alcotest.test_case "functions skipped" `Quick test_r8_functions_skipped;
          Alcotest.test_case "unreachable inventoried" `Quick
            test_r8_unreachable_inventoried;
          Alcotest.test_case "resolved graph override" `Quick
            test_r8_resolved_graph_override;
          Alcotest.test_case "pragma waives" `Quick test_r8_pragma_waives;
          Alcotest.test_case "fields classified" `Quick test_r8_fields_classified;
          Alcotest.test_case "ownership map json" `Quick test_r8_map_json;
        ] );
      ("repo", [ Alcotest.test_case "lib/ clean" `Quick test_repo_sources_clean ]);
    ]
