(* Tests for the data-conversion library (§5): endian primitives, image mode
   (including cross-representation garbling), packed mode, shift mode, and
   mode selection. *)

open Ntcs_wire

let test_endian_u16_u32_u64 () =
  let check_roundtrip order v width =
    let buf = Buffer.create 8 in
    (match width with
     | 16 -> Endian.put_u16 ~order buf v
     | 32 -> Endian.put_u32 ~order buf v
     | _ -> Endian.put_u64 ~order buf v);
    let b = Buffer.to_bytes buf in
    let back =
      match width with
      | 16 -> Endian.get_u16 ~order b 0
      | 32 -> Endian.get_u32 ~order b 0
      | _ -> Endian.get_u64 ~order b 0
    in
    Alcotest.(check int) (Printf.sprintf "u%d %s" width (Endian.order_to_string order)) v back
  in
  List.iter
    (fun order ->
      check_roundtrip order 0 16;
      check_roundtrip order 0xBEEF 16;
      check_roundtrip order 0xDEADBEEF 32;
      check_roundtrip order 0x1122334455667788 64)
    [ Endian.Le; Endian.Be ]

let test_endian_byte_layout () =
  let buf = Buffer.create 4 in
  Endian.put_u32 ~order:Endian.Be buf 0x01020304;
  Alcotest.(check string) "big endian bytes" "\x01\x02\x03\x04" (Buffer.contents buf);
  let buf = Buffer.create 4 in
  Endian.put_u32 ~order:Endian.Le buf 0x01020304;
  Alcotest.(check string) "little endian bytes" "\x04\x03\x02\x01" (Buffer.contents buf)

let test_endian_sign_extension () =
  Alcotest.(check int) "sign8" (-1) (Endian.sign8 0xFF);
  Alcotest.(check int) "sign8 positive" 127 (Endian.sign8 0x7F);
  Alcotest.(check int) "sign16" (-2) (Endian.sign16 0xFFFE);
  Alcotest.(check int) "sign32" (-1) (Endian.sign32 0xFFFFFFFF);
  Alcotest.(check int) "sign32 positive" 0x7FFFFFFF (Endian.sign32 0x7FFFFFFF)

(* --- image mode --- *)

let sample_layout =
  [ Layout.F_i32; Layout.F_i16; Layout.F_i8; Layout.F_char_array 8; Layout.F_i64 ]

let sample_values =
  [ Layout.V_int 123456; Layout.V_int (-42); Layout.V_int 7; Layout.V_str "ursa";
    Layout.V_int 987654321 ]

let test_layout_roundtrip_same_order () =
  List.iter
    (fun order ->
      let img = Layout.encode ~order sample_layout sample_values in
      Alcotest.(check int) "image size" (Layout.size sample_layout) (Bytes.length img);
      let back = Layout.decode ~order sample_layout img in
      Alcotest.(check bool) "values preserved" true
        (List.for_all2 Layout.value_equal sample_values back))
    [ Endian.Le; Endian.Be ]

let test_layout_cross_order_garbles () =
  (* The §5 hazard made concrete: a VAX image read by a Sun is garbage. *)
  let img = Layout.encode ~order:Endian.Le [ Layout.F_i32 ] [ Layout.V_int 0x01020304 ] in
  match Layout.decode ~order:Endian.Be [ Layout.F_i32 ] img with
  | [ Layout.V_int v ] -> Alcotest.(check int) "byte-swapped" 0x04030201 v
  | _ -> Alcotest.fail "decode shape"

let test_layout_strings_safe_across_orders () =
  (* Character data has no byte-order problem — why the paper's packed mode
     can use a character transport format. *)
  let img = Layout.encode ~order:Endian.Le [ Layout.F_char_array 6 ] [ Layout.V_str "abc" ] in
  match Layout.decode ~order:Endian.Be [ Layout.F_char_array 6 ] img with
  | [ Layout.V_str s ] -> Alcotest.(check string) "chars survive" "abc" s
  | _ -> Alcotest.fail "decode shape"

let test_layout_errors () =
  Alcotest.(check bool) "too few values" true
    (match Layout.encode ~order:Endian.Le [ Layout.F_i32 ] [] with
     | exception Layout.Layout_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "wrong value type" true
    (match Layout.encode ~order:Endian.Le [ Layout.F_i32 ] [ Layout.V_str "x" ] with
     | exception Layout.Layout_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "oversized string" true
    (match
       Layout.encode ~order:Endian.Le [ Layout.F_char_array 2 ] [ Layout.V_str "xyz" ]
     with
     | exception Layout.Layout_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "size mismatch on decode" true
    (match Layout.decode ~order:Endian.Le [ Layout.F_i32 ] (Bytes.create 3) with
     | exception Layout.Layout_error _ -> true
     | _ -> false)

(* --- packed mode --- *)

let test_packed_primitives () =
  let roundtrip codec v = Packed.run_unpack codec (Packed.run_pack codec v) in
  Alcotest.(check int) "int" (-12345) (roundtrip Packed.int (-12345));
  Alcotest.(check bool) "bool t" true (roundtrip Packed.bool true);
  Alcotest.(check bool) "bool f" false (roundtrip Packed.bool false);
  Alcotest.(check (float 0.)) "float exact" 3.14159 (roundtrip Packed.float 3.14159);
  Alcotest.(check string) "string" "hello\nworld\x00!" (roundtrip Packed.string "hello\nworld\x00!");
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (roundtrip (Packed.list Packed.int) [ 1; 2; 3 ]);
  Alcotest.(check (pair int string)) "pair" (1, "x")
    (roundtrip (Packed.pair Packed.int Packed.string) (1, "x"));
  Alcotest.(check (option int)) "option some" (Some 9)
    (roundtrip (Packed.option Packed.int) (Some 9));
  Alcotest.(check (option int)) "option none" None (roundtrip (Packed.option Packed.int) None)

let test_packed_unpack_errors () =
  let expect_err data codec =
    match Packed.run_unpack_result codec (Bytes.of_string data) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected unpack error"
  in
  expect_err "" Packed.int;
  expect_err "notanint\n" Packed.int;
  expect_err "5\nab\n" Packed.string (* truncated raw block *);
  expect_err "X\n" Packed.bool;
  expect_err "1\n2\n" Packed.int (* trailing bytes *)

let test_packed_of_layout_matches_image_semantics () =
  let codec = Packed.of_layout sample_layout in
  let bytes = Packed.run_pack codec sample_values in
  let back = Packed.run_unpack codec bytes in
  Alcotest.(check bool) "values preserved" true
    (List.for_all2 Layout.value_equal sample_values back)

let test_packed_is_order_independent () =
  (* The packed transport format contains no machine representation at all:
     the same bytes decode identically anywhere. *)
  let codec = Packed.of_layout [ Layout.F_i32 ] in
  let bytes = Packed.run_pack codec [ Layout.V_int 0x01020304 ] in
  Alcotest.(check bool) "character transport" true
    (String.length (Bytes.to_string bytes) > 4);
  match Packed.run_unpack codec bytes with
  | [ Layout.V_int v ] -> Alcotest.(check int) "exact" 0x01020304 v
  | _ -> Alcotest.fail "shape"

let test_packed_tagged () =
  let codec =
    Packed.tagged
      [
        ( "i",
          (function `I v -> Some (fun buf -> Packed.int.Packed.pack buf v) | `S _ -> None),
          fun cur -> `I (Packed.int.Packed.unpack cur) );
        ( "s",
          (function `S v -> Some (fun buf -> Packed.string.Packed.pack buf v) | `I _ -> None),
          fun cur -> `S (Packed.string.Packed.unpack cur) );
      ]
  in
  Alcotest.(check bool) "int case" true
    (Packed.run_unpack codec (Packed.run_pack codec (`I 5)) = `I 5);
  Alcotest.(check bool) "string case" true
    (Packed.run_unpack codec (Packed.run_pack codec (`S "v")) = `S "v");
  match Packed.run_unpack_result codec (Packed.run_pack Packed.string "zz") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag must fail"

(* --- shift mode --- *)

let test_shift_words () =
  let words = [| 0; 1; 0xFFFFFFFF; 0x80000000; 0x12345678 |] in
  let b = Shift.encode_words words in
  Alcotest.(check int) "4 bytes per word" (4 * Array.length words) (Bytes.length b);
  let back = Shift.decode_words b ~off:0 ~count:(Array.length words) in
  Alcotest.(check (array int)) "roundtrip" words back

let test_shift_is_order_free () =
  (* Shift mode always produces the same byte sequence — no host order
     involved, by construction. *)
  let b = Shift.encode_words [| 0x01020304 |] in
  Alcotest.(check string) "canonical bytes" "\x01\x02\x03\x04" (Bytes.to_string b)

let test_shift_errors () =
  Alcotest.(check bool) "word too large" true
    (match Shift.encode_words [| 1 lsl 32 |] with
     | exception Shift.Shift_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "negative word" true
    (match Shift.encode_words [| -1 |] with exception Shift.Shift_error _ -> true | _ -> false);
  Alcotest.(check bool) "truncated read" true
    (match Shift.decode_words (Bytes.create 3) ~off:0 ~count:1 with
     | exception Shift.Shift_error _ -> true
     | _ -> false)

let test_bitfields () =
  let word = Shift.pack_bits [ (0xAB, 8); (0x3, 4); (0x7FF, 12); (0xFF, 8) ] in
  Alcotest.(check (list int)) "unpack" [ 0xAB; 0x3; 0x7FF; 0xFF ]
    (Shift.unpack_bits word [ 8; 4; 12; 8 ]);
  Alcotest.(check bool) "sum must be 32" true
    (match Shift.pack_bits [ (1, 8) ] with exception Shift.Shift_error _ -> true | _ -> false);
  Alcotest.(check bool) "value must fit" true
    (match Shift.pack_bits [ (256, 8); (0, 24) ] with
     | exception Shift.Shift_error _ -> true
     | _ -> false)

(* --- mode selection --- *)

let test_mode_selection () =
  let vax = { Convert.repr_name = "vax"; order = Endian.Le } in
  let sun = { Convert.repr_name = "sun"; order = Endian.Be } in
  let apollo = { Convert.repr_name = "apollo"; order = Endian.Be } in
  Alcotest.(check string) "same machine" "image"
    (Convert.mode_to_string (Convert.choose ~src:vax ~dst:vax));
  Alcotest.(check string) "compatible repr" "image"
    (Convert.mode_to_string (Convert.choose ~src:sun ~dst:apollo));
  Alcotest.(check string) "incompatible repr" "packed"
    (Convert.mode_to_string (Convert.choose ~src:vax ~dst:sun))

let test_payload_forcing () =
  let image_calls = ref 0 and packed_calls = ref 0 in
  let p =
    Convert.payload
      ~image:(fun () -> incr image_calls; Bytes.of_string "IMG")
      ~packed:(fun () -> incr packed_calls; Bytes.of_string "PKD")
  in
  Alcotest.(check string) "image forced" "IMG" (Bytes.to_string (Convert.force Convert.Image p));
  Alcotest.(check (pair int int)) "exactly one conversion" (1, 0) (!image_calls, !packed_calls);
  Alcotest.(check string) "packed forced" "PKD"
    (Bytes.to_string (Convert.force Convert.Packed p));
  Alcotest.(check (pair int int)) "no needless conversions" (1, 1)
    (!image_calls, !packed_calls)

(* --- shift-mode headers across every machine-type pair --- *)

let test_header_roundtrip_all_machine_pairs () =
  (* The NTCS header travels in shift mode, so it must survive any
     (sender, receiver) combination of machine types — including the mode
     byte that the pair itself determines — for every message kind. *)
  let mtypes = [ Ntcs_sim.Machine.Vax; Ntcs_sim.Machine.Sun3; Ntcs_sim.Machine.Apollo ] in
  let order_of m =
    match Ntcs_sim.Machine.byte_order m with
    | Ntcs_sim.Machine.Little_endian -> Endian.Le
    | Ntcs_sim.Machine.Big_endian -> Endian.Be
  in
  let repr_of m =
    { Convert.repr_name = Ntcs_sim.Machine.mtype_to_string m; order = order_of m }
  in
  let kinds =
    [
      Ntcs.Proto.Data; Ntcs.Proto.Dgram; Ntcs.Proto.Reply; Ntcs.Proto.Hello;
      Ntcs.Proto.Hello_ack; Ntcs.Proto.Ivc_open; Ntcs.Proto.Ivc_accept;
      Ntcs.Proto.Ivc_reject; Ntcs.Proto.Ivc_close; Ntcs.Proto.Ping; Ntcs.Proto.Pong;
    ]
  in
  List.iter
    (fun sender ->
      List.iter
        (fun receiver ->
          let pair =
            Ntcs_sim.Machine.mtype_to_string sender ^ "->"
            ^ Ntcs_sim.Machine.mtype_to_string receiver
          in
          List.iter
            (fun kind ->
              let h =
                Ntcs.Proto.make_header ~kind
                  ~src:(Ntcs.Addr.unique ~server_id:7 ~value:0xABCD)
                  ~dst:(Ntcs.Addr.temporary ~assigner:3 ~value:99)
                  ~mode:(Convert.choose ~src:(repr_of sender) ~dst:(repr_of receiver))
                  ~src_order:(order_of sender) ~hops:2 ~seq:0x7FFF ~conv:41 ~app_tag:5
                  ~ivc:123 ~payload_len:17 ()
              in
              let b = Ntcs.Proto.encode_header h in
              Alcotest.(check int)
                (pair ^ " header size")
                Ntcs.Proto.header_bytes (Bytes.length b);
              let h' = Ntcs.Proto.decode_header b in
              Alcotest.(check bool)
                (pair ^ " " ^ Ntcs.Proto.kind_to_string kind ^ " roundtrip")
                true (h' = h))
            kinds)
        mtypes)
    mtypes

let () =
  Alcotest.run "ntcs_wire"
    [
      ( "endian",
        [
          Alcotest.test_case "roundtrips" `Quick test_endian_u16_u32_u64;
          Alcotest.test_case "byte layout" `Quick test_endian_byte_layout;
          Alcotest.test_case "sign extension" `Quick test_endian_sign_extension;
        ] );
      ( "image",
        [
          Alcotest.test_case "roundtrip same order" `Quick test_layout_roundtrip_same_order;
          Alcotest.test_case "cross order garbles" `Quick test_layout_cross_order_garbles;
          Alcotest.test_case "strings safe" `Quick test_layout_strings_safe_across_orders;
          Alcotest.test_case "errors" `Quick test_layout_errors;
        ] );
      ( "packed",
        [
          Alcotest.test_case "primitives" `Quick test_packed_primitives;
          Alcotest.test_case "unpack errors" `Quick test_packed_unpack_errors;
          Alcotest.test_case "generated from layout" `Quick
            test_packed_of_layout_matches_image_semantics;
          Alcotest.test_case "order independent" `Quick test_packed_is_order_independent;
          Alcotest.test_case "tagged unions" `Quick test_packed_tagged;
        ] );
      ( "shift",
        [
          Alcotest.test_case "words" `Quick test_shift_words;
          Alcotest.test_case "order free" `Quick test_shift_is_order_free;
          Alcotest.test_case "errors" `Quick test_shift_errors;
          Alcotest.test_case "bitfields" `Quick test_bitfields;
          Alcotest.test_case "headers across all machine pairs" `Quick
            test_header_roundtrip_all_machine_pairs;
        ] );
      ( "convert",
        [
          Alcotest.test_case "mode selection" `Quick test_mode_selection;
          Alcotest.test_case "payload forcing" `Quick test_payload_forcing;
        ] );
    ]
