(* The distributed run-time support services: time correction over drifting
   clocks, the network monitor, and the error log — each running recursively
   through the NTCS it serves. *)

open Ntcs
open Helpers

let drifting_cluster () =
  Cluster.build
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
      ]
    ~clocks:[ ("sun1", 400., 250_000); ("sun2", -300., -120_000) ]
    ~ns:"vax1" ()

let test_clock_drift_modelled () =
  let c = drifting_cluster () in
  Cluster.settle ~dt:10_000_000 c;
  let now = Ntcs_sim.World.now (Cluster.world c) in
  let local m = Ntcs_sim.Machine.local_time (Cluster.machine c m) ~now_us:now in
  (* sun1 runs fast with a positive offset; sun2 slow with negative. *)
  Alcotest.(check bool) "sun1 ahead" true (local "sun1" > now + 200_000);
  Alcotest.(check bool) "sun2 behind" true (local "sun2" < now - 100_000)

let test_time_correction () =
  let c = drifting_cluster () in
  Cluster.settle c;
  (* Reference clock on vax1 (zero drift). *)
  ignore (Cluster.spawn c ~machine:"vax1" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  Cluster.settle c;
  let err_before = ref 0 and err_after = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"corrected" (fun node ->
         let commod = bind_exn node ~name:"corrected-app" in
         let corrector = Ntcs_drts.Time_service.create commod in
         err_before := abs (Ntcs_drts.Time_service.true_error_us corrector);
         (match Ntcs_drts.Time_service.sync corrector with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "sync failed: %s" (Errors.to_string e));
         err_after := abs (Ntcs_drts.Time_service.true_error_us corrector);
         Alcotest.(check int) "one sync recorded" 1
           (Ntcs_drts.Time_service.sync_count corrector)));
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check bool) "clock was off beforehand" true (!err_before > 100_000);
  (* Cristian-style correction should get within a few RTTs of truth. *)
  Alcotest.(check bool) "corrected within 5ms" true (!err_after < 5_000);
  Alcotest.(check bool) "correction improved the clock" true (!err_after < !err_before)

let test_corrected_timestamps_flow_into_hooks () =
  let c = drifting_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"vax1" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  Cluster.settle c;
  let hook_time = ref 0 and global_time = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"hook-app" in
         let corrector = Ntcs_drts.Time_service.create commod in
         Ntcs_drts.Time_service.install corrector;
         ignore (Ntcs_drts.Time_service.sync corrector);
         hook_time := node.Node.hooks.Node.timestamp ();
         global_time := Node.now node));
  Cluster.settle ~dt:20_000_000 c;
  (* Raw local clock would be ~250ms ahead; the corrected hook is close. *)
  Alcotest.(check bool) "hook reports corrected time" true
    (abs (!hook_time - !global_time) < 10_000)

let test_time_autosync_on_stale_timestamp () =
  (* The §6.1 recursive path: a stale corrector re-syncs from inside the
     timestamp call itself. *)
  let c = drifting_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"vax1" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  Cluster.settle c;
  let syncs = ref (-1) in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"autosync-app" in
         let corrector = Ntcs_drts.Time_service.create ~sync_interval_us:1_000_000 commod in
         (* First [now] triggers a sync (never synced), as does a later one
            past the interval. *)
         ignore (Ntcs_drts.Time_service.now corrector);
         Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000;
         ignore (Ntcs_drts.Time_service.now corrector);
         syncs := Ntcs_drts.Time_service.sync_count corrector));
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check int) "two automatic syncs" 2 !syncs

let test_time_sync_failure_counted () =
  let c = drifting_cluster () in
  Cluster.settle c;
  (* No time server at all. *)
  let failures = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"app" (fun node ->
         let commod = bind_exn node ~name:"lonely-app" in
         let corrector = Ntcs_drts.Time_service.create commod in
         (match Ntcs_drts.Time_service.sync corrector with
          | Ok _ -> Alcotest.fail "sync cannot succeed without a server"
          | Error _ -> ());
         failures := Ntcs_drts.Time_service.failure_count corrector));
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check int) "failure counted" 1 !failures;
  ()

let test_error_log_roundtrip () =
  let c = lan_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"error-log" (fun node ->
            Ntcs_drts.Error_log.serve node ()));
  Cluster.settle c;
  let count = ref (-1) in
  let recent = ref [] in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"reporter" (fun node ->
         let commod = bind_exn node ~name:"reporter" in
         let client = Ntcs_drts.Error_log.create_client commod in
         Ntcs_drts.Error_log.log client Ntcs_drts.Drts_proto.Info "all quiet";
         Ntcs_drts.Error_log.log client Ntcs_drts.Drts_proto.Error "circuit wobbled";
         Ntcs_drts.Error_log.log client Ntcs_drts.Drts_proto.Fatal "module on fire";
         Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000;
         let log_addr = check_ok "locate log" (Ali_layer.locate commod "error-log") in
         count :=
           check_ok "count"
             (Ntcs_drts.Error_log.query_count commod ~log_addr
                ~min_severity:Ntcs_drts.Drts_proto.Error);
         recent :=
           check_ok "recent" (Ntcs_drts.Error_log.query_recent commod ~log_addr ~n:10)));
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check int) "errors and worse" 2 !count;
  Alcotest.(check int) "history" 3 (List.length !recent);
  let messages = List.map (fun r -> r.Ntcs_drts.Drts_proto.lr_message) !recent in
  Alcotest.(check bool) "content preserved" true (List.mem "circuit wobbled" messages)

let test_monitor_per_module_attribution () =
  let c = lan_cluster () in
  Cluster.settle c;
  ignore (Cluster.spawn c ~machine:"sun2" ~name:"monitor" (fun node ->
            Ntcs_drts.Monitor.serve node ()));
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let stats = ref None in
  let monitored_config = { (Cluster.config c) with Node.monitoring = true } in
  ignore
    (Cluster.spawn c ~config:monitored_config ~machine:"vax1" ~name:"app-a" (fun node ->
         let commod = bind_exn node ~name:"app-a" in
         Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod);
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         for _ = 1 to 3 do
           ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "x")))
         done;
         Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000;
         let monitor = check_ok "locate mon" (Ali_layer.locate commod "network-monitor") in
         stats := Some (check_ok "stats" (Ntcs_drts.Monitor.query_stats commod ~monitor))));
  Cluster.settle ~dt:20_000_000 c;
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check bool) "attributed to app-a" true
      (match List.assoc_opt "app-a" s.Ntcs_drts.Drts_proto.ms_by_module with
       | Some n -> n >= 3
       | None -> false);
    Alcotest.(check bool) "send events counted" true
      (match List.assoc_opt "send-sync" s.Ntcs_drts.Drts_proto.ms_by_kind with
       | Some n -> n >= 3
       | None -> false)

let test_process_ctl_lifecycle () =
  let c = lan_cluster () in
  Cluster.settle c;
  let pctl = Ntcs_drts.Process_ctl.create c in
  let spec =
    {
      Ntcs_drts.Process_ctl.sp_name = "worker";
      sp_attrs = [];
      sp_body = (fun commod ->
        let rec loop () =
          ignore (Ali_layer.receive commod);
          loop ()
        in
        loop ());
    }
  in
  let m = Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1" in
  Cluster.settle c;
  Alcotest.(check bool) "alive after start" true (Ntcs_drts.Process_ctl.alive pctl m);
  Alcotest.(check int) "generation 0" 0 (Ntcs_drts.Process_ctl.generation m);
  Alcotest.(check string) "machine" "sun1" (Ntcs_drts.Process_ctl.machine_of m);
  ignore (Ntcs_drts.Process_ctl.relocate pctl m ~to_machine:"sun2");
  Cluster.settle c;
  Alcotest.(check bool) "alive after relocate" true (Ntcs_drts.Process_ctl.alive pctl m);
  Alcotest.(check int) "generation 1" 1 (Ntcs_drts.Process_ctl.generation m);
  Alcotest.(check string) "moved" "sun2" (Ntcs_drts.Process_ctl.machine_of m);
  Ntcs_drts.Process_ctl.kill pctl m;
  Cluster.settle c;
  Alcotest.(check bool) "dead after kill" false (Ntcs_drts.Process_ctl.alive pctl m);
  Alcotest.(check bool) "registry find" true (Ntcs_drts.Process_ctl.find pctl "worker" <> None)

let () =
  Alcotest.run "drts"
    [
      ( "time",
        [
          Alcotest.test_case "drift modelled" `Quick test_clock_drift_modelled;
          Alcotest.test_case "correction works" `Quick test_time_correction;
          Alcotest.test_case "hooks use corrected time" `Quick
            test_corrected_timestamps_flow_into_hooks;
          Alcotest.test_case "auto-resync when stale" `Quick test_time_autosync_on_stale_timestamp;
          Alcotest.test_case "sync failures counted" `Quick test_time_sync_failure_counted;
        ] );
      ( "monitor+log",
        [
          Alcotest.test_case "error log roundtrip" `Quick test_error_log_roundtrip;
          Alcotest.test_case "monitor attribution" `Quick test_monitor_per_module_attribution;
        ] );
      ("process", [ Alcotest.test_case "lifecycle" `Quick test_process_ctl_lifecycle ]);
    ]
