(* End-to-end tests of the Nucleus + ComMod on a single network: binding,
   registration, resource location, all communication primitives, typed
   messages, conversion-mode adaptation and TAdd purging (E3). *)

open Ntcs
open Helpers

let test_bind_and_locate () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        let my = check_ok "my addr" (Ali_layer.my_address commod) in
        (addr, my))
  in
  Cluster.settle c;
  let addr, my = result () in
  Alcotest.(check bool) "service addr unique" true (Addr.is_unique addr);
  Alcotest.(check bool) "own addr unique after registration" true (Addr.is_unique my);
  Alcotest.(check bool) "distinct" false (Addr.equal addr my)

let test_locate_unknown () =
  let c = lan_cluster () in
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        Ali_layer.locate commod "no-such-module")
  in
  Cluster.settle c;
  check_err "unknown name" Errors.Unknown_name (result ())

let test_send_sync_and_async () =
  let c = lan_cluster () in
  Cluster.settle c;
  let hits = ref 0 in
  spawn_echo c ~machine:"sun1" ~name:"svc" ~hits;
  Cluster.settle c;
  let result =
    in_process c ~machine:"sun2" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        check_ok "async" (Ali_layer.send commod ~dst:addr (raw "fire-and-forget"));
        let env = check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "question")) in
        body env)
  in
  Cluster.settle c;
  Alcotest.(check string) "echoed" "echo:question" (result ());
  Alcotest.(check int) "server saw both" 2 !hits

let test_dgram () =
  let c = lan_cluster () in
  Cluster.settle c;
  let hits = ref 0 in
  spawn_echo c ~machine:"sun1" ~name:"svc" ~hits;
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        check_ok "dgram" (Ali_layer.send_dgram commod ~dst:addr (raw "datagram"));
        true)
  in
  Cluster.settle c;
  Alcotest.(check bool) "completed" true (result ());
  Alcotest.(check int) "delivered" 1 !hits

let test_receive_timeout () =
  let c = lan_cluster () in
  Cluster.settle c;
  let result =
    in_process c ~machine:"sun1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"quiet" in
        Ali_layer.receive ~timeout_us:100_000 commod)
  in
  Cluster.settle c;
  check_err "receive timeout" Errors.Timeout (result ())

let test_sync_timeout_when_no_reply () =
  let c = lan_cluster () in
  Cluster.settle c;
  (* A sink that never replies. *)
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"sink" (fun node ->
         let commod = bind_exn node ~name:"sink" in
         let rec loop () =
           ignore (Ali_layer.receive commod);
           loop ()
         in
         loop ()));
  Cluster.settle c;
  let result =
    in_process c ~machine:"sun2" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "sink") in
        Ali_layer.send_sync commod ~dst:addr ~timeout_us:300_000 (raw "hello?"))
  in
  Cluster.settle c;
  check_err "sync timeout" Errors.Timeout (result ())

let test_reply_validation () =
  let c = lan_cluster () in
  Cluster.settle c;
  let reply_to_async = ref (Ok ()) in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"svc" (fun node ->
         let commod = bind_exn node ~name:"svc" in
         match Ali_layer.receive commod with
         | Ok env -> reply_to_async := Ali_layer.reply commod env (raw "bogus")
         | Error _ -> ()));
  Cluster.settle c;
  ignore
    ((in_process c ~machine:"sun2" ~name:"client" (fun node ->
          let commod = bind_exn node ~name:"client" in
          let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
          check_ok "async" (Ali_layer.send commod ~dst:addr (raw "no-reply-expected"))))
       : unit -> unit);
  Cluster.settle c;
  Alcotest.(check bool) "reply to async refused" true
    (match !reply_to_async with Error (Errors.Internal _) -> true | _ -> false)

let test_send_to_temporary_address_rejected () =
  let c = lan_cluster () in
  Cluster.settle c;
  let result =
    in_process c ~machine:"sun1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        Ali_layer.send commod ~dst:(Addr.temporary ~assigner:5 ~value:1) (raw "x"))
  in
  Cluster.settle c;
  Alcotest.(check bool) "veneer rejects TAdd" true
    (match result () with Error (Errors.Internal _) -> true | _ -> false)

let test_large_message_over_tcp_framing () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let n = 200_000 in
  let result =
    in_process c ~machine:"sun2" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        let big = Bytes.init n (fun i -> Char.chr (i land 0xFF)) in
        let env =
          check_ok "big sync"
            (Ali_layer.send_sync commod ~dst:addr ~timeout_us:30_000_000 (raw_bytes big))
        in
        env.Ali_layer.data)
  in
  Cluster.settle ~dt:40_000_000 c;
  let data = result () in
  Alcotest.(check int) "length" (n + 5) (Bytes.length data);
  Alcotest.(check string) "prefix" "echo:" (Bytes.sub_string data 0 5);
  (* Byte-exact echo of the payload. *)
  let ok = ref true in
  for i = 0 to n - 1 do
    if Bytes.get data (i + 5) <> Char.chr (i land 0xFF) then ok := false
  done;
  Alcotest.(check bool) "payload intact" true !ok

let test_conversion_mode_adapts () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let modes = ref [] in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"same-order" (fun node ->
         let commod = bind_exn node ~name:"same-order" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         let env = check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "q1")) in
         modes := ("sun->sun reply", env.Ali_layer.mode) :: !modes));
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"cross-order" (fun node ->
         let commod = bind_exn node ~name:"cross-order" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         let env = check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "q2")) in
         modes := ("sun->vax reply", env.Ali_layer.mode) :: !modes));
  Cluster.settle c;
  Alcotest.(check bool) "identical machines use image mode" true
    (List.assoc "sun->sun reply" !modes = Ntcs_wire.Convert.Image);
  Alcotest.(check bool) "incompatible machines use packed mode" true
    (List.assoc "sun->vax reply" !modes = Ntcs_wire.Convert.Packed)

(* Typed messages across the byte-order boundary: the application describes
   the structure once; values survive VAX <-> Sun exactly. *)
module Point_msg = struct
  type t = { x : int; y : int; label : string }

  let app_tag = 42
  let layout = Ntcs_wire.Layout.[ F_i32; F_i32; F_char_array 16 ]

  let to_values p = Ntcs_wire.Layout.[ V_int p.x; V_int p.y; V_str p.label ]

  let of_values = function
    | Ntcs_wire.Layout.[ V_int x; V_int y; V_str label ] -> { x; y; label }
    | _ -> invalid_arg "point"
end

let test_typed_messages_heterogeneous () =
  let c = lan_cluster () in
  Cluster.settle c;
  let received = ref [] in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"typed-server" (fun node ->
         let commod = bind_exn node ~name:"typed-server" in
         for _ = 1 to 2 do
           match Ali_layer.receive commod with
           | Ok env ->
             let p = check_ok "decode" (Typed_msg.decode (module Point_msg) commod env) in
             received :=
               (Printf.sprintf "%d,%d,%s via %s" p.Point_msg.x p.Point_msg.y p.Point_msg.label
                  (Ntcs_wire.Convert.mode_to_string env.Ali_layer.mode))
               :: !received
           | Error _ -> ()
         done));
  Cluster.settle c;
  (* Sun (big endian) -> VAX: packed. *)
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"typed-sun" (fun node ->
         let commod = bind_exn node ~name:"typed-sun" in
         let addr = check_ok "locate" (Ali_layer.locate commod "typed-server") in
         check_ok "send"
           (Typed_msg.send (module Point_msg) commod ~dst:addr
              { Point_msg.x = -5; y = 70000; label = "sun" })));
  Cluster.settle c;
  (* VAX -> VAX: image. *)
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"typed-vax" (fun node ->
         let commod = bind_exn node ~name:"typed-vax" in
         let addr = check_ok "locate" (Ali_layer.locate commod "typed-server") in
         check_ok "send"
           (Typed_msg.send (module Point_msg) commod ~dst:addr
              { Point_msg.x = 123; y = -9; label = "vax" })));
  Cluster.settle c;
  let got = List.sort compare !received in
  Alcotest.(check (list string)) "values exact in both modes"
    [ "-5,70000,sun via packed"; "123,-9,vax via image" ]
    got

let test_tadd_purge_within_two_ns_exchanges () =
  (* E3: "TAdds for any given module will be purged from all layers within
     the first two communications with the Name Server." Registration is the
     first exchange; by the time bind returns, one more NS-bound message must
     complete the purge. We check the name server refers to the module by
     real UAdd immediately after its next request. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let m = Cluster.metrics c in
  let result =
    in_process c ~machine:"sun1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"purge-test" in
        (* Second NS communication: any lookup. *)
        ignore (Ali_layer.locate commod "purge-test");
        Ntcs_util.Metrics.get m "tadd.purged")
  in
  Cluster.settle c;
  let purged = result () in
  Alcotest.(check bool) "the NS purged the module's TAdd" true (purged >= 1)

let test_close_deregisters () =
  let c = lan_cluster () in
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"ephemeral" (fun node ->
         let commod = bind_exn node ~name:"ephemeral" in
         Commod.close commod));
  Cluster.settle c;
  let result =
    in_process c ~machine:"sun2" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        Ali_layer.locate commod "ephemeral")
  in
  Cluster.settle c;
  check_err "deregistered module not locatable" Errors.Unknown_name (result ())

let test_tag_filtered_receive () =
  let c = lan_cluster () in
  Cluster.settle c;
  let got = ref [] in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"mux" (fun node ->
         let commod = bind_exn node ~name:"mux" in
         (* Pull tag 2 first even though tag 1 arrives first; then tag 1
            must still be available from the stash. *)
         (match Ali_layer.receive ~app_tag:2 commod with
          | Ok env -> got := ("tag2", body env) :: !got
          | Error e -> got := ("tag2", Errors.to_string e) :: !got);
         (match Ali_layer.receive ~app_tag:1 commod with
          | Ok env -> got := ("tag1", body env) :: !got
          | Error e -> got := ("tag1", Errors.to_string e) :: !got);
         match Ali_layer.receive ~app_tag:3 ~timeout_us:200_000 commod with
         | Ok _ -> got := ("tag3", "unexpected") :: !got
         | Error e -> got := ("tag3", Errors.to_string e) :: !got));
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"sender" (fun node ->
         let commod = bind_exn node ~name:"sender" in
         let addr = check_ok "locate" (Ali_layer.locate commod "mux") in
         check_ok "send 1" (Ali_layer.send commod ~dst:addr ~app_tag:1 (raw "first"));
         check_ok "send 2" (Ali_layer.send commod ~dst:addr ~app_tag:2 (raw "second"))));
  Cluster.settle ~dt:10_000_000 c;
  Alcotest.(check (option string)) "tag 2 first" (Some "second") (List.assoc_opt "tag2" !got);
  Alcotest.(check (option string)) "tag 1 from stash" (Some "first")
    (List.assoc_opt "tag1" !got);
  Alcotest.(check (option string)) "tag 3 times out" (Some "timeout")
    (List.assoc_opt "tag3" !got)

let test_commod_stats () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let st = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         check_ok "async" (Ali_layer.send commod ~dst:addr (raw "a"));
         ignore (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr (raw "s")));
         st := Some (Ali_layer.stats commod)));
  Cluster.settle ~dt:10_000_000 c;
  match !st with
  | None -> Alcotest.fail "no stats"
  | Some st ->
    (* 1 async + 1 sync by the app, plus NSP traffic (registration, name
       lookup, address resolution) riding the same ComMod — the recursion
       made visible in the counters. *)
    Alcotest.(check bool) "app + NSP sends counted" true (st.Lcm_layer.st_sent >= 4);
    Alcotest.(check bool) "sync calls include NSP round trips" true
      (st.Lcm_layer.st_sync_calls >= 3);
    Alcotest.(check bool) "more sends than app made alone" true
      (st.Lcm_layer.st_sent > 2);
    Alcotest.(check int) "no faults" 0 st.Lcm_layer.st_faults

let () =
  Alcotest.run "nucleus"
    [
      ( "binding",
        [
          Alcotest.test_case "bind and locate" `Quick test_bind_and_locate;
          Alcotest.test_case "locate unknown" `Quick test_locate_unknown;
          Alcotest.test_case "close deregisters" `Quick test_close_deregisters;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "send sync and async" `Quick test_send_sync_and_async;
          Alcotest.test_case "dgram" `Quick test_dgram;
          Alcotest.test_case "receive timeout" `Quick test_receive_timeout;
          Alcotest.test_case "sync timeout" `Quick test_sync_timeout_when_no_reply;
          Alcotest.test_case "reply validation" `Quick test_reply_validation;
          Alcotest.test_case "tadd send rejected" `Quick test_send_to_temporary_address_rejected;
          Alcotest.test_case "large message framing" `Quick test_large_message_over_tcp_framing;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "mode adapts to machines" `Quick test_conversion_mode_adapts;
          Alcotest.test_case "typed heterogeneous" `Quick test_typed_messages_heterogeneous;
        ] );
      ( "tadds",
        [ Alcotest.test_case "purged within two NS exchanges" `Quick
            test_tadd_purge_within_two_ns_exchanges ] );
      ( "utilities",
        [
          Alcotest.test_case "tag-filtered receive" `Quick test_tag_filtered_receive;
          Alcotest.test_case "commod stats" `Quick test_commod_stats;
        ] );
    ]
