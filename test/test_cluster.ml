(* The deployment builder: well-known table construction, configuration
   plumbing, spawn/settle semantics, and failure-injection handles. *)

open Ntcs
open Helpers

let test_well_known_table_shape () =
  let c = three_net_cluster () in
  let wk = (Cluster.config c).Node.well_known in
  let ns_entries = List.filter (fun w -> w.Node.wk_is_name_server) wk in
  let gw_entries = List.filter (fun w -> w.Node.wk_is_gateway) wk in
  Alcotest.(check int) "one name server" 1 (List.length ns_entries);
  (* Two prime gateways, one entry per bridged network each. *)
  Alcotest.(check int) "four gateway entries" 4 (List.length gw_entries);
  List.iter
    (fun w ->
      Alcotest.(check bool) "gateway entries serve exactly one net" true
        (List.length w.Node.wk_nets = 1);
      Alcotest.(check int) "gateways span two nets" 2 (List.length w.Node.wk_all_nets);
      Alcotest.(check bool) "phys present" true (w.Node.wk_phys <> []))
    gw_entries;
  (* All well-known addresses are distinct. *)
  let addrs = List.map (fun w -> w.Node.wk_addr) wk in
  Alcotest.(check int) "addresses unique" (List.length addrs)
    (List.length (List.sort_uniq Addr.compare addrs))

let test_gateway_phys_distinct_per_net () =
  let c = three_net_cluster () in
  let m = Cluster.machine c "mid1" in
  let p1 = Cluster.gateway_phys c m ~idx:0 ~net:(Cluster.net_id c "lan1") in
  let p2 = Cluster.gateway_phys c m ~idx:0 ~net:(Cluster.net_id c "lan2") in
  Alcotest.(check bool) "per-net resources differ" true (p1 <> p2)

let test_tweak_reaches_modules () =
  let c = lan_cluster ~tweak:(fun cfg -> { cfg with Node.recursion_limit = 7 }) () in
  Cluster.settle c;
  Alcotest.(check int) "config propagated" 7 (Cluster.config c).Node.recursion_limit;
  let observed = ref 0 in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"probe" (fun node ->
         observed := node.Node.config.Node.recursion_limit));
  Cluster.settle c;
  Alcotest.(check int) "modules see the tweak" 7 !observed

let test_clocks_applied () =
  let c =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [ ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]) ]
      ~clocks:[ ("sun1", 123., 456) ]
      ~ns:"vax1" ()
  in
  let m = Cluster.machine c "sun1" in
  Alcotest.(check (float 1e-9)) "drift" 123. m.Ntcs_sim.Machine.drift_ppm;
  Alcotest.(check int) "offset" 456 m.Ntcs_sim.Machine.offset_us;
  Alcotest.(check (float 1e-9)) "default drift zero" 0.
    (Cluster.machine c "vax1").Ntcs_sim.Machine.drift_ppm

let test_settle_advances_time () =
  let c = lan_cluster () in
  let t0 = Ntcs_sim.World.now (Cluster.world c) in
  Cluster.settle ~dt:1_234_567 c;
  Alcotest.(check int) "advanced exactly dt" (t0 + 1_234_567)
    (Ntcs_sim.World.now (Cluster.world c))

let test_unknown_names_rejected () =
  let c = lan_cluster () in
  Alcotest.check_raises "unknown machine" (Invalid_argument "Cluster: unknown machine nope")
    (fun () -> ignore (Cluster.machine c "nope"));
  Alcotest.check_raises "unknown net" (Invalid_argument "Cluster: unknown network nada")
    (fun () -> ignore (Cluster.net c "nada"))

let test_seed_determinism_end_to_end () =
  (* Two identical runs produce identical metrics — the whole stack,
     registration to teardown, is deterministic. *)
  let run () =
    let c = lan_cluster ~seed:77 () in
    Cluster.settle c;
    spawn_echo c ~machine:"sun1" ~name:"svc";
    Cluster.settle c;
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
           let commod = bind_exn node ~name:"client" in
           let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
           for _ = 1 to 10 do
             ignore (Ali_layer.send_sync commod ~dst:addr (raw "x"))
           done));
    Cluster.settle ~dt:30_000_000 c;
    ( Ntcs_util.Metrics.to_alist (Cluster.metrics c),
      Ntcs_sim.World.now (Cluster.world c) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical metrics" true (fst a = fst b);
  Alcotest.(check int) "identical clocks" (snd a) (snd b)

let test_partition_heal_roundtrip () =
  let c = lan_cluster () in
  Cluster.partition c "ether";
  Alcotest.(check bool) "down" false (Cluster.net c "ether").Ntcs_sim.Net.up;
  Cluster.heal c "ether";
  Alcotest.(check bool) "up" true (Cluster.net c "ether").Ntcs_sim.Net.up

let () =
  Alcotest.run "cluster"
    [
      ( "construction",
        [
          Alcotest.test_case "well-known table" `Quick test_well_known_table_shape;
          Alcotest.test_case "per-net gateway resources" `Quick
            test_gateway_phys_distinct_per_net;
          Alcotest.test_case "config tweak" `Quick test_tweak_reaches_modules;
          Alcotest.test_case "clocks" `Quick test_clocks_applied;
          Alcotest.test_case "unknown names" `Quick test_unknown_names_rejected;
        ] );
      ( "running",
        [
          Alcotest.test_case "settle advances time" `Quick test_settle_advances_time;
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism_end_to_end;
          Alcotest.test_case "partition/heal" `Quick test_partition_heal_roundtrip;
        ] );
    ]
